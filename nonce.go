package proram

import "proram/internal/rng"

// nonceSource adapts the deterministic generator to io.Reader for the
// sealer. Deterministic nonces keep whole experiments reproducible; supply
// Config.Key plus your own entropy expectations for real deployments.
type nonceSource struct {
	src *rng.Source
}

func newNonceSource(seed uint64) *nonceSource {
	return &nonceSource{src: rng.New(seed)}
}

func (n *nonceSource) Read(p []byte) (int, error) {
	for i := 0; i < len(p); i += 8 {
		v := n.src.Uint64()
		for j := 0; j < 8 && i+j < len(p); j++ {
			p[i+j] = byte(v >> (8 * j))
		}
	}
	return len(p), nil
}
