package proram

import "testing"

func TestSimulatorFacade(t *testing.T) {
	w, err := Synthetic(SyntheticConfig{Ops: 20000, LocalityFraction: 0.9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewSimulator(SimConfig{Memory: MemoryORAM})
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := base.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := NewSimulator(SimConfig{Memory: MemoryORAM, Scheme: SchemeDynamic})
	if err != nil {
		t.Fatal(err)
	}
	dynRes, err := dyn.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if baseRes.MemOps != 20000 || dynRes.MemOps != 20000 {
		t.Fatalf("op counts: %d/%d", baseRes.MemOps, dynRes.MemOps)
	}
	if dynRes.ORAM.Merges == 0 {
		t.Fatal("dynamic scheme inert through the facade")
	}
	if baseRes.Cycles == 0 || dynRes.MemoryAccesses == 0 {
		t.Fatal("empty result")
	}
}

func TestSimulatorDRAMvsORAM(t *testing.T) {
	w, err := Synthetic(SyntheticConfig{Ops: 15000, LocalityFraction: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	dram, err := NewSimulator(SimConfig{Memory: MemoryDRAM})
	if err != nil {
		t.Fatal(err)
	}
	dr, err := dram.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	oram, err := NewSimulator(SimConfig{Memory: MemoryORAM})
	if err != nil {
		t.Fatal(err)
	}
	or, err := oram.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if or.Cycles <= dr.Cycles {
		t.Fatalf("ORAM (%d) not slower than DRAM (%d)", or.Cycles, dr.Cycles)
	}
}

func TestSimulatorKnobs(t *testing.T) {
	// Every public knob must produce a valid system.
	cfgs := []SimConfig{
		{Memory: MemoryORAM, Scheme: SchemeStatic, MaxSuperBlock: 4},
		{Memory: MemoryORAM, Z: 4, StashBlocks: 50},
		{Memory: MemoryORAM, Periodic: true, Oint: 64},
		{Memory: MemoryDRAM, StreamPrefetcher: true, BandwidthGBps: 8},
		{Memory: MemoryORAM, CacheLineBytes: 64, ORAMBlocks: 1 << 16, WarmupOps: 500},
	}
	w, err := Synthetic(SyntheticConfig{Ops: 4000, LocalityFraction: 0.7, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cfgs {
		s, err := NewSimulator(c)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		if _, err := s.Run(w); err != nil {
			t.Fatalf("config %d run: %v", i, err)
		}
	}
	// Invalid: prefetcher + scheme.
	if _, err := NewSimulator(SimConfig{Scheme: SchemeDynamic, StreamPrefetcher: true}); err == nil {
		t.Fatal("prefetcher + scheme accepted")
	}
}

func TestWorkloadConstructors(t *testing.T) {
	if got := len(Splash2Workloads(1000)); got != 14 {
		t.Fatalf("Splash2Workloads = %d", got)
	}
	if got := len(SPEC06Workloads(1000)); got != 10 {
		t.Fatalf("SPEC06Workloads = %d", got)
	}
	for _, w := range []Workload{YCSBWorkload(1000), TPCCWorkload(1000)} {
		if w.Name == "" || w.Ops != 1000 {
			t.Fatalf("bad workload %+v", w)
		}
		g := w.generator()
		n := 0
		for {
			if _, ok := g.Next(); !ok {
				break
			}
			n++
		}
		if n != 1000 {
			t.Fatalf("%s yielded %d ops", w.Name, n)
		}
	}
	if _, err := Synthetic(SyntheticConfig{Ops: 10, LocalityFraction: 2}); err == nil {
		t.Fatal("bad locality accepted")
	}
}

func TestZeroWorkloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero Workload did not panic")
		}
	}()
	var w Workload
	w.generator()
}

func TestExperimentFacade(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 27 { // 18 paper tables/figures + 6 ablations + bench0 + bench1 + audit2
		t.Fatalf("ExperimentIDs = %d", len(ids))
	}
	if _, ok := ExperimentTitle("fig8a"); !ok {
		t.Fatal("missing title")
	}
	tb, err := Experiment("table1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if tb.ID != "table1" || len(tb.Rows) == 0 || tb.Format() == "" || tb.CSV() == "" {
		t.Fatalf("bad table: %+v", tb)
	}
	if v, ok := tb.Cell("Z", "paper"); !ok || v != 3 {
		t.Fatalf("Cell(Z, paper) = %v, %v", v, ok)
	}
	if _, err := Experiment("nope", 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
