// Locality sweep: reproduce the shape of the paper's Figure 6a on a small
// budget — how the static and dynamic super block schemes respond as the
// fraction of data with spatial locality grows.
//
// The static scheme prefetches blindly: it wins with locality and loses
// badly without. PrORAM's dynamic scheme detects locality at runtime, so
// it tracks the baseline when there is nothing to exploit and approaches
// the static scheme's gains when there is.
//
// Run with: go run ./examples/localitysweep
package main

import (
	"fmt"
	"log"

	"proram"
)

func main() {
	const ops = 150_000
	fmt.Println("locality   baseline-cycles   static-speedup   dynamic-speedup")
	for _, locality := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		w, err := proram.Synthetic(proram.SyntheticConfig{
			Ops:              ops,
			LocalityFraction: locality,
			WriteFraction:    0.25,
			Seed:             7,
		})
		if err != nil {
			log.Fatal(err)
		}
		base := run(w, proram.SimConfig{Z: 4, WarmupOps: ops / 3})
		stat := run(w, proram.SimConfig{Z: 4, WarmupOps: ops / 3, Scheme: proram.SchemeStatic})
		dyn := run(w, proram.SimConfig{Z: 4, WarmupOps: ops / 3, Scheme: proram.SchemeDynamic})
		fmt.Printf("%7.0f%%   %15d   %+13.1f%%   %+14.1f%%\n",
			locality*100, base,
			(float64(base)/float64(stat)-1)*100,
			(float64(base)/float64(dyn)-1)*100)
	}
	fmt.Println("\nStatic should flip from negative to strongly positive; dynamic")
	fmt.Println("should never fall far below zero (the paper's Figure 6a).")
}

func run(w proram.Workload, cfg proram.SimConfig) uint64 {
	s, err := proram.NewSimulator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run(w)
	if err != nil {
		log.Fatal(err)
	}
	return res.Cycles
}
