// Oblivious dictionary: a fixed-capacity open-addressing hash map stored
// in a PrORAM oblivious RAM. The storage provider learns nothing about
// which keys are queried, inserted or deleted — every operation is a
// sequence of uniformly random tree paths.
//
// The layout is deliberately cache-line-conscious: each 128-byte block
// holds two 64-byte slots, and linear probing walks *neighbor blocks*, so
// the dynamic super block scheme learns the probe locality and fetches
// probe pairs in a single ORAM access.
//
// Run with: go run ./examples/odict
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"proram"
)

const (
	slotBytes    = 64 // 8 key + 2 length + 53 value + 1 state
	slotsPerBlk  = 2
	maxValueLen  = 53
	stateEmpty   = 0
	stateFull    = 1
	stateDeleted = 2
)

// Dict is the oblivious hash map.
type Dict struct {
	ram   *proram.RAM
	slots uint64
}

// NewDict builds a dictionary with capacity for about blocks×2 entries.
func NewDict(blocks uint64) (*Dict, error) {
	ram, err := proram.New(proram.Config{
		Blocks:      blocks,
		Scheme:      proram.SchemeDynamic,
		CacheBlocks: 256,
	})
	if err != nil {
		return nil, err
	}
	return &Dict{ram: ram, slots: blocks * slotsPerBlk}, nil
}

// hash is FNV-1a over the key.
func hash(key uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= key >> (8 * i) & 0xff
		h *= 1099511628211
	}
	return h
}

// slotIO reads or writes one 64-byte slot.
func (d *Dict) readSlot(slot uint64) ([]byte, error) {
	block, off := slot/slotsPerBlk, (slot%slotsPerBlk)*slotBytes
	data, err := d.ram.Read(block)
	if err != nil {
		return nil, err
	}
	return data[off : off+slotBytes], nil
}

func (d *Dict) writeSlot(slot uint64, content []byte) error {
	block, off := slot/slotsPerBlk, (slot%slotsPerBlk)*slotBytes
	data, err := d.ram.Read(block)
	if err != nil {
		return err
	}
	copy(data[off:off+slotBytes], content)
	return d.ram.Write(block, data)
}

// Put inserts or updates a key.
func (d *Dict) Put(key uint64, value []byte) error {
	if len(value) > maxValueLen {
		return fmt.Errorf("odict: value %d bytes exceeds %d", len(value), maxValueLen)
	}
	for probe := uint64(0); probe < d.slots; probe++ {
		slot := (hash(key) + probe) % d.slots
		s, err := d.readSlot(slot)
		if err != nil {
			return err
		}
		state := s[slotBytes-1]
		existing := binary.LittleEndian.Uint64(s)
		if state == stateFull && existing != key {
			continue
		}
		// Empty, deleted, or our own key: claim it.
		content := make([]byte, slotBytes)
		binary.LittleEndian.PutUint64(content, key)
		binary.LittleEndian.PutUint16(content[8:], uint16(len(value)))
		copy(content[10:], value)
		content[slotBytes-1] = stateFull
		return d.writeSlot(slot, content)
	}
	return fmt.Errorf("odict: table full")
}

// Get looks a key up.
func (d *Dict) Get(key uint64) ([]byte, bool, error) {
	for probe := uint64(0); probe < d.slots; probe++ {
		slot := (hash(key) + probe) % d.slots
		s, err := d.readSlot(slot)
		if err != nil {
			return nil, false, err
		}
		switch s[slotBytes-1] {
		case stateEmpty:
			return nil, false, nil
		case stateFull:
			if binary.LittleEndian.Uint64(s) == key {
				n := binary.LittleEndian.Uint16(s[8:])
				out := make([]byte, n)
				copy(out, s[10:10+n])
				return out, true, nil
			}
		}
	}
	return nil, false, nil
}

// Delete removes a key (tombstone), reporting whether it was present.
func (d *Dict) Delete(key uint64) (bool, error) {
	for probe := uint64(0); probe < d.slots; probe++ {
		slot := (hash(key) + probe) % d.slots
		s, err := d.readSlot(slot)
		if err != nil {
			return false, err
		}
		switch s[slotBytes-1] {
		case stateEmpty:
			return false, nil
		case stateFull:
			if binary.LittleEndian.Uint64(s) == key {
				content := make([]byte, slotBytes)
				content[slotBytes-1] = stateDeleted
				return true, d.writeSlot(slot, content)
			}
		}
	}
	return false, nil
}

func main() {
	dict, err := NewDict(1 << 13) // ~16k entries
	if err != nil {
		log.Fatal(err)
	}

	// Load a phone book; neither the keys nor the lookup order are visible
	// to the storage.
	for k := uint64(1); k <= 5000; k++ {
		if err := dict.Put(k, []byte(fmt.Sprintf("subscriber-%d", k))); err != nil {
			log.Fatal(err)
		}
	}
	v, ok, err := dict.Get(4242)
	if err != nil || !ok {
		log.Fatalf("lookup failed: %v %v", ok, err)
	}
	fmt.Printf("dict[4242] = %q\n", v)

	if _, err := dict.Delete(4242); err != nil {
		log.Fatal(err)
	}
	if _, ok, _ := dict.Get(4242); ok {
		log.Fatal("deleted key still present")
	}
	if _, ok, _ := dict.Get(999_999); ok {
		log.Fatal("phantom key")
	}
	fmt.Println("delete and negative lookup OK")

	s := dict.ram.Stats()
	fmt.Printf("\noblivious accesses: %d paths for %d reads / %d writes (cache hits %d)\n",
		s.PathAccesses, s.Reads, s.Writes, s.CacheHits)
	fmt.Printf("probe locality learned: %d merges, prefetch hit rate %.2f\n",
		s.Merges, 1-s.PrefetchMissRate())
}
