// DBMS workloads on oblivious memory: the paper's §5.4 headline — a
// key-value store (YCSB) with whole-record scans gains a lot from PrORAM,
// while a scattered transactional mix (TPC-C) gains little.
//
// Run with: go run ./examples/dbms
package main

import (
	"fmt"
	"log"

	"proram"
)

func main() {
	const ops = 200_000
	workloads := []proram.Workload{
		proram.YCSBWorkload(ops),
		proram.TPCCWorkload(ops),
	}
	for _, w := range workloads {
		base := run(w, proram.SimConfig{WarmupOps: ops / 3})
		dyn := run(w, proram.SimConfig{WarmupOps: ops / 3, Scheme: proram.SchemeDynamic})
		stat := run(w, proram.SimConfig{WarmupOps: ops / 3, Scheme: proram.SchemeStatic})

		fmt.Printf("%s (%d ops)\n", w.Name, w.Ops)
		fmt.Printf("  baseline ORAM:  %12d cycles, %7d path accesses\n",
			base.Cycles, base.MemoryAccesses)
		fmt.Printf("  static scheme:  %+11.1f%% speedup, %.3f× accesses\n",
			speedup(base, stat), ratio(base, stat))
		fmt.Printf("  PrORAM dynamic: %+11.1f%% speedup, %.3f× accesses "+
			"(%d merges, %d breaks, prefetch miss rate %.2f)\n\n",
			speedup(base, dyn), ratio(base, dyn),
			dyn.ORAM.Merges, dyn.ORAM.Breaks, dyn.ORAM.PrefetchMissRate())
	}
	fmt.Println("YCSB's record scans give PrORAM strong neighbor-block locality;")
	fmt.Println("TPC-C's scattered row touches leave little to prefetch — the")
	fmt.Println("dynamic scheme detects that and stays out of the way.")
}

func run(w proram.Workload, cfg proram.SimConfig) proram.Result {
	s, err := proram.NewSimulator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run(w)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func speedup(base, v proram.Result) float64 {
	return (float64(base.Cycles)/float64(v.Cycles) - 1) * 100
}

func ratio(base, v proram.Result) float64 {
	return float64(v.MemoryAccesses) / float64(base.MemoryAccesses)
}
