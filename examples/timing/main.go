// Timing-channel protection: ORAM hides *which* address is accessed, but
// *when* accesses happen still leaks (§2.5). Periodic mode issues one path
// access every fixed interval — dummies when the program is idle — so the
// schedule is a public constant. This example measures what that costs and
// shows that PrORAM's gains survive it (the paper's Figure 15).
//
// Run with: go run ./examples/timing
package main

import (
	"fmt"
	"log"

	"proram"
)

func main() {
	const ops = 150_000
	w, err := proram.Synthetic(proram.SyntheticConfig{
		Ops:              ops,
		LocalityFraction: 0.85,
		WriteFraction:    0.25,
		Seed:             5,
	})
	if err != nil {
		log.Fatal(err)
	}

	plain := run(w, proram.SimConfig{WarmupOps: ops / 3})
	periodic := run(w, proram.SimConfig{WarmupOps: ops / 3, Periodic: true, Oint: 50})
	periodicDyn := run(w, proram.SimConfig{WarmupOps: ops / 3, Periodic: true, Oint: 50,
		Scheme: proram.SchemeDynamic})

	fmt.Printf("baseline ORAM:            %12d cycles\n", plain.Cycles)
	fmt.Printf("periodic ORAM (Oint=50):  %12d cycles (%+.1f%% slower, %d dummy accesses)\n",
		periodic.Cycles,
		(float64(periodic.Cycles)/float64(plain.Cycles)-1)*100,
		periodic.ORAM.DummyAccesses)
	fmt.Printf("periodic + PrORAM:        %12d cycles (%+.1f%% vs periodic baseline)\n",
		periodicDyn.Cycles,
		(float64(periodic.Cycles)/float64(periodicDyn.Cycles)-1)*100)
	fmt.Println("\nWith periodicity the access *schedule* is fixed and public, so")
	fmt.Println("the timing channel is closed; the super block scheme still cuts")
	fmt.Println("the number of real accesses, which shortens the program's run.")
}

func run(w proram.Workload, cfg proram.SimConfig) proram.Result {
	s, err := proram.NewSimulator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run(w)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
