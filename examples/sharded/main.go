// Sharded: serve concurrent clients from a partitioned oblivious RAM.
//
// proram.NewSharded splits the address space across independent Path ORAM
// partitions (each with its own stash, position map and PrORAM prefetcher)
// and schedules requests in padded rounds: every round, every partition
// performs exactly the same number of ORAM accesses — demand work plus
// dummies — so the storage learns nothing about which partitions are hot,
// how many clients are active, or how requests interleave.
//
// Run with: go run ./examples/sharded
package main

import (
	"fmt"
	"log"
	"sync"

	"proram"
)

func main() {
	cfg := proram.DefaultConfig()
	cfg.Blocks = 1 << 14
	cfg.Partitions = 8 // eight independent ORAM trees behind one front door
	ram, err := proram.NewSharded(cfg, proram.ShardedOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Eight goroutines hammer the store concurrently, each on its own
	// address stripe. No external locking: the scheduler batches and
	// coalesces admissions into fixed-shape rounds.
	const clients, span = 8, 256
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			base := uint64(c) * span
			for i := uint64(0); i < span; i++ {
				record := fmt.Sprintf("client-%d-record-%04d", c, i)
				if err := ram.Write(base+i, []byte(record)); err != nil {
					log.Fatal(err)
				}
			}
			for i := uint64(0); i < span; i++ {
				data, err := ram.Read(base + i)
				if err != nil {
					log.Fatal(err)
				}
				want := fmt.Sprintf("client-%d-record-%04d", c, i)
				if string(data[:len(want)]) != want {
					log.Fatalf("block %d corrupted: %q", base+i, data[:len(want)])
				}
			}
		}(c)
	}
	wg.Wait()
	if err := ram.Flush(); err != nil {
		log.Fatal(err)
	}

	s := ram.SchedStats()
	fmt.Printf("partitions            %d × %d slots per round\n", s.Partitions, s.RoundSlots)
	fmt.Printf("rounds                %d demand + %d flush\n", s.Rounds, s.FlushRounds)
	fmt.Printf("real / pad accesses   %d / %d (fill %.3f)\n", s.RealAccesses, s.PadAccesses, s.FillRatio)
	fmt.Printf("cache hits            %d\n", s.CacheHits)
	fmt.Printf("makespan              %d cycles (slowest partition)\n", s.Cycles)
	fmt.Println("\nEvery round, every partition issued the same number of ORAM")
	fmt.Println("accesses: the storage cannot tell eight clients from one, or a")
	fmt.Println("hot partition from a cold one. Only the round count leaks.")

	if err := ram.Close(); err != nil {
		log.Fatal(err)
	}
}
