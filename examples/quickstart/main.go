// Quickstart: use PrORAM as an oblivious block store.
//
// A RAM hides *which* blocks you read and write: the storage only ever
// sees uniformly random tree paths. The dynamic super block scheme learns
// your spatial locality at runtime and prefetches neighbor blocks so
// sequential workloads need fewer (expensive) oblivious accesses.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"proram"
)

func main() {
	ram, err := proram.New(proram.Config{
		Blocks:      1 << 14, // 16384 blocks × 128 B = 2 MB capacity
		Scheme:      proram.SchemeDynamic,
		CacheBlocks: 512,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Store some records: the access pattern below (sequential writes,
	// then sequential reads) is invisible to the storage.
	for i := uint64(0); i < 2048; i++ {
		record := fmt.Sprintf("record-%04d", i)
		if err := ram.Write(i, []byte(record)); err != nil {
			log.Fatal(err)
		}
	}
	for i := uint64(0); i < 2048; i++ {
		data, err := ram.Read(i)
		if err != nil {
			log.Fatal(err)
		}
		want := fmt.Sprintf("record-%04d", i)
		if string(data[:len(want)]) != want {
			log.Fatalf("block %d corrupted: %q", i, data[:len(want)])
		}
	}

	// Byte-granular I/O across block boundaries also works.
	msg := []byte("PrORAM: dynamic prefetching for oblivious RAM")
	if _, err := ram.WriteAt(msg, 999_000); err != nil {
		log.Fatal(err)
	}
	back := make([]byte, len(msg))
	if _, err := ram.ReadAt(back, 999_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round-tripped: %q\n\n", back)

	s := ram.Stats()
	fmt.Printf("logical reads/writes: %d / %d (cache hits %d)\n", s.Reads, s.Writes, s.CacheHits)
	fmt.Printf("oblivious path accesses: %d\n", s.PathAccesses)
	fmt.Printf("super blocks merged: %d, broken: %d\n", s.Merges, s.Breaks)
	fmt.Printf("prefetches: %d issued, %d hit, %d unused (miss rate %.2f)\n",
		s.PrefetchIssued, s.PrefetchHits, s.PrefetchUnused, s.PrefetchMissRate())
	fmt.Println("\nThe sequential pattern above taught the prefetcher to merge")
	fmt.Println("neighbor blocks: every hit above saved one full ORAM access.")
}
