package proram

import "proram/internal/exp"

// ExperimentTable is one regenerated table/figure of the paper.
type ExperimentTable struct {
	ID      string
	Title   string
	Columns []string
	Rows    []ExperimentRow
	Notes   []string

	inner *exp.Table
}

// ExperimentRow is one x-axis point of a figure.
type ExperimentRow struct {
	Label string
	Cells []float64
}

// Format renders the table as aligned text.
func (t *ExperimentTable) Format() string { return t.inner.Format() }

// CSV renders the table as comma-separated values.
func (t *ExperimentTable) CSV() string { return t.inner.CSV() }

// Cell returns the value at (rowLabel, column).
func (t *ExperimentTable) Cell(rowLabel, column string) (float64, bool) {
	return t.inner.Cell(rowLabel, column)
}

// ExperimentIDs lists every regenerable table/figure id ("table1",
// "fig5" ... "fig15c").
func ExperimentIDs() []string { return exp.IDs() }

// ExperimentTitle describes an experiment id.
func ExperimentTitle(id string) (string, bool) { return exp.Title(id) }

// Experiment regenerates the identified table/figure. scale multiplies
// the workload sizes: 1.0 is the full-size run (minutes for the suite
// figures), smaller values trade fidelity for speed. scale <= 0 means 1.0.
func Experiment(id string, scale float64) (*ExperimentTable, error) {
	tb, err := exp.Run(id, exp.Options{Scale: scale})
	if err != nil {
		return nil, err
	}
	out := &ExperimentTable{
		ID:      tb.ID,
		Title:   tb.Title,
		Columns: append([]string(nil), tb.Columns...),
		Notes:   append([]string(nil), tb.Notes...),
		inner:   tb,
	}
	for _, r := range tb.Rows {
		out.Rows = append(out.Rows, ExperimentRow{Label: r.Label, Cells: append([]float64(nil), r.Cells...)})
	}
	return out, nil
}
