package proram

import (
	"fmt"
	"io"

	"proram/internal/obs"
	"proram/internal/obs/audit"
)

// LeakMode selects a test-only negative control: a deliberately broken
// scheduler or controller the obliviousness auditor must flag. The modes
// exist so CI can prove the audit has statistical power; production code
// never sets one.
type LeakMode int

const (
	// LeakNone is the honest system.
	LeakNone LeakMode = iota
	// LeakDropDummies makes the sharded scheduler claim its round padding
	// without issuing it (sharded frontends only).
	LeakDropDummies
	// LeakBiasLeaf makes the ORAM controllers draw remap leaves from only
	// the lower half of the leaf space.
	LeakBiasLeaf
)

func (m LeakMode) internal() audit.Leak {
	switch m {
	case LeakDropDummies:
		return audit.LeakDropDummies
	case LeakBiasLeaf:
		return audit.LeakBiasLeaf
	}
	return audit.LeakNone
}

// AuditConfig arms the live obliviousness auditor: deterministic
// statistical tests (leaf uniformity, serial independence, round shape,
// flush equality, real-vs-dummy timing) over the wire-observable access
// stream, plus end-to-end latency spans with streaming tail quantiles.
// All statistics are integer/fixed-point, so the report is byte-stable
// across runs and platforms.
type AuditConfig struct {
	// Out receives the full JSON report when the audited run finishes
	// (ShardedRAM.Close, SimulateShardedAudited, or Simulator.Run); nil
	// keeps the report in memory only.
	Out io.Writer
	// CheckEvery is the online evaluation interval in observed accesses
	// (0 = 16384). The first mid-run failure latches and dumps the obs
	// flight ring.
	CheckEvery uint64
	// MinSamples gates each test: scopes with fewer observations report
	// "skip" (0 = 1024).
	MinSamples uint64
	// Leak arms a negative control the auditor must flag. Test-only: it
	// deliberately breaks the obliviousness the rest of the system
	// guarantees.
	Leak LeakMode
}

// AuditReport is the public digest of an audit: the verdict, the stream
// size it rests on, and one human-readable finding per failed test.
type AuditReport struct {
	// Pass is the overall verdict.
	Pass bool
	// Accesses is the number of physical accesses audited.
	Accesses uint64
	// Findings describes every failed test; empty when Pass.
	Findings []string
}

// auditor builds the internal auditor for an armed configuration. The
// recorder, when non-nil, is the one the audited system emits into — the
// auditor dumps its flight ring on the first online failure. Callers arm
// timing only for flat-latency devices: the banked DRAM models per-access
// variance on purpose, and the frontend's timing claim there is at the
// round barrier (covered by the shape tests), not per access.
func (c *AuditConfig) auditor(timing bool, rec *obs.Recorder) *audit.Auditor {
	if c == nil {
		return nil
	}
	return audit.New(audit.Config{
		Timing:     timing,
		CheckEvery: c.CheckEvery,
		MinSamples: c.MinSamples,
		Recorder:   rec,
	})
}

// Err returns nil for a passing (or absent) report and a descriptive
// error for a failing one, so callers can turn the verdict into an exit
// path.
func (r *AuditReport) Err() error {
	if r == nil || r.Pass {
		return nil
	}
	detail := "no findings recorded"
	if len(r.Findings) > 0 {
		detail = r.Findings[0]
	}
	return fmt.Errorf("proram: obliviousness audit failed: %s", detail)
}

// finishAudit renders the internal report into the public digest, writing
// the JSON artifact when requested. The returned error reports only write
// failures; the verdict itself travels in the digest (see AuditReport.Err).
func finishAudit(a *audit.Auditor, out io.Writer) (*AuditReport, error) {
	if a == nil {
		return nil, nil
	}
	rep := a.Report()
	pub := &AuditReport{Pass: rep.Pass, Accesses: rep.Accesses, Findings: rep.Findings}
	if out != nil {
		if err := rep.WriteJSON(out); err != nil {
			return pub, err
		}
	}
	return pub, nil
}
