package proram

import (
	"container/list"
	"encoding/binary"
	"fmt"

	"proram/internal/oram"
	"proram/internal/seal"
)

// RAM is an oblivious RAM: a block store whose physical access pattern
// reveals nothing about which blocks are read or written. Payloads are
// AES-CTR encrypted at rest with a fresh nonce on every write-back, and
// the access pattern is produced by a full Unified Path ORAM controller
// with the configured PrORAM prefetching scheme.
//
// RAM is not safe for concurrent use; callers serialize access (as the
// single ORAM controller in the paper's hardware does).
type RAM struct {
	cfg    Config
	ctrl   *oram.Controller
	sealer *seal.Sealer

	// sealed is the "untrusted storage" for payloads, keyed by block index.
	// Absent entries read as zero blocks.
	sealed map[uint64][]byte

	// cache is the client-side plaintext block cache (the LLC stand-in).
	cache     map[uint64]*list.Element
	lru       *list.List
	now       uint64
	reads     uint64
	writes    uint64
	cacheHits uint64
}

type cacheLine struct {
	index      uint64
	data       []byte
	dirty      bool
	prefetched bool
	used       bool
}

// New builds an oblivious RAM.
func New(cfg Config) (*RAM, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	ctrl, err := oram.New(cfg.oramConfig())
	if err != nil {
		return nil, err
	}
	key := cfg.Key
	if key == nil {
		key = deriveKey(cfg.Seed)
	}
	sealer, err := seal.New(key, newNonceSource(cfg.Seed^0x5eed))
	if err != nil {
		return nil, err
	}
	r := &RAM{
		cfg:    cfg,
		ctrl:   ctrl,
		sealer: sealer,
		sealed: make(map[uint64][]byte),
		cache:  make(map[uint64]*list.Element),
		lru:    list.New(),
	}
	ctrl.SetProber(ramProber{r})
	return r, nil
}

// ramProber lets the controller's merge algorithm see the client cache.
type ramProber struct{ r *RAM }

func (p ramProber) Present(index uint64) bool {
	_, ok := p.r.cache[index]
	return ok
}

// Blocks returns the capacity in blocks.
func (r *RAM) Blocks() uint64 { return r.cfg.Blocks }

// BlockBytes returns the block size.
func (r *RAM) BlockBytes() int { return r.cfg.BlockBytes }

// Stats returns usage statistics.
func (r *RAM) Stats() Stats {
	return statsFrom(r.ctrl.Stats(), r.reads, r.writes, r.cacheHits)
}

// Read returns a copy of the block at index.
func (r *RAM) Read(index uint64) ([]byte, error) {
	if index >= r.cfg.Blocks {
		return nil, fmt.Errorf("proram: block %d out of range (%d blocks)", index, r.cfg.Blocks)
	}
	r.reads++
	line, err := r.fetch(index)
	if err != nil {
		return nil, err
	}
	out := make([]byte, r.cfg.BlockBytes)
	copy(out, line.data)
	return out, nil
}

// Write stores data (at most BlockBytes; shorter slices are zero-padded)
// into the block at index.
func (r *RAM) Write(index uint64, data []byte) error {
	if index >= r.cfg.Blocks {
		return fmt.Errorf("proram: block %d out of range (%d blocks)", index, r.cfg.Blocks)
	}
	if len(data) > r.cfg.BlockBytes {
		return fmt.Errorf("proram: %d bytes exceed the %d-byte block size", len(data), r.cfg.BlockBytes)
	}
	r.writes++
	line, err := r.fetch(index)
	if err != nil {
		return err
	}
	for i := range line.data {
		line.data[i] = 0
	}
	copy(line.data, data)
	line.dirty = true
	return nil
}

// fetch returns the cached line for index, loading it through the ORAM on
// a miss (with whatever siblings the prefetcher returns).
func (r *RAM) fetch(index uint64) (*cacheLine, error) {
	if e, ok := r.cache[index]; ok {
		r.cacheHits++
		r.lru.MoveToFront(e)
		line := e.Value.(*cacheLine)
		if line.prefetched && !line.used {
			line.used = true
			r.ctrl.NotifyPrefetchUse(index)
		}
		return line, nil
	}
	res := r.ctrl.Read(r.now, index)
	r.now = res.Done
	line, err := r.install(index, false)
	if err != nil {
		return nil, err
	}
	for _, p := range res.Prefetched {
		if _, ok := r.cache[p]; ok {
			continue
		}
		if _, err := r.install(p, true); err != nil {
			return nil, err
		}
	}
	return line, nil
}

// install decrypts a block into the cache, evicting as needed.
func (r *RAM) install(index uint64, prefetched bool) (*cacheLine, error) {
	data := make([]byte, r.cfg.BlockBytes)
	if sealed, ok := r.sealed[index]; ok {
		plain, err := r.sealer.Open(data[:0], sealed)
		if err != nil {
			return nil, fmt.Errorf("proram: block %d corrupt: %w", index, err)
		}
		data = plain
	}
	line := &cacheLine{index: index, data: data, prefetched: prefetched}
	r.cache[index] = r.lru.PushFront(line)
	for r.lru.Len() > r.cfg.CacheBlocks {
		if err := r.evictLRU(); err != nil {
			return nil, err
		}
	}
	return line, nil
}

// evictLRU writes the least-recently-used line back.
func (r *RAM) evictLRU() error {
	back := r.lru.Back()
	line := back.Value.(*cacheLine)
	r.lru.Remove(back)
	delete(r.cache, line.index)
	if line.prefetched && !line.used {
		r.ctrl.NotifyPrefetchEvict(line.index)
	}
	if !line.dirty {
		return nil
	}
	sealed, err := r.sealer.Seal(nil, line.data)
	if err != nil {
		return err
	}
	r.sealed[line.index] = sealed
	res := r.ctrl.Write(r.now, line.index)
	r.now = res.Done
	return nil
}

// Flush writes every dirty cached block back to the ORAM. The cache stays
// warm (lines remain cached, now clean).
func (r *RAM) Flush() error {
	for e := r.lru.Front(); e != nil; e = e.Next() {
		line := e.Value.(*cacheLine)
		if !line.dirty {
			continue
		}
		sealed, err := r.sealer.Seal(nil, line.data)
		if err != nil {
			return err
		}
		r.sealed[line.index] = sealed
		res := r.ctrl.Write(r.now, line.index)
		r.now = res.Done
		line.dirty = false
	}
	return nil
}

// ReadAt implements random byte-granular reads across block boundaries.
func (r *RAM) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("proram: negative offset")
	}
	bb := int64(r.cfg.BlockBytes)
	n := 0
	for n < len(p) {
		block := uint64((off + int64(n)) / bb)
		inner := (off + int64(n)) % bb
		if block >= r.cfg.Blocks {
			return n, fmt.Errorf("proram: offset %d beyond capacity", off+int64(n))
		}
		data, err := r.Read(block)
		if err != nil {
			return n, err
		}
		n += copy(p[n:], data[inner:])
	}
	return n, nil
}

// WriteAt implements random byte-granular writes across block boundaries.
func (r *RAM) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("proram: negative offset")
	}
	bb := int64(r.cfg.BlockBytes)
	n := 0
	for n < len(p) {
		block := uint64((off + int64(n)) / bb)
		inner := (off + int64(n)) % bb
		if block >= r.cfg.Blocks {
			return n, fmt.Errorf("proram: offset %d beyond capacity", off+int64(n))
		}
		data, err := r.Read(block)
		if err != nil {
			return n, err
		}
		c := copy(data[inner:], p[n:])
		if err := r.Write(block, data); err != nil {
			return n, err
		}
		n += c
	}
	return n, nil
}

// deriveKey expands a seed into a deterministic 16-byte AES key (used when
// no key is supplied; fine for simulation, not for real secrets).
func deriveKey(seed uint64) []byte {
	key := make([]byte, 16)
	binary.LittleEndian.PutUint64(key, seed*0x9e3779b97f4a7c15+1)
	binary.LittleEndian.PutUint64(key[8:], seed^0xd1b54a32d192ed03)
	return key
}
