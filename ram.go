package proram

import (
	"container/list"
	"encoding/binary"
	"fmt"

	"proram/internal/oram"
	"proram/internal/seal"
	"proram/internal/shard"
)

// RAM is an oblivious RAM: a block store whose physical access pattern
// reveals nothing about which blocks are read or written. Payloads are
// AES-CTR encrypted at rest with a fresh nonce on every write-back, and
// the access pattern is produced by a full Unified Path ORAM controller
// with the configured PrORAM prefetching scheme.
//
// RAM is not safe for concurrent use: it models the paper's single ORAM
// controller, whose state machine admits one access at a time, so callers
// serialize. For concurrent clients use NewSharded, which partitions the
// address space across independent controllers and schedules requests in
// padded rounds — concurrency there is safe because each partition's
// state is confined to one worker goroutine and the cross-partition
// access pattern is fixed per round regardless of the request mix.
type RAM struct {
	cfg   Config
	store *shard.Store

	// cache is the client-side plaintext block cache (the LLC stand-in).
	cache     map[uint64]*list.Element
	lru       *list.List
	reads     uint64
	writes    uint64
	cacheHits uint64
}

type cacheLine struct {
	index      uint64
	data       []byte
	dirty      bool
	prefetched bool
	used       bool
}

// New builds an oblivious RAM.
func New(cfg Config) (*RAM, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	store, err := newStore(cfg)
	if err != nil {
		return nil, err
	}
	r := &RAM{
		cfg:   cfg,
		store: store,
		cache: make(map[uint64]*list.Element),
		lru:   list.New(),
	}
	store.Ctrl.SetProber(ramProber{r})
	return r, nil
}

// newStore assembles the controller + sealer + payload storage bundle the
// unified RAM shares with the sharded frontend's partitions.
func newStore(cfg Config) (*shard.Store, error) {
	ctrl, err := oram.New(cfg.oramConfig())
	if err != nil {
		return nil, err
	}
	sealer, err := seal.New(cfg.sealKey(), cfg.nonceSource())
	if err != nil {
		return nil, err
	}
	return shard.NewStore(ctrl, sealer, cfg.BlockBytes), nil
}

// ramProber lets the controller's merge algorithm see the client cache.
type ramProber struct{ r *RAM }

func (p ramProber) Present(index uint64) bool {
	_, ok := p.r.cache[index]
	return ok
}

// Blocks returns the capacity in blocks.
func (r *RAM) Blocks() uint64 { return r.cfg.Blocks }

// BlockBytes returns the block size.
func (r *RAM) BlockBytes() int { return r.cfg.BlockBytes }

// Stats returns usage statistics.
func (r *RAM) Stats() Stats {
	return statsFrom(r.store.Ctrl.Stats(), r.reads, r.writes, r.cacheHits)
}

// Read returns a copy of the block at index.
func (r *RAM) Read(index uint64) ([]byte, error) {
	if index >= r.cfg.Blocks {
		return nil, fmt.Errorf("proram: block %d out of range (%d blocks)", index, r.cfg.Blocks)
	}
	r.reads++
	line, err := r.fetch(index)
	if err != nil {
		return nil, err
	}
	out := make([]byte, r.cfg.BlockBytes)
	copy(out, line.data)
	return out, nil
}

// Write stores data (at most BlockBytes; shorter slices are zero-padded)
// into the block at index.
func (r *RAM) Write(index uint64, data []byte) error {
	if index >= r.cfg.Blocks {
		return fmt.Errorf("proram: block %d out of range (%d blocks)", index, r.cfg.Blocks)
	}
	if len(data) > r.cfg.BlockBytes {
		return fmt.Errorf("proram: %d bytes exceed the %d-byte block size", len(data), r.cfg.BlockBytes)
	}
	r.writes++
	line, err := r.fetch(index)
	if err != nil {
		return err
	}
	for i := range line.data {
		line.data[i] = 0
	}
	copy(line.data, data)
	line.dirty = true
	return nil
}

// fetch returns the cached line for index, loading it through the ORAM on
// a miss (with whatever siblings the prefetcher returns).
func (r *RAM) fetch(index uint64) (*cacheLine, error) {
	if e, ok := r.cache[index]; ok {
		r.cacheHits++
		r.lru.MoveToFront(e)
		line := e.Value.(*cacheLine)
		if line.prefetched && !line.used {
			line.used = true
			r.store.Ctrl.NotifyPrefetchUse(index)
		}
		return line, nil
	}
	res := r.store.DemandRead(index)
	line, err := r.install(index, false)
	if err != nil {
		return nil, err
	}
	for _, p := range res.Prefetched {
		if _, ok := r.cache[p]; ok {
			continue
		}
		if _, err := r.install(p, true); err != nil {
			return nil, err
		}
	}
	return line, nil
}

// install decrypts a block into the cache, evicting as needed.
func (r *RAM) install(index uint64, prefetched bool) (*cacheLine, error) {
	data, err := r.store.Load(index)
	if err != nil {
		return nil, fmt.Errorf("proram: %w", err)
	}
	line := &cacheLine{index: index, data: data, prefetched: prefetched}
	r.cache[index] = r.lru.PushFront(line)
	for r.lru.Len() > r.cfg.CacheBlocks {
		if err := r.evictLRU(); err != nil {
			return nil, err
		}
	}
	return line, nil
}

// evictLRU writes the least-recently-used line back.
func (r *RAM) evictLRU() error {
	back := r.lru.Back()
	line := back.Value.(*cacheLine)
	r.lru.Remove(back)
	delete(r.cache, line.index)
	if line.prefetched && !line.used {
		r.store.Ctrl.NotifyPrefetchEvict(line.index)
	}
	if !line.dirty {
		return nil
	}
	return r.store.WriteBack(line.index, line.data)
}

// Flush writes every dirty cached block back to the ORAM. The cache stays
// warm (lines remain cached, now clean).
func (r *RAM) Flush() error {
	for e := r.lru.Front(); e != nil; e = e.Next() {
		line := e.Value.(*cacheLine)
		if !line.dirty {
			continue
		}
		if err := r.store.WriteBack(line.index, line.data); err != nil {
			return err
		}
		line.dirty = false
	}
	return nil
}

// ReadAt implements random byte-granular reads across block boundaries.
func (r *RAM) ReadAt(p []byte, off int64) (int, error) {
	return readAt(r, r.cfg, p, off)
}

// WriteAt implements random byte-granular writes across block boundaries.
func (r *RAM) WriteAt(p []byte, off int64) (int, error) {
	return writeAt(r, r.cfg, p, off)
}

// deriveKey expands a seed into a deterministic 16-byte AES key (used when
// no key is supplied; fine for simulation, not for real secrets).
func deriveKey(seed uint64) []byte {
	key := make([]byte, 16)
	binary.LittleEndian.PutUint64(key, seed*0x9e3779b97f4a7c15+1)
	binary.LittleEndian.PutUint64(key[8:], seed^0xd1b54a32d192ed03)
	return key
}
