package proram

import (
	"errors"
	"fmt"
	"io"

	"proram/internal/obs/audit"
	"proram/internal/shard"
	"proram/internal/sim"
)

// ShardedRAM is the concurrent oblivious RAM: the block address space is
// partitioned across Config.Partitions independent Path ORAM controllers
// (each with its own stash, position map, and PrORAM prefetcher), and a
// batching scheduler serves any number of concurrent goroutines in padded
// rounds. Every round, every partition performs exactly Config.RoundSlots
// indistinguishable ORAM accesses — demand work plus dummy padding — so
// the cross-partition access sequence leaks nothing about the request mix
// beyond the total number of rounds.
//
// ShardedRAM is safe for concurrent use. Safety comes from confinement,
// not locking hot state: each partition's ORAM is owned by one worker
// goroutine, the dispatcher alone forms rounds, and clients only ever
// touch admission queues and reply channels.
type ShardedRAM struct {
	cfg        Config
	f          *shard.Frontend
	metricsOut io.Writer
	aud        *audit.Auditor
	auditOut   io.Writer
	auditRep   *AuditReport
}

// ShardedOptions tunes the concurrent frontend beyond Config.
type ShardedOptions struct {
	// RecordArrivals keeps the admission log that makes the run
	// replayable (see internal/shard.Replay).
	RecordArrivals bool
	// RecordAccesses keeps the canonical global access sequence.
	RecordAccesses bool
	// Obs enables scheduler metrics and tracing; outputs are finalized by
	// Close.
	Obs *ObsConfig
	// Audit arms the live obliviousness auditor; its report is finalized
	// by Close, which then also fails when the audit does. See AuditConfig.
	Audit *AuditConfig
}

// NewSharded builds a partitioned oblivious RAM. Close it to stop the
// scheduler goroutines and finalize observability outputs.
func NewSharded(cfg Config, opt ShardedOptions) (*ShardedRAM, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	scfg := cfg.shardConfig()
	scfg.RecordArrivals = opt.RecordArrivals
	scfg.RecordAccesses = opt.RecordAccesses
	scfg.Recorder = opt.Obs.recorder()
	scfg.Audit = opt.Audit.auditor(scfg.Banked == nil, scfg.Recorder)
	if opt.Audit != nil {
		scfg.Leak = opt.Audit.Leak.internal()
	}
	f, err := shard.New(scfg)
	if err != nil {
		return nil, err
	}
	s := &ShardedRAM{cfg: cfg, f: f, aud: scfg.Audit}
	if opt.Obs != nil {
		s.metricsOut = opt.Obs.MetricsOut
	}
	if opt.Audit != nil {
		s.auditOut = opt.Audit.Out
	}
	return s, nil
}

// Blocks returns the capacity in blocks.
func (s *ShardedRAM) Blocks() uint64 { return s.cfg.Blocks }

// BlockBytes returns the block size.
func (s *ShardedRAM) BlockBytes() int { return s.cfg.BlockBytes }

// Read returns a copy of the block at index. Safe for concurrent use.
func (s *ShardedRAM) Read(index uint64) ([]byte, error) {
	return s.f.Read(index)
}

// Write stores data (at most BlockBytes; shorter slices are zero-padded)
// into the block at index. Safe for concurrent use.
func (s *ShardedRAM) Write(index uint64, data []byte) error {
	return s.f.Write(index, data)
}

// ReadAt implements byte-granular reads across block boundaries. Each
// block is read through the scheduler individually; a concurrent writer
// can interleave between blocks.
func (s *ShardedRAM) ReadAt(p []byte, off int64) (int, error) {
	return readAt(s, s.cfg, p, off)
}

// WriteAt implements byte-granular writes across block boundaries via
// per-block read-modify-write. The per-block update is not atomic against
// concurrent WriteAt calls overlapping the same block; callers that need
// atomicity serialize at block granularity.
func (s *ShardedRAM) WriteAt(p []byte, off int64) (int, error) {
	return writeAt(s, s.cfg, p, off)
}

// Flush writes every dirty cached block back through the ORAMs, with all
// partitions padded to the same access count. It waits for a gap in
// admissions, so flush under sustained load from other goroutines blocks.
func (s *ShardedRAM) Flush() error { return s.f.Flush() }

// Close drains queued requests, stops the scheduler and workers, and
// finalizes observability and audit outputs. Requests admitted after
// Close fail. When an auditor was armed and its verdict is a failure,
// Close writes the report, keeps it available via Audit, and returns the
// failure as its error.
func (s *ShardedRAM) Close() error {
	err := s.f.Close()
	if s.aud != nil {
		rep, aerr := finishAudit(s.aud, s.auditOut)
		s.auditRep = rep
		if err == nil {
			err = aerr
		}
		if err == nil {
			err = rep.Err()
		}
	}
	if rec := s.f.Recorder(); rec.Enabled() {
		if s.metricsOut != nil {
			if werr := rec.WriteMetrics(s.metricsOut); err == nil {
				err = werr
			}
		}
		if cerr := rec.CloseTrace(); err == nil {
			err = cerr
		}
	}
	return err
}

// Audit returns the audit digest. It is nil until Close finalizes the
// report (or when no auditor was armed).
func (s *ShardedRAM) Audit() *AuditReport { return s.auditRep }

// Stats aggregates usage statistics across partitions into the same shape
// the unified RAM reports. DummyAccesses includes the scheduler's round
// padding on top of the controllers' own timing-channel dummies.
func (s *ShardedRAM) Stats() Stats {
	sch := s.f.Stats()
	var agg Stats
	agg.Reads = sch.Reads
	agg.Writes = sch.Writes
	agg.CacheHits = sch.CacheHits
	agg.DummyAccesses = sch.DummyAccesses + sch.FlushPad
	for _, p := range sch.Partitions {
		agg.PathAccesses += p.ORAM.PathAccesses
		agg.BackgroundEvictions += p.ORAM.BackgroundEvictions
		agg.DummyAccesses += p.ORAM.DummyAccesses
		agg.Merges += p.ORAM.Merges
		agg.Breaks += p.ORAM.Breaks
		agg.PrefetchIssued += p.ORAM.PrefetchIssued
		agg.PrefetchHits += p.ORAM.PrefetchHits
		agg.PrefetchUnused += p.ORAM.PrefetchUnused
		if p.ORAM.StashHighWater > agg.StashHighWater {
			agg.StashHighWater = p.ORAM.StashHighWater
		}
	}
	return agg
}

// SchedStats reports the scheduler's own accounting.
func (s *ShardedRAM) SchedStats() SchedStats {
	return schedStatsFrom(s.cfg.Partitions, s.f.Stats())
}

// shardConfig lowers the public configuration to the internal frontend's.
func (c Config) shardConfig() shard.Config {
	o := c.oramConfig()
	return shard.Config{
		Partitions:    c.Partitions,
		RoundSlots:    c.RoundSlots,
		Blocks:        c.Blocks,
		BlockBytes:    c.BlockBytes,
		CacheBlocks:   c.CacheBlocks,
		MaxSuperBlock: o.Super.MaxSize,
		Key:           c.sealKey(),
		Seed:          c.Seed,
		ORAM:          o,
		Banked:        c.DRAM.bankedConfig(),
	}
}

func schedStatsFrom(parts int, sch shard.Stats) SchedStats {
	return SchedStats{
		Partitions:    parts,
		RoundSlots:    sch.RoundSlots,
		Rounds:        sch.Rounds,
		FlushRounds:   sch.FlushRounds,
		RealAccesses:  sch.RealAccesses,
		PadAccesses:   sch.DummyAccesses + sch.FlushPad,
		Carryovers:    sch.Carryovers,
		CacheHits:     sch.CacheHits,
		Cycles:        sch.Cycles,
		FillRatio:     sch.FillRatio(),
		RequestErrors: sch.RequestErrors,
	}
}

// ShardedSimReport summarizes one closed-loop sharded simulation.
type ShardedSimReport struct {
	// Ops is the number of workload operations served.
	Ops uint64
	// PathAccesses sums the partitions' full recursive ORAM accesses.
	PathAccesses uint64
	// Sched is the scheduler's accounting (rounds, padding, makespan).
	Sched SchedStats
}

// SimulateSharded replays a workload's memory trace through a partitioned
// frontend under a closed-loop admission model: `clients` concurrent
// clients each keep one request outstanding, so every scheduling round
// admits the next `clients` operations of the trace. The run is
// deterministic — it uses the replay scheduler, so the same workload,
// configuration and client count always produce the same report.
func SimulateSharded(cfg Config, w Workload, clients int) (ShardedSimReport, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return ShardedSimReport{}, err
	}
	rep, _, err := sim.RunSharded(cfg.shardConfig(), w.generator(), clients)
	if err != nil {
		return ShardedSimReport{}, err
	}
	r := ShardedSimReport{Ops: rep.Ops, Sched: schedStatsFrom(cfg.Partitions, rep.Stats)}
	for _, p := range rep.Stats.Partitions {
		r.PathAccesses += p.ORAM.PathAccesses
	}
	return r, nil
}

// SimulateShardedAudited is SimulateSharded with the obliviousness
// auditor tapped into the run. The report digest is returned even when
// the audit fails — the error reports operational failures only, so
// callers (the CLIs, CI) decide how a failed verdict exits.
func SimulateShardedAudited(cfg Config, w Workload, clients int, ac AuditConfig) (ShardedSimReport, *AuditReport, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return ShardedSimReport{}, nil, err
	}
	scfg := cfg.shardConfig()
	scfg.Audit = ac.auditor(scfg.Banked == nil, nil)
	scfg.Leak = ac.Leak.internal()
	rep, _, err := sim.RunSharded(scfg, w.generator(), clients)
	if err != nil {
		return ShardedSimReport{}, nil, err
	}
	r := ShardedSimReport{Ops: rep.Ops, Sched: schedStatsFrom(cfg.Partitions, rep.Stats)}
	for _, p := range rep.Stats.Partitions {
		r.PathAccesses += p.ORAM.PathAccesses
	}
	pub, aerr := finishAudit(scfg.Audit, ac.Out)
	return r, pub, aerr
}

// SchedStats summarizes what the sharded scheduler did: round counts, the
// real/padding split of the fixed per-round bandwidth, and the simulated
// makespan (the slowest partition's clock).
type SchedStats struct {
	Partitions    int
	RoundSlots    int
	Rounds        uint64
	FlushRounds   uint64
	RealAccesses  uint64
	PadAccesses   uint64
	Carryovers    uint64
	CacheHits     uint64
	Cycles        uint64
	FillRatio     float64
	RequestErrors uint64
}

// blockDevice is the block-level API shared by RAM and ShardedRAM, used
// by the byte-granular adapters.
type blockDevice interface {
	Read(index uint64) ([]byte, error)
	Write(index uint64, data []byte) error
}

var errNegativeOffset = errors.New("proram: negative offset")

func errBeyondCapacity(off int64) error {
	return fmt.Errorf("proram: offset %d beyond capacity", off)
}

// readAt implements byte-granular reads over any block device.
func readAt(d blockDevice, cfg Config, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errNegativeOffset
	}
	bb := int64(cfg.BlockBytes)
	n := 0
	for n < len(p) {
		block := uint64((off + int64(n)) / bb)
		inner := (off + int64(n)) % bb
		if block >= cfg.Blocks {
			return n, errBeyondCapacity(off + int64(n))
		}
		data, err := d.Read(block)
		if err != nil {
			return n, err
		}
		n += copy(p[n:], data[inner:])
	}
	return n, nil
}

// writeAt implements byte-granular read-modify-write over any block device.
func writeAt(d blockDevice, cfg Config, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errNegativeOffset
	}
	bb := int64(cfg.BlockBytes)
	n := 0
	for n < len(p) {
		block := uint64((off + int64(n)) / bb)
		inner := (off + int64(n)) % bb
		if block >= cfg.Blocks {
			return n, errBeyondCapacity(off + int64(n))
		}
		data, err := d.Read(block)
		if err != nil {
			return n, err
		}
		c := copy(data[inner:], p[n:])
		if err := d.Write(block, data); err != nil {
			return n, err
		}
		n += c
	}
	return n, nil
}
