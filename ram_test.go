package proram

import (
	"bytes"
	"testing"
	"testing/quick"

	"proram/internal/rng"
)

func testRAM(t *testing.T, mutate func(*Config)) *RAM {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Blocks = 1 << 12
	cfg.CacheBlocks = 64
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRAMReadYourWrites(t *testing.T) {
	r := testRAM(t, nil)
	msg := []byte("hello oblivious world")
	if err := r.Write(17, msg); err != nil {
		t.Fatal(err)
	}
	got, err := r.Read(17)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len(msg)], msg) {
		t.Fatalf("read back %q", got[:len(msg)])
	}
	// Unwritten blocks read as zeros.
	zero, err := r.Read(18)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range zero {
		if b != 0 {
			t.Fatal("unwritten block not zero")
		}
	}
}

func TestRAMSurvivesCachePressure(t *testing.T) {
	r := testRAM(t, nil)
	// Write far more blocks than the cache holds, then read them all back.
	rnd := rng.New(7)
	want := map[uint64]byte{}
	for i := 0; i < 500; i++ {
		idx := rnd.Uint64n(r.Blocks())
		v := byte(rnd.Uint64n(255) + 1)
		want[idx] = v
		if err := r.Write(idx, []byte{v}); err != nil {
			t.Fatal(err)
		}
	}
	for idx, v := range want {
		got, err := r.Read(idx)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != v {
			t.Fatalf("block %d = %d, want %d", idx, got[0], v)
		}
	}
	s := r.Stats()
	if s.PathAccesses == 0 || s.CacheHits == 0 {
		t.Fatalf("implausible stats: %+v", s)
	}
}

func TestRAMPropertyRandomOps(t *testing.T) {
	r := testRAM(t, func(c *Config) { c.Scheme = SchemeDynamic })
	model := map[uint64][]byte{}
	rnd := rng.New(11)
	for i := 0; i < 3000; i++ {
		idx := rnd.Uint64n(256) // hot region encourages merging
		if rnd.Bool() {
			data := make([]byte, 8)
			for j := range data {
				data[j] = byte(rnd.Uint64())
			}
			model[idx] = data
			if err := r.Write(idx, data); err != nil {
				t.Fatal(err)
			}
		} else {
			got, err := r.Read(idx)
			if err != nil {
				t.Fatal(err)
			}
			want := model[idx]
			if want == nil {
				continue
			}
			if !bytes.Equal(got[:8], want) {
				t.Fatalf("op %d: block %d = %x, want %x", i, idx, got[:8], want)
			}
		}
	}
	if r.Stats().Merges == 0 {
		t.Fatal("hot workload never merged super blocks")
	}
}

func TestRAMFlush(t *testing.T) {
	r := testRAM(t, nil)
	if err := r.Write(3, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if r.Stats().Writes != 1 {
		t.Fatalf("stats %+v", r.Stats())
	}
	// The sealed store now holds the block; a fresh read (after cache
	// churn) must decrypt it correctly.
	for i := uint64(100); i < 400; i++ {
		if _, err := r.Read(i); err != nil {
			t.Fatal(err)
		}
	}
	got, err := r.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 9 {
		t.Fatalf("flushed block read back %d", got[0])
	}
}

func TestRAMBounds(t *testing.T) {
	r := testRAM(t, nil)
	if _, err := r.Read(r.Blocks()); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if err := r.Write(r.Blocks(), nil); err == nil {
		t.Fatal("out-of-range write accepted")
	}
	if err := r.Write(0, make([]byte, r.BlockBytes()+1)); err == nil {
		t.Fatal("oversized write accepted")
	}
}

func TestRAMReadWriteAt(t *testing.T) {
	r := testRAM(t, nil)
	msg := []byte("spans multiple blocks when written at an odd offset .....")
	off := int64(r.BlockBytes()*5 - 10)
	n, err := r.WriteAt(msg, off)
	if err != nil || n != len(msg) {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	got := make([]byte, len(msg))
	if _, err := r.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("ReadAt = %q", got)
	}
	if _, err := r.ReadAt(make([]byte, 1), -1); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := r.ReadAt(make([]byte, 1), int64(r.Blocks())*int64(r.BlockBytes())); err == nil {
		t.Fatal("offset beyond capacity accepted")
	}
}

func TestRAMQuickRoundTrip(t *testing.T) {
	r := testRAM(t, nil)
	f := func(idx uint16, payload []byte) bool {
		block := uint64(idx) % r.Blocks()
		if len(payload) > r.BlockBytes() {
			payload = payload[:r.BlockBytes()]
		}
		if err := r.Write(block, payload); err != nil {
			return false
		}
		got, err := r.Read(block)
		if err != nil {
			return false
		}
		return bytes.Equal(got[:len(payload)], payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Blocks = 1
	if _, err := New(cfg); err == nil {
		t.Fatal("tiny capacity accepted")
	}
	cfg = DefaultConfig()
	cfg.CacheBlocks = 1
	if _, err := New(cfg); err == nil {
		t.Fatal("tiny cache accepted")
	}
	cfg = DefaultConfig()
	cfg.Scheme = Scheme(42)
	if _, err := New(cfg); err == nil {
		t.Fatal("bogus scheme accepted")
	}
	cfg = DefaultConfig()
	cfg.Key = []byte("bad")
	if _, err := New(cfg); err == nil {
		t.Fatal("bad key accepted")
	}
}

func TestSchemeString(t *testing.T) {
	if SchemeNone.String() != "none" || SchemeStatic.String() != "static" ||
		SchemeDynamic.String() != "dynamic" {
		t.Fatal("Scheme.String mismatch")
	}
}

func TestStatsPrefetchMissRate(t *testing.T) {
	s := Stats{PrefetchHits: 3, PrefetchUnused: 1}
	if got := s.PrefetchMissRate(); got != 0.25 {
		t.Fatalf("miss rate %v", got)
	}
	if (Stats{}).PrefetchMissRate() != 0 {
		t.Fatal("empty miss rate nonzero")
	}
}

func TestRAMSchemesAllWork(t *testing.T) {
	for _, scheme := range []Scheme{SchemeNone, SchemeStatic, SchemeDynamic} {
		r := testRAM(t, func(c *Config) { c.Scheme = scheme })
		for i := uint64(0); i < 64; i++ {
			if err := r.Write(i, []byte{byte(i)}); err != nil {
				t.Fatalf("%v: %v", scheme, err)
			}
		}
		for i := uint64(0); i < 64; i++ {
			got, err := r.Read(i)
			if err != nil || got[0] != byte(i) {
				t.Fatalf("%v: block %d = %v, %v", scheme, i, got[0], err)
			}
		}
	}
}
