package proram

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func testSharded(t *testing.T, mutate func(*Config)) *ShardedRAM {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Blocks = 1 << 12
	cfg.CacheBlocks = 512
	cfg.Partitions = 8
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := NewSharded(cfg, ShardedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestShardedConcurrentSmoke is the public-API concurrency smoke test the
// CI race job leans on: eight goroutines hammer a Partitions=8 ShardedRAM
// through every public entry point (Read, Write, ReadAt, WriteAt), each on
// its own address stripe, and read their own writes back. Under -race this
// also proves the confinement story end to end from the public surface.
func TestShardedConcurrentSmoke(t *testing.T) {
	s := testSharded(t, nil)
	const clients, span = 8, 16
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			base := uint64(c) * span
			for i := uint64(0); i < span; i++ {
				want := []byte(fmt.Sprintf("client%d-block%d", c, i))
				if err := s.Write(base+i, want); err != nil {
					t.Errorf("client %d write: %v", c, err)
					return
				}
				got, err := s.Read(base + i)
				if err != nil {
					t.Errorf("client %d read: %v", c, err)
					return
				}
				if !bytes.Equal(got[:len(want)], want) {
					t.Errorf("client %d block %d: got %q, want %q", c, base+i, got[:len(want)], want)
					return
				}
			}
			// Byte-granular adapters, offset into a stripe far from the
			// block writes above so clients stay disjoint.
			off := int64(uint64(s.BlockBytes()) * (2048 + uint64(c)*span))
			msg := []byte(fmt.Sprintf("spanning-%d", c))
			if _, err := s.WriteAt(msg, off+int64(s.BlockBytes())-4); err != nil {
				t.Errorf("client %d WriteAt: %v", c, err)
				return
			}
			buf := make([]byte, len(msg))
			if _, err := s.ReadAt(buf, off+int64(s.BlockBytes())-4); err != nil {
				t.Errorf("client %d ReadAt: %v", c, err)
				return
			}
			if !bytes.Equal(buf, msg) {
				t.Errorf("client %d ReadAt got %q, want %q", c, buf, msg)
			}
		}(c)
	}
	wg.Wait()

	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Reads == 0 || st.Writes == 0 {
		t.Fatalf("stats recorded no traffic: %+v", st)
	}
	sch := s.SchedStats()
	if sch.Partitions != 8 {
		t.Fatalf("SchedStats.Partitions = %d, want 8", sch.Partitions)
	}
	if sch.Rounds == 0 || sch.RealAccesses == 0 {
		t.Fatalf("scheduler ran no rounds: %+v", sch)
	}
	if sch.RealAccesses+sch.PadAccesses < sch.Rounds*uint64(sch.RoundSlots) {
		t.Fatalf("round padding contract violated: %d real + %d pad over %d rounds of %d slots",
			sch.RealAccesses, sch.PadAccesses, sch.Rounds, sch.RoundSlots)
	}
	if sch.RequestErrors != 0 {
		t.Fatalf("scheduler recorded %d request errors", sch.RequestErrors)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(0); err == nil {
		t.Fatal("Read after Close succeeded")
	}
}

// TestShardedMatchesUnifiedContents: the same write set read back through
// a unified RAM and a sharded one yields the same data — partitioning
// changes the access pattern, never the contents.
func TestShardedMatchesUnifiedContents(t *testing.T) {
	r := testRAM(t, nil)
	s := testSharded(t, nil)
	defer s.Close()
	for i := uint64(0); i < 96; i++ {
		data := []byte{byte(i), byte(i >> 3), 0xAB}
		if err := r.Write(i*31%r.Blocks(), data); err != nil {
			t.Fatal(err)
		}
		if err := s.Write(i*31%s.Blocks(), data); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 96; i++ {
		a, err := r.Read(i * 31 % r.Blocks())
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Read(i * 31 % s.Blocks())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("block %d: unified %x, sharded %x", i*31%r.Blocks(), a[:8], b[:8])
		}
	}
}
