module proram

go 1.22
