// Package sim wires the full secure-processor memory system together — the
// in-order core, the L1/LLC hierarchy, the optional stream prefetcher, and
// either insecure DRAM or the Path ORAM controller — and runs a workload
// trace to completion, producing the measurements every figure of the
// paper is built from.
package sim

import (
	"fmt"

	"proram/internal/cache"
	"proram/internal/cpu"
	"proram/internal/dram"
	"proram/internal/dram/banked"
	"proram/internal/obs"
	"proram/internal/oram"
	"proram/internal/prefetch"
	"proram/internal/superblock"
	"proram/internal/trace"
)

// Tech selects the main-memory technology.
type Tech int

const (
	// TechDRAM is the insecure baseline with bank-level parallelism.
	TechDRAM Tech = iota
	// TechORAM is the Path ORAM controller (with whatever super block
	// scheme its config selects).
	TechORAM
)

func (t Tech) String() string {
	if t == TechDRAM {
		return "dram"
	}
	return "oram"
}

// Config describes one simulated system.
type Config struct {
	Tech Tech
	// BlockBytes is the cacheline / ORAM block size.
	BlockBytes int
	// Hier is the cache hierarchy; its line size must equal BlockBytes.
	Hier cache.HierarchyConfig
	// DRAM is the memory channel (used directly in DRAM mode and as the
	// ORAM's channel model in ORAM mode).
	DRAM dram.Config
	// ORAM is the controller configuration (ORAM mode only); its
	// BlockBytes and DRAM fields are overwritten from the outer config to
	// keep the system self-consistent.
	ORAM oram.Config
	// Prefetch enables the traditional stream prefetcher of §5.2 when
	// non-nil. Mutually exclusive with an ORAM super block scheme.
	Prefetch *prefetch.Config
	// WarmupOps runs the first WarmupOps operations of the trace without
	// measuring them (caches fill, super blocks mature), mirroring the
	// region-of-interest methodology of architecture simulators. The
	// reported Cycles cover only the measured remainder.
	WarmupOps uint64
	// Obs attaches the observability recorder; nil (the default) disables
	// all instrumentation at the cost of one pointer check per site.
	Obs *obs.Recorder
	// ObsLabel names this system in multi-system traces; empty derives a
	// label from Tech.
	ObsLabel string
}

// DefaultConfig returns the paper's Table 1 system with the given memory
// technology and no prefetching.
func DefaultConfig(tech Tech) Config {
	o := oram.DefaultConfig()
	o.Prefill = true // the paper's ORAM is initialized (full tree)
	return Config{
		Tech:       tech,
		BlockBytes: 128,
		Hier:       cache.DefaultHierarchyConfig(),
		DRAM:       dram.DefaultConfig(),
		ORAM:       o,
	}
}

// Validate reports whether the configuration is coherent.
func (c Config) Validate() error {
	if c.BlockBytes < 8 {
		return fmt.Errorf("sim: BlockBytes %d too small", c.BlockBytes)
	}
	if err := c.Hier.Validate(); err != nil {
		return err
	}
	if c.Hier.L1.LineBytes != c.BlockBytes {
		return fmt.Errorf("sim: cacheline %d != block size %d", c.Hier.L1.LineBytes, c.BlockBytes)
	}
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	if c.Prefetch != nil {
		if err := c.Prefetch.Validate(); err != nil {
			return err
		}
		if c.Tech == TechORAM && c.ORAM.Super.Scheme != superblock.None {
			return fmt.Errorf("sim: stream prefetcher and super block scheme are mutually exclusive")
		}
	}
	return nil
}

// Report is everything a run measured.
type Report struct {
	// Core timing.
	Cycles        uint64
	MemOps        uint64
	ComputeCycles uint64

	// Cache behaviour.
	L1Hits    uint64
	L1Misses  uint64
	LLCHits   uint64
	LLCMisses uint64

	// Demand traffic reaching memory.
	MemReads  uint64
	MemWrites uint64

	// MemoryAccesses is the energy proxy the paper plots: ORAM path
	// accesses in ORAM mode, DRAM line accesses in DRAM mode.
	MemoryAccesses uint64

	// Stream prefetcher outcomes (Prefetch != nil only).
	StreamIssued uint64
	StreamHits   uint64
	StreamUnused uint64

	// Subsystem detail.
	ORAM oram.Stats
	DRAM dram.Stats
	// Banked carries the banked device's row-buffer and channel statistics
	// when the ORAM controller runs on one (ORAM.Banked set); zero otherwise.
	Banked banked.Stats
}

// PrefetchMissRate returns the resolved miss rate of whichever prefetching
// mechanism was active (super blocks or the stream prefetcher).
func (r Report) PrefetchMissRate() float64 {
	if r.StreamIssued > 0 {
		total := r.StreamHits + r.StreamUnused
		if total == 0 {
			return 0
		}
		return float64(r.StreamUnused) / float64(total)
	}
	return r.ORAM.PrefetchMissRate()
}

// memSystem implements cpu.MemSystem over the hierarchy and backing store.
type memSystem struct {
	cfg     Config
	hier    *cache.Hierarchy
	dram    *dram.Model
	ctrl    *oram.Controller
	pf      *prefetch.Stream
	pending map[uint64]uint64 // block index -> in-flight prefetch ready time
	rep     *Report
	scratch []uint64
	obs     *obs.Recorder // nil when observability is off

	superActive bool
	maxIndex    uint64 // addressable blocks (bounds prefetches)
}

// New builds a runnable system.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	hier, err := cache.NewHierarchy(cfg.Hier)
	if err != nil {
		return nil, err
	}
	m := &memSystem{
		cfg:     cfg,
		hier:    hier,
		pending: make(map[uint64]uint64),
		rep:     &Report{},
	}
	switch cfg.Tech {
	case TechDRAM:
		m.dram = dram.New(cfg.DRAM)
		m.maxIndex = ^uint64(0)
	case TechORAM:
		ocfg := cfg.ORAM
		ocfg.BlockBytes = cfg.BlockBytes
		ocfg.DRAM = cfg.DRAM
		ctrl, err := oram.New(ocfg)
		if err != nil {
			return nil, err
		}
		ctrl.SetProber(hier)
		m.ctrl = ctrl
		m.superActive = ocfg.Super.Scheme != superblock.None
		m.maxIndex = ocfg.NumBlocks
	default:
		return nil, fmt.Errorf("sim: unknown tech %d", cfg.Tech)
	}
	if cfg.Prefetch != nil {
		m.pf = prefetch.New(*cfg.Prefetch)
	}
	if cfg.Obs.Enabled() {
		m.attachObs(cfg.Obs, cfg.ObsLabel)
	}
	return &System{mem: m}, nil
}

// attachObs declares this system as a trace process and instruments every
// component. BeginProcess must precede the metric registrations so that
// systems after the first get pid-namespaced names.
func (m *memSystem) attachObs(rec *obs.Recorder, label string) {
	if label == "" {
		label = m.cfg.Tech.String()
	}
	rec.BeginProcess(label)
	m.obs = rec
	if m.ctrl != nil {
		m.ctrl.SetRecorder(rec)
	}
	if m.pf != nil {
		m.pf.Instrument(rec.Counter("stream.issued"))
	}
	if m.dram != nil {
		m.dram.Instrument(rec.Counter("dram.accesses"),
			rec.Counter("dram.bulk_transfers"), rec.Counter("dram.bytes_moved"))
		// In DRAM mode the memory system owns the clock, so the utilization
		// series is sampled here (the ORAM controller samples its own).
		util := rec.Series("channel_utilization")
		var prevBusy, prevCycle uint64
		rec.OnSample(func(cycle uint64) {
			busy := m.dram.Stats().BusyCycles
			if cycle > prevCycle {
				util.Record(cycle, float64(busy-prevBusy)/float64(cycle-prevCycle))
			} else {
				util.Record(cycle, 0)
			}
			prevBusy, prevCycle = busy, cycle
		})
	}
}

// System is a configured simulator ready to run one trace.
type System struct {
	mem *memSystem
	ran bool
}

// ORAM exposes the controller (nil in DRAM mode) for white-box inspection.
func (s *System) ORAM() *oram.Controller { return s.mem.ctrl }

// Run executes the workload and returns the report. A System runs one
// trace; build a fresh one per experiment for a cold start. When
// WarmupOps is set, the first WarmupOps operations execute unmeasured and
// the report covers only the remainder.
func (s *System) Run(g trace.Generator) (Report, error) {
	if s.ran {
		return Report{}, fmt.Errorf("sim: System.Run called twice; build a fresh System")
	}
	s.ran = true

	var snap Report
	start := uint64(0)
	if w := s.mem.cfg.WarmupOps; w > 0 {
		warm := cpu.Run(trace.Take(g, w), s.mem, 0)
		start = warm.Cycles
		snap = s.mem.snapshot()
	}
	core := cpu.Run(g, s.mem, start)
	s.mem.finish(core.Cycles)

	cur := s.mem.snapshot()
	rep := Report{
		Cycles:        core.Cycles - start,
		MemOps:        core.MemOps,
		ComputeCycles: core.ComputeCycles,
		L1Hits:        cur.L1Hits - snap.L1Hits,
		L1Misses:      cur.L1Misses - snap.L1Misses,
		LLCHits:       cur.LLCHits - snap.LLCHits,
		LLCMisses:     cur.LLCMisses - snap.LLCMisses,
		MemReads:      cur.MemReads - snap.MemReads,
		MemWrites:     cur.MemWrites - snap.MemWrites,
		StreamIssued:  cur.StreamIssued - snap.StreamIssued,
		StreamHits:    cur.StreamHits - snap.StreamHits,
		StreamUnused:  cur.StreamUnused - snap.StreamUnused,
		ORAM:          cur.ORAM.Sub(snap.ORAM),
		DRAM:          cur.DRAM.Sub(snap.DRAM),
		Banked:        cur.Banked.Sub(snap.Banked),
	}
	if s.mem.ctrl != nil {
		rep.MemoryAccesses = rep.ORAM.PathAccesses
		// The accounting identities hold on cumulative counters (warmup
		// deltas can legitimately break the prefetch inequality), so check
		// before subtracting the warmup snapshot.
		if err := cur.ORAM.Validate(); err != nil {
			return Report{}, err
		}
	}
	if s.mem.dram != nil {
		rep.MemoryAccesses = rep.DRAM.Accesses
		// The stats-vs-obs identities must survive the whole run (including
		// any Reset): a divergence means an emission site drifted.
		if err := s.mem.dram.CheckObs(); err != nil {
			return Report{}, err
		}
	}
	return rep, nil
}

// snapshot captures the current cumulative counters.
func (m *memSystem) snapshot() Report {
	rep := *m.rep
	rep.L1Hits = m.hier.L1().Hits()
	rep.L1Misses = m.hier.L1().Misses()
	rep.LLCHits = m.hier.LLC().Hits()
	rep.LLCMisses = m.hier.LLC().Misses()
	if m.ctrl != nil {
		rep.ORAM = m.ctrl.Stats()
		if bs, ok := m.ctrl.DeviceStats(); ok {
			rep.Banked = bs
		}
	}
	if m.dram != nil {
		rep.DRAM = m.dram.Stats()
	}
	return rep
}

// Access implements cpu.MemSystem.
func (m *memSystem) Access(now uint64, addr uint64, write bool) uint64 {
	idx := addr / uint64(m.cfg.BlockBytes)
	out := m.hier.Access(idx, write)
	if out.HitLevel > 0 {
		done := now + out.Latency
		if t, ok := m.pending[idx]; ok {
			// The line was filled by a still-in-flight prefetch: the data
			// arrives only when the memory system delivers it.
			delete(m.pending, idx)
			if t > done {
				done = t
			}
		}
		if out.PrefetchFirstUse {
			m.prefetchUsed(idx)
		}
		return done
	}
	delete(m.pending, idx)

	// Demand miss: both lookups happened before memory was consulted.
	issueAt := now + m.cfg.Hier.L1HitCycles + m.cfg.Hier.L2HitCycles
	var done uint64
	m.rep.MemReads++
	if m.cfg.Tech == TechDRAM {
		done = m.dram.Access(issueAt, addr, uint64(m.cfg.BlockBytes))
		m.applyOutcome(m.hier.Fill(idx, write), done)
		// In DRAM mode the memory system drives the sampler clock (the ORAM
		// controller does it itself in ORAM mode).
		m.obs.MaybeSample(done)
	} else {
		res := m.ctrl.Read(issueAt, idx)
		done = res.Done
		m.applyOutcome(m.hier.Fill(idx, write), done)
		for _, p := range res.Prefetched {
			m.applyOutcome(m.hier.FillPrefetch(p), done)
		}
	}
	if m.pf != nil {
		m.issueStreamPrefetches(idx, issueAt)
	}
	return done
}

// issueStreamPrefetches runs the traditional prefetcher on a demand miss.
func (m *memSystem) issueStreamPrefetches(idx uint64, issueAt uint64) {
	m.scratch = m.pf.OnMiss(idx, m.scratch[:0])
	for _, cand := range m.scratch {
		if cand >= m.maxIndex {
			continue
		}
		if m.hier.Present(cand) {
			continue
		}
		if _, inFlight := m.pending[cand]; inFlight {
			continue
		}
		var ready uint64
		if m.cfg.Tech == TechDRAM {
			// Spare bank/bus slots absorb the prefetch.
			ready = m.dram.Access(issueAt, cand*uint64(m.cfg.BlockBytes), uint64(m.cfg.BlockBytes))
		} else {
			// On ORAM the prefetch is a full access that occupies the
			// serialized controller — the Figure 5 effect.
			ready = m.ctrl.Read(issueAt, cand).Done
		}
		m.pending[cand] = ready
		m.rep.StreamIssued++
		m.applyOutcome(m.hier.FillPrefetch(cand), ready)
	}
}

// applyOutcome drains the side effects of a cache insertion: dirty LLC
// victims become memory writes, resolved prefetches update statistics.
func (m *memSystem) applyOutcome(out cache.AccessOutcome, when uint64) {
	for _, wb := range out.Writebacks {
		m.rep.MemWrites++
		if m.cfg.Tech == TechDRAM {
			m.dram.Access(when, wb*uint64(m.cfg.BlockBytes), uint64(m.cfg.BlockBytes))
		} else {
			m.ctrl.Write(when, wb)
		}
	}
	for _, pe := range out.PrefetchEvicted {
		m.prefetchUnused(pe)
	}
}

// prefetchUsed routes a resolved prefetch hit to whichever mechanism
// issued it.
func (m *memSystem) prefetchUsed(idx uint64) {
	if m.pf != nil {
		m.rep.StreamHits++
		return
	}
	if m.superActive {
		m.ctrl.NotifyPrefetchUse(idx)
	}
}

// prefetchUnused routes a resolved prefetch miss.
func (m *memSystem) prefetchUnused(idx uint64) {
	if m.pf != nil {
		m.rep.StreamUnused++
		return
	}
	if m.superActive {
		m.ctrl.NotifyPrefetchEvict(idx)
	}
}

// finish flushes the caches at program end so trailing dirty data and
// unresolved prefetches are accounted for.
func (m *memSystem) finish(end uint64) {
	writebacks, prefetchEvicted := m.hier.Flush()
	for _, wb := range writebacks {
		m.rep.MemWrites++
		if m.cfg.Tech == TechDRAM {
			m.dram.Access(end, wb*uint64(m.cfg.BlockBytes), uint64(m.cfg.BlockBytes))
		} else {
			m.ctrl.Write(end, wb)
		}
	}
	for _, pe := range prefetchEvicted {
		m.prefetchUnused(pe)
	}
}
