package sim

import (
	"fmt"

	"proram/internal/shard"
	"proram/internal/trace"
)

// ShardedReport summarizes one sharded frontend run.
type ShardedReport struct {
	// Ops is the number of requests served.
	Ops uint64
	// Rounds is the number of demand scheduling rounds.
	Rounds uint64
	// Cycles is the simulated makespan: the slowest partition's clock.
	Cycles uint64
	// RealAccesses/PadAccesses split the fixed round bandwidth into demand
	// work and padding.
	RealAccesses uint64
	PadAccesses  uint64
	// CacheHits counts requests served without an ORAM access.
	CacheHits uint64
	// Carryovers counts requests that overflowed their round's budget.
	Carryovers uint64
	// FillPermille is the demand share of round bandwidth in 1/1000ths
	// (integer so reports stay byte-stable).
	FillPermille uint64
	// Stats is the frontend's full snapshot.
	Stats shard.Stats
}

// RunSharded drives a sharded frontend from a trace generator under a
// closed-loop admission model: `window` clients each keep one request
// outstanding, so every scheduling round admits the next `window`
// operations of the stream. The model is deterministic — the arrival log
// is a pure function of the trace — so two runs are byte-identical, and
// the report's integers are safe to pin in benchmark baselines.
func RunSharded(cfg shard.Config, g trace.Generator, window int) (ShardedReport, *shard.Log, error) {
	if window < 1 {
		return ShardedReport{}, nil, fmt.Errorf("sim: sharded window %d must be >= 1", window)
	}
	if cfg.BlockBytes <= 0 || cfg.Blocks == 0 {
		return ShardedReport{}, nil, fmt.Errorf("sim: sharded config needs Blocks and BlockBytes")
	}
	arrivals := make([]shard.Arrival, 0, g.Len())
	var seq uint64
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		arrivals = append(arrivals, shard.Arrival{
			Seq:   seq,
			Index: (op.Addr / uint64(cfg.BlockBytes)) % cfg.Blocks,
			Write: op.Write,
			Round: seq / uint64(window),
		})
		seq++
	}
	log, stats, err := shard.Replay(cfg, arrivals)
	if err != nil {
		return ShardedReport{}, nil, err
	}
	rep := ShardedReport{
		Ops:          stats.Reads + stats.Writes,
		Rounds:       stats.Rounds,
		Cycles:       stats.Cycles,
		RealAccesses: stats.RealAccesses,
		PadAccesses:  stats.DummyAccesses + stats.FlushPad,
		CacheHits:    stats.CacheHits,
		Carryovers:   stats.Carryovers,
		Stats:        stats,
	}
	if t := stats.RealAccesses + stats.DummyAccesses; t > 0 {
		rep.FillPermille = stats.RealAccesses * 1000 / t
	}
	return rep, log, nil
}
