package sim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"proram/internal/obs"
	"proram/internal/superblock"
)

// observedRun executes one seeded ORAM system followed by one DRAM system
// on a shared recorder and returns the metrics and trace dumps.
func observedRun(t *testing.T, seed uint64) (metrics, trace string) {
	t.Helper()
	var traceBuf, flight bytes.Buffer
	rec := obs.New(obs.Options{
		SampleEvery: 100_000,
		TraceOut:    &traceBuf,
		FlightOut:   &flight,
	})

	ocfg := DefaultConfig(TechORAM)
	smallORAM(&ocfg)
	ocfg.ORAM.Super = superblock.DefaultConfig()
	ocfg.ORAM.Seed = seed
	ocfg.Obs = rec
	ocfg.ObsLabel = "oram-under-test"
	run(t, ocfg, synth(8000, 0.8, seed))

	dcfg := DefaultConfig(TechDRAM)
	dcfg.Obs = rec
	run(t, dcfg, synth(8000, 0.8, seed))

	if err := rec.CloseTrace(); err != nil {
		t.Fatal(err)
	}
	var m bytes.Buffer
	if err := rec.WriteMetrics(&m); err != nil {
		t.Fatal(err)
	}
	return m.String(), traceBuf.String()
}

// TestObservedRunDeterministic is the end-to-end reproducibility check:
// the same seeded simulation run twice produces byte-identical metrics
// JSON and trace output.
func TestObservedRunDeterministic(t *testing.T) {
	m1, t1 := observedRun(t, 42)
	m2, t2 := observedRun(t, 42)
	if m1 != m2 {
		t.Error("metrics dumps differ between identical seeded runs")
	}
	if t1 != t2 {
		t.Error("trace dumps differ between identical seeded runs")
	}

	// The trace must be a well-formed JSON array of events with the fields
	// the Chrome trace-event viewers require.
	var events []map[string]interface{}
	if err := json.Unmarshal([]byte(t1), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace is empty")
	}
	sawSpan, sawMeta := false, false
	for _, e := range events {
		ph, _ := e["ph"].(string)
		switch ph {
		case "X":
			sawSpan = true
		case "M":
			sawMeta = true
		case "":
			t.Fatalf("event without phase: %v", e)
		}
	}
	if !sawSpan {
		t.Error("no path-access spans in trace")
	}
	if !sawMeta {
		t.Error("no process metadata in trace")
	}

	// The metrics dump must cover both systems: the ORAM controller's
	// counters under the first pid and the DRAM model's under the second.
	var dump struct {
		Counters []struct {
			Name  string `json:"name"`
			Value uint64 `json:"value"`
		} `json:"counters"`
		Series []struct {
			Pid    int       `json:"pid"`
			Name   string    `json:"name"`
			Cycles []uint64  `json:"cycles"`
			Values []float64 `json:"values"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(m1), &dump); err != nil {
		t.Fatalf("metrics dump not valid JSON: %v", err)
	}
	find := func(name string) uint64 {
		for _, c := range dump.Counters {
			if c.Name == name {
				return c.Value
			}
		}
		t.Fatalf("counter %q missing from metrics dump", name)
		return 0
	}
	if find("oram.path_accesses") == 0 {
		t.Error("no path accesses counted")
	}
	if find("p2.dram.accesses") == 0 {
		t.Error("second system's DRAM accesses not counted under its pid")
	}
	pids := map[int]bool{}
	for _, s := range dump.Series {
		pids[s.Pid] = true
		if len(s.Cycles) != len(s.Values) {
			t.Fatalf("series %q has mismatched cycle/value lengths", s.Name)
		}
	}
	if !pids[1] || !pids[2] {
		t.Errorf("expected series from both processes, got pids %v", pids)
	}
	if !strings.Contains(t1, "oram-under-test") {
		t.Error("process label missing from trace")
	}
}

// TestObsCountersMatchStats cross-checks the obs counters against the
// independently maintained Stats structure: both views of one run must
// agree exactly.
func TestObsCountersMatchStats(t *testing.T) {
	rec := obs.New(obs.Options{})
	cfg := DefaultConfig(TechORAM)
	smallORAM(&cfg)
	cfg.ORAM.Super = superblock.DefaultConfig()
	cfg.Obs = rec

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(synth(6000, 0.7, 3)); err != nil {
		t.Fatal(err)
	}
	st := s.ORAM().Stats()
	if got := rec.Counter("oram.path_accesses").Value(); got != st.PathAccesses {
		t.Errorf("obs counted %d path accesses, stats say %d", got, st.PathAccesses)
	}
	if got := rec.Counter("oram.paths.data").Value(); got != st.DataPaths {
		t.Errorf("obs counted %d data paths, stats say %d", got, st.DataPaths)
	}
	if got := rec.Counter("plb.hits").Value(); got != st.PLBHits {
		t.Errorf("obs counted %d PLB hits, stats say %d", got, st.PLBHits)
	}
	if got := rec.Counter("plb.misses").Value(); got != st.PLBMisses {
		t.Errorf("obs counted %d PLB misses, stats say %d", got, st.PLBMisses)
	}
}
