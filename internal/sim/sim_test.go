package sim

import (
	"testing"

	"proram/internal/oram"
	"proram/internal/prefetch"
	"proram/internal/superblock"
	"proram/internal/trace"
)

// smallORAM shrinks the ORAM for fast tests.
func smallORAM(cfg *Config) {
	cfg.ORAM.NumBlocks = 1 << 17
	cfg.ORAM.OnChipEntries = 256
}

func synth(ops uint64, locality float64, seed uint64) trace.Generator {
	return trace.NewSynthetic(trace.SyntheticConfig{
		Ops: ops, WorkingSetBytes: 2 << 20, LocalityFraction: locality,
		RunLen: 16, Gap: 4, WriteFraction: 0.3, Seed: seed,
	})
}

func run(t *testing.T, cfg Config, g trace.Generator) Report {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestValidation(t *testing.T) {
	cfg := DefaultConfig(TechDRAM)
	cfg.BlockBytes = 64 // mismatched with 128B caches
	if _, err := New(cfg); err == nil {
		t.Fatal("mismatched line size accepted")
	}
	cfg = DefaultConfig(TechORAM)
	pf := prefetch.DefaultConfig()
	cfg.Prefetch = &pf
	cfg.ORAM.Super = superblock.DefaultConfig()
	if _, err := New(cfg); err == nil {
		t.Fatal("prefetcher + super blocks accepted")
	}
}

func TestRunTwiceRejected(t *testing.T) {
	cfg := DefaultConfig(TechDRAM)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(synth(100, 0.5, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(synth(100, 0.5, 1)); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestDRAMFasterThanORAM(t *testing.T) {
	g1 := synth(20000, 0.5, 7)
	g2 := synth(20000, 0.5, 7)
	dramRep := run(t, DefaultConfig(TechDRAM), g1)
	ocfg := DefaultConfig(TechORAM)
	smallORAM(&ocfg)
	oramRep := run(t, ocfg, g2)
	if oramRep.Cycles <= dramRep.Cycles {
		t.Fatalf("ORAM (%d) not slower than DRAM (%d)", oramRep.Cycles, dramRep.Cycles)
	}
	// The paper's regime: ORAM is multiples slower on memory-bound work.
	if float64(oramRep.Cycles) < 1.5*float64(dramRep.Cycles) {
		t.Fatalf("ORAM overhead only %.2fx; model too cheap",
			float64(oramRep.Cycles)/float64(dramRep.Cycles))
	}
}

func TestCacheFiltersTraffic(t *testing.T) {
	rep := run(t, DefaultConfig(TechDRAM), synth(20000, 0.8, 9))
	if rep.L1Hits == 0 || rep.LLCMisses == 0 {
		t.Fatalf("degenerate cache behaviour: %+v", rep)
	}
	if rep.MemReads != rep.LLCMisses {
		t.Fatalf("MemReads %d != LLCMisses %d", rep.MemReads, rep.LLCMisses)
	}
	if rep.MemOps != 20000 {
		t.Fatalf("MemOps = %d", rep.MemOps)
	}
}

func TestORAMDemandAccounting(t *testing.T) {
	cfg := DefaultConfig(TechORAM)
	smallORAM(&cfg)
	rep := run(t, cfg, synth(10000, 0.5, 11))
	if rep.ORAM.DemandReads != rep.LLCMisses {
		t.Fatalf("ORAM demand reads %d != LLC misses %d", rep.ORAM.DemandReads, rep.LLCMisses)
	}
	if rep.MemoryAccesses != rep.ORAM.PathAccesses {
		t.Fatal("energy proxy mismatch")
	}
	if rep.ORAM.Writebacks != rep.MemWrites {
		t.Fatalf("writebacks %d != mem writes %d", rep.ORAM.Writebacks, rep.MemWrites)
	}
}

func TestDynamicSuperBlockHelpsSequential(t *testing.T) {
	base := DefaultConfig(TechORAM)
	smallORAM(&base)
	baseRep := run(t, base, synth(80000, 0.95, 13))

	dyn := DefaultConfig(TechORAM)
	smallORAM(&dyn)
	dyn.ORAM.Super = superblock.DefaultConfig()
	dynRep := run(t, dyn, synth(80000, 0.95, 13))

	if dynRep.ORAM.Merges == 0 {
		t.Fatal("sequential workload never merged")
	}
	if dynRep.Cycles >= baseRep.Cycles {
		t.Fatalf("PrORAM (%d cycles) not faster than baseline (%d) on sequential workload",
			dynRep.Cycles, baseRep.Cycles)
	}
	if dynRep.ORAM.PrefetchHits == 0 {
		t.Fatal("no prefetch hits on sequential workload")
	}
}

func TestDynamicSuperBlockHarmlessOnRandom(t *testing.T) {
	base := DefaultConfig(TechORAM)
	smallORAM(&base)
	baseRep := run(t, base, synth(20000, 0.0, 17))

	dyn := DefaultConfig(TechORAM)
	smallORAM(&dyn)
	dyn.ORAM.Super = superblock.DefaultConfig()
	dynRep := run(t, dyn, synth(20000, 0.0, 17))

	// Figure 6a: with no locality, dynamic matches the baseline closely.
	ratio := float64(dynRep.Cycles) / float64(baseRep.Cycles)
	if ratio > 1.05 {
		t.Fatalf("dynamic scheme hurt random workload by %.1f%%", (ratio-1)*100)
	}
}

func TestStaticSuperBlockHurtsRandom(t *testing.T) {
	base := DefaultConfig(TechORAM)
	smallORAM(&base)
	baseRep := run(t, base, synth(20000, 0.0, 19))

	stat := DefaultConfig(TechORAM)
	smallORAM(&stat)
	stat.ORAM.Super = superblock.Config{Scheme: superblock.Static, MaxSize: 2}
	statRep := run(t, stat, synth(20000, 0.0, 19))

	// Figure 6a at 0% locality: static is slower than baseline.
	if statRep.Cycles <= baseRep.Cycles {
		t.Fatalf("static scheme (%d) unexpectedly beat baseline (%d) on random workload",
			statRep.Cycles, baseRep.Cycles)
	}
}

func TestStreamPrefetcherHelpsDRAM(t *testing.T) {
	plain := DefaultConfig(TechDRAM)
	plainRep := run(t, plain, synth(30000, 0.9, 23))

	pf := prefetch.DefaultConfig()
	pre := DefaultConfig(TechDRAM)
	pre.Prefetch = &pf
	preRep := run(t, pre, synth(30000, 0.9, 23))

	if preRep.StreamIssued == 0 {
		t.Fatal("prefetcher idle on sequential workload")
	}
	if preRep.Cycles >= plainRep.Cycles {
		t.Fatalf("DRAM prefetching did not help: %d vs %d", preRep.Cycles, plainRep.Cycles)
	}
}

func TestStreamPrefetcherDoesNotHelpORAM(t *testing.T) {
	plain := DefaultConfig(TechORAM)
	smallORAM(&plain)
	plainRep := run(t, plain, synth(20000, 0.9, 29))

	pf := prefetch.DefaultConfig()
	pre := DefaultConfig(TechORAM)
	smallORAM(&pre)
	pre.Prefetch = &pf
	preRep := run(t, pre, synth(20000, 0.9, 29))

	// Figure 5: ORAM prefetching must not produce the DRAM-style win; the
	// serialized controller makes prefetches compete with demand misses.
	improvement := float64(plainRep.Cycles)/float64(preRep.Cycles) - 1
	if improvement > 0.05 {
		t.Fatalf("ORAM stream prefetching helped by %.1f%%, contradicting Figure 5", improvement*100)
	}
}

func TestPeriodicORAMRuns(t *testing.T) {
	cfg := DefaultConfig(TechORAM)
	smallORAM(&cfg)
	cfg.ORAM.Periodic = true
	cfg.ORAM.Oint = 100
	rep := run(t, cfg, synth(5000, 0.5, 31))
	if rep.Cycles == 0 {
		t.Fatal("no progress in periodic mode")
	}
}

func TestDeterministicReports(t *testing.T) {
	cfg := DefaultConfig(TechORAM)
	smallORAM(&cfg)
	cfg.ORAM.Super = superblock.DefaultConfig()
	a := run(t, cfg, synth(5000, 0.7, 37))
	b := run(t, cfg, synth(5000, 0.7, 37))
	if a != b {
		t.Fatalf("nondeterministic reports:\n%+v\n%+v", a, b)
	}
}

func TestORAMInvariantAfterFullRun(t *testing.T) {
	cfg := DefaultConfig(TechORAM)
	cfg.ORAM.NumBlocks = 1 << 16
	cfg.ORAM.OnChipEntries = 128
	cfg.ORAM.Super = superblock.DefaultConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(synth(10000, 0.8, 41)); err != nil {
		t.Fatal(err)
	}
	if err := s.ORAM().CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestBenchmarkModelsRun(t *testing.T) {
	// Smoke: every suite profile runs end-to-end on both technologies.
	for _, p := range trace.Splash2(2000)[:3] {
		d := run(t, DefaultConfig(TechDRAM), trace.NewModel(p))
		cfg := DefaultConfig(TechORAM) // full 128 MB capacity: the models use 32 MB sets
		o := run(t, cfg, trace.NewModel(p))
		if d.MemOps != o.MemOps {
			t.Fatalf("%s: op counts differ", p.Name)
		}
	}
	ycsb := trace.NewYCSB(trace.DefaultYCSB(2000))
	cfg := DefaultConfig(TechORAM)
	cfg.ORAM.Super = superblock.DefaultConfig()
	rep := run(t, cfg, ycsb)
	if rep.MemOps != 2000 {
		t.Fatalf("YCSB ran %d ops", rep.MemOps)
	}
}

func TestWritebacksReachORAM(t *testing.T) {
	cfg := DefaultConfig(TechORAM)
	smallORAM(&cfg)
	g := trace.NewSynthetic(trace.SyntheticConfig{
		Ops: 20000, WorkingSetBytes: 8 << 20, LocalityFraction: 0,
		RunLen: 1, Gap: 2, WriteFraction: 1.0, Seed: 43,
	})
	rep := run(t, cfg, g)
	if rep.MemWrites == 0 || rep.ORAM.WritebackPaths == 0 {
		t.Fatalf("write-heavy run produced no ORAM writebacks: %+v", rep)
	}
}

var sinkReport Report

func BenchmarkBaselineORAM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(TechORAM)
		smallORAM(&cfg)
		s, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := s.Run(synth(5000, 0.5, uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		sinkReport = rep
	}
}

func BenchmarkPrORAM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(TechORAM)
		smallORAM(&cfg)
		cfg.ORAM.Super = superblock.DefaultConfig()
		s, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := s.Run(synth(5000, 0.9, uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		sinkReport = rep
	}
}

var _ = oram.Stats{} // keep the import for white-box assertions above
