package cache

import (
	"testing"

	"proram/internal/rng"
)

func smallConfig() Config {
	return Config{SizeBytes: 1024, Ways: 2, LineBytes: 128} // 4 sets
}

func TestConfigValidate(t *testing.T) {
	if err := smallConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{SizeBytes: 0, Ways: 2, LineBytes: 128},
		{SizeBytes: 1024, Ways: 0, LineBytes: 128},
		{SizeBytes: 1000, Ways: 2, LineBytes: 128}, // not divisible
		{SizeBytes: 1536, Ways: 2, LineBytes: 128}, // 6 sets: not power of 2
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
	if got := (Config{SizeBytes: 32 << 10, Ways: 4, LineBytes: 128}).Sets(); got != 64 {
		t.Fatalf("Table 1 L1 sets = %d, want 64", got)
	}
}

func TestMissThenHit(t *testing.T) {
	c := New(smallConfig())
	if hit, _ := c.Access(5, false); hit {
		t.Fatal("cold cache hit")
	}
	c.Insert(5, false, false)
	if hit, _ := c.Access(5, false); !hit {
		t.Fatal("inserted line missed")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("stats %d/%d", c.Hits(), c.Misses())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(smallConfig()) // 4 sets, 2 ways; indices 0,4,8 share set 0
	c.Insert(0, false, false)
	c.Insert(4, false, false)
	c.Access(0, false) // 0 becomes MRU; 4 is LRU
	v := c.Insert(8, false, false)
	if !v.Valid || v.Index != 4 {
		t.Fatalf("victim %+v, want index 4", v)
	}
	if !c.Probe(0) || !c.Probe(8) || c.Probe(4) {
		t.Fatal("post-eviction contents wrong")
	}
}

func TestDirtyVictim(t *testing.T) {
	c := New(smallConfig())
	c.Insert(0, false, false)
	c.Access(0, true) // write
	c.Insert(4, false, false)
	v := c.Insert(8, false, false) // evicts 0 (LRU after 4's insert? no: 0 promoted by Access, then 4 inserted MRU, so LRU=0)
	if !v.Valid {
		t.Fatal("no victim")
	}
	if v.Index == 0 && !v.Dirty {
		t.Fatal("dirty bit lost on eviction")
	}
}

func TestPrefetchFlagsLifecycle(t *testing.T) {
	c := New(smallConfig())
	c.Insert(3, false, true) // prefetched
	hit, firstUse := c.Access(3, false)
	if !hit || !firstUse {
		t.Fatalf("first use not reported: hit=%v firstUse=%v", hit, firstUse)
	}
	_, again := c.Access(3, false)
	if again {
		t.Fatal("second use reported as first")
	}
}

func TestPrefetchedUnusedVictim(t *testing.T) {
	c := New(smallConfig())
	c.Insert(0, false, true)
	c.Insert(4, false, false)
	c.Access(4, false)
	v := c.Insert(8, false, false) // evicts 0
	if !v.Valid || v.Index != 0 || !v.Prefetched || v.Used {
		t.Fatalf("victim %+v, want prefetched-unused 0", v)
	}
}

func TestProbeDoesNotPromote(t *testing.T) {
	c := New(smallConfig())
	c.Insert(0, false, false)
	c.Insert(4, false, false) // LRU = 0
	c.Probe(0)                // must not promote
	v := c.Insert(8, false, false)
	if v.Index != 0 {
		t.Fatalf("Probe promoted: victim %+v", v)
	}
}

func TestReinsertMergesFlags(t *testing.T) {
	c := New(smallConfig())
	c.Insert(0, false, true) // prefetched
	c.Insert(0, true, false) // demand write fill of same line
	v := c.Insert(4, false, false)
	_ = v
	c.Insert(8, false, false) // evict 0 or 4
	// Either way, line 0 if evicted must be dirty and counted used.
	if c.Probe(0) {
		return // not evicted; fine
	}
}

func TestInvalidate(t *testing.T) {
	c := New(smallConfig())
	c.Insert(0, true, false)
	v := c.Invalidate(0)
	if !v.Valid || !v.Dirty {
		t.Fatalf("Invalidate returned %+v", v)
	}
	if c.Probe(0) {
		t.Fatal("line survived Invalidate")
	}
	if v := c.Invalidate(0); v.Valid {
		t.Fatal("double Invalidate returned valid")
	}
}

func TestFlushReturnsAll(t *testing.T) {
	c := New(smallConfig())
	c.Insert(0, true, false)
	c.Insert(1, false, true)
	vs := c.Flush()
	if len(vs) != 2 {
		t.Fatalf("Flush returned %d victims", len(vs))
	}
	if c.Len() != 0 {
		t.Fatal("Flush left valid lines")
	}
}

func TestHierarchyInclusion(t *testing.T) {
	cfg := HierarchyConfig{
		L1:          Config{SizeBytes: 256, Ways: 2, LineBytes: 128}, // 1 set, 2 ways
		L2:          Config{SizeBytes: 1024, Ways: 2, LineBytes: 128},
		L1HitCycles: 1,
		L2HitCycles: 10,
	}
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.Fill(0, false)
	if out := h.Access(0, false); out.HitLevel != 1 {
		t.Fatalf("hit level %d, want 1", out.HitLevel)
	}
	// Fill lines mapping to L2 set 0 (indices 0,4,8 with 4 sets... L2 here
	// has 4 sets) until 0 is evicted from L2; it must leave L1 too.
	h.Fill(4, false)
	h.Fill(8, false)
	h.Fill(12, false)
	h.Fill(16, false)
	if h.LLC().Probe(0) {
		t.Skip("index 0 still in LLC; adjust pressure")
	}
	if h.L1().Probe(0) {
		t.Fatal("inclusion violated: line in L1 but not LLC")
	}
}

func TestHierarchyWritebackOnDirtyEviction(t *testing.T) {
	cfg := HierarchyConfig{
		L1:          Config{SizeBytes: 256, Ways: 2, LineBytes: 128},
		L2:          Config{SizeBytes: 512, Ways: 2, LineBytes: 128}, // 2 sets
		L1HitCycles: 1,
		L2HitCycles: 10,
	}
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.Fill(0, true) // dirty
	var wbs []uint64
	for i := uint64(1); i < 8; i++ {
		out := h.Fill(i*2, false) // indices 2,4,... map across 2 sets
		wbs = append(wbs, out.Writebacks...)
	}
	found := false
	for _, w := range wbs {
		if w == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("dirty line 0 never written back (writebacks %v)", wbs)
	}
}

func TestHierarchyPrefetchLifecycle(t *testing.T) {
	h, err := NewHierarchy(DefaultHierarchyConfig())
	if err != nil {
		t.Fatal(err)
	}
	h.FillPrefetch(100)
	if h.L1().Probe(100) {
		t.Fatal("prefetch filled L1 (paper puts prefetches in LLC only)")
	}
	if !h.Present(100) {
		t.Fatal("prefetch missing from LLC")
	}
	out := h.Access(100, false)
	if out.HitLevel != 2 || !out.PrefetchFirstUse {
		t.Fatalf("prefetched access outcome %+v", out)
	}
	out = h.Access(100, false)
	if out.HitLevel != 1 || out.PrefetchFirstUse {
		t.Fatalf("second access outcome %+v", out)
	}
}

func TestHierarchyPrefetchEvictedUnused(t *testing.T) {
	cfg := HierarchyConfig{
		L1:          Config{SizeBytes: 256, Ways: 2, LineBytes: 128},
		L2:          Config{SizeBytes: 512, Ways: 2, LineBytes: 128},
		L1HitCycles: 1,
		L2HitCycles: 10,
	}
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.FillPrefetch(0)
	var resolved []uint64
	for i := uint64(1); i < 8; i++ {
		out := h.Fill(i*2, false)
		resolved = append(resolved, out.PrefetchEvicted...)
	}
	found := false
	for _, r := range resolved {
		if r == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("unused prefetch never resolved (got %v)", resolved)
	}
}

func TestHierarchyFlush(t *testing.T) {
	h, err := NewHierarchy(DefaultHierarchyConfig())
	if err != nil {
		t.Fatal(err)
	}
	h.Fill(1, true)
	h.FillPrefetch(2)
	wbs, pfs := h.Flush()
	if len(wbs) != 1 || wbs[0] != 1 {
		t.Fatalf("flush writebacks %v", wbs)
	}
	if len(pfs) != 1 || pfs[0] != 2 {
		t.Fatalf("flush prefetch resolutions %v", pfs)
	}
}

func TestHierarchyRandomizedConsistency(t *testing.T) {
	h, err := NewHierarchy(HierarchyConfig{
		L1:          Config{SizeBytes: 512, Ways: 2, LineBytes: 128},
		L2:          Config{SizeBytes: 2048, Ways: 4, LineBytes: 128},
		L1HitCycles: 1, L2HitCycles: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(8)
	for i := 0; i < 20000; i++ {
		idx := r.Uint64n(64)
		out := h.Access(idx, r.Bool())
		if out.HitLevel == 0 {
			h.Fill(idx, false)
		}
		if r.Float64() < 0.1 {
			h.FillPrefetch(r.Uint64n(64))
		}
	}
	// Inclusion property holds throughout.
	for idx := uint64(0); idx < 64; idx++ {
		if h.L1().Probe(idx) && !h.LLC().Probe(idx) {
			t.Fatalf("inclusion violated for %d", idx)
		}
	}
}

func TestHierarchyValidate(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.L1.LineBytes = 64
	if _, err := NewHierarchy(cfg); err == nil {
		t.Fatal("mismatched line sizes accepted")
	}
	cfg = DefaultHierarchyConfig()
	cfg.L2HitCycles = 0
	if _, err := NewHierarchy(cfg); err == nil {
		t.Fatal("zero hit latency accepted")
	}
}
