// Package cache models the processor's cache hierarchy: a private L1 data
// cache and a shared L2 (the LLC) as in the paper's Table 1, both
// set-associative with LRU replacement, operating on block indices (one
// cache line = one ORAM basic block).
//
// LLC lines carry the prefetched/used flags the PrORAM schemes need: the
// hierarchy reports when a prefetched line is used for the first time and
// when one is evicted unused, and exposes the tag-array probe the merge
// algorithm uses (paper §4.5.2).
package cache

import "fmt"

// Config sizes one cache level.
type Config struct {
	SizeBytes int // total capacity
	Ways      int // associativity
	LineBytes int // line size (= ORAM block size)
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cache: all dimensions must be positive: %+v", c)
	}
	if c.SizeBytes%(c.Ways*c.LineBytes) != 0 {
		return fmt.Errorf("cache: size %d not divisible by ways*line (%d*%d)", c.SizeBytes, c.Ways, c.LineBytes)
	}
	sets := c.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d must be a power of two", sets)
	}
	return nil
}

// line is one cache line; lines are identified by block index.
type line struct {
	index      uint64
	valid      bool
	dirty      bool
	prefetched bool // inserted by a prefetch
	used       bool // prefetched line later referenced by the core
}

// Victim describes an evicted line.
type Victim struct {
	Index      uint64
	Valid      bool
	Dirty      bool
	Prefetched bool
	Used       bool
}

// Cache is one set-associative level. The zero value is unusable;
// construct with New.
type Cache struct {
	cfg   Config
	sets  [][]line // each set is LRU-ordered: front = MRU
	mask  uint64
	hits  uint64
	miss  uint64
	evict uint64
}

// New builds an empty cache.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		//proram:invariant configuration errors are programming errors; public entry points run Config.Validate before construction
		panic(err)
	}
	n := cfg.Sets()
	sets := make([][]line, n)
	backing := make([]line, n*cfg.Ways)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	return &Cache{cfg: cfg, sets: sets, mask: uint64(n - 1)}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Hits, Misses and Evictions expose the access statistics.
func (c *Cache) Hits() uint64      { return c.hits }
func (c *Cache) Misses() uint64    { return c.miss }
func (c *Cache) Evictions() uint64 { return c.evict }

func (c *Cache) set(index uint64) []line { return c.sets[index&c.mask] }

// find returns the way holding index, or -1.
func (c *Cache) find(set []line, index uint64) int {
	for w := range set {
		if set[w].valid && set[w].index == index {
			return w
		}
	}
	return -1
}

// promote moves way w to the MRU position.
func promote(set []line, w int) {
	l := set[w]
	copy(set[1:w+1], set[:w])
	set[0] = l
}

// Access looks index up, promoting on hit and optionally setting the dirty
// bit. It reports whether it hit and whether this was the first use of a
// prefetched line.
func (c *Cache) Access(index uint64, write bool) (hit, prefetchFirstUse bool) {
	set := c.set(index)
	w := c.find(set, index)
	if w < 0 {
		c.miss++
		return false, false
	}
	c.hits++
	if write {
		set[w].dirty = true
	}
	if set[w].prefetched && !set[w].used {
		set[w].used = true
		prefetchFirstUse = true
	}
	promote(set, w)
	return true, prefetchFirstUse
}

// Probe reports presence without promoting or counting — the tag-array
// lookup the merge algorithm performs off the critical path.
func (c *Cache) Probe(index uint64) bool {
	return c.find(c.set(index), index) >= 0
}

// Insert places index at the MRU position, evicting the LRU line if the
// set is full. If the line is already present its flags are merged
// (dirty |= dirty; a demand insert clears prefetched status).
func (c *Cache) Insert(index uint64, dirty, prefetched bool) Victim {
	set := c.set(index)
	if w := c.find(set, index); w >= 0 {
		set[w].dirty = set[w].dirty || dirty
		if !prefetched {
			// A demand fill of an already-present line ends its prefetch
			// episode: it clearly got used.
			if set[w].prefetched && !set[w].used {
				set[w].used = true
			}
		}
		promote(set, w)
		return Victim{}
	}
	// Use an invalid way if any.
	victimWay := len(set) - 1
	for w := range set {
		if !set[w].valid {
			victimWay = w
			break
		}
	}
	v := Victim{}
	if set[victimWay].valid {
		old := set[victimWay]
		v = Victim{Index: old.index, Valid: true, Dirty: old.dirty,
			Prefetched: old.prefetched, Used: old.used}
		c.evict++
	}
	set[victimWay] = line{index: index, valid: true, dirty: dirty, prefetched: prefetched}
	promote(set, victimWay)
	return v
}

// Invalidate removes index, returning its state (for inclusive back-
// invalidation: the L1 copy's dirty bit must be folded into the L2 victim).
func (c *Cache) Invalidate(index uint64) Victim {
	set := c.set(index)
	w := c.find(set, index)
	if w < 0 {
		return Victim{}
	}
	l := set[w]
	set[w].valid = false
	return Victim{Index: l.index, Valid: true, Dirty: l.dirty,
		Prefetched: l.prefetched, Used: l.used}
}

// Flush invalidates everything, returning a victim for every valid line
// (callers filter for dirty or prefetched-unused lines as needed).
func (c *Cache) Flush() []Victim {
	var out []Victim
	for s := range c.sets {
		for w := range c.sets[s] {
			l := &c.sets[s][w]
			if l.valid {
				out = append(out, Victim{Index: l.index, Valid: true, Dirty: l.dirty,
					Prefetched: l.prefetched, Used: l.used})
				l.valid = false
			}
		}
	}
	return out
}

// Len returns the number of valid lines (diagnostics).
func (c *Cache) Len() int {
	n := 0
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].valid {
				n++
			}
		}
	}
	return n
}
