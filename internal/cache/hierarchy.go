package cache

import "fmt"

// HierarchyConfig sizes the two-level hierarchy of Table 1.
type HierarchyConfig struct {
	L1 Config
	L2 Config
	// L1HitCycles and L2HitCycles are the load-to-use latencies.
	L1HitCycles uint64
	L2HitCycles uint64
}

// DefaultHierarchyConfig returns the paper's Table 1 cache parameters:
// 32 KB 4-way L1, 512 KB 8-way shared L2, 128-byte lines.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1:          Config{SizeBytes: 32 << 10, Ways: 4, LineBytes: 128},
		L2:          Config{SizeBytes: 512 << 10, Ways: 8, LineBytes: 128},
		L1HitCycles: 1,
		L2HitCycles: 10,
	}
}

// Validate reports whether the configuration is usable.
func (c HierarchyConfig) Validate() error {
	if err := c.L1.Validate(); err != nil {
		return err
	}
	if err := c.L2.Validate(); err != nil {
		return err
	}
	if c.L1.LineBytes != c.L2.LineBytes {
		return fmt.Errorf("cache: L1/L2 line sizes differ (%d vs %d)", c.L1.LineBytes, c.L2.LineBytes)
	}
	if c.L1HitCycles == 0 || c.L2HitCycles == 0 {
		return fmt.Errorf("cache: hit latencies must be positive")
	}
	return nil
}

// AccessOutcome reports what one core access or fill did.
type AccessOutcome struct {
	// HitLevel is 1 (L1 hit), 2 (LLC hit) or 0 (miss — memory needed).
	HitLevel int
	// Latency is the hit latency; meaningless on a miss (the memory system
	// supplies it).
	Latency uint64
	// Writebacks are block indices dirty-evicted from the LLC that must be
	// written to memory.
	Writebacks []uint64
	// PrefetchEvicted are prefetched-and-never-used block indices that
	// left the LLC (resolved prefetch misses).
	PrefetchEvicted []uint64
	// PrefetchFirstUse is set when this access consumed a prefetched line
	// for the first time (a resolved prefetch hit).
	PrefetchFirstUse bool
}

// Hierarchy is the inclusive L1+LLC pair: every L1 line is also in the
// LLC, so the merge algorithm's LLC probe sees everything cached on-chip.
type Hierarchy struct {
	cfg HierarchyConfig
	l1  *Cache
	l2  *Cache
}

// NewHierarchy builds an empty hierarchy.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Hierarchy{cfg: cfg, l1: New(cfg.L1), l2: New(cfg.L2)}, nil
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// L1 and LLC expose the individual levels for statistics.
func (h *Hierarchy) L1() *Cache  { return h.l1 }
func (h *Hierarchy) LLC() *Cache { return h.l2 }

// Present implements the ORAM controller's CacheProber against the LLC
// tag array.
func (h *Hierarchy) Present(index uint64) bool { return h.l2.Probe(index) }

// Access performs one core reference to the block at index. On an L1 miss
// that hits the LLC, the line is filled into L1. On a full miss the caller
// must fetch from memory and then call Fill.
func (h *Hierarchy) Access(index uint64, write bool) AccessOutcome {
	if hit, _ := h.l1.Access(index, write); hit {
		return AccessOutcome{HitLevel: 1, Latency: h.cfg.L1HitCycles}
	}
	out := AccessOutcome{}
	if hit, firstUse := h.l2.Access(index, write); hit {
		out.HitLevel = 2
		out.Latency = h.cfg.L1HitCycles + h.cfg.L2HitCycles
		out.PrefetchFirstUse = firstUse
		h.fillL1(index, false, &out)
		return out
	}
	out.HitLevel = 0
	return out
}

// Fill installs a block fetched from memory after a miss, into both levels.
func (h *Hierarchy) Fill(index uint64, write bool) AccessOutcome {
	out := AccessOutcome{}
	h.insertL2(index, write, false, &out)
	h.fillL1(index, write, &out)
	return out
}

// FillPrefetch installs a prefetched block into the LLC only (paper §3.2:
// "the other blocks are prefetched and put into the LLC").
func (h *Hierarchy) FillPrefetch(index uint64) AccessOutcome {
	out := AccessOutcome{}
	if h.l2.Probe(index) {
		// Already cached: nothing to do; the prefetch was redundant.
		return out
	}
	h.insertL2(index, false, true, &out)
	return out
}

// insertL2 inserts into the LLC, folding back-invalidated L1 state into
// the victim and recording memory writebacks / resolved prefetch misses.
func (h *Hierarchy) insertL2(index uint64, dirty, prefetched bool, out *AccessOutcome) {
	v := h.l2.Insert(index, dirty, prefetched)
	if !v.Valid {
		return
	}
	// Inclusive hierarchy: evicting from the LLC evicts from L1 too.
	l1v := h.l1.Invalidate(v.Index)
	if l1v.Valid {
		v.Dirty = v.Dirty || l1v.Dirty
		v.Used = v.Used || l1v.Used
	}
	if v.Dirty {
		out.Writebacks = append(out.Writebacks, v.Index)
	}
	if v.Prefetched && !v.Used {
		out.PrefetchEvicted = append(out.PrefetchEvicted, v.Index)
	}
}

// fillL1 inserts into L1; dirty L1 victims fall back into the LLC (which
// holds them by inclusion, so only the dirty bit needs merging).
func (h *Hierarchy) fillL1(index uint64, write bool, out *AccessOutcome) {
	v := h.l1.Insert(index, write, false)
	if v.Valid && v.Dirty {
		// The line is still in the LLC (inclusion); mark it dirty there.
		if !h.l2.Probe(v.Index) {
			// It was concurrently evicted from the LLC by this same fill:
			// write it back to memory directly.
			out.Writebacks = append(out.Writebacks, v.Index)
			return
		}
		h.l2.Insert(v.Index, true, false)
	}
}

// Flush writes back every dirty line (end-of-run accounting), returning
// the block indices that must go to memory, and the prefetched-unused
// lines resolved as misses.
func (h *Hierarchy) Flush() (writebacks, prefetchEvicted []uint64) {
	for _, v := range h.l1.Flush() {
		if v.Dirty {
			// Mark dirty in L2 (inclusion) so it is written back below.
			h.l2.Insert(v.Index, true, false)
		}
	}
	for _, v := range h.l2.Flush() {
		if v.Dirty {
			writebacks = append(writebacks, v.Index)
		}
		if v.Prefetched && !v.Used {
			prefetchEvicted = append(prefetchEvicted, v.Index)
		}
	}
	return writebacks, prefetchEvicted
}
