package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// drive pushes a fixed emission sequence through a recorder.
func drive(r *Recorder) {
	paths := r.Counter("oram.path_accesses")
	hw := r.Gauge("stash.high_water")
	sb := r.Histogram("oram.sb_size", PowerOfTwoBounds(4))
	occ := r.Series("stash_occupancy")
	r.OnSample(func(cycle uint64) { occ.Record(cycle, float64(cycle/100)) })
	for i := uint64(0); i < 10; i++ {
		paths.Inc()
		hw.Max(float64(i))
		sb.Observe(float64(1 + i%4))
		r.Span("oram", "data", i*1000, 900, "leaf", i)
		r.MaybeSample(i * 1000)
	}
	r.Instant("oram", "merge", 5000, "size", 4)
	r.CounterEvent("oram", "stash", 6000, "blocks", 42)
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	drive(r) // must not panic
	if err := r.WriteMetrics(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := r.CloseTrace(); err != nil {
		t.Fatal(err)
	}
	r.Flight("nothing", 0)
	if got := r.FlightEvents(); got != nil {
		t.Fatalf("nil recorder produced events: %v", got)
	}
}

func TestNilRecorderAllocationFree(t *testing.T) {
	var r *Recorder
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", nil)
	s := r.Series("w")
	allocs := testing.AllocsPerRun(100, func() {
		c.Add(1)
		c.Inc()
		g.Set(1)
		g.Max(2)
		h.Observe(3)
		s.Record(4, 5)
		r.MaybeSample(6)
		r.Span("a", "b", 0, 1, "k", 2)
		r.Instant("a", "b", 0, "k", 2)
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %v times per op", allocs)
	}
}

func TestDeterministicExport(t *testing.T) {
	run := func() (metrics, trace string) {
		var tr bytes.Buffer
		r := New(Options{SampleEvery: 1000, TraceOut: &tr})
		drive(r)
		if err := r.CloseTrace(); err != nil {
			t.Fatal(err)
		}
		var m bytes.Buffer
		if err := r.WriteMetrics(&m); err != nil {
			t.Fatal(err)
		}
		return m.String(), tr.String()
	}
	m1, t1 := run()
	m2, t2 := run()
	if m1 != m2 {
		t.Errorf("metrics dumps differ:\n%s\nvs\n%s", m1, m2)
	}
	if t1 != t2 {
		t.Errorf("trace dumps differ:\n%s\nvs\n%s", t1, t2)
	}
	// Both artifacts must be well-formed JSON.
	var any1, any2 interface{}
	if err := json.Unmarshal([]byte(m1), &any1); err != nil {
		t.Fatalf("metrics not valid JSON: %v", err)
	}
	if err := json.Unmarshal([]byte(t1), &any2); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	events, ok := any2.([]interface{})
	if !ok || len(events) == 0 {
		t.Fatalf("trace is not a non-empty JSON array")
	}
}

func TestRegistryOrderAndDedup(t *testing.T) {
	var reg Registry
	a := reg.Counter("a")
	b := reg.Counter("b")
	if reg.Counter("a") != a || reg.Counter("b") != b {
		t.Fatal("re-registration did not return the existing handle")
	}
	a.Add(3)
	b.Add(5)
	var sm Sampler
	var out bytes.Buffer
	if err := writeMetricsJSON(&out, &reg, &sm); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if strings.Index(s, `"a"`) > strings.Index(s, `"b"`) {
		t.Fatalf("export does not preserve registration order:\n%s", s)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var reg Registry
	h := reg.Histogram("h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 100} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 2, 1} // ≤1, ≤2, ≤4, +Inf
	for i, w := range want {
		if h.counts[i] != w {
			t.Fatalf("bucket %d: got %d want %d (counts %v)", i, h.counts[i], w, h.counts)
		}
	}
	if h.Count() != 7 {
		t.Fatalf("count %d", h.Count())
	}
	if m := h.Mean(); m < 16.0 || m > 16.1 {
		t.Fatalf("mean %v", m)
	}
}

func TestRingWraparound(t *testing.T) {
	r := New(Options{FlightSize: 4})
	for i := uint64(0); i < 10; i++ {
		r.Instant("c", "e", i, "i", i)
	}
	ev := r.FlightEvents()
	if len(ev) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(ev))
	}
	for i, e := range ev {
		if e.TS != uint64(6+i) {
			t.Fatalf("event %d has ts %d, want %d (oldest-first order broken)", i, e.TS, 6+i)
		}
	}
}

func TestFlightDump(t *testing.T) {
	var sink bytes.Buffer
	r := New(Options{FlightSize: 8, FlightOut: &sink})
	r.Span("oram", "bg-evict", 100, 50, "leaf", 7)
	r.Flight("stash-overflow", 150)
	out := sink.String()
	if !strings.Contains(out, "stash-overflow") || !strings.Contains(out, `"bg-evict"`) {
		t.Fatalf("flight dump missing content:\n%s", out)
	}
	// Every non-header line is itself a JSON object.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		var v map[string]interface{}
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("flight line %q not JSON: %v", line, err)
		}
	}
}

func TestSamplerTicks(t *testing.T) {
	r := New(Options{SampleEvery: 100})
	s := r.Series("x")
	n := 0
	r.OnSample(func(cycle uint64) { n++; s.Record(cycle, float64(n)) })
	r.MaybeSample(0)   // tick at 0
	r.MaybeSample(50)  // no tick
	r.MaybeSample(250) // ticks at 100 and 200
	if n != 3 {
		t.Fatalf("got %d ticks, want 3", n)
	}
	if s.cycles[0] != 0 || s.cycles[1] != 100 || s.cycles[2] != 200 {
		t.Fatalf("tick cycles %v", s.cycles)
	}
}

func TestBeginProcessScopesCallbacksAndPids(t *testing.T) {
	var tr bytes.Buffer
	r := New(Options{SampleEvery: 10, TraceOut: &tr})
	if pid := r.BeginProcess("first"); pid != 1 {
		t.Fatalf("first process pid %d", pid)
	}
	s1 := r.Series("occ")
	r.OnSample(func(cycle uint64) { s1.Record(cycle, 1) })
	r.MaybeSample(25) // ticks 0,10,20 for process 1

	if pid := r.BeginProcess("second"); pid != 2 {
		t.Fatalf("second process pid %d", pid)
	}
	s2 := r.Series("occ")
	r.OnSample(func(cycle uint64) { s2.Record(cycle, 2) })
	r.MaybeSample(5) // tick 0 for process 2 only

	if s1.Len() != 3 {
		t.Fatalf("process 1 series extended after its run: %d points", s1.Len())
	}
	if s2.Len() != 1 {
		t.Fatalf("process 2 series has %d points", s2.Len())
	}
	// Metrics registered by a later process are namespaced by pid.
	if got := r.Counter("c"); got != r.reg.Counter("p2.c") {
		t.Fatal("second-process counter not namespaced with its pid")
	}
	if err := r.CloseTrace(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr.String(), `"process_name"`) {
		t.Fatal("no process metadata emitted")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	// 100 observations spread evenly across (0,10], (10,20], (20,40]:
	// linear interpolation inside the selected bucket is exact for the
	// mid-bucket ranks and clamps to the top bound in the overflow bucket.
	bounds := []float64{10, 20, 40}
	counts := []uint64{50, 40, 10, 0}
	if q := histQuantile(bounds, counts, 100, 0.50); q != 10 {
		t.Fatalf("p50 = %v, want 10", q)
	}
	if q := histQuantile(bounds, counts, 100, 0.25); q != 5 {
		t.Fatalf("p25 = %v, want 5", q)
	}
	if q := histQuantile(bounds, counts, 100, 0.95); q != 30 {
		t.Fatalf("p95 = %v, want 30", q)
	}
	if q := histQuantile(bounds, counts, 100, 1.0); q != 40 {
		t.Fatalf("p100 = %v, want 40", q)
	}
	// Overflow-bucket mass reports the largest finite bound.
	if q := histQuantile(bounds, []uint64{0, 0, 0, 5}, 5, 0.5); q != 40 {
		t.Fatalf("overflow p50 = %v, want 40", q)
	}
	if q := histQuantile(bounds, counts, 0, 0.5); q != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", q)
	}
	// The export carries the quantiles.
	var reg Registry
	h := reg.Histogram("h", bounds)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%40) + 0.5)
	}
	var buf bytes.Buffer
	if err := writeMetricsJSON(&buf, &reg, &Sampler{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"p50"`) || !strings.Contains(buf.String(), `"p99"`) {
		t.Fatalf("export missing quantile fields:\n%s", buf.String())
	}
}
