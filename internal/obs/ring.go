package obs

import (
	"fmt"
	"io"
)

// Ring is the flight recorder: a fixed-size circular buffer of the most
// recent events. It always records while a Recorder is enabled — even
// with trace emission off — so a crash or invariant failure can dump the
// last moments of the run without the cost of a full trace.
type Ring struct {
	buf  []Event
	n    int // events stored (≤ len(buf))
	next int // next write position
}

func newRing(size int) *Ring {
	return &Ring{buf: make([]Event, size)}
}

// add stores one event, overwriting the oldest when full.
func (r *Ring) add(e Event) {
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// Len returns the number of stored events.
func (r *Ring) Len() int { return r.n }

// Events returns a copy of the contents, oldest first.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// dump writes the contents oldest-first, one line per event, in the same
// record shape the Tracer uses (minus the array brackets, so the dump
// nests inside a log stream).
func (r *Ring) dump(w io.Writer) {
	buf := make([]byte, 0, 256)
	for _, e := range r.Events() {
		buf = appendEvent(buf[:0], e)
		fmt.Fprintf(w, "%s\n", buf)
	}
}
