// Package obs is the simulator's observability layer: a metrics registry
// of counters, gauges and histograms with byte-deterministic JSON export,
// a cycle-driven time-series sampler, a structured event tracer emitting
// Chrome trace-event-format JSON, and a fixed-size flight-recorder ring
// buffer of recent events that is dumped when the simulation hits a
// pathological state (stash overflow, invariant failure).
//
// Everything is stdlib-only and deterministic: exports iterate in
// registration order (never Go map order), timestamps are simulated
// cycles (no wall clock), and two runs with the same seed and flags
// produce byte-identical dumps.
//
// The whole surface is nil-safe. A nil *Recorder — and every nil handle
// it hands out — turns each emission site into a single pointer check, so
// the un-instrumented path stays allocation-free and effectively free.
// Instrumented components therefore keep handles unconditionally:
//
//	type Stash struct {
//		obsWritebacks *obs.Counter // nil when observability is off
//	}
//	...
//	s.obsWritebacks.Add(uint64(placed)) // no-op on nil
//
// Obliviousness stance: metric names, series values and trace-event
// arguments must be derived from public protocol state only (leaf labels,
// cycle counts, structure occupancies). The proram-vet oblivious pass
// enforces this mechanically: any argument of an obs emission call that
// is tainted by secret block payload bytes is reported as a leak.
package obs

import (
	"fmt"
	"io"
)

// Recorder is the hub the simulator components emit into. The zero value
// is not used; construct with New. A nil Recorder is the disabled state:
// every method on it (and on the nil metric handles it returns) is a
// cheap no-op.
//
// A Recorder is not safe for concurrent use, matching the single-threaded
// simulator it instruments. When several systems share one Recorder (the
// bench harness runs experiments back to back) each system calls
// BeginProcess, which scopes sampler callbacks to the active system and
// separates trace events by pid.
type Recorder struct {
	reg     Registry
	sampler Sampler
	tracer  *Tracer
	ring    *Ring

	flightOut io.Writer
	pid       int
	label     string
}

// Options configures a Recorder.
type Options struct {
	// SampleEvery is the simulated-cycle interval between time-series
	// samples; 0 disables the sampler.
	SampleEvery uint64
	// FlightSize is the flight-recorder capacity in events (default 256).
	FlightSize int
	// TraceOut receives the Chrome trace-event stream; nil disables trace
	// emission (the flight ring still records).
	TraceOut io.Writer
	// FlightOut receives flight-recorder dumps; nil discards them.
	FlightOut io.Writer
}

// New builds an enabled Recorder.
func New(o Options) *Recorder {
	size := o.FlightSize
	if size <= 0 {
		size = 256
	}
	r := &Recorder{
		ring:      newRing(size),
		flightOut: o.FlightOut,
		pid:       1,
	}
	r.sampler.every = o.SampleEvery
	if o.TraceOut != nil {
		r.tracer = NewTracer(o.TraceOut)
	}
	return r
}

// Enabled reports whether emissions are recorded.
func (r *Recorder) Enabled() bool { return r != nil }

// BeginProcess starts a new logical process (one simulated system) in the
// trace: subsequent events carry a fresh pid, a process_name metadata
// record is emitted, and sampler callbacks registered by earlier
// processes stop firing (their system is no longer running). It returns
// the pid. The first system keeps pid 1.
func (r *Recorder) BeginProcess(label string) int {
	if r == nil {
		return 0
	}
	if r.label != "" || r.pid > 1 {
		r.pid++
	}
	r.label = label
	r.sampler.beginProcess()
	if r.tracer != nil {
		r.tracer.Meta(r.pid, label)
	}
	return r.pid
}

// Pid returns the current process id (0 on a nil Recorder).
func (r *Recorder) Pid() int {
	if r == nil {
		return 0
	}
	return r.pid
}

// metricPrefix namespaces registrations of processes after the first so
// back-to-back systems sharing one Recorder keep distinct metrics.
func (r *Recorder) metricPrefix() string {
	if r.pid <= 1 {
		return ""
	}
	return fmt.Sprintf("p%d.", r.pid)
}

// Counter registers (or finds) the named counter. Nil Recorder → nil
// handle, whose Add/Inc are no-ops.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.reg.Counter(r.metricPrefix() + name)
}

// Gauge registers (or finds) the named gauge.
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return r.reg.Gauge(r.metricPrefix() + name)
}

// Histogram registers (or finds) the named histogram with the given
// ascending upper bucket bounds (an implicit +Inf bucket is added).
func (r *Recorder) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.reg.Histogram(r.metricPrefix()+name, bounds)
}

// Series registers a fresh time series under the current process.
func (r *Recorder) Series(name string) *Series {
	if r == nil {
		return nil
	}
	return r.sampler.newSeries(r.pid, name)
}

// OnSample registers a callback invoked at every sampler tick until the
// next BeginProcess. The callback receives the tick's simulated cycle and
// typically records one point into each of its series.
func (r *Recorder) OnSample(f func(cycle uint64)) {
	if r == nil {
		return
	}
	r.sampler.onSample(f)
}

// MaybeSample advances simulated time to now, firing sampler ticks for
// every interval boundary crossed. Call it from the component that owns
// the clock (the ORAM controller after each path access, the DRAM model
// in the insecure baseline). Cheap when no tick is due.
func (r *Recorder) MaybeSample(now uint64) {
	if r == nil || r.sampler.every == 0 {
		return
	}
	r.sampler.maybeSample(now)
}

// Span records a completed duration event ('X' in the trace format):
// something that occupied [start, start+dur) cycles, with one optional
// uint64 argument (pass "" to omit it).
func (r *Recorder) Span(cat, name string, start, dur uint64, argKey string, argVal uint64) {
	if r == nil {
		return
	}
	r.emit(Event{Ph: 'X', Cat: cat, Name: name, TS: start, Dur: dur, Pid: r.pid, ArgKey: argKey, ArgVal: argVal})
}

// Instant records a point event ('i' in the trace format) at cycle ts.
func (r *Recorder) Instant(cat, name string, ts uint64, argKey string, argVal uint64) {
	if r == nil {
		return
	}
	r.emit(Event{Ph: 'i', Cat: cat, Name: name, TS: ts, Pid: r.pid, ArgKey: argKey, ArgVal: argVal})
}

// CounterEvent records a counter-track sample ('C' in the trace format):
// Perfetto renders these as a stepped value track named name.
func (r *Recorder) CounterEvent(cat, name string, ts uint64, argKey string, argVal uint64) {
	if r == nil {
		return
	}
	r.emit(Event{Ph: 'C', Cat: cat, Name: name, TS: ts, Pid: r.pid, ArgKey: argKey, ArgVal: argVal})
}

// emit routes one event to the flight ring and, when tracing, the writer.
func (r *Recorder) emit(e Event) {
	r.ring.add(e)
	if r.tracer != nil {
		r.tracer.Emit(e)
	}
}

// Flight dumps the flight-recorder ring to the configured FlightOut with
// a one-line header naming the reason and cycle. Call it when the
// simulation reaches a state worth post-morteming (stash pinned over its
// limit, invariant violation). A nil Recorder or absent FlightOut is a
// no-op.
func (r *Recorder) Flight(reason string, cycle uint64) {
	if r == nil || r.flightOut == nil {
		return
	}
	fmt.Fprintf(r.flightOut, "# obs flight dump: %s at cycle %d (%d recent events, oldest first)\n",
		reason, cycle, r.ring.Len())
	r.ring.dump(r.flightOut)
}

// FlightEvents returns a copy of the ring contents, oldest first (tests,
// tooling).
func (r *Recorder) FlightEvents() []Event {
	if r == nil {
		return nil
	}
	return r.ring.Events()
}

// WriteMetrics writes the deterministic metrics dump: every counter,
// gauge and histogram in registration order, then every time series in
// creation order. Same seed and flags → byte-identical output.
func (r *Recorder) WriteMetrics(w io.Writer) error {
	if r == nil {
		return nil
	}
	return writeMetricsJSON(w, &r.reg, &r.sampler)
}

// CloseTrace terminates the trace-event array so the file is well-formed
// JSON, and flushes it. Safe to call when tracing is disabled.
func (r *Recorder) CloseTrace() error {
	if r == nil || r.tracer == nil {
		return nil
	}
	return r.tracer.Close()
}
