package audit

import (
	"fmt"
	"math/big"
)

// Test statuses.
const (
	statusPass = "pass"
	statusFail = "fail"
	statusSkip = "skip"
)

// TestResult is one evaluated test at one scope. StatMilli and CritMilli
// are the chi-square statistic and its alpha = 1e-5 critical value in
// exact milli-units; the test fails when stat > crit.
type TestResult struct {
	Name       string `json:"name"`
	Scope      string `json:"scope"`
	Status     string `json:"status"`
	N          uint64 `json:"n"`
	DF         int    `json:"df"`
	StatMilli  uint64 `json:"stat_milli"`
	CritMilli  uint64 `json:"crit_milli"`
	Violations uint64 `json:"violations,omitempty"`
	Detail     string `json:"detail,omitempty"`
}

func scopePart(i int) string { return fmt.Sprintf("p%d", i) }

// evaluate runs every armed test and returns the results in a fixed
// order: uniformity (global, then per partition), serial independence per
// partition, timing per partition, then the shape checks.
func (a *Auditor) evaluate() []TestResult {
	if !a.bound {
		return nil
	}
	out := make([]TestResult, 0, 4+3*a.parts)
	out = append(out, a.gofResult("global", a.global, a.globalN))
	for i := 0; i < a.parts; i++ {
		out = append(out, a.gofResult(scopePart(i), a.part[i], a.partN[i]))
	}
	for i := 0; i < a.parts; i++ {
		out = append(out, a.serialResult(i))
	}
	if a.cfg.Timing {
		for i := 0; i < a.parts; i++ {
			out = append(out, a.timingResult(i))
		}
	}
	if a.roundSlots > 0 {
		sh := &a.shape
		r := TestResult{Name: "round_shape", Scope: "global", Status: statusPass,
			N: sh.demandChecked, Violations: sh.demandViolations, Detail: sh.demandDetail}
		if sh.demandViolations > 0 {
			r.Status = statusFail
		}
		out = append(out, r)

		fr := TestResult{Name: "flush_equality", Scope: "global", Status: statusPass,
			N: sh.flushChecked, Violations: sh.flushViolations, Detail: sh.flushDetail}
		if sh.flushViolations > 0 {
			fr.Status = statusFail
		} else if sh.flushChecked == 0 {
			fr.Status = statusSkip
		}
		out = append(out, fr)
	}
	return out
}

// gofResult is the equal-expected chi-square goodness-of-fit test of one
// binned leaf histogram against uniform.
func (a *Auditor) gofResult(scope string, counts []uint64, n uint64) TestResult {
	r := TestResult{Name: "leaf_uniformity", Scope: scope, N: n, DF: len(counts) - 1}
	if n < a.minSamples {
		r.Status = statusSkip
		return r
	}
	r.StatMilli = gofStatMilli(counts, n)
	r.CritMilli = critMilli(r.DF)
	r.Status = statusPass
	if r.StatMilli > r.CritMilli {
		r.Status = statusFail
	}
	return r
}

// serialResult is the consecutive-leaf-bin independence test for one
// partition.
func (a *Auditor) serialResult(part int) TestResult {
	s := a.serial[part]
	k := a.serialBins
	r := TestResult{Name: "serial_independence", Scope: scopePart(part), N: s.n}
	if s.n < a.minSamples {
		r.Status = statusSkip
		return r
	}
	rows := make([][]uint64, k)
	for i := 0; i < k; i++ {
		rows[i] = s.cells[i*k : (i+1)*k]
	}
	stat, df, _ := contingencyMilli(rows)
	r.StatMilli, r.DF = stat, df
	if df < 1 {
		r.Status = statusPass
		return r
	}
	r.CritMilli = critMilli(df)
	r.Status = statusPass
	if stat > r.CritMilli {
		r.Status = statusFail
	}
	return r
}

// timingResult is the two-sample real-vs-dummy gap homogeneity test for
// one partition: adjacent gap bins are merged until each merged column
// holds at least 16 observations (the usual expected-count floor), then a
// 2×B contingency test compares the populations.
func (a *Auditor) timingResult(part int) TestResult {
	t := a.timing[part]
	r := TestResult{Name: "timing_indistinguishability", Scope: scopePart(part), N: t.realN + t.dummyN}
	if t.realN < a.minSamples/4 || t.dummyN < a.minSamples/4 {
		r.Status = statusSkip
		return r
	}
	real, dummy := mergeGapBins(t.real[:], t.dummy[:], 16)
	stat, df, _ := contingencyMilli([][]uint64{real, dummy})
	r.StatMilli, r.DF = stat, df
	if df < 1 {
		// Both populations concentrate in one merged bin: identical on the
		// observable granularity (e.g. the flat channel's constant path
		// latency).
		r.Status = statusPass
		return r
	}
	r.CritMilli = critMilli(df)
	r.Status = statusPass
	if stat > r.CritMilli {
		r.Status = statusFail
	}
	return r
}

// mergeGapBins merges adjacent histogram bins left to right until each
// merged bin's combined (real+dummy) count reaches floor; a trailing
// underweight bin folds into its predecessor.
func mergeGapBins(real, dummy []uint64, floor uint64) (r, d []uint64) {
	var accR, accD uint64
	for i := range real {
		accR += real[i]
		accD += dummy[i]
		if accR+accD >= floor {
			r = append(r, accR)
			d = append(d, accD)
			accR, accD = 0, 0
		}
	}
	if accR+accD > 0 {
		if len(r) > 0 {
			r[len(r)-1] += accR
			d[len(d)-1] += accD
		} else {
			r = append(r, accR)
			d = append(d, accD)
		}
	}
	return r, d
}

// gofStatMilli computes the equal-expected chi-square statistic in
// milli-units: sum over bins of floor(1000·(O·k − n)² / (n·k)). Exact
// integer arithmetic via big.Int; per-term flooring costs at most one
// milli-unit per bin, far below the decision threshold.
func gofStatMilli(counts []uint64, n uint64) uint64 {
	k := uint64(len(counts))
	if n == 0 || k < 2 {
		return 0
	}
	den := new(big.Int).Mul(new(big.Int).SetUint64(n), new(big.Int).SetUint64(k))
	thousand := big.NewInt(1000)
	sum := new(big.Int)
	d := new(big.Int)
	t := new(big.Int)
	for _, o := range counts {
		d.SetUint64(o)
		d.Mul(d, t.SetUint64(k))
		d.Sub(d, t.SetUint64(n))
		d.Mul(d, d)
		d.Mul(d, thousand)
		d.Div(d, den)
		sum.Add(sum, d)
	}
	if !sum.IsUint64() {
		return ^uint64(0)
	}
	return sum.Uint64()
}

// contingencyMilli computes the chi-square independence/homogeneity
// statistic (milli-units) for an r×c table, dropping all-zero rows and
// columns from the degrees of freedom: per cell, floor(1000·(O·n − R·C)²
// / (n·R·C)). Exact integer arithmetic via big.Int.
func contingencyMilli(rows [][]uint64) (stat uint64, df int, n uint64) {
	if len(rows) == 0 {
		return 0, 0, 0
	}
	cols := len(rows[0])
	rowSum := make([]uint64, len(rows))
	colSum := make([]uint64, cols)
	for i, row := range rows {
		for j, o := range row {
			rowSum[i] += o
			colSum[j] += o
			n += o
		}
	}
	if n == 0 {
		return 0, 0, 0
	}
	nzRows, nzCols := 0, 0
	for _, s := range rowSum {
		if s > 0 {
			nzRows++
		}
	}
	for _, s := range colSum {
		if s > 0 {
			nzCols++
		}
	}
	df = (nzRows - 1) * (nzCols - 1)
	bigN := new(big.Int).SetUint64(n)
	thousand := big.NewInt(1000)
	sum := new(big.Int)
	d := new(big.Int)
	t := new(big.Int)
	den := new(big.Int)
	for i, row := range rows {
		if rowSum[i] == 0 {
			continue
		}
		for j, o := range row {
			if colSum[j] == 0 {
				continue
			}
			// d = O·n − R·C
			d.SetUint64(o)
			d.Mul(d, bigN)
			t.SetUint64(rowSum[i])
			t.Mul(t, den.SetUint64(colSum[j]))
			d.Sub(d, t)
			d.Mul(d, d)
			d.Mul(d, thousand)
			// den = n·R·C
			den.SetUint64(rowSum[i])
			den.Mul(den, t.SetUint64(colSum[j]))
			den.Mul(den, bigN)
			d.Div(d, den)
			sum.Add(sum, d)
		}
	}
	if !sum.IsUint64() {
		return ^uint64(0), df, n
	}
	return sum.Uint64(), df, n
}
