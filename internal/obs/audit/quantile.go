package audit

import "math/bits"

// Digest is a streaming latency histogram with deterministic quantiles:
// fixed power-of-two bins (bin b holds values of bit length b, i.e.
// [2^(b-1), 2^b) for b ≥ 1 and {0} for b = 0), integer interpolation
// inside the selected bin. Memory is O(1) per digest regardless of stream
// length, and two digests fed the same stream report identical quantiles
// on every platform.
type Digest struct {
	counts [digestBins]uint64
	n      uint64
	max    uint64
}

const digestBins = 65

// Observe adds one value.
func (d *Digest) Observe(v uint64) {
	d.counts[bits.Len64(v)]++
	d.n++
	if v > d.max {
		d.max = v
	}
}

// Count returns the number of observations.
func (d *Digest) Count() uint64 {
	if d == nil {
		return 0
	}
	return d.n
}

// Max returns the largest observed value.
func (d *Digest) Max() uint64 {
	if d == nil {
		return 0
	}
	return d.max
}

// Quantile returns the num/den quantile (e.g. 99/100 for p99): the value
// at ceil(n·num/den) in rank order, estimated by spreading a bin's count
// evenly across its range. Integer arithmetic throughout; an empty digest
// returns 0.
func (d *Digest) Quantile(num, den uint64) uint64 {
	if d == nil || d.n == 0 || den == 0 {
		return 0
	}
	rank := (d.n*num + den - 1) / den
	if rank < 1 {
		rank = 1
	}
	if rank > d.n {
		rank = d.n
	}
	var cum uint64
	for b, cnt := range d.counts {
		if cnt == 0 {
			continue
		}
		if rank > cum+cnt {
			cum += cnt
			continue
		}
		lo, hi := binRange(b)
		if hi > d.max {
			hi = d.max
		}
		pos := rank - cum // 1..cnt
		// Midpoint-of-equal-slices interpolation: deterministic, exact at
		// cnt = 1, monotone in pos.
		return lo + mulDiv(hi-lo, 2*pos-1, 2*cnt)
	}
	return d.max
}

// binRange returns the value range [lo, hi] covered by bin b.
func binRange(b int) (lo, hi uint64) {
	if b == 0 {
		return 0, 0
	}
	lo = uint64(1) << (b - 1)
	if b == 64 {
		return lo, ^uint64(0)
	}
	return lo, (uint64(1) << b) - 1
}
