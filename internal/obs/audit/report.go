package audit

import (
	"encoding/json"
	"fmt"
	"io"
)

// LatencySummary is one scope's deterministic latency tail: streaming
// p50/p99/p999 from the digest plus the exact count and maximum. All
// values are simulated cycles.
type LatencySummary struct {
	Scope string `json:"scope"`
	Count uint64 `json:"count"`
	P50   uint64 `json:"p50"`
	P99   uint64 `json:"p99"`
	P999  uint64 `json:"p999"`
	Max   uint64 `json:"max"`
}

func summarize(scope string, d *Digest) LatencySummary {
	return LatencySummary{
		Scope: scope,
		Count: d.Count(),
		P50:   d.Quantile(50, 100),
		P99:   d.Quantile(99, 100),
		P999:  d.Quantile(999, 1000),
		Max:   d.Max(),
	}
}

// Report is the auditor's final verdict: the configuration echo, every
// test result in a fixed order, the failure findings (empty when green),
// and the latency summaries. Field order and integer-only statistics make
// the JSON byte-stable across runs and platforms.
type Report struct {
	Partitions int              `json:"partitions"`
	Leaves     uint64           `json:"leaves"`
	RoundSlots int              `json:"round_slots"`
	Accesses   uint64           `json:"accesses"`
	Pass       bool             `json:"pass"`
	Findings   []string         `json:"findings"`
	Tests      []TestResult     `json:"tests"`
	Latency    []LatencySummary `json:"latency"`
}

// Report evaluates the full suite and returns the verdict. It finalizes
// any in-flight flush round first. Call it once the fed run is complete;
// further feeding and a later re-Report are allowed (online use).
func (a *Auditor) Report() *Report {
	r := &Report{Findings: []string{}, Tests: []TestResult{}, Latency: []LatencySummary{}}
	if a == nil || !a.bound {
		return r
	}
	a.finishFlushRound()
	r.Partitions = a.parts
	r.Leaves = a.leaves
	r.RoundSlots = a.roundSlots
	r.Accesses = a.accesses
	r.Tests = a.evaluate()
	r.Pass = true
	for _, t := range r.Tests {
		if t.Status == statusFail {
			r.Pass = false
			f := fmt.Sprintf("%s[%s]: stat %dm > crit %dm (n=%d)", t.Name, t.Scope, t.StatMilli, t.CritMilli, t.N)
			if t.Detail != "" {
				f = fmt.Sprintf("%s[%s]: %s", t.Name, t.Scope, t.Detail)
			}
			r.Findings = append(r.Findings, f)
		}
	}
	if a.failed {
		r.Pass = false
		r.Findings = append(r.Findings, fmt.Sprintf("online check tripped at access %d: %s", a.failedAt, a.firstFailure))
	}
	r.Latency = append(r.Latency,
		summarize("all", a.latAll),
		summarize("queue", a.latQueue),
		summarize("service", a.latService),
		summarize("dram", a.latDRAM))
	for i, d := range a.latPart {
		r.Latency = append(r.Latency, summarize(scopePart(i), d))
	}
	return r
}

// WriteJSON writes the report as deterministic indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Worst returns the largest statistic (and its critical value) among the
// named test's evaluated scopes — the report's headline number for one
// test family. Skipped scopes are ignored.
func (r *Report) Worst(name string) (statMilli, critMilli uint64) {
	for _, t := range r.Tests {
		if t.Name != name || t.Status == statusSkip {
			continue
		}
		if t.StatMilli >= statMilli {
			statMilli, critMilli = t.StatMilli, t.CritMilli
		}
	}
	return statMilli, critMilli
}

// Violations sums the named test's violation counters across scopes.
func (r *Report) Violations(name string) uint64 {
	var v uint64
	for _, t := range r.Tests {
		if t.Name == name {
			v += t.Violations
		}
	}
	return v
}

// LatencyFor returns the named scope's latency summary (zero if absent).
func (r *Report) LatencyFor(scope string) LatencySummary {
	for _, l := range r.Latency {
		if l.Scope == scope {
			return l
		}
	}
	return LatencySummary{Scope: scope}
}

// Suite is an ordered collection of named audit reports — one per audited
// configuration — serialized as the pinned AUDIT artifact.
type Suite struct {
	Sections []Section
}

// Section is one audited configuration.
type Section struct {
	Name   string  `json:"name"`
	Report *Report `json:"report"`
}

// Add appends one configuration's report.
func (s *Suite) Add(name string, r *Report) {
	s.Sections = append(s.Sections, Section{Name: name, Report: r})
}

// Pass reports whether every section passed (an empty suite passes).
func (s *Suite) Pass() bool {
	for _, sec := range s.Sections {
		if !sec.Report.Pass {
			return false
		}
	}
	return true
}

// WriteJSON writes the suite as deterministic indented JSON.
func (s *Suite) WriteJSON(w io.Writer) error {
	sections := s.Sections
	if sections == nil {
		sections = []Section{}
	}
	out := struct {
		Pass     bool      `json:"pass"`
		Sections []Section `json:"sections"`
	}{s.Pass(), sections}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
