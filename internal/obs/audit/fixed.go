package audit

import "math/bits"

// Fixed-point helpers. The auditor never touches floating point on any
// path that reaches a report: float rounding depends on accumulation
// order and (with FMA contraction) on the platform, and the reports are
// pinned byte-for-byte in CI.

// mulDiv returns a*b/c using a 128-bit intermediate, saturating to
// MaxUint64 when the quotient would overflow (callers keep ratios below
// one, so saturation only guards degenerate inputs).
func mulDiv(a, b, c uint64) uint64 {
	if c == 0 {
		return 0
	}
	hi, lo := bits.Mul64(a, b)
	if hi >= c {
		return ^uint64(0)
	}
	q, _ := bits.Div64(hi, lo, c)
	return q
}

// isqrt returns floor(sqrt(x)).
func isqrt(x uint64) uint64 {
	if x == 0 {
		return 0
	}
	// Newton's method from a power-of-two overestimate; converges in a
	// handful of iterations and is exact at the fixed point.
	r := uint64(1) << ((bits.Len64(x) + 1) / 2)
	for {
		n := (r + x/r) / 2
		if n >= r {
			return r
		}
		r = n
	}
}

// critMilli returns the chi-square critical value at significance
// alpha = 1e-5 for df degrees of freedom, in milli-units, via the
// Wilson–Hilferty cube approximation evaluated in micro fixed point:
//
//	crit ≈ df · (1 − 2/(9·df) + z·sqrt(2/(9·df)))³,  z₁₋₁ₑ₋₅ = 4.264890
//
// The approximation is within ~0.2% of the exact quantile for df ≥ 3 and
// a few percent high at df = 1..2 — high, i.e. conservative: the auditor
// under-flags, never over-flags, near the threshold. Exactness does not
// matter here (real leaks blow through the threshold by orders of
// magnitude); determinism does.
//
// Alpha is deliberately far below the conventional 0.001: one audited run
// evaluates dozens of (test, scope) pairs, so a per-test alpha of 1e-3
// gives the whole suite a few-percent false-alarm rate on an honest
// system, while the negative-control leaks exceed these thresholds by
// one to two orders of magnitude. 1e-5 keeps the family-wise false-alarm
// rate well under 0.1% at full power against the canaries.
func critMilli(df int) uint64 {
	if df < 1 {
		df = 1
	}
	d := uint64(df)
	const zMicro = 4_264_890
	// s = sqrt(2/(9·df)) in micro units: sqrt(2e12/(9·df)).
	s := isqrt(2_000_000_000_000 / (9 * d))
	inner := 1_000_000 - 2_000_000/(9*d) + zMicro*s/1_000_000
	sq := inner * inner / 1_000_000
	cu := sq * inner / 1_000_000
	return d * cu / 1_000
}
