// Package audit is an online obliviousness auditor for the simulated
// ORAM: it taps the wire-observable streams the recorder layer already
// carries — physical leaf choices, access start cycles, per-round slot
// accounting — and runs deterministic statistical tests against the
// properties the security argument claims:
//
//   - leaf_uniformity: chi-square goodness-of-fit of binned physical leaf
//     frequencies against the uniform distribution, globally and per
//     partition. Path ORAM remaps every touched block to a fresh uniform
//     leaf, so any bias is a leak (or a broken RNG).
//   - serial_independence: a chi-square contingency test over consecutive
//     (previous bin, next bin) leaf pairs within each partition's stream.
//     Uniform marginals with serial correlation still leak; this catches
//     reuse of stale leaves and correlated remaps.
//   - round_shape: every demand round must issue exactly RoundSlots store
//     accesses per partition, counted from the observed trace (not from
//     the scheduler's own counters — a lying scheduler is the threat).
//   - flush_equality: all partitions of one flush round must issue the
//     same observable number of accesses after padding.
//   - timing_indistinguishability: a two-sample chi-square homogeneity
//     test comparing the within-round inter-access gap distributions of
//     real and dummy slots. If padding accesses are cheaper or slower
//     than demand accesses, the round structure leaks the demand load.
//
// Everything is integer or fixed-point arithmetic: test statistics are
// exact milli-unit integers (big.Int intermediates, floored once), the
// critical values come from an integer Wilson–Hilferty approximation, and
// the latency digests interpolate quantiles with integer math. Two runs
// that feed identical streams produce byte-identical reports — no float
// accumulation order, no FMA, no platform variance.
//
// An Auditor is not safe for concurrent use. The sharded frontend feeds
// it from the round driver at the commit barrier (the same discipline as
// obs.Recorder); the unified simulator feeds it a recorded trace after
// the run.
package audit

import (
	"fmt"
	"math/bits"

	"proram/internal/obs"
)

// Leak selects a test-only negative control: a deliberately broken
// scheduler or controller the auditor must flag. Production code never
// sets one; the CLIs expose them behind -leaky so CI can prove the tests
// have statistical power.
type Leak uint8

const (
	// LeakNone is the honest system.
	LeakNone Leak = iota
	// LeakDropDummies makes the sharded scheduler claim its round padding
	// (counters and reported shapes stay plausible) without issuing the
	// dummy accesses — a scheduler that lies about its padding. The
	// round_shape test catches it from the observed trace.
	LeakDropDummies
	// LeakBiasLeaf makes the ORAM controller draw remap leaves from the
	// lower half of the leaf space. The leaf_uniformity test catches it.
	LeakBiasLeaf
)

// AccessEvent is one wire-observable physical access: the tree leaf it
// touched, its (arbitrated) start cycle, and whether the slot that issued
// it was padding. The dummy bit is ground truth the observer of a real
// deployment would not have; the auditor uses it only for the two-sample
// timing test, whose null hypothesis is exactly that the bit is
// unobservable.
type AccessEvent struct {
	Leaf  uint64
	Start uint64
	Dummy bool
}

// ShapeKind classifies a round's slot accounting.
type ShapeKind uint8

const (
	// ShapeDemand is a demand scheduling round (fixed RoundSlots contract).
	ShapeDemand ShapeKind = iota
	// ShapeFlush is the variable write-back half of a flush.
	ShapeFlush
	// ShapePad is the equalizing padding half of a flush.
	ShapePad
)

// Config carries the auditor's knobs. Structural parameters (partitions,
// leaves, round slots) arrive later via Bind, once the trees exist.
type Config struct {
	// Timing arms the real-vs-dummy timing test. Leave it off for systems
	// that do not claim timing-channel protection (the unified controller
	// without Periodic legitimately completes accesses in data-dependent
	// time).
	Timing bool
	// CheckEvery runs the online evaluation every that many observed
	// accesses (0 = 16384). The first failure latches, dumps the flight
	// ring and marks the report failed even if later data dilutes the
	// statistic back under threshold. Online looks hold the chi-square
	// tests to onlineMargin times the critical value (repeated looks at
	// an accumulating statistic would otherwise inflate the false-alarm
	// rate); finalization applies the exact alpha.
	CheckEvery uint64
	// MinSamples gates every test: scopes with fewer observations report
	// "skip" instead of a meaningless verdict (0 = 1024).
	MinSamples uint64
	// Recorder, when enabled, receives an instant event and a flight-ring
	// dump on the first online failure. It must be the same recorder the
	// audited system emits into, touched only between rounds.
	Recorder *obs.Recorder
}

// Auditor accumulates streamed observations and evaluates the test suite
// on demand. Construct with New, size with Bind, feed from one goroutine.
type Auditor struct {
	cfg        Config
	checkEvery uint64
	minSamples uint64

	bound      bool
	parts      int
	leaves     uint64
	roundSlots int

	binShift    uint // leaf >> binShift = uniformity bin
	bins        int
	serialShift uint
	serialBins  int

	accesses  uint64
	lastCycle uint64
	nextCheck uint64

	failed       bool
	firstFailure string
	failedAt     uint64

	global  []uint64 // uniformity bin counts, all partitions pooled
	globalN uint64
	part    [][]uint64 // per-partition uniformity bin counts
	partN   []uint64
	serial  []*serialState
	timing  []*timingState
	shape   shapeState

	latAll     *Digest
	latPart    []*Digest
	latQueue   *Digest
	latService *Digest
	latDRAM    *Digest
}

// serialState is one partition's consecutive-leaf contingency table.
type serialState struct {
	prev  int // previous bin, -1 before the first access
	n     uint64
	cells []uint64 // serialBins × serialBins, row = previous bin
}

// timingState is one partition's two-sample gap histograms: within-round
// gaps to the next access, binned by bit length, labeled by whether the
// earlier access belonged to a dummy slot.
type timingState struct {
	real          [gapBins]uint64
	dummy         [gapBins]uint64
	realN, dummyN uint64
}

// gapBins is bits.Len64's range: bin b holds gaps in [2^(b-1), 2^b).
const gapBins = 65

// shapeState is the round-shape accounting.
type shapeState struct {
	demandChecked    uint64
	demandViolations uint64
	demandDetail     string

	flushChecked    uint64
	flushViolations uint64
	flushDetail     string

	// One flush round in flight: per-partition observed lengths
	// (flush + pad), -1 until that partition's flush committed. Flush
	// rounds commit strictly in round order, so a single slot suffices.
	flushRound uint64
	flushLens  []int
	flushOpen  bool
}

// New builds an auditor. It is inert until Bind sizes it.
func New(cfg Config) *Auditor {
	a := &Auditor{cfg: cfg, checkEvery: cfg.CheckEvery, minSamples: cfg.MinSamples}
	if a.checkEvery == 0 {
		a.checkEvery = 16384
	}
	if a.minSamples == 0 {
		a.minSamples = 1024
	}
	a.nextCheck = a.checkEvery
	return a
}

// Bind sizes the auditor for a concrete system: partition count, leaves
// per partition tree (every partition tree is the same size; a power of
// two), and the demand round slot contract (0 disables the demand-shape
// test, for systems without round scheduling). Bind must be called once,
// before any feed.
func (a *Auditor) Bind(parts int, leaves uint64, roundSlots int) error {
	if a.bound {
		if parts == a.parts && leaves == a.leaves && roundSlots == a.roundSlots {
			return nil
		}
		return fmt.Errorf("audit: rebind with different shape (%d/%d/%d vs %d/%d/%d); one auditor audits one system",
			parts, leaves, roundSlots, a.parts, a.leaves, a.roundSlots)
	}
	if parts < 1 {
		return fmt.Errorf("audit: partitions %d must be >= 1", parts)
	}
	if leaves < 2 || leaves&(leaves-1) != 0 {
		return fmt.Errorf("audit: leaves %d must be a power of two >= 2", leaves)
	}
	a.bound = true
	a.parts = parts
	a.leaves = leaves
	a.roundSlots = roundSlots

	a.bins = 64
	if leaves < 64 {
		a.bins = int(leaves)
	}
	a.binShift = uint(bits.TrailingZeros64(leaves)) - uint(bits.TrailingZeros64(uint64(a.bins)))
	a.serialBins = 8
	if leaves < 8 {
		a.serialBins = int(leaves)
	}
	a.serialShift = uint(bits.TrailingZeros64(leaves)) - uint(bits.TrailingZeros64(uint64(a.serialBins)))

	a.global = make([]uint64, a.bins)
	a.part = make([][]uint64, parts)
	a.partN = make([]uint64, parts)
	a.serial = make([]*serialState, parts)
	a.timing = make([]*timingState, parts)
	a.latPart = make([]*Digest, parts)
	for i := 0; i < parts; i++ {
		a.part[i] = make([]uint64, a.bins)
		a.serial[i] = &serialState{prev: -1, cells: make([]uint64, a.serialBins*a.serialBins)}
		a.timing[i] = &timingState{}
		a.latPart[i] = &Digest{}
	}
	a.shape.flushLens = make([]int, parts)
	a.latAll = &Digest{}
	a.latQueue = &Digest{}
	a.latService = &Digest{}
	a.latDRAM = &Digest{}
	return nil
}

// Bound reports whether Bind has run.
func (a *Auditor) Bound() bool { return a != nil && a.bound }

// Accesses feeds one contiguous chunk of one partition's physical access
// stream — one round's trace in the sharded frontend, the whole recorded
// trace in the unified simulator. Gap labeling for the timing test only
// pairs accesses within a single call, so round boundaries never
// contribute gaps (demand slots lead every round by construction, which
// would otherwise fake a timing signal).
func (a *Auditor) Accesses(part int, events []AccessEvent) {
	if a == nil || !a.bound || part < 0 || part >= a.parts || len(events) == 0 {
		return
	}
	s := a.serial[part]
	t := a.timing[part]
	for i := range events {
		ev := &events[i]
		bin := int(ev.Leaf >> a.binShift)
		if bin >= a.bins { // out-of-range leaf: clamp, the GoF will flag it
			bin = a.bins - 1
		}
		a.global[bin]++
		a.globalN++
		a.part[part][bin]++
		a.partN[part]++

		sb := int(ev.Leaf >> a.serialShift)
		if sb >= a.serialBins {
			sb = a.serialBins - 1
		}
		if s.prev >= 0 {
			s.cells[s.prev*a.serialBins+sb]++
			s.n++
		}
		s.prev = sb

		if ev.Start > a.lastCycle {
			a.lastCycle = ev.Start
		}
		if a.cfg.Timing && i+1 < len(events) {
			gap := events[i+1].Start - ev.Start
			b := bits.Len64(gap)
			if ev.Dummy {
				t.dummy[b]++
				t.dummyN++
			} else {
				t.real[b]++
				t.realN++
			}
		}
	}
	a.accesses += uint64(len(events))
	if a.accesses >= a.nextCheck {
		a.nextCheck = a.accesses + a.checkEvery
		a.onlineCheck()
	}
}

// RoundShape feeds one partition's observed slot count for one round.
// The count must come from wire-observable evidence (the recorded trace's
// slot marks), not from the scheduler's own bookkeeping.
func (a *Auditor) RoundShape(round uint64, part int, kind ShapeKind, slots int) {
	if a == nil || !a.bound || part < 0 || part >= a.parts {
		return
	}
	sh := &a.shape
	switch kind {
	case ShapeDemand:
		sh.demandChecked++
		if a.roundSlots > 0 && slots != a.roundSlots {
			sh.demandViolations++
			if sh.demandDetail == "" {
				sh.demandDetail = fmt.Sprintf("round %d partition %d issued %d observable accesses, contract is %d",
					round, part, slots, a.roundSlots)
			}
			a.latchFailure(fmt.Sprintf("round_shape: %s", sh.demandDetail))
		}
	case ShapeFlush:
		if !sh.flushOpen || sh.flushRound != round {
			a.finishFlushRound()
			sh.flushOpen = true
			sh.flushRound = round
			for i := range sh.flushLens {
				sh.flushLens[i] = -1
			}
		}
		sh.flushLens[part] = slots
	case ShapePad:
		if sh.flushOpen && sh.flushRound == round && sh.flushLens[part] >= 0 {
			sh.flushLens[part] += slots
		}
	}
}

// finishFlushRound closes the in-flight flush round, checking that every
// participating partition issued the same observable access count.
func (a *Auditor) finishFlushRound() {
	sh := &a.shape
	if !sh.flushOpen {
		return
	}
	sh.flushOpen = false
	sh.flushChecked++
	first := -1
	for part, n := range sh.flushLens {
		if n < 0 {
			continue
		}
		if first < 0 {
			first = n
			continue
		}
		if n != first {
			sh.flushViolations++
			if sh.flushDetail == "" {
				sh.flushDetail = fmt.Sprintf("flush round %d: partition %d issued %d accesses, others %d",
					sh.flushRound, part, n, first)
			}
			a.latchFailure(fmt.Sprintf("flush_equality: %s", sh.flushDetail))
			return
		}
	}
}

// Latency feeds one served request's span decomposition, all in simulated
// cycles: queueing delay before its serving round, the serving round's
// service time, the round's DRAM residency, and the end-to-end total.
func (a *Auditor) Latency(part int, queue, service, dram, total uint64) {
	if a == nil || !a.bound || part < 0 || part >= a.parts {
		return
	}
	a.latAll.Observe(total)
	a.latPart[part].Observe(total)
	a.latQueue.Observe(queue)
	a.latService.Observe(service)
	a.latDRAM.Observe(dram)
}

// Failed reports whether any online check has latched a failure.
func (a *Auditor) Failed() bool { return a != nil && a.failed }

// onlineMargin is the extra factor a chi-square statistic must exceed
// its critical value by before an *online* look latches a failure. The
// critical values are calibrated for a single test at finalization;
// evaluating the same accumulating statistic every CheckEvery accesses
// is repeated significance testing, and the maximum over hundreds of
// looks crosses a single-look threshold far more often than alpha
// suggests (an honest run can transiently sit a few percent over crit
// and regress as the stream grows). Doubling the bar makes an honest
// excursion a z≈9 event while the deliberate-leak canaries still
// overshoot by 10–500x, so online detection stays immediate for real
// leaks. Finalization applies the exact threshold.
const onlineMargin = 2

// onlineCheck evaluates the armed tests mid-run and latches the first
// failure. Counting tests (round shape, flush equality) latch on any
// violation; the chi-square tests must clear onlineMargin (see above).
func (a *Auditor) onlineCheck() {
	for _, tr := range a.evaluate() {
		if tr.Status != statusFail {
			continue
		}
		if tr.Violations == 0 && tr.StatMilli < onlineMargin*tr.CritMilli {
			continue
		}
		a.latchFailure(fmt.Sprintf("%s[%s]: stat %dm > crit %dm (n=%d)",
			tr.Name, tr.Scope, tr.StatMilli, tr.CritMilli, tr.N))
		return
	}
}

// latchFailure records the first failure and dumps the flight ring so the
// events leading up to the detected leak are preserved.
func (a *Auditor) latchFailure(detail string) {
	if a.failed {
		return
	}
	a.failed = true
	a.firstFailure = detail
	a.failedAt = a.accesses
	if rec := a.cfg.Recorder; rec.Enabled() {
		rec.Instant("audit", "audit_fail", a.lastCycle, "accesses", a.accesses)
		rec.Flight("audit failure: "+detail, a.lastCycle)
	}
}
