package audit

import (
	"bytes"
	"strings"
	"testing"
)

// lcg is a tiny deterministic generator for test streams (keeps the
// package's tests free of the simulator's seeded rng plumbing).
type lcg struct{ x uint64 }

func (l *lcg) next() uint64 {
	l.x = l.x*6364136223846793005 + 1442695040888963407
	return l.x >> 11
}

func uniformEvents(n int, leaves uint64, seed uint64) []AccessEvent {
	g := &lcg{x: seed}
	evs := make([]AccessEvent, n)
	var t uint64
	for i := range evs {
		t += 100
		evs[i] = AccessEvent{Leaf: g.next() & (leaves - 1), Start: t}
	}
	return evs
}

func newBound(t *testing.T, parts int, leaves uint64, slots int, cfg Config) *Auditor {
	t.Helper()
	a := New(cfg)
	if err := a.Bind(parts, leaves, slots); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	return a
}

func TestCritMilliSane(t *testing.T) {
	// Exact alpha=1e-5 quantiles: df=1 → 19.51, df=10 → 41.30,
	// df=63 → 122.8. Wilson–Hilferty must land within a few percent,
	// erring high (conservative) at low df.
	cases := []struct {
		df     int
		lo, hi uint64
	}{
		{1, 19_511, 22_500},
		{10, 41_000, 43_500},
		{63, 121_500, 126_000},
	}
	for _, c := range cases {
		got := critMilli(c.df)
		if got < c.lo || got > c.hi {
			t.Errorf("critMilli(%d) = %d, want in [%d, %d]", c.df, got, c.lo, c.hi)
		}
	}
	prev := uint64(0)
	for df := 1; df <= 64; df++ {
		v := critMilli(df)
		if v <= prev {
			t.Fatalf("critMilli not increasing at df=%d: %d <= %d", df, v, prev)
		}
		prev = v
	}
}

func TestFixedHelpers(t *testing.T) {
	if got := isqrt(0); got != 0 {
		t.Errorf("isqrt(0) = %d", got)
	}
	for _, x := range []uint64{1, 2, 3, 4, 15, 16, 1 << 40, ^uint64(0)} {
		r := isqrt(x)
		if r*r > x {
			t.Errorf("isqrt(%d) = %d overshoots", x, r)
		}
		if r < (1<<32)-1 && (r+1)*(r+1) <= x {
			t.Errorf("isqrt(%d) = %d undershoots", x, r)
		}
	}
	if got := mulDiv(10, 20, 4); got != 50 {
		t.Errorf("mulDiv(10,20,4) = %d", got)
	}
	if got := mulDiv(1<<63, 4, 2); got != ^uint64(0) {
		t.Errorf("mulDiv overflow should saturate, got %d", got)
	}
	if got := mulDiv(1, 1, 0); got != 0 {
		t.Errorf("mulDiv by zero = %d", got)
	}
}

func TestUniformStreamPasses(t *testing.T) {
	a := newBound(t, 2, 1024, 0, Config{})
	a.Accesses(0, uniformEvents(20_000, 1024, 7))
	a.Accesses(1, uniformEvents(20_000, 1024, 9))
	rep := a.Report()
	if !rep.Pass {
		t.Fatalf("uniform stream flagged: %v", rep.Findings)
	}
	if rep.Accesses != 40_000 {
		t.Errorf("accesses = %d", rep.Accesses)
	}
}

func TestBiasedLeavesFlagged(t *testing.T) {
	a := newBound(t, 1, 1024, 0, Config{CheckEvery: 2048})
	evs := uniformEvents(8_000, 1024, 3)
	for i := range evs {
		evs[i].Leaf &= 511 // lower half only
	}
	a.Accesses(0, evs)
	rep := a.Report()
	if rep.Pass {
		t.Fatal("biased leaf stream not flagged")
	}
	found := false
	for _, f := range rep.Findings {
		if strings.Contains(f, "leaf_uniformity") {
			found = true
		}
	}
	if !found {
		t.Errorf("no leaf_uniformity finding in %v", rep.Findings)
	}
	if !a.Failed() {
		t.Error("online check did not latch")
	}
}

func TestSerialCorrelationFlagged(t *testing.T) {
	// A sequential leaf walk: the marginal distribution is exactly
	// uniform (every leaf equally often), but each access almost always
	// stays in its predecessor's bin — pure serial correlation.
	a := newBound(t, 1, 1024, 0, Config{})
	evs := make([]AccessEvent, 16_000)
	var ts uint64
	for i := range evs {
		ts += 100
		evs[i] = AccessEvent{Leaf: uint64(i) & 1023, Start: ts}
	}
	a.Accesses(0, evs)
	rep := a.Report()
	if rep.Pass {
		t.Fatal("serially correlated stream not flagged")
	}
	var uniFail, serFail bool
	for _, tr := range rep.Tests {
		if tr.Status != statusFail {
			continue
		}
		switch tr.Name {
		case "leaf_uniformity":
			uniFail = true
		case "serial_independence":
			serFail = true
		}
	}
	if uniFail {
		t.Error("marginally uniform stream failed the GoF test")
	}
	if !serFail {
		t.Error("serial_independence did not fail")
	}
}

func TestTimingLeakFlagged(t *testing.T) {
	// Real slots complete in 100 cycles, dummies in 2000: the two-sample
	// test must separate them.
	a := newBound(t, 1, 256, 0, Config{Timing: true})
	g := &lcg{x: 4}
	evs := make([]AccessEvent, 4_000)
	var ts uint64
	for i := range evs {
		dummy := i%2 == 1
		evs[i] = AccessEvent{Leaf: g.next() & 255, Start: ts, Dummy: dummy}
		if dummy {
			ts += 2000
		} else {
			ts += 100
		}
	}
	a.Accesses(0, evs)
	rep := a.Report()
	if rep.Pass {
		t.Fatal("timing leak not flagged")
	}
	stat, crit := rep.Worst("timing_indistinguishability")
	if stat <= crit {
		t.Errorf("timing stat %d not above crit %d", stat, crit)
	}
}

func TestTimingSameDistributionPasses(t *testing.T) {
	// Gap alternates 100/2000 independently of the dummy bit (period-2
	// dummy pattern, period-4 gap pattern): both populations see the same
	// 50/50 mix.
	a := newBound(t, 1, 256, 0, Config{Timing: true})
	g := &lcg{x: 8}
	evs := make([]AccessEvent, 4_000)
	var ts uint64
	for i := range evs {
		evs[i] = AccessEvent{Leaf: g.next() & 255, Start: ts, Dummy: i%2 == 1}
		if i%4 < 2 {
			ts += 100
		} else {
			ts += 2000
		}
	}
	a.Accesses(0, evs)
	rep := a.Report()
	if !rep.Pass {
		t.Fatalf("identical timing distributions flagged: %v", rep.Findings)
	}
}

func TestRoundShapeViolationFlagged(t *testing.T) {
	a := newBound(t, 2, 64, 8, Config{})
	a.RoundShape(0, 0, ShapeDemand, 8)
	a.RoundShape(0, 1, ShapeDemand, 8)
	a.RoundShape(1, 0, ShapeDemand, 7)
	rep := a.Report()
	if rep.Pass {
		t.Fatal("short round not flagged")
	}
	if v := rep.Violations("round_shape"); v != 1 {
		t.Errorf("round_shape violations = %d, want 1", v)
	}
	if !a.Failed() {
		t.Error("shape violation did not latch immediately")
	}
}

func TestFlushEqualityFlagged(t *testing.T) {
	a := newBound(t, 2, 64, 8, Config{})
	a.RoundShape(5, 0, ShapeFlush, 3)
	a.RoundShape(5, 1, ShapeFlush, 1)
	a.RoundShape(5, 0, ShapePad, 0)
	a.RoundShape(5, 1, ShapePad, 1) // 3 vs 2 after padding: unequal
	rep := a.Report()
	if rep.Pass {
		t.Fatal("unequal flush not flagged")
	}
	if v := rep.Violations("flush_equality"); v != 1 {
		t.Errorf("flush_equality violations = %d, want 1", v)
	}

	b := newBound(t, 2, 64, 8, Config{})
	b.RoundShape(5, 0, ShapeFlush, 3)
	b.RoundShape(5, 1, ShapeFlush, 1)
	b.RoundShape(5, 0, ShapePad, 0)
	b.RoundShape(5, 1, ShapePad, 2) // equalized
	if rep := b.Report(); !rep.Pass {
		t.Fatalf("equalized flush flagged: %v", rep.Findings)
	}
}

func TestSmallSamplesSkip(t *testing.T) {
	a := newBound(t, 1, 1024, 0, Config{})
	a.Accesses(0, uniformEvents(10, 1024, 5))
	rep := a.Report()
	if !rep.Pass {
		t.Fatalf("tiny sample flagged: %v", rep.Findings)
	}
	for _, tr := range rep.Tests {
		if tr.Name == "leaf_uniformity" && tr.Status != statusSkip {
			t.Errorf("leaf_uniformity at n=10 is %q, want skip", tr.Status)
		}
	}
}

func TestDigestQuantiles(t *testing.T) {
	var d Digest
	for v := uint64(1); v <= 1000; v++ {
		d.Observe(v)
	}
	p50 := d.Quantile(50, 100)
	p99 := d.Quantile(99, 100)
	p999 := d.Quantile(999, 1000)
	if p50 < 256 || p50 > 768 {
		t.Errorf("p50 = %d, want near 500", p50)
	}
	if !(p50 <= p99 && p99 <= p999 && p999 <= d.Max()) {
		t.Errorf("quantiles not monotone: %d %d %d max %d", p50, p99, p999, d.Max())
	}
	if d.Max() != 1000 {
		t.Errorf("max = %d", d.Max())
	}
	var empty Digest
	if empty.Quantile(50, 100) != 0 || empty.Max() != 0 || empty.Count() != 0 {
		t.Error("empty digest not all-zero")
	}
	var one Digest
	one.Observe(42)
	if got := one.Quantile(50, 100); got < 32 || got > 63 {
		t.Errorf("single-value p50 = %d, want within its bin", got)
	}
}

func TestReportByteDeterminism(t *testing.T) {
	run := func() []byte {
		a := newBound(t, 2, 512, 6, Config{Timing: true})
		a.Accesses(0, uniformEvents(5_000, 512, 11))
		a.Accesses(1, uniformEvents(5_000, 512, 13))
		for r := uint64(0); r < 10; r++ {
			a.RoundShape(r, 0, ShapeDemand, 6)
			a.RoundShape(r, 1, ShapeDemand, 6)
			a.Latency(0, 10*r, 100, 90, 100+10*r)
		}
		var buf bytes.Buffer
		if err := a.Report().WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("two identical feeds produced different report bytes")
	}
}

func TestBindValidation(t *testing.T) {
	a := New(Config{})
	if err := a.Bind(1, 100, 0); err == nil {
		t.Error("non-power-of-two leaves accepted")
	}
	if err := a.Bind(0, 64, 0); err == nil {
		t.Error("zero partitions accepted")
	}
	if err := a.Bind(2, 64, 4); err != nil {
		t.Fatalf("valid bind rejected: %v", err)
	}
	if err := a.Bind(2, 64, 4); err != nil {
		t.Errorf("idempotent rebind rejected: %v", err)
	}
	if err := a.Bind(3, 64, 4); err == nil {
		t.Error("conflicting rebind accepted")
	}
	if a.Report(); !a.Bound() {
		t.Error("Bound() false after Bind")
	}
	var nilA *Auditor
	nilA.Accesses(0, nil)
	nilA.RoundShape(0, 0, ShapeDemand, 1)
	nilA.Latency(0, 1, 2, 3, 4)
	if nilA.Failed() || nilA.Bound() {
		t.Error("nil auditor not inert")
	}
	if rep := nilA.Report(); rep.Pass != false || len(rep.Tests) != 0 {
		t.Error("nil auditor report not empty")
	}
}

func TestSuite(t *testing.T) {
	var s Suite
	if !s.Pass() {
		t.Error("empty suite should pass")
	}
	a := newBound(t, 1, 1024, 0, Config{})
	a.Accesses(0, uniformEvents(5_000, 1024, 17))
	s.Add("green", a.Report())
	if !s.Pass() {
		t.Error("green suite should pass")
	}
	b := newBound(t, 1, 64, 4, Config{})
	b.RoundShape(0, 0, ShapeDemand, 3)
	s.Add("red", b.Report())
	if s.Pass() {
		t.Error("suite with a failing section should fail")
	}
	var buf1, buf2 bytes.Buffer
	if err := s.WriteJSON(&buf1); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := s.WriteJSON(&buf2); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Error("suite serialization not deterministic")
	}
}

// An online look must not latch a chi-square excursion that clears crit
// but not onlineMargin*crit: the same accumulating statistic is looked
// at every CheckEvery accesses, and honest runs transiently wander a
// few percent over a single-look threshold. A real leak overshoots by
// an order of magnitude and must still latch immediately.
func TestOnlineMarginSuppressesTransients(t *testing.T) {
	mk := func(delta uint64) *Auditor {
		a := newBound(t, 1, 64, 0, Config{})
		// 64 bins, 1000 per bin, +-delta on one pair: chi2 = 2*delta^2/1000.
		for i := range a.global {
			a.global[i] = 1000
			a.part[0][i] = 1000
		}
		a.global[0] += delta
		a.global[1] -= delta
		a.part[0][0] += delta
		a.part[0][1] -= delta
		a.globalN = 64 * 1000
		a.partN[0] = 64 * 1000
		return a
	}

	// crit(63) ~ 123.0; delta=300 -> chi2 = 180: over crit, under 2x.
	a := mk(300)
	var failing int
	for _, tr := range a.evaluate() {
		if tr.Status == statusFail {
			failing++
			if tr.StatMilli >= onlineMargin*tr.CritMilli {
				t.Fatalf("%s[%s]: stat %dm not in the (crit, margin*crit) window (crit %dm)",
					tr.Name, tr.Scope, tr.StatMilli, tr.CritMilli)
			}
		}
	}
	if failing == 0 {
		t.Fatal("transient excursion did not exceed crit; test is vacuous")
	}
	a.onlineCheck()
	if a.Failed() {
		t.Fatalf("online look latched a sub-margin excursion: %s", a.firstFailure)
	}

	// delta=600 -> chi2 = 720: far over margin, must latch.
	b := mk(600)
	b.onlineCheck()
	if !b.Failed() {
		t.Fatal("online look missed a leak-sized excursion")
	}
}
