package obs

// Registry holds named metrics in registration order. Lookups are linear
// scans: registration happens a handful of times per simulated system,
// never on the per-access hot path, and avoiding maps keeps every export
// trivially deterministic.
type Registry struct {
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
}

// Counter is a monotonically increasing uint64 metric. All methods are
// no-ops on a nil handle.
type Counter struct {
	name string
	v    uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) {
	if c != nil {
		c.v += d
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a point-in-time float64 metric. All methods are no-ops on a
// nil handle.
type Gauge struct {
	name string
	v    float64
}

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Max raises the gauge to v if v is larger (high-water tracking).
func (g *Gauge) Max(v float64) {
	if g != nil && v > g.v {
		g.v = v
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram counts observations into buckets with ascending upper-bound
// edges plus an implicit +Inf bucket. All methods are no-ops on a nil
// handle.
type Histogram struct {
	name   string
	bounds []float64 // ascending upper bounds; counts has len(bounds)+1
	counts []uint64
	count  uint64
	sum    float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += v
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Mean returns the running mean of observations (0 before the first).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name string) *Counter {
	for _, c := range r.counters {
		if c.name == name {
			return c
		}
	}
	c := &Counter{name: name}
	r.counters = append(r.counters, c)
	return c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	for _, g := range r.gauges {
		if g.name == name {
			return g
		}
	}
	g := &Gauge{name: name}
	r.gauges = append(r.gauges, g)
	return g
}

// Histogram returns the named histogram, registering it on first use with
// the given bucket bounds (bounds are ignored on a rediscovered name: the
// first registration wins).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	for _, h := range r.hists {
		if h.name == name {
			return h
		}
	}
	h := &Histogram{
		name:   name,
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	r.hists = append(r.hists, h)
	return h
}

// PowerOfTwoBounds returns histogram bounds 1, 2, 4, ... 2^(n-1) —
// the natural scale for super block sizes and occupancy counts.
func PowerOfTwoBounds(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(uint64(1) << i)
	}
	return out
}
