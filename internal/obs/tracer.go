package obs

import (
	"bufio"
	"io"
	"strconv"
)

// Event is one structured trace record in the Chrome trace-event model:
// a phase ('X' complete span, 'i' instant, 'C' counter sample, 'M'
// metadata), a category, a name, a timestamp and duration in simulated
// cycles (written as microseconds, the unit the viewers expect), the
// logical process id, and at most one integer argument. One small fixed
// argument keeps emission allocation-free; sites needing more context
// emit two events.
type Event struct {
	Ph     byte
	Cat    string
	Name   string
	TS     uint64
	Dur    uint64
	Pid    int
	ArgKey string
	ArgVal uint64
}

// Tracer serializes events as a Chrome trace-event JSON array with one
// event per line — loadable by chrome://tracing and Perfetto, and still
// greppable line-by-line like JSONL. Close writes the terminating bracket
// so the finished file is well-formed JSON.
type Tracer struct {
	w      *bufio.Writer
	buf    []byte // reusable per-event scratch
	events uint64
	closed bool
	err    error
}

// NewTracer starts a trace stream on w.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{w: bufio.NewWriter(w), buf: make([]byte, 0, 256)}
	_, t.err = t.w.WriteString("[\n")
	return t
}

// Events returns how many events have been written.
func (t *Tracer) Events() uint64 { return t.events }

// Meta emits a process_name metadata record for pid.
func (t *Tracer) Meta(pid int, name string) {
	b := t.buf[:0]
	b = append(b, `{"name":"process_name","ph":"M","pid":`...)
	b = strconv.AppendInt(b, int64(pid), 10)
	b = append(b, `,"args":{"name":`...)
	b = strconv.AppendQuote(b, name)
	b = append(b, "}}"...)
	t.writeLine(b)
}

// Emit writes one event.
func (t *Tracer) Emit(e Event) {
	t.writeLine(appendEvent(t.buf[:0], e))
}

// appendEvent renders one event record, the single source of truth for
// the record shape (shared with the flight-recorder dump).
func appendEvent(b []byte, e Event) []byte {
	b = append(b, `{"name":`...)
	b = strconv.AppendQuote(b, e.Name)
	b = append(b, `,"cat":`...)
	b = strconv.AppendQuote(b, e.Cat)
	b = append(b, `,"ph":"`...)
	b = append(b, e.Ph)
	b = append(b, `","ts":`...)
	b = strconv.AppendUint(b, e.TS, 10)
	if e.Ph == 'X' {
		b = append(b, `,"dur":`...)
		b = strconv.AppendUint(b, e.Dur, 10)
	}
	b = append(b, `,"pid":`...)
	b = strconv.AppendInt(b, int64(e.Pid), 10)
	b = append(b, `,"tid":1`...)
	if e.Ph == 'i' {
		b = append(b, `,"s":"p"`...) // instant scope: process
	}
	if e.ArgKey != "" {
		b = append(b, `,"args":{`...)
		b = strconv.AppendQuote(b, e.ArgKey)
		b = append(b, ':')
		b = strconv.AppendUint(b, e.ArgVal, 10)
		b = append(b, '}')
	}
	b = append(b, '}')
	return b
}

// writeLine appends one record line, comma-separating from its
// predecessor so the overall file stays one valid JSON array.
func (t *Tracer) writeLine(b []byte) {
	t.buf = b[:0]
	if t.err != nil || t.closed {
		return
	}
	if t.events > 0 {
		if _, err := t.w.WriteString(",\n"); err != nil {
			t.err = err
			return
		}
	}
	if _, err := t.w.Write(b); err != nil {
		t.err = err
		return
	}
	t.events++
}

// Close terminates the array and flushes. It returns the first error the
// stream hit, if any. Closing twice is safe.
func (t *Tracer) Close() error {
	if t.closed {
		return t.err
	}
	t.closed = true
	if t.err == nil {
		_, t.err = t.w.WriteString("\n]\n")
	}
	if err := t.w.Flush(); t.err == nil {
		t.err = err
	}
	return t.err
}
