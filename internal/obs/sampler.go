package obs

// Sampler drives time-series collection on the simulated clock: every
// `every` cycles it invokes the callbacks registered by the active
// process, which read their component state and record points into their
// Series. The sampler never reads a wall clock; "time" is whatever cycle
// the instrumented component reports via Recorder.MaybeSample.
type Sampler struct {
	every uint64
	next  uint64

	series    []*Series
	callbacks []func(cycle uint64)
}

// Series is one named time series: parallel cycle/value slices, tagged
// with the pid of the process that produced it. All methods are no-ops on
// a nil handle.
type Series struct {
	pid    int
	name   string
	cycles []uint64
	values []float64
}

// Record appends one point. Points arrive in non-decreasing cycle order
// because the sampler drives them from the simulated clock.
func (s *Series) Record(cycle uint64, v float64) {
	if s == nil {
		return
	}
	s.cycles = append(s.cycles, cycle)
	s.values = append(s.values, v)
}

// Len returns the number of recorded points (0 on nil).
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return len(s.cycles)
}

// newSeries always appends: two processes may both record, say,
// "stash_occupancy", and stay distinguishable by pid in the export.
func (sm *Sampler) newSeries(pid int, name string) *Series {
	s := &Series{pid: pid, name: name}
	sm.series = append(sm.series, s)
	return s
}

// onSample registers a tick callback for the active process.
func (sm *Sampler) onSample(f func(cycle uint64)) {
	sm.callbacks = append(sm.callbacks, f)
}

// beginProcess drops the previous process's callbacks (its system is no
// longer running; letting them fire would extend its series with stale
// state) and restarts the tick phase, since each system starts its clock
// at cycle zero.
func (sm *Sampler) beginProcess() {
	sm.callbacks = sm.callbacks[:0]
	sm.next = 0
}

// maybeSample fires one tick per interval boundary in (next, now]. Tick
// timestamps are the exact boundaries, so sample spacing is uniform even
// when the driving component advances time in larger jumps; the sampled
// values are the component state at the first opportunity at or after
// each boundary (state changes atomically per path access, so this is the
// finest granularity the simulation has).
func (sm *Sampler) maybeSample(now uint64) {
	for sm.next <= now {
		tick := sm.next
		for _, f := range sm.callbacks {
			f(tick)
		}
		sm.next += sm.every
	}
}
