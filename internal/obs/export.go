package obs

import (
	"encoding/json"
	"io"
)

// The export schema mirrors the in-memory structures with ordered slices
// throughout — no Go maps ever touch the serialization path, so the JSON
// is byte-deterministic: same registrations, same observations, same
// bytes. encoding/json's float formatting (strconv shortest-round-trip)
// is itself deterministic.

type metricsDump struct {
	Counters   []counterDump   `json:"counters"`
	Gauges     []gaugeDump     `json:"gauges"`
	Histograms []histogramDump `json:"histograms"`
	Series     []seriesDump    `json:"series"`
}

type counterDump struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

type gaugeDump struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

type histogramDump struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

type seriesDump struct {
	Pid    int       `json:"pid"`
	Name   string    `json:"name"`
	Cycles []uint64  `json:"cycles"`
	Values []float64 `json:"values"`
}

// writeMetricsJSON renders the registry and sampler state. Slices are
// materialized (never nil) so absent sections export as [] rather than
// null, keeping downstream parsing uniform.
func writeMetricsJSON(w io.Writer, reg *Registry, sm *Sampler) error {
	dump := metricsDump{
		Counters:   make([]counterDump, 0, len(reg.counters)),
		Gauges:     make([]gaugeDump, 0, len(reg.gauges)),
		Histograms: make([]histogramDump, 0, len(reg.hists)),
		Series:     make([]seriesDump, 0, len(sm.series)),
	}
	for _, c := range reg.counters {
		dump.Counters = append(dump.Counters, counterDump{Name: c.name, Value: c.v})
	}
	for _, g := range reg.gauges {
		dump.Gauges = append(dump.Gauges, gaugeDump{Name: g.name, Value: g.v})
	}
	for _, h := range reg.hists {
		bounds := h.bounds
		if bounds == nil {
			bounds = []float64{}
		}
		dump.Histograms = append(dump.Histograms, histogramDump{
			Name: h.name, Bounds: bounds, Counts: h.counts, Count: h.count, Sum: h.sum,
		})
	}
	for _, s := range sm.series {
		cycles := s.cycles
		if cycles == nil {
			cycles = []uint64{}
		}
		values := s.values
		if values == nil {
			values = []float64{}
		}
		dump.Series = append(dump.Series, seriesDump{Pid: s.pid, Name: s.name, Cycles: cycles, Values: values})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(dump)
}
