package obs

import (
	"encoding/json"
	"io"
)

// The export schema mirrors the in-memory structures with ordered slices
// throughout — no Go maps ever touch the serialization path, so the JSON
// is byte-deterministic: same registrations, same observations, same
// bytes. encoding/json's float formatting (strconv shortest-round-trip)
// is itself deterministic.

type metricsDump struct {
	Counters   []counterDump   `json:"counters"`
	Gauges     []gaugeDump     `json:"gauges"`
	Histograms []histogramDump `json:"histograms"`
	Series     []seriesDump    `json:"series"`
}

type counterDump struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

type gaugeDump struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

type histogramDump struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	P50    float64   `json:"p50"`
	P95    float64   `json:"p95"`
	P99    float64   `json:"p99"`
}

// histQuantile estimates the q-quantile (0 < q <= 1) of a bucketed
// histogram by linear interpolation inside the bucket holding the target
// rank. The first bucket interpolates from zero; the overflow bucket has
// no upper bound and reports the largest finite bound (the standard
// bucketed-quantile convention). The arithmetic is a fixed left-to-right
// walk, so equal inputs yield bit-equal outputs.
func histQuantile(bounds []float64, counts []uint64, total uint64, q float64) float64 {
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		fc := float64(c)
		if rank > cum+fc {
			cum += fc
			continue
		}
		if i >= len(bounds) {
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		return lo + (bounds[i]-lo)*((rank-cum)/fc)
	}
	return bounds[len(bounds)-1]
}

type seriesDump struct {
	Pid    int       `json:"pid"`
	Name   string    `json:"name"`
	Cycles []uint64  `json:"cycles"`
	Values []float64 `json:"values"`
}

// writeMetricsJSON renders the registry and sampler state. Slices are
// materialized (never nil) so absent sections export as [] rather than
// null, keeping downstream parsing uniform.
func writeMetricsJSON(w io.Writer, reg *Registry, sm *Sampler) error {
	dump := metricsDump{
		Counters:   make([]counterDump, 0, len(reg.counters)),
		Gauges:     make([]gaugeDump, 0, len(reg.gauges)),
		Histograms: make([]histogramDump, 0, len(reg.hists)),
		Series:     make([]seriesDump, 0, len(sm.series)),
	}
	for _, c := range reg.counters {
		dump.Counters = append(dump.Counters, counterDump{Name: c.name, Value: c.v})
	}
	for _, g := range reg.gauges {
		dump.Gauges = append(dump.Gauges, gaugeDump{Name: g.name, Value: g.v})
	}
	for _, h := range reg.hists {
		bounds := h.bounds
		if bounds == nil {
			bounds = []float64{}
		}
		dump.Histograms = append(dump.Histograms, histogramDump{
			Name: h.name, Bounds: bounds, Counts: h.counts, Count: h.count, Sum: h.sum,
			P50: histQuantile(h.bounds, h.counts, h.count, 0.50),
			P95: histQuantile(h.bounds, h.counts, h.count, 0.95),
			P99: histQuantile(h.bounds, h.counts, h.count, 0.99),
		})
	}
	for _, s := range sm.series {
		cycles := s.cycles
		if cycles == nil {
			cycles = []uint64{}
		}
		values := s.values
		if values == nil {
			values = []float64{}
		}
		dump.Series = append(dump.Series, seriesDump{Pid: s.pid, Name: s.name, Cycles: cycles, Values: values})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(dump)
}
