package oram

import (
	"testing"

	"proram/internal/rng"
	"proram/internal/superblock"
)

// testConfig returns a small, fast configuration for functional tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.NumBlocks = 1 << 12
	cfg.OnChipEntries = 64
	cfg.PLBBlocks = 8
	return cfg
}

// fakeLLC is a stand-in for the processor cache used to drive the merge
// algorithm's tag probes in unit tests.
type fakeLLC struct{ set map[uint64]bool }

func newFakeLLC() *fakeLLC                   { return &fakeLLC{set: make(map[uint64]bool)} }
func (f *fakeLLC) Present(index uint64) bool { return f.set[index] }
func (f *fakeLLC) add(indices ...uint64) {
	for _, i := range indices {
		f.set[i] = true
	}
}

func TestNewValidatesConfig(t *testing.T) {
	cfg := testConfig()
	cfg.Z = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
	cfg = testConfig()
	cfg.Super = superblock.Config{Scheme: superblock.Dynamic, MaxSize: 64,
		CMerge: 1, CBreak: 1, Window: 1000}
	cfg.Fanout = 32
	if _, err := New(cfg); err == nil {
		t.Fatal("super block larger than fanout accepted")
	}
}

func TestBasicReadTiming(t *testing.T) {
	c, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := c.Read(0, 42)
	if res.Done == 0 {
		t.Fatal("zero completion time")
	}
	// A cold access walks the whole recursion: depth posmap paths + 1 data.
	wantPaths := c.pm.Depth() + 1
	if res.PathCount != wantPaths {
		t.Fatalf("cold access used %d paths, want %d", res.PathCount, wantPaths)
	}
	if res.Done != uint64(wantPaths)*c.PathLatency() {
		t.Fatalf("Done = %d, want %d", res.Done, uint64(wantPaths)*c.PathLatency())
	}
	s := c.Stats()
	if s.DemandReads != 1 || s.DataPaths != 1 || s.PosMapPaths != uint64(c.pm.Depth()) {
		t.Fatalf("stats: %+v", s)
	}
}

func TestPLBSavesRecursion(t *testing.T) {
	c, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Read(0, 100)
	// A second access to a block covered by the same level-1 pos-map block
	// hits the PLB and needs only the data path.
	res := c.Read(c.Stats().LastEnd, 101)
	if res.PathCount != 1 {
		t.Fatalf("PLB-covered access used %d paths, want 1", res.PathCount)
	}
	if c.Stats().PLBHits == 0 {
		t.Fatal("no PLB hits recorded")
	}
}

func TestReadYourStructure(t *testing.T) {
	// Repeated accesses to the same block must remap it every time and
	// keep it resident exactly once.
	c, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		c.Read(c.Stats().LastEnd, 7)
	}
	if err := c.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantUnderRandomWorkload(t *testing.T) {
	cfg := testConfig()
	cfg.NumBlocks = 1 << 10
	cfg.StashLimit = 40
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	for i := 0; i < 2000; i++ {
		idx := r.Uint64n(cfg.NumBlocks)
		if r.Bool() {
			c.Read(c.Stats().LastEnd, idx)
		} else {
			c.Write(c.Stats().LastEnd, idx)
		}
		if i%500 == 499 {
			if err := c.CheckInvariant(); err != nil {
				t.Fatalf("after %d ops: %v", i+1, err)
			}
		}
	}
	s := c.Stats()
	if s.DemandReads+s.Writebacks != 2000 {
		t.Fatalf("request accounting: %+v", s)
	}
}

func TestBackgroundEvictionsKeepStashBounded(t *testing.T) {
	cfg := testConfig()
	cfg.NumBlocks = 1 << 10
	cfg.StashLimit = 2 // tiny stash forces background evictions
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	for i := 0; i < 2000; i++ {
		c.Read(c.Stats().LastEnd, r.Uint64n(cfg.NumBlocks))
		if c.StashSize() > cfg.StashLimit {
			t.Fatalf("stash %d exceeds limit %d after a completed access", c.StashSize(), cfg.StashLimit)
		}
	}
	if c.Stats().BackgroundEvictions == 0 {
		t.Fatal("tiny stash produced no background evictions")
	}
	if err := c.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestStaticSchemeInitializesGroups(t *testing.T) {
	cfg := testConfig()
	cfg.Super = superblock.Config{Scheme: superblock.Static, MaxSize: 4}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := c.Read(0, 5) // group [4,8)
	want := []uint64{4, 6, 7}
	if len(res.Prefetched) != len(want) {
		t.Fatalf("prefetched %v, want %v", res.Prefetched, want)
	}
	for i, w := range want {
		if res.Prefetched[i] != w {
			t.Fatalf("prefetched %v, want %v", res.Prefetched, want)
		}
	}
	// All four members share a leaf and size 4.
	pb := c.pm.Block(1, 0)
	leaf := pb.Entries[4].Leaf
	for i := 4; i < 8; i++ {
		if pb.Entries[i].Leaf != leaf || pb.Entries[i].SBSize != 4 {
			t.Fatalf("entry %d = %+v", i, pb.Entries[i])
		}
	}
	if err := c.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if c.Stats().PrefetchIssued != 3 {
		t.Fatalf("PrefetchIssued = %d", c.Stats().PrefetchIssued)
	}
}

func TestStaticSchemeSubsequentAccessLoadsGroup(t *testing.T) {
	cfg := testConfig()
	cfg.Super = superblock.Config{Scheme: superblock.Static, MaxSize: 2}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Read(0, 10)
	res := c.Read(c.Stats().LastEnd, 11)
	if len(res.Prefetched) != 1 || res.Prefetched[0] != 10 {
		t.Fatalf("prefetched %v, want [10]", res.Prefetched)
	}
	if err := c.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicMergeHappens(t *testing.T) {
	cfg := testConfig()
	cfg.Super = superblock.Config{Scheme: superblock.Dynamic, MaxSize: 2,
		MergeMode: superblock.ThresholdStatic, BreakMode: superblock.ThresholdStatic,
		CMerge: 1, CBreak: 1, Window: 1000}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	llc := newFakeLLC()
	c.SetProber(llc)

	c.Read(0, 0)
	llc.add(0)
	// Access 1: neighbor 0 is in LLC -> merge counter 1 (< threshold 2).
	c.Read(c.Stats().LastEnd, 1)
	llc.add(1)
	if c.Stats().Merges != 0 {
		t.Fatal("merged too early")
	}
	// Access 0: neighbor 1 in LLC -> counter 2 -> merge.
	res := c.Read(c.Stats().LastEnd, 0)
	if c.Stats().Merges != 1 {
		t.Fatalf("Merges = %d, want 1", c.Stats().Merges)
	}
	// The merge itself returns only the accessed block (neighbor already cached).
	if len(res.Prefetched) != 0 {
		t.Fatalf("merge access prefetched %v", res.Prefetched)
	}
	pb := c.pm.Block(1, 0)
	if pb.Entries[0].SBSize != 2 || pb.Entries[1].SBSize != 2 {
		t.Fatalf("sizes after merge: %d %d", pb.Entries[0].SBSize, pb.Entries[1].SBSize)
	}
	if pb.Entries[0].Leaf != pb.Entries[1].Leaf {
		t.Fatal("merged blocks on different leaves")
	}
	if err := c.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	// The next access of either member returns the other as a prefetch.
	res = c.Read(c.Stats().LastEnd, 1)
	if len(res.Prefetched) != 1 || res.Prefetched[0] != 0 {
		t.Fatalf("post-merge prefetch = %v, want [0]", res.Prefetched)
	}
}

func TestDynamicBreakHappens(t *testing.T) {
	cfg := testConfig()
	cfg.Super = superblock.Config{Scheme: superblock.Dynamic, MaxSize: 2,
		MergeMode: superblock.ThresholdStatic, BreakMode: superblock.ThresholdStatic,
		CMerge: 1, CBreak: 1, Window: 1000}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	llc := newFakeLLC()
	c.SetProber(llc)
	// Merge blocks 0 and 1 as above.
	c.Read(0, 0)
	llc.add(0)
	c.Read(c.Stats().LastEnd, 1)
	llc.add(1)
	c.Read(c.Stats().LastEnd, 0)
	if c.Stats().Merges != 1 {
		t.Fatal("setup merge failed")
	}
	// Now stop cooperating: clear the LLC so no further merges, and access
	// only block 0 so block 1's prefetches always go unused. The break
	// counter starts at 2n = 4 and loses 1 per unused prefetch
	// observation, so the 5th observation drives it below zero.
	llc.set = map[uint64]bool{}
	for i := 0; i < 10; i++ {
		c.Read(c.Stats().LastEnd, 0)
		if c.Stats().Breaks > 0 {
			break
		}
	}
	if c.Stats().Breaks != 1 {
		t.Fatalf("Breaks = %d, want 1", c.Stats().Breaks)
	}
	pb := c.pm.Block(1, 0)
	if pb.Entries[0].SBSize != 1 || pb.Entries[1].SBSize != 1 {
		t.Fatalf("sizes after break: %d %d", pb.Entries[0].SBSize, pb.Entries[1].SBSize)
	}
	if err := c.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchHitFeedsBreakCounter(t *testing.T) {
	cfg := testConfig()
	cfg.Super = superblock.Config{Scheme: superblock.Dynamic, MaxSize: 2,
		MergeMode: superblock.ThresholdStatic, BreakMode: superblock.ThresholdStatic,
		CMerge: 1, CBreak: 1, Window: 1000}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	llc := newFakeLLC()
	c.SetProber(llc)
	c.Read(0, 0)
	llc.add(0)
	c.Read(c.Stats().LastEnd, 1)
	llc.add(1)
	c.Read(c.Stats().LastEnd, 0) // merge
	// Access 1 -> prefetches 0; report the prefetch used.
	res := c.Read(c.Stats().LastEnd, 1)
	if len(res.Prefetched) != 1 || res.Prefetched[0] != 0 {
		t.Fatalf("prefetched %v", res.Prefetched)
	}
	c.NotifyPrefetchUse(0)
	// Next load observes the hit and increments the break counter.
	c.Read(c.Stats().LastEnd, 1)
	s := c.Stats()
	if s.PrefetchHits != 1 || s.ReloadedUsed != 1 {
		t.Fatalf("hit accounting: %+v", s)
	}
	if s.Breaks != 0 {
		t.Fatal("hit caused a break")
	}
}

func TestWritebackKeepsGroupTogether(t *testing.T) {
	cfg := testConfig()
	cfg.Super = superblock.Config{Scheme: superblock.Static, MaxSize: 4}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Read(0, 16)
	res := c.Write(c.Stats().LastEnd, 18) // dirty eviction of a member
	if len(res.Prefetched) != 0 {
		t.Fatal("writeback produced prefetches")
	}
	pb := c.pm.Block(1, 0)
	leaf := pb.Entries[16].Leaf
	for i := 16; i < 20; i++ {
		if pb.Entries[i].Leaf != leaf {
			t.Fatal("writeback split the super block across leaves")
		}
	}
	if err := c.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if c.Stats().WritebackPaths != 1 {
		t.Fatalf("WritebackPaths = %d", c.Stats().WritebackPaths)
	}
}

func TestPeriodicModeIssuesDummies(t *testing.T) {
	cfg := testConfig()
	cfg.Periodic = true
	cfg.Oint = 100
	cfg.RecordTrace = true
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Read(0, 1)
	end := c.Stats().LastEnd
	// Request arriving long after completion forces catch-up dummies.
	gap := 10 * (c.PathLatency() + cfg.Oint)
	c.Read(end+gap, 2)
	if c.Stats().DummyAccesses == 0 {
		t.Fatal("no periodic dummies during idle gap")
	}
	// Verify the public schedule: consecutive starts differ by exactly
	// pathLatency + Oint.
	tr := c.Trace()
	for i := 1; i < len(tr); i++ {
		if d := tr[i].Start - tr[i-1].Start; d != c.PathLatency()+cfg.Oint {
			t.Fatalf("trace gap %d at %d, want %d", d, i, c.PathLatency()+cfg.Oint)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Stats {
		cfg := testConfig()
		cfg.Super = superblock.DefaultConfig()
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		llc := newFakeLLC()
		c.SetProber(llc)
		r := rng.New(99)
		for i := 0; i < 500; i++ {
			res := c.Read(c.Stats().LastEnd, r.Uint64n(256))
			llc.add(res.Prefetched...)
		}
		return c.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic runs:\n%+v\n%+v", a, b)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	c, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Read did not panic")
		}
	}()
	c.Read(0, c.cfg.NumBlocks)
}

func TestPathLatencyOverride(t *testing.T) {
	cfg := testConfig()
	cfg.PathLatencyOverride = 2364
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.PathLatency() != 2364 {
		t.Fatalf("PathLatency = %d, want 2364", c.PathLatency())
	}
}

func TestPartialTailGroup(t *testing.T) {
	cfg := testConfig()
	cfg.NumBlocks = 33 // last level-1 block covers a single entry
	cfg.Super = superblock.Config{Scheme: superblock.Static, MaxSize: 4}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := c.Read(0, 32)
	if len(res.Prefetched) != 0 {
		t.Fatalf("tail singleton prefetched %v", res.Prefetched)
	}
	if err := c.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveWindowRolls(t *testing.T) {
	cfg := testConfig()
	sb := superblock.DefaultConfig()
	sb.Window = 50
	cfg.Super = sb
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	llc := newFakeLLC()
	c.SetProber(llc)
	r := rng.New(4)
	for i := 0; i < 200; i++ {
		res := c.Read(c.Stats().LastEnd, r.Uint64n(64))
		llc.add(res.Prefetched...)
		llc.add(r.Uint64n(64))
	}
	// After several windows the policy must have nonzero access rate.
	if c.policy.Rates().AccessRate == 0 {
		t.Fatal("adaptive window never rolled")
	}
	if err := c.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestDisabledPLBStillWorks(t *testing.T) {
	cfg := testConfig()
	cfg.PLBBlocks = 0
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		res := c.Read(c.Stats().LastEnd, i%37)
		// Every access pays the full recursion.
		if res.PathCount < c.pm.Depth()+1 {
			t.Fatalf("access %d used %d paths, want >= %d", i, res.PathCount, c.pm.Depth()+1)
		}
	}
	if err := c.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchEvictNotification(t *testing.T) {
	c, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.NotifyPrefetchEvict(3)
	if s := c.Stats(); s.PrefetchUnused != 1 {
		t.Fatalf("PrefetchUnused = %d", s.PrefetchUnused)
	}
	if got := (Stats{PrefetchHits: 1, PrefetchUnused: 3}).PrefetchMissRate(); got != 0.75 {
		t.Fatalf("PrefetchMissRate = %v", got)
	}
	if got := (Stats{}).PrefetchMissRate(); got != 0 {
		t.Fatalf("empty PrefetchMissRate = %v", got)
	}
}

func TestDynamicInvariantUnderChurn(t *testing.T) {
	// Heavy merge/break churn with a realistic half-cooperative LLC.
	cfg := testConfig()
	cfg.NumBlocks = 1 << 10
	cfg.StashLimit = 60
	sb := superblock.DefaultConfig()
	sb.MaxSize = 8
	sb.Window = 100
	cfg.Super = sb
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	llc := newFakeLLC()
	c.SetProber(llc)
	r := rng.New(11)
	for i := 0; i < 3000; i++ {
		var idx uint64
		if r.Float64() < 0.7 {
			idx = r.Uint64n(64) // hot sequential-ish region
		} else {
			idx = r.Uint64n(cfg.NumBlocks)
		}
		res := c.Read(c.Stats().LastEnd, idx)
		llc.add(idx)
		llc.add(res.Prefetched...)
		for _, p := range res.Prefetched {
			if r.Bool() {
				c.NotifyPrefetchUse(p)
			} else {
				c.NotifyPrefetchEvict(p)
				delete(llc.set, p)
			}
		}
		// Random LLC pressure.
		if r.Float64() < 0.3 {
			delete(llc.set, r.Uint64n(cfg.NumBlocks))
		}
		if i%1000 == 999 {
			if err := c.CheckInvariant(); err != nil {
				t.Fatalf("after %d ops: %v", i+1, err)
			}
		}
	}
	s := c.Stats()
	if s.Merges == 0 {
		t.Fatal("hot region never merged")
	}
	t.Logf("merges=%d breaks=%d bg=%d prefetchIssued=%d", s.Merges, s.Breaks, s.BackgroundEvictions, s.PrefetchIssued)
}
