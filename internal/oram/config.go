// Package oram implements the full Unified/Recursive Path ORAM controller
// of the paper: the trusted logic that turns each logical block request
// into path accesses on the untrusted binary tree, maintains the stash and
// recursive position map (with a PLB), issues background evictions and
// periodic dummy accesses, and runs the PrORAM super block schemes
// (static and dynamic merge/break).
//
// The controller is functionally exact — blocks really move between tree,
// stash and the on-chip structures, and every invariant of Path ORAM is
// maintained — while time is modeled analytically from the DRAM channel
// parameters, matching the paper's Graphite methodology.
package oram

import (
	"fmt"

	"proram/internal/dram"
	"proram/internal/dram/banked"
	"proram/internal/superblock"
)

// Config describes one ORAM instance.
type Config struct {
	// NumBlocks is the number of logical data blocks (the ORAM capacity in
	// blocks). The paper's 8 GB / 128 B config is 2^26 blocks; the default
	// simulated capacity is smaller (see DefaultConfig).
	NumBlocks uint64
	// BlockBytes is the ORAM basic block (= cacheline) size; 128 in Table 1.
	BlockBytes int
	// Z is the bucket capacity; 3 in Table 1.
	Z int
	// StashLimit is the stash capacity in blocks (100 in Table 1); the
	// controller issues background evictions while occupancy exceeds it.
	StashLimit int
	// Fanout is the number of position-map entries per position-map block
	// (32 in the paper).
	Fanout int
	// OnChipEntries bounds the final on-chip position map; recursion adds
	// levels until the top level has at most this many blocks.
	OnChipEntries uint64
	// PLBBlocks is the capacity of the position-map lookaside buffer in
	// blocks; 0 disables it (every recursion level pays a path access).
	PLBBlocks int
	// TreeLevelsOverride, when nonzero, pins the tree depth L instead of
	// deriving it from the block population. Deeper trees waste space and
	// latency; shallower trees raise slot utilization and background-
	// eviction pressure.
	TreeLevelsOverride int

	// DRAM supplies channel latency/bandwidth for the flat timing model.
	DRAM dram.Config
	// Banked, when non-nil, replaces the flat per-path latency with a banked
	// multi-channel device: every bucket of every path is scheduled
	// individually (row-buffer state, per-channel buses) through the layout
	// in Banked.Layout, and the read and write-back phases of consecutive
	// paths overlap. Nil keeps the legacy analytic model bit-identical.
	Banked *banked.Config
	// CryptoLatency is the fixed pipeline-fill cost charged per path
	// access for decryption/encryption.
	CryptoLatency uint64
	// PathLatencyOverride, when nonzero, pins the per-path-access latency
	// to an exact cycle count (e.g. the paper's 2364) instead of deriving
	// it from tree geometry and bandwidth.
	PathLatencyOverride uint64

	// Periodic enables timing-channel protection: path accesses occur on a
	// fixed cadence, with dummy accesses filling idle slots (§2.5, §5.6).
	Periodic bool
	// Oint is the public gap in cycles between consecutive accesses when
	// Periodic is set (100 in §5.6).
	Oint uint64
	// DynamicOint enables the §2.5 extension: the interval adapts within
	// the public ladder [Oint, OintMax] by doubling/halving at epoch
	// boundaries, trading a bounded timing leak (one bit per transition,
	// see Controller.OintTransitions) for fewer dummy accesses.
	DynamicOint bool
	// OintMax caps the adaptive interval (default 16×Oint).
	OintMax uint64
	// OintEpoch is the number of scheduled accesses per adaptation
	// decision (default 64).
	OintEpoch int

	// Super selects and parameterizes the super block scheme.
	Super superblock.Config

	// Prefill populates the entire ORAM at construction (every data and
	// position-map block assigned a leaf and placed in the tree), matching
	// the paper's initialized ORAM: a full tree is what creates realistic
	// stash pressure and background-eviction rates. When false, blocks
	// materialize lazily on first touch (cheaper for small-footprint uses).
	Prefill bool
	// Seed drives all randomness (leaf assignment); runs are reproducible.
	Seed uint64
	// RecordTrace keeps the physical access trace (leaf sequence) for
	// security analysis. Costs memory proportional to path accesses.
	RecordTrace bool
	// LeakBiasLeaf is a NEGATIVE CONTROL for the obliviousness auditor:
	// it deliberately breaks the uniform-leaf invariant by drawing remap
	// leaves from only the lower half of the leaf range. Never set it
	// outside auditor validation runs — it voids the security argument.
	LeakBiasLeaf bool
}

// DefaultConfig returns the paper's Table 1 configuration scaled to the
// default simulated capacity (192 MB of 128-byte blocks).
func DefaultConfig() Config {
	return Config{
		// 1.5M blocks (192 MB) over a 2^19-leaf Z=3 tree puts slot
		// utilization at ~50%, the provisioning of Ren et al. [25] that
		// produces the paper's background-eviction pressure. The paper's
		// full 8 GB is reachable by raising NumBlocks to 1<<26.
		NumBlocks:     1_500_000,
		BlockBytes:    128,
		Z:             3,
		StashLimit:    100,
		Fanout:        32,
		OnChipEntries: 4096,
		PLBBlocks:     128,
		DRAM:          dram.DefaultConfig(),
		CryptoLatency: 100,
		Oint:          100,
		Super:         superblock.Config{Scheme: superblock.None, MaxSize: 1},
		Seed:          1,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.NumBlocks < 2 {
		return fmt.Errorf("oram: NumBlocks %d too small", c.NumBlocks)
	}
	if c.BlockBytes < 8 {
		return fmt.Errorf("oram: BlockBytes %d too small", c.BlockBytes)
	}
	if c.Z < 1 {
		return fmt.Errorf("oram: Z %d must be positive", c.Z)
	}
	if c.StashLimit < 1 {
		return fmt.Errorf("oram: StashLimit %d must be positive", c.StashLimit)
	}
	if c.Fanout < 2 {
		return fmt.Errorf("oram: Fanout %d must be >= 2", c.Fanout)
	}
	if c.OnChipEntries < 1 {
		return fmt.Errorf("oram: OnChipEntries must be positive")
	}
	if c.PLBBlocks < 0 {
		return fmt.Errorf("oram: PLBBlocks %d must be >= 0", c.PLBBlocks)
	}
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	if c.Banked != nil {
		if err := c.Banked.Validate(); err != nil {
			return err
		}
	}
	if c.Periodic && c.Oint == 0 {
		return fmt.Errorf("oram: Periodic requires a positive Oint")
	}
	if c.DynamicOint && !c.Periodic {
		return fmt.Errorf("oram: DynamicOint requires Periodic")
	}
	if c.DynamicOint && c.OintMax != 0 && c.OintMax < c.Oint {
		return fmt.Errorf("oram: OintMax %d below Oint %d", c.OintMax, c.Oint)
	}
	if err := c.Super.Validate(); err != nil {
		return err
	}
	if c.Super.Scheme != superblock.None && c.Super.MaxSize > c.Fanout {
		return fmt.Errorf("oram: MaxSize %d exceeds position-map fanout %d (a super block must fit in one pos-map block)",
			c.Super.MaxSize, c.Fanout)
	}
	return nil
}

// TreeLevels returns the derived tree depth L: leaves ≈ half the total
// block population, the standard Path ORAM provisioning (slot utilization
// ≈ 1/Z with Z per bucket, i.e. ~33% at Z=3 — tight enough that a full
// tree produces the background-eviction pressure the paper studies). The
// paper's 8 GB configuration (2^26 blocks + position maps) lands at L=25.
func (c Config) TreeLevels(totalBlocks uint64) int {
	if c.TreeLevelsOverride != 0 {
		return c.TreeLevelsOverride
	}
	// Choose L with 2^(L+1) <= total < 2^(L+2), i.e. leaves in
	// [total/4, total/2].
	levels := 0
	for (uint64(1) << (levels + 2)) <= totalBlocks {
		levels++
	}
	if levels < 2 {
		levels = 2
	}
	return levels
}

// PathLatency returns the cycles one full path access occupies the memory
// channel: read + write of (L+1)·Z blocks, plus the fixed DRAM and crypto
// overheads — or the override when set.
func (c Config) PathLatency(levels int) uint64 {
	if c.PathLatencyOverride != 0 {
		return c.PathLatencyOverride
	}
	bytes := 2 * uint64(levels+1) * uint64(c.Z) * uint64(c.BlockBytes)
	return c.DRAM.TransferCycles(bytes) + c.DRAM.LatencyCycles + c.CryptoLatency
}
