package oram

import (
	"fmt"

	"proram/internal/mem"
	"proram/internal/posmap"
	"proram/internal/superblock"
)

// dataAccess performs the data-tree path access for the requested block,
// including the super block mechanics: the whole super block is loaded and
// remapped together, the break algorithm (Algorithm 2) and merge algorithm
// (Algorithm 1) run while everything is on-chip, and the non-demand
// members are returned as prefetches.
//
// It returns the completion cycle and the prefetched sibling indices.
//
//proram:hotpath the data-tree access of every demand request
func (c *Controller) dataAccess(ready uint64, index uint64, wb bool) (uint64, []uint64) {
	fanout := uint64(c.cfg.Fanout)
	// Resolve the schedule first: periodic catch-up dummies must run
	// against the pre-remap position map (they relocate blocks).
	start := c.scheduleStart(max(ready, c.lastEnd))
	pbIdx := index / fanout
	slot := int(index % fanout)
	pb := c.pm.Block(1, pbIdx)
	// Remapping children dirties the level-1 block wherever it is cached.
	c.plb.MarkDirty(pb.ID())

	e := &pb.Entries[slot] //proram:allow boundscheck slot = index mod Fanout and level-1 blocks carry Fanout entries; the relation lives in posmap construction, out of the prover's reach
	isNew := e.Leaf == mem.NoLeaf
	n := int(e.SBSize)
	if isNew {
		n = 1
		if c.policy.Scheme() == superblock.Static {
			// The static scheme merges aligned groups at initialization
			// (§3.3); first touch initializes the whole group.
			n = c.staticGroupSize(pb, slot)
		}
	}
	c.obsSBSize.Observe(float64(n))
	gStart := posmap.GroupStart(slot, n)
	oldLeaf := e.Leaf
	newLeaf := c.randLeaf()

	// Remap the whole super block to one fresh leaf (steps 4 of §2.2
	// generalized to super blocks, §3.2).
	members := pb.Entries[gStart : gStart+n]
	for i := range members {
		members[i].Leaf = newLeaf
		members[i].SBSize = uint8(n)
	}

	readLeaf := oldLeaf
	if isNew {
		// First touch: the block is not in the tree yet, so read an
		// independent decoy path rather than the freshly assigned leaf.
		// Reading newLeaf here would reveal it, and the block's next
		// access reads it again — a linkable duplicate in the physical
		// stream (the obliviousness auditor's uniformity test catches
		// the resulting pair correlation).
		readLeaf = c.randLeaf()
	}
	kind := KindData
	if wb {
		kind = KindWriteback
	}

	var prefetched []uint64
	//proram:allow allocdiscipline the during-path callback is one fixed closure per access, not per-block work
	done := c.rawPathAccess(start, readLeaf, kind, func() {
		// Gather: every member is now on-chip (path read moved tree
		// residents to the stash; the rest were already stashed).
		for i := gStart; i < gStart+n; i++ {
			id := mem.MakeID(0, pbIdx*fanout+uint64(i))
			switch {
			case c.st.Contains(id):
				c.st.SetLeaf(id, newLeaf)
			case isNew:
				c.mustAdd(id, newLeaf)
			default:
				//proram:invariant rawPathAccess just moved the whole read path into the stash, so a resident member cannot be missing
				panic(fmt.Sprintf("oram: super block member %v missing from path %d and stash", id, readLeaf))
			}
		}

		// Algorithm 2: fold prefetch outcomes into the break counter and
		// possibly break the super block. Break operations "may happen
		// when super blocks are accessed in the ORAM" (§4.3) — that
		// includes write-back accesses, which keeps stale super blocks
		// from lingering on write-heavy patterns.
		cur := group{pb: pb, pbIdx: pbIdx, start: gStart, size: n}
		if c.policy.Scheme() == superblock.Dynamic && n >= 2 {
			raw := c.breakUpdate(cur)
			if c.policy.ShouldBreak(raw, n) {
				cur = c.breakGroup(cur, slot, newLeaf)
			}
		} else if !wb && n == 1 && e.Prefetch {
			// A singleton demand miss on a previously prefetched block:
			// the prefetch went unused (a used copy would have hit in the
			// LLC instead of reaching the ORAM).
			e.Prefetch = false
			delete(c.hitBits, index)
			c.stats.ReloadedUnused++
		}

		if wb {
			// Write-backs remap (and possibly break) but never merge or
			// prefetch: nothing returns to the LLC.
			return
		}

		// Algorithm 1: merge check against the neighbor super block. A
		// merge does not change what is returned this access: the
		// neighbor's members are already in the LLC (that is the merge
		// condition), so only the pre-merge group travels to the cache.
		if c.policy.Scheme() == superblock.Dynamic {
			c.mergeCheck(cur)
		}

		// Return the super block: the demand block plus prefetched
		// siblings with prefetch bits set and hit bits cleared.
		for i := cur.start; i < cur.start+cur.size; i++ {
			gi := pbIdx*fanout + uint64(i)
			if i == slot {
				continue
			}
			pb.Entries[i].Prefetch = true
			delete(c.hitBits, gi)
			c.stats.PrefetchIssued++
			c.winIssued++
			prefetched = append(prefetched, gi) //proram:allow allocdiscipline the result escapes to the caller, and install/evict re-enters Write while it is held, so the slice cannot be pooled
		}
	})
	return done, prefetched
}

// group identifies a super block within one level-1 position-map block.
type group struct {
	pb    *posmap.Block
	pbIdx uint64
	start int // child offset of the first member
	size  int // number of members (power of two)
}

// staticGroupSize returns the static scheme's merge granularity for the
// group containing slot: the configured size, shrunk if the group would
// fall off the end of a partial position-map block.
func (c *Controller) staticGroupSize(pb *posmap.Block, slot int) int {
	n := c.policy.MaxSize()
	for n > 1 && posmap.GroupStart(slot, n)+n > len(pb.Entries) {
		n /= 2
	}
	return n
}

// breakUpdate implements the counter phase of Algorithm 2: every member's
// prefetch/hit bits are folded into the break counter (hit: +1, miss: -1)
// and cleared. It returns the raw (unclamped) counter value.
//
//proram:hotpath runs inside every dynamic-scheme super-block access
func (c *Controller) breakUpdate(g group) int {
	raw := int(g.pb.BreakCounter(g.start))
	members := g.pb.Entries[g.start : g.start+g.size]
	base := g.pbIdx*uint64(c.cfg.Fanout) + uint64(g.start)
	for i := range members {
		ge := &members[i]
		if !ge.Prefetch {
			continue
		}
		gi := base + uint64(i)
		if c.hitBits[gi] {
			raw++
			c.stats.ReloadedUsed++
		} else {
			raw--
			c.stats.ReloadedUnused++
		}
		ge.Prefetch = false
		delete(c.hitBits, gi)
	}
	stored := raw
	if stored < 0 {
		stored = 0
	}
	if stored > 255 {
		stored = 255
	}
	g.pb.SetBreakCounter(g.start, uint8(stored))
	return raw
}

// breakGroup implements the break phase of Algorithm 2: the super block
// splits into two halves mapped to independent fresh leaves; the half
// containing the demand block keeps the leaf chosen for this access. It
// returns the demand half.
//
//proram:hotpath runs inside the path access that triggers a break
func (c *Controller) breakGroup(g group, slot int, keepLeaf mem.Leaf) group {
	half := g.size / 2
	otherLeaf := c.randLeaf()
	lowerHasSlot := slot < g.start+half
	members := g.pb.Entries[g.start : g.start+g.size]
	base := g.pbIdx*uint64(c.cfg.Fanout) + uint64(g.start)
	for i := range members {
		ge := &members[i]
		ge.SBSize = uint8(half)
		inLower := i < half
		leaf := keepLeaf
		if inLower != lowerHasSlot {
			leaf = otherLeaf
		}
		ge.Leaf = leaf
		id := mem.MakeID(0, base+uint64(i))
		if !c.st.SetLeaf(id, leaf) {
			//proram:invariant the path read that triggered the break stashed every super-block member first
			panic(fmt.Sprintf("oram: breaking super block but member %v not stashed", id))
		}
	}
	// Reconstruct counters for the new granularity: the intra-pair merge
	// counter restarts at zero, and each half that is still a super block
	// gets a fresh break counter.
	g.pb.ResetMergeCounter(g.start)
	init := uint8(0)
	if half >= 2 {
		init = c.policy.BreakInitial(half)
	}
	g.pb.SetBreakCounter(g.start, init)
	g.pb.SetBreakCounter(g.start+half, init)
	c.stats.Breaks++
	c.obs.Instant("oram", "break", c.lastEnd, "half_size", uint64(half))

	ret := group{pb: g.pb, pbIdx: g.pbIdx, start: g.start, size: half}
	if !lowerHasSlot {
		ret.start = g.start + half
	}
	return ret
}

// mergeCheck implements Algorithm 1: if every block of the neighbor super
// block is in the LLC, the merge counter increments (else decrements), and
// on reaching the threshold the accessed super block B adopts the
// neighbor's position ("changing the position map of B to the position map
// of B'"), forming a super block of twice the size.
//
//proram:hotpath runs on every dynamic-scheme demand read
func (c *Controller) mergeCheck(g group) {
	n := g.size
	if 2*n > c.policy.MaxSize() {
		return
	}
	nb := posmap.NeighborStart(g.start, n)
	if nb+n > len(g.pb.Entries) {
		return
	}
	neighbor := g.pb.Entries[nb : nb+n]
	nbBase := g.pbIdx*uint64(c.cfg.Fanout) + uint64(nb)
	// The neighbor must currently be a same-size, already-touched group.
	// Its members all share one leaf, so any member names it for the merge.
	neighborLeaf := mem.NoLeaf
	for i := range neighbor {
		ge := &neighbor[i]
		if int(ge.SBSize) != n || ge.Leaf == mem.NoLeaf {
			return
		}
		neighborLeaf = ge.Leaf
	}
	allInLLC := c.prober != nil
	if allInLLC {
		for i := range neighbor {
			if !c.prober.Present(nbBase + uint64(i)) {
				allInLLC = false
				break
			}
		}
	}
	pair := posmap.PairStart(g.start, n)
	if !allInLLC {
		g.pb.AddMergeCounter(pair, -1)
		return
	}
	ctr := g.pb.AddMergeCounter(pair, +1)
	if !c.policy.ShouldMerge(ctr, n) {
		return
	}

	// Merge: B adopts B''s leaf. B's members are all in the stash right
	// now, so remapping them is safe; B''s ORAM-resident copies keep their
	// existing (shared) leaf, preserving the path invariant.
	own := g.pb.Entries[g.start : g.start+n]
	base := g.pbIdx*uint64(c.cfg.Fanout) + uint64(g.start)
	for i := range own {
		own[i].Leaf = neighborLeaf
		id := mem.MakeID(0, base+uint64(i))
		if !c.st.SetLeaf(id, neighborLeaf) {
			//proram:invariant merge runs inside the path read that stashed all of the merging block's members
			panic(fmt.Sprintf("oram: merging super block but member %v not stashed", id))
		}
	}
	merged := group{pb: g.pb, pbIdx: g.pbIdx, start: pair, size: 2 * n}
	pairMembers := g.pb.Entries[merged.start : merged.start+merged.size]
	for i := range pairMembers {
		pairMembers[i].SBSize = uint8(merged.size)
	}
	// Reconstruct counters for the new granularity.
	g.pb.ResetMergeCounter(pair)
	g.pb.ResetMergeCounter(g.start)
	g.pb.ResetMergeCounter(nb)
	g.pb.SetBreakCounter(merged.start, c.policy.BreakInitial(merged.size))
	c.stats.Merges++
	c.obs.Instant("oram", "merge", c.lastEnd, "size", uint64(merged.size))
}
