package oram

import (
	"proram/internal/mem"
	"proram/internal/superblock"
)

// prefill initializes the whole ORAM: every data block and position-map
// block gets a uniform random leaf, recorded in the position map, and is
// placed into the deepest free bucket on its path (overflow goes to the
// stash, as in a real initialization). Under the Static scheme, aligned
// groups are merged here — "in the initialization stage of Path ORAM,
// blocks are merged into super blocks" (§3.3).
func (c *Controller) prefill() {
	fanout := uint64(c.cfg.Fanout)
	staticSize := 1
	if c.policy.Scheme() == superblock.Static {
		staticSize = c.policy.MaxSize()
	}

	// Data blocks, group by group. Groups (static super blocks) need n
	// slots along a single path; retry a few leaves to avoid pathological
	// overflow before falling back to the stash.
	for pbIdx := uint64(0); pbIdx < c.pm.Count(1); pbIdx++ {
		pb := c.pm.Block(1, pbIdx)
		for s := 0; s < len(pb.Entries); {
			n := staticSize
			for n > 1 && s+n > len(pb.Entries) {
				n /= 2
			}
			leaf := c.randLeaf()
			for try := 0; n > 1 && try < 8; try++ {
				cand := c.randLeaf()
				if c.pathFree(cand) >= n {
					leaf = cand
					break
				}
			}
			for i := s; i < s+n; i++ {
				pb.Entries[i].Leaf = leaf
				pb.Entries[i].SBSize = uint8(n)
				c.place(mem.MakeID(0, pbIdx*fanout+uint64(i)), leaf)
			}
			s += n
		}
	}
	// Position-map blocks (never super blocks).
	for level := 1; level <= c.pm.Depth(); level++ {
		for i := uint64(0); i < c.pm.Count(level); i++ {
			leaf := c.randLeaf()
			if level == c.pm.Depth() {
				c.pm.SetTopLeaf(i, leaf)
			} else {
				c.pm.EntryFor(level, i).Leaf = leaf
			}
			c.place(mem.MakeID(level, i), leaf)
		}
	}
	// At ~50% slot utilization some placements overflow to the stash; the
	// initializer drains them with untimed evictions along the stashed
	// blocks' own paths (the real system's initialization does the same
	// work during bulk loading).
	// Bounded effort: an over-packed configuration (e.g. static super
	// blocks of 8 at high utilization) may leave residual stash pressure;
	// the runtime's background evictions keep working on it, which is
	// exactly the pathological behaviour Figure 7 demonstrates.
	noProgress := 0
	for c.st.OverLimit() && noProgress < 256 {
		before := c.st.Size()
		leaf := c.randLeaf()
		if before%2 == 0 { // alternate stash-guided and random paths
			c.st.ForEach(func(_ mem.BlockID, l mem.Leaf) { leaf = l })
		}
		c.scratch = c.tr.RemovePath(leaf, c.scratch[:0])
		for _, id := range c.scratch {
			c.mustAdd(id, c.leafOf(id))
		}
		c.st.EvictToPath(c.tr, leaf)
		if c.st.Size() < before {
			noProgress = 0
		} else {
			noProgress++
		}
	}
}

// pathFree returns the total free slots along the path to leaf.
func (c *Controller) pathFree(leaf mem.Leaf) int {
	free := 0
	for depth := 0; depth <= c.tr.Levels(); depth++ {
		free += c.tr.FreeAt(leaf, depth)
	}
	return free
}

// place puts id into the deepest free bucket on path leaf, falling back to
// the stash when the whole path is full.
func (c *Controller) place(id mem.BlockID, leaf mem.Leaf) {
	for depth := c.tr.Levels(); depth >= 0; depth-- {
		if c.tr.PlaceAt(leaf, depth, id) {
			return
		}
	}
	c.mustAdd(id, leaf)
}
