package oram

import (
	"testing"

	"proram/internal/rng"
)

func dynOintConfig() Config {
	cfg := testConfig()
	cfg.Periodic = true
	cfg.Oint = 50
	cfg.DynamicOint = true
	cfg.OintMax = 800
	cfg.OintEpoch = 16
	return cfg
}

func TestDynamicOintValidation(t *testing.T) {
	cfg := testConfig()
	cfg.DynamicOint = true
	if _, err := New(cfg); err == nil {
		t.Fatal("DynamicOint without Periodic accepted")
	}
	cfg = dynOintConfig()
	cfg.OintMax = 10 // below Oint
	if _, err := New(cfg); err == nil {
		t.Fatal("OintMax < Oint accepted")
	}
}

func TestDynamicOintGrowsWhenIdle(t *testing.T) {
	c, err := New(dynOintConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c.CurrentOint() != 50 {
		t.Fatalf("initial interval %d", c.CurrentOint())
	}
	// Requests separated by long idle gaps: the schedule fills with
	// dummies and the interval should climb the ladder.
	r := rng.New(3)
	for i := 0; i < 50; i++ {
		gap := uint64(40_000)
		c.Read(c.Stats().LastEnd+gap, r.Uint64n(256))
	}
	if c.CurrentOint() <= 50 {
		t.Fatalf("interval did not grow under idle load: %d", c.CurrentOint())
	}
	if c.OintTransitions() == 0 {
		t.Fatal("no transitions recorded (leak accounting broken)")
	}
}

func TestDynamicOintShrinksUnderLoad(t *testing.T) {
	c, err := New(dynOintConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Grow first.
	r := rng.New(5)
	for i := 0; i < 40; i++ {
		c.Read(c.Stats().LastEnd+40_000, r.Uint64n(256))
	}
	grown := c.CurrentOint()
	if grown <= 50 {
		t.Skip("interval never grew; idle phase too short")
	}
	// Back-to-back demand: the interval must fall back toward the floor.
	for i := 0; i < 400; i++ {
		c.Read(c.Stats().LastEnd, r.Uint64n(256))
	}
	if c.CurrentOint() >= grown {
		t.Fatalf("interval did not shrink under load: %d (was %d)", c.CurrentOint(), grown)
	}
}

func TestDynamicOintRespectsLadderBounds(t *testing.T) {
	cfg := dynOintConfig()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	// Extreme idle: must cap at OintMax.
	for i := 0; i < 300; i++ {
		c.Read(c.Stats().LastEnd+200_000, r.Uint64n(256))
	}
	if c.CurrentOint() > cfg.OintMax {
		t.Fatalf("interval %d exceeded ladder max %d", c.CurrentOint(), cfg.OintMax)
	}
	// Extreme load: must floor at Oint.
	for i := 0; i < 2000; i++ {
		c.Read(c.Stats().LastEnd, r.Uint64n(256))
	}
	if c.CurrentOint() < cfg.Oint {
		t.Fatalf("interval %d fell below ladder min %d", c.CurrentOint(), cfg.Oint)
	}
}

func TestDynamicOintSavesDummies(t *testing.T) {
	run := func(dynamic bool) Stats {
		cfg := dynOintConfig()
		cfg.DynamicOint = dynamic
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(11)
		for i := 0; i < 60; i++ {
			c.Read(c.Stats().LastEnd+50_000, r.Uint64n(512))
		}
		return c.Stats()
	}
	static := run(false)
	dyn := run(true)
	if dyn.DummyAccesses >= static.DummyAccesses {
		t.Fatalf("dynamic Oint saved nothing: %d vs %d dummies",
			dyn.DummyAccesses, static.DummyAccesses)
	}
	// The savings must be substantial on an idle-heavy pattern.
	if float64(dyn.DummyAccesses) > 0.6*float64(static.DummyAccesses) {
		t.Errorf("dynamic Oint saved only %d -> %d dummies",
			static.DummyAccesses, dyn.DummyAccesses)
	}
}

func TestDynamicOintInvariantsHold(t *testing.T) {
	cfg := dynOintConfig()
	cfg.NumBlocks = 1 << 10
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(13)
	for i := 0; i < 1500; i++ {
		gap := uint64(0)
		if r.Intn(3) == 0 {
			gap = r.Uint64n(30_000)
		}
		idx := r.Uint64n(cfg.NumBlocks)
		if r.Bool() {
			c.Read(c.Stats().LastEnd+gap, idx)
		} else {
			c.Write(c.Stats().LastEnd+gap, idx)
		}
	}
	if err := c.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestStaticOintUnaffectedByExtension(t *testing.T) {
	// With DynamicOint off, the interval never moves and no transitions
	// are recorded, whatever the load pattern.
	cfg := testConfig()
	cfg.Periodic = true
	cfg.Oint = 100
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(17)
	for i := 0; i < 200; i++ {
		c.Read(c.Stats().LastEnd+r.Uint64n(20_000), r.Uint64n(256))
	}
	if c.CurrentOint() != 100 || c.OintTransitions() != 0 {
		t.Fatalf("static schedule drifted: Oint=%d transitions=%d",
			c.CurrentOint(), c.OintTransitions())
	}
}
