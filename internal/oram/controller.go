package oram

import (
	"fmt"

	"proram/internal/dram"
	"proram/internal/dram/banked"
	"proram/internal/mem"
	"proram/internal/obs"
	"proram/internal/posmap"
	"proram/internal/rng"
	"proram/internal/stash"
	"proram/internal/superblock"
	"proram/internal/tree"
)

// CacheProber lets the controller ask the processor's LLC whether a data
// block is currently cached. The merge algorithm (paper Algorithm 1) probes
// the LLC tag array for every block of the neighbor super block; the probe
// is off the critical path and free in the timing model (§4.5.2).
type CacheProber interface {
	// Present reports whether the data block with the given index is in
	// the LLC.
	Present(index uint64) bool
}

// Controller is the trusted Path ORAM controller. It is not safe for
// concurrent use; the simulator drives it from a single goroutine, exactly
// like the single memory controller in the paper's target system.
type Controller struct {
	cfg    Config
	policy *superblock.Policy
	tr     *tree.Tree
	st     *stash.Stash
	pm     *posmap.Hierarchy
	plb    *posmap.PLB
	rnd    *rng.Source
	prober CacheProber

	pathLat uint64
	lastEnd uint64
	// dev, when non-nil, schedules path accesses bucket-by-bucket on a
	// banked device instead of charging the flat pathLat. Dependent work
	// chains at the device's data-ready time, so the write-back phase of one
	// path overlaps the read phase of the next.
	dev dram.Device

	// hitBits holds the per-data-block hit bit: whether the block's last
	// prefetch was used (paper §4.3). Keyed by data index; absent = false.
	hitBits map[uint64]bool

	stats Stats
	trace []TraceEvent
	dyn   dynOint

	// Observability (see observe.go). All handles are nil when no recorder
	// is installed; every emission below is then a single pointer check.
	obs          *obs.Recorder
	obsPaths     *obs.Counter
	obsKindCtr   [KindPeriodicDummy + 1]*obs.Counter
	obsSBSize    *obs.Histogram
	obsSatDumped bool // stash-saturation flight dump emitted (once per run)

	// Adaptive-thresholding observation window (§4.4.2).
	winRequests int
	winBgEvicts uint64
	winHits     uint64
	winIssued   uint64
	winBusy     uint64
	winStart    uint64

	scratch []mem.BlockID // reusable path-read buffer
	chain   []uint64      // reusable recursion-index buffer
}

// New builds a controller. The tree is sized to hold the data blocks plus
// every position-map level (Unified ORAM: one tree for everything).
func New(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pm, err := posmap.New(posmap.Config{
		NumBlocks: cfg.NumBlocks,
		Fanout:    cfg.Fanout,
		OnChipMax: cfg.OnChipEntries,
	})
	if err != nil {
		return nil, err
	}
	st, err := stash.New(cfg.StashLimit)
	if err != nil {
		return nil, err
	}
	levels := cfg.TreeLevels(pm.TotalBlocks())
	c := &Controller{
		cfg:     cfg,
		policy:  superblock.New(cfg.Super),
		tr:      tree.New(levels, cfg.Z),
		st:      st,
		pm:      pm,
		plb:     posmap.NewPLB(cfg.PLBBlocks),
		rnd:     rng.New(cfg.Seed),
		hitBits: make(map[uint64]bool),
	}
	c.pathLat = cfg.PathLatency(levels)
	if cfg.Banked != nil {
		dev, err := banked.NewDevice(*cfg.Banked, levels, cfg.Z, cfg.BlockBytes, cfg.CryptoLatency)
		if err != nil {
			return nil, err
		}
		c.dev = dev
	}
	c.initDynOint()
	if cfg.Prefill {
		c.prefill()
	}
	return c, nil
}

// SetProber installs the LLC probe used by the merge algorithm. A nil
// prober makes every probe miss (merging then never triggers).
func (c *Controller) SetProber(p CacheProber) { c.prober = p }

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// TreeLevels returns the depth of the instantiated tree.
func (c *Controller) TreeLevels() int { return c.tr.Levels() }

// PathLatency returns the per-path-access latency in cycles.
func (c *Controller) PathLatency() uint64 { return c.pathLat }

// Stats returns a snapshot of the accumulated statistics.
func (c *Controller) Stats() Stats {
	s := c.stats
	s.StashHighWater = c.st.HighWater()
	s.PLBHits = c.plb.Hits()
	s.PLBMisses = c.plb.Misses()
	s.LastEnd = c.lastEnd
	s.OintTransitions = c.dyn.transitions
	return s
}

// Trace returns the recorded physical access trace (RecordTrace only).
func (c *Controller) Trace() []TraceEvent { return c.trace }

// Leaves returns the number of leaves of the instantiated tree (a power
// of two) — the leaf-label range the obliviousness auditor tests against.
func (c *Controller) Leaves() uint64 { return c.tr.Leaves() }

// randLeaf draws a fresh uniform leaf label. Under the LeakBiasLeaf
// negative control the draw covers only the lower half of the range,
// which the auditor's uniformity test must flag.
//
//proram:hotpath one draw per path access and per remap
func (c *Controller) randLeaf() mem.Leaf {
	n := c.tr.Leaves()
	if c.cfg.LeakBiasLeaf {
		n /= 2
	}
	return mem.Leaf(c.rnd.Uint64n(n))
}

// mustAdd stashes a block, converting a stash error into a controller
// invariant failure: the controller only adds blocks it just removed from
// the tree or proved absent from the stash, so a rejection means the
// protocol state is corrupt.
//
//proram:hotpath runs once per block on every path read
func (c *Controller) mustAdd(id mem.BlockID, leaf mem.Leaf) {
	if err := c.st.Add(id, leaf); err != nil {
		//proram:invariant callers add only blocks removed from the tree or proven absent, so a stash rejection is unrecoverable state corruption
		panic("oram: " + err.Error())
	}
}

// leafOf returns the current mapping of any block, consulting the on-chip
// table for top-level position-map blocks and parent entries otherwise.
//
//proram:hotpath position lookup for every block on a read path
func (c *Controller) leafOf(id mem.BlockID) mem.Leaf {
	if id.Level() == c.pm.Depth() {
		return c.pm.TopLeaf(id.Index())
	}
	return c.pm.EntryFor(id.Level(), id.Index()).Leaf
}

// scheduleStart returns the start time of the next path access given that
// the request is ready at `ready`. In periodic mode it first issues the
// dummy accesses the public schedule demands for the idle gap and then
// returns the next slot; otherwise the access starts as soon as both the
// request and the controller are ready.
//
//proram:hotpath scheduling decision before every path access
func (c *Controller) scheduleStart(ready uint64) uint64 {
	if !c.cfg.Periodic {
		return max(ready, c.lastEnd)
	}
	for c.lastEnd+c.currentOint() < ready {
		slot := c.lastEnd + c.currentOint()
		c.stats.DummyAccesses++
		c.observeScheduled(true)
		c.rawPathAccess(slot, c.randLeaf(), KindPeriodicDummy, nil)
	}
	c.observeScheduled(false)
	return c.lastEnd + c.currentOint()
}

// rawPathAccess performs one full path read+write at the given leaf: all
// real blocks on the path move to the stash, the optional during callback
// runs while everything is on-chip (this is where remaps and the super
// block algorithms act), and the stash is then greedily written back onto
// the same path. Returns the completion cycle.
//
//proram:hotpath the core path read+write of every ORAM access
func (c *Controller) rawPathAccess(start uint64, leaf mem.Leaf, kind AccessKind, during func()) uint64 {
	end := start + c.pathLat
	busy := c.pathLat
	if c.dev != nil {
		// Banked device: dependent work resumes at data-ready (read phase +
		// crypto drain); the write-back keeps draining underneath the next
		// path's reads, charged as channel occupancy, not request latency.
		pt := c.dev.Path(start, uint64(leaf))
		end = pt.DataReady
		busy = pt.Done - start
	}
	c.lastEnd = end
	c.stats.PathAccesses++
	c.stats.BusyCycles += busy
	c.winBusy += busy
	c.stats.BytesMoved += 2 * c.tr.PathBytes(c.cfg.BlockBytes)
	switch kind {
	case KindData:
		c.stats.DataPaths++
	case KindWriteback:
		c.stats.WritebackPaths++
	case KindPosMap:
		c.stats.PosMapPaths++
	case KindPLBWriteback:
		c.stats.PLBWritebackPaths++
	case KindBackgroundEvict:
		c.stats.BackgroundEvictions++
		c.winBgEvicts++
	case KindPeriodicDummy:
		// counted by the caller
	}
	if c.cfg.RecordTrace {
		c.trace = append(c.trace, TraceEvent{Leaf: uint64(leaf), Start: start, Kind: kind}) //proram:allow allocdiscipline trace recording is opt-in debugging, off in measured runs
	}
	c.obsPaths.Inc()
	c.obsKindCtr[kind].Inc() //proram:allow boundscheck the array is sized KindPeriodicDummy+1 and every caller passes a declared Kind constant; the switch above would already be incomplete for anything else
	c.obs.Span("oram", kind.String(), start, end-start, "leaf", uint64(leaf))

	c.scratch = c.tr.RemovePath(leaf, c.scratch[:0])
	for _, id := range c.scratch {
		c.mustAdd(id, c.leafOf(id))
	}
	if during != nil {
		during()
	}
	c.st.EvictToPath(c.tr, leaf)
	c.obs.MaybeSample(end)
	return end
}

// backgroundEvictions drains stash pressure with dummy accesses: random
// path read+writes with no remapping, after which stash occupancy cannot
// have grown (§2.4). Returns the number issued.
//
//proram:hotpath runs after every demand access
func (c *Controller) backgroundEvictions() int {
	n := 0
	noProgress := 0
	for c.st.OverLimit() {
		before := c.st.Size()
		start := c.scheduleStart(c.lastEnd)
		c.rawPathAccess(start, c.randLeaf(), KindBackgroundEvict, nil)
		n++
		if c.st.Size() < before {
			noProgress = 0
		} else if noProgress++; noProgress > 64 {
			// Saturated configurations (e.g. static super blocks of 8 at
			// high utilization) can pin the stash above its limit for a
			// while; give the demand stream a turn and keep churning on
			// later requests rather than spinning forever. The paid
			// accesses are already accounted — this is the pathological
			// slowdown the paper's Figure 7 shows for large static sizes.
			// Saturation recurs on nearly every access once entered; dump
			// the flight ring only on first entry.
			if !c.obsSatDumped {
				c.obsSatDumped = true
				c.obs.Flight("stash-saturation", c.lastEnd)
			}
			break
		}
		if n > 100_000 {
			c.obs.Flight("background-eviction-runaway", c.lastEnd)
			//proram:invariant Path ORAM guarantees dummy accesses shrink an over-limit stash in expectation; 100k without progress means the eviction logic is broken
			panic(fmt.Sprintf("oram: background eviction runaway (stash %d/%d)", c.st.Size(), c.st.Limit()))
		}
	}
	return n
}

// accessPosMapBlock performs one recursion-level path access: remap the
// position-map block, read its old path, write back. kind distinguishes
// recursion walks from PLB victim write-backs for accounting.
//
//proram:hotpath one run per recursion level on every PLB miss
func (c *Controller) accessPosMapBlock(ready uint64, id mem.BlockID, kind AccessKind) {
	// Resolve the schedule first: in periodic mode this issues catch-up
	// dummy accesses, which move blocks around and must therefore observe
	// the pre-remap position map.
	start := c.scheduleStart(max(ready, c.lastEnd))
	level, index := id.Level(), id.Index()
	newLeaf := c.randLeaf()
	var oldLeaf mem.Leaf
	if level == c.pm.Depth() {
		oldLeaf = c.pm.TopLeaf(index)
		c.pm.SetTopLeaf(index, newLeaf)
	} else {
		e := c.pm.EntryFor(level, index)
		oldLeaf = e.Leaf
		e.Leaf = newLeaf
		parentIdx, _ := c.pm.Parent(level, index)
		c.plb.MarkDirty(mem.MakeID(level+1, parentIdx))
	}
	isNew := oldLeaf == mem.NoLeaf
	readLeaf := oldLeaf
	if isNew {
		// First touch reads an independent decoy path: the block is not
		// in the tree, and reading the just-assigned leaf would link
		// this access to the block's next one (see dataAccess).
		readLeaf = c.randLeaf()
	}
	//proram:allow allocdiscipline the during-path callback is one fixed closure per access, not per-block work
	c.rawPathAccess(start, readLeaf, kind, func() {
		switch {
		case c.st.Contains(id):
			c.st.SetLeaf(id, newLeaf)
		case isNew:
			c.mustAdd(id, newLeaf)
		default:
			//proram:invariant the position map said the block lives on readLeaf, which rawPathAccess just moved to the stash in full
			panic(fmt.Sprintf("oram: position-map block %v not found on path %d", id, readLeaf))
		}
	})
}

// Read serves an LLC demand miss for the data block at index, arriving at
// cycle now. Write serves a dirty LLC eviction. Both perform the full
// recursive access; only Read returns prefetched siblings and exercises
// the merge/break algorithms.
//
//proram:hotpath demand-miss entry point
func (c *Controller) Read(now uint64, index uint64) Result {
	return c.access(now, index, false)
}

// Write writes back a dirty data block evicted from the LLC.
//
//proram:hotpath dirty-eviction entry point
func (c *Controller) Write(now uint64, index uint64) Result {
	return c.access(now, index, true)
}

//proram:hotpath full recursive access, the per-request critical path
func (c *Controller) access(now uint64, index uint64, wb bool) Result {
	if index >= c.cfg.NumBlocks {
		//proram:invariant the access path deliberately has no error channel; an out-of-range index is a caller bug, not simulated input
		panic(fmt.Sprintf("oram: block index %d out of range (%d blocks)", index, c.cfg.NumBlocks))
	}
	pathsBefore := c.stats.PathAccesses
	if wb {
		c.stats.Writebacks++
	} else {
		c.stats.DemandReads++
	}

	// Recursion walk: find the deepest position-map level cached in the
	// PLB, then access every level below it, top-down (§2.3, Unified ORAM).
	depth := c.pm.Depth()
	c.chain = c.chain[:0]
	idx := index
	for l := 0; l <= depth; l++ {
		c.chain = append(c.chain, idx) //proram:allow allocdiscipline appends into a reusable buffer reset to length 0; capacity is retained across accesses
		idx /= uint64(c.cfg.Fanout)
	}
	// The build loop above ran depth+1 times, so chain[depth] pins the
	// whole walk below in bounds.
	chain := c.chain
	_ = chain[depth]
	startLvl := depth + 1 // no PLB hit: start from the on-chip table
	for l := 1; l <= depth; l++ {
		if c.plb.Lookup(mem.MakeID(l, chain[l])) {
			startLvl = l
			break
		}
	}
	for l := startLvl - 1; l >= 1; l-- {
		id := mem.MakeID(l, chain[l]) //proram:allow boundscheck l < startLvl <= depth+1 = len(chain); the prover has no upper-bound facts for down-counting loops
		c.accessPosMapBlock(now, id, KindPosMap)
		if victim, dirty, ok := c.plb.Insert(id); ok && dirty {
			c.accessPosMapBlock(c.lastEnd, victim, KindPLBWriteback)
		}
	}

	// Data access.
	done, prefetched := c.dataAccess(now, index, wb)

	// Stash pressure.
	c.backgroundEvictions()

	// Observation window for adaptive thresholding (§4.4.2).
	c.winRequests++
	if c.policy.Scheme() == superblock.Dynamic && c.winRequests >= c.cfg.Super.Window {
		c.rollWindow()
	}

	return Result{
		Done:       done,
		Prefetched: prefetched,
		PathCount:  int(c.stats.PathAccesses - pathsBefore),
	}
}

// rollWindow recomputes the Equation 1 rates from the finished window and
// resets the counters.
func (c *Controller) rollWindow() {
	elapsed := c.lastEnd - c.winStart
	if elapsed == 0 {
		elapsed = 1
	}
	// Prefetch accuracy is measured as hits per issued prefetch: issues
	// register immediately, so a burst of inaccurate merging is visible in
	// the very next window instead of only after the LLC churns the
	// useless lines out.
	hitRate := -1.0 // no prefetch activity: keep the previous estimate
	if c.winIssued > 0 {
		hitRate = float64(c.winHits) / float64(c.winIssued)
		if hitRate > 1 {
			hitRate = 1
		}
	}
	c.policy.UpdateRates(superblock.Rates{
		EvictionRate:    float64(c.winBgEvicts) / float64(c.winRequests),
		AccessRate:      float64(c.winBusy) / float64(elapsed),
		PrefetchHitRate: hitRate,
	})
	c.winRequests = 0
	c.winBgEvicts = 0
	c.winHits = 0
	c.winIssued = 0
	c.winBusy = 0
	c.winStart = c.lastEnd
}

// NotifyPrefetchUse records that a prefetched block was hit in the LLC:
// the block's hit bit is set (paper: "In Processor: when block b is
// accessed, b.hit = true") and the prefetch counts as a hit.
//
//proram:hotpath runs on every LLC hit of a prefetched line
func (c *Controller) NotifyPrefetchUse(index uint64) {
	if c.hitBits[index] {
		return
	}
	c.hitBits[index] = true
	c.stats.PrefetchHits++
	c.winHits++
}

// NotifyPrefetchEvict records that a prefetched block left the LLC without
// ever being used — a resolved prefetch miss for the Figure 9 metric and
// the Equation 1 hit-rate window.
func (c *Controller) NotifyPrefetchEvict(index uint64) {
	c.stats.PrefetchUnused++
}

// PosMapDepth returns the number of position-map levels above the data
// (the paper's hierarchy count minus one).
func (c *Controller) PosMapDepth() int { return c.pm.Depth() }

// Device returns the banked device driving the timing model, or nil when
// the controller charges the flat analytic path latency.
func (c *Controller) Device() dram.Device { return c.dev }

// DeviceStats returns the banked device's statistics when one is attached.
func (c *Controller) DeviceStats() (banked.Stats, bool) {
	if d, ok := c.dev.(*banked.Device); ok {
		return d.Model().Stats(), true
	}
	return banked.Stats{}, false
}

// AlignClock rewrites the controller's notion of "when the last access
// ended" to now. The sharded frontend uses it at the round barrier after
// arbitrating the round's provisionally-timed accesses onto the shared
// banked device: the worker ran the round on its private provisional
// clock, and the barrier installs the contended completion time before the
// next round starts. The adaptive-threshold window origin is clamped so a
// rewind can never underflow the window arithmetic.
func (c *Controller) AlignClock(now uint64) {
	c.lastEnd = now
	if c.winStart > now {
		c.winStart = now
	}
}
