package oram

import (
	"fmt"
	"sort"
	"strings"

	"proram/internal/mem"
	"proram/internal/posmap"
)

// CheckInvariant verifies the Path ORAM and super block invariants over
// the whole functional state:
//
//  1. Every block in the tree lies on the path of the leaf it is mapped to.
//  2. No block is resident in both the tree and the stash.
//  3. Every touched block (assigned leaf) is resident exactly once.
//  4. No bucket holds more than Z blocks.
//  5. All members of a super block share one leaf and one size, and the
//     group is correctly aligned.
//
// Rather than stopping at the first problem it collects every violation
// and reports them sorted, so a corrupted state produces one complete,
// deterministic message regardless of traversal order — identical runs
// yield byte-identical failures.
//
// It is O(total blocks) and intended for tests on small configurations.
func (c *Controller) CheckInvariant() error {
	var violations []string
	addf := func(format string, args ...any) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}

	inTree := make(map[mem.BlockID]bool)
	c.tr.ForEach(func(node uint64, id mem.BlockID) {
		if inTree[id] {
			addf("block %v present twice in the tree", id)
			return
		}
		inTree[id] = true
		leaf := c.leafOf(id)
		if leaf == mem.NoLeaf {
			addf("tree holds untouched block %v", id)
			return
		}
		if !c.tr.Contains(leaf, id) {
			addf("block %v mapped to leaf %d is off its path", id, leaf)
		}
	})
	for node := uint64(1); node <= c.tr.Buckets(); node++ {
		if n := c.tr.BucketCount(node); n > c.cfg.Z {
			addf("bucket %d holds %d > Z=%d blocks", node, n, c.cfg.Z)
		}
	}
	inStash := make(map[mem.BlockID]bool)
	c.st.ForEach(func(id mem.BlockID, leaf mem.Leaf) {
		inStash[id] = true
		if inTree[id] {
			addf("block %v resident in both tree and stash", id)
			return
		}
		if got := c.leafOf(id); got != leaf {
			addf("block %v stash leaf %d disagrees with position map %d", id, leaf, got)
		}
	})

	// Residency and super block grouping for data blocks.
	fanout := uint64(c.cfg.Fanout)
	for pbIdx := uint64(0); pbIdx < c.pm.Count(1); pbIdx++ {
		pb := c.pm.Block(1, pbIdx)
		for s := 0; s < len(pb.Entries); s++ {
			e := pb.Entries[s]
			id := mem.MakeID(0, pbIdx*fanout+uint64(s))
			if e.Leaf == mem.NoLeaf {
				if inTree[id] || inStash[id] {
					addf("untouched block %v is resident", id)
				}
				continue
			}
			if !inTree[id] && !inStash[id] {
				addf("touched block %v (leaf %d) is nowhere", id, e.Leaf)
			}
			n := int(e.SBSize)
			if n < 1 || n&(n-1) != 0 {
				addf("block %v has bad super block size %d", id, n)
				continue
			}
			g := posmap.GroupStart(s, n)
			if g+n > len(pb.Entries) {
				addf("block %v group [%d,%d) overflows its pos-map block", id, g, g+n)
				continue
			}
			for i := g; i < g+n; i++ {
				m := pb.Entries[i]
				if m.Leaf != e.Leaf || m.SBSize != e.SBSize {
					addf("super block of %v inconsistent at offset %d: leaf %d/%d size %d/%d",
						id, i, m.Leaf, e.Leaf, m.SBSize, e.SBSize)
				}
			}
		}
	}

	// Residency for position-map blocks.
	for level := 1; level <= c.pm.Depth(); level++ {
		for i := uint64(0); i < c.pm.Count(level); i++ {
			id := mem.MakeID(level, i)
			leaf := c.leafOf(id)
			if leaf == mem.NoLeaf {
				if inTree[id] || inStash[id] {
					addf("untouched pos-map block %v is resident", id)
				}
				continue
			}
			if !inTree[id] && !inStash[id] {
				addf("touched pos-map block %v (leaf %d) is nowhere", id, leaf)
			}
		}
	}

	if len(violations) == 0 {
		return nil
	}
	sort.Strings(violations)
	c.obs.Flight("invariant-failure", c.lastEnd)
	return fmt.Errorf("oram: %d invariant violation(s):\n  %s",
		len(violations), strings.Join(violations, "\n  "))
}

// StashSize exposes the current stash occupancy for tests and reporting.
func (c *Controller) StashSize() int { return c.st.Size() }
