package oram

import (
	"proram/internal/dram/banked"
	"proram/internal/obs"
)

// SetRecorder installs the observability recorder and registers the
// controller's metrics, time series and sampler callbacks. Call it right
// after New, before driving any accesses. A nil recorder (the default)
// leaves every emission site as a single pointer check on a nil handle,
// so the un-instrumented controller pays nothing.
//
// Everything registered here is public protocol state — leaf labels,
// occupancies, counters of indistinguishable path accesses — never block
// payload bytes. The proram-vet oblivious pass enforces that mechanically
// at every emission site.
func (c *Controller) SetRecorder(rec *obs.Recorder) {
	c.obs = rec
	if rec == nil {
		return
	}
	c.obsPaths = rec.Counter("oram.path_accesses")
	for k := KindData; k <= KindPeriodicDummy; k++ {
		c.obsKindCtr[k] = rec.Counter("oram.paths." + k.String())
	}
	// Super block sizes are powers of two; bounds up to 64 cover every
	// configuration the policy accepts.
	c.obsSBSize = rec.Histogram("oram.sb_size", obs.PowerOfTwoBounds(7))

	// Components.
	c.st.Instrument(rec.Counter("stash.writebacks"), rec.Gauge("stash.high_water"))
	c.plb.Instrument(rec.Counter("plb.hits"), rec.Counter("plb.misses"),
		rec.Counter("plb.dirty_evictions"))
	if d, ok := c.dev.(*banked.Device); ok {
		d.Model().Instrument(rec)
	}

	// Time series, sampled on the simulated clock. Rates are computed over
	// the window since the previous tick, so the series show trajectories
	// (warmup, phase changes) rather than ever-flattening cumulative means.
	occ := rec.Series("stash_occupancy")
	plbRate := rec.Series("plb_hit_rate")
	pfMiss := rec.Series("prefetch_miss_rate")
	util := rec.Series("channel_utilization")
	var prev struct {
		plbHits, plbMisses uint64
		pfHits, pfUnused   uint64
		busy, cycle        uint64
	}
	rec.OnSample(func(cycle uint64) {
		occ.Record(cycle, float64(c.st.Size()))

		hits, misses := c.plb.Hits(), c.plb.Misses()
		plbRate.Record(cycle, windowRate(hits-prev.plbHits, misses-prev.plbMisses))
		prev.plbHits, prev.plbMisses = hits, misses

		unused := c.stats.PrefetchUnused - prev.pfUnused
		used := c.stats.PrefetchHits - prev.pfHits
		pfMiss.Record(cycle, windowRate(unused, used))
		prev.pfHits, prev.pfUnused = c.stats.PrefetchHits, c.stats.PrefetchUnused

		if cycle > prev.cycle {
			util.Record(cycle, float64(c.stats.BusyCycles-prev.busy)/float64(cycle-prev.cycle))
		} else {
			util.Record(cycle, 0)
		}
		prev.busy, prev.cycle = c.stats.BusyCycles, cycle
	})
}

// windowRate returns a/(a+b), the fraction a represents of the window's
// total, or 0 for an empty window.
func windowRate(a, b uint64) float64 {
	if a+b == 0 {
		return 0
	}
	return float64(a) / float64(a+b)
}
