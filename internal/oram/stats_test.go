package oram

import (
	"strings"
	"testing"
)

// validStats returns a snapshot satisfying every accounting identity.
func validStats() Stats {
	return Stats{
		DemandReads: 10, Writebacks: 4,
		PathAccesses: 30, DataPaths: 10, WritebackPaths: 4, PosMapPaths: 8,
		PLBWritebackPaths: 2, BackgroundEvictions: 5, DummyAccesses: 1,
		PrefetchIssued: 6, PrefetchHits: 3, PrefetchUnused: 2,
	}
}

func TestStatsValidate(t *testing.T) {
	if err := (Stats{}).Validate(); err != nil {
		t.Fatalf("zero stats invalid: %v", err)
	}
	if err := validStats().Validate(); err != nil {
		t.Fatalf("consistent stats invalid: %v", err)
	}

	breakages := []struct {
		name    string
		mutate  func(*Stats)
		wantSub string
	}{
		{"kind sum", func(s *Stats) { s.BackgroundEvictions++ }, "per-kind paths"},
		{"lost path", func(s *Stats) { s.PathAccesses-- }, "per-kind paths"},
		{"data paths", func(s *Stats) { s.DataPaths++; s.PathAccesses++ }, "demand reads"},
		{"writeback paths", func(s *Stats) { s.Writebacks++ }, "writebacks"},
		{"prefetch outcomes", func(s *Stats) { s.PrefetchHits = 5 }, "prefetch outcomes"},
	}
	for _, b := range breakages {
		s := validStats()
		b.mutate(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: broken stats accepted", b.name)
			continue
		}
		if !strings.Contains(err.Error(), b.wantSub) {
			t.Errorf("%s: error %q does not mention %q", b.name, err, b.wantSub)
		}
	}
}

// TestControllerStatsValidate drives a real controller and checks that its
// cumulative snapshot satisfies the identities Validate enforces.
func TestControllerStatsValidate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumBlocks = 1 << 14
	cfg.OnChipEntries = 64
	cfg.Prefill = true
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := uint64(0)
	for i := uint64(0); i < 500; i++ {
		idx := (i * 37) % cfg.NumBlocks
		var res Result
		if i%4 == 3 {
			res = c.Write(now, idx)
		} else {
			res = c.Read(now, idx)
		}
		now = res.Done
	}
	if err := c.Stats().Validate(); err != nil {
		t.Fatal(err)
	}
}
