package oram

import (
	"testing"

	"proram/internal/mem"
	"proram/internal/rng"
	"proram/internal/superblock"
)

// dynConfig builds a dynamic-scheme controller with static thresholds for
// deterministic unit-level behaviour.
func dynConfig(maxSize int) Config {
	cfg := testConfig()
	cfg.Super = superblock.Config{Scheme: superblock.Dynamic, MaxSize: maxSize,
		MergeMode: superblock.ThresholdStatic, BreakMode: superblock.ThresholdStatic,
		CMerge: 1, CBreak: 1, Window: 1000}
	return cfg
}

// mergePair drives controller c until blocks a and a+1 are merged.
func mergePair(t *testing.T, c *Controller, llc *fakeLLC, a uint64) {
	t.Helper()
	for i := 0; i < 10; i++ {
		c.Read(c.Stats().LastEnd, a)
		llc.add(a)
		c.Read(c.Stats().LastEnd, a+1)
		llc.add(a + 1)
		pb := c.pm.Block(1, a/uint64(c.cfg.Fanout))
		if pb.Entries[int(a)%c.cfg.Fanout].SBSize == 2 {
			return
		}
	}
	t.Fatalf("pair (%d,%d) never merged", a, a+1)
}

func TestMergeToMaxSizeChain(t *testing.T) {
	cfg := dynConfig(4)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	llc := newFakeLLC()
	c.SetProber(llc)
	mergePair(t, c, llc, 0)
	mergePair(t, c, llc, 2)
	// Two size-2 neighbors: alternate accesses until they merge to size 4.
	for i := 0; i < 30; i++ {
		res := c.Read(c.Stats().LastEnd, 0)
		llc.add(0)
		llc.add(res.Prefetched...)
		res = c.Read(c.Stats().LastEnd, 2)
		llc.add(2)
		llc.add(res.Prefetched...)
		if c.pm.Block(1, 0).Entries[0].SBSize == 4 {
			break
		}
	}
	pb := c.pm.Block(1, 0)
	if pb.Entries[0].SBSize != 4 {
		t.Fatalf("size-4 merge never happened (size=%d, merges=%d)",
			pb.Entries[0].SBSize, c.Stats().Merges)
	}
	leaf := pb.Entries[0].Leaf
	for i := 1; i < 4; i++ {
		if pb.Entries[i].Leaf != leaf || pb.Entries[i].SBSize != 4 {
			t.Fatalf("entry %d inconsistent after size-4 merge: %+v", i, pb.Entries[i])
		}
	}
	if err := c.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	// A demand read of any member now prefetches the other three.
	res := c.Read(c.Stats().LastEnd, 1)
	if len(res.Prefetched) != 3 {
		t.Fatalf("size-4 super block prefetched %v", res.Prefetched)
	}
}

func TestMergeNeverExceedsMaxSize(t *testing.T) {
	cfg := dynConfig(2)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	llc := newFakeLLC()
	c.SetProber(llc)
	mergePair(t, c, llc, 0)
	mergePair(t, c, llc, 2)
	for i := 0; i < 20; i++ {
		c.Read(c.Stats().LastEnd, uint64(i%4))
		llc.add(uint64(i % 4))
	}
	for i := 0; i < 4; i++ {
		if s := c.pm.Block(1, 0).Entries[i].SBSize; s > 2 {
			t.Fatalf("entry %d grew to %d > MaxSize 2", i, s)
		}
	}
}

func TestBreakOfSize4YieldsSize2Halves(t *testing.T) {
	cfg := dynConfig(4)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	llc := newFakeLLC()
	c.SetProber(llc)
	mergePair(t, c, llc, 0)
	mergePair(t, c, llc, 2)
	for i := 0; i < 30 && c.pm.Block(1, 0).Entries[0].SBSize != 4; i++ {
		c.Read(c.Stats().LastEnd, 0)
		llc.add(0)
		c.Read(c.Stats().LastEnd, 2)
		llc.add(2)
	}
	if c.pm.Block(1, 0).Entries[0].SBSize != 4 {
		t.Skip("size-4 merge did not form; covered elsewhere")
	}
	// Starve the prefetches: only ever touch block 0, keep LLC empty.
	llc.set = map[uint64]bool{}
	breaksBefore := c.Stats().Breaks
	for i := 0; i < 40 && c.Stats().Breaks == breaksBefore; i++ {
		c.Read(c.Stats().LastEnd, 0)
	}
	if c.Stats().Breaks == breaksBefore {
		t.Fatal("size-4 super block never broke under pure misses")
	}
	pb := c.pm.Block(1, 0)
	if pb.Entries[0].SBSize != 2 || pb.Entries[2].SBSize != 2 {
		t.Fatalf("halves after break: %d/%d", pb.Entries[0].SBSize, pb.Entries[2].SBSize)
	}
	// The two halves must now be on independent leaves.
	if pb.Entries[0].Leaf == pb.Entries[2].Leaf {
		t.Fatal("broken halves still share a leaf (linkable)")
	}
	if err := c.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeAcrossPosMapBlockBoundaryRejected(t *testing.T) {
	// Blocks 31 and 32 live in different level-1 pos-map blocks; they are
	// not neighbors (alignment) and must never merge.
	cfg := dynConfig(2)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	llc := newFakeLLC()
	c.SetProber(llc)
	for i := 0; i < 10; i++ {
		c.Read(c.Stats().LastEnd, 31)
		llc.add(31)
		c.Read(c.Stats().LastEnd, 32)
		llc.add(32)
	}
	if c.pm.Block(1, 0).Entries[31].SBSize != 1 {
		t.Fatal("block 31 merged across an alignment boundary")
	}
	if c.pm.Block(1, 1).Entries[0].SBSize != 1 {
		t.Fatal("block 32 merged across an alignment boundary")
	}
}

func TestUnalignedPairNeverMerges(t *testing.T) {
	// Paper Figure 3: blocks 3 and 4 cannot merge (not aligned).
	cfg := dynConfig(2)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	llc := newFakeLLC()
	c.SetProber(llc)
	for i := 0; i < 10; i++ {
		c.Read(c.Stats().LastEnd, 3)
		llc.add(3)
		c.Read(c.Stats().LastEnd, 4)
		llc.add(4)
	}
	pb := c.pm.Block(1, 0)
	if pb.Entries[3].SBSize != 1 || pb.Entries[4].SBSize != 1 {
		t.Fatalf("unaligned pair merged: %d/%d", pb.Entries[3].SBSize, pb.Entries[4].SBSize)
	}
}

func TestMergeRequiresEqualSizes(t *testing.T) {
	// A size-2 group cannot merge with a size-1 neighbor pair half.
	cfg := dynConfig(4)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	llc := newFakeLLC()
	c.SetProber(llc)
	mergePair(t, c, llc, 0) // (0,1) merged, (2,3) still singles
	llc.add(2)              // only block 2 cached, 3 never touched
	for i := 0; i < 6; i++ {
		res := c.Read(c.Stats().LastEnd, 0)
		llc.add(0)
		llc.add(res.Prefetched...)
	}
	if s := c.pm.Block(1, 0).Entries[0].SBSize; s != 2 {
		t.Fatalf("merged with an unequal/untouched neighbor: size %d", s)
	}
}

func TestPrefetchBitsClearedOnReload(t *testing.T) {
	cfg := dynConfig(2)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	llc := newFakeLLC()
	c.SetProber(llc)
	mergePair(t, c, llc, 0)
	res := c.Read(c.Stats().LastEnd, 0) // prefetches 1
	if len(res.Prefetched) != 1 {
		t.Fatalf("prefetched %v", res.Prefetched)
	}
	pb := c.pm.Block(1, 0)
	if !pb.Entries[1].Prefetch {
		t.Fatal("prefetch bit not set")
	}
	c.Read(c.Stats().LastEnd, 1) // demand reload resolves the episode
	if pb.Entries[1].Prefetch {
		t.Fatal("prefetch bit not consumed by Algorithm 2")
	}
}

func TestAdaptiveSchemeUnderImbalancedSizes(t *testing.T) {
	// Fuzz: random reads over a small region with an erratically updated
	// LLC must keep all invariants across merge/break churn at MaxSize 8.
	cfg := testConfig()
	cfg.NumBlocks = 1 << 10
	sb := superblock.DefaultConfig()
	sb.MaxSize = 8
	sb.Window = 64
	cfg.Super = sb
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	llc := newFakeLLC()
	c.SetProber(llc)
	r := rng.New(23)
	for i := 0; i < 4000; i++ {
		var idx uint64
		switch r.Intn(3) {
		case 0:
			idx = r.Uint64n(32) // very hot: merges to large sizes
		case 1:
			idx = r.Uint64n(256)
		default:
			idx = r.Uint64n(cfg.NumBlocks)
		}
		if r.Intn(4) == 0 {
			c.Write(c.Stats().LastEnd, idx)
			continue
		}
		res := c.Read(c.Stats().LastEnd, idx)
		llc.add(idx)
		llc.add(res.Prefetched...)
		if r.Intn(3) == 0 {
			delete(llc.set, r.Uint64n(64))
		}
	}
	if err := c.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	t.Logf("merges=%d breaks=%d maxSize observed via invariant", s.Merges, s.Breaks)
	if s.Merges == 0 {
		t.Fatal("hot region never merged")
	}
}

func TestWritebackOfBrokenHalf(t *testing.T) {
	// Dirty-evicting a member right after its super block broke must
	// remap only its own (new, smaller) group.
	cfg := dynConfig(2)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	llc := newFakeLLC()
	c.SetProber(llc)
	mergePair(t, c, llc, 4)
	llc.set = map[uint64]bool{}
	for i := 0; i < 10 && c.Stats().Breaks == 0; i++ {
		c.Read(c.Stats().LastEnd, 4)
	}
	if c.Stats().Breaks == 0 {
		t.Fatal("pair never broke")
	}
	c.Write(c.Stats().LastEnd, 5)
	pb := c.pm.Block(1, 0)
	if pb.Entries[4].SBSize != 1 || pb.Entries[5].SBSize != 1 {
		t.Fatalf("sizes after writeback: %d/%d", pb.Entries[4].SBSize, pb.Entries[5].SBSize)
	}
	if err := c.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestCounterSaturationViaController(t *testing.T) {
	// Repeated co-residency observations far beyond the threshold must
	// not wrap the counter (saturating arithmetic end-to-end).
	cfg := dynConfig(2)
	cfg.Super.MaxSize = 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	llc := newFakeLLC()
	c.SetProber(llc)
	// Alternate 8/9 far past the merge point (resolving every prefetch as
	// a hit, as the cache layer would), then verify state is sane.
	for i := 0; i < 600; i++ {
		idx := uint64(8 + i%2)
		res := c.Read(c.Stats().LastEnd, idx)
		llc.add(idx)
		llc.add(res.Prefetched...)
		for _, p := range res.Prefetched {
			c.NotifyPrefetchUse(p)
		}
	}
	if err := c.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Merges != 1 {
		t.Fatalf("pair merged %d times (churn?)", c.Stats().Merges)
	}
}

func TestStaticSchemeNeverBreaks(t *testing.T) {
	cfg := testConfig()
	cfg.Super = superblock.Config{Scheme: superblock.Static, MaxSize: 2}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// All prefetches miss forever: static must keep the grouping anyway.
	for i := 0; i < 100; i++ {
		c.Read(c.Stats().LastEnd, 6)
	}
	if c.Stats().Breaks != 0 {
		t.Fatal("static scheme broke a super block")
	}
	if c.pm.Block(1, 0).Entries[6].SBSize != 2 {
		t.Fatal("static group lost")
	}
}

func TestGroupLeafSharedAfterEveryAccess(t *testing.T) {
	// Property: after any access, every member of a super block shares the
	// leaf of every other member (checked directly, not via the full
	// invariant scan, to exercise the hot path's postcondition).
	cfg := dynConfig(4)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	llc := newFakeLLC()
	c.SetProber(llc)
	r := rng.New(31)
	for i := 0; i < 1500; i++ {
		idx := r.Uint64n(64)
		res := c.Read(c.Stats().LastEnd, idx)
		llc.add(idx)
		llc.add(res.Prefetched...)
		pb := c.pm.Block(1, idx/uint64(c.cfg.Fanout))
		slot := int(idx % uint64(c.cfg.Fanout))
		n := int(pb.Entries[slot].SBSize)
		g := slot &^ (n - 1)
		leaf := pb.Entries[g].Leaf
		for j := g; j < g+n; j++ {
			if pb.Entries[j].Leaf != leaf {
				t.Fatalf("op %d: group [%d,%d) leaves diverged", i, g, g+n)
			}
		}
	}
}

var _ = mem.Nil // keep the import for future white-box additions
