package oram

import (
	"math"
	"testing"

	"proram/internal/rng"
	"proram/internal/superblock"
)

// securityConfig returns a small traced configuration.
func securityConfig() Config {
	cfg := DefaultConfig()
	cfg.NumBlocks = 1 << 10
	cfg.OnChipEntries = 64
	cfg.PLBBlocks = 8
	cfg.RecordTrace = true
	return cfg
}

// chiSquare computes the chi-square statistic of observed counts against a
// uniform expectation.
func chiSquare(counts []uint64, total uint64) float64 {
	expected := float64(total) / float64(len(counts))
	chi := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi += d * d / expected
	}
	return chi
}

// leafHistogram bins the trace's leaves into nBins equal buckets.
func leafHistogram(c *Controller, nBins int) ([]uint64, uint64) {
	counts := make([]uint64, nBins)
	leaves := c.tr.Leaves()
	var total uint64
	for _, ev := range c.Trace() {
		counts[ev.Leaf*uint64(nBins)/leaves]++
		total++
	}
	return counts, total
}

// The adversary observes only path (leaf) identities. Leaves must be
// uniformly distributed regardless of the logical pattern.
func TestLeafUniformity(t *testing.T) {
	c, err := New(securityConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(21)
	for i := 0; i < 5000; i++ {
		c.Read(c.Stats().LastEnd, r.Uint64n(c.cfg.NumBlocks))
	}
	const bins = 16
	counts, total := leafHistogram(c, bins)
	// 15 dof, 99.9% critical value ~37.7.
	if chi := chiSquare(counts, total); chi > 37.7 {
		t.Fatalf("leaf distribution not uniform: chi2 = %.2f (counts %v)", chi, counts)
	}
}

// Accessing the same logical block repeatedly must produce unlinkable
// (fresh uniform) paths: this is step 4 of the protocol.
func TestRepeatedAccessUnlinkability(t *testing.T) {
	c, err := New(securityConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		c.Read(c.Stats().LastEnd, 7)
	}
	// Only the data paths matter here.
	counts := make([]uint64, 16)
	leaves := c.tr.Leaves()
	var total uint64
	for _, ev := range c.Trace() {
		if ev.Kind == KindData {
			counts[ev.Leaf*16/leaves]++
			total++
		}
	}
	if chi := chiSquare(counts, total); chi > 37.7 {
		t.Fatalf("repeated-access leaves linkable: chi2 = %.2f", chi)
	}
	// Consecutive data-path leaves must not repeat more often than chance.
	var prev uint64 = ^uint64(0)
	repeats := 0
	n := 0
	for _, ev := range c.Trace() {
		if ev.Kind != KindData {
			continue
		}
		if ev.Leaf == prev {
			repeats++
		}
		prev = ev.Leaf
		n++
	}
	expected := float64(n) / float64(leaves)
	if float64(repeats) > 5*expected+10 {
		t.Fatalf("consecutive leaf repeats %d exceed chance (%.1f expected)", repeats, expected)
	}
}

// A sequential logical pattern and a random logical pattern must be
// indistinguishable in the physical trace: compare binned leaf histograms
// via total-variation distance.
func TestPatternIndependence(t *testing.T) {
	run := func(sequential bool) []uint64 {
		cfg := securityConfig()
		cfg.Super = superblock.DefaultConfig() // PrORAM active: still oblivious
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		llc := newFakeLLC()
		c.SetProber(llc)
		r := rng.New(31)
		for i := 0; i < 4000; i++ {
			var idx uint64
			if sequential {
				idx = uint64(i) % c.cfg.NumBlocks
			} else {
				idx = r.Uint64n(c.cfg.NumBlocks)
			}
			res := c.Read(c.Stats().LastEnd, idx)
			llc.add(idx)
			llc.add(res.Prefetched...)
		}
		counts, _ := leafHistogram(c, 16)
		return counts
	}
	seq := run(true)
	rnd := run(false)
	var seqTotal, rndTotal float64
	for i := range seq {
		seqTotal += float64(seq[i])
		rndTotal += float64(rnd[i])
	}
	tv := 0.0
	for i := range seq {
		tv += math.Abs(float64(seq[i])/seqTotal - float64(rnd[i])/rndTotal)
	}
	tv /= 2
	if tv > 0.05 {
		t.Fatalf("leaf histograms distinguish patterns: TV distance %.4f", tv)
	}
}

// Merging and breaking must not mark the trace: a run with the dynamic
// scheme produces the same *kind* of physical events (full path accesses),
// and each access touches exactly one path.
func TestSuperBlockAccessesLookNormal(t *testing.T) {
	cfg := securityConfig()
	cfg.Super = superblock.DefaultConfig()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	llc := newFakeLLC()
	c.SetProber(llc)
	for i := 0; i < 2000; i++ {
		idx := uint64(i) % 128
		res := c.Read(c.Stats().LastEnd, idx)
		llc.add(idx)
		llc.add(res.Prefetched...)
	}
	if c.Stats().Merges == 0 {
		t.Fatal("scenario produced no merges; test is vacuous")
	}
	// Every traced event is one full path; leaves stay in range.
	for _, ev := range c.Trace() {
		if ev.Leaf >= c.tr.Leaves() {
			t.Fatalf("leaf %d out of range", ev.Leaf)
		}
	}
	// The number of physical accesses must not depend on merge content in
	// a visible way: each demand read is exactly one data path regardless
	// of super block size.
	s := c.Stats()
	if s.DataPaths != s.DemandReads {
		t.Fatalf("data paths %d != demand reads %d: super blocks changed the access shape",
			s.DataPaths, s.DemandReads)
	}
}

// Periodic mode must yield a fully deterministic schedule regardless of
// the request stream.
func TestPeriodicScheduleDeterminism(t *testing.T) {
	starts := func(seed uint64, hot bool) []uint64 {
		cfg := securityConfig()
		cfg.Periodic = true
		cfg.Oint = 100
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(seed)
		now := uint64(0)
		for i := 0; i < 200; i++ {
			idx := r.Uint64n(c.cfg.NumBlocks)
			res := c.Read(now, idx)
			if hot {
				now = res.Done // back-to-back requests
			} else {
				now = res.Done + uint64(r.Uint64n(5000)) // idle gaps
			}
		}
		var out []uint64
		for _, ev := range c.Trace() {
			out = append(out, ev.Start)
		}
		return out
	}
	hot := starts(1, true)
	cold := starts(2, false)
	// Both schedules obey the same public cadence: start_{k+1} - start_k is
	// constant (pathLat + Oint).
	gap := hot[1] - hot[0]
	for i := 1; i < len(hot); i++ {
		if hot[i]-hot[i-1] != gap {
			t.Fatalf("hot schedule irregular at %d", i)
		}
	}
	for i := 1; i < len(cold); i++ {
		if cold[i]-cold[i-1] != gap {
			t.Fatalf("cold schedule gap %d != %d at %d: timing leaks load", cold[i]-cold[i-1], gap, i)
		}
	}
}
