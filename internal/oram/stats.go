package oram

import "fmt"

// Stats aggregates everything the controller did. All path-access counters
// are in units of full path read+writes (the paper's unit of ORAM work and
// the proxy for memory-subsystem energy).
type Stats struct {
	// Requests.
	DemandReads uint64 // LLC-miss reads served
	Writebacks  uint64 // dirty LLC evictions written back

	// Path accesses by cause. PathAccesses is their sum.
	PathAccesses        uint64
	DataPaths           uint64 // demand data-tree paths
	WritebackPaths      uint64 // data paths caused by LLC writebacks
	PosMapPaths         uint64 // recursion (PLB-miss) paths
	PLBWritebackPaths   uint64 // dirty PLB victim write-backs
	BackgroundEvictions uint64 // stash-pressure dummies
	DummyAccesses       uint64 // periodic-schedule dummies

	// Super block activity.
	Merges         uint64
	Breaks         uint64
	PrefetchIssued uint64 // blocks returned beyond the demand block
	PrefetchHits   uint64 // prefetched blocks later used in the LLC
	PrefetchUnused uint64 // prefetched blocks evicted from LLC unused
	ReloadedUnused uint64 // Algorithm 2 observations of unused prefetches
	ReloadedUsed   uint64 // Algorithm 2 observations of used prefetches

	// Structures.
	StashHighWater int
	PLBHits        uint64
	PLBMisses      uint64

	// Timing.
	BusyCycles uint64 // cycles the ORAM occupied the channel
	LastEnd    uint64 // completion time of the last path access
	BytesMoved uint64

	// OintTransitions counts adaptive-interval moves under the DynamicOint
	// extension — its declared timing leak is one bit per transition.
	OintTransitions uint64
}

// Validate checks the accounting identities that must hold for any
// cumulative snapshot taken through Controller.Stats:
//
//   - PathAccesses is exactly the sum of the per-kind counters: every path
//     access is classified once.
//   - Every demand read issues exactly one data path, every LLC writeback
//     exactly one writeback path.
//   - Resolved prefetch outcomes (hits + unused) never exceed issues.
//
// It is called at the end of every simulation run, so a miscounted access
// surfaces as a run error instead of silently skewing a figure. The
// identities are for cumulative counters only: warmup-region deltas
// produced by Sub can resolve more prefetches than they issue.
func (s Stats) Validate() error {
	kinds := s.DataPaths + s.WritebackPaths + s.PosMapPaths +
		s.PLBWritebackPaths + s.BackgroundEvictions + s.DummyAccesses
	if kinds != s.PathAccesses {
		return fmt.Errorf("oram: stats invariant: per-kind paths sum to %d, PathAccesses is %d", kinds, s.PathAccesses)
	}
	if s.DataPaths != s.DemandReads {
		return fmt.Errorf("oram: stats invariant: %d data paths for %d demand reads", s.DataPaths, s.DemandReads)
	}
	if s.WritebackPaths != s.Writebacks {
		return fmt.Errorf("oram: stats invariant: %d writeback paths for %d writebacks", s.WritebackPaths, s.Writebacks)
	}
	if s.PrefetchHits+s.PrefetchUnused > s.PrefetchIssued {
		return fmt.Errorf("oram: stats invariant: %d+%d prefetch outcomes exceed %d issues",
			s.PrefetchHits, s.PrefetchUnused, s.PrefetchIssued)
	}
	return nil
}

// PrefetchMissRate returns the fraction of resolved prefetches that went
// unused (Figure 9's metric). Resolution happens when a prefetched block
// is either used in the LLC or evicted from it unused.
func (s Stats) PrefetchMissRate() float64 {
	total := s.PrefetchHits + s.PrefetchUnused
	if total == 0 {
		return 0
	}
	return float64(s.PrefetchUnused) / float64(total)
}

// AccessKind labels a path access in the recorded physical trace. The
// labels exist for internal accounting only: on the wire every kind is an
// identical full-path read+write and indistinguishable to the adversary.
type AccessKind uint8

const (
	KindData AccessKind = iota
	KindPosMap
	KindWriteback
	KindPLBWriteback
	KindBackgroundEvict
	KindPeriodicDummy
)

func (k AccessKind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindPosMap:
		return "posmap"
	case KindWriteback:
		return "writeback"
	case KindPLBWriteback:
		return "plb-writeback"
	case KindBackgroundEvict:
		return "bg-evict"
	case KindPeriodicDummy:
		return "dummy"
	default:
		return "unknown"
	}
}

// TraceEvent is one physical path access as the adversary sees it: a leaf
// (equivalently, a path) and when it started. Kind is internal metadata.
type TraceEvent struct {
	Leaf  uint64
	Start uint64
	Kind  AccessKind
}

// Result reports the outcome of one logical request.
type Result struct {
	// Done is the cycle at which the requested block is available (the end
	// of the data path access; later background evictions delay only
	// subsequent requests).
	Done uint64
	// Prefetched lists data-block indices returned to the LLC beyond the
	// demand block (super block siblings), in ascending order.
	Prefetched []uint64
	// PathCount is the number of path accesses this request triggered
	// (recursion + data + victim write-backs + background evictions).
	PathCount int
}

// Sub returns the delta of s over an earlier snapshot: counters subtract,
// while point-in-time fields (StashHighWater, LastEnd) keep their current
// values. Used to measure a post-warmup region of interest.
func (s Stats) Sub(base Stats) Stats {
	d := s
	d.DemandReads -= base.DemandReads
	d.Writebacks -= base.Writebacks
	d.PathAccesses -= base.PathAccesses
	d.DataPaths -= base.DataPaths
	d.WritebackPaths -= base.WritebackPaths
	d.PosMapPaths -= base.PosMapPaths
	d.PLBWritebackPaths -= base.PLBWritebackPaths
	d.BackgroundEvictions -= base.BackgroundEvictions
	d.DummyAccesses -= base.DummyAccesses
	d.Merges -= base.Merges
	d.Breaks -= base.Breaks
	d.PrefetchIssued -= base.PrefetchIssued
	d.PrefetchHits -= base.PrefetchHits
	d.PrefetchUnused -= base.PrefetchUnused
	d.ReloadedUnused -= base.ReloadedUnused
	d.ReloadedUsed -= base.ReloadedUsed
	d.PLBHits -= base.PLBHits
	d.PLBMisses -= base.PLBMisses
	d.BusyCycles -= base.BusyCycles
	d.BytesMoved -= base.BytesMoved
	d.OintTransitions -= base.OintTransitions
	return d
}
