package oram

// Dynamic Oint (§2.5): the paper notes that timing protection with a
// dynamically-changing access interval [9] "provides better performance"
// and "can be used with the techniques proposed in this paper if small
// data leakage is allowed". This file implements that extension in the
// style of Fletcher et al. (HPCA'14): the interval moves within a public
// ladder of power-of-two multiples of Oint, transitions happen only at
// epoch boundaries, and each transition leaks at most one bit (whether the
// program was memory-hungry this epoch) — the controller counts them.
//
// The schedule remains deterministic *given the transition history*: the
// adversary learns only the epoch decisions, which is exactly the bounded
// leak the scheme declares.

// dynOint holds the adaptive-interval state.
type dynOint struct {
	enabled bool
	cur     uint64 // current interval
	min     uint64
	max     uint64
	epoch   int // accesses per decision

	epochAccesses int
	epochDummies  int
	transitions   uint64
}

// initDynOint configures the ladder from the controller config.
func (c *Controller) initDynOint() {
	if !c.cfg.DynamicOint {
		return
	}
	min := c.cfg.Oint
	max := c.cfg.OintMax
	if max < min {
		max = min * 16
	}
	epoch := c.cfg.OintEpoch
	if epoch <= 0 {
		epoch = 64
	}
	c.dyn = dynOint{enabled: true, cur: min, min: min, max: max, epoch: epoch}
}

// currentOint returns the interval in force.
func (c *Controller) currentOint() uint64 {
	if c.dyn.enabled {
		return c.dyn.cur
	}
	return c.cfg.Oint
}

// observeScheduled records one scheduled access (real or dummy) and adapts
// the interval at epoch boundaries.
func (c *Controller) observeScheduled(dummy bool) {
	if !c.dyn.enabled {
		return
	}
	c.dyn.epochAccesses++
	if dummy {
		c.dyn.epochDummies++
	}
	if c.dyn.epochAccesses < c.dyn.epoch {
		return
	}
	frac := float64(c.dyn.epochDummies) / float64(c.dyn.epochAccesses)
	moved := false
	switch {
	case frac > 0.5 && c.dyn.cur < c.dyn.max:
		// Mostly idle: slow the public clock to save bandwidth/energy.
		c.dyn.cur *= 2
		moved = true
	case frac < 0.1 && c.dyn.cur > c.dyn.min:
		// Demand-bound: speed the clock back up.
		c.dyn.cur /= 2
		moved = true
	}
	if moved {
		c.dyn.transitions++
		c.obs.Instant("oram", "oint-transition", c.lastEnd, "oint", c.dyn.cur)
	}
	c.dyn.epochAccesses = 0
	c.dyn.epochDummies = 0
}

// OintTransitions returns how many interval transitions occurred — the
// extension's leakage budget in bits (one bit per transition).
func (c *Controller) OintTransitions() uint64 { return c.dyn.transitions }

// CurrentOint exposes the interval in force (tests, reporting).
func (c *Controller) CurrentOint() uint64 { return c.currentOint() }
