package shard

import (
	"fmt"

	"proram/internal/obs"
)

// metrics is the frontend's observability wiring. Every emission happens
// on the round driver (dispatcher or replay loop) at a round barrier —
// obs.Recorder is not concurrent-safe, and this is the one place worker
// state is quiescent.
type metrics struct {
	rec        *obs.Recorder
	rounds     *obs.Counter
	flushes    *obs.Counter
	demand     *obs.Counter
	dummy      *obs.Counter
	hits       *obs.Counter
	served     *obs.Counter
	carryovers *obs.Counter
	fill       *obs.Histogram // per-(round, partition) fill, percent
	queueDepth *obs.Gauge     // high-water pending requests at a barrier
	stash      []*obs.Gauge   // per-partition stash occupancy high-water
}

// newMetrics registers the scheduler's metrics; nil recorder, nil metrics
// (every method is then a no-op).
func newMetrics(rec *obs.Recorder, parts int) *metrics {
	if !rec.Enabled() {
		return nil
	}
	m := &metrics{
		rec:        rec,
		rounds:     rec.Counter("shard.rounds"),
		flushes:    rec.Counter("shard.flush_rounds"),
		demand:     rec.Counter("shard.demand_accesses"),
		dummy:      rec.Counter("shard.dummy_accesses"),
		hits:       rec.Counter("shard.cache_hits"),
		served:     rec.Counter("shard.requests_served"),
		carryovers: rec.Counter("shard.carryovers"),
		fill:       rec.Histogram("shard.round_fill_pct", []float64{0, 10, 25, 50, 75, 90, 100}),
		queueDepth: rec.Gauge("shard.queue_depth"),
		stash:      make([]*obs.Gauge, parts),
	}
	for i := range m.stash {
		m.stash[i] = rec.Gauge(fmt.Sprintf("shard.p%d.stash_occupancy", i))
	}
	return m
}

// onRound records one completed round (of any kind) from the barrier.
func (m *metrics) onRound(f *Frontend, kind roundKind, byPart []roundResult, leftovers, pending int) {
	if m == nil {
		return
	}
	switch kind {
	case roundDemand:
		m.rounds.Inc()
	case roundFlush:
		m.flushes.Inc()
	}
	for _, r := range byPart {
		m.demand.Add(uint64(r.real))
		m.dummy.Add(uint64(r.dummy))
		m.hits.Add(uint64(r.hits))
		m.served.Add(uint64(r.served))
		if kind == roundDemand {
			m.fill.Observe(100 * float64(r.real) / float64(f.cfg.RoundSlots))
		}
	}
	m.carryovers.Add(uint64(leftovers))
	m.queueDepth.Max(float64(pending))
	for i, p := range f.parts {
		m.stash[i].Max(float64(p.store.Ctrl.StashSize()))
	}
	m.rec.MaybeSample(f.clockFloor())
}
