package shard

import (
	"fmt"

	"proram/internal/obs"
)

// metrics is the frontend's observability wiring. Every emission happens
// on the round driver (dispatcher or replay loop) at a round barrier —
// obs.Recorder is not concurrent-safe, and this is the one place worker
// state is quiescent.
type metrics struct {
	rec        *obs.Recorder
	rounds     *obs.Counter
	flushes    *obs.Counter
	demand     *obs.Counter
	dummy      *obs.Counter
	hits       *obs.Counter
	served     *obs.Counter
	carryovers *obs.Counter
	fill       *obs.Histogram // per-(round, partition) fill, percent
	queueDepth *obs.Gauge     // high-water pending requests at a barrier
	stash      []*obs.Gauge   // per-partition stash occupancy high-water

	// End-to-end latency decomposition, in simulated cycles: per-request
	// totals per partition, plus the global queue/service/DRAM components.
	latE2E     []*obs.Histogram
	latQueue   *obs.Histogram
	latService *obs.Histogram
	latDRAM    *obs.Histogram
	spanNames  []string // per-partition trace lane names, preallocated
}

// latencyBounds bucket simulated-cycle latencies from a single path
// access (~thousands) up through heavily queued rounds.
var latencyBounds = []float64{1_000, 10_000, 30_000, 100_000, 300_000, 1_000_000, 3_000_000}

// newMetrics registers the scheduler's metrics; nil recorder, nil metrics
// (every method is then a no-op).
func newMetrics(rec *obs.Recorder, parts int) *metrics {
	if !rec.Enabled() {
		return nil
	}
	m := &metrics{
		rec:        rec,
		rounds:     rec.Counter("shard.rounds"),
		flushes:    rec.Counter("shard.flush_rounds"),
		demand:     rec.Counter("shard.demand_accesses"),
		dummy:      rec.Counter("shard.dummy_accesses"),
		hits:       rec.Counter("shard.cache_hits"),
		served:     rec.Counter("shard.requests_served"),
		carryovers: rec.Counter("shard.carryovers"),
		fill:       rec.Histogram("shard.round_fill_pct", []float64{0, 10, 25, 50, 75, 90, 100}),
		queueDepth: rec.Gauge("shard.queue_depth"),
		stash:      make([]*obs.Gauge, parts),
		latE2E:     make([]*obs.Histogram, parts),
		latQueue:   rec.Histogram("shard.latency_queue", latencyBounds),
		latService: rec.Histogram("shard.latency_service", latencyBounds),
		latDRAM:    rec.Histogram("shard.latency_dram", latencyBounds),
		spanNames:  make([]string, parts),
	}
	for i := range m.stash {
		m.stash[i] = rec.Gauge(fmt.Sprintf("shard.p%d.stash_occupancy", i))
		m.latE2E[i] = rec.Histogram(fmt.Sprintf("shard.p%d.latency_e2e", i), latencyBounds)
		m.spanNames[i] = fmt.Sprintf("p%d.service", i)
	}
	return m
}

// onRound records one completed round (of any kind) from the barrier. For
// demand rounds sp carries the per-partition latency decomposition (nil
// for flush and pad rounds).
func (m *metrics) onRound(f *Frontend, kind roundKind, byPart []roundResult, sp []spans, leftovers, pending int) {
	if m == nil {
		return
	}
	switch kind {
	case roundDemand:
		m.rounds.Inc()
	case roundFlush:
		m.flushes.Inc()
	}
	for i := range byPart {
		r := &byPart[i]
		m.demand.Add(uint64(r.real))
		m.dummy.Add(uint64(r.dummy))
		m.hits.Add(uint64(r.hits))
		m.served.Add(uint64(r.served))
		if kind == roundDemand {
			m.fill.Observe(100 * float64(r.real) / float64(f.cfg.RoundSlots))
		}
	}
	if sp != nil {
		for i := range sp {
			s := &sp[i]
			if s.service > 0 {
				// One "service" lane per partition: Perfetto renders each
				// partition's round execution as a bar from the round's clock
				// floor to the partition's data-ready cycle.
				m.rec.Span("latency", m.spanNames[i], s.ready-s.service, s.service, "part", uint64(i))
				m.latService.Observe(float64(s.service))
			}
			if s.dram > 0 {
				m.latDRAM.Observe(float64(s.dram))
			}
			for j := range s.total {
				m.latQueue.Observe(float64(s.queue[j]))
				m.latE2E[i].Observe(float64(s.total[j]))
			}
		}
	}
	m.carryovers.Add(uint64(leftovers))
	m.queueDepth.Max(float64(pending))
	for i, p := range f.parts {
		m.stash[i].Max(float64(p.store.Ctrl.StashSize()))
	}
	m.rec.MaybeSample(f.clockFloor())
}
