package shard

import (
	"proram/internal/obs/audit"
)

// slotMark closes one issued access slot inside a partition round: end is
// the round-relative trace index just past the slot's physical accesses,
// and dummy records whether the slot was padding. The marks are the
// wire-truth of the round's shape — the auditor counts them instead of
// trusting the scheduler's real/dummy counters.
type slotMark struct {
	end   int
	dummy bool
}

// floorHorizon bounds the floors map: queueing spans only resolve for
// requests whose arrival round committed within this many rounds, which
// is far beyond any carryover the budget rules allow.
const floorHorizon = 4096

// spans is one (round, partition) latency decomposition in cycles, built
// at the commit barrier from round-driver-owned state.
type spans struct {
	service uint64   // round clock floor -> partition data ready
	dram    uint64   // first physical issue -> partition data ready
	ready   uint64   // the partition's post-round clock
	queue   []uint64 // per served request: arrival-round floor -> this floor
	total   []uint64 // per served request: arrival-round floor -> data ready
}

// roundSpans decomposes a committed demand round's latency per partition.
// Completion is each partition's post-arbitration clock; queueing delay is
// measured from the clock floor of the request's arrival round to this
// round's floor. Runs on the round driver with workers quiescent.
func (f *Frontend) roundSpans(floor uint64, byPart []roundResult) []spans {
	out := make([]spans, len(byPart))
	for i := range byPart {
		r := &byPart[i]
		p := f.parts[r.part]
		sp := spans{ready: p.store.Now}
		if sp.ready > floor {
			sp.service = sp.ready - floor
		}
		if len(r.trace) > 0 && sp.ready > r.trace[0].Start {
			sp.dram = sp.ready - r.trace[0].Start
		}
		if len(r.servedArr) > 0 {
			sp.queue = make([]uint64, len(r.servedArr))
			sp.total = make([]uint64, len(r.servedArr))
			for j, arr := range r.servedArr {
				af, ok := f.floors[arr]
				if !ok {
					af = floor
				}
				var q uint64
				if floor > af {
					q = floor - af
				}
				sp.queue[j] = q
				sp.total[j] = q + sp.service
			}
		}
		out[r.part] = sp
	}
	return out
}

// feedAudit streams one committed round into the auditor: the observed
// per-slot mark counts (round shape), every physical access with its
// arbitrated start cycle (uniformity, serial independence, timing), and
// the latency spans. Runs on the round driver at the commit barrier, the
// same discipline as the metrics emissions.
func (f *Frontend) feedAudit(round uint64, kind roundKind, byPart []roundResult, sp []spans) {
	a := f.cfg.Audit
	if a == nil {
		return
	}
	for i := range byPart {
		r := &byPart[i]
		switch kind {
		case roundDemand:
			a.RoundShape(round, r.part, audit.ShapeDemand, len(r.marks))
		case roundFlush:
			a.RoundShape(round, r.part, audit.ShapeFlush, len(r.marks))
		case roundPad:
			a.RoundShape(round, r.part, audit.ShapePad, len(r.marks))
		}
		if len(r.trace) > 0 {
			evs := make([]audit.AccessEvent, len(r.trace))
			mi := 0
			for j, ev := range r.trace {
				for mi < len(r.marks) && j >= r.marks[mi].end {
					mi++
				}
				evs[j] = audit.AccessEvent{
					Leaf:  ev.Leaf,
					Start: ev.Start,
					Dummy: mi < len(r.marks) && r.marks[mi].dummy,
				}
			}
			a.Accesses(r.part, evs)
		}
		if sp != nil {
			s := &sp[r.part]
			for j := range s.total {
				a.Latency(r.part, s.queue[j], s.service, s.dram, s.total[j])
			}
		}
	}
}
