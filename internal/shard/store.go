package shard

import (
	"fmt"

	"proram/internal/oram"
	"proram/internal/seal"
)

// Store binds one Path ORAM controller to its sealed payload storage and
// its simulated clock: the complete "one oblivious block device" bundle.
// The unified proram.RAM owns exactly one Store; the sharded frontend owns
// one per partition. Factoring it here gives both frontends a single
// seal-and-write-back implementation (and a single demand-read path)
// instead of three hand-rolled copies.
//
// A Store is not safe for concurrent use: the unified RAM serializes
// callers, and each partition worker goroutine owns its Store exclusively.
type Store struct {
	// Ctrl is the trusted controller producing the physical access pattern.
	Ctrl *oram.Controller
	// Sealer encrypts payloads at rest with a fresh nonce per write-back.
	Sealer *seal.Sealer
	// Sealed is the untrusted payload storage, keyed by block index.
	// Absent entries read as zero blocks. The map is only ever indexed,
	// never iterated, so it cannot leak Go map order into results.
	Sealed map[uint64][]byte
	// Now is the store's simulated clock, advanced by every access.
	Now uint64

	blockBytes int
}

// NewStore assembles a store around an existing controller and sealer.
func NewStore(ctrl *oram.Controller, sealer *seal.Sealer, blockBytes int) *Store {
	return &Store{
		Ctrl:       ctrl,
		Sealer:     sealer,
		Sealed:     make(map[uint64][]byte),
		blockBytes: blockBytes,
	}
}

// BlockBytes returns the plaintext block size.
func (s *Store) BlockBytes() int { return s.blockBytes }

// DemandRead performs one full recursive ORAM read of index at the current
// clock and advances it. The result carries prefetched sibling indices.
//
//proram:hotpath every real and dummy slot of every scheduling round enters here
func (s *Store) DemandRead(index uint64) oram.Result {
	res := s.Ctrl.Read(s.Now, index)
	s.Now = res.Done
	return res
}

// WriteBack seals data and commits it as block index: ciphertext to the
// sealed storage, address to the ORAM (one full write-back access). This
// is the single seal-and-write-back path shared by the unified RAM's
// eviction and flush and by the partition workers.
func (s *Store) WriteBack(index uint64, data []byte) error {
	sealed, err := s.Sealer.Seal(nil, data)
	if err != nil {
		return err
	}
	s.Sealed[index] = sealed
	res := s.Ctrl.Write(s.Now, index)
	s.Now = res.Done
	return nil
}

// Load returns a fresh plaintext buffer for block index: the decrypted
// payload when one is stored, an all-zero block otherwise. It performs no
// ORAM access — callers pair it with DemandRead (or a prefetch result).
func (s *Store) Load(index uint64) ([]byte, error) {
	data := make([]byte, s.blockBytes)
	if sealed, ok := s.Sealed[index]; ok {
		plain, err := s.Sealer.Open(data[:0], sealed)
		if err != nil {
			return nil, fmt.Errorf("block %d corrupt: %w", index, err)
		}
		data = plain
	}
	return data, nil
}
