package shard

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"proram/internal/obs"
	"proram/internal/obs/audit"
)

// TestReplayByteIdentityWithAudit asserts that tapping the auditor (and
// the observability recorder) does not perturb the access pattern: a
// fully instrumented live run, a plain replay, and an audited replay of
// the same arrival log must produce byte-identical access logs at the
// degenerate and non-power-of-two partition counts. The auditor must
// also clear the honest runs.
func TestReplayByteIdentityWithAudit(t *testing.T) {
	for _, parts := range []int{1, 3, 5} {
		t.Run(fmt.Sprintf("parts=%d", parts), func(t *testing.T) {
			cfg := testConfig(parts)
			cfg.Recorder = obs.New(obs.Options{})
			liveAud := audit.New(audit.Config{Timing: true})
			cfg.Audit = liveAud
			arrivals, liveLog := runLive(t, cfg, 4, 20)
			if rep := liveAud.Report(); !rep.Pass {
				t.Fatalf("honest instrumented live run flagged: %v", rep.Findings)
			}

			plain := cfg
			plain.Recorder = nil
			plain.Audit = nil
			logPlain, _, err := Replay(plain, arrivals)
			if err != nil {
				t.Fatal(err)
			}
			audited := cfg
			replayAud := audit.New(audit.Config{Timing: true})
			audited.Audit = replayAud
			logAudited, _, err := Replay(audited, arrivals)
			if err != nil {
				t.Fatal(err)
			}

			lb, pb, ab := liveLog.Bytes(), logPlain.Bytes(), logAudited.Bytes()
			if !bytes.Equal(lb, pb) {
				t.Fatalf("audited live run and plain replay diverge at %d partitions: %d vs %d bytes",
					parts, len(lb), len(pb))
			}
			if !bytes.Equal(pb, ab) {
				t.Fatalf("plain and audited replays diverge at %d partitions: %d vs %d bytes",
					parts, len(pb), len(ab))
			}
			if rep := replayAud.Report(); !rep.Pass {
				t.Fatalf("honest audited replay flagged: %v", rep.Findings)
			}
		})
	}
}

// findingsHave reports whether any finding names the given test.
func findingsHave(findings []string, name string) bool {
	for _, f := range findings {
		if strings.Contains(f, name) {
			return true
		}
	}
	return false
}

// TestAuditFlagsDropDummies asserts the suppressed-padding negative
// control trips the round-shape test from wire evidence alone: the
// leaky scheduler's own counters still claim full rounds, but the
// recorded trace shows short ones.
func TestAuditFlagsDropDummies(t *testing.T) {
	cfg := testConfig(4)
	aud := audit.New(audit.Config{Timing: true})
	cfg.Audit = aud
	cfg.Leak = audit.LeakDropDummies
	runLive(t, cfg, 4, 40)
	rep := aud.Report()
	if rep.Pass {
		t.Fatal("drop-dummies leak passed the audit")
	}
	if !findingsHave(rep.Findings, "round_shape") {
		t.Fatalf("drop-dummies leak not flagged as round_shape: %v", rep.Findings)
	}
	if !aud.Failed() {
		t.Error("online check never latched on a structural leak")
	}
	if rep.Violations("round_shape") == 0 {
		t.Error("no round_shape violations recorded")
	}
}

// TestAuditFlagsBiasLeaf asserts the biased-remap negative control trips
// the leaf-uniformity test: halving the leaf range concentrates the
// physical access distribution in half the bins, which the chi-square
// statistic catches within a few thousand accesses.
func TestAuditFlagsBiasLeaf(t *testing.T) {
	cfg := testConfig(4)
	aud := audit.New(audit.Config{Timing: true})
	cfg.Audit = aud
	cfg.Leak = audit.LeakBiasLeaf
	runLive(t, cfg, 4, 40)
	rep := aud.Report()
	if rep.Pass {
		t.Fatal("bias-leaf leak passed the audit")
	}
	if !findingsHave(rep.Findings, "leaf_uniformity") {
		t.Fatalf("bias-leaf leak not flagged as leaf_uniformity: %v", rep.Findings)
	}
}
