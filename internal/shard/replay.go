package shard

import (
	"encoding/binary"
	"fmt"
)

// Arrival is one admitted request in a recorded run: its global admission
// sequence number, what it asked for, and the scheduling round it became
// available to (the round the dispatcher was forming when it arrived).
// Payloads are deliberately absent: an ORAM's access pattern is
// independent of block contents, so the log carries only addresses.
type Arrival struct {
	Seq   uint64
	Index uint64
	Write bool
	Round uint64
}

// PathRec is one physical path access in the canonical global sequence:
// which round and partition issued it, the tree leaf it touched, the
// simulated start cycle, and the access kind. The (Round, Part) pair
// orders records across partitions; within a pair, controller issue order.
type PathRec struct {
	Round uint64
	Part  int
	Leaf  uint64
	Start uint64
	Kind  uint8
}

// RoundShape is the per-(round, partition) access accounting: how many
// demand and dummy slot accesses the partition issued, and the round kind
// (demand, flush, or flush padding). Demand shapes obey
// Real+Dummy == RoundSlots — the scheduler's obliviousness contract.
type RoundShape struct {
	Round uint64
	Part  int
	Kind  uint8
	Real  int
	Dummy int
}

// Log is the canonical global access sequence of a sharded run. Two runs
// with the same configuration, seed, and arrival log produce Logs whose
// Bytes() are identical.
type Log struct {
	Shapes []RoundShape
	Paths  []PathRec
}

// logMagic versions the encoding; bump it when the record layout changes.
const logMagic = "proram-shard-log\x01"

// Bytes returns a deterministic binary encoding of the log: magic, record
// counts, then fixed-width little-endian records in committed order. This
// is the byte string the replay determinism test compares.
func (l *Log) Bytes() []byte {
	buf := make([]byte, 0, len(logMagic)+16+len(l.Shapes)*26+len(l.Paths)*29)
	buf = append(buf, logMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(l.Shapes)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(l.Paths)))
	for _, s := range l.Shapes {
		buf = binary.LittleEndian.AppendUint64(buf, s.Round)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Part))
		buf = append(buf, s.Kind)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Real))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Dummy))
	}
	for _, p := range l.Paths {
		buf = binary.LittleEndian.AppendUint64(buf, p.Round)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p.Part))
		buf = binary.LittleEndian.AppendUint64(buf, p.Leaf)
		buf = binary.LittleEndian.AppendUint64(buf, p.Start)
		buf = append(buf, p.Kind)
	}
	return buf
}

// Replay re-executes a recorded arrival log against a fresh frontend and
// returns the canonical access sequence it produced. The rounds are
// reformed exactly as the original run formed them: arrivals join the
// queues at their recorded round, leftovers carry over by the same
// deterministic budget rules, and records commit in (round, partition)
// order — so under the same Config and seed, two Replays (and the
// recording run itself) yield byte-identical Logs, partition concurrency
// notwithstanding.
func Replay(cfg Config, arrivals []Arrival) (*Log, Stats, error) {
	cfg.RecordAccesses = true
	cfg.RecordArrivals = false
	cfg.Recorder = nil
	f, err := build(cfg, true)
	if err != nil {
		return nil, Stats{}, err
	}
	defer f.stopWorkers()
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i].Round < arrivals[i-1].Round {
			return nil, Stats{}, fmt.Errorf("shard: arrival log out of order at entry %d", i)
		}
	}
	i := 0
	var round uint64
	for i < len(arrivals) || f.pending > 0 {
		if f.pending == 0 && arrivals[i].Round > round {
			// The recorded run was idle here; skip to the next busy round.
			round = arrivals[i].Round
		}
		for i < len(arrivals) && arrivals[i].Round <= round {
			a := arrivals[i]
			if err := f.replayEnqueue(a); err != nil {
				return nil, Stats{}, err
			}
			i++
		}
		f.mu.Lock()
		_, take := f.snapshotLocked()
		f.nextRound = round + 1
		f.mu.Unlock()
		f.runRound(round, take)
		round++
	}
	return f.log, f.snap.clone(), nil
}

// replayEnqueue routes one recorded arrival without touching sequence or
// arrival bookkeeping (the log already fixed both). Write payloads are
// zero blocks: contents don't influence the access pattern.
func (f *Frontend) replayEnqueue(a Arrival) error {
	if a.Index >= f.cfg.Blocks {
		return fmt.Errorf("shard: arrival %d index %d out of range (%d blocks)", a.Seq, a.Index, f.cfg.Blocks)
	}
	req := &request{seq: a.Seq, index: a.Index, write: a.Write, arr: a.Round, resp: make(chan response, 1)}
	part := f.pmap.Lookup(a.Index)
	f.queues[part] = append(f.queues[part], req)
	f.pending++
	return nil
}
