package shard

import (
	"fmt"

	"proram/internal/dram/banked"
	"proram/internal/oram"
)

// PartitionStats is one partition's cumulative accounting.
type PartitionStats struct {
	// Reads and Writes are the logical requests this partition served;
	// CacheHits the subset answered without an ORAM access.
	Reads, Writes uint64
	CacheHits     uint64
	// RealAccesses and DummyAccesses are demand-round slot accesses
	// (demand reads plus eviction write-backs, and padding respectively);
	// together they always total rounds × RoundSlots.
	RealAccesses  uint64
	DummyAccesses uint64
	// FlushAccesses and FlushPad are flush-round write-backs and the
	// padding equalizing them across partitions.
	FlushAccesses uint64
	FlushPad      uint64
	// RequestErrors counts requests answered with an error.
	RequestErrors uint64
	// LocalBlocks is the number of local slots assigned so far.
	LocalBlocks uint64
	// StashSize is the partition stash occupancy at the last round barrier.
	StashSize int
	// ORAM is the partition controller's own statistics.
	ORAM oram.Stats
}

// Stats is the frontend-wide snapshot the dispatcher rebuilds at every
// round barrier.
type Stats struct {
	// Rounds and FlushRounds count completed scheduling rounds by kind.
	Rounds      uint64
	FlushRounds uint64
	// RoundSlots echoes the configured fixed per-partition access count.
	RoundSlots int
	// Reads, Writes, CacheHits aggregate the partition totals.
	Reads, Writes uint64
	CacheHits     uint64
	// RealAccesses/DummyAccesses/FlushAccesses/FlushPad aggregate the
	// partition slot accounting.
	RealAccesses  uint64
	DummyAccesses uint64
	FlushAccesses uint64
	FlushPad      uint64
	// Carryovers counts requests that missed their round's budget and were
	// requeued.
	Carryovers uint64
	// RequestErrors aggregates failed requests.
	RequestErrors uint64
	// Cycles is the maximum partition clock: the run's simulated makespan.
	Cycles uint64
	// Banked carries the shared banked device's row-buffer and channel
	// statistics when the frontend arbitrates onto one (BankedActive set).
	Banked       banked.Stats
	BankedActive bool
	// Partitions holds the per-partition breakdown, indexed by partition.
	Partitions []PartitionStats
}

// clone returns a deep copy (the snapshot is handed to callers that must
// not alias the dispatcher's slice).
func (s Stats) clone() Stats {
	c := s
	c.Partitions = append([]PartitionStats(nil), s.Partitions...)
	return c
}

// FillRatio is the useful fraction of demand-round bandwidth: real
// accesses over all slot accesses. Low fill means the workload (or the
// partitioning) left padding to do the talking.
func (s Stats) FillRatio() float64 {
	t := s.RealAccesses + s.DummyAccesses
	if t == 0 {
		return 0
	}
	return float64(s.RealAccesses) / float64(t)
}

// Validate checks the scheduler's accounting identities:
//
//	per partition: RealAccesses+DummyAccesses == Rounds×RoundSlots
//	across partitions: FlushAccesses+FlushPad all equal
//
// The first is the obliviousness contract (every partition issues the
// fixed count every demand round); the second says flush rounds were
// padded to a common length.
func (s Stats) Validate() error {
	want := s.Rounds * uint64(s.RoundSlots)
	var flushLen uint64
	for i, p := range s.Partitions {
		if got := p.RealAccesses + p.DummyAccesses; got != want {
			return fmt.Errorf("partition %d issued %d demand-round accesses over %d rounds, contract is %d",
				i, got, s.Rounds, want)
		}
		fl := p.FlushAccesses + p.FlushPad
		if i == 0 {
			flushLen = fl
		} else if fl != flushLen {
			return fmt.Errorf("partition %d flush length %d differs from partition 0's %d", i, fl, flushLen)
		}
	}
	return nil
}
