// Package shard is the partitioned ORAM frontend: it splits one logical
// block address space across P independent Path ORAM controllers (each
// with its own tree, stash, recursive position map and PrORAM prefetcher)
// and serves concurrent clients through a batching request scheduler whose
// observable behaviour is independent of the request mix.
//
// The design follows the partition architecture of Stefanov et al.,
// "Towards Practical Oblivious RAM": many small ORAMs are cheaper to
// operate than one large one, and they can run in parallel. PrORAM's
// dynamic super block prefetcher runs unchanged inside every partition.
//
// # Routing
//
// A block is routed by a seeded keyed hash to one of G indirection groups,
// and a tiny group→partition table maps the group to its partition. The
// table is read with a fixed-length branchless scan (every lookup touches
// every entry), so the lookup itself is oblivious; the table exists so a
// later background shuffler can re-home whole groups without changing the
// hash. Within a partition, global block indices get dense local slots in
// first-touch order, which preserves temporal adjacency — the locality the
// per-partition prefetcher feeds on.
//
// # Scheduling and obliviousness
//
// Requests from any number of goroutines enter per-partition FIFO queues.
// A single dispatcher forms scheduling rounds: each round, every partition
// executes exactly RoundSlots full recursive ORAM accesses — demand
// accesses for queued requests, then dummy accesses (reads of uniformly
// random local blocks) up to the fixed count. Requests whose block already
// sits in the partition's client-side cache are served without consuming a
// slot (on-chip work is invisible to the adversary), which is also how
// duplicate requests in one round coalesce. Requests that do not fit in
// the round's budget carry over to the next round. The adversary therefore
// sees every partition perform the same number of indistinguishable
// accesses every round, whatever the request skew; within a slot, the path
// count still varies with PLB and stash behaviour, the same declared
// recursion-level leak as the unified controller (DESIGN.md §10).
//
// # Determinism and replay
//
// Every run records (optionally) its arrival log: the admission order of
// requests and the round each was admitted to. Under a fixed seed, the
// global physical access sequence — every (round, partition, leaf, kind)
// tuple, committed in (round, partition) order — is a pure function of
// that log, even though partitions execute concurrently: each partition's
// controller consumes only its own deterministic slot stream, and the
// round barrier resynchronizes the simulated clocks. Replay re-runs an
// arrival log and returns the canonical byte encoding of the sequence;
// two replays of the same log and seed are byte-for-byte identical, which
// is what keeps proram-vet's determinism discipline and the obs
// byte-stable dumps meaningful on concurrent code.
package shard
