package shard

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"proram/internal/dram/banked"
	"proram/internal/obs"
	"proram/internal/obs/audit"
	"proram/internal/oram"
	"proram/internal/rng"
	"proram/internal/seal"
)

// ErrClosed is returned for requests admitted after Close.
var ErrClosed = errors.New("shard: frontend closed")

// Config describes a sharded ORAM frontend. The public proram package
// derives one from its own Config; tests construct it directly.
type Config struct {
	// Partitions is the number of independent Path ORAM shards (P).
	Partitions int
	// RoundSlots is the fixed ORAM access count every partition issues per
	// scheduling round (R). Must be at least MaxSuperBlock+2 so one demand
	// request — its access, its installs' dirty evictions — always fits.
	RoundSlots int
	// Groups sizes the routing indirection table; 0 picks a default.
	Groups int
	// Blocks is the global logical capacity; BlockBytes the block size.
	Blocks     uint64
	BlockBytes int
	// CacheBlocks is the total client-side cache budget, split evenly
	// across partitions (16 per partition minimum).
	CacheBlocks int
	// MaxSuperBlock bounds the per-partition prefetcher's super block size
	// and with it the worst-case accesses one request can cost.
	MaxSuperBlock int
	// Key seals payloads at rest (16/24/32-byte AES key, required).
	Key []byte
	// Seed drives every random choice: routing hash, per-partition ORAM
	// randomness, dummy-address draws, and sealing nonces.
	Seed uint64
	// ORAM is the per-partition controller template; NumBlocks, BlockBytes,
	// Seed and RecordTrace are overridden per partition.
	ORAM oram.Config
	// Banked, when non-nil, makes every partition contend for ONE shared
	// banked device instead of each owning a flat channel: partition trees
	// lay out at channel-aligned offsets of the same physical device, and
	// each round's accesses are arbitrated onto it at the round barrier in
	// canonical (slot, partition) order, so the contended timing is
	// deterministic no matter how the worker goroutines raced. Workers run
	// rounds on provisional private clocks; the barrier installs the
	// contended times. (The per-partition ORAM template's own Banked field
	// is ignored here — a private banked device per partition would dodge
	// exactly the contention this models.)
	Banked *banked.Config
	// RecordArrivals keeps the admission log needed to Replay a run.
	RecordArrivals bool
	// RecordAccesses keeps the canonical global access sequence (Log).
	RecordAccesses bool
	// Recorder, when non-nil, receives scheduler metrics. It must be
	// dedicated to this frontend or otherwise only touched between rounds:
	// all emissions happen on the dispatcher goroutine.
	Recorder *obs.Recorder
	// Audit, when non-nil, receives the wire-observable streams — per-slot
	// trace marks, arbitrated physical accesses, latency spans — at every
	// commit barrier. The frontend Binds it to its own shape; like the
	// Recorder it must be dedicated to this frontend (all feeds happen on
	// the round driver). Setting it forces per-round trace recording.
	Audit *audit.Auditor
	// Leak arms a test-only negative control (see audit.Leak). Never set
	// it outside auditor validation: it deliberately breaks obliviousness.
	Leak audit.Leak
}

// normalize fills defaults and validates.
func (c Config) normalize() (Config, error) {
	if c.Partitions < 1 {
		return c, fmt.Errorf("shard: Partitions %d must be >= 1", c.Partitions)
	}
	if c.Blocks < uint64(2*c.Partitions) {
		return c, fmt.Errorf("shard: Blocks %d too small for %d partitions", c.Blocks, c.Partitions)
	}
	if c.BlockBytes <= 0 {
		return c, fmt.Errorf("shard: BlockBytes %d must be positive", c.BlockBytes)
	}
	if c.MaxSuperBlock < 1 {
		c.MaxSuperBlock = 1
	}
	maxCost := c.MaxSuperBlock + 1
	if c.RoundSlots == 0 {
		c.RoundSlots = 2 * maxCost
	}
	if c.RoundSlots < maxCost+1 {
		return c, fmt.Errorf("shard: RoundSlots %d cannot fit one request (max cost %d) plus padding headroom",
			c.RoundSlots, maxCost)
	}
	if c.CacheBlocks < 16*c.Partitions {
		c.CacheBlocks = 16 * c.Partitions
	}
	if len(c.Key) == 0 {
		return c, errors.New("shard: Key required (the public frontend derives one)")
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Banked != nil {
		if err := c.Banked.Validate(); err != nil {
			return c, err
		}
	}
	return c, nil
}

// Frontend is the partitioned ORAM: concurrent-safe Read/Write served by
// per-partition worker goroutines under a single round-forming dispatcher.
type Frontend struct {
	cfg   Config
	pmap  *PartitionMap
	parts []*partition
	// dev is the shared banked device all partitions contend for (nil in
	// flat mode). Only the round driver touches it, at the commit barrier.
	dev *banked.Shared

	// results is the shared round barrier: every worker reports here and
	// the round driver collects exactly one result per partition.
	results chan roundResult

	mu           sync.Mutex
	cond         *sync.Cond
	queues       [][]*request
	pending      int
	nextSeq      uint64
	nextRound    uint64
	arrivals     []Arrival
	flushWaiters []chan error
	closed       bool
	snap         Stats
	log          *Log

	met    *metrics
	manual bool // replay mode: the caller drives rounds, no dispatcher
	done   chan struct{}

	// floors maps a round number to the clock floor it started from, for
	// queueing-delay spans. Only the round driver touches it, at commit
	// barriers; entries are pruned a fixed horizon behind the commit.
	floors map[uint64]uint64
}

// New builds a frontend and starts its dispatcher and workers. Callers
// must Close it to stop the goroutines.
func New(cfg Config) (*Frontend, error) {
	f, err := build(cfg, false)
	if err != nil {
		return nil, err
	}
	go f.dispatch()
	return f, nil
}

// build assembles partitions and workers. With manual set, no dispatcher
// runs and the caller drives rounds directly (replay mode).
func build(cfg Config, manual bool) (*Frontend, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	pmap, err := NewPartitionMap(cfg.Partitions, cfg.Groups, mix(cfg.Seed, 0x726f757465))
	if err != nil {
		return nil, err
	}
	f := &Frontend{
		cfg:     cfg,
		pmap:    pmap,
		parts:   make([]*partition, cfg.Partitions),
		results: make(chan roundResult, cfg.Partitions),
		queues:  make([][]*request, cfg.Partitions),
		manual:  manual,
		done:    make(chan struct{}),
		floors:  make(map[uint64]uint64),
	}
	f.cond = sync.NewCond(&f.mu)
	if cfg.RecordAccesses {
		f.log = &Log{}
	}
	f.met = newMetrics(cfg.Recorder, cfg.Partitions)

	p64 := uint64(cfg.Partitions)
	// Headroom over the expected Blocks/P load: the keyed hash spreads
	// groups, not blocks, so partitions see binomial load plus whole-group
	// granularity. A 25% margin plus a constant floor keeps the overflow
	// probability negligible at any practical scale.
	localBlocks := cfg.Blocks/p64 + cfg.Blocks/(4*p64) + 64
	cacheBlocks := cfg.CacheBlocks / cfg.Partitions
	if cacheBlocks < 16 {
		cacheBlocks = 16
	}
	// Shared-device arbitration replays each round's access sequence at the
	// barrier, and the auditor tests the observed trace — both need the
	// per-round traces even when the caller didn't ask for the access log.
	record := cfg.RecordAccesses || cfg.Banked != nil || cfg.Audit != nil
	lat := cfg.Audit != nil || cfg.Recorder.Enabled()
	for i := range f.parts {
		seedP := mix(cfg.Seed, 0x70617274<<8|uint64(i))
		ocfg := cfg.ORAM
		ocfg.NumBlocks = localBlocks
		ocfg.BlockBytes = cfg.BlockBytes
		ocfg.Seed = mix(seedP, 1)
		ocfg.RecordTrace = record
		ocfg.LeakBiasLeaf = cfg.Leak == audit.LeakBiasLeaf
		// Workers run on provisional flat clocks; the shared device (below)
		// owns the banked timing, so partitions never build private ones.
		ocfg.Banked = nil
		ctrl, err := oram.New(ocfg)
		if err != nil {
			return nil, fmt.Errorf("shard: partition %d: %w", i, err)
		}
		sealer, err := seal.New(cfg.Key, rng.NewReader(mix(seedP, 2)))
		if err != nil {
			return nil, fmt.Errorf("shard: partition %d: %w", i, err)
		}
		p := &partition{
			id:          i,
			localBlocks: localBlocks,
			cacheBlocks: cacheBlocks,
			roundSlots:  cfg.RoundSlots,
			maxCost:     cfg.MaxSuperBlock + 1,
			record:      record,
			markSlots:   cfg.Audit != nil,
			lat:         lat,
			dropDummies: cfg.Leak == audit.LeakDropDummies,
			store:       NewStore(ctrl, sealer, cfg.BlockBytes),
			dummyRnd:    rng.New(mix(seedP, 3)),
			local:       make(map[uint64]uint64),
			cache:       make(map[uint64]*list.Element),
			lru:         list.New(),
			work:        make(chan roundWork),
			results:     f.results,
		}
		ctrl.SetProber(p)
		f.parts[i] = p
		go p.run()
	}
	if cfg.Audit != nil {
		if err := cfg.Audit.Bind(cfg.Partitions, f.parts[0].store.Ctrl.Leaves(), cfg.RoundSlots); err != nil {
			return nil, err
		}
	}
	if cfg.Banked != nil {
		ctrl0 := f.parts[0].store.Ctrl
		dev, err := banked.NewShared(*cfg.Banked, cfg.Partitions,
			ctrl0.TreeLevels(), ctrl0.Config().Z, cfg.BlockBytes, ctrl0.Config().CryptoLatency)
		if err != nil {
			return nil, fmt.Errorf("shard: shared banked device: %w", err)
		}
		f.dev = dev
		if cfg.Recorder.Enabled() {
			// All device accesses happen at the commit barrier on the round
			// driver, the same goroutine that owns every other emission.
			dev.Model().Instrument(cfg.Recorder)
		}
	}
	return f, nil
}

// Read returns a copy of the block's contents. Safe for concurrent use.
func (f *Frontend) Read(index uint64) ([]byte, error) {
	ch, err := f.enqueue(index, false, nil)
	if err != nil {
		return nil, err
	}
	r := <-ch
	return r.data, r.err
}

// Write stores data (zero-padded to a full block). Safe for concurrent use.
func (f *Frontend) Write(index uint64, data []byte) error {
	ch, err := f.enqueue(index, true, data)
	if err != nil {
		return err
	}
	return (<-ch).err
}

// enqueue admits one request: sequence number, arrival record, and the
// routed partition queue, all under one lock so the admission order is a
// total order the replay can reproduce.
func (f *Frontend) enqueue(index uint64, write bool, data []byte) (chan response, error) {
	if index >= f.cfg.Blocks {
		return nil, fmt.Errorf("shard: index %d out of range (%d blocks)", index, f.cfg.Blocks)
	}
	if write && len(data) > f.cfg.BlockBytes {
		return nil, fmt.Errorf("shard: write of %d bytes exceeds block size %d", len(data), f.cfg.BlockBytes)
	}
	part := f.pmap.Lookup(index)
	req := &request{index: index, write: write, resp: make(chan response, 1)}
	if write {
		req.data = append([]byte(nil), data...)
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, ErrClosed
	}
	req.seq = f.nextSeq
	f.nextSeq++
	req.arr = f.nextRound
	if f.cfg.RecordArrivals {
		f.arrivals = append(f.arrivals, Arrival{Seq: req.seq, Index: index, Write: write, Round: f.nextRound})
	}
	f.queues[part] = append(f.queues[part], req)
	f.pending++
	f.cond.Signal()
	f.mu.Unlock()
	return req.resp, nil
}

// Flush writes every dirty cached block back through the ORAMs, padded so
// all partitions perform the same number of accesses. It waits for the
// queues to drain first, so it only terminates once admission pauses.
func (f *Frontend) Flush() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	if f.manual {
		f.mu.Unlock()
		return errors.New("shard: Flush unavailable in replay mode")
	}
	ch := make(chan error, 1)
	f.flushWaiters = append(f.flushWaiters, ch)
	f.cond.Signal()
	f.mu.Unlock()
	return <-ch
}

// Close drains queued requests, answers pending flushes, and stops the
// dispatcher and workers. Requests admitted after Close fail with
// ErrClosed. Safe to call once.
func (f *Frontend) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		<-f.done
		return nil
	}
	f.closed = true
	f.cond.Broadcast()
	f.mu.Unlock()
	<-f.done
	return nil
}

// Stats returns the dispatcher's post-round snapshot. Safe for concurrent
// use; it never touches live worker state.
func (f *Frontend) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.snap.clone()
}

// Arrivals returns a copy of the recorded admission log.
func (f *Frontend) Arrivals() []Arrival {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Arrival(nil), f.arrivals...)
}

// Recorder returns the frontend's obs recorder (nil when none was
// configured); callers use it to finalize metrics and trace outputs.
func (f *Frontend) Recorder() *obs.Recorder {
	return f.cfg.Recorder
}

// AccessLog returns the recorded global access sequence. Call it after
// Close (or between rounds); the returned log is the live one, not a copy.
func (f *Frontend) AccessLog() *Log {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.log
}

// dispatch is the round-forming loop: snapshot the queues into a round
// whenever work is pending, run flushes when asked, exit when closed and
// drained.
func (f *Frontend) dispatch() {
	defer close(f.done)
	for {
		f.mu.Lock()
		for !f.closed && f.pending == 0 && len(f.flushWaiters) == 0 {
			f.cond.Wait()
		}
		if f.pending > 0 {
			round, take := f.snapshotLocked()
			f.mu.Unlock()
			f.runRound(round, take)
			continue
		}
		waiters := f.flushWaiters
		f.flushWaiters = nil
		closed := f.closed
		f.mu.Unlock()
		if len(waiters) > 0 {
			err := f.runFlush()
			for _, ch := range waiters {
				ch <- err
			}
			continue
		}
		if closed {
			f.stopWorkers()
			return
		}
	}
}

// snapshotLocked claims the next round number and takes every queued
// request. Arrivals admitted from here on are tagged with the next round.
func (f *Frontend) snapshotLocked() (uint64, [][]*request) {
	round := f.nextRound
	f.nextRound++
	take := make([][]*request, len(f.parts))
	for i := range f.queues {
		take[i] = f.queues[i]
		f.queues[i] = nil
	}
	f.pending = 0
	return round, take
}

// clockFloor returns the maximum partition clock: the round barrier's
// synchronization point. Safe between rounds only.
func (f *Frontend) clockFloor() uint64 {
	var floor uint64
	for _, p := range f.parts {
		if p.store.Now > floor {
			floor = p.store.Now
		}
	}
	return floor
}

// runRound executes one demand round on every partition and commits the
// results. Called with no round in flight (dispatcher or replay driver).
func (f *Frontend) runRound(round uint64, take [][]*request) {
	floor := f.clockFloor()
	for i, p := range f.parts {
		p.work <- roundWork{kind: roundDemand, round: round, start: floor, reqs: take[i]}
	}
	byPart := f.collect()
	f.commit(round, roundDemand, floor, byPart)
}

// runFlush executes one flush round: every partition writes its dirty
// lines back, then a pad sub-round equalizes the access counts so the
// flush's observable length is the cross-partition maximum for all.
func (f *Frontend) runFlush() error {
	f.mu.Lock()
	round := f.nextRound
	f.nextRound++
	f.mu.Unlock()
	floor := f.clockFloor()
	for _, p := range f.parts {
		p.work <- roundWork{kind: roundFlush, round: round, start: floor}
	}
	flushed := f.collect()
	f.commit(round, roundFlush, floor, flushed)
	longest := 0
	failures := 0
	for _, r := range flushed {
		if r.real > longest {
			longest = r.real
		}
		failures += r.errors
	}
	floor = f.clockFloor()
	for i, p := range f.parts {
		p.work <- roundWork{kind: roundPad, round: round, start: floor, padTo: longest - flushed[i].real}
	}
	f.commit(round, roundPad, floor, f.collect())
	if failures > 0 {
		return fmt.Errorf("shard: flush failed to write back %d blocks", failures)
	}
	return nil
}

// collect gathers one result per partition from the shared barrier
// channel, in partition order regardless of completion order.
func (f *Frontend) collect() []roundResult {
	byPart := make([]roundResult, len(f.parts))
	for range f.parts {
		//proram:detround one result arrives per partition per round and byPart reindexes them into partition order, so completion order never escapes
		r := <-f.results
		byPart[r.part] = r
	}
	return byPart
}

// commit publishes a completed round: shared-device arbitration, access-log
// records in (round, partition) order, leftover requeueing, the stats
// snapshot, and obs emissions. Runs on the round driver with all workers
// idle, which is what makes the worker-state reads and clock writes
// race-free.
func (f *Frontend) commit(round uint64, kind roundKind, floor uint64, byPart []roundResult) {
	f.mu.Lock()
	if f.dev != nil {
		f.arbitrate(floor, byPart)
	}
	leftovers := 0
	for i, r := range byPart {
		if len(r.leftovers) > 0 {
			f.queues[i] = append(append([]*request(nil), r.leftovers...), f.queues[i]...)
			f.pending += len(r.leftovers)
			leftovers += len(r.leftovers)
		}
	}
	if f.log != nil {
		for _, r := range byPart {
			f.log.Shapes = append(f.log.Shapes, RoundShape{
				Round: round, Part: r.part, Kind: uint8(kind),
				Real: r.real, Dummy: r.dummy,
			})
			for _, ev := range r.trace {
				f.log.Paths = append(f.log.Paths, PathRec{
					Round: round, Part: r.part,
					Leaf: uint64(ev.Leaf), Start: ev.Start, Kind: uint8(ev.Kind),
				})
			}
		}
	}
	f.snap = f.computeStats(kind, leftovers)
	pending := f.pending
	f.mu.Unlock()
	// Latency spans and the audit feed run after arbitration so start
	// cycles are the contended ones the wire would show. Both touch only
	// round-driver-owned state (floors, auditor, recorder).
	if _, ok := f.floors[round]; !ok {
		f.floors[round] = floor
	}
	if round >= floorHorizon {
		delete(f.floors, round-floorHorizon)
	}
	var sp []spans
	if kind == roundDemand && (f.cfg.Audit != nil || f.met != nil) {
		sp = f.roundSpans(floor, byPart)
	}
	f.feedAudit(round, kind, byPart, sp)
	f.met.onRound(f, kind, byPart, sp, leftovers, pending)
}

// arbitrate schedules the round's recorded accesses onto the shared banked
// device, slot-major across partitions from the round's clock floor, then
// installs the contended times: each trace event's provisional start is
// rewritten to its arbitrated issue cycle (before the log sees it), and
// each partition's clock — store and controller — moves to its last
// access's data-ready time. Callers hold mu with all workers idle.
func (f *Frontend) arbitrate(floor uint64, byPart []roundResult) {
	lanes := make([][]uint64, len(f.parts))
	for _, r := range byPart {
		lane := make([]uint64, len(r.trace))
		for j, ev := range r.trace {
			lane[j] = uint64(ev.Leaf)
		}
		lanes[r.part] = lane
	}
	starts, ready := f.dev.CommitRound(floor, lanes)
	for i := range byPart {
		r := &byPart[i]
		for j := range r.trace {
			r.trace[j].Start = starts[r.part][j]
		}
		p := f.parts[r.part]
		p.store.Now = ready[r.part]
		p.store.Ctrl.AlignClock(ready[r.part])
	}
}

// computeStats rebuilds the stats snapshot from worker state. Callers
// hold mu and run at the round barrier.
func (f *Frontend) computeStats(kind roundKind, leftovers int) Stats {
	s := f.snap
	switch kind {
	case roundDemand:
		s.Rounds++
	case roundFlush:
		s.FlushRounds++
	}
	s.Carryovers += uint64(leftovers)
	s.RoundSlots = f.cfg.RoundSlots
	s.Reads, s.Writes, s.CacheHits = 0, 0, 0
	s.RealAccesses, s.DummyAccesses = 0, 0
	s.FlushAccesses, s.FlushPad = 0, 0
	s.RequestErrors = 0
	s.Cycles = 0
	s.Partitions = make([]PartitionStats, len(f.parts))
	for i, p := range f.parts {
		ps := PartitionStats{
			Reads: p.reads, Writes: p.writes, CacheHits: p.cacheHits,
			RealAccesses: p.realAccesses, DummyAccesses: p.dummyAccesses,
			FlushAccesses: p.flushAccesses, FlushPad: p.flushPad,
			RequestErrors: p.requestErrors,
			LocalBlocks:   p.nextLocal,
			StashSize:     p.store.Ctrl.StashSize(),
			ORAM:          p.store.Ctrl.Stats(),
		}
		s.Partitions[i] = ps
		s.Reads += ps.Reads
		s.Writes += ps.Writes
		s.CacheHits += ps.CacheHits
		s.RealAccesses += ps.RealAccesses
		s.DummyAccesses += ps.DummyAccesses
		s.FlushAccesses += ps.FlushAccesses
		s.FlushPad += ps.FlushPad
		s.RequestErrors += ps.RequestErrors
		if p.store.Now > s.Cycles {
			s.Cycles = p.store.Now
		}
	}
	if f.dev != nil {
		s.Banked = f.dev.Model().Stats()
		s.BankedActive = true
	}
	return s
}

// stopWorkers closes the work channels and lets the workers exit.
func (f *Frontend) stopWorkers() {
	for _, p := range f.parts {
		close(p.work)
	}
}
