package shard

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"proram/internal/dram/banked"
	"proram/internal/oram"
	"proram/internal/rng"
	"proram/internal/superblock"
)

// testKey is a fixed AES-128 key; tests never exercise key derivation.
var testKey = []byte("0123456789abcdef")

// testConfig is a small sharded frontend: 4096 blocks, dynamic prefetcher
// with 2-block super blocks, default RoundSlots (6).
func testConfig(parts int) Config {
	o := oram.DefaultConfig()
	o.OnChipEntries = 256
	o.PLBBlocks = 32
	sb := superblock.DefaultConfig()
	sb.MaxSize = 2
	o.Super = sb
	return Config{
		Partitions:    parts,
		Blocks:        1 << 12,
		BlockBytes:    64,
		CacheBlocks:   64 * parts,
		MaxSuperBlock: sb.MaxSize,
		Key:           testKey,
		Seed:          7,
		ORAM:          o,
	}
}

// runLive drives clients concurrent goroutines of ops requests each
// against a recording frontend and returns the arrival log and the live
// access log.
func runLive(t *testing.T, cfg Config, clients, ops int) ([]Arrival, *Log) {
	t.Helper()
	cfg.RecordArrivals = true
	cfg.RecordAccesses = true
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rng.New(uint64(1000 + c))
			for i := 0; i < ops; i++ {
				idx := r.Uint64n(cfg.Blocks / 4) // shared hot range: collisions and coalescing
				if r.Bool() {
					if err := f.Write(idx, []byte{byte(c), byte(i)}); err != nil {
						t.Errorf("client %d write: %v", c, err)
						return
					}
				} else {
					if _, err := f.Read(idx); err != nil {
						t.Errorf("client %d read: %v", c, err)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	arrivals := f.Arrivals()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return arrivals, f.AccessLog()
}

// TestReplayByteIdentity is the acceptance-criteria test: with 8
// partitions and 8 concurrent clients, the live global access sequence and
// two independent replays of its arrival log are byte-for-byte identical.
func TestReplayByteIdentity(t *testing.T) {
	cfg := testConfig(8)
	arrivals, liveLog := runLive(t, cfg, 8, 40)
	if len(arrivals) != 8*40 {
		t.Fatalf("recorded %d arrivals, want %d", len(arrivals), 8*40)
	}

	log1, stats1, err := Replay(cfg, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	log2, stats2, err := Replay(cfg, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := log1.Bytes(), log2.Bytes()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("two replays of the same arrival log diverge: %d vs %d bytes", len(b1), len(b2))
	}
	if !bytes.Equal(liveLog.Bytes(), b1) {
		t.Fatalf("live run and replay diverge: live %d bytes (%d paths), replay %d bytes (%d paths)",
			len(liveLog.Bytes()), len(liveLog.Paths), len(b1), len(log1.Paths))
	}
	if len(log1.Paths) == 0 || len(log1.Shapes) == 0 {
		t.Fatal("replay recorded no accesses")
	}
	if err := stats1.Validate(); err != nil {
		t.Fatalf("replay stats: %v", err)
	}
	if stats1.Cycles != stats2.Cycles || stats1.RealAccesses != stats2.RealAccesses {
		t.Fatalf("replay stats diverge: %+v vs %+v", stats1, stats2)
	}
}

// TestReplayByteIdentityEdgePartitions backs the //proram:detround
// justification on Frontend.collect at the partition counts where the
// round barrier degenerates: a single partition (one receive per round,
// nothing to reorder) and non-power-of-two counts whose seeded
// partition maps distribute unevenly. Live run and two independent
// replays must stay byte-identical in every configuration.
func TestReplayByteIdentityEdgePartitions(t *testing.T) {
	for _, parts := range []int{1, 3, 5} {
		t.Run(fmt.Sprintf("parts=%d", parts), func(t *testing.T) {
			cfg := testConfig(parts)
			arrivals, liveLog := runLive(t, cfg, 4, 20)
			log1, stats1, err := Replay(cfg, arrivals)
			if err != nil {
				t.Fatal(err)
			}
			log2, stats2, err := Replay(cfg, arrivals)
			if err != nil {
				t.Fatal(err)
			}
			b1, b2 := log1.Bytes(), log2.Bytes()
			if !bytes.Equal(b1, b2) {
				t.Fatalf("two replays diverge at %d partitions: %d vs %d bytes", parts, len(b1), len(b2))
			}
			if !bytes.Equal(liveLog.Bytes(), b1) {
				t.Fatalf("live run and replay diverge at %d partitions: live %d paths, replay %d paths",
					parts, len(liveLog.Paths), len(log1.Paths))
			}
			if len(log1.Paths) == 0 || len(log1.Shapes) == 0 {
				t.Fatal("replay recorded no accesses")
			}
			if err := stats1.Validate(); err != nil {
				t.Fatalf("replay stats: %v", err)
			}
			if stats1.Cycles != stats2.Cycles || stats1.RealAccesses != stats2.RealAccesses {
				t.Fatalf("replay stats diverge: %+v vs %+v", stats1, stats2)
			}
		})
	}
}

// skewedArrivals builds an arrival log whose every request routes to one
// partition (via the same seeded map the frontend will use).
func skewedArrivals(t *testing.T, cfg Config, n int) []Arrival {
	t.Helper()
	norm, err := cfg.normalize()
	if err != nil {
		t.Fatal(err)
	}
	pmap, err := NewPartitionMap(norm.Partitions, norm.Groups, mix(norm.Seed, 0x726f757465))
	if err != nil {
		t.Fatal(err)
	}
	target := pmap.Lookup(0)
	arrivals := make([]Arrival, 0, n)
	seq := uint64(0)
	for idx := uint64(0); len(arrivals) < n && idx < cfg.Blocks; idx++ {
		if pmap.Lookup(idx) != target {
			continue
		}
		arrivals = append(arrivals, Arrival{Seq: seq, Index: idx, Write: seq%3 == 0, Round: 0})
		seq++
	}
	if len(arrivals) < n {
		t.Fatalf("found only %d blocks on partition %d", len(arrivals), target)
	}
	return arrivals
}

// uniformArrivals spreads n requests over the whole address space.
func uniformArrivals(cfg Config, n int) []Arrival {
	r := rng.New(99)
	arrivals := make([]Arrival, n)
	for i := range arrivals {
		arrivals[i] = Arrival{Seq: uint64(i), Index: r.Uint64n(cfg.Blocks), Write: i%2 == 0, Round: 0}
	}
	return arrivals
}

// TestRoundPaddingUnderSkew asserts the obliviousness contract: every
// demand round issues exactly RoundSlots accesses on every partition,
// whether the workload hammers one partition or spreads uniformly.
func TestRoundPaddingUnderSkew(t *testing.T) {
	cfg := testConfig(4)
	for _, tc := range []struct {
		name     string
		arrivals []Arrival
	}{
		{"all-one-partition", skewedArrivals(t, cfg, 64)},
		{"uniform", uniformArrivals(cfg, 64)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			log, stats, err := Replay(cfg, tc.arrivals)
			if err != nil {
				t.Fatal(err)
			}
			if err := stats.Validate(); err != nil {
				t.Fatal(err)
			}
			perRound := make(map[uint64]int)
			for _, s := range log.Shapes {
				if roundKind(s.Kind) != roundDemand {
					t.Fatalf("unexpected non-demand shape %+v in a flush-free run", s)
				}
				if got := s.Real + s.Dummy; got != stats.RoundSlots {
					t.Fatalf("round %d partition %d issued %d accesses, contract is %d",
						s.Round, s.Part, got, stats.RoundSlots)
				}
				perRound[s.Round]++
			}
			for r, n := range perRound {
				if n != cfg.Partitions {
					t.Fatalf("round %d has %d partition shapes, want %d", r, n, cfg.Partitions)
				}
			}
			if stats.Rounds == 0 {
				t.Fatal("no rounds ran")
			}
		})
	}
}

// TestCarryoverUnderSkew: a single-round burst at one partition exceeds
// its budget, so requests carry over across rounds yet all get served.
func TestCarryoverUnderSkew(t *testing.T) {
	cfg := testConfig(4)
	cfg.RoundSlots = 4 // maxCost is 3: one request per round fits
	arrivals := skewedArrivals(t, cfg, 32)
	_, stats, err := Replay(cfg, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Carryovers == 0 {
		t.Fatal("expected carryovers with a one-request round budget and a 32-request burst")
	}
	if got := stats.Reads + stats.Writes; got != 32 {
		t.Fatalf("served %d requests, want 32", got)
	}
	if err := stats.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFlushEqualizesPartitions: flush writes every dirty line back and
// pads all partitions to the same flush length.
func TestFlushEqualizesPartitions(t *testing.T) {
	cfg := testConfig(4)
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 64; i++ {
		if err := f.Write(i*17%cfg.Blocks, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	stats := f.Stats()
	if stats.FlushRounds != 1 {
		t.Fatalf("FlushRounds = %d, want 1", stats.FlushRounds)
	}
	if stats.FlushAccesses == 0 {
		t.Fatal("flush wrote nothing back despite dirty lines")
	}
	if err := stats.Validate(); err != nil {
		t.Fatal(err)
	}
	// Flushed data must survive: read back a sample.
	got, err := f.Read(17)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatalf("block 17 reads %d after flush, want 1", got[0])
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentConsistency: goroutines own disjoint address stripes,
// write then read back their own data under full concurrency. Run with
// -race this also proves the confinement story.
func TestConcurrentConsistency(t *testing.T) {
	cfg := testConfig(8)
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const clients, span = 8, 24
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			base := uint64(c) * span
			for i := uint64(0); i < span; i++ {
				want := []byte(fmt.Sprintf("c%d-%d", c, i))
				if err := f.Write(base+i, want); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				got, err := f.Read(base + i)
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if !bytes.Equal(got[:len(want)], want) {
					t.Errorf("client %d block %d: got %q, want %q", c, base+i, got[:len(want)], want)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(0); err != ErrClosed {
		t.Fatalf("read after close: %v, want ErrClosed", err)
	}
	if err := f.Stats().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreRoundtrip covers the shared seal-and-write-back helper: data
// written back comes back decrypted, absent blocks read as zeros, and the
// clock advances with every access.
func TestStoreRoundtrip(t *testing.T) {
	cfg := testConfig(1)
	f, err := build(cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	defer f.stopWorkers()
	st := f.parts[0].store
	if st.BlockBytes() != cfg.BlockBytes {
		t.Fatalf("BlockBytes = %d, want %d", st.BlockBytes(), cfg.BlockBytes)
	}
	zero, err := st.Load(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range zero {
		if b != 0 {
			t.Fatal("absent block did not read as zeros")
		}
	}
	data := make([]byte, cfg.BlockBytes)
	copy(data, "hello")
	if err := st.WriteBack(5, data); err != nil {
		t.Fatal(err)
	}
	if st.Now == 0 {
		t.Fatal("WriteBack did not advance the clock")
	}
	got, err := st.Load(5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("Load did not return the written payload")
	}
	// Sealing is unauthenticated CTR (integrity is out of scope, as in the
	// paper), so bit flips pass; structural damage must not.
	st.Sealed[5] = st.Sealed[5][:4]
	if _, err := st.Load(5); err == nil {
		t.Fatal("Load accepted a truncated sealed block")
	}
}

// TestBankedReplayByteIdentity is the shared-device acceptance test: with
// all partitions contending for one banked DRAM device, the live global
// access sequence (contended timings included) and two independent replays
// of its arrival log are byte-for-byte identical.
func TestBankedReplayByteIdentity(t *testing.T) {
	cfg := testConfig(4)
	bc := banked.DefaultConfig()
	cfg.Banked = &bc
	arrivals, liveLog := runLive(t, cfg, 4, 30)

	log1, stats1, err := Replay(cfg, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	log2, stats2, err := Replay(cfg, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := log1.Bytes(), log2.Bytes()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("two banked replays diverge: %d vs %d bytes", len(b1), len(b2))
	}
	if !bytes.Equal(liveLog.Bytes(), b1) {
		t.Fatalf("banked live run and replay diverge: live %d paths, replay %d paths",
			len(liveLog.Paths), len(log1.Paths))
	}
	if err := stats1.Validate(); err != nil {
		t.Fatalf("banked replay stats: %v", err)
	}
	if !stats1.BankedActive || stats1.Banked.Accesses == 0 {
		t.Fatalf("shared banked device saw no traffic: %+v", stats1.Banked)
	}
	if stats1.Cycles != stats2.Cycles {
		t.Fatalf("banked replay makespans diverge: %d vs %d", stats1.Cycles, stats2.Cycles)
	}
	// The contended schedule is what the log records: every path Start came
	// out of the arbiter, and per (round, partition) they are monotone.
	type lane struct {
		round uint64
		part  int
	}
	last := map[lane]uint64{}
	for _, p := range log1.Paths {
		k := lane{p.Round, p.Part}
		if prev, ok := last[k]; ok && p.Start < prev {
			t.Fatalf("round %d partition %d path starts not monotone: %d after %d",
				p.Round, p.Part, p.Start, prev)
		}
		last[k] = p.Start
	}
}
