package shard

import "fmt"

// PartitionMap routes global block indices to partitions: a seeded keyed
// hash spreads blocks over Groups indirection groups, and a small
// group→partition table assigns each group a home partition. Routing is
// deterministic in (seed, index), and the table scan is oblivious: every
// lookup reads all Groups entries with branchless selection, so neither
// timing nor the memory trace of the map itself depends on the index.
//
// The indirection level exists for the future background shuffler:
// re-homing a group is one table write, no re-hash of the address space.
type PartitionMap struct {
	partitions int
	seed       uint64
	table      []uint16 // group -> partition
}

// NewPartitionMap builds a map over the given partition count. groups is
// rounded up to a power of two and defaults to max(64, 8×partitions);
// groups are assigned round-robin so every partition starts with an equal
// share of the address space.
func NewPartitionMap(partitions, groups int, seed uint64) (*PartitionMap, error) {
	if partitions < 1 {
		return nil, fmt.Errorf("shard: partitions %d must be >= 1", partitions)
	}
	if partitions > 1<<16 {
		return nil, fmt.Errorf("shard: partitions %d exceed the 65536 the table encodes", partitions)
	}
	if groups <= 0 {
		groups = 8 * partitions
		if groups < 64 {
			groups = 64
		}
	}
	if groups < partitions {
		return nil, fmt.Errorf("shard: %d groups cannot cover %d partitions", groups, partitions)
	}
	g := 1
	for g < groups {
		g <<= 1
	}
	m := &PartitionMap{partitions: partitions, seed: seed, table: make([]uint16, g)}
	for i := range m.table {
		m.table[i] = uint16(i % partitions)
	}
	return m, nil
}

// Partitions returns the partition count.
func (m *PartitionMap) Partitions() int { return m.partitions }

// Groups returns the indirection-table size.
func (m *PartitionMap) Groups() int { return len(m.table) }

// mix is a splitmix64-style keyed finalizer: a 64-bit permutation of
// index under the key. Distinct seeds give effectively independent
// spreads of the address space.
//
//proram:hotpath one hash per request admission
func mix(key, index uint64) uint64 {
	z := index + key + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Group returns the indirection group of a block index.
//
//proram:hotpath runs on every request admission
func (m *PartitionMap) Group(index uint64) int {
	return int(mix(m.seed, index) & uint64(len(m.table)-1))
}

// Lookup returns the partition of a block index. The table scan is
// fixed-length and branchless: entry i contributes iff i == group, via an
// arithmetically derived all-ones/all-zeros mask, so the scan's control
// flow and touched addresses are identical for every index.
//
//proram:hotpath runs on every request admission; must stay branchless and allocation-free
//proram:branchless the scan's control flow and touched addresses must be identical for every index
func (m *PartitionMap) Lookup(index uint64) int {
	g := uint64(m.Group(index))
	var p uint16
	table := m.table
	for i := range table {
		// (d|-d)>>63 is 1 for any nonzero d, 0 for d == 0, so eq is 1
		// exactly when i == g; mask is then 0xffff or 0x0000.
		d := uint64(i) ^ g
		eq := ((d | -d) >> 63) ^ 1
		mask := uint16(0) - uint16(eq)
		p |= table[i] & mask
	}
	return int(p)
}

// Rehome reassigns an indirection group to a new partition. It is the
// repartitioning hook for a future background shuffler; the caller owns
// migrating the group's resident blocks before routing flips.
func (m *PartitionMap) Rehome(group, partition int) error {
	if group < 0 || group >= len(m.table) {
		return fmt.Errorf("shard: group %d out of range (%d groups)", group, len(m.table))
	}
	if partition < 0 || partition >= m.partitions {
		return fmt.Errorf("shard: partition %d out of range (%d partitions)", partition, m.partitions)
	}
	m.table[group] = uint16(partition)
	return nil
}
