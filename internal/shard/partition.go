package shard

import (
	"container/list"
	"fmt"

	"proram/internal/oram"
	"proram/internal/rng"
)

// request is one client operation routed to a partition. The payload is
// copied at admission, so workers never share buffers with clients.
type request struct {
	seq   uint64
	index uint64 // global block index
	write bool
	arr   uint64 // arrival round (latency spans measure from its clock floor)
	//proram:secret write payload bytes (admission-owned copy)
	data []byte
	resp chan response
}

// response answers one request. Data is a fresh copy for reads.
type response struct {
	//proram:secret plaintext block bytes returned to the caller
	data []byte
	err  error
}

// roundKind distinguishes the scheduler's round types.
type roundKind uint8

const (
	// roundDemand is a regular scheduling round: exactly roundSlots
	// accesses per partition (demand + dummy padding).
	roundDemand roundKind = iota
	// roundFlush writes every dirty cached line back (variable count,
	// reported to the dispatcher for the equalizing pad round).
	roundFlush
	// roundPad appends work.padTo dummies to a flush round so every
	// partition's flush has the same observable length.
	roundPad
)

// roundWork is one round's instruction to a partition worker.
type roundWork struct {
	kind  roundKind
	round uint64
	start uint64 // clock floor: the worker raises its store clock to this
	reqs  []*request
	padTo int // roundPad: dummy accesses to issue
}

// roundResult is what a worker reports back at the round barrier.
type roundResult struct {
	part      int
	round     uint64
	leftovers []*request // unserved requests, original arrival order
	real      int        // demand accesses issued this round
	dummy     int        // dummy accesses issued this round
	hits      int        // requests served from the partition cache
	served    int        // requests answered (hits + demand-served + errored)
	errors    int        // requests answered with an error
	trace     []oram.TraceEvent
	marks     []slotMark // per-slot trace boundaries (auditing only)
	servedArr []uint64   // arrival rounds of answered requests (latency only)
}

// cacheLine is one plaintext block in a partition's client-side cache
// (the per-partition LLC stand-in the prefetcher feeds).
type cacheLine struct {
	local      uint64
	data       []byte
	dirty      bool
	prefetched bool
	used       bool
}

// partition is one independent Path ORAM shard plus its worker state.
// Everything below is owned by the worker goroutine while a round is in
// flight; the dispatcher may read counters and the store clock only
// between rounds (the round barrier's channel operations order the
// accesses).
type partition struct {
	id          int
	localBlocks uint64
	cacheBlocks int
	roundSlots  int
	maxCost     int  // conservative accesses per demand request
	record      bool // keep per-round traces
	markSlots   bool // auditing: mark each slot's trace boundary
	lat         bool // latency spans: report served requests' arrival rounds
	dropDummies bool // LeakDropDummies negative control: lie about padding

	store    *Store
	dummyRnd *rng.Source

	// local maps global block index -> dense local slot, assigned in
	// first-touch order. Only ever indexed, never iterated.
	local     map[uint64]uint64
	nextLocal uint64

	cache map[uint64]*list.Element // local index -> cacheLine element
	lru   *list.List

	lastTraceLen int
	curMarks     []slotMark // marks of the round in flight (markSlots only)

	// Cumulative counters (see stats.go for the identities they obey).
	reads, writes  uint64
	cacheHits      uint64
	realAccesses   uint64 // demand-round ORAM accesses
	dummyAccesses  uint64 // demand-round padding accesses
	flushAccesses  uint64 // flush-round write-backs
	flushPad       uint64 // flush-round padding accesses
	requestErrors  uint64
	servedRequests uint64

	work    chan roundWork
	results chan<- roundResult
}

// Present implements oram.CacheProber over the partition cache, letting
// the per-partition merge algorithm probe for co-resident blocks.
//
//proram:hotpath probed once per super-block candidate on every dynamic merge
func (p *partition) Present(local uint64) bool {
	_, ok := p.cache[local]
	return ok
}

// run is the worker goroutine: one round in, one result out, until the
// work channel closes.
func (p *partition) run() {
	//proram:allow concdeterminism p.work has a single sender (the round driver), so arrival order is the driver's send order
	for w := range p.work {
		p.results <- p.execRound(w)
	}
}

// execRound performs one round of the given kind.
func (p *partition) execRound(w roundWork) roundResult {
	if w.start > p.store.Now {
		p.store.Now = w.start
	}
	res := roundResult{part: p.id, round: w.round}
	switch w.kind {
	case roundDemand:
		p.demandRound(w, &res)
	case roundFlush:
		p.flushRound(&res)
	case roundPad:
		p.padRound(w, &res)
	}
	if p.record {
		tr := p.store.Ctrl.Trace()
		res.trace = append([]oram.TraceEvent(nil), tr[p.lastTraceLen:]...)
		p.lastTraceLen = len(tr)
	}
	if p.markSlots {
		res.marks = p.curMarks
		p.curMarks = nil
	}
	return res
}

// mark closes one issued access slot for the auditor: the current trace
// length (relative to the round's start) bounds the slot's physical
// accesses. Callers mark exactly once per counted slot access, so the
// observed mark count is the wire-truth the shape test checks.
func (p *partition) mark(dummy bool) {
	if !p.markSlots {
		return
	}
	p.curMarks = append(p.curMarks, slotMark{
		end:   len(p.store.Ctrl.Trace()) - p.lastTraceLen,
		dummy: dummy,
	})
}

// demandRound serves queued requests and pads to exactly roundSlots ORAM
// accesses. Cache hits serve for free (on-chip work is invisible), each
// miss costs one demand access plus any dirty evictions its installs
// force, and dummies fill whatever budget remains. Requests that do not
// fit the budget carry over.
func (p *partition) demandRound(w roundWork, res *roundResult) {
	budget := p.roundSlots
	for _, req := range w.reqs {
		local, err := p.localSlot(req.index)
		if err != nil {
			p.answer(req, response{err: err}, res)
			res.errors++
			p.requestErrors++
			continue
		}
		if e, ok := p.cache[local]; ok {
			p.serveCached(req, e, res)
			continue
		}
		if budget < p.maxCost {
			res.leftovers = append(res.leftovers, req)
			continue
		}
		budget -= p.demandAccess(req, local, res)
	}
	// The pad count is fixed once demand service ends; a single counted
	// loop (rather than draining budget in place) lets the fixedtrip pass
	// prove the round always issues its full complement.
	pad := budget
	//proram:fixedtrip pads the round to exactly roundSlots accesses — the obliviousness contract of §4
	for i := 0; i < pad; i++ {
		if p.dropDummies {
			// Negative control: claim the padding without issuing it. Every
			// counter and reported shape stays plausible — only the observed
			// trace (and the auditor watching it) knows.
			res.dummy++
			p.dummyAccesses++
			continue
		}
		p.dummyAccess()
		p.mark(true)
		res.dummy++
		p.dummyAccesses++
	}
	if got := res.real + res.dummy; got != p.roundSlots {
		//proram:invariant the fixed per-round access count is the scheduler's obliviousness contract; missing it is a budget-accounting bug
		panic(fmt.Sprintf("shard: partition %d issued %d accesses in round %d, contract is %d",
			p.id, got, w.round, p.roundSlots))
	}
}

// serveCached answers a request from the cache: no ORAM access. This is
// also how duplicate requests within a round coalesce — the first miss
// installs the line, the rest hit it.
func (p *partition) serveCached(req *request, e *list.Element, res *roundResult) {
	p.cacheHits++
	res.hits++
	p.lru.MoveToFront(e)
	line := e.Value.(*cacheLine)
	//proram:public prefetch bookkeeping flags track the public access sequence; the line is only container-tainted by its payload bytes
	if line.prefetched && !line.used {
		line.used = true
		//proram:public the local slot index is public address metadata, assigned in first-touch order independent of payload bytes
		p.store.Ctrl.NotifyPrefetchUse(line.local)
	}
	p.finish(req, line, res)
}

// demandAccess misses into the ORAM: one full recursive access for the
// demand block, installs for it and its prefetched siblings, and a
// write-back access per dirty line those installs evict. Returns the
// number of ORAM accesses consumed.
func (p *partition) demandAccess(req *request, local uint64, res *roundResult) int {
	cost := 1
	r := p.store.DemandRead(local)
	p.mark(false)
	res.real++
	p.realAccesses++
	line, evicted, err := p.install(local, false)
	cost += evicted
	res.real += evicted
	p.realAccesses += uint64(evicted)
	if err != nil {
		p.answer(req, response{err: err}, res)
		res.errors++
		p.requestErrors++
		return cost
	}
	for _, pf := range r.Prefetched {
		if _, ok := p.cache[pf]; ok {
			continue
		}
		_, ev, err := p.install(pf, true)
		cost += ev
		res.real += ev
		p.realAccesses += uint64(ev)
		if err != nil {
			// The demand request already has its line; a corrupt prefetch
			// sibling only loses the prefetch.
			continue
		}
	}
	p.finish(req, line, res)
	return cost
}

// finish applies the request to its cached line and answers it.
func (p *partition) finish(req *request, line *cacheLine, res *roundResult) {
	if req.write {
		p.writes++
		clear(line.data)
		copy(line.data, req.data)
		line.dirty = true
		p.answer(req, response{}, res)
		return
	}
	p.reads++
	out := make([]byte, len(line.data))
	copy(out, line.data)
	p.answer(req, response{data: out}, res)
}

// answer replies to a request (the response channel is buffered, so the
// worker never blocks on a slow client).
func (p *partition) answer(req *request, resp response, res *roundResult) {
	res.served++
	p.servedRequests++
	if p.lat {
		res.servedArr = append(res.servedArr, req.arr)
	}
	req.resp <- resp
}

// install decrypts a block into the cache and evicts past capacity,
// returning the line and how many ORAM write-back accesses the evictions
// cost.
func (p *partition) install(local uint64, prefetched bool) (*cacheLine, int, error) {
	data, err := p.store.Load(local)
	if err != nil {
		return nil, 0, fmt.Errorf("shard: partition %d: %w", p.id, err)
	}
	line := &cacheLine{local: local, data: data, prefetched: prefetched}
	p.cache[local] = p.lru.PushFront(line)
	evicted := 0
	for p.lru.Len() > p.cacheBlocks {
		n, err := p.evictLRU()
		evicted += n
		if err != nil {
			return nil, evicted, err
		}
	}
	return line, evicted, nil
}

// evictLRU drops the least-recently-used line, writing it back through
// the shared Store helper when dirty. Returns the ORAM accesses spent
// (0 for a clean victim, 1 for a dirty one).
func (p *partition) evictLRU() (int, error) {
	back := p.lru.Back()
	line := back.Value.(*cacheLine)
	p.lru.Remove(back)
	delete(p.cache, line.local)
	if line.prefetched && !line.used {
		p.store.Ctrl.NotifyPrefetchEvict(line.local)
	}
	if !line.dirty {
		return 0, nil
	}
	err := p.store.WriteBack(line.local, line.data)
	p.mark(false)
	return 1, err
}

// dummyAccess performs one padding access: a full recursive read of a
// uniformly random local block, indistinguishable on the wire from a
// demand access. The result is discarded — nothing enters the cache, so
// padding never perturbs the prefetcher's locality signal.
//
//proram:hotpath fills every unused slot of every round on every partition
func (p *partition) dummyAccess() {
	p.store.DemandRead(p.dummyRnd.Uint64n(p.localBlocks))
}

// flushRound writes every dirty cached line back (front-to-back, a
// deterministic order), counting the accesses so the dispatcher can pad
// all partitions to the same flush length.
func (p *partition) flushRound(res *roundResult) {
	for e := p.lru.Front(); e != nil; e = e.Next() {
		line := e.Value.(*cacheLine)
		if !line.dirty {
			continue
		}
		if err := p.store.WriteBack(line.local, line.data); err != nil {
			res.errors++
			p.requestErrors++
			continue
		}
		p.mark(false)
		line.dirty = false
		res.real++
		p.flushAccesses++
	}
}

// padRound equalizes a flush round: padTo additional dummy accesses.
func (p *partition) padRound(w roundWork, res *roundResult) {
	//proram:fixedtrip equalizes the flush sub-round to the dispatcher's padTo, keeping every partition's flush length identical
	for i := 0; i < w.padTo; i++ {
		p.dummyAccess()
		p.mark(true)
		res.dummy++
		p.flushPad++
	}
}

// localSlot returns the partition-local slot of a global block index,
// assigning the next dense slot on first touch. First-touch order makes
// temporally adjacent blocks spatially adjacent in local space, which is
// the locality the per-partition super block scheme detects.
func (p *partition) localSlot(global uint64) (uint64, error) {
	if l, ok := p.local[global]; ok {
		return l, nil
	}
	if p.nextLocal >= p.localBlocks {
		return 0, fmt.Errorf("shard: partition %d full (%d local blocks); the keyed hash overfilled it — raise Blocks headroom or partitions",
			p.id, p.localBlocks)
	}
	l := p.nextLocal
	p.nextLocal++
	p.local[global] = l
	return l, nil
}
