package shard

import "testing"

func TestPartitionMapDeterministicAndInRange(t *testing.T) {
	m, err := NewPartitionMap(8, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	if m.Groups() < 64 || m.Groups()&(m.Groups()-1) != 0 {
		t.Fatalf("groups = %d, want a power of two >= 64", m.Groups())
	}
	m2, _ := NewPartitionMap(8, 0, 42)
	for i := uint64(0); i < 4096; i++ {
		p := m.Lookup(i)
		if p < 0 || p >= 8 {
			t.Fatalf("Lookup(%d) = %d out of range", i, p)
		}
		if p2 := m2.Lookup(i); p2 != p {
			t.Fatalf("Lookup(%d) differs across identically seeded maps: %d vs %d", i, p, p2)
		}
	}
}

func TestPartitionMapSpread(t *testing.T) {
	const parts, n = 8, 1 << 14
	m, err := NewPartitionMap(parts, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	var counts [parts]int
	for i := uint64(0); i < n; i++ {
		counts[m.Lookup(i)]++
	}
	// The round-robin group assignment plus a mixing hash keeps the load
	// well inside the 25% headroom the frontend provisions per partition.
	limit := n / parts * 5 / 4
	for p, c := range counts {
		if c == 0 {
			t.Fatalf("partition %d received no blocks", p)
		}
		if c > limit {
			t.Fatalf("partition %d received %d of %d blocks, over the %d headroom", p, c, n, limit)
		}
	}
}

func TestPartitionMapRehome(t *testing.T) {
	m, err := NewPartitionMap(4, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Find a block, move its group, and watch routing follow the table.
	idx := uint64(12345)
	g := m.Group(idx)
	was := m.Lookup(idx)
	next := (was + 1) % m.Partitions()
	if err := m.Rehome(g, next); err != nil {
		t.Fatal(err)
	}
	if got := m.Lookup(idx); got != next {
		t.Fatalf("after Rehome, Lookup = %d, want %d", got, next)
	}
	if err := m.Rehome(-1, 0); err == nil {
		t.Fatal("Rehome accepted an out-of-range group")
	}
	if err := m.Rehome(0, 99); err == nil {
		t.Fatal("Rehome accepted an out-of-range partition")
	}
}

func TestNewPartitionMapRejectsBadShapes(t *testing.T) {
	if _, err := NewPartitionMap(0, 0, 1); err == nil {
		t.Fatal("accepted zero partitions")
	}
	if _, err := NewPartitionMap(128, 16, 1); err == nil {
		t.Fatal("accepted fewer groups than partitions")
	}
}
