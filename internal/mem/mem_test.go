package mem

import (
	"testing"
	"testing/quick"
)

func TestMakeIDRoundTrip(t *testing.T) {
	check := func(level uint8, index uint64) bool {
		lvl := int(level % 255)
		idx := index & ((1 << 56) - 1)
		id := MakeID(lvl, idx)
		return id.Level() == lvl && id.Index() == idx && !id.IsNil()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNilNeverCollides(t *testing.T) {
	// Level 255 is reserved, so MakeID can never return Nil.
	id := MakeID(254, (1<<56)-1)
	if id.IsNil() {
		t.Fatal("MakeID(254, max) collided with Nil")
	}
}

func TestMakeIDPanics(t *testing.T) {
	for _, tc := range []struct {
		level int
		index uint64
	}{{255, 0}, {-1, 0}, {0, 1 << 56}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MakeID(%d, %d) did not panic", tc.level, tc.index)
				}
			}()
			MakeID(tc.level, tc.index)
		}()
	}
}

func TestString(t *testing.T) {
	if got := MakeID(1, 42).String(); got != "blk<L1:42>" {
		t.Fatalf("String() = %q", got)
	}
	if got := Nil.String(); got != "blk<nil>" {
		t.Fatalf("Nil.String() = %q", got)
	}
}

func TestDistinctLevelsDistinctIDs(t *testing.T) {
	if MakeID(0, 7) == MakeID(1, 7) {
		t.Fatal("same index at different levels produced equal IDs")
	}
}
