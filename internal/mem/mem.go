// Package mem defines the small shared vocabulary of the memory-system
// simulator: block identifiers, leaf labels, and the encoding of
// position-map hierarchy levels into block IDs.
//
// The Unified ORAM design stores data blocks and position-map blocks in the
// same binary tree, so a block identifier carries both its hierarchy level
// (0 = data, 1..n = position-map levels) and its index within that level.
package mem

import "fmt"

// BlockID identifies one ORAM block (data or position-map). The top byte
// holds the hierarchy level; the low 56 bits hold the index within the
// level.
type BlockID uint64

// Nil is the sentinel for "no block" (an empty tree slot, a dummy).
const Nil BlockID = ^BlockID(0)

const levelShift = 56
const indexMask = (BlockID(1) << levelShift) - 1

// MakeID composes a BlockID from a hierarchy level and an index.
// It panics if index does not fit in 56 bits or level is 255 (reserved so
// that Nil can never collide with a real block).
func MakeID(level int, index uint64) BlockID {
	if level < 0 || level >= 255 {
		//proram:invariant an out-of-range hierarchy level means the caller's geometry is corrupt; IDs must never encode it
		panic(fmt.Sprintf("mem: hierarchy level %d out of range", level))
	}
	if index > uint64(indexMask) {
		//proram:invariant an index over 56 bits cannot be encoded; configurations size hierarchies orders of magnitude below this
		panic(fmt.Sprintf("mem: block index %d overflows 56 bits", index))
	}
	return BlockID(uint64(level)<<levelShift | index)
}

// Level returns the hierarchy level encoded in id (0 for data blocks).
func (id BlockID) Level() int { return int(id >> levelShift) }

// Index returns the within-level index encoded in id.
func (id BlockID) Index() uint64 { return uint64(id & indexMask) }

// IsNil reports whether id is the nil sentinel.
func (id BlockID) IsNil() bool { return id == Nil }

// String implements fmt.Stringer for diagnostics.
func (id BlockID) String() string {
	if id.IsNil() {
		return "blk<nil>"
	}
	return fmt.Sprintf("blk<L%d:%d>", id.Level(), id.Index())
}

// Block is the canonical payload record: one ORAM block as the trusted
// controller sees it when a functional (data-carrying) mode is layered on
// top of the timing model. The payload is secret in the obliviousness
// sense — branching on it correlates the access trace with the data that
// ORAM exists to hide — so the static-analysis suite (proram-vet's
// oblivious pass) tracks reads of Data and flags control flow conditioned
// on them. Lengths and identifiers are public.
type Block struct {
	// ID names the block; levels and indices are public metadata.
	ID BlockID
	// Data holds the payload bytes.
	//proram:secret payload bytes must never steer control flow
	Data []byte
}

// Leaf is a leaf label of the ORAM binary tree, in [0, 2^L).
type Leaf uint64

// NoLeaf marks an unassigned position-map entry.
const NoLeaf Leaf = ^Leaf(0)
