package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AllocDiscipline enforces that functions marked //proram:hotpath stay
// free of heap allocations. The ORAM access path runs O(log N) work per
// simulated memory access millions of times per run; PR 4 threaded an
// observability recorder through all of it on the promise (enforced by
// AllocsPerRun tests) that the instrumented path allocates nothing, and
// this pass keeps that promise under maintenance.
//
// Flagged allocation shapes: make and new, append (growth can
// reallocate the backing array), composite literals escaping through &,
// slice and map literals, string concatenation and string↔byte-slice
// conversions, fmt calls, go statements, and closures that capture
// enclosing variables. Two exemptions keep the signal honest:
//
//   - doomed blocks: an allocation on a path every exit of which panics
//     (the fmt.Sprintf feeding an invariant-violation panic) is failure
//     handling, not steady-state work (cfg.go);
//   - calls into internal/obs: the observability layer is nil-safe and
//     allocation-free when disabled, enforced by its own AllocsPerRun
//     tests.
//
// The pass is interprocedural: a hot-path call into a module-local
// helper that allocates is reported at the call site with the helper
// chain and the ultimate allocation position. Helpers that are
// themselves marked //proram:hotpath are skipped (they are checked in
// their own right), and an //proram:allow allocdiscipline on an
// allocation inside a helper exempts that site for every hot-path
// caller.
func AllocDiscipline() *Pass {
	p := &Pass{
		Name:    "allocdiscipline",
		Aliases: []string{"alloc"},
		Doc:     "functions marked //proram:hotpath must not allocate on the heap, directly or through module-local callees",
	}
	p.Run = func(u *Unit) {
		cg := u.Prog.CallGraph()
		as := u.Prog.allocSummaries()
		attached := make(map[*Directive]bool)
		for _, f := range u.Pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				d := u.Pkg.hotpathDirective(u.Prog.Fset, fn)
				if d == nil {
					continue
				}
				attached[d] = true
				if fn.Body == nil {
					continue
				}
				obj, ok := u.Pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				node := cg.NodeOf(obj)
				if node == nil {
					continue
				}
				for _, fact := range as.scan(node, false) {
					if fact.via == "" {
						u.Reportf(fact.pos, "%s in //proram:hotpath function %s; the ORAM access path must stay allocation-free (restructure, or justify with //proram:allow allocdiscipline)", fact.desc, fn.Name.Name)
					} else {
						u.Reportf(fact.pos, "call to %s allocates (%s at %s) in //proram:hotpath function %s; the ORAM access path must stay allocation-free (restructure, or justify with //proram:allow allocdiscipline)", fact.via, fact.desc, u.Prog.relPosition(fact.ultimate), fn.Name.Name)
					}
				}
			}
		}
		for _, d := range u.Pkg.Directives {
			if d.Kind == "hotpath" && !attached[d] {
				u.Reportf(d.Pos, "//proram:hotpath is not attached to a function declaration; put it in the function's doc comment")
			}
		}
	}
	return p
}

// allocFact is one allocation attributable to a function: a direct site
// (via == "") or a call into an allocating module-local helper chain.
type allocFact struct {
	pos      token.Pos // where to report in the owning function
	ultimate token.Pos // the underlying allocation
	desc     string
	via      string // helper chain, "" for a direct allocation
}

// allocSummaries caches, per declared function, one representative
// allocation fact (nil means the function provably performs none of the
// flagged shapes outside doomed blocks).
type allocSummaries struct {
	prog    *Program
	byFunc  map[*types.Func]*allocFact
	hotpath map[*types.Func]bool
}

func (p *Program) allocSummaries() *allocSummaries {
	p.allocOne.Do(func() { p.allocs = computeAllocSummaries(p) })
	return p.allocs
}

func computeAllocSummaries(prog *Program) *allocSummaries {
	cg := prog.CallGraph()
	a := &allocSummaries{
		prog:    prog,
		byFunc:  make(map[*types.Func]*allocFact, len(cg.Nodes)),
		hotpath: make(map[*types.Func]bool, len(cg.Nodes)),
	}
	for _, n := range cg.Nodes {
		a.hotpath[n.Fn] = n.Pkg.hotpathDirective(prog.Fset, n.Decl) != nil
	}
	for _, comp := range cg.SCCs {
		// A second round lets facts flow around recursion cycles.
		rounds := 1
		if len(comp) > 1 {
			rounds = 2
		}
		for r := 0; r < rounds; r++ {
			for _, n := range comp {
				if facts := a.scan(n, true); len(facts) > 0 {
					f := facts[0]
					a.byFunc[n.Fn] = &f
				}
			}
		}
	}
	return a
}

// scan walks the function's CFG (and the CFGs of its nested function
// literals) and returns its allocation facts in source order, skipping
// doomed blocks. With filterAllowed set, sites suppressed by
// //proram:allow allocdiscipline are dropped and the directive marked
// used — that is how a justified allocation in a helper stays exempt
// for every hot-path caller.
func (a *allocSummaries) scan(n *CGNode, filterAllowed bool) []allocFact {
	var facts []allocFact
	a.scanBody(n, n.Decl.Body, filterAllowed, &facts)
	return facts
}

func (a *allocSummaries) scanBody(n *CGNode, body *ast.BlockStmt, filterAllowed bool, facts *[]allocFact) {
	g := buildCFG(n.Pkg.Info, body)
	doomed := g.doomed()
	for _, blk := range g.blocks {
		if doomed[blk.index] {
			continue
		}
		for _, nd := range blk.nodes {
			a.scanNode(n, nd, filterAllowed, facts)
		}
	}
}

func (a *allocSummaries) scanNode(n *CGNode, nd ast.Node, filterAllowed bool, facts *[]allocFact) {
	info := n.Pkg.Info
	add := func(pos, ultimate token.Pos, desc, via string) {
		if filterAllowed {
			p := a.prog.Fset.Position(pos)
			if d := n.Pkg.allowDirectiveFor("allocdiscipline", p.Filename, p.Line); d != nil {
				d.used = true
				return
			}
		}
		*facts = append(*facts, allocFact{pos: pos, ultimate: ultimate, desc: desc, via: via})
	}
	direct := func(pos token.Pos, desc string) { add(pos, pos, desc, "") }
	skip := make(map[ast.Node]bool)

	ast.Inspect(nd, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			if capturesOuter(n.Pkg, x) {
				direct(x.Pos(), "closure captures escape to the heap")
			}
			a.scanBody(n, x.Body, filterAllowed, facts)
			return false
		case *ast.GoStmt:
			direct(x.Pos(), "go statement allocates")
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if cl, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					direct(x.Pos(), "composite literal escapes to the heap")
					skip[cl] = true
				}
			}
		case *ast.CompositeLit:
			if skip[x] {
				return true
			}
			switch typeOf(info, x).(type) {
			case *types.Slice:
				direct(x.Pos(), "slice literal allocates")
			case *types.Map:
				direct(x.Pos(), "map literal allocates")
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(info, x.X) {
				direct(x.OpPos, "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringType(info, x.Lhs[0]) {
				direct(x.TokPos, "string concatenation allocates")
			}
		case *ast.CallExpr:
			a.scanCall(n, x, add, direct)
		}
		return true
	})
}

// scanCall classifies one call: allocating builtins, string/byte-slice
// conversions, fmt, and resolved module-local callees whose summary
// says they allocate.
func (a *allocSummaries) scanCall(n *CGNode, call *ast.CallExpr, add func(pos, ultimate token.Pos, desc, via string), direct func(pos token.Pos, desc string)) {
	info := n.Pkg.Info
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				direct(call.Pos(), "make allocates")
			case "new":
				direct(call.Pos(), "new allocates")
			case "append":
				direct(call.Pos(), "append may grow its backing array")
			}
			return
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if conversionCopies(info, call) {
			direct(call.Pos(), "string/byte-slice conversion copies")
		}
		return
	}
	if pkgPath, fname := calleePackageFunc(info, call); pkgPath == "fmt" {
		direct(call.Pos(), "fmt."+fname+" allocates")
		return
	}
	callee := a.prog.CallGraph().resolveCall(n.Pkg, call)
	if callee == nil || callee == n {
		return
	}
	if callee.Pkg.Path == a.prog.ModulePath+"/internal/obs" {
		return // nil-safe and allocation-free when disabled, by its own tests
	}
	if a.hotpath[callee.Fn] {
		return // checked in its own right
	}
	if cf := a.byFunc[callee.Fn]; cf != nil {
		via := callee.Name()
		if cf.via != "" {
			via += " → " + cf.via
		}
		add(call.Pos(), cf.ultimate, cf.desc, via)
	}
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return tv.Type.Underlying()
	}
	return nil
}

func isStringType(info *types.Info, e ast.Expr) bool {
	b, ok := typeOf(info, e).(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// conversionCopies reports string([]byte), []byte(string) and the rune
// variants — the conversions that copy their operand to fresh memory.
func conversionCopies(info *types.Info, call *ast.CallExpr) bool {
	dst := typeOf(info, call.Fun)
	src := typeOf(info, call.Args[0])
	isStr := func(t types.Type) bool {
		b, ok := t.(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteSlice := func(t types.Type) bool {
		s, ok := t.(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(dst) && isByteSlice(src)) || (isByteSlice(dst) && isStr(src))
}

// capturesOuter reports whether a function literal references a
// variable declared outside it (which forces the captured environment —
// and usually the closure itself — onto the heap).
func capturesOuter(pkg *Package, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		if captured {
			return false
		}
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-scope variables (of any package) are not captures: a
		// package scope's parent is the universe scope.
		if v.Parent() == nil || v.Parent() == types.Universe || v.Parent().Parent() == types.Universe {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = true
		}
		return true
	})
	return captured
}
