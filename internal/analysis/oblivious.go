package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Oblivious is a conservative intra-procedural taint pass over the ORAM
// access path. Sources are reads of struct fields declared with a
// //proram:secret directive (the canonical one is mem.Block.Data, the
// decrypted block payload). Taint propagates through assignments,
// arithmetic, indexing and ordinary calls; len and cap sanitize (block
// sizes are public by construction), as does an explicit
// //proram:public declassification on the assignment. Sinks are branch
// and loop conditions: an if/switch/for that tests secret bytes decides
// *which* memory accesses happen next, which is exactly the
// access-pattern leakage Path ORAM exists to remove ("Revisiting
// Definitional Foundations of Oblivious RAM" catalogues how easily
// secure-processor implementations violate this silently). Calls into
// the observability layer (internal/obs) are a second sink family: a
// metric name, series value or trace argument derived from payload
// bytes writes the secret straight into an exported file, so every
// tainted argument to an obs call is reported.
//
// The default scope is the trusted controller surface: internal/oram and
// internal/stash. Pass explicit module-relative scopes to analyze other
// packages (the fixture tests do).
func Oblivious(scopes ...string) *Pass {
	if len(scopes) == 0 {
		scopes = []string{"internal/oram", "internal/stash"}
	}
	p := &Pass{
		Name: "oblivious",
		Doc:  "flag branches, loop bounds and observability emissions that depend on secret block payload bytes",
	}
	p.Run = func(u *Unit) {
		if !inScope(u.Pkg.Rel, scopes) {
			return
		}
		for _, f := range u.Pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				analyzeFuncTaint(u, fn)
			}
		}
	}
	return p
}

func inScope(rel string, scopes []string) bool {
	for _, s := range scopes {
		if rel == s || strings.HasPrefix(rel, s+"/") {
			return true
		}
	}
	return false
}

// taintState tracks which local objects carry secret data within one
// function body.
type taintState struct {
	u       *Unit
	tainted map[types.Object]bool
}

func analyzeFuncTaint(u *Unit, fn *ast.FuncDecl) {
	st := &taintState{u: u, tainted: make(map[types.Object]bool)}

	// Propagate taint through assignments to a fixpoint. The state only
	// grows, so the loop terminates; the bound is paranoia.
	for i := 0; i < 32; i++ {
		if !st.propagate(fn.Body) {
			break
		}
	}

	// Scan for tainted branch and loop conditions.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			st.checkCond(n.Cond, "if condition")
		case *ast.ForStmt:
			if n.Cond != nil {
				st.checkCond(n.Cond, "loop bound")
			}
		case *ast.SwitchStmt:
			if n.Tag != nil {
				st.checkCond(n.Tag, "switch tag")
			}
			for _, clause := range n.Body.List {
				cc, ok := clause.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					st.checkCond(e, "switch case")
				}
			}
		case *ast.CallExpr:
			st.checkObsEmission(n)
		}
		return true
	})
}

// propagate performs one round of flow-insensitive taint propagation and
// reports whether anything new became tainted.
func (st *taintState) propagate(body ast.Node) bool {
	changed := false
	mark := func(e ast.Expr, pos ast.Node) {
		// Writing secret data into x.f, x[i] or *x taints the container x.
	peel:
		for {
			switch x := e.(type) {
			case *ast.SelectorExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.ParenExpr:
				e = x.X
			default:
				break peel
			}
		}
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		obj := st.u.Pkg.Info.Defs[id]
		if obj == nil {
			obj = st.u.Pkg.Info.Uses[id]
		}
		if obj == nil || st.tainted[obj] {
			return
		}
		// A //proram:public directive on the assignment declassifies.
		p := st.u.Prog.Fset.Position(pos.Pos())
		if st.u.Pkg.directiveAt("public", p.Filename, p.Line) != nil {
			return
		}
		st.tainted[obj] = true
		changed = true
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
				if st.exprTainted(n.Rhs[0]) {
					for _, l := range n.Lhs {
						mark(l, n)
					}
				}
				return true
			}
			for i, r := range n.Rhs {
				if i < len(n.Lhs) && st.exprTainted(r) {
					mark(n.Lhs[i], n)
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) == 1 && len(n.Names) > 1 {
				if st.exprTainted(n.Values[0]) {
					for _, name := range n.Names {
						mark(name, n)
					}
				}
				return true
			}
			for i, v := range n.Values {
				if i < len(n.Names) && st.exprTainted(v) {
					mark(n.Names[i], n)
				}
			}
		case *ast.RangeStmt:
			if st.exprTainted(n.X) {
				if n.Key != nil {
					mark(n.Key, n)
				}
				if n.Value != nil {
					mark(n.Value, n)
				}
			}
		}
		return true
	})
	return changed
}

// exprTainted reports whether evaluating e can yield secret data.
func (st *taintState) exprTainted(e ast.Expr) bool {
	switch e := e.(type) {
	case nil:
		return false
	case *ast.Ident:
		obj := st.u.Pkg.Info.Uses[e]
		return obj != nil && st.tainted[obj]
	case *ast.SelectorExpr:
		if sel, ok := st.u.Pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if st.u.Prog.SecretFields[sel.Obj()] {
				return true
			}
		}
		return st.exprTainted(e.X)
	case *ast.IndexExpr:
		return st.exprTainted(e.X) || st.exprTainted(e.Index)
	case *ast.SliceExpr:
		return st.exprTainted(e.X)
	case *ast.StarExpr:
		return st.exprTainted(e.X)
	case *ast.ParenExpr:
		return st.exprTainted(e.X)
	case *ast.UnaryExpr:
		return st.exprTainted(e.X)
	case *ast.BinaryExpr:
		return st.exprTainted(e.X) || st.exprTainted(e.Y)
	case *ast.TypeAssertExpr:
		return st.exprTainted(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if st.exprTainted(el) {
				return true
			}
		}
		return false
	case *ast.KeyValueExpr:
		return st.exprTainted(e.Value)
	case *ast.CallExpr:
		// len and cap of a payload are public: block geometry is fixed by
		// the configuration, not the data.
		if id, ok := e.Fun.(*ast.Ident); ok {
			if b, ok := st.u.Pkg.Info.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "len", "cap":
					return false
				}
			}
		}
		// Conversions and ordinary calls: tainted arguments taint the
		// result (conservative — the callee is not inspected).
		for _, arg := range e.Args {
			if st.exprTainted(arg) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// checkCond reports a sink if the condition is tainted and not
// declassified at the site.
func (st *taintState) checkCond(cond ast.Expr, what string) {
	if cond == nil || !st.exprTainted(cond) {
		return
	}
	p := st.u.Prog.Fset.Position(cond.Pos())
	if st.u.Pkg.directiveAt("public", p.Filename, p.Line) != nil {
		return
	}
	st.u.Reportf(cond.Pos(), "%s depends on secret block payload bytes; the resulting access pattern leaks data (declassify with //proram:public only if the value is public by protocol)", what)
}

// checkObsEmission reports secret-tainted arguments flowing into the
// observability layer. Metrics and traces leave the trusted boundary
// (they are written to export files an adversary may read), so a metric
// name or event argument derived from payload bytes is a direct leak
// even though no branch is taken on it.
func (st *taintState) checkObsEmission(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := st.u.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if fn.Pkg().Path() != st.u.Prog.ModulePath+"/internal/obs" {
		return
	}
	for _, arg := range call.Args {
		if !st.exprTainted(arg) {
			continue
		}
		p := st.u.Prog.Fset.Position(arg.Pos())
		if st.u.Pkg.directiveAt("public", p.Filename, p.Line) != nil {
			continue
		}
		st.u.Reportf(arg.Pos(), "observability emission argument depends on secret block payload bytes; metrics and traces are exported off-chip (declassify with //proram:public only if the value is public by protocol)")
	}
}
