package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Oblivious is the interprocedural taint pass over the ORAM access
// path. Sources are reads of struct fields declared with a
// //proram:secret directive (the canonical one is mem.Block.Data, the
// decrypted block payload). Taint propagates through assignments,
// arithmetic, indexing and — via the bottom-up function summaries in
// summary.go — through module-local calls: a helper that copies,
// serializes or compares payload bytes carries the taint into its
// callers, and a helper that branches on a parameter becomes a sink for
// every caller that passes secret data in.
//
// Three sink families are reported:
//
//   - branch sinks: if/for/switch conditions — a data-dependent branch
//     decides *which* accesses happen next, exactly the access-pattern
//     leakage Path ORAM exists to remove ("Revisiting Definitional
//     Foundations of Oblivious RAM" catalogues how easily
//     secure-processor implementations violate this silently);
//   - secret-index sinks: a secret-derived slice, array or map index or
//     slice bound — a secret-dependent address is the classic ORAM leak
//     even when control flow is straight-line;
//   - observability emissions: a metric name, series value or trace
//     argument derived from payload bytes writes the secret straight
//     into an exported file (calls into internal/obs).
//
// len and cap sanitize (block geometry is public by construction), and
// an explicit //proram:public declassifies at an assignment or sink.
//
// A fourth family covers concurrency: secret-derived values selecting
// which channel is sent on or received from, what a go statement runs,
// or which lock is acquired are scheduling sinks — contention and
// interleaving are observable off-chip as timing, exactly like a
// secret-derived address.
//
// The default scope is the trusted controller surface: internal/oram,
// internal/stash, plus the concurrent frontend internal/shard and the
// memory model internal/dram/banked. Pass explicit module-relative
// scopes to analyze other packages (the fixture tests do). Summaries
// are computed over the whole program regardless of scope, so secrets
// that leave a scoped package through a helper in another package are
// still tracked back to the scoped caller.
func Oblivious(scopes ...string) *Pass {
	if len(scopes) == 0 {
		scopes = []string{"internal/oram", "internal/stash", "internal/shard", "internal/dram/banked"}
	}
	p := &Pass{
		Name:    "oblivious",
		Aliases: []string{"taint"},
		Doc:     "flag branches, memory indexes and observability emissions that depend on secret block payload bytes (interprocedural)",
	}
	p.Run = func(u *Unit) {
		if !inScope(u.Pkg.Rel, scopes) {
			return
		}
		sums := u.Prog.taintSummaries()
		for _, f := range u.Pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := u.Pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				sum := sums.byFunc[obj]
				if sum == nil {
					continue
				}
				for _, r := range sum.reports {
					u.Reportf(r.pos, "%s", r.msg)
				}
			}
		}
	}
	return p
}

func inScope(rel string, scopes []string) bool {
	for _, s := range scopes {
		if rel == s || strings.HasPrefix(rel, s+"/") {
			return true
		}
	}
	return false
}
