package analysis

import "testing"

// fixtureNode finds a declared function by name in a fixture package.
func fixtureNode(t *testing.T, prog *Program, rel, name string) *CGNode {
	t.Helper()
	pkg := prog.PackageAt(rel)
	if pkg == nil {
		t.Fatalf("fixture package %s not loaded", rel)
	}
	for _, n := range prog.CallGraph().Nodes {
		if n.Pkg == pkg && n.Fn.Name() == name {
			return n
		}
	}
	t.Fatalf("function %s not found in %s", name, rel)
	return nil
}

func hasEdgeTo(n *CGNode, callee *CGNode) bool {
	for _, e := range n.Callees {
		if e.Callee == callee {
			return true
		}
	}
	return false
}

func TestCallGraphResolution(t *testing.T) {
	prog := program(t)
	rel := fixtureBase + "interproc"
	passthru := fixtureNode(t, prog, rel, "passthru")
	double := fixtureNode(t, prog, rel, "double")
	branchOnReturn := fixtureNode(t, prog, rel, "branchOnReturn")
	if !hasEdgeTo(double, passthru) {
		t.Error("double → passthru edge missing")
	}
	if !hasEdgeTo(branchOnReturn, double) {
		t.Error("branchOnReturn → double edge missing")
	}
	if prog.CallGraph().NodeOf(passthru.Fn) != passthru {
		t.Error("NodeOf does not round-trip")
	}
}

// TestCallGraphSCC checks the condensation: mutual recursion shares a
// component, and components are emitted callees-first so bottom-up
// summary computation sees a callee's component before its callers'.
func TestCallGraphSCC(t *testing.T) {
	prog := program(t)
	rel := fixtureBase + "interproc"
	recSplit := fixtureNode(t, prog, rel, "recSplit")
	recMerge := fixtureNode(t, prog, rel, "recMerge")
	entryRec := fixtureNode(t, prog, rel, "entryRec")
	branchHelper := fixtureNode(t, prog, rel, "branchHelper")
	callsBranchHelper := fixtureNode(t, prog, rel, "callsBranchHelper")

	if recSplit.SCC != recMerge.SCC {
		t.Errorf("mutual recursion split across components %d and %d", recSplit.SCC, recMerge.SCC)
	}
	if branchHelper.SCC == callsBranchHelper.SCC {
		t.Error("non-recursive caller and callee share a component")
	}
	if branchHelper.SCC >= callsBranchHelper.SCC {
		t.Errorf("callee component %d not emitted before caller component %d", branchHelper.SCC, callsBranchHelper.SCC)
	}
	if recSplit.SCC >= entryRec.SCC {
		t.Errorf("recursive cycle %d not emitted before its caller %d", recSplit.SCC, entryRec.SCC)
	}
	cg := prog.CallGraph()
	found := false
	for _, n := range cg.SCCs[recSplit.SCC] {
		if n == recMerge {
			found = true
		}
	}
	if !found {
		t.Error("SCCs[recSplit.SCC] does not contain recMerge")
	}
}

func TestCallGraphMethodNode(t *testing.T) {
	prog := program(t)
	push := fixtureNode(t, prog, fixtureBase+"allocdiscipline", "push")
	if got := push.Name(); got != "ring.push" {
		t.Errorf("method node name = %q, want %q", got, "ring.push")
	}
	if len(push.Params) != 2 {
		t.Fatalf("receiver-first params: got %d, want 2", len(push.Params))
	}
	if push.Params[0].Name() != "r" || push.Params[1].Name() != "v" {
		t.Errorf("params = [%s %s], want [r v]", push.Params[0].Name(), push.Params[1].Name())
	}
}

func TestTaintSummaries(t *testing.T) {
	prog := program(t)
	rel := fixtureBase + "interproc"
	sums := prog.taintSummaries()
	get := func(name string) *funcSummary {
		s := sums.byFunc[fixtureNode(t, prog, rel, name).Fn]
		if s == nil {
			t.Fatalf("no summary for %s", name)
		}
		return s
	}

	if got := get("passthru").returnMask; got != paramBit(0) {
		t.Errorf("passthru returnMask = %x, want the first parameter bit", got)
	}
	if got := get("double").returnMask; got&secretOrigin == 0 {
		t.Errorf("double returnMask = %x, missing the secret origin", got)
	}
	if got := get("payloadLen").returnMask; got != 0 {
		t.Errorf("payloadLen returnMask = %x, want 0 (len sanitizes)", got)
	}
	if got := get("fill").paramFlows[0]; got&secretOrigin == 0 {
		t.Errorf("fill paramFlows[dst] = %x, missing the secret origin", got)
	}
	if sinks := get("branchHelper").paramSinks[0]; len(sinks) != 1 || sinks[0].what != "if condition" {
		t.Errorf("branchHelper paramSinks[x] = %+v, want one if-condition sink", sinks)
	}
	// The recursion fixpoint must converge to a bounded sink set.
	if sinks := get("recSplit").paramSinks[0]; len(sinks) != 1 {
		t.Errorf("recSplit paramSinks[v] = %+v, want exactly one deduplicated sink", sinks)
	}
}

func TestOriginMaskTranslation(t *testing.T) {
	if paramBit(70) != opaqueOrigin {
		t.Error("out-of-range parameter index must map to the opaque origin")
	}
	if paramBit(-1) != opaqueOrigin {
		t.Error("negative parameter index must map to the opaque origin")
	}
	args := []originMask{paramBit(2), secretOrigin}
	if got := translateMask(paramBit(0)|paramBit(1), args); got != paramBit(2)|secretOrigin {
		t.Errorf("translateMask = %x, want caller bit 2 | secret", got)
	}
	if got := translateMask(opaqueOrigin, args); got != 0 {
		t.Errorf("opaque origin must not translate across the boundary, got %x", got)
	}
	if got := translateMask(secretOrigin, nil); got != secretOrigin {
		t.Errorf("secret must survive translation with no arguments, got %x", got)
	}
}
