package analysis

import (
	"go/token"
	"sort"
	"sync"
)

// LockOrder is the deadlock-discipline pass. From the per-function
// held-lock summaries (locksummary.go) it derives two finding families:
//
//   - imbalance: a CFG path whose held set depends on the branch taken,
//     a path that exits with a lock still held (net of deferred
//     unlocks), an unlock of something not held, a re-acquisition of a
//     held mutex (sync mutexes are not reentrant), and sync.Cond.Wait
//     with nothing held;
//
//   - ordering: a module-wide acquisition graph with an edge A→B for
//     every site that acquires B while holding A — locally, or through
//     a resolved call chain whose callee (transitively) acquires B.
//     Every edge that participates in a cycle is reported: two
//     goroutines taking the cycle's locks in different orders can
//     deadlock.
//
// Lock identities unify by type ("Frontend.mu" on any two frontends),
// which is the right granularity for ordering discipline: a cycle
// between two instances of the same lock field is still a real
// AB/BA hazard unless the instances are globally ordered, which this
// analysis cannot see — justify those with //proram:allow lockorder.
// Function literals are not analyzed (they run at an unknown time under
// an unknown held set); TryLock is ignored.
func LockOrder() *Pass {
	var once sync.Once
	var perPkg map[*Package][]lockFinding
	p := &Pass{
		Name:    "lockorder",
		Aliases: []string{"locks"},
		Doc:     "flag lock/unlock imbalance on any CFG path and lock-acquisition-order cycles (interprocedural)",
	}
	p.Run = func(u *Unit) {
		once.Do(func() { perPkg = lockOrderFindings(u.Prog) })
		for _, f := range perPkg[u.Pkg] {
			u.Reportf(f.pos, "%s", f.msg)
		}
	}
	return p
}

// lockEdge is one acquisition-order edge: to is acquired while from is
// held. The first site (in call-graph node order) represents the edge.
type lockEdge struct {
	from, to string
	pkg      *Package
	pos      token.Pos
	via      string // callee chain for call-derived edges, "" for local
}

func lockOrderFindings(prog *Program) map[*Package][]lockFinding {
	sums := prog.lockSummaries()
	out := make(map[*Package][]lockFinding)
	add := func(f lockFinding) { out[f.pkg] = append(out[f.pkg], f) }

	edges := make(map[[2]string]*lockEdge)
	addEdge := func(e *lockEdge) {
		key := [2]string{e.from, e.to}
		if _, ok := edges[key]; !ok {
			edges[key] = e
		}
	}

	for _, n := range prog.CallGraph().Nodes {
		sum := sums.byFunc[n]
		for _, f := range sum.findings {
			add(f)
		}
		for _, a := range sum.acquires {
			for _, h := range a.heldBefore {
				// Same-identity re-acquisition is the analyzer's own
				// self-deadlock finding, not an ordering edge.
				if baseLockID(h) == a.base {
					continue
				}
				addEdge(&lockEdge{from: baseLockID(h), to: a.base, pkg: n.Pkg, pos: a.pos})
			}
		}
		for _, c := range sum.calls {
			cs := sums.byFunc[c.callee]
			ids := make([]string, 0, len(cs.transitive))
			//proram:allow maporder keys are collected then sorted before use
			for id := range cs.transitive {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			for _, h := range c.held {
				hb := baseLockID(h)
				for _, id := range ids {
					if id == hb {
						add(lockFinding{pkg: n.Pkg, pos: c.pos,
							msg: "call to " + c.callee.Name() + " (re)acquires " + id +
								" (at " + prog.relPosition(cs.transitive[id]) + ") while " + id +
								" is already held; sync mutexes are not reentrant (guaranteed self-deadlock)"})
						continue
					}
					addEdge(&lockEdge{from: hb, to: id, pkg: n.Pkg, pos: c.pos, via: c.callee.Name()})
				}
			}
		}
	}

	for _, e := range cyclicEdges(edges) {
		msg := "acquiring " + e.to + " while holding " + e.from
		if e.via != "" {
			msg += " (through the call to " + e.via + ")"
		}
		msg += " participates in a lock-order cycle; another goroutine taking these locks in the opposite order deadlocks"
		add(lockFinding{pkg: e.pkg, pos: e.pos, msg: msg})
	}
	return out
}

// baseLockID strips the read-acquisition marker so ordering unifies
// read and write modes of the same mutex.
func baseLockID(id string) string {
	if len(id) > 3 && id[len(id)-3:] == "(R)" {
		return id[:len(id)-3]
	}
	return id
}

// cyclicEdges returns, deterministically ordered, every edge whose
// endpoints lie in the same strongly connected component of the
// acquisition graph (self-edges never occur: same-identity
// re-acquisition is reported as self-deadlock instead).
func cyclicEdges(edges map[[2]string]*lockEdge) []*lockEdge {
	adj := make(map[string][]string)
	nodes := make(map[string]bool)
	//proram:allow maporder adjacency lists and node sets are sorted below before use
	for key := range edges {
		adj[key[0]] = append(adj[key[0]], key[1])
		nodes[key[0]], nodes[key[1]] = true, true
	}
	names := make([]string, 0, len(nodes))
	//proram:allow maporder keys are collected then sorted before use
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	//proram:allow maporder each adjacency list is sorted independently; order across lists is irrelevant
	for _, vs := range adj {
		sort.Strings(vs)
	}

	// Tarjan over identity strings.
	index := make(map[string]int)
	lowlink := make(map[string]int)
	onStack := make(map[string]bool)
	comp := make(map[string]int)
	var stack []string
	next, ncomp := 0, 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		lowlink[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				lowlink[v] = min(lowlink[v], lowlink[w])
			} else if onStack[w] {
				lowlink[v] = min(lowlink[v], index[w])
			}
		}
		if lowlink[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = ncomp
				if w == v {
					break
				}
			}
			ncomp++
		}
	}
	for _, v := range names {
		if _, ok := index[v]; !ok {
			strongconnect(v)
		}
	}

	var keys [][2]string
	//proram:allow maporder keys are collected then sorted before use
	for key := range edges {
		if comp[key[0]] == comp[key[1]] {
			keys = append(keys, key)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]*lockEdge, len(keys))
	for i, key := range keys {
		out[i] = edges[key]
	}
	return out
}
