package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// bannedTimeFuncs are the time package functions that read the wall or
// monotonic clock. time.Duration arithmetic stays legal: only *reading*
// a clock breaks reproducibility.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTicker": true,
	"NewTimer":  true,
	"Sleep":     true,
}

// Determinism forbids the nondeterminism sources that would break
// DESIGN.md's bit-reproducibility mandate: the math/rand global generator
// (seeded from the clock), wall-clock reads, select statements with a
// default clause (scheduling-dependent control flow), crypto randomness
// inside internal packages, and RNGs constructed from hard-coded seeds.
func Determinism() *Pass {
	p := &Pass{
		Name:    "determinism",
		Aliases: []string{"det"},
		Doc:     "forbid wall-clock reads, math/rand, racy selects and unseeded RNG construction",
	}
	p.Run = func(u *Unit) {
		internal := strings.HasPrefix(u.Pkg.Path, u.Prog.ModulePath+"/internal/")
		for _, f := range u.Pkg.Files {
			for _, imp := range f.Imports {
				switch strings.Trim(imp.Path.Value, `"`) {
				case "math/rand", "math/rand/v2":
					u.Reportf(imp.Pos(), "import of %s: the global generator is seeded from the clock; use proram/internal/rng with an explicit seed", imp.Path.Value)
				case "crypto/rand":
					if internal {
						u.Reportf(imp.Pos(), "import of crypto/rand in an internal package: simulation randomness must come from a seeded proram/internal/rng source")
					}
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectStmt:
					for _, clause := range n.Body.List {
						if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
							u.Reportf(n.Pos(), "select with a default clause makes control flow depend on goroutine scheduling; restructure or justify with //proram:allow determinism")
						}
					}
				case *ast.CallExpr:
					pkgPath, fn := calleePackageFunc(u.Pkg.Info, n)
					switch {
					case pkgPath == "time" && bannedTimeFuncs[fn]:
						u.Reportf(n.Pos(), "time.%s reads the clock; simulator output must be a pure function of the seed", fn)
					case pkgPath == u.Prog.ModulePath+"/internal/rng" && fn == "New" && internal:
						if len(n.Args) == 1 {
							if _, lit := n.Args[0].(*ast.BasicLit); lit {
								u.Reportf(n.Pos(), "rng.New with a hard-coded seed: thread the seed from the caller so whole runs stay reproducible from one knob")
							}
						}
					}
				}
				return true
			})
		}
	}
	return p
}

// calleePackageFunc resolves a call of the form pkg.Fn to its package
// path and function name, or ("", "") for anything else.
func calleePackageFunc(info *types.Info, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}
