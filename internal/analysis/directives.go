package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one parsed //proram: comment. The supported kinds are:
//
//	//proram:allow <check>[,<check>...] <reason>   suppress findings
//	//proram:invariant <justification>             justify a library panic
//	//proram:public <reason>                       declassify a value
//	//proram:secret                                mark a struct field as secret
//	//proram:hotpath <reason>                      demand an allocation-free function
//	//proram:detround <reason>                     determinism guaranteed by the round barrier
//	//proram:fixedtrip <reason>                    demand a provably fixed loop trip count
//	//proram:branchless <reason>                   demand a secret-branch-free function
//
// An allow or public directive applies to the line it sits on and to the
// line immediately below it (so it can be written either as a trailing
// comment or on its own line above the flagged statement). Directives
// written before the package clause apply to the whole file.
type Directive struct {
	Kind   string   // "allow", "invariant", "public", "secret", or unrecognized text
	Checks []string // allow only: the checks being suppressed
	Reason string   // free-text justification

	Pos       token.Pos
	File      string
	Line      int
	FileScope bool

	used bool // set when the directive suppressed at least one finding
}

// DirectivePrefix introduces every machine-readable comment.
const DirectivePrefix = "//proram:"

// parseDirectives extracts every //proram: comment from a parsed file.
func parseDirectives(fset *token.FileSet, f *ast.File) []*Directive {
	var out []*Directive
	pkgLine := fset.Position(f.Package).Line
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, DirectivePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			d := &Directive{Pos: c.Pos(), File: pos.Filename, Line: pos.Line, FileScope: pos.Line <= pkgLine}
			body := strings.TrimPrefix(c.Text, DirectivePrefix)
			kind, rest, _ := strings.Cut(body, " ")
			d.Kind = kind
			rest = strings.TrimSpace(rest)
			if kind == "allow" {
				list, reason, _ := strings.Cut(rest, " ")
				for _, check := range strings.Split(list, ",") {
					if check = strings.TrimSpace(check); check != "" {
						d.Checks = append(d.Checks, check)
					}
				}
				d.Reason = strings.TrimSpace(reason)
			} else {
				d.Reason = rest
			}
			out = append(out, d)
		}
	}
	return out
}

// allowDirectiveFor returns an in-scope allow directive naming check at
// (file, line): same line, the line above, or file scope.
func (p *Package) allowDirectiveFor(check, file string, line int) *Directive {
	for _, d := range p.Directives {
		if d.Kind != "allow" || d.File != file {
			continue
		}
		if !d.FileScope && d.Line != line && d.Line != line-1 {
			continue
		}
		for _, c := range d.Checks {
			if c == check {
				return d
			}
		}
	}
	return nil
}

// directiveAt returns a directive of the given kind scoped to (file,
// line): same line or the line above.
func (p *Package) directiveAt(kind, file string, line int) *Directive {
	for _, d := range p.Directives {
		if d.Kind == kind && d.File == file && (d.Line == line || d.Line == line-1) {
			return d
		}
	}
	return nil
}

// funcDirective returns the directive of the given kind attached to a
// function declaration: anywhere in its doc comment, or on the line of
// the func keyword itself. (gofmt folds a comment line directly above a
// declaration into its doc comment, so "the line above" is covered.)
func (p *Package) funcDirective(fset *token.FileSet, fn *ast.FuncDecl, kind string) *Directive {
	declPos := fset.Position(fn.Pos())
	start := declPos.Line
	if fn.Doc != nil && len(fn.Doc.List) > 0 {
		start = fset.Position(fn.Doc.Pos()).Line
	}
	for _, d := range p.Directives {
		if d.Kind == kind && d.File == declPos.Filename && d.Line >= start && d.Line <= declPos.Line {
			return d
		}
	}
	return nil
}

// hotpathDirective returns the //proram:hotpath directive attached to a
// function declaration.
func (p *Package) hotpathDirective(fset *token.FileSet, fn *ast.FuncDecl) *Directive {
	return p.funcDirective(fset, fn, "hotpath")
}
