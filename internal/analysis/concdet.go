package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sync"
)

// ConcDeterminism extends the determinism discipline to concurrent
// sources of nondeterminism. Three shapes are flagged:
//
//   - a select with two or more communication cases: when several are
//     ready the runtime picks pseudo-randomly, so the winner is a
//     scheduling outcome (select-with-default is the sequential
//     determinism pass's finding);
//
//   - a channel receive inside a loop, including range-over-channel:
//     multi-sender fan-in delivers in goroutine completion order, so
//     anything folded, logged or exported from the loop can differ run
//     to run;
//
//   - goroutines spawned in a loop whose literal sends on a channel
//     declared outside it: the sends arrive in scheduling order.
//
// The sharded frontend is *designed* to be deterministic despite these
// shapes: workers report into a round barrier and the round driver
// reassembles results into canonical (slot, partition) order before
// anything observable happens. //proram:detround <reason> on the
// flagged line records exactly that justification — and this pass
// verifies it, by requiring the enclosing function to be reachable in
// the call graph from a round driver root ("internal/shard.Frontend.dispatch"
// or "internal/shard.Replay" by default; fixture tests pass their own).
// A detround directive outside the round protocol, or one that marks
// nothing, is itself a finding. //proram:allow concdeterminism remains
// the escape hatch for code with a different argument (say, a
// single-sender channel).
func ConcDeterminism(roots ...string) *Pass {
	if len(roots) == 0 {
		roots = []string{"internal/shard.Frontend.dispatch", "internal/shard.Replay"}
	}
	var once sync.Once
	var reachable map[*CGNode]bool
	p := &Pass{
		Name:    "concdeterminism",
		Aliases: []string{"concdet"},
		Doc:     "flag scheduling-ordered concurrency (multi-case selects, fan-in receives, spawn-order results) outside the round-barrier protocol",
	}
	p.Run = func(u *Unit) {
		once.Do(func() { reachable = reachableFrom(u.Prog, roots) })
		for _, f := range u.Pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				var node *CGNode
				if obj, ok := u.Pkg.Info.Defs[fn.Name].(*types.Func); ok {
					node = u.Prog.CallGraph().NodeOf(obj)
				}
				checkConcDet(u, node, fn, reachable)
			}
		}
		// A detround that marked no finding is stale — the code it
		// justified is gone or was never flagged.
		for _, d := range u.Pkg.Directives {
			if d.Kind == "detround" && !d.used {
				u.Reportf(d.Pos, "//proram:detround marks no concurrent-determinism finding; delete the stale directive")
			}
		}
	}
	return p
}

// reachableFrom resolves the root specs ("<pkg-rel>.<Func>" or
// "<pkg-rel>.<Type>.<Method>") and walks the call graph forward.
func reachableFrom(prog *Program, roots []string) map[*CGNode]bool {
	want := make(map[string]bool, len(roots))
	for _, r := range roots {
		want[r] = true
	}
	seen := make(map[*CGNode]bool)
	var frontier []*CGNode
	for _, n := range prog.CallGraph().Nodes {
		if want[n.Pkg.Rel+"."+n.Name()] {
			seen[n] = true
			frontier = append(frontier, n)
		}
	}
	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		for _, e := range n.Callees {
			if !seen[e.Callee] {
				seen[e.Callee] = true
				frontier = append(frontier, e.Callee)
			}
		}
	}
	return seen
}

// checkConcDet scans one declaration for the three shapes. Nested
// function literals count as part of the declaration: their code is
// this function's concurrency.
func checkConcDet(u *Unit, node *CGNode, fn *ast.FuncDecl, reachable map[*CGNode]bool) {
	var loops int
	var walk func(x ast.Node) bool
	report := func(pos token.Pos, format string, args ...any) {
		reportConcDet(u, node, reachable, pos, format, args...)
	}
	walk = func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.SelectStmt:
			comms := 0
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					comms++
				}
			}
			if comms >= 2 {
				report(x.Pos(), "select with %d communication cases: when several are ready the runtime picks pseudo-randomly, so the outcome is scheduling-dependent", comms)
			}
		case *ast.ForStmt:
			loops++
			if x.Cond != nil {
				ast.Inspect(x.Cond, walk)
			}
			ast.Inspect(x.Body, walk)
			loops--
			return false
		case *ast.RangeStmt:
			if isChanType(u.Pkg.Info, x.X) {
				report(x.Pos(), "range over a channel is unordered fan-in: values arrive in goroutine scheduling order when the channel has multiple senders")
			}
			loops++
			ast.Inspect(x.Body, walk)
			loops--
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && loops > 0 {
				report(x.Pos(), "channel receive inside a loop is unordered fan-in: arrival order depends on goroutine scheduling when the channel has multiple senders")
			}
		case *ast.GoStmt:
			if loops > 0 {
				if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok && sendsOnOuterChan(u.Pkg.Info, lit) {
					report(x.Pos(), "goroutines spawned in a loop send on a shared channel: completion order, and so the receive order, is scheduling-dependent")
				}
			}
		}
		return true
	}
	ast.Inspect(fn.Body, walk)
}

// sendsOnOuterChan reports whether the literal sends on a channel it
// did not itself declare.
func sendsOnOuterChan(info *types.Info, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		s, ok := x.(*ast.SendStmt)
		if !ok {
			return true
		}
		if obj := rootObject(info, s.Chan); obj != nil {
			if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
				found = true
			}
		}
		return true
	})
	return found
}

// reportConcDet emits one finding unless an in-scope, verified
// //proram:detround covers it.
func reportConcDet(u *Unit, node *CGNode, reachable map[*CGNode]bool, pos token.Pos, format string, args ...any) {
	p := u.Prog.Fset.Position(pos)
	if d := u.Pkg.directiveAt("detround", p.Filename, p.Line); d != nil {
		d.used = true
		if d.Reason == "" {
			u.Reportf(pos, "//proram:detround needs a one-line reason explaining how the round barrier orders this")
			return
		}
		if node == nil || !reachable[node] {
			name := "this function"
			if node != nil {
				name = node.Name()
			}
			u.Reportf(pos, "//proram:detround on code in %s, which is not reachable from a round driver; the round-barrier protocol cannot be what makes this deterministic", name)
		}
		return
	}
	u.Reportf(pos, format, args...)
}
