package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sync"
)

// Branchless verifies //proram:branchless functions: the constant-time
// kernels of the frontend (the PartitionMap scan, the masked compares
// feeding it) promise that no branch, select, short-circuit, map
// lookup or variable-latency shift depends on any input-derived value.
// Lengths are public by construction (the taint layer sanitizes
// len/cap), so counted loops over public geometry pass; anything whose
// condition or key carries a parameter, secret or unanalyzable origin
// is a finding. Calls from a branchless function must either target
// another //proram:branchless function, a vetted constant-time package
// (math/bits, crypto/subtle), or not receive derived values into
// parameters the callee branches on. //proram:public declassifies at
// a site; panic is accepted as the abort channel.
func Branchless() *Pass {
	p := &Pass{
		Name:    "branchless",
		Aliases: []string{"ct"},
		Doc:     "verify //proram:branchless functions contain no data-dependent branch, select, short-circuit, map access or variable shift, transitively through calls",
	}

	// The set of branchless-marked functions across the whole module,
	// built once per run so callee checks see marks in any package.
	var once sync.Once
	var markedFns map[*types.Func]bool
	markedSet := func(prog *Program) map[*types.Func]bool {
		once.Do(func() {
			markedFns = make(map[*types.Func]bool)
			for _, pkg := range prog.Packages {
				for _, f := range pkg.Files {
					for _, decl := range f.Decls {
						fn, ok := decl.(*ast.FuncDecl)
						if !ok || fn.Body == nil {
							continue
						}
						if pkg.funcDirective(prog.Fset, fn, "branchless") == nil {
							continue
						}
						if obj, ok := pkg.Info.Defs[fn.Name].(*types.Func); ok {
							markedFns[obj] = true
						}
					}
				}
			}
		})
		return markedFns
	}

	p.Run = func(u *Unit) {
		marked := markedSet(u.Prog)
		for _, f := range u.Pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := u.Pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok || !marked[obj] {
					continue
				}
				node := u.Prog.CallGraph().NodeOf(obj)
				if node == nil {
					continue
				}
				env := u.Prog.taintSummaries().maskEnv(node)
				(&branchlessCheck{u: u, env: env, marked: marked}).check(fn)
			}
		}
	}
	return p
}

type branchlessCheck struct {
	u      *Unit
	env    *taintEnv
	marked map[*types.Func]bool
}

// maskDesc names the origins in a mask for diagnostics.
func maskDesc(m originMask) string {
	switch {
	case m&secretOrigin != 0:
		return "secret data"
	case m&opaqueOrigin != 0:
		return "values the analysis cannot trace"
	case m != 0:
		return "function inputs"
	}
	return "public data"
}

func (c *branchlessCheck) derived(e ast.Expr) (originMask, bool) {
	m := c.env.exprMask(e)
	return m, m != 0
}

// report flags a site unless a //proram:public directive declassifies
// the line (Reportf additionally honors //proram:allow).
func (c *branchlessCheck) report(pos token.Pos, format string, args ...any) {
	if c.env.declassified(pos) {
		return
	}
	c.u.Reportf(pos, format, args...)
}

func (c *branchlessCheck) check(fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.IfStmt:
			if m, bad := c.derived(x.Cond); bad {
				c.report(x.Cond.Pos(), "branchless function %s: if condition depends on %s", fn.Name.Name, maskDesc(m))
			}
		case *ast.ForStmt:
			if x.Cond != nil {
				if m, bad := c.derived(x.Cond); bad {
					c.report(x.Cond.Pos(), "branchless function %s: loop condition depends on %s", fn.Name.Name, maskDesc(m))
				}
			}
		case *ast.SwitchStmt:
			if x.Tag != nil {
				if m, bad := c.derived(x.Tag); bad {
					c.report(x.Tag.Pos(), "branchless function %s: switch tag depends on %s", fn.Name.Name, maskDesc(m))
				}
			}
			for _, clause := range x.Body.List {
				cc, ok := clause.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if m, bad := c.derived(e); bad {
						c.report(e.Pos(), "branchless function %s: case expression depends on %s", fn.Name.Name, maskDesc(m))
					}
				}
			}
		case *ast.TypeSwitchStmt:
			c.report(x.Switch, "branchless function %s: type switches dispatch on dynamic types, which the constant-time contract cannot cover", fn.Name.Name)
		case *ast.SelectStmt:
			c.report(x.Select, "branchless function %s: select timing depends on channel readiness", fn.Name.Name)
		case *ast.GoStmt:
			c.report(x.Go, "branchless function %s: spawning a goroutine hands timing to the scheduler", fn.Name.Name)
		case *ast.BinaryExpr:
			switch x.Op {
			case token.LAND, token.LOR:
				if m, bad := c.derived(x.X); bad {
					c.report(x.OpPos, "branchless function %s: %s short-circuits on an operand derived from %s; use bitwise &/| over masks", fn.Name.Name, x.Op, maskDesc(m))
				}
			case token.SHL, token.SHR:
				if c.constShift(x.Y) {
					break
				}
				if m, bad := c.derived(x.Y); bad {
					c.report(x.OpPos, "branchless function %s: shift amount depends on %s (variable-latency on some targets)", fn.Name.Name, maskDesc(m))
				}
			}
		case *ast.AssignStmt:
			if x.Tok == token.SHL_ASSIGN || x.Tok == token.SHR_ASSIGN {
				if !c.constShift(x.Rhs[0]) {
					if m, bad := c.derived(x.Rhs[0]); bad {
						c.report(x.TokPos, "branchless function %s: shift amount depends on %s (variable-latency on some targets)", fn.Name.Name, maskDesc(m))
					}
				}
			}
		case *ast.IndexExpr:
			if tv, ok := c.env.info().Types[x.Index]; ok && tv.IsType() {
				return true
			}
			if _, isMap := deref(typeOf(c.env.info(), x.X)).(*types.Map); isMap {
				if m, bad := c.derived(x.Index); bad {
					c.report(x.Pos(), "branchless function %s: map lookup keyed by %s has data-dependent latency", fn.Name.Name, maskDesc(m))
				}
			}
		case *ast.CallExpr:
			c.checkCall(fn, x)
		}
		return true
	})
}

func (c *branchlessCheck) constShift(e ast.Expr) bool {
	tv, ok := c.env.info().Types[e]
	return ok && tv.Value != nil
}

// checkCall verifies a call site: builtins and vetted constant-time
// packages pass, branchless-marked callees carry their own proof, and
// any other callee receiving a derived value is flagged — precisely
// (naming the sink) when the callee is resolved and is known to branch
// on that parameter, conservatively when the callee is opaque.
func (c *branchlessCheck) checkCall(fn *ast.FuncDecl, call *ast.CallExpr) {
	info := c.env.info()
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "panic":
				// The abort channel: a panic ends the trace.
				return
			case "len", "cap", "append", "copy", "make", "new", "delete", "clear", "print", "println":
				return
			case "min", "max":
				for _, a := range call.Args {
					if m, bad := c.derived(a); bad {
						c.report(call.Pos(), "branchless function %s: min/max on %s may compile to a branch; use masked arithmetic", fn.Name.Name, maskDesc(m))
						return
					}
				}
				return
			}
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	callee := c.env.resolveCallee(call)
	if callee != nil {
		if c.marked[callee.Fn] {
			return // the callee carries its own branchless proof
		}
		masks, _ := c.env.callArgs(callee, call)
		sum := c.env.s.byFunc[callee.Fn]
		for i, m := range masks {
			if m == 0 || sum == nil || i >= len(sum.paramSinks) || len(sum.paramSinks[i]) == 0 {
				continue
			}
			c.report(call.Pos(), "branchless function %s: call to %s passes a value derived from %s into parameter %s, which %s branches on; mark the callee //proram:branchless or mask the value",
				fn.Name.Name, callee.Name(), maskDesc(m), callee.Params[i].Name(), callee.Name())
			return
		}
		return
	}
	if pkg, _ := calleePackageFunc(info, call); pkg == "math/bits" || pkg == "crypto/subtle" {
		return
	}
	for _, a := range call.Args {
		if m, bad := c.derived(a); bad {
			c.report(call.Pos(), "branchless function %s: call to an unanalyzable function passes a value derived from %s; the constant-time contract cannot be verified through it", fn.Name.Name, maskDesc(m))
			return
		}
	}
}
