package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BoundsCheck is the bounds-proof discipline for //proram:hotpath
// functions. A hot-path indexing that the compiler cannot prove
// in-bounds costs a checked branch per access — and a hot-path indexing
// that *fails* its check panics mid-round, which is both a crash and a
// distinguishable trace ending. This pass demands that every slice,
// array and string indexing in a hotpath function be provable from
// what dominates it: the index's computed interval, a dominating
// comparison against the container's length, a range binding, or an
// earlier indexing that already pinned the container (the `_ = s[n-1]`
// idiom — the pin itself is exempt, it IS the check).
//
// The proof engine is the value-range layer in vrange.go: saturating
// intervals over the SSA view plus difference constraints harvested
// from dominating branches and executed indexings, decided by a
// Bellman–Ford closure. Anything it cannot prove is a finding naming
// the index's range and the missing side of the proof.
func BoundsCheck() *Pass {
	p := &Pass{
		Name:    "boundscheck",
		Aliases: []string{"bce"},
		Doc:     "prove every slice/array/string indexing in //proram:hotpath functions in-bounds from dominating checks, intervals and pins",
	}
	p.Run = func(u *Unit) {
		for _, f := range u.Pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				if u.Pkg.hotpathDirective(u.Prog.Fset, fn) == nil {
					continue
				}
				checkFuncBounds(u, fn)
			}
		}
	}
	return p
}

func checkFuncBounds(u *Unit, fn *ast.FuncDecl) {
	v := u.Prog.valueRange(u.Pkg, fn)
	doomed := v.fn.cfg.doomed()
	for _, b := range v.fn.cfg.blocks {
		if !v.fn.reach[b.index] || doomed[b.index] {
			continue
		}
		for nodeIdx, n := range b.nodes {
			exempt := pinTarget(n)
			walkIndexings(u, v, b.index, nodeIdx, n, nil, exempt)
		}
	}
}

// pinTarget recognizes the pin idiom `_ = s[expr]` and returns its
// IndexExpr: the statement exists to be the bound check, so it is not
// itself an obligation (but it still feeds facts to later nodes).
func pinTarget(n ast.Node) ast.Expr {
	as, ok := n.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	if id, ok := as.Lhs[0].(*ast.Ident); !ok || id.Name != "_" {
		return nil
	}
	if ix, ok := ast.Unparen(as.Rhs[0]).(*ast.IndexExpr); ok {
		return ix
	}
	return nil
}

// walkIndexings visits every indexing of one CFG node, carrying the
// short-circuit guard stack: inside the right operand of && the left
// operand is known true, so `i < len(s) && s[i] == x` proves itself.
func walkIndexings(u *Unit, v *vrangeFunc, blk, nodeIdx int, n ast.Node, guards []guardFact, exempt ast.Expr) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BinaryExpr:
			if x.Op == token.LAND || x.Op == token.LOR {
				walkIndexings(u, v, blk, nodeIdx, x.X, guards, exempt)
				walkIndexings(u, v, blk, nodeIdx, x.Y, append(append([]guardFact(nil), guards...), guardFact{cond: x.X, sense: x.Op == token.LAND}), exempt)
				return false
			}
		case *ast.IndexExpr:
			if x != exempt {
				checkIndexing(u, v, blk, nodeIdx, x, guards)
			}
		}
		return true
	})
}

// checkIndexing discharges (or reports) one indexing obligation.
func checkIndexing(u *Unit, v *vrangeFunc, blk, nodeIdx int, x *ast.IndexExpr, guards []guardFact) {
	info := v.fn.info()
	if tv, ok := info.Types[x.Index]; ok && tv.IsType() {
		return // generic instantiation
	}

	var arrLen int64 = -1
	switch t := deref(typeOf(info, x.X)).(type) {
	case *types.Array:
		arrLen = t.Len()
	case *types.Slice:
	case *types.Basic:
		if t.Info()&types.IsString == 0 {
			return
		}
	default:
		return
	}

	iv := v.evalExpr(x.Index)
	lowerOK := !iv.empty() && iv.lo >= 0
	upperOK := arrLen >= 0 && !iv.empty() && iv.hi <= arrLen-1

	var facts []vfact
	it, ioff, canonOK := v.canon(x.Index, 0)
	if (!lowerOK || !upperOK) && canonOK {
		facts = v.factsAt(blk, nodeIdx, guards)
		if !lowerOK {
			lowerOK = v.prove(facts, zTerm, 0, it, ioff, 0)
		}
		if !upperOK {
			if arrLen >= 0 {
				upperOK = v.prove(facts, it, ioff, zTerm, 0, arrLen-1)
			} else if ct, coff, ok := v.canon(x.X, 0); ok && coff == 0 && !ct.len && ct.vid >= 0 {
				lenT := vterm{vid: ct.vid, len: true, path: ct.path}
				upperOK = v.prove(facts, it, ioff, lenT, 0, -1)
			}
		}
	}
	if lowerOK && upperOK {
		return
	}

	side := "in bounds"
	switch {
	case lowerOK:
		side = "below the length"
	case upperOK:
		side = "non-negative"
	}
	u.Reportf(x.Pos(), "cannot prove %s stays %s (index range %s); add a dominating bound check or pin the container with _ = %s[max]",
		types.ExprString(x), side, iv, types.ExprString(x.X))
}
