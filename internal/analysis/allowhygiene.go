package analysis

import "strings"

// AllowHygiene keeps the //proram: directive vocabulary honest: unknown
// directive kinds, allow directives naming unknown checks, empty
// suppression lists and justification-free invariants are all flagged.
// Its Finish hook runs after every other pass and reports allow
// directives that suppressed nothing — stale suppressions are how real
// findings sneak back in unnoticed. (A directive is only reported stale
// when every check it names actually executed this run, so partial
// -checks invocations never produce false alarms.)
func AllowHygiene() *Pass {
	known := map[string]bool{"allow": true, "invariant": true, "public": true, "secret": true, "hotpath": true, "detround": true, "fixedtrip": true, "branchless": true}
	p := &Pass{
		Name:    "allowhygiene",
		Aliases: []string{"hygiene"},
		Doc:     "flag unknown, malformed and stale //proram: directives",
	}
	p.Run = func(u *Unit) {
		checks := make(map[string]bool)
		for _, name := range PassNames() {
			checks[name] = true
		}
		for _, d := range u.Pkg.Directives {
			pos := d.Pos
			switch {
			case !known[d.Kind]:
				u.Reportf(pos, "unknown directive //proram:%s (known: allow, invariant, public, secret, hotpath, detround, fixedtrip, branchless)", d.Kind)
			case d.Kind == "allow" && len(d.Checks) == 0:
				u.Reportf(pos, "//proram:allow names no check; write //proram:allow <check> <reason>")
			case d.Kind == "allow":
				for _, c := range d.Checks {
					if !checks[c] {
						u.Reportf(pos, "//proram:allow names unknown check %q (known: %s)", c, strings.Join(PassNames(), ", "))
					}
				}
			case d.Kind == "invariant" && d.Reason == "":
				u.Reportf(pos, "//proram:invariant needs a one-line justification")
			}
		}
	}
	p.Finish = func(r *Runner) {
		for _, pkg := range r.analyzed {
			for _, d := range pkg.Directives {
				if d.Kind != "allow" || d.used || len(d.Checks) == 0 {
					continue
				}
				ran := true
				for _, c := range d.Checks {
					if !r.executed[c] {
						ran = false
						break
					}
				}
				if !ran {
					continue
				}
				u := &Unit{Pass: p, Pkg: pkg, Prog: r.prog, r: r}
				u.Reportf(d.Pos, "//proram:allow %s suppresses nothing; delete the stale directive", strings.Join(d.Checks, ","))
			}
		}
	}
	return p
}
