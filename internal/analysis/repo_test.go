package analysis

import "testing"

// TestRepositoryIsVetClean is the driver test the CI job mirrors: every
// default pass over every module package must report nothing. A failure
// here means a change introduced nondeterminism, an unjustified panic, a
// data-dependent branch or index, or an allocation on the hot path —
// fix the code or add a justified //proram: directive, never weaken the
// pass.
func TestRepositoryIsVetClean(t *testing.T) {
	prog := program(t)
	diags := NewRunner(prog).Run(DefaultPasses(), prog.ModulePackages())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("%d finding(s); run `go run ./cmd/proram-vet ./...` locally", len(diags))
	}
}

// TestHotPathAnnotationSweep pins the //proram:hotpath coverage of the
// real ORAM access path: the controller's path access, the stash scan,
// the PLB lookup, the position-map walk, the prefetch counter update and
// the DRAM enqueue must all stay marked, so the allocdiscipline pass
// (kept green by TestRepositoryIsVetClean) keeps guarding them. Dropping
// a directive silently un-guards that function; this test makes the drop
// loud.
// TestConcurrencyAnnotationSweep pins the concurrency annotations of
// the sharded frontend: the round-barrier receive in Frontend.collect
// keeps its verified //proram:detround justification (the
// concdeterminism pass checks the reachability claim; this test makes
// deleting the directive loud), detround never spreads outside
// internal/shard where the round-barrier argument holds, and every
// concurrency-pass suppression carries a reason.
func TestConcurrencyAnnotationSweep(t *testing.T) {
	prog := program(t)
	detrounds := 0
	for _, pkg := range prog.ModulePackages() {
		for _, d := range pkg.Directives {
			switch d.Kind {
			case "detround":
				detrounds++
				if pkg.Rel != "internal/shard" {
					t.Errorf("%s:%d: //proram:detround outside internal/shard; the round-barrier argument only holds there", d.File, d.Line)
				}
				if d.Reason == "" {
					t.Errorf("%s:%d: //proram:detround without a reason", d.File, d.Line)
				}
			case "allow":
				for _, c := range d.Checks {
					if (c == "concdeterminism" || c == "goroutinediscipline" || c == "lockorder") && d.Reason == "" {
						t.Errorf("%s:%d: //proram:allow %s without a reason", d.File, d.Line, c)
					}
				}
			}
		}
	}
	if detrounds == 0 {
		t.Error("internal/shard has no //proram:detround directives; the round-barrier receive in Frontend.collect must stay justified")
	}
}

func TestHotPathAnnotationSweep(t *testing.T) {
	prog := program(t)
	perPkg := make(map[string]int)
	total := 0
	for _, pkg := range prog.ModulePackages() {
		for _, d := range pkg.Directives {
			if d.Kind == "hotpath" {
				perPkg[pkg.Rel]++
				total++
				if d.Reason == "" {
					t.Errorf("%s:%d: //proram:hotpath without a reason", d.File, d.Line)
				}
			}
		}
	}
	for _, rel := range []string{
		"internal/oram",
		"internal/stash",
		"internal/posmap",
		"internal/tree",
		"internal/prefetch",
		"internal/superblock",
		"internal/dram",
		"internal/dram/banked",
		"internal/shard",
	} {
		if perPkg[rel] == 0 {
			t.Errorf("package %s has no //proram:hotpath functions; the access path through it is unguarded", rel)
		}
	}
	if total < 25 {
		t.Errorf("only %d //proram:hotpath directives module-wide; the access-path sweep marked 35+", total)
	}
}
