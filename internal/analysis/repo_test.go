package analysis

import "testing"

// TestRepositoryIsVetClean is the driver test the CI job mirrors: every
// default pass over every module package must report nothing. A failure
// here means a change introduced nondeterminism, an unjustified panic or
// a data-dependent branch — fix the code or add a justified //proram:
// directive, never weaken the pass.
func TestRepositoryIsVetClean(t *testing.T) {
	prog := program(t)
	diags := NewRunner(prog).Run(DefaultPasses(), prog.ModulePackages())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("%d finding(s); run `go run ./cmd/proram-vet ./...` locally", len(diags))
	}
}
