package analysis

import (
	"go/ast"
	"go/types"
)

// PanicDiscipline reports panic calls in library (non-main) packages.
// A panic in a library either crashes a long-running production process
// or, worse, gets recovered far from the fault with the simulator in an
// inconsistent state. Library code must return errors; the narrow
// exception is a genuine internal invariant — a condition that cannot
// occur unless the program itself is buggy — which must carry a
// //proram:invariant directive with a one-line justification.
func PanicDiscipline() *Pass {
	p := &Pass{
		Name:    "panicdiscipline",
		Aliases: []string{"panics"},
		Doc:     "require error returns or //proram:invariant justifications instead of library panics",
	}
	p.Run = func(u *Unit) {
		if u.Pkg.Name == "main" {
			return
		}
		for _, f := range u.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if _, isBuiltin := u.Pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				pos := u.Prog.Fset.Position(call.Pos())
				if d := u.Pkg.directiveAt("invariant", pos.Filename, pos.Line); d != nil {
					if d.Reason == "" {
						u.Reportf(call.Pos(), "//proram:invariant needs a one-line justification for why this panic is unreachable")
					}
					return true
				}
				u.Reportf(call.Pos(), "panic in library code: return an error, or justify an unreachable invariant with //proram:invariant")
				return true
			})
		}
	}
	return p
}
