package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// GoroutineDiscipline inventories every go statement in the module,
// computes the captured-variable escape set of each spawn site, and
// flags shared accesses with no synchronization fact between the two
// goroutine contexts:
//
//   - a variable captured by a spawned function literal that the
//     literal writes while the spawning goroutine (after the spawn) or
//     a sibling spawn also touches it — unless both accesses run under
//     a common lock (held-lock summaries), the literal signals a
//     captured channel the enclosing access waits on (send/close before
//     receive, Done before Wait), or the enclosing side only reads
//     after such a join;
//
//   - a spawn inside a loop whose literal writes a variable declared
//     outside the loop: the iterations race with each other even if the
//     spawner never touches the variable again;
//
//   - for `go v.method()` spawns, a post-spawn unlocked write by the
//     spawner to the escaped receiver/argument object, unless the write
//     holds a lock the spawned callee (transitively) acquires too.
//
// "After the spawn" is source order — a sound happens-before for
// straight-line code and the conventional layout (spawn, then join,
// then read). Method-call receivers count as reads, so a
// WaitGroup-joined worker pool mutating its own receiver stays quiet.
func GoroutineDiscipline() *Pass {
	p := &Pass{
		Name:    "goroutinediscipline",
		Aliases: []string{"goroutines"},
		Doc:     "flag unsynchronized writes to variables shared across goroutine spawn sites",
	}
	p.Run = func(u *Unit) {
		for _, site := range u.Prog.spawnSites() {
			if site.node.Pkg != u.Pkg {
				continue
			}
			checkSpawnSite(u, site)
		}
	}
	return p
}

// spawnSite is one go statement with its escape set.
type spawnSite struct {
	node *CGNode     // enclosing declared function
	stmt *ast.GoStmt // the spawn
	lit  *ast.FuncLit
	// callee is the resolved spawned function for `go f(...)` /
	// `go v.m(...)` spawns; nil for literals and unresolved values.
	callee *CGNode
	// captured is the escape set, sorted by name: for literals, the
	// enclosing function's variables the body references; for calls,
	// the root objects of the receiver and arguments.
	captured []types.Object
	// inLoop is set when the go statement sits inside a for/range body
	// of the enclosing function; loopPos/loopEnd bound that loop.
	inLoop           bool
	loopPos, loopEnd token.Pos
}

// spawnSites builds (once) the spawn-site inventory of the whole
// module, in call-graph node order.
func (p *Program) spawnSites() []*spawnSite {
	p.goOnce.Do(func() {
		for _, n := range p.CallGraph().Nodes {
			p.spawns = append(p.spawns, collectSpawnSites(p, n)...)
		}
	})
	return p.spawns
}

func collectSpawnSites(prog *Program, n *CGNode) []*spawnSite {
	var out []*spawnSite
	var loops []ast.Node
	var walk func(x ast.Node) bool
	walk = func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, x)
			switch s := x.(type) {
			case *ast.ForStmt:
				ast.Inspect(s.Body, walk)
			case *ast.RangeStmt:
				ast.Inspect(s.Body, walk)
			}
			loops = loops[:len(loops)-1]
			return false
		case *ast.GoStmt:
			site := &spawnSite{node: n, stmt: x}
			if len(loops) > 0 {
				inner := loops[len(loops)-1]
				site.inLoop, site.loopPos, site.loopEnd = true, inner.Pos(), inner.End()
			}
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				site.lit = lit
				site.captured = capturedVars(n, lit)
			} else {
				site.callee = prog.CallGraph().resolveCall(n.Pkg, x.Call)
				site.captured = escapedRoots(n.Pkg.Info, x.Call)
			}
			out = append(out, site)
		}
		return true
	}
	ast.Inspect(n.Decl.Body, walk)
	return out
}

// capturedVars returns the variables referenced by the literal's body
// that are declared in the enclosing function outside the literal —
// the spawn's shared state.
func capturedVars(n *CGNode, lit *ast.FuncLit) []types.Object {
	seen := make(map[types.Object]bool)
	var out []types.Object
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		obj := n.Pkg.Info.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Pos() >= n.Decl.Pos() && v.Pos() < lit.Pos() {
			seen[v] = true
			out = append(out, v)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// escapedRoots returns the root objects the call hands to the spawned
// goroutine: its receiver and argument bases.
func escapedRoots(info *types.Info, call *ast.CallExpr) []types.Object {
	seen := make(map[types.Object]bool)
	var out []types.Object
	add := func(x ast.Expr) {
		if obj := rootObject(info, x); obj != nil && !seen[obj] {
			seen[obj] = true
			out = append(out, obj)
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		add(sel.X)
	}
	for _, a := range call.Args {
		add(a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// varAccess is one read or write of a tracked object within a context.
type varAccess struct {
	obj   types.Object
	pos   token.Pos
	write bool
	held  []string // locks held at the access (sorted)
}

// checkSpawnSite analyzes one spawn against its enclosing function.
func checkSpawnSite(u *Unit, site *spawnSite) {
	if site.lit != nil {
		checkLiteralSpawn(u, site)
		return
	}
	checkCallSpawn(u, site)
}

func checkLiteralSpawn(u *Unit, site *spawnSite) {
	prog, n := u.Prog, site.node
	tracked := make(map[types.Object]bool, len(site.captured))
	for _, obj := range site.captured {
		tracked[obj] = true
	}
	litLocks := analyzeBodyLocks(prog, n.Pkg, site.lit.Body)
	litAcc := collectAccesses(n.Pkg.Info, site.lit.Body, tracked, litLocks.heldAt, nil)

	enclosing := prog.lockSummaries().byFunc[n]
	otherLits := map[*ast.FuncLit]bool{site.lit: true}
	var siblingAcc []varAccess
	for _, sib := range prog.spawnSites() {
		if sib.node != n || sib.lit == nil || sib == site {
			continue
		}
		otherLits[sib.lit] = true
		sl := analyzeBodyLocks(prog, n.Pkg, sib.lit.Body)
		siblingAcc = append(siblingAcc, collectAccesses(n.Pkg.Info, sib.lit.Body, tracked, sl.heldAt, nil)...)
	}
	encAcc := collectAccesses(n.Pkg.Info, n.Decl.Body, tracked, enclosing.heldAt, otherLits)

	joins := collectJoins(site)

	for _, obj := range site.captured {
		reported := false
		// The loop self-race: one go statement in a loop is many
		// goroutines; a write to anything declared outside the loop
		// races with the sibling iterations.
		if site.inLoop {
			for _, a := range litAcc {
				if a.obj == obj && a.write && len(a.held) == 0 &&
					!(obj.Pos() >= site.loopPos && obj.Pos() < site.loopEnd) {
					u.Reportf(a.pos, "goroutines spawned in a loop all write captured variable %q (declared outside the loop) with no lock held (data race between iterations)", obj.Name())
					reported = true
					break
				}
			}
		}
		for _, a := range litAcc {
			if a.obj != obj || reported {
				continue
			}
			for _, b := range append(encAccAfter(encAcc, obj, site.stmt.End()), siblingsFor(siblingAcc, obj)...) {
				if !a.write && !b.write {
					continue
				}
				if commonLock(a.held, b.held) {
					continue
				}
				if joins.ordered(b) {
					continue
				}
				w := a
				if !w.write {
					w = b
				}
				u.Reportf(w.pos, "unsynchronized write to %q, shared with the goroutine spawned at %s: the other goroutine touches it at %s with no common lock, channel join or WaitGroup.Wait ordering (data race)",
					obj.Name(), prog.relPosition(site.stmt.Pos()), prog.relPosition(otherPos(w, a, b)))
				reported = true
				break
			}
		}
	}
}

func encAccAfter(acc []varAccess, obj types.Object, after token.Pos) []varAccess {
	var out []varAccess
	for _, a := range acc {
		if a.obj == obj && a.pos > after {
			out = append(out, a)
		}
	}
	return out
}

func siblingsFor(acc []varAccess, obj types.Object) []varAccess {
	var out []varAccess
	for _, a := range acc {
		if a.obj == obj {
			out = append(out, a)
		}
	}
	return out
}

func otherPos(w, a, b varAccess) token.Pos {
	if w.pos == a.pos {
		return b.pos
	}
	return a.pos
}

func commonLock(a, b []string) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// spawnJoins is the synchronization-fact index for one literal spawn:
// positions in the enclosing body after which accesses are ordered
// behind the goroutine's completion signal.
type spawnJoins struct {
	waitPos []token.Pos // first receive on a signaled channel / Wait on a Done'd WaitGroup
}

func (j spawnJoins) ordered(b varAccess) bool {
	for _, p := range j.waitPos {
		if b.pos > p {
			return true
		}
	}
	return false
}

// collectJoins matches completion signals inside the literal (send or
// close on a captured channel, WaitGroup.Done — deferred or not)
// against the corresponding join in the enclosing body (a receive on
// that channel, Wait on that WaitGroup).
func collectJoins(site *spawnSite) spawnJoins {
	info := site.node.Pkg.Info
	signaled := make(map[types.Object]bool)
	ast.Inspect(site.lit.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.SendStmt:
			if obj := rootObject(info, x.Chan); obj != nil {
				signaled[obj] = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "close" && len(x.Args) == 1 {
					if obj := rootObject(info, x.Args[0]); obj != nil {
						signaled[obj] = true
					}
				}
			}
			if op, ok := classifySyncOp(info, x); ok && op.typ == "WaitGroup" && op.method == "Done" {
				if obj := rootObject(info, op.recv); obj != nil {
					signaled[obj] = true
				}
			}
		}
		return true
	})
	var joins spawnJoins
	if len(signaled) == 0 {
		return joins
	}
	ast.Inspect(site.node.Decl.Body, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok && lit == site.lit {
			return false
		}
		switch x := x.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				if obj := rootObject(info, x.X); obj != nil && signaled[obj] {
					joins.waitPos = append(joins.waitPos, x.End())
				}
			}
		case *ast.RangeStmt:
			if obj := rootObject(info, x.X); obj != nil && signaled[obj] && isChanType(info, x.X) {
				joins.waitPos = append(joins.waitPos, x.Pos())
			}
		case *ast.CallExpr:
			if op, ok := classifySyncOp(info, x); ok && op.typ == "WaitGroup" && op.method == "Wait" {
				if obj := rootObject(info, op.recv); obj != nil && signaled[obj] {
					joins.waitPos = append(joins.waitPos, x.End())
				}
			}
		}
		return true
	})
	return joins
}

// checkCallSpawn flags post-spawn unlocked writes to objects handed to
// a spawned method/function, unless the write holds a lock the callee
// transitively acquires as well.
func checkCallSpawn(u *Unit, site *spawnSite) {
	prog, n := u.Prog, site.node
	tracked := make(map[types.Object]bool, len(site.captured))
	for _, obj := range site.captured {
		tracked[obj] = true
	}
	if len(tracked) == 0 {
		return
	}
	var calleeLocks map[string]token.Pos
	calleeName := "the spawned function"
	if site.callee != nil {
		calleeLocks = prog.lockSummaries().byFunc[site.callee].transitive
		calleeName = site.callee.Name()
	}
	enclosing := prog.lockSummaries().byFunc[n]
	for _, a := range collectAccesses(n.Pkg.Info, n.Decl.Body, tracked, enclosing.heldAt, nil) {
		if !a.write || a.pos <= site.stmt.End() {
			continue
		}
		shared := false
		for _, h := range a.held {
			if _, ok := calleeLocks[baseLockID(h)]; ok {
				shared = true
				break
			}
		}
		if shared {
			continue
		}
		u.Reportf(a.pos, "write to %q after it escaped to %s (go statement at %s) holds no lock the goroutine also takes (data race)",
			a.obj.Name(), calleeName, prog.relPosition(site.stmt.Pos()))
	}
}

// collectAccesses gathers reads and writes of the tracked objects in a
// body. Writes are assignment left-hand roots and inc/dec operands;
// everything else — including method-call receivers — is a read.
// heldAt supplies the lock set of the containing CFG node; skipLits
// excludes sibling spawn literals (they are their own context).
func collectAccesses(info *types.Info, body *ast.BlockStmt, tracked map[types.Object]bool, heldAt map[ast.Node][]string, skipLits map[*ast.FuncLit]bool) []varAccess {
	writes := make(map[*ast.Ident]bool)
	var acc []varAccess
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			if skipLits[x] {
				return false
			}
		case *ast.AssignStmt:
			for _, l := range x.Lhs {
				if id := rootIdent(l); id != nil {
					writes[id] = true
				}
			}
		case *ast.IncDecStmt:
			if id := rootIdent(x.X); id != nil {
				writes[id] = true
			}
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			if obj == nil || !tracked[obj] {
				return true
			}
			acc = append(acc, varAccess{obj: obj, pos: x.Pos(), write: writes[x], held: heldFor(heldAt, x.Pos())})
		}
		return true
	})
	return acc
}

// rootIdent peels a written expression (x.f, x[i], *x) to its base
// identifier.
func rootIdent(x ast.Expr) *ast.Ident {
	for {
		switch e := x.(type) {
		case *ast.SelectorExpr:
			x = e.X
		case *ast.IndexExpr:
			x = e.X
		case *ast.StarExpr:
			x = e.X
		case *ast.ParenExpr:
			x = e.X
		case *ast.Ident:
			return e
		default:
			return nil
		}
	}
}

// heldFor finds the lock set of the innermost CFG node containing pos.
func heldFor(heldAt map[ast.Node][]string, pos token.Pos) []string {
	var best ast.Node
	var held []string
	//proram:allow maporder innermost-span selection; nodes with identical spans sit in the same block and share a held set
	for n, h := range heldAt {
		if n.Pos() <= pos && pos <= n.End() {
			if best == nil || (n.Pos() >= best.Pos() && n.End() <= best.End()) {
				best, held = n, h
			}
		}
	}
	return held
}
