package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `for range` over map values in library packages unless
// the loop body is provably order-insensitive. Go randomizes map
// iteration order on purpose, so any loop whose effect depends on visit
// order — building an error message, appending to a slice, folding
// floats — makes stats, traces and invariant reports differ between
// runs of the same seed.
//
// The order-insensitivity proof is deliberately conservative. A body is
// accepted only if every statement is one of: a declaration of
// loop-local variables, a plain assignment to loop-local variables, a
// commutative compound assignment (+=, -=, *=, |=, &=, ^=) or ++/-- on
// an integer, a delete from a map, or an if/for composed of the same
// (with call-free conditions). Anything else — in particular append,
// function calls, string or float accumulation, and early exits — needs
// either restructuring (sort the keys first) or a //proram:allow
// maporder directive with a reason.
func MapOrder() *Pass {
	p := &Pass{
		Name:    "maporder",
		Aliases: []string{"maps"},
		Doc:     "flag order-sensitive iteration over Go maps in library packages",
	}
	p.Run = func(u *Unit) {
		if u.Pkg.Name == "main" {
			return
		}
		for _, f := range u.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := u.Pkg.Info.Types[rs.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				pr := &orderProver{info: u.Pkg.Info}
				pr.declare(rs.Key)
				pr.declare(rs.Value)
				if !pr.insensitiveBlock(rs.Body) {
					u.Reportf(rs.Pos(), "map iteration order is randomized and this loop body is not provably order-insensitive; sort the keys first or justify with //proram:allow maporder")
				}
				return true
			})
		}
	}
	return p
}

// orderProver tracks which variables are local to the loop body; writes
// to those cannot leak order outside the loop.
type orderProver struct {
	info   *types.Info
	locals map[types.Object]bool
}

func (p *orderProver) declare(e ast.Expr) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return
	}
	if obj := p.info.Defs[id]; obj != nil {
		if p.locals == nil {
			p.locals = make(map[types.Object]bool)
		}
		p.locals[obj] = true
	}
}

func (p *orderProver) isLocal(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := p.info.Uses[id]
	if obj == nil {
		obj = p.info.Defs[id]
	}
	return obj != nil && p.locals[obj]
}

func (p *orderProver) insensitiveBlock(b *ast.BlockStmt) bool {
	for _, s := range b.List {
		if !p.insensitiveStmt(s) {
			return false
		}
	}
	return true
}

func (p *orderProver) insensitiveStmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case nil:
		return true
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				return false
			}
			for _, name := range vs.Names {
				p.declare(name)
			}
			for _, v := range vs.Values {
				if !p.pureExpr(v) {
					return false
				}
			}
		}
		return true
	case *ast.AssignStmt:
		return p.insensitiveAssign(s)
	case *ast.IncDecStmt:
		return isExactNumeric(p.info, s.X)
	case *ast.ExprStmt:
		// delete(m, k) commutes across iteration order; no other call is
		// assumed to.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				if b, ok := p.info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
					return true
				}
			}
		}
		return false
	case *ast.IfStmt:
		if s.Init != nil && !p.insensitiveStmt(s.Init) {
			return false
		}
		if !p.pureExpr(s.Cond) || !p.insensitiveBlock(s.Body) {
			return false
		}
		return p.insensitiveStmt(s.Else)
	case *ast.BlockStmt:
		return p.insensitiveBlock(s)
	case *ast.ForStmt:
		if s.Init != nil && !p.insensitiveStmt(s.Init) {
			return false
		}
		if s.Cond != nil && !p.pureExpr(s.Cond) {
			return false
		}
		if s.Post != nil && !p.insensitiveStmt(s.Post) {
			return false
		}
		return p.insensitiveBlock(s.Body)
	case *ast.RangeStmt:
		p.declare(s.Key)
		p.declare(s.Value)
		return p.insensitiveBlock(s.Body)
	case *ast.BranchStmt:
		// continue just moves to the next key; break/goto make the set of
		// executed iterations order-dependent.
		return s.Tok == token.CONTINUE && s.Label == nil
	default:
		// return, break, goto, send, go, defer, switch, select: order
		// (or at least first-hit) escapes the loop.
		return false
	}
}

// commutativeAssignOps are the compound assignments that fold a value
// into an accumulator through a commutative, associative operation —
// provided the operands are exact (integer) values.
var commutativeAssignOps = map[token.Token]bool{
	token.ADD_ASSIGN: true,
	token.SUB_ASSIGN: true, // s -= x accumulates -x; still commutative
	token.MUL_ASSIGN: true,
	token.AND_ASSIGN: true,
	token.OR_ASSIGN:  true,
	token.XOR_ASSIGN: true,
}

func (p *orderProver) insensitiveAssign(s *ast.AssignStmt) bool {
	switch {
	case s.Tok == token.DEFINE:
		for _, l := range s.Lhs {
			p.declare(l)
		}
		for _, r := range s.Rhs {
			if !p.pureExpr(r) {
				return false
			}
		}
		return true
	case s.Tok == token.ASSIGN:
		// Plain assignment is last-write-wins: only loop-local targets
		// are safe.
		for _, l := range s.Lhs {
			if !p.isLocal(l) {
				return false
			}
		}
		for _, r := range s.Rhs {
			if !p.pureExpr(r) {
				return false
			}
		}
		return true
	case commutativeAssignOps[s.Tok]:
		// Integer accumulation commutes exactly; float addition does not
		// (rounding depends on order) and string += is concatenation.
		return isExactNumeric(p.info, s.Lhs[0]) && p.pureExpr(s.Rhs[0])
	default:
		return false
	}
}

// pureExpr reports whether evaluating e has no side effects and no
// scheduling dependence: no calls (except len/cap and conversions), no
// channel receives, no function literals.
func (p *orderProver) pureExpr(e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if tv, ok := p.info.Types[n.Fun]; ok && tv.IsType() {
				return true // conversion
			}
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := p.info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "len", "cap", "min", "max":
						return true
					}
				}
			}
			pure = false
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pure = false
				return false
			}
		case *ast.FuncLit:
			pure = false
			return false
		}
		return true
	})
	return pure
}

// isExactNumeric reports whether e has an integer type (exact
// arithmetic, so reduction order cannot change the result).
func isExactNumeric(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return basic.Info()&types.IsInteger != 0
}
