// Package analysis is a small, stdlib-only static-analysis framework plus
// the repo-specific passes that enforce PrORAM's two non-negotiable
// conventions:
//
//   - Determinism: every simulation is bit-reproducible from an explicit
//     seed. Wall-clock reads, the global math/rand generator, scheduling
//     races and Go map iteration order must never influence simulator
//     output (DESIGN.md §7).
//
//   - Obliviousness: the ORAM access path must not branch on secret block
//     payload bytes. Path ORAM's guarantee is about *which* paths are
//     touched; a data-dependent branch in the controller would reintroduce
//     exactly the leakage the scheme exists to remove.
//
// The framework is deliberately minimal: it loads and type-checks every
// package of the enclosing module with go/parser and go/types (resolving
// standard-library imports from source, so no external tooling is needed),
// hands each package to a set of passes, and collects file:line
// diagnostics. Suppressions are expressed in the source itself with
// //proram: directives (see doc.go at the repository root for the
// syntax); the allowhygiene pass keeps those directives honest.
//
// To add a new pass, implement a *Pass whose Run inspects one loaded
// Package and reports through Unit.Reportf, then register it in
// DefaultPasses. Suppression, sorting and exit status come for free.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one finding, resolved to a concrete source position.
type Diagnostic struct {
	Pos     token.Position
	Check   string // the pass that produced it
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Pass is one analyzer. Run is invoked once per analyzed package; the
// optional Finish hook runs after every package has been visited and may
// consult cross-package state accumulated on the Runner (only the
// allowhygiene pass uses it, to flag suppressions that suppressed
// nothing). Aliases are accepted by SelectPasses as shorthand for the
// canonical name; diagnostics and //proram:allow always use Name.
type Pass struct {
	Name    string
	Aliases []string
	Doc     string
	Run     func(u *Unit)
	Finish  func(r *Runner)
}

// Unit is the context handed to a pass for one package.
type Unit struct {
	Pass *Pass
	Pkg  *Package
	Prog *Program
	r    *Runner
}

// Reportf records a diagnostic at pos unless an in-scope
// //proram:allow directive names this pass. A suppressing directive is
// marked used, which is what keeps it from being reported as stale by the
// allowhygiene pass.
func (u *Unit) Reportf(pos token.Pos, format string, args ...any) {
	p := u.Prog.Fset.Position(pos)
	if d := u.Pkg.allowDirectiveFor(u.Pass.Name, p.Filename, p.Line); d != nil {
		d.used = true
		return
	}
	u.r.diags = append(u.r.diags, Diagnostic{
		Pos:     p,
		Check:   u.Pass.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// PassTiming is the wall-clock cost of one pass across every analyzed
// package (Run calls plus the Finish hook).
type PassTiming struct {
	Name    string
	Elapsed time.Duration
}

// Runner executes passes over packages and collects diagnostics.
type Runner struct {
	prog     *Program
	diags    []Diagnostic
	analyzed []*Package
	executed map[string]bool
	timings  []PassTiming
}

// NewRunner prepares a run over the given program.
func NewRunner(prog *Program) *Runner {
	return &Runner{prog: prog, executed: make(map[string]bool)}
}

// Run applies every pass to every package, then the Finish hooks, and
// returns the findings sorted by position. It may be called once per
// Runner.
func (r *Runner) Run(passes []*Pass, pkgs []*Package) []Diagnostic {
	r.analyzed = pkgs
	elapsed := make([]time.Duration, len(passes))
	for _, p := range passes {
		r.executed[p.Name] = true
	}
	for _, pkg := range pkgs {
		for i, p := range passes {
			if p.Run != nil {
				start := time.Now() //proram:allow determinism timing instruments the analyzer itself, never simulator output
				p.Run(&Unit{Pass: p, Pkg: pkg, Prog: r.prog, r: r})
				elapsed[i] += time.Since(start) //proram:allow determinism timing instruments the analyzer itself, never simulator output
			}
		}
	}
	for i, p := range passes {
		if p.Finish != nil {
			start := time.Now() //proram:allow determinism timing instruments the analyzer itself, never simulator output
			p.Finish(r)
			elapsed[i] += time.Since(start) //proram:allow determinism timing instruments the analyzer itself, never simulator output
		}
	}
	for i, p := range passes {
		r.timings = append(r.timings, PassTiming{Name: p.Name, Elapsed: elapsed[i]})
	}
	sort.Slice(r.diags, func(i, j int) bool {
		a, b := r.diags[i], r.diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return r.diags
}

// Timings returns the per-pass wall-clock cost of the completed Run, in
// pass order.
func (r *Runner) Timings() []PassTiming { return r.timings }

// DefaultPasses returns every pass in its canonical order. The
// allowhygiene pass must come last so its Finish hook sees which
// suppressions the other passes consumed.
func DefaultPasses() []*Pass {
	return []*Pass{
		Determinism(),
		MapOrder(),
		Oblivious(),
		PanicDiscipline(),
		SeedPlumbing(),
		AllocDiscipline(),
		GoroutineDiscipline(),
		LockOrder(),
		ConcDeterminism(),
		FixedTrip(),
		Branchless(),
		BoundsCheck(),
		AllowHygiene(),
	}
}

// PassNames returns the names of all known passes (the valid arguments to
// //proram:allow).
func PassNames() []string {
	var names []string
	for _, p := range DefaultPasses() {
		names = append(names, p.Name)
	}
	return names
}

// SelectPasses filters DefaultPasses down to the named checks ("" keeps
// everything). Aliases resolve to their canonical pass. Unknown and
// duplicate names are errors — a duplicated check would run twice and
// double every diagnostic it produces; naming a pass by both its name
// and an alias counts as a duplicate.
func SelectPasses(checks string) ([]*Pass, error) {
	all := DefaultPasses()
	if checks == "" {
		return all, nil
	}
	byName := make(map[string]*Pass, len(all))
	for _, p := range all {
		byName[p.Name] = p
		for _, a := range p.Aliases {
			byName[a] = p
		}
	}
	seen := make(map[string]bool)
	var out []*Pass
	for _, name := range strings.Split(checks, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		p, ok := byName[name]
		if !ok {
			var known []string
			for _, q := range all {
				s := q.Name
				if len(q.Aliases) > 0 {
					s += " (" + strings.Join(q.Aliases, ", ") + ")"
				}
				known = append(known, s)
			}
			return nil, fmt.Errorf("analysis: unknown check %q (known: %s)", name, strings.Join(known, ", "))
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("analysis: check %q named twice in -checks (aliases resolve to the same pass)", p.Name)
		}
		seen[p.Name] = true
		out = append(out, p)
	}
	return out, nil
}
