package analysis

import (
	"go/types"
	"sort"
	"strings"
	"testing"
)

// TestHeldLockSummaries pins the held-lock summary layer on the
// lockorder fixture: acquisition order with the already-held set,
// held-call records, and the transitive closure through a callee.
func TestHeldLockSummaries(t *testing.T) {
	prog := program(t)
	sums := prog.lockSummaries()
	find := func(name string) *lockSummary {
		t.Helper()
		for n, s := range sums.byFunc {
			if n.Pkg.Rel == fixtureBase+"lockorder" && n.Name() == name {
				return s
			}
		}
		t.Fatalf("no summary for %s", name)
		return nil
	}

	ab := find("pair.ab")
	if len(ab.acquires) != 2 {
		t.Fatalf("pair.ab: %d acquires, want 2", len(ab.acquires))
	}
	if a := ab.acquires[1]; a.base != "lockorder.pair.b" ||
		len(a.heldBefore) != 1 || a.heldBefore[0] != "lockorder.pair.a" {
		t.Errorf("pair.ab second acquire: %+v", ab.acquires[1])
	}

	x := find("two.xThenY")
	if _, ok := x.transitive["lockorder.two.y"]; !ok {
		t.Errorf("two.xThenY transitive set misses lockorder.two.y (through lockY): have %s", idSet(x.transitive))
	}
	if len(x.calls) != 1 || x.calls[0].callee.Name() != "two.lockY" ||
		len(x.calls[0].held) != 1 || x.calls[0].held[0] != "lockorder.two.x" {
		t.Errorf("two.xThenY held calls: %+v", x.calls)
	}

	// Balanced defer discipline produces no findings and an empty held
	// set at exit.
	if bump := find("guarded.bump"); len(bump.findings) != 0 {
		t.Errorf("guarded.bump findings: %+v", bump.findings)
	}
	if leaky := find("pair.leaky"); len(leaky.findings) == 0 {
		t.Errorf("pair.leaky produced no exit-imbalance finding")
	}
}

func idSet[V any](m map[string]V) string {
	var out []string
	for id := range m {
		out = append(out, id)
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}

// TestSpawnSiteEscapeSets pins the spawn-site inventory on the
// goroutine fixture: captured variables of literal spawns, escape roots
// and resolved callees of call spawns, and loop attribution.
func TestSpawnSiteEscapeSets(t *testing.T) {
	prog := program(t)
	byFunc := make(map[string][]*spawnSite)
	for _, s := range prog.spawnSites() {
		if s.node.Pkg.Rel == fixtureBase+"goroutine" {
			byFunc[s.node.Name()] = append(byFunc[s.node.Name()], s)
		}
	}

	rc := byFunc["racyCapture"]
	if len(rc) != 1 || rc[0].lit == nil {
		t.Fatalf("racyCapture: spawn sites %+v, want one literal spawn", rc)
	}
	if got := objNames(rc[0].captured); got != "done,n" {
		t.Errorf("racyCapture captured %q, want \"done,n\"", got)
	}
	if rc[0].inLoop {
		t.Errorf("racyCapture spawn wrongly marked inLoop")
	}

	lr := byFunc["loopRace"]
	if len(lr) != 1 || !lr[0].inLoop {
		t.Fatalf("loopRace spawn not marked inLoop: %+v", lr)
	}
	if got := objNames(lr[0].captured); got != "n,wg" {
		t.Errorf("loopRace captured %q, want \"n,wg\"", got)
	}

	sc := byFunc["spawnCall"]
	if len(sc) != 1 || sc[0].callee == nil || sc[0].callee.Name() != "counter.add" {
		t.Fatalf("spawnCall callee not resolved: %+v", sc)
	}
	if got := objNames(sc[0].captured); got != "c" {
		t.Errorf("spawnCall escape roots %q, want \"c\"", got)
	}
}

func objNames(objs []types.Object) string {
	var out []string
	for _, o := range objs {
		out = append(out, o.Name())
	}
	return strings.Join(out, ",")
}
