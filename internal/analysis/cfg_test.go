package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// buildTestCFG type-checks a single-function source snippet (no
// imports) and returns the CFG of its first function.
func buildTestCFG(t *testing.T, src string) *funcCFG {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfgfixture.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
		Types: make(map[ast.Expr]types.TypeAndValue),
	}
	if _, err := (&types.Config{}).Check("cfgfixture", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok {
			return buildCFG(info, fn.Body)
		}
	}
	t.Fatal("no function in snippet")
	return nil
}

func TestCFGDoomedPanicBranch(t *testing.T) {
	g := buildTestCFG(t, `package p
func f(x int) int {
	if x < 0 {
		panic("negative")
	}
	y := x + 1
	return y
}
`)
	d := g.doomed()
	panicking, doomedCount := 0, 0
	for i, b := range g.blocks {
		if b.panics {
			panicking++
			if !d[i] {
				t.Errorf("block %d panics but is not doomed", i)
			}
		}
		if d[i] {
			doomedCount++
		}
	}
	if panicking != 1 {
		t.Fatalf("expected exactly one panicking block, got %d", panicking)
	}
	if doomedCount != 1 {
		t.Fatalf("only the panic branch should be doomed, got %d doomed blocks", doomedCount)
	}
	if d[g.entry.index] {
		t.Fatal("entry block must not be doomed: the function can return normally")
	}
}

func TestCFGAllPathsPanic(t *testing.T) {
	g := buildTestCFG(t, `package p
func f(x int) {
	y := x * 2
	if y > 0 {
		panic("pos")
	} else {
		panic("nonpos")
	}
}
`)
	d := g.doomed()
	if !d[g.entry.index] {
		t.Fatal("entry must be doomed: every path out of it panics")
	}
}

func TestCFGLoopNotDoomed(t *testing.T) {
	g := buildTestCFG(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}
`)
	d := g.doomed()
	for i := range d {
		if d[i] {
			t.Fatalf("block %d doomed in a panic-free function", i)
		}
	}
	// The loop head must branch: body and exit.
	branching := false
	for _, b := range g.blocks {
		if len(b.succs) >= 2 {
			branching = true
		}
	}
	if !branching {
		t.Fatal("loop produced no branching block")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g := buildTestCFG(t, `package p
func f(x int) int {
	switch x {
	case 0:
		panic("zero")
	case 1:
		fallthrough
	case 2:
		return 2
	}
	return 3
}
`)
	d := g.doomed()
	if d[g.entry.index] {
		t.Fatal("entry doomed: only the zero clause panics")
	}
	panicking := 0
	for i, b := range g.blocks {
		if b.panics {
			panicking++
			if !d[i] {
				t.Errorf("panicking clause block %d not doomed", i)
			}
		}
	}
	if panicking != 1 {
		t.Fatalf("expected one panicking clause, got %d", panicking)
	}
}

// TestCFGGoto proves a backward goto forms a cycle in the graph: the
// label block must be reachable from itself.
func TestCFGGoto(t *testing.T) {
	g := buildTestCFG(t, `package p
func f(n int) int {
	i := 0
loop:
	if i < n {
		i++
		goto loop
	}
	return i
}
`)
	cyclic := false
	for _, b := range g.blocks {
		seen := make(map[int]bool)
		stack := []*cfgBlock{b}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range cur.succs {
				if s == b {
					cyclic = true
				}
				if !seen[s.index] {
					seen[s.index] = true
					stack = append(stack, s)
				}
			}
		}
		if cyclic {
			break
		}
	}
	if !cyclic {
		t.Fatal("backward goto produced no cycle in the CFG")
	}
	if d := g.doomed(); d[g.entry.index] {
		t.Fatal("entry doomed in a panic-free function")
	}
}

// TestCFGLabeledBreakContinue exercises labeled frames: both loops
// register in g.loops, continue outer adds a second edge into the outer
// head, and break outer routes past it without dooming anything.
func TestCFGLabeledBreakContinue(t *testing.T) {
	g := buildTestCFG(t, `package p
func f(n int) int {
	s := 0
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == 1 {
				continue outer
			}
			if j == 2 {
				break outer
			}
			s++
		}
	}
	return s
}
`)
	if len(g.loops) != 2 {
		t.Fatalf("expected both loops registered, got %d", len(g.loops))
	}
	// Tell the loops apart by position: the outer for statement encloses
	// the inner one.
	var outerHead, innerHead *cfgBlock
	var outerStmt ast.Stmt
	for s, head := range g.loops {
		if outerStmt == nil || s.Pos() < outerStmt.Pos() {
			if outerHead != nil {
				innerHead = outerHead
			}
			outerStmt, outerHead = s, head
		} else {
			innerHead = head
		}
	}
	if outerHead == nil || innerHead == nil || outerHead == innerHead {
		t.Fatal("could not tell the two loop heads apart")
	}
	// reaches reports whether from can reach to along edges that skip the
	// avoid block.
	reaches := func(from, to, avoid *cfgBlock) bool {
		seen := make(map[int]bool)
		stack := []*cfgBlock{from}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if cur == to {
				return true
			}
			if cur == avoid || seen[cur.index] {
				continue
			}
			seen[cur.index] = true
			stack = append(stack, cur.succs...)
		}
		return false
	}
	npreds := make(map[*cfgBlock]int)
	for _, b := range g.blocks {
		for _, s := range b.succs {
			npreds[s]++
		}
	}
	// continue outer targets the outer post block — the predecessor of
	// the outer head that sits inside the loop. It picks up a second
	// incoming edge beyond the inner loop's normal exit path.
	var outerPost *cfgBlock
	for _, b := range g.blocks {
		for _, s := range b.succs {
			if s == outerHead && reaches(outerHead, b, nil) {
				outerPost = b
			}
		}
	}
	if outerPost == nil {
		t.Fatal("the outer loop has no in-loop predecessor of its head")
	}
	if npreds[outerPost] < 2 {
		t.Fatalf("continue outer should add a second edge into the outer post block, in-degree is %d", npreds[outerPost])
	}
	// break outer targets the outer exit — the head successor that cannot
	// loop back — giving it an edge beyond the head's own exit edge.
	var outerExit *cfgBlock
	for _, s := range outerHead.succs {
		if !reaches(s, outerHead, nil) {
			outerExit = s
		}
	}
	if outerExit == nil {
		t.Fatal("the outer loop has no exit successor")
	}
	if npreds[outerExit] < 2 {
		t.Fatalf("break outer should add a second edge into the outer exit, in-degree is %d", npreds[outerExit])
	}
	if d := g.doomed(); d[g.entry.index] {
		t.Fatal("entry doomed in a panic-free function")
	}
}

// TestCFGRangeOverInt proves range-over-int builds the same head/body
// shape as ranging over a container.
func TestCFGRangeOverInt(t *testing.T) {
	g := buildTestCFG(t, `package p
func f(n int) int {
	s := 0
	for i := range n {
		s += i
	}
	return s
}
`)
	if len(g.loops) != 1 {
		t.Fatalf("expected one loop, got %d", len(g.loops))
	}
	var head *cfgBlock
	for _, b := range g.blocks {
		if b.rangeLoop != nil {
			if head != nil {
				t.Fatal("more than one range head")
			}
			head = b
		}
	}
	if head == nil {
		t.Fatal("no block carries the range statement")
	}
	if head.rangeBody == nil {
		t.Fatal("range head has no body successor")
	}
	bodyIsSucc := false
	for _, s := range head.succs {
		if s == head.rangeBody {
			bodyIsSucc = true
		}
	}
	if !bodyIsSucc {
		t.Fatal("rangeBody is not among the head's successors")
	}
}

// TestCFGDoomedLoop: a loop whose body always panics dooms the body but
// not the head — the zero-iteration exit is still a normal return.
func TestCFGDoomedLoop(t *testing.T) {
	g := buildTestCFG(t, `package p
func f(n int) {
	for i := 0; i < n; i++ {
		panic("boom")
	}
}
`)
	d := g.doomed()
	panicking := 0
	for i, b := range g.blocks {
		if b.panics {
			panicking++
			if !d[i] {
				t.Errorf("panicking loop body %d not doomed", i)
			}
		}
	}
	if panicking != 1 {
		t.Fatalf("expected one panicking block, got %d", panicking)
	}
	if d[g.entry.index] {
		t.Fatal("entry doomed: the loop can run zero times")
	}
	for s, head := range g.loops {
		_ = s
		if d[head.index] {
			t.Fatal("loop head doomed: the exit edge survives")
		}
	}
}
