package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// buildTestCFG type-checks a single-function source snippet (no
// imports) and returns the CFG of its first function.
func buildTestCFG(t *testing.T, src string) *funcCFG {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfgfixture.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
		Types: make(map[ast.Expr]types.TypeAndValue),
	}
	if _, err := (&types.Config{}).Check("cfgfixture", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok {
			return buildCFG(info, fn.Body)
		}
	}
	t.Fatal("no function in snippet")
	return nil
}

func TestCFGDoomedPanicBranch(t *testing.T) {
	g := buildTestCFG(t, `package p
func f(x int) int {
	if x < 0 {
		panic("negative")
	}
	y := x + 1
	return y
}
`)
	d := g.doomed()
	panicking, doomedCount := 0, 0
	for i, b := range g.blocks {
		if b.panics {
			panicking++
			if !d[i] {
				t.Errorf("block %d panics but is not doomed", i)
			}
		}
		if d[i] {
			doomedCount++
		}
	}
	if panicking != 1 {
		t.Fatalf("expected exactly one panicking block, got %d", panicking)
	}
	if doomedCount != 1 {
		t.Fatalf("only the panic branch should be doomed, got %d doomed blocks", doomedCount)
	}
	if d[g.entry.index] {
		t.Fatal("entry block must not be doomed: the function can return normally")
	}
}

func TestCFGAllPathsPanic(t *testing.T) {
	g := buildTestCFG(t, `package p
func f(x int) {
	y := x * 2
	if y > 0 {
		panic("pos")
	} else {
		panic("nonpos")
	}
}
`)
	d := g.doomed()
	if !d[g.entry.index] {
		t.Fatal("entry must be doomed: every path out of it panics")
	}
}

func TestCFGLoopNotDoomed(t *testing.T) {
	g := buildTestCFG(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}
`)
	d := g.doomed()
	for i := range d {
		if d[i] {
			t.Fatalf("block %d doomed in a panic-free function", i)
		}
	}
	// The loop head must branch: body and exit.
	branching := false
	for _, b := range g.blocks {
		if len(b.succs) >= 2 {
			branching = true
		}
	}
	if !branching {
		t.Fatal("loop produced no branching block")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g := buildTestCFG(t, `package p
func f(x int) int {
	switch x {
	case 0:
		panic("zero")
	case 1:
		fallthrough
	case 2:
		return 2
	}
	return 3
}
`)
	d := g.doomed()
	if d[g.entry.index] {
		t.Fatal("entry doomed: only the zero clause panics")
	}
	panicking := 0
	for i, b := range g.blocks {
		if b.panics {
			panicking++
			if !d[i] {
				t.Errorf("panicking clause block %d not doomed", i)
			}
		}
	}
	if panicking != 1 {
		t.Fatalf("expected one panicking clause, got %d", panicking)
	}
}
