package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// FixedTrip is the static padding-proof pass. Obliviousness in PrORAM
// rests on loops whose iteration count is a public constant of the
// configuration — the scheduler pads every round to RoundSlots slots
// and flushes in exactly two sub-rounds, so the DRAM trace length never
// depends on the demand sequence. The live auditor checks those shapes
// at run time; this pass proves them at vet time.
//
// Two obligations:
//
//   - Every loop in the oblivious scope whose condition is derived from
//     secret data is reported: a secret-dependent trip count leaks
//     through timing and trace length no matter what the body does.
//
//   - Every loop marked //proram:fixedtrip <reason> must have a trip
//     count the analysis can prove fixed before the loop starts: a
//     counted loop (single init, invariant non-secret bound, constant
//     step, no break/return/goto out of the loop — panic is accepted as
//     the abort channel), or a range loop over a non-map, non-channel
//     container evaluated once, with no early exits. Everything else is
//     a finding; the proof, not the intent, is the contract.
//
// Secret flow into a bound through a parameter is covered by the
// oblivious pass's sink machinery (a loop condition is a branch sink),
// so a param-derived bound is accepted here and the call sites carry
// the obligation.
func FixedTrip(scopes ...string) *Pass {
	if len(scopes) == 0 {
		scopes = []string{"internal/oram", "internal/stash", "internal/posmap", "internal/shard", "internal/dram/banked"}
	}
	p := &Pass{
		Name:    "fixedtrip",
		Aliases: []string{"trip"},
		Doc:     "prove //proram:fixedtrip loops have a secret-independent trip count; flag secret-dependent loop conditions in the oblivious scope",
	}
	p.Run = func(u *Unit) {
		if !inScope(u.Pkg.Rel, scopes) {
			return
		}
		for _, f := range u.Pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				checkFuncLoops(u, fn)
			}
		}
	}
	return p
}

// loopPos returns the position and kind name used in fixedtrip
// diagnostics for a loop statement.
func loopFor(s ast.Stmt) (token.Pos, string) {
	switch s := s.(type) {
	case *ast.ForStmt:
		return s.For, "for loop"
	case *ast.RangeStmt:
		return s.For, "range loop"
	}
	return token.NoPos, ""
}

// checkFuncLoops analyzes every loop of one declared function. Loops
// inside function literals are outside the SSA view; a fixedtrip mark
// on one is itself a finding (move the loop into a named function).
func checkFuncLoops(u *Unit, fn *ast.FuncDecl) {
	v := u.Prog.valueRange(u.Pkg, fn)
	doomed := v.fn.cfg.doomed()

	marked := func(s ast.Stmt) *Directive {
		pos, _ := loopFor(s)
		pp := u.Prog.Fset.Position(pos)
		return u.Pkg.directiveAt("fixedtrip", pp.Filename, pp.Line)
	}

	var walk func(n ast.Node, inLit bool)
	walk = func(n ast.Node, inLit bool) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				walk(x.Body, true)
				return false
			case *ast.ForStmt, *ast.RangeStmt:
				s := x.(ast.Stmt)
				pos, kind := loopFor(s)
				if inLit {
					if marked(s) != nil {
						u.Reportf(pos, "%s marked //proram:fixedtrip is inside a function literal, which the trip-count proof cannot see; move it into a named function", kind)
					}
					return true
				}
				checkLoop(u, v, doomed, s, marked(s) != nil)
			}
			return true
		})
	}
	walk(fn.Body, false)
}

func checkLoop(u *Unit, v *vrangeFunc, doomed []bool, s ast.Stmt, marked bool) {
	pos, kind := loopFor(s)
	head := v.fn.cfg.loops[s]
	if head == nil || !v.fn.reach[head.index] {
		return
	}

	// Generic obligation: a secret-derived loop condition leaks the trip
	// count regardless of any directive.
	if f, ok := s.(*ast.ForStmt); ok && f.Cond != nil {
		if v.maskOf(f.Cond)&secretOrigin != 0 {
			u.Reportf(pos, "loop condition depends on secret data; the trip count leaks through trace length and timing")
			return
		}
	}
	if r, ok := s.(*ast.RangeStmt); ok {
		if v.maskOf(r.X)&secretOrigin != 0 {
			u.Reportf(pos, "range loop iterates over a secret-derived container; the trip count leaks through trace length and timing")
			return
		}
	}
	if !marked {
		return
	}

	if why := fixedTripProof(v, doomed, s, head); why != "" {
		u.Reportf(pos, "%s marked //proram:fixedtrip but the trip count is not provably fixed: %s", kind, why)
	}
}

// fixedTripProof returns "" when the loop's trip count is proven fixed
// before entry, or the reason the proof fails.
func fixedTripProof(v *vrangeFunc, doomed []bool, s ast.Stmt, head *cfgBlock) string {
	loop := v.fn.loopBlocks(head.index)

	normalExit := -1
	switch st := s.(type) {
	case *ast.ForStmt:
		if st.Cond != nil && head.branchFalse != nil {
			normalExit = head.branchFalse.index
		}
	case *ast.RangeStmt:
		for _, succ := range head.succs {
			if succ != head.rangeBody {
				normalExit = succ.index
			}
		}
	}
	if why := earlyExit(v.fn, doomed, loop, head.index, normalExit); why != "" {
		return why
	}

	switch st := s.(type) {
	case *ast.ForStmt:
		return countedLoopProof(v, loop, st)
	case *ast.RangeStmt:
		return rangeLoopProof(v, st)
	}
	return "unsupported loop form"
}

// earlyExit scans the natural loop for edges that leave it other than
// the head's own exit edge. Panic paths (doomed blocks) are the abort
// channel and are accepted.
func earlyExit(f *ssaFunc, doomed []bool, loop map[int]bool, head, normalExit int) string {
	//proram:allow maporder existence scan: any visit order finds the same early exits
	for bi := range loop {
		for _, succ := range f.cfg.blocks[bi].succs {
			si := succ.index
			if loop[si] || doomed[si] {
				continue
			}
			if bi == head && si == normalExit {
				continue
			}
			return "the body can leave the loop early (break, return or goto); every iteration must run"
		}
	}
	return ""
}

// countedLoopProof proves the canonical counted form: i starts at a
// value defined before the loop, the condition compares i against an
// invariant non-secret bound, and the only write to i inside the loop
// is the constant-step post statement.
func countedLoopProof(v *vrangeFunc, loop map[int]bool, s *ast.ForStmt) string {
	if s.Cond == nil {
		return "the loop has no condition, so no bound exists"
	}
	cond, ok := ast.Unparen(s.Cond).(*ast.BinaryExpr)
	if !ok {
		return "the condition is not a comparison of the counter against a bound"
	}

	// Normalize to counter OP bound.
	counter, bound, op := cond.X, cond.Y, cond.Op
	if _, isIdent := ast.Unparen(cond.X).(*ast.Ident); !isIdent {
		counter, bound = cond.Y, cond.X
		switch op {
		case token.LSS:
			op = token.GTR
		case token.LEQ:
			op = token.GEQ
		case token.GTR:
			op = token.LSS
		case token.GEQ:
			op = token.LEQ
		}
	}
	id, ok := ast.Unparen(counter).(*ast.Ident)
	if !ok {
		return "the condition is not a comparison of the counter against a bound"
	}
	if op == token.NEQ || op == token.EQL {
		return "a != or == condition can overshoot; compare with <, <=, > or >="
	}
	if _, ok := v.fn.useOf[id]; !ok {
		return fmt.Sprintf("the counter %s is not statically trackable (its address escapes or a function literal writes it)", id.Name)
	}
	obj := v.fn.info().Uses[id]

	increasing, why := stepDirection(v, s.Post, obj)
	if why != "" {
		return why
	}
	if increasing && op != token.LSS && op != token.LEQ {
		return "the counter increases but the condition does not bound it from above"
	}
	if !increasing && op != token.GTR && op != token.GEQ {
		return "the counter decreases but the condition does not bound it from below"
	}

	// The only definition of the counter inside the loop must be the
	// post step (phis at the head merge versions; they define nothing).
	steps := 0
	for _, val := range v.fn.vals {
		if val.obj != obj || val.kind == ssaPhi || !loop[val.block] {
			continue
		}
		if val.kind != ssaStep {
			return fmt.Sprintf("the counter %s is reassigned inside the loop body", id.Name)
		}
		steps++
	}
	if steps != 1 {
		return fmt.Sprintf("the counter %s is stepped more than once per iteration", id.Name)
	}

	if v.maskOf(id)&secretOrigin != 0 {
		return fmt.Sprintf("the counter %s is derived from secret data", id.Name)
	}
	if v.maskOf(bound)&secretOrigin != 0 {
		return "the bound is derived from secret data"
	}
	if why := loopInvariant(v, loop, bound); why != "" {
		return fmt.Sprintf("the bound is not provably loop-invariant: %s", why)
	}
	return ""
}

// stepDirection validates the post statement as a constant step of the
// counter and reports its direction.
func stepDirection(v *vrangeFunc, post ast.Stmt, obj types.Object) (increasing bool, why string) {
	target := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && v.fn.info().Uses[id] == obj
	}
	switch p := post.(type) {
	case *ast.IncDecStmt:
		if !target(p.X) {
			return false, "the post statement does not step the counter from the condition"
		}
		return p.Tok == token.INC, ""
	case *ast.AssignStmt:
		if len(p.Lhs) != 1 || !target(p.Lhs[0]) {
			return false, "the post statement does not step the counter from the condition"
		}
		c, ok := v.constOf(p.Rhs[0])
		if !ok || c < 1 {
			return false, "the post statement's step is not a positive constant"
		}
		switch p.Tok {
		case token.ADD_ASSIGN:
			return true, ""
		case token.SUB_ASSIGN:
			return false, ""
		}
		return false, "the post statement is not a constant += or -= step"
	case nil:
		return false, "the loop has no post statement stepping the counter"
	}
	return false, "the post statement is not ++, -- or a constant-step assignment"
}

// loopInvariant checks that an expression reads nothing defined inside
// the loop and nothing the analysis cannot pin down: tracked locals
// defined outside, constants, value-struct field paths with no field
// stores, and len/cap/min/max of such. Returns "" or the reason.
func loopInvariant(v *vrangeFunc, loop map[int]bool, e ast.Expr) string {
	info := v.fn.info()
	var check func(e ast.Expr) string
	check = func(e ast.Expr) string {
		e = ast.Unparen(e)
		if tv, ok := info.Types[e]; ok && tv.Value != nil {
			return ""
		}
		switch x := e.(type) {
		case *ast.Ident:
			switch info.Uses[x].(type) {
			case *types.Const, *types.Nil, nil:
				return ""
			}
			vid, ok := v.fn.useOf[x]
			if !ok {
				return fmt.Sprintf("%s is not statically trackable", x.Name)
			}
			if loop[v.fn.vals[vid].block] {
				return fmt.Sprintf("%s is assigned inside the loop", x.Name)
			}
			return ""
		case *ast.SelectorExpr:
			t, off, ok := v.canonPath(x)
			if !ok || off != 0 {
				return fmt.Sprintf("%s is not a field path the analysis can prove immutable; hoist it into a local before the loop", types.ExprString(x))
			}
			if loop[v.fn.vals[t.vid].block] {
				return fmt.Sprintf("the base of %s is assigned inside the loop", types.ExprString(x))
			}
			return ""
		case *ast.BinaryExpr:
			if why := check(x.X); why != "" {
				return why
			}
			return check(x.Y)
		case *ast.UnaryExpr:
			if x.Op == token.SUB || x.Op == token.ADD || x.Op == token.XOR {
				return check(x.X)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "len", "cap", "min", "max":
						for _, a := range x.Args {
							if why := check(a); why != "" {
								return why
							}
						}
						return ""
					}
				}
			}
			return fmt.Sprintf("%s calls a function, which may return a different value each iteration", types.ExprString(e))
		}
		return fmt.Sprintf("%s is not a form the invariance check understands", types.ExprString(e))
	}
	return check(e)
}

// rangeLoopProof proves a range loop fixed: the container is evaluated
// once at entry, so it only needs a statically countable container kind
// and no secret derivation (checked by the caller).
func rangeLoopProof(v *vrangeFunc, s *ast.RangeStmt) string {
	t := typeOf(v.fn.info(), s.X)
	if t == nil {
		return "the container's type is unknown"
	}
	switch u := deref(t).(type) {
	case *types.Slice, *types.Array:
		return ""
	case *types.Basic:
		if u.Info()&types.IsInteger != 0 || u.Info()&types.IsString != 0 {
			return ""
		}
	case *types.Map:
		return "ranging over a map: entries added during iteration may or may not be visited, so the trip count is not fixed"
	case *types.Chan:
		return "ranging over a channel: the trip count depends on the sender"
	case *types.Signature:
		return "ranging over an iterator function: the trip count is whatever the function decides"
	}
	return fmt.Sprintf("ranging over %s is not a form the trip-count proof understands", t)
}
