package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file builds a per-function SSA-lite view over the CFG in cfg.go:
// every read of a trackable local variable is resolved to a single
// static definition (parameter, assignment, step, range binding or phi).
// It exists so the value-range layer (vrange.go) can reason
// flow-sensitively — "this i is the i bounded by the loop condition,
// and order has not been reassigned since len(order) was taken" — which
// is what the fixedtrip, branchless and boundscheck passes spend it on.
//
// The construction is the textbook recipe: reachability and
// predecessors over the CFG, an iterative dominator tree
// (Cooper–Harvey–Kennedy over reverse postorder), dominance frontiers,
// phi placement at the iterated frontier of each variable's definition
// blocks, and a renaming walk over the dominator tree that records, for
// every use of a tracked variable, the value visible at that point.
//
// Variables stay out of the tracked set when their value can change
// behind the analysis's back: address-taken locals (explicitly with &,
// or implicitly via a pointer-receiver method call or by slicing an
// array), and locals written inside a function literal. Reads of
// untracked variables simply have no entry in useOf and clients fall
// back to conservative type-based answers. Function-literal bodies are
// excluded from the enclosing CFG and therefore from the SSA view.

// ssaValue kinds.
const (
	ssaOpaque   = iota // no statically known definition
	ssaParam           // parameter or receiver, defined at entry
	ssaZero            // var declaration without initializer
	ssaExpr            // x = <expr> (resIdx selects one result of a multi-value rhs)
	ssaStep            // x++, x--, x op= <expr>: operand is the previous version
	ssaPhi             // join of versions at a control-flow merge
	ssaRangeKey        // key binding of a range loop
	ssaRangeVal        // value binding of a range loop
)

// ssaValue is one SSA definition of a source-level variable.
type ssaValue struct {
	id      int
	kind    int
	obj     types.Object
	block   int         // defining block index
	expr    ast.Expr    // ssaExpr: rhs; ssaStep: rhs operand (nil for ++/--); ssaRange*: the range container
	op      token.Token // ssaStep: the arithmetic token (++ and -- normalize to ADD/SUB with nil expr)
	operand int         // ssaStep: the previous version's id
	resIdx  int         // ssaExpr: result index when the rhs is multi-valued
	nres    int         // ssaExpr: number of values the rhs produces
	phiArgs []int       // ssaPhi: incoming version per predecessor (-1: undefined on that path)
}

// ssaFunc is the SSA view of one function body.
type ssaFunc struct {
	pkg  *Package
	decl *ast.FuncDecl
	cfg  *funcCFG

	reach    []bool
	preds    [][]int
	idom     []int   // immediate dominator; entry maps to itself, unreachable to -1
	children [][]int // dominator-tree children
	postnum  []int   // postorder number, for dominator intersection

	vals     []*ssaValue
	phis     [][]*ssaValue      // per block, in placement order
	useOf    map[*ast.Ident]int // every resolved read of a tracked variable
	rangeKey map[int]int        // range head block -> key binding value id
	tracked  map[types.Object]bool
	written  map[types.Object]bool // objects assigned through a selector/index path rooted at them

	renameUses func(ast.Node) // installed during rename; closes over the version map
}

func (f *ssaFunc) info() *types.Info { return f.pkg.Info }

// buildSSA constructs the SSA view for one declared function body.
func buildSSA(pkg *Package, decl *ast.FuncDecl) *ssaFunc {
	f := &ssaFunc{
		pkg:      pkg,
		decl:     decl,
		cfg:      buildCFG(pkg.Info, decl.Body),
		useOf:    make(map[*ast.Ident]int),
		rangeKey: make(map[int]int),
	}
	f.computeReach()
	f.computePreds()
	f.computeDominators()
	f.collectTracked()
	defsites := f.collectDefs()
	f.placePhis(defsites)
	f.rename()
	return f
}

func (f *ssaFunc) computeReach() {
	f.reach = make([]bool, len(f.cfg.blocks))
	var dfs func(b *cfgBlock)
	dfs = func(b *cfgBlock) {
		if f.reach[b.index] {
			return
		}
		f.reach[b.index] = true
		for _, s := range b.succs {
			dfs(s)
		}
	}
	dfs(f.cfg.entry)
}

func (f *ssaFunc) computePreds() {
	f.preds = make([][]int, len(f.cfg.blocks))
	for _, b := range f.cfg.blocks {
		if !f.reach[b.index] {
			continue
		}
		for _, s := range b.succs {
			f.preds[s.index] = append(f.preds[s.index], b.index)
		}
	}
}

// computeDominators runs the iterative Cooper–Harvey–Kennedy algorithm
// over reverse postorder, then derives the dominator-tree children.
func (f *ssaFunc) computeDominators() {
	n := len(f.cfg.blocks)
	f.postnum = make([]int, n)
	var order []int // postorder
	visited := make([]bool, n)
	var dfs func(b *cfgBlock)
	dfs = func(b *cfgBlock) {
		visited[b.index] = true
		for _, s := range b.succs {
			if !visited[s.index] {
				dfs(s)
			}
		}
		f.postnum[b.index] = len(order)
		order = append(order, b.index)
	}
	dfs(f.cfg.entry)

	f.idom = make([]int, n)
	for i := range f.idom {
		f.idom[i] = -1
	}
	entry := f.cfg.entry.index
	f.idom[entry] = entry

	intersect := func(a, b int) int {
		for a != b {
			for f.postnum[a] < f.postnum[b] {
				a = f.idom[a]
			}
			for f.postnum[b] < f.postnum[a] {
				b = f.idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for i := len(order) - 1; i >= 0; i-- { // reverse postorder
			b := order[i]
			if b == entry {
				continue
			}
			newIdom := -1
			for _, p := range f.preds[b] {
				if f.idom[p] < 0 {
					continue
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom >= 0 && f.idom[b] != newIdom {
				f.idom[b] = newIdom
				changed = true
			}
		}
	}

	f.children = make([][]int, n)
	for b := 0; b < n; b++ {
		if b != entry && f.idom[b] >= 0 {
			f.children[f.idom[b]] = append(f.children[f.idom[b]], b)
		}
	}
}

// dominates reports whether block a dominates block b.
func (f *ssaFunc) dominates(a, b int) bool {
	for {
		if a == b {
			return true
		}
		next := f.idom[b]
		if next < 0 || next == b {
			return false
		}
		b = next
	}
}

// loopBlocks returns the natural loop of the given head: the head plus
// every block that reaches a back edge into it without passing through
// it. Back edges are edges t→head where head dominates t.
func (f *ssaFunc) loopBlocks(head int) map[int]bool {
	loop := map[int]bool{head: true}
	var stack []int
	for _, t := range f.preds[head] {
		if f.dominates(head, t) && !loop[t] {
			loop[t] = true
			stack = append(stack, t)
		}
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range f.preds[b] {
			if !loop[p] {
				loop[p] = true
				stack = append(stack, p)
			}
		}
	}
	return loop
}

// collectTracked decides which variables get SSA versions: parameters,
// receivers, named results and body-declared locals, minus anything
// whose address escapes or that a function literal writes.
func (f *ssaFunc) collectTracked() {
	f.tracked = make(map[types.Object]bool)
	f.written = make(map[types.Object]bool)
	info := f.info()

	add := func(id *ast.Ident) {
		if obj, ok := info.Defs[id].(*types.Var); ok && obj != nil {
			f.tracked[obj] = true
		}
	}
	for _, fl := range []*ast.FieldList{f.decl.Recv, f.decl.Type.Params, f.decl.Type.Results} {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				add(name)
			}
		}
	}
	ast.Inspect(f.decl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			add(id)
		}
		return true
	})

	drop := func(e ast.Expr) {
		if id := rootIdent(e); id != nil {
			if obj := info.Uses[id]; obj != nil {
				delete(f.tracked, obj)
			}
			if obj := info.Defs[id]; obj != nil {
				delete(f.tracked, obj)
			}
		}
	}
	var walk func(n ast.Node, inLit bool)
	walk = func(n ast.Node, inLit bool) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				walk(x.Body, true)
				return false
			case *ast.UnaryExpr:
				if x.Op == token.AND {
					// &s[i] escapes one element, not the slice header
					// (or an array's length): no tracked value the
					// analysis reasons about can change through it.
					if _, elem := ast.Unparen(x.X).(*ast.IndexExpr); !elem {
						drop(x.X)
					}
				}
			case *ast.SliceExpr:
				// Slicing an array takes its address.
				if _, ok := deref(typeOf(info, x.X)).(*types.Array); ok {
					drop(x.X)
				}
			case *ast.CallExpr:
				// A pointer-receiver method call on an addressable value
				// takes the receiver's address implicitly.
				if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
					if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
						if fn, ok := s.Obj().(*types.Func); ok {
							if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
								_, ptrRecv := recv.Type().Underlying().(*types.Pointer)
								_, ptrBase := typeOf(info, sel.X).Underlying().(*types.Pointer)
								if ptrRecv && !ptrBase {
									drop(sel.X)
								}
							}
						}
					}
				}
			case *ast.AssignStmt:
				for _, l := range x.Lhs {
					f.noteWrite(l, inLit, drop)
				}
			case *ast.IncDecStmt:
				f.noteWrite(x.X, inLit, drop)
			case *ast.RangeStmt:
				if inLit {
					if x.Key != nil {
						drop(x.Key)
					}
					if x.Value != nil {
						drop(x.Value)
					}
				}
			}
			return true
		})
	}
	walk(f.decl.Body, false)
}

// noteWrite records an assignment target: plain-ident writes inside a
// function literal untrack the variable, and writes through a selector,
// index or dereference mark the root object as mutated in place (which
// invalidates field-path reasoning rooted at it).
func (f *ssaFunc) noteWrite(target ast.Expr, inLit bool, drop func(ast.Expr)) {
	switch t := ast.Unparen(target).(type) {
	case *ast.Ident:
		if inLit {
			drop(t)
		}
	default:
		if id := rootIdent(target); id != nil {
			if obj := f.info().Uses[id]; obj != nil {
				f.written[obj] = true
			}
		}
		if inLit {
			drop(target)
		}
	}
}

func deref(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	u := t.Underlying()
	if p, ok := u.(*types.Pointer); ok {
		return p.Elem().Underlying()
	}
	return u
}

// ssaDef is one definition event inside a block's node list.
type ssaDef struct {
	obj  types.Object
	make func(prev int) *ssaValue // prev: version before the def (ssaStep needs it)
}

func (f *ssaFunc) newValue(v *ssaValue) int {
	v.id = len(f.vals)
	f.vals = append(f.vals, v)
	return v.id
}

// collectDefs finds the blocks defining each tracked variable, for phi
// placement. The definition events themselves are re-derived during
// renaming (nodeDefs), so this only records block membership.
func (f *ssaFunc) collectDefs() map[types.Object]map[int]bool {
	sites := make(map[types.Object]map[int]bool)
	at := func(obj types.Object, block int) {
		if !f.tracked[obj] {
			return
		}
		if sites[obj] == nil {
			sites[obj] = make(map[int]bool)
		}
		sites[obj][block] = true
	}
	entry := f.cfg.entry.index
	for _, fl := range []*ast.FieldList{f.decl.Recv, f.decl.Type.Params, f.decl.Type.Results} {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := f.info().Defs[name]; obj != nil {
					at(obj, entry)
				}
			}
		}
	}
	for _, b := range f.cfg.blocks {
		if !f.reach[b.index] {
			continue
		}
		for _, n := range b.nodes {
			for _, d := range f.nodeDefs(n, b.index) {
				at(d.obj, b.index)
			}
		}
		if b.rangeLoop != nil {
			for _, d := range f.rangeDefs(b.rangeLoop, b.index) {
				at(d.obj, b.index)
			}
		}
	}
	return sites
}

// nodeDefs lists the definition events a node performs, in evaluation
// order. The rhs expressions of the events are resolved against the
// versions current *before* the node (Go evaluates all rhs before any
// assignment), which is exactly how rename applies them.
func (f *ssaFunc) nodeDefs(n ast.Node, block int) []ssaDef {
	info := f.info()
	var out []ssaDef
	objOf := func(id *ast.Ident) types.Object {
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}
	assign := func(x *ast.AssignStmt) {
		if x.Tok != token.DEFINE && x.Tok != token.ASSIGN {
			// Op-assign: x op= rhs reads the previous version.
			if len(x.Lhs) != 1 {
				return
			}
			id, ok := ast.Unparen(x.Lhs[0]).(*ast.Ident)
			if !ok {
				return
			}
			obj := objOf(id)
			if obj == nil || !f.tracked[obj] {
				return
			}
			op := assignOp(x.Tok)
			rhs := x.Rhs[0]
			out = append(out, ssaDef{obj: obj, make: func(prev int) *ssaValue {
				return &ssaValue{kind: ssaStep, obj: obj, block: block, expr: rhs, op: op, operand: prev}
			}})
			return
		}
		multi := len(x.Rhs) == 1 && len(x.Lhs) > 1
		for i, l := range x.Lhs {
			id, ok := ast.Unparen(l).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := objOf(id)
			if obj == nil || !f.tracked[obj] {
				continue
			}
			var rhs ast.Expr
			resIdx, nres := 0, 1
			if multi {
				rhs, resIdx, nres = x.Rhs[0], i, len(x.Lhs)
			} else if i < len(x.Rhs) {
				rhs = x.Rhs[i]
			} else {
				continue
			}
			idx, n := resIdx, nres
			out = append(out, ssaDef{obj: obj, make: func(int) *ssaValue {
				return &ssaValue{kind: ssaExpr, obj: obj, block: block, expr: rhs, resIdx: idx, nres: n}
			}})
		}
	}
	switch x := n.(type) {
	case *ast.AssignStmt:
		assign(x)
	case *ast.IncDecStmt:
		id, ok := ast.Unparen(x.X).(*ast.Ident)
		if !ok {
			break
		}
		obj := objOf(id)
		if obj == nil || !f.tracked[obj] {
			break
		}
		op := token.ADD
		if x.Tok == token.DEC {
			op = token.SUB
		}
		out = append(out, ssaDef{obj: obj, make: func(prev int) *ssaValue {
			return &ssaValue{kind: ssaStep, obj: obj, block: block, op: op, operand: prev}
		}})
	case *ast.DeclStmt:
		gd, ok := x.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			break
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			multi := len(vs.Values) == 1 && len(vs.Names) > 1
			for i, name := range vs.Names {
				obj := info.Defs[name]
				if obj == nil || !f.tracked[obj] {
					continue
				}
				var rhs ast.Expr
				resIdx, nres := 0, 1
				switch {
				case multi:
					rhs, resIdx, nres = vs.Values[0], i, len(vs.Names)
				case i < len(vs.Values):
					rhs = vs.Values[i]
				}
				if rhs == nil {
					out = append(out, ssaDef{obj: obj, make: func(int) *ssaValue {
						return &ssaValue{kind: ssaZero, obj: obj, block: block}
					}})
					continue
				}
				idx, nr := resIdx, nres
				out = append(out, ssaDef{obj: obj, make: func(int) *ssaValue {
					return &ssaValue{kind: ssaExpr, obj: obj, block: block, expr: rhs, resIdx: idx, nres: nr}
				}})
			}
		}
	}
	return out
}

// rangeDefs lists the key/value binding events of a range head block.
func (f *ssaFunc) rangeDefs(s *ast.RangeStmt, block int) []ssaDef {
	info := f.info()
	var out []ssaDef
	bind := func(e ast.Expr, kind int) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil || !f.tracked[obj] {
			return
		}
		k := kind
		out = append(out, ssaDef{obj: obj, make: func(int) *ssaValue {
			return &ssaValue{kind: k, obj: obj, block: block, expr: s.X}
		}})
	}
	if s.Key != nil {
		bind(s.Key, ssaRangeKey)
	}
	if s.Value != nil {
		bind(s.Value, ssaRangeVal)
	}
	return out
}

func assignOp(tok token.Token) token.Token {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD
	case token.SUB_ASSIGN:
		return token.SUB
	case token.MUL_ASSIGN:
		return token.MUL
	case token.QUO_ASSIGN:
		return token.QUO
	case token.REM_ASSIGN:
		return token.REM
	case token.AND_ASSIGN:
		return token.AND
	case token.OR_ASSIGN:
		return token.OR
	case token.XOR_ASSIGN:
		return token.XOR
	case token.SHL_ASSIGN:
		return token.SHL
	case token.SHR_ASSIGN:
		return token.SHR
	case token.AND_NOT_ASSIGN:
		return token.AND_NOT
	}
	return token.ILLEGAL
}

// placePhis inserts phi values at the iterated dominance frontier of
// each variable's definition blocks.
func (f *ssaFunc) placePhis(defsites map[types.Object]map[int]bool) {
	n := len(f.cfg.blocks)
	df := make([][]int, n)
	for b := 0; b < n; b++ {
		if !f.reach[b] || len(f.preds[b]) < 2 {
			continue
		}
		for _, p := range f.preds[b] {
			for runner := p; runner != f.idom[b]; runner = f.idom[runner] {
				df[runner] = append(df[runner], b)
				if runner == f.idom[runner] { // entry self-loop guard
					break
				}
			}
		}
	}

	f.phis = make([][]*ssaValue, n)
	// Deterministic variable order: by definition position.
	var objs []types.Object
	//proram:allow maporder collected keys are sorted by position before use
	for obj := range defsites {
		objs = append(objs, obj)
	}
	sortObjectsByPos(objs)
	for _, obj := range objs {
		hasPhi := make(map[int]bool)
		var work []int
		//proram:allow maporder worklist order cannot change the iterated-frontier fixpoint
		for b := range defsites[obj] {
			work = append(work, b)
		}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, y := range df[b] {
				if hasPhi[y] {
					continue
				}
				hasPhi[y] = true
				phi := &ssaValue{kind: ssaPhi, obj: obj, block: y, phiArgs: make([]int, len(f.preds[y]))}
				for i := range phi.phiArgs {
					phi.phiArgs[i] = -1
				}
				f.newValue(phi)
				f.phis[y] = append(f.phis[y], phi)
				if !defsites[obj][y] {
					work = append(work, y)
				}
			}
		}
	}
}

func sortObjectsByPos(objs []types.Object) {
	for i := 1; i < len(objs); i++ {
		for j := i; j > 0 && objs[j].Pos() < objs[j-1].Pos(); j-- {
			objs[j], objs[j-1] = objs[j-1], objs[j]
		}
	}
}

// rename walks the dominator tree assigning versions: parameter values
// at entry, definition events in node order, phi argument filling along
// each outgoing edge, and useOf entries for every resolved read.
func (f *ssaFunc) rename() {
	cur := make(map[types.Object]int)
	entry := f.cfg.entry.index

	// Entry definitions: receiver, parameters, named results.
	var undoEntry []func()
	set := func(obj types.Object, id int) func() {
		prev, had := cur[obj]
		cur[obj] = id
		return func() {
			if had {
				cur[obj] = prev
			} else {
				delete(cur, obj)
			}
		}
	}
	defineEntry := func(fl *ast.FieldList, kind int) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				obj := f.info().Defs[name]
				if obj == nil || !f.tracked[obj] {
					continue
				}
				id := f.newValue(&ssaValue{kind: kind, obj: obj, block: entry})
				undoEntry = append(undoEntry, set(obj, id))
			}
		}
	}
	defineEntry(f.decl.Recv, ssaParam)
	defineEntry(f.decl.Type.Params, ssaParam)
	defineEntry(f.decl.Type.Results, ssaZero)

	var visit func(bi int)
	visit = func(bi int) {
		b := f.cfg.blocks[bi]
		var undo []func()
		for _, phi := range f.phis[bi] {
			undo = append(undo, set(phi.obj, phi.id))
		}
		for _, n := range b.nodes {
			f.resolveUses(n)
			for _, d := range f.nodeDefs(n, bi) {
				prev, ok := cur[d.obj]
				if !ok {
					prev = -1
				}
				v := d.make(prev)
				f.newValue(v)
				undo = append(undo, set(d.obj, v.id))
			}
		}
		if b.rangeLoop != nil {
			for _, d := range f.rangeDefs(b.rangeLoop, bi) {
				v := d.make(-1)
				f.newValue(v)
				if v.kind == ssaRangeKey {
					f.rangeKey[bi] = v.id
				}
				undo = append(undo, set(d.obj, v.id))
			}
		}
		for _, s := range b.succs {
			for _, phi := range f.phis[s.index] {
				if id, ok := cur[phi.obj]; ok {
					for k, p := range f.preds[s.index] {
						if p == bi {
							phi.phiArgs[k] = id
						}
					}
				}
			}
		}
		for _, c := range f.children[bi] {
			visit(c)
		}
		for i := len(undo) - 1; i >= 0; i-- {
			undo[i]()
		}
	}

	// resolveUses/nodeDefs close over cur via this helper pair.
	f.renameUses = func(n ast.Node) {
		skip := f.defTargets(n)
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				return false
			case *ast.SelectorExpr:
				// Only the base can be a variable read; Sel is a member name.
				f.renameUses(x.X)
				return false
			case *ast.Ident:
				if skip[x] {
					return true
				}
				obj := f.info().Uses[x]
				if obj == nil || !f.tracked[obj] {
					return true
				}
				if id, ok := cur[obj]; ok {
					f.useOf[x] = id
				}
			}
			return true
		})
	}
	visit(entry)
	for i := len(undoEntry) - 1; i >= 0; i-- {
		undoEntry[i]()
	}
	f.renameUses = nil
}

func (f *ssaFunc) resolveUses(n ast.Node) {
	if f.renameUses != nil {
		f.renameUses(n)
	}
}

// defTargets returns the identifiers a node writes (not reads): the
// plain-ident left-hand sides of = and := assignments and value-spec
// names. Op-assign and ++/-- targets are reads too, so they are not
// included; their read resolves to the pre-step version, which is what
// the ssaStep operand records.
func (f *ssaFunc) defTargets(n ast.Node) map[*ast.Ident]bool {
	out := make(map[*ast.Ident]bool)
	switch x := n.(type) {
	case *ast.AssignStmt:
		if x.Tok == token.DEFINE || x.Tok == token.ASSIGN {
			for _, l := range x.Lhs {
				if id, ok := ast.Unparen(l).(*ast.Ident); ok {
					out[id] = true
				}
			}
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						out[name] = true
					}
				}
			}
		}
	}
	return out
}
