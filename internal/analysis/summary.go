package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sync"
)

// This file computes bottom-up interprocedural function summaries over
// the call graph. A summary answers, per declared function, in terms of
// the function's own parameters:
//
//   - returnMask: which origins (parameters, or the secret payload
//     source itself) can flow into its return values;
//   - paramFlows: which origins it writes into a parameter's referent
//     (through a pointer, slice, map or receiver field);
//   - paramSinks: which secret-sensitive sinks (branch conditions,
//     memory indexes, observability emissions) a parameter's value can
//     reach, directly or through further calls;
//   - rngSites: where it constructs an RNG and which parameters feed the
//     seed (the seedplumbing pass's reachability facts);
//   - reports: the secret-origin findings to emit when the oblivious
//     pass covers the package.
//
// The origin domain is a 64-bit mask: bit 63 is "secret payload bytes"
// (a read of a //proram:secret field), bit 62 is "derived from something
// this analysis cannot translate across the call boundary" (function
// literal parameters), and bits 0..61 are the receiver-first parameter
// indexes. Masks only grow, translation across a call maps callee
// parameter bits to the caller's argument masks, and strongly connected
// components iterate to a fixpoint, so recursion converges.
//
// Precision matches the old intra-procedural pass on straight-line
// code: len/cap sanitize, writing into x.f/x[i]/*x taints the container
// x, //proram:public on an assignment or sink declassifies. Calls into
// internal/obs are never summarized through — the emission itself is
// the sink there — and calls the call graph cannot resolve fall back to
// the old conservative rule (the union of the argument masks).

type originMask uint64

const (
	secretOrigin originMask = 1 << 63
	opaqueOrigin originMask = 1 << 62

	maxTrackedParams = 62
)

func paramBit(i int) originMask {
	if i < 0 || i >= maxTrackedParams {
		return opaqueOrigin
	}
	return originMask(1) << uint(i)
}

// translateMask rewrites a callee-relative mask into the caller's frame:
// secret stays secret, parameter bits become the corresponding argument
// masks, and opaque derivations are dropped (they cannot be traced
// through the boundary).
func translateMask(m originMask, argMasks []originMask) originMask {
	out := m & secretOrigin
	for i := 0; i < len(argMasks) && i < maxTrackedParams; i++ {
		if m&paramBit(i) != 0 {
			out |= argMasks[i]
		}
	}
	return out
}

// sinkRef is one secret-sensitive sink reachable from a parameter.
type sinkRef struct {
	what string    // "if condition", "memory index", "observability emission", ...
	pos  token.Pos // the ultimate sink
	via  string    // call chain from the summarized function, "" when local
}

// rngSite is one RNG construction reachable from a function: a direct
// rng.New call, or a call into a helper that constructs one. mask holds
// the parameters whose values feed the seed; 0 means internally seeded.
type rngSite struct {
	pos  token.Pos // the call in this function (rng.New or the helper call)
	mask originMask
	via  string // helper chain, "" for a direct rng.New call
}

type taintReport struct {
	pos token.Pos
	msg string
}

type funcSummary struct {
	node       *CGNode
	returnMask originMask
	paramFlows []originMask
	paramSinks [][]sinkRef
	rngSites   []rngSite
	reports    []taintReport
}

type summaries struct {
	prog   *Program
	byFunc map[*types.Func]*funcSummary

	envMu sync.Mutex
	envs  map[*types.Func]*taintEnv
}

// maskEnv returns a taint environment whose object state sits at the
// function's fixpoint — the same state analyze converges to — so
// clients can evaluate exprMask at arbitrary expressions of the body.
// The fixedtrip and branchless passes use it to ask "is this loop bound
// or branch condition derived from a secret or a parameter?" without
// re-deriving the propagation rules. Environments are cached per
// function; the underlying summaries are already final, so one
// propagation fixpoint rebuilds the state exactly.
func (s *summaries) maskEnv(n *CGNode) *taintEnv {
	s.envMu.Lock()
	defer s.envMu.Unlock()
	if s.envs == nil {
		s.envs = make(map[*types.Func]*taintEnv)
	}
	if e, ok := s.envs[n.Fn]; ok {
		return e
	}
	e := s.newEnv(n)
	for i := 0; i < 64; i++ {
		if !e.propagate() {
			break
		}
	}
	s.envs[n.Fn] = e
	return e
}

// newEnv builds the initial per-function taint state: parameters carry
// their own bits, function-literal parameters are opaque.
func (s *summaries) newEnv(n *CGNode) *taintEnv {
	e := &taintEnv{
		s:        s,
		n:        n,
		sum:      s.byFunc[n.Fn],
		state:    make(map[types.Object]originMask),
		paramIdx: make(map[types.Object]int),
	}
	for i, p := range n.Params {
		e.paramIdx[p] = i
		e.state[p] = paramBit(i)
	}
	// Function-literal parameters are caller-controlled at a level this
	// summary cannot express; mark them opaque so derivations neither
	// look secret nor look internally fabricated.
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		lit, ok := x.(*ast.FuncLit)
		if !ok {
			return true
		}
		for _, field := range lit.Type.Params.List {
			for _, name := range field.Names {
				if obj := n.Pkg.Info.Defs[name]; obj != nil {
					e.state[obj] = opaqueOrigin
				}
			}
		}
		return true
	})
	return e
}

// taintSummaries builds (once) the summaries for every declared
// function, visiting SCCs bottom-up.
func (p *Program) taintSummaries() *summaries {
	p.sumOnce.Do(func() { p.sums = computeSummaries(p) })
	return p.sums
}

func computeSummaries(prog *Program) *summaries {
	cg := prog.CallGraph()
	s := &summaries{prog: prog, byFunc: make(map[*types.Func]*funcSummary, len(cg.Nodes))}
	for _, n := range cg.Nodes {
		s.byFunc[n.Fn] = &funcSummary{
			node:       n,
			paramFlows: make([]originMask, len(n.Params)),
			paramSinks: make([][]sinkRef, len(n.Params)),
		}
	}
	for _, comp := range cg.SCCs {
		// Singleton components converge in one pass; cycles iterate until
		// the member summaries stop growing. The domain is finite (masks
		// and dedup'd sink sets only grow), so the bound is paranoia.
		for round := 0; round < 64; round++ {
			changed := false
			for _, n := range comp {
				if s.analyze(n) {
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
	return s
}

func (s *summaries) isObsPkg(pkg *types.Package) bool {
	return pkg != nil && pkg.Path() == s.prog.ModulePath+"/internal/obs"
}

// analyze recomputes one function against the current callee summaries
// and reports whether its own summary grew.
func (s *summaries) analyze(n *CGNode) bool {
	e := s.newEnv(n)
	for i := 0; i < 64; i++ {
		if !e.propagate() {
			break
		}
	}
	e.collect()
	return e.grew
}

// taintEnv is the per-function analysis state.
type taintEnv struct {
	s        *summaries
	n        *CGNode
	sum      *funcSummary
	state    map[types.Object]originMask
	paramIdx map[types.Object]int

	changed bool // state grew this propagate round
	grew    bool // summary grew this analyze call
	reports []taintReport
	seen    map[string]bool // report dedup within one collect
}

func (e *taintEnv) info() *types.Info { return e.n.Pkg.Info }

func (e *taintEnv) pos(p token.Pos) token.Position { return e.s.prog.Fset.Position(p) }

// propagate performs one flow-insensitive round over the body (function
// literals included, in the same flat state) and reports growth.
func (e *taintEnv) propagate() bool {
	e.changed = false
	ast.Inspect(e.n.Decl.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.AssignStmt:
			if len(x.Rhs) == 1 && len(x.Lhs) > 1 {
				m := e.exprMask(x.Rhs[0])
				for _, l := range x.Lhs {
					e.mark(l, m, x, false)
				}
				return true
			}
			for i, r := range x.Rhs {
				if i < len(x.Lhs) {
					e.mark(x.Lhs[i], e.exprMask(r), x, false)
				}
			}
		case *ast.ValueSpec:
			if len(x.Values) == 1 && len(x.Names) > 1 {
				m := e.exprMask(x.Values[0])
				for _, name := range x.Names {
					e.mark(name, m, x, false)
				}
				return true
			}
			for i, v := range x.Values {
				if i < len(x.Names) {
					e.mark(x.Names[i], e.exprMask(v), x, false)
				}
			}
		case *ast.RangeStmt:
			m := e.exprMask(x.X)
			if x.Key != nil {
				e.mark(x.Key, e.rangeKeyMask(x.X, m), x, false)
			}
			if x.Value != nil {
				e.mark(x.Value, m, x, false)
			}
		case *ast.CallExpr:
			e.applyCallEffects(x)
		}
		return true
	})
	return e.changed
}

// mark unions a mask into the object at the base of the written
// expression. Writing through a selector, index or dereference is a
// store into the object's referent: when that object is a parameter the
// flow is recorded in the summary so callers see it.
func (e *taintEnv) mark(target ast.Expr, m originMask, at ast.Node, store bool) {
	if m == 0 {
		return
	}
peel:
	for {
		switch x := target.(type) {
		case *ast.SelectorExpr:
			target, store = x.X, true
		case *ast.IndexExpr:
			target, store = x.X, true
		case *ast.StarExpr:
			target, store = x.X, true
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return
			}
			target = x.X
		case *ast.ParenExpr:
			target = x.X
		default:
			break peel
		}
	}
	id, ok := target.(*ast.Ident)
	if !ok {
		return
	}
	obj := e.info().Defs[id]
	if obj == nil {
		obj = e.info().Uses[id]
	}
	if obj == nil {
		return
	}
	// A //proram:public directive on the assignment declassifies.
	p := e.pos(at.Pos())
	if e.n.Pkg.directiveAt("public", p.Filename, p.Line) != nil {
		return
	}
	if old := e.state[obj]; old|m != old {
		e.state[obj] = old | m
		e.changed = true
	}
	if store {
		if i, ok := e.paramIdx[obj]; ok {
			if old := e.sum.paramFlows[i]; old|m != old {
				e.sum.paramFlows[i] |= m
				e.grew = true
			}
		}
	}
}

// rangeKeyMask refines the taint of a range key: over a slice, array,
// pointer-to-array or string the keys are the integers 0..len-1 —
// geometry, public by the same argument that sanitizes len and cap.
// Map keys and channel elements are data and carry the container's
// taint.
func (e *taintEnv) rangeKeyMask(x ast.Expr, m originMask) originMask {
	tv, ok := e.info().Types[x]
	if !ok || tv.Type == nil {
		return m
	}
	t := tv.Type.Underlying()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem().Underlying()
	}
	switch t.(type) {
	case *types.Slice, *types.Array, *types.Basic:
		return 0
	}
	return m
}

// applyCallEffects models the stores a call performs in the caller's
// frame: the copy builtin, and the paramFlows of a resolved callee.
func (e *taintEnv) applyCallEffects(call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := e.info().Uses[id].(*types.Builtin); ok {
			if b.Name() == "copy" && len(call.Args) == 2 {
				e.mark(call.Args[0], e.exprMask(call.Args[1]), call, true)
			}
			return
		}
	}
	callee := e.resolveCallee(call)
	if callee == nil || e.s.isObsPkg(callee.Fn.Pkg()) {
		return
	}
	cs := e.s.byFunc[callee.Fn]
	argMasks, argExprs := e.callArgs(callee, call)
	for i, fl := range cs.paramFlows {
		if fl == 0 {
			continue
		}
		tr := translateMask(fl, argMasks)
		if tr == 0 {
			continue
		}
		for _, a := range argExprs[i] {
			e.mark(a, tr, call, true)
		}
	}
}

func (e *taintEnv) resolveCallee(call *ast.CallExpr) *CGNode {
	return e.s.prog.CallGraph().resolveCall(e.n.Pkg, call)
}

// callArgs aligns a call's arguments with the callee's receiver-first
// parameters: per parameter, the combined origin mask and the argument
// expressions (several for a variadic tail).
func (e *taintEnv) callArgs(callee *CGNode, call *ast.CallExpr) ([]originMask, [][]ast.Expr) {
	masks := make([]originMask, len(callee.Params))
	exprs := make([][]ast.Expr, len(callee.Params))
	off := 0
	if callee.Fn.Type().(*types.Signature).Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && len(callee.Params) > 0 {
			masks[0] = e.exprMask(sel.X)
			exprs[0] = append(exprs[0], sel.X)
		}
		off = 1
	}
	for k, a := range call.Args {
		i := off + k
		if callee.Variadic && i >= len(callee.Params)-1 {
			i = len(callee.Params) - 1
		}
		if i >= 0 && i < len(callee.Params) {
			masks[i] |= e.exprMask(a)
			exprs[i] = append(exprs[i], a)
		}
	}
	return masks, exprs
}

// exprMask reports the origins an expression's value may derive from.
func (e *taintEnv) exprMask(x ast.Expr) originMask {
	switch x := x.(type) {
	case nil:
		return 0
	case *ast.Ident:
		if obj := e.info().Uses[x]; obj != nil {
			return e.state[obj]
		}
		return 0
	case *ast.SelectorExpr:
		var m originMask
		if sel, ok := e.info().Selections[x]; ok && sel.Kind() == types.FieldVal {
			if e.s.prog.SecretFields[sel.Obj()] {
				m |= secretOrigin
			}
		}
		return m | e.exprMask(x.X)
	case *ast.IndexExpr:
		if tv, ok := e.info().Types[x.Index]; ok && tv.IsType() {
			return e.exprMask(x.X) // generic instantiation, not an index
		}
		return e.exprMask(x.X) | e.exprMask(x.Index)
	case *ast.SliceExpr:
		return e.exprMask(x.X)
	case *ast.StarExpr:
		return e.exprMask(x.X)
	case *ast.ParenExpr:
		return e.exprMask(x.X)
	case *ast.UnaryExpr:
		return e.exprMask(x.X)
	case *ast.BinaryExpr:
		return e.exprMask(x.X) | e.exprMask(x.Y)
	case *ast.TypeAssertExpr:
		return e.exprMask(x.X)
	case *ast.CompositeLit:
		var m originMask
		for _, el := range x.Elts {
			m |= e.exprMask(el)
		}
		return m
	case *ast.KeyValueExpr:
		return e.exprMask(x.Value)
	case *ast.CallExpr:
		return e.callMask(x)
	default:
		return 0
	}
}

func (e *taintEnv) callMask(call *ast.CallExpr) originMask {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := e.info().Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap":
				// Block geometry is public by construction.
				return 0
			}
		}
	}
	if callee := e.resolveCallee(call); callee != nil && !e.s.isObsPkg(callee.Fn.Pkg()) {
		masks, _ := e.callArgs(callee, call)
		return translateMask(e.s.byFunc[callee.Fn].returnMask, masks)
	}
	// Conversions, builtins and unresolved calls: the old conservative
	// rule — tainted arguments taint the result.
	var m originMask
	for _, a := range call.Args {
		m |= e.exprMask(a)
	}
	return m
}

// collect runs the sink scan over the final state: local reports,
// parameter sink sets, return masks and rng construction sites.
func (e *taintEnv) collect() {
	e.reports = e.reports[:0]
	e.seen = make(map[string]bool)
	ast.Inspect(e.n.Decl.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.IfStmt:
			e.checkCond(x.Cond, "if condition")
		case *ast.ForStmt:
			if x.Cond != nil {
				e.checkCond(x.Cond, "loop bound")
			}
		case *ast.SwitchStmt:
			if x.Tag != nil {
				e.checkCond(x.Tag, "switch tag")
			}
			for _, clause := range x.Body.List {
				if cc, ok := clause.(*ast.CaseClause); ok {
					for _, c := range cc.List {
						e.checkCond(c, "switch case")
					}
				}
			}
		case *ast.IndexExpr:
			if tv, ok := e.info().Types[x.Index]; !ok || !tv.IsType() {
				e.checkIndexSink(e.exprMask(x.Index), x.Index.Pos(), "memory index")
			}
		case *ast.SliceExpr:
			for _, bound := range []ast.Expr{x.Low, x.High, x.Max} {
				if bound != nil {
					e.checkIndexSink(e.exprMask(bound), bound.Pos(), "slice bound")
				}
			}
		case *ast.SendStmt:
			e.checkSchedSink(e.exprMask(x.Chan), x.Chan.Pos(), "channel send target")
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				e.checkSchedSink(e.exprMask(x.X), x.X.Pos(), "channel receive source")
			}
		case *ast.GoStmt:
			e.checkSchedSink(e.exprMask(x.Call.Fun), x.Call.Fun.Pos(), "goroutine spawn target")
		case *ast.CallExpr:
			e.checkCall(x)
		}
		return true
	})

	// Returns. Function-literal returns are the literal's, not ours.
	ast.Inspect(e.n.Decl.Body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if ret, ok := x.(*ast.ReturnStmt); ok {
			for _, r := range ret.Results {
				e.foldReturn(e.exprMask(r))
			}
		}
		return true
	})
	if res := e.n.Decl.Type.Results; res != nil {
		for _, field := range res.List {
			for _, name := range field.Names {
				if obj := e.info().Defs[name]; obj != nil {
					e.foldReturn(e.state[obj])
				}
			}
		}
	}

	if len(e.reports) > 0 || len(e.sum.reports) > 0 {
		e.sum.reports = append(e.sum.reports[:0], e.reports...)
	}
}

func (e *taintEnv) foldReturn(m originMask) {
	if old := e.sum.returnMask; old|m != old {
		e.sum.returnMask |= m
		e.grew = true
	}
}

func (e *taintEnv) report(pos token.Pos, msg string) {
	key := fmt.Sprintf("%d\x00%s", pos, msg)
	if e.seen[key] {
		return
	}
	e.seen[key] = true
	e.reports = append(e.reports, taintReport{pos: pos, msg: msg})
}

// addParamSink records that the parameters in m reach a sink. The dedup
// key deliberately ignores the via chain: recursive cycles would
// otherwise regrow the chain forever, and the first (shortest) chain is
// the most readable one anyway.
func (e *taintEnv) addParamSink(m originMask, what string, pos token.Pos, via string) {
	for i := range e.sum.paramSinks {
		if m&paramBit(i) == 0 || paramBit(i) == opaqueOrigin {
			continue
		}
		dup := false
		for _, sr := range e.sum.paramSinks[i] {
			if sr.what == what && sr.pos == pos {
				dup = true
				break
			}
		}
		if !dup {
			e.sum.paramSinks[i] = append(e.sum.paramSinks[i], sinkRef{what: what, pos: pos, via: via})
			e.grew = true
		}
	}
}

func (e *taintEnv) addRngSite(pos token.Pos, m originMask, via string) {
	for i := range e.sum.rngSites {
		if e.sum.rngSites[i].pos == pos && e.sum.rngSites[i].via == via {
			if old := e.sum.rngSites[i].mask; old|m != old {
				e.sum.rngSites[i].mask |= m
				e.grew = true
			}
			return
		}
	}
	e.sum.rngSites = append(e.sum.rngSites, rngSite{pos: pos, mask: m, via: via})
	e.grew = true
}

// declassified reports whether a //proram:public directive covers the
// position.
func (e *taintEnv) declassified(pos token.Pos) bool {
	p := e.pos(pos)
	return e.n.Pkg.directiveAt("public", p.Filename, p.Line) != nil
}

func (e *taintEnv) checkCond(cond ast.Expr, what string) {
	m := e.exprMask(cond)
	if m == 0 || e.declassified(cond.Pos()) {
		return
	}
	if m&secretOrigin != 0 {
		e.report(cond.Pos(), fmt.Sprintf("%s depends on secret block payload bytes; the resulting access pattern leaks data (declassify with //proram:public only if the value is public by protocol)", what))
	}
	e.addParamSink(m, what, cond.Pos(), "")
}

// checkIndexSink is the secret-index sink: a secret-derived slice,
// array or map index (or slice bound) selects which addresses are
// touched — the classic ORAM access-pattern leak.
func (e *taintEnv) checkIndexSink(m originMask, pos token.Pos, what string) {
	if m == 0 || e.declassified(pos) {
		return
	}
	if m&secretOrigin != 0 {
		e.report(pos, fmt.Sprintf("%s depends on secret block payload bytes; a secret-derived index decides which addresses are touched (declassify with //proram:public only if the value is public by protocol)", what))
	}
	e.addParamSink(m, what, pos, "")
}

// checkSchedSink is the scheduling sink: a secret-derived value that
// decides which channel is touched, whether and what a goroutine runs,
// or which lock is taken makes the scheduler an observable channel —
// contention and interleaving are visible off-chip as timing, exactly
// like a secret-derived memory index.
func (e *taintEnv) checkSchedSink(m originMask, pos token.Pos, what string) {
	if m == 0 || e.declassified(pos) {
		return
	}
	if m&secretOrigin != 0 {
		e.report(pos, fmt.Sprintf("%s depends on secret block payload bytes; secret-dependent scheduling is observable as timing and interleaving (declassify with //proram:public only if the value is public by protocol)", what))
	}
	e.addParamSink(m, what, pos, "")
}

// checkCall handles the call-shaped sinks: observability emissions,
// sinks inherited from a resolved callee's summary, lock-acquisition
// scheduling sinks, and rng construction sites for the seedplumbing
// pass.
func (e *taintEnv) checkCall(call *ast.CallExpr) {
	e.checkObsEmission(call)
	e.checkRNGSite(call)

	if op, ok := classifySyncOp(e.info(), call); ok {
		switch op.method {
		case "Lock", "RLock", "TryLock", "TryRLock":
			e.checkSchedSink(e.exprMask(op.recv), op.recv.Pos(), "lock acquisition target")
		}
	}

	callee := e.resolveCallee(call)
	if callee == nil || e.s.isObsPkg(callee.Fn.Pkg()) {
		return
	}
	cs := e.s.byFunc[callee.Fn]
	masks, exprs := e.callArgs(callee, call)
	for i := range cs.paramSinks {
		if len(cs.paramSinks[i]) == 0 {
			continue
		}
		for _, sr := range cs.paramSinks[i] {
			via := callee.Name()
			if sr.via != "" {
				via += " → " + sr.via
			}
			for _, a := range exprs[i] {
				am := e.exprMask(a)
				if am == 0 || e.declassified(a.Pos()) {
					continue
				}
				if am&secretOrigin != 0 {
					e.report(a.Pos(), fmt.Sprintf(
						"secret block payload bytes flow into parameter %q of %s and reach a %s at %s (declassify with //proram:public only if the value is public by protocol)",
						paramName(callee, i), via, sr.what, e.s.prog.relPosition(sr.pos)))
				}
				e.addParamSink(am, sr.what, sr.pos, via)
			}
		}
	}

	// Inherit the callee's rng sites. Sites already reported at an
	// exported constructor are not re-reported at its callers; opaque
	// derivations stop here (they cannot be traced further up).
	for _, site := range cs.rngSites {
		if site.mask == 0 && isExportedConstructor(callee) {
			continue
		}
		if site.mask&opaqueOrigin != 0 {
			continue
		}
		if callee.SCC == e.n.SCC {
			continue // recursion: the cycle already owns the site
		}
		via := callee.Name()
		if site.via != "" {
			via += " → " + site.via
		}
		e.addRngSite(call.Pos(), translateMask(site.mask, masks), via)
	}
}

func paramName(n *CGNode, i int) string {
	if i >= 0 && i < len(n.Params) && n.Params[i].Name() != "" {
		return n.Params[i].Name()
	}
	return fmt.Sprintf("#%d", i)
}

// isExportedConstructor mirrors the seedplumbing reporting gate.
func isExportedConstructor(n *CGNode) bool {
	name := n.Fn.Name()
	return n.Fn.Type().(*types.Signature).Recv() == nil && ast.IsExported(name) && len(name) >= 3 && name[:3] == "New"
}

func (e *taintEnv) checkObsEmission(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := e.info().Uses[sel.Sel].(*types.Func)
	if !ok || !e.s.isObsPkg(fn.Pkg()) {
		return
	}
	for _, arg := range call.Args {
		m := e.exprMask(arg)
		if m == 0 || e.declassified(arg.Pos()) {
			continue
		}
		if m&secretOrigin != 0 {
			e.report(arg.Pos(), "observability emission argument depends on secret block payload bytes; metrics and traces are exported off-chip (declassify with //proram:public only if the value is public by protocol)")
		}
		e.addParamSink(m, "observability emission", arg.Pos(), "")
	}
}

// checkRNGSite records direct rng.New construction. A site suppressed
// by //proram:allow seedplumbing at the call is consumed here so the
// suppression is honored even when the site would surface in a caller.
func (e *taintEnv) checkRNGSite(call *ast.CallExpr) {
	pkgPath, fname := calleePackageFunc(e.info(), call)
	if pkgPath != e.s.prog.ModulePath+"/internal/rng" || fname != "New" || len(call.Args) != 1 {
		return
	}
	p := e.pos(call.Pos())
	if d := e.n.Pkg.allowDirectiveFor("seedplumbing", p.Filename, p.Line); d != nil {
		d.used = true
		return
	}
	e.addRngSite(call.Pos(), e.exprMask(call.Args[0]), "")
}
