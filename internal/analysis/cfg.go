package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is a light-weight per-function control-flow graph over the
// typed AST. It exists for one client question — "is this allocation on
// a failure path that already ends in panic?" — so it models exactly
// what that needs: basic blocks of evaluated nodes, successor edges for
// every Go control construct, and a doomed-block fixpoint (a block is
// doomed when every path out of it panics). Failure-path allocations
// (the fmt.Sprintf feeding a panic) are exempt from the hot-path
// allocation discipline; everything reachable past them is not.

// cfgBlock is one basic block. nodes holds the statements and the
// condition/tag expressions evaluated in the block, in source order;
// bodies of nested control statements live in other blocks, and
// function literals keep their bodies out of the enclosing graph
// entirely (clients build a separate graph per literal).
type cfgBlock struct {
	index  int
	nodes  []ast.Node
	succs  []*cfgBlock
	panics bool

	// Branch-edge roles for the value-range layer (ssa.go, vrange.go).
	// When the block ends in a two-way conditional, branchCond is the
	// condition (the same expression already present in nodes — these
	// fields record edge roles only, so clients walking nodes still see
	// every node exactly once) and branchTrue/branchFalse are the
	// successors taken on each outcome. rangeLoop is set on the head
	// block of a range statement, with rangeBody its body successor.
	branchCond  ast.Expr
	branchTrue  *cfgBlock
	branchFalse *cfgBlock
	rangeLoop   *ast.RangeStmt
	rangeBody   *cfgBlock
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	entry  *cfgBlock
	blocks []*cfgBlock

	// loops maps each for/range statement to its head block (the block
	// holding the condition, or the per-iteration dispatch block of a
	// range), so loop-oriented clients can find natural-loop membership.
	loops map[ast.Stmt]*cfgBlock
}

// doomed returns, per block index, whether every path from the block
// ends in panic: the block panics itself, or it has successors and all
// of them are doomed. Normal exits (return, falling off the end) have
// no successors and are never doomed, so the fixpoint only grows along
// genuinely inescapable paths. Infinite loops stay undoomed, which is
// the conservative direction for an exemption.
func (g *funcCFG) doomed() []bool {
	d := make([]bool, len(g.blocks))
	for i, b := range g.blocks {
		d[i] = b.panics
	}
	for changed := true; changed; {
		changed = false
		for i, b := range g.blocks {
			if d[i] || len(b.succs) == 0 {
				continue
			}
			all := true
			for _, s := range b.succs {
				if !d[s.index] {
					all = false
					break
				}
			}
			if all {
				d[i] = true
				changed = true
			}
		}
	}
	return d
}

type cfgBuilder struct {
	info *types.Info
	g    *funcCFG
	cur  *cfgBlock // nil after a terminator (return, branch, panic)

	frames []cfgFrame
	labels map[string]*cfgBlock
	gotos  []cfgGoto

	pendingLabel string
}

// cfgFrame is one enclosing breakable construct. contTgt is nil for
// switch and select frames (continue passes through to the loop).
type cfgFrame struct {
	label    string
	breakTgt *cfgBlock
	contTgt  *cfgBlock
}

type cfgGoto struct {
	from  *cfgBlock
	label string
}

// buildCFG constructs the graph for one function or literal body.
func buildCFG(info *types.Info, body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{info: info, g: &funcCFG{loops: make(map[ast.Stmt]*cfgBlock)}, labels: make(map[string]*cfgBlock)}
	b.cur = b.newBlock()
	b.g.entry = b.cur
	b.stmtList(body.List)
	for _, gt := range b.gotos {
		if tgt, ok := b.labels[gt.label]; ok {
			b.link(gt.from, tgt)
		}
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *cfgBlock) {
	if from == nil || to == nil {
		return
	}
	from.succs = append(from.succs, to)
}

// emit appends an evaluated node to the current block, starting an
// (unreachable) fresh block if a terminator just closed the last one.
func (b *cfgBuilder) emit(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.nodes = append(b.cur.nodes, n)
}

// ensure returns the current block, starting one if needed.
func (b *cfgBuilder) ensure() *cfgBlock {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		lb := b.newBlock()
		b.link(b.ensure(), lb)
		b.cur = lb
		b.labels[s.Label.Name] = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.emit(s.Cond)
		cond := b.cur
		join := b.newBlock()
		then := b.newBlock()
		b.link(cond, then)
		b.cur = then
		b.stmt(s.Body)
		b.link(b.cur, join)
		cond.branchCond, cond.branchTrue = s.Cond, then
		if s.Else != nil {
			els := b.newBlock()
			b.link(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.link(b.cur, join)
			cond.branchFalse = els
		} else {
			b.link(cond, join)
			cond.branchFalse = join
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		b.link(b.ensure(), head)
		b.cur = head
		b.emit(s.Cond)
		b.g.loops[s] = head
		body := b.newBlock()
		exit := b.newBlock()
		b.link(head, body)
		if s.Cond != nil {
			b.link(head, exit)
			head.branchCond, head.branchTrue, head.branchFalse = s.Cond, body, exit
		}
		cont := head
		var post *cfgBlock
		if s.Post != nil {
			post = b.newBlock()
			cont = post
		}
		b.frames = append(b.frames, cfgFrame{label: label, breakTgt: exit, contTgt: cont})
		b.cur = body
		b.stmt(s.Body)
		if post != nil {
			b.link(b.cur, post)
			b.cur = post
			b.stmt(s.Post)
			b.link(b.cur, head)
		} else {
			b.link(b.cur, head)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = exit

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.emit(s.X)
		head := b.newBlock()
		b.link(b.ensure(), head)
		b.g.loops[s] = head
		body := b.newBlock()
		exit := b.newBlock()
		b.link(head, body)
		b.link(head, exit)
		head.rangeLoop, head.rangeBody = s, body
		b.frames = append(b.frames, cfgFrame{label: label, breakTgt: exit, contTgt: head})
		b.cur = body
		b.stmt(s.Body)
		b.link(b.cur, head)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = exit

	case *ast.SwitchStmt:
		b.switchLike(s.Init, s.Tag, nil, s.Body)

	case *ast.TypeSwitchStmt:
		b.switchLike(s.Init, nil, s.Assign, s.Body)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.ensure()
		join := b.newBlock()
		b.frames = append(b.frames, cfgFrame{label: label, breakTgt: join})
		for _, clause := range s.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			blk := b.newBlock()
			b.link(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.link(b.cur, join)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = join

	case *ast.ReturnStmt:
		b.emit(s)
		b.cur = nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			b.link(b.cur, b.frameTarget(s, false))
			b.cur = nil
		case token.CONTINUE:
			b.link(b.cur, b.frameTarget(s, true))
			b.cur = nil
		case token.GOTO:
			if b.cur != nil {
				b.gotos = append(b.gotos, cfgGoto{from: b.cur, label: s.Label.Name})
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// The switch builder links the clause to its successor.
		}

	case *ast.ExprStmt:
		b.emit(s)
		if isPanicCall(b.info, s.X) {
			b.cur.panics = true
			b.cur = nil
		}

	default:
		// Assignments, declarations, send, inc/dec, defer, go, empty.
		b.emit(s)
	}
}

// switchLike builds expression and type switches: head evaluates the
// init/tag, every clause is a successor of the head, fallthrough chains
// a clause to the next one, and a missing default adds a head→join edge.
func (b *cfgBuilder) switchLike(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	label := b.takeLabel()
	if init != nil {
		b.stmt(init)
	}
	if tag != nil {
		b.emit(tag)
	}
	if assign != nil {
		b.emit(assign)
	}
	head := b.ensure()
	join := b.newBlock()
	b.frames = append(b.frames, cfgFrame{label: label, breakTgt: join})

	var clauses []*ast.CaseClause
	for _, clause := range body.List {
		if cc, ok := clause.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*cfgBlock, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
		b.link(head, blocks[i])
	}
	hasDefault := false
	for i, cc := range clauses {
		if cc.List == nil {
			hasDefault = true
		}
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.emit(e)
		}
		b.stmtList(cc.Body)
		if endsWithFallthrough(cc.Body) && i+1 < len(blocks) {
			b.link(b.cur, blocks[i+1])
			b.cur = nil
		} else {
			b.link(b.cur, join)
		}
	}
	if !hasDefault {
		b.link(head, join)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = join
}

func endsWithFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// frameTarget resolves a break/continue to its enclosing construct,
// honoring an explicit label.
func (b *cfgBuilder) frameTarget(s *ast.BranchStmt, isContinue bool) *cfgBlock {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if s.Label != nil && f.label != s.Label.Name {
			continue
		}
		if isContinue {
			if f.contTgt != nil {
				return f.contTgt
			}
			continue
		}
		return f.breakTgt
	}
	return nil
}

// isPanicCall reports whether the expression is a direct call of the
// panic builtin.
func isPanicCall(info *types.Info, x ast.Expr) bool {
	call, ok := x.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
