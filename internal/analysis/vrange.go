package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
	"strings"
)

// This file is the value-range layer on top of the SSA view in ssa.go:
// a saturating int64 interval per SSA value (abstract interpretation
// with widening at phis), plus a relational fact system — difference
// constraints "a ≤ b + c" over SSA values, len() terms and a constant
// anchor, harvested from dominating branch edges, executed indexings
// (the `_ = s[n-1]` pin pattern) and range-loop bindings, and closed
// with a small Bellman–Ford. Secret/parameter dependence is answered by
// the taint summaries (summary.go) through maskEnv, so the interval
// side stays purely about magnitudes.
//
// Soundness notes. Finite interval endpoints are capped at ±2^62: any
// computation that could exceed the cap saturates to ±inf, so signed
// overflow never produces a false finite claim; results of typed
// arithmetic that leave the type's range fall back to the full type
// range (wraparound). Relational facts name SSA value ids, whose
// runtime binding is immutable per execution of the definition — a fact
// is therefore only used at B when, for every value it names that is
// defined inside a loop containing B, the fact site is inside that loop
// too (then definition, fact and use are ordered within one iteration
// and the binding cannot have changed in between). Field-path terms
// (w.padTo) are allowed only through non-pointer struct chains rooted
// at a tracked local with no field stores, where no aliasing exists.

const (
	negInf   = math.MinInt64
	posInf   = math.MaxInt64
	satLimit = int64(1) << 62
)

// interval is a saturating [lo, hi] over int64; negInf/posInf endpoints
// mean unbounded. bottomInterval (lo > hi) is the empty starting point
// of the fixpoint.
type interval struct{ lo, hi int64 }

var (
	topInterval    = interval{negInf, posInf}
	bottomInterval = interval{posInf, negInf}
)

func (iv interval) empty() bool { return iv.lo > iv.hi }

// String renders the interval for diagnostics: "[0, 255]", "[1, +inf]".
func (iv interval) String() string {
	if iv.empty() {
		return "[unreachable]"
	}
	lo, hi := "-inf", "+inf"
	if iv.lo != negInf {
		lo = fmt.Sprintf("%d", iv.lo)
	}
	if iv.hi != posInf {
		hi = fmt.Sprintf("%d", iv.hi)
	}
	return fmt.Sprintf("[%s, %s]", lo, hi)
}

func joinInterval(a, b interval) interval {
	if a.empty() {
		return b
	}
	if b.empty() {
		return a
	}
	return interval{min(a.lo, b.lo), max(a.hi, b.hi)}
}

func satVal(x int64) int64 {
	if x > satLimit {
		return posInf
	}
	if x < -satLimit {
		return negInf
	}
	return x
}

func isInf(x int64) bool { return x == negInf || x == posInf }

func satAdd(a, b int64) int64 {
	if a == posInf || b == posInf {
		return posInf
	}
	if a == negInf || b == negInf {
		return negInf
	}
	return satVal(a + b) // non-inf magnitudes are ≤ satLimit, no overflow
}

func satNeg(a int64) int64 {
	switch a {
	case posInf:
		return negInf
	case negInf:
		return posInf
	}
	return -a
}

func satSub(a, b int64) int64 { return satAdd(a, satNeg(b)) }

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if isInf(a) || isInf(b) {
		if (a > 0) == (b > 0) {
			return posInf
		}
		return negInf
	}
	p := a * b
	if p/a != b {
		if (a > 0) == (b > 0) {
			return posInf
		}
		return negInf
	}
	return satVal(p)
}

func addI(a, b interval) interval { return interval{satAdd(a.lo, b.lo), satAdd(a.hi, b.hi)} }
func subI(a, b interval) interval { return interval{satSub(a.lo, b.hi), satSub(a.hi, b.lo)} }

func mulI(a, b interval) interval {
	c := []int64{satMul(a.lo, b.lo), satMul(a.lo, b.hi), satMul(a.hi, b.lo), satMul(a.hi, b.hi)}
	out := interval{c[0], c[0]}
	for _, x := range c[1:] {
		out.lo, out.hi = min(out.lo, x), max(out.hi, x)
	}
	return out
}

// binopInterval evaluates one arithmetic/logic operator over intervals.
// Operators it cannot bound return topInterval; callers clamp to the
// expression's type range.
func binopInterval(op token.Token, a, b interval) interval {
	if a.empty() || b.empty() {
		return bottomInterval
	}
	switch op {
	case token.ADD:
		return addI(a, b)
	case token.SUB:
		return subI(a, b)
	case token.MUL:
		return mulI(a, b)
	case token.QUO:
		if b.lo >= 1 {
			// Truncation toward zero keeps the result between the
			// operand and zero.
			return interval{min(a.lo, 0), max(a.hi, 0)}
		}
	case token.REM:
		if b.lo >= 1 {
			hi := satSub(b.hi, 1)
			if a.lo >= 0 {
				return interval{0, min(hi, max(a.hi, 0))}
			}
			return interval{satNeg(hi), hi}
		}
	case token.AND:
		if a.lo >= 0 && b.lo >= 0 {
			return interval{0, min(a.hi, b.hi)}
		}
		if a.lo >= 0 {
			return interval{0, a.hi}
		}
		if b.lo >= 0 {
			return interval{0, b.hi}
		}
	case token.AND_NOT:
		if a.lo >= 0 {
			return interval{0, a.hi}
		}
	case token.OR, token.XOR:
		if a.lo >= 0 && b.lo >= 0 {
			return interval{0, pow2Ceil(max(a.hi, b.hi))}
		}
	case token.SHL:
		if a.lo >= 0 && b.lo >= 0 {
			return interval{satShl(a.lo, b.lo), satShl(a.hi, b.hi)}
		}
	case token.SHR:
		if a.lo >= 0 && b.lo >= 0 {
			lo := int64(0)
			if !isInf(a.lo) && !isInf(b.hi) && b.hi < 63 {
				lo = a.lo >> uint(b.hi)
			}
			hi := a.hi
			if !isInf(a.hi) && !isInf(b.lo) && b.lo < 63 {
				hi = a.hi >> uint(b.lo)
			}
			return interval{lo, hi}
		}
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ, token.LAND, token.LOR:
		return interval{0, 1}
	}
	return topInterval
}

// pow2Ceil returns 2^ceil(log2(x+1))-1: the smallest all-ones bound
// covering every bit pattern up to x.
func pow2Ceil(x int64) int64 {
	if x <= 0 {
		return 0
	}
	if isInf(x) || x >= satLimit {
		return posInf
	}
	p := int64(1)
	for p-1 < x {
		p <<= 1
	}
	return p - 1
}

func satShl(a, shift int64) int64 {
	if a == 0 {
		return 0
	}
	if isInf(a) || isInf(shift) || shift >= 62 {
		return posInf
	}
	return satVal(a << uint(shift))
}

// typeInterval is the value range implied by a type alone. int and
// int64 map to the full interval (our ±inf endpoints coincide with
// their true range, so no finite claim is lost).
func typeInterval(t types.Type) interval {
	if t == nil {
		return topInterval
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return topInterval
	}
	switch b.Kind() {
	case types.Bool, types.UntypedBool:
		return interval{0, 1}
	case types.Int8:
		return interval{math.MinInt8, math.MaxInt8}
	case types.Int16:
		return interval{math.MinInt16, math.MaxInt16}
	case types.Int32:
		return interval{math.MinInt32, math.MaxInt32}
	case types.Uint8:
		return interval{0, math.MaxUint8}
	case types.Uint16:
		return interval{0, math.MaxUint16}
	case types.Uint32:
		return interval{0, math.MaxUint32}
	case types.Uint, types.Uint64, types.Uintptr:
		// Values above 2^62 conflate with +inf; only the lower bound is
		// a finite claim, which is the sound direction.
		return interval{0, posInf}
	}
	return topInterval
}

func zeroInterval(t types.Type) interval {
	if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&(types.IsNumeric|types.IsBoolean) != 0 {
		return interval{0, 0}
	}
	return topInterval
}

// clampOrType intersects a computed interval with the type's range; a
// result that left the range means the operation may have wrapped, so
// the whole type range is all that can be claimed.
func clampOrType(r interval, t types.Type) interval {
	tr := typeInterval(t)
	if r.empty() {
		return r
	}
	if r.lo < tr.lo || r.hi > tr.hi {
		return tr
	}
	return r
}

// vrangeFunc is the computed value-range view of one function.
type vrangeFunc struct {
	prog *Program
	fn   *ssaFunc
	node *CGNode   // nil when the function is not in the call graph
	env  *taintEnv // mask oracle; nil when node is nil
	iv   []interval

	loopMemo map[int]map[int]bool // natural loop cache, per head
	heads    []int                // blocks with an incoming back edge
}

// ssaOf returns (building and caching on first use) the SSA view of a
// declared function.
func (p *Program) ssaOf(pkg *Package, decl *ast.FuncDecl) *ssaFunc {
	p.ssaMu.Lock()
	defer p.ssaMu.Unlock()
	if p.ssaMemo == nil {
		p.ssaMemo = make(map[*ast.FuncDecl]*ssaFunc)
	}
	if f, ok := p.ssaMemo[decl]; ok {
		return f
	}
	f := buildSSA(pkg, decl)
	p.ssaMemo[decl] = f
	return f
}

// valueRange returns (building and caching on first use) the
// value-range view of a declared function.
func (p *Program) valueRange(pkg *Package, decl *ast.FuncDecl) *vrangeFunc {
	p.ssaMu.Lock()
	if p.vrMemo == nil {
		p.vrMemo = make(map[*ast.FuncDecl]*vrangeFunc)
	}
	if v, ok := p.vrMemo[decl]; ok {
		p.ssaMu.Unlock()
		return v
	}
	p.ssaMu.Unlock()

	v := &vrangeFunc{prog: p, fn: p.ssaOf(pkg, decl)}
	if fn, ok := pkg.Info.Defs[decl.Name].(*types.Func); ok {
		if node := p.CallGraph().NodeOf(fn); node != nil {
			v.node = node
			v.env = p.taintSummaries().maskEnv(node)
		}
	}
	v.compute()
	v.findHeads()

	p.ssaMu.Lock()
	p.vrMemo[decl] = v
	p.ssaMu.Unlock()
	return v
}

// maskOf reports the origin mask of an expression (secret bit, opaque
// bit, parameter bits), or opaque when no taint environment exists.
func (v *vrangeFunc) maskOf(e ast.Expr) originMask {
	if v.env == nil {
		return opaqueOrigin
	}
	return v.env.exprMask(e)
}

// compute runs the interval fixpoint. Joins are monotone (new results
// are joined with the old) and phis widen after a few rounds, so the
// iteration terminates; every cycle in the SSA value graph passes
// through a phi.
func (v *vrangeFunc) compute() {
	const widenRound = 8
	v.iv = make([]interval, len(v.fn.vals))
	for i := range v.iv {
		v.iv[i] = bottomInterval
	}
	for round := 0; round < 64; round++ {
		changed := false
		for _, val := range v.fn.vals {
			nv := v.evalValue(val)
			old := v.iv[val.id]
			nv = joinInterval(old, nv)
			if nv != old {
				if round >= widenRound && val.kind == ssaPhi {
					if nv.lo < old.lo {
						nv.lo = negInf
					}
					if nv.hi > old.hi {
						nv.hi = posInf
					}
					nv = clampOrType(nv, val.obj.Type())
					nv = joinInterval(old, nv)
				}
				if nv != old {
					v.iv[val.id] = nv
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
}

func (v *vrangeFunc) evalValue(val *ssaValue) interval {
	var r interval
	switch val.kind {
	case ssaParam, ssaOpaque, ssaRangeVal:
		r = typeInterval(val.obj.Type())
	case ssaZero:
		r = zeroInterval(val.obj.Type())
	case ssaExpr:
		if val.nres > 1 {
			r = typeInterval(val.obj.Type())
		} else {
			r = v.evalExpr(val.expr)
		}
	case ssaStep:
		prev := topInterval
		if val.operand >= 0 {
			prev = v.iv[val.operand]
		}
		rhs := interval{1, 1}
		if val.expr != nil {
			rhs = v.evalExpr(val.expr)
		}
		r = binopInterval(val.op, prev, rhs)
	case ssaPhi:
		// Bottom args are not-yet-computed rounds of the fixpoint, not
		// unknowns: joining them keeps the phi empty until an argument
		// lands a value. Only a missing def (-1) is a true unknown.
		r = bottomInterval
		for _, a := range val.phiArgs {
			if a >= 0 {
				r = joinInterval(r, v.iv[a])
			} else {
				r = joinInterval(r, typeInterval(val.obj.Type()))
			}
		}
	case ssaRangeKey:
		r = v.rangeKeyInterval(val.expr)
	}
	return clampOrType(r, val.obj.Type())
}

// rangeKeyInterval bounds the key binding of a range loop by its
// container: [0, N-1] over an array, [0, n-1] over an integer, [0,
// +inf] over slices and strings.
func (v *vrangeFunc) rangeKeyInterval(container ast.Expr) interval {
	t := typeOf(v.fn.info(), container)
	if t == nil {
		return topInterval
	}
	switch u := deref(t).(type) {
	case *types.Array:
		return interval{0, u.Len() - 1}
	case *types.Slice:
		return interval{0, posInf}
	case *types.Basic:
		if u.Info()&types.IsString != 0 {
			return interval{0, posInf}
		}
		if u.Info()&types.IsInteger != 0 {
			n := v.evalExpr(container)
			return interval{0, max(satSub(n.hi, 1), 0)}
		}
	case *types.Map:
		return typeInterval(u.Key())
	}
	return topInterval
}

// evalExpr computes the interval of an expression at its use point,
// resolving identifier reads through the SSA view.
func (v *vrangeFunc) evalExpr(e ast.Expr) interval {
	info := v.fn.info()
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		if c, ok := exactInt64(tv.Value); ok {
			return interval{satVal(c), satVal(c)}
		}
		return typeInterval(tv.Type)
	}
	switch x := e.(type) {
	case *ast.ParenExpr:
		return v.evalExpr(x.X)
	case *ast.Ident:
		if id, ok := v.fn.useOf[x]; ok {
			return v.iv[id]
		}
	case *ast.BinaryExpr:
		r := binopInterval(x.Op, v.evalExpr(x.X), v.evalExpr(x.Y))
		return clampOrType(r, typeOf(info, e))
	case *ast.UnaryExpr:
		switch x.Op {
		case token.SUB:
			r := v.evalExpr(x.X)
			return clampOrType(interval{satNeg(r.hi), satNeg(r.lo)}, typeOf(info, e))
		case token.ADD:
			return v.evalExpr(x.X)
		case token.NOT:
			return interval{0, 1}
		}
	case *ast.CallExpr:
		return v.evalCall(x)
	}
	return typeInterval(typeOf(info, e))
}

func (v *vrangeFunc) evalCall(call *ast.CallExpr) interval {
	info := v.fn.info()
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap":
				if len(call.Args) == 1 {
					if arr, ok := deref(typeOf(info, call.Args[0])).(*types.Array); ok {
						return interval{arr.Len(), arr.Len()}
					}
				}
				return interval{0, posInf}
			case "min", "max":
				if len(call.Args) == 0 {
					break
				}
				r := v.evalExpr(call.Args[0])
				for _, a := range call.Args[1:] {
					ai := v.evalExpr(a)
					if b.Name() == "min" {
						r = interval{min(r.lo, ai.lo), min(r.hi, ai.hi)}
					} else {
						r = interval{max(r.lo, ai.lo), max(r.hi, ai.hi)}
					}
				}
				return r
			}
		}
	}
	// Conversion T(x): the result stays in T's range; when the operand
	// provably fits, no wrap occurs and the operand's range carries over.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		tr := typeInterval(tv.Type)
		r := v.evalExpr(call.Args[0])
		if !r.empty() && r.lo >= tr.lo && r.hi <= tr.hi {
			return r
		}
		return tr
	}
	return typeInterval(typeOf(info, call))
}

func exactInt64(val constant.Value) (int64, bool) {
	return constant.Int64Val(constant.ToInt(val))
}

func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// --- Relational facts -------------------------------------------------

// vterm is one node of the difference-constraint graph: the constant
// anchor (vid -1), an SSA value, its len(), or a field path rooted at
// an SSA value through non-pointer structs.
type vterm struct {
	vid  int
	len  bool
	path string
}

var zTerm = vterm{vid: -1}

// vfact is one difference constraint: a ≤ b + w.
type vfact struct {
	a, b vterm
	w    int64
}

// guardFact is an in-node guard: inside the right operand of && the
// left operand is known true (false for ||).
type guardFact struct {
	cond  ast.Expr
	sense bool
}

// findHeads records every loop head (block with an incoming back edge).
func (v *vrangeFunc) findHeads() {
	for _, b := range v.fn.cfg.blocks {
		if !v.fn.reach[b.index] {
			continue
		}
		for _, p := range v.fn.preds[b.index] {
			if v.fn.dominates(b.index, p) {
				v.heads = append(v.heads, b.index)
				break
			}
		}
	}
}

func (v *vrangeFunc) loopOf(head int) map[int]bool {
	if v.loopMemo == nil {
		v.loopMemo = make(map[int]map[int]bool)
	}
	if l, ok := v.loopMemo[head]; ok {
		return l
	}
	l := v.fn.loopBlocks(head)
	v.loopMemo[head] = l
	return l
}

// factValidAt reports whether a fact recorded in block factBlk may be
// used in block useBlk: for every loop containing useBlk that also
// contains the definition of a value the fact names, the fact site must
// be inside that loop as well (see the soundness note at the top of the
// file).
func (v *vrangeFunc) factValidAt(f vfact, factBlk, useBlk int) bool {
	for _, t := range []vterm{f.a, f.b} {
		if t.vid < 0 {
			continue
		}
		def := v.fn.vals[t.vid].block
		for _, h := range v.heads {
			l := v.loopOf(h)
			if l[useBlk] && l[def] && !l[factBlk] {
				return false
			}
		}
	}
	return true
}

// factsAt harvests the difference constraints that hold before node
// nodeIdx of block blk: facts from earlier nodes of the block, from
// every dominator block's nodes, from the branch edges between
// consecutive dominators (valid when the chain block is the
// single-predecessor successor of its immediate dominator), from range
// bindings, and from the caller-supplied short-circuit guards.
func (v *vrangeFunc) factsAt(blk, nodeIdx int, guards []guardFact) []vfact {
	var facts []vfact
	cur := blk
	add := func(factBlk int) func(vfact) {
		return func(f vfact) {
			if v.factValidAt(f, factBlk, blk) {
				facts = append(facts, f)
			}
		}
	}
	seen := make(map[int]bool)
	first := true
	for {
		if seen[cur] {
			break
		}
		seen[cur] = true
		b := v.fn.cfg.blocks[cur]
		limit := len(b.nodes)
		if first {
			limit = min(limit, nodeIdx)
		}
		for i := 0; i < limit; i++ {
			v.nodeFacts(b.nodes[i], add(cur))
		}
		if b.rangeLoop != nil {
			v.rangeFacts(b, add(cur))
		}
		if cur == v.fn.idom[cur] || v.fn.idom[cur] < 0 {
			break
		}
		d := v.fn.idom[cur]
		dblk := v.fn.cfg.blocks[d]
		if len(v.fn.preds[cur]) == 1 && v.fn.preds[cur][0] == d && dblk.branchCond != nil {
			if dblk.branchTrue != nil && dblk.branchTrue.index == cur {
				v.condFacts(dblk.branchCond, true, add(d))
			} else if dblk.branchFalse != nil && dblk.branchFalse.index == cur {
				v.condFacts(dblk.branchCond, false, add(d))
			}
		}
		first = false
		cur = d
	}
	for _, g := range guards {
		v.condFacts(g.cond, g.sense, add(blk))
	}
	return facts
}

// nodeFacts extracts index-success and slice-success facts from one
// executed node: s[i] completing implies 0 ≤ i ≤ len(s)-1, s[a:b]
// implies a ≤ b ≤ len(s). Function literals and the right operands of
// short-circuit operators (which may not have executed) are skipped.
func (v *vrangeFunc) nodeFacts(n ast.Node, add func(vfact)) {
	info := v.fn.info()
	var walk func(ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				return false
			case *ast.BinaryExpr:
				if x.Op == token.LAND || x.Op == token.LOR {
					walk(x.X)
					return false
				}
			case *ast.IndexExpr:
				if tv, ok := info.Types[x.Index]; ok && tv.IsType() {
					return true
				}
				ct, it, ok := v.indexTerms(x)
				if !ok {
					return true
				}
				// 0 ≤ i and i ≤ len(s) - 1.
				add(vfact{a: zTerm, b: it.t, w: it.off})
				add(vfact{a: it.t, b: ct, w: -1 - it.off})
			case *ast.SliceExpr:
				v.sliceFacts(x, add)
			}
			return true
		})
	}
	walk(n)
}

// offTerm is a canonicalized expression: term + offset.
type offTerm struct {
	t   vterm
	off int64
}

// indexTerms canonicalizes the container and index of a slice/string
// indexing; arrays are handled separately by the boundscheck pass
// (their bound comes from the type, not from a term).
func (v *vrangeFunc) indexTerms(x *ast.IndexExpr) (vterm, offTerm, bool) {
	info := v.fn.info()
	switch deref(typeOf(info, x.X)).(type) {
	case *types.Slice:
	case *types.Basic: // string indexing
		if b, ok := deref(typeOf(info, x.X)).(*types.Basic); !ok || b.Info()&types.IsString == 0 {
			return vterm{}, offTerm{}, false
		}
	default:
		return vterm{}, offTerm{}, false
	}
	ct, coff, ok := v.canon(x.X, 0)
	if !ok || coff != 0 || ct.len || ct.vid < 0 {
		return vterm{}, offTerm{}, false
	}
	it, ioff, ok := v.canon(x.Index, 0)
	if !ok {
		return vterm{}, offTerm{}, false
	}
	return vterm{vid: ct.vid, len: true, path: ct.path}, offTerm{it, ioff}, true
}

func (v *vrangeFunc) sliceFacts(x *ast.SliceExpr, add func(vfact)) {
	info := v.fn.info()
	if _, ok := deref(typeOf(info, x.X)).(*types.Slice); !ok {
		return
	}
	ct, coff, ok := v.canon(x.X, 0)
	if !ok || coff != 0 || ct.len || ct.vid < 0 {
		return
	}
	lenT := vterm{vid: ct.vid, len: true, path: ct.path}
	bound := func(e ast.Expr) (offTerm, bool) {
		if e == nil {
			return offTerm{}, false
		}
		t, off, ok := v.canon(e, 0)
		return offTerm{t, off}, ok
	}
	if hi, ok := bound(x.High); ok {
		add(vfact{a: hi.t, b: lenT, w: -hi.off}) // hi ≤ len(s)
		if lo, ok := bound(x.Low); ok {
			add(vfact{a: lo.t, b: hi.t, w: hi.off - lo.off}) // lo ≤ hi
		}
	}
	if lo, ok := bound(x.Low); ok {
		add(vfact{a: zTerm, b: lo.t, w: lo.off}) // 0 ≤ lo
		add(vfact{a: lo.t, b: lenT, w: -lo.off}) // lo ≤ len(s)
	}
}

// rangeFacts adds the bounds of a range key binding: over a slice,
// array or string the key stays below the container's length; over an
// integer n it stays below n.
func (v *vrangeFunc) rangeFacts(head *cfgBlock, add func(vfact)) {
	kid, ok := v.fn.rangeKey[head.index]
	if !ok {
		return
	}
	x := head.rangeLoop.X
	keyT := vterm{vid: kid}
	add(vfact{a: zTerm, b: keyT, w: 0}) // 0 ≤ key
	info := v.fn.info()
	switch u := deref(typeOf(info, x)).(type) {
	case *types.Slice:
		if ct, coff, ok := v.canon(x, 0); ok && coff == 0 && !ct.len && ct.vid >= 0 {
			add(vfact{a: keyT, b: vterm{vid: ct.vid, len: true, path: ct.path}, w: -1})
		}
	case *types.Array:
		add(vfact{a: keyT, b: zTerm, w: u.Len() - 1})
	case *types.Basic:
		if u.Info()&types.IsInteger != 0 {
			if nt, noff, ok := v.canon(x, 0); ok {
				add(vfact{a: keyT, b: nt, w: noff - 1}) // key ≤ n-1
			}
		}
	}
}

// condFacts decomposes a comparison (under the given truth sense) into
// difference constraints. Only integer comparisons contribute.
func (v *vrangeFunc) condFacts(cond ast.Expr, sense bool, add func(vfact)) {
	cond = ast.Unparen(cond)
	switch x := cond.(type) {
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			v.condFacts(x.X, !sense, add)
		}
		return
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			if sense {
				v.condFacts(x.X, true, add)
				v.condFacts(x.Y, true, add)
			}
			return
		case token.LOR:
			if !sense {
				v.condFacts(x.X, false, add)
				v.condFacts(x.Y, false, add)
			}
			return
		}
		// Only integer-typed comparisons produce magnitude facts.
		info := v.fn.info()
		if !isIntegerType(typeOf(info, x.X)) || !isIntegerType(typeOf(info, x.Y)) {
			return
		}
		at, aoff, ok := v.canon(x.X, 0)
		if !ok {
			return
		}
		bt, boff, ok := v.canon(x.Y, 0)
		if !ok {
			return
		}
		// a+aoff OP b+boff, i.e. at OP bt + (boff-aoff).
		d := boff - aoff
		le := func(p vterm, q vterm, w int64) { add(vfact{a: p, b: q, w: w}) }
		op := x.Op
		if !sense {
			switch op {
			case token.LSS:
				op = token.GEQ
			case token.LEQ:
				op = token.GTR
			case token.GTR:
				op = token.LEQ
			case token.GEQ:
				op = token.LSS
			case token.EQL:
				return // != carries no magnitude fact
			case token.NEQ:
				op = token.EQL
			default:
				return
			}
		}
		switch op {
		case token.LSS: // at < bt + d
			le(at, bt, d-1)
		case token.LEQ:
			le(at, bt, d)
		case token.GTR: // at > bt + d  ⇒  bt ≤ at - d - 1
			le(bt, at, -d-1)
		case token.GEQ:
			le(bt, at, -d)
		case token.EQL:
			le(at, bt, d)
			le(bt, at, -d)
		}
	}
}

func isIntegerType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// canon reduces an expression (at a use point whose identifiers are
// SSA-resolved) to term + offset, following single-definition chains:
// n := len(s) canonicalizes to len(s's version), i++ chains fold into
// offsets, and value-struct field paths become path terms.
func (v *vrangeFunc) canon(e ast.Expr, depth int) (vterm, int64, bool) {
	if depth > 8 {
		return vterm{}, 0, false
	}
	e = ast.Unparen(e)
	info := v.fn.info()
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		if c, ok := exactInt64(tv.Value); ok && c > -satLimit && c < satLimit {
			return zTerm, c, true
		}
		return vterm{}, 0, false
	}
	switch x := e.(type) {
	case *ast.Ident:
		id, ok := v.fn.useOf[x]
		if !ok {
			return vterm{}, 0, false
		}
		return v.canonVal(id, depth)
	case *ast.BinaryExpr:
		if x.Op == token.ADD || x.Op == token.SUB {
			if c, ok := v.constOf(x.Y); ok {
				if t, off, ok2 := v.canon(x.X, depth+1); ok2 {
					if x.Op == token.SUB {
						c = -c
					}
					return t, off + c, true
				}
			}
			if x.Op == token.ADD {
				if c, ok := v.constOf(x.X); ok {
					if t, off, ok2 := v.canon(x.Y, depth+1); ok2 {
						return t, off + c, true
					}
				}
			}
		}
	case *ast.CallExpr:
		if isBuiltinCall(info, x, "len") && len(x.Args) == 1 {
			if t, off, ok := v.canon(x.Args[0], depth+1); ok && off == 0 && !t.len && t.vid >= 0 {
				return vterm{vid: t.vid, len: true, path: t.path}, 0, true
			}
		}
	case *ast.SelectorExpr:
		return v.canonPath(x)
	}
	return vterm{}, 0, false
}

// canonVal canonicalizes through an SSA value's definition; every value
// is at worst its own term.
func (v *vrangeFunc) canonVal(id, depth int) (vterm, int64, bool) {
	val := v.fn.vals[id]
	switch val.kind {
	case ssaExpr:
		if val.nres == 1 && depth <= 8 {
			if t, off, ok := v.canon(val.expr, depth+1); ok {
				return t, off, true
			}
		}
	case ssaStep:
		if (val.op == token.ADD || val.op == token.SUB) && val.operand >= 0 && depth <= 8 {
			c, ok := int64(1), true
			if val.expr != nil {
				c, ok = v.constOf(val.expr)
			}
			if ok {
				if t, off, ok2 := v.canonVal(val.operand, depth+1); ok2 {
					if val.op == token.SUB {
						c = -c
					}
					return t, off + c, true
				}
			}
		}
	}
	return vterm{vid: id}, 0, true
}

// canonPath canonicalizes a field chain a.b.c rooted at a tracked local
// of value-struct type with no field stores: with no pointers anywhere
// in the chain there is no aliasing, so the path is as immutable as the
// root's SSA version.
func (v *vrangeFunc) canonPath(sel *ast.SelectorExpr) (vterm, int64, bool) {
	info := v.fn.info()
	var names []string
	e := ast.Expr(sel)
	for {
		s, ok := e.(*ast.SelectorExpr)
		if !ok {
			break
		}
		ss, ok := info.Selections[s]
		if !ok || ss.Kind() != types.FieldVal {
			return vterm{}, 0, false
		}
		if _, ok := typeOf(info, s.X).Underlying().(*types.Struct); !ok {
			return vterm{}, 0, false
		}
		names = append([]string{s.Sel.Name}, names...)
		e = ast.Unparen(s.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return vterm{}, 0, false
	}
	vid, ok := v.fn.useOf[id]
	if !ok {
		return vterm{}, 0, false
	}
	if obj := info.Uses[id]; obj == nil || v.fn.written[obj] {
		return vterm{}, 0, false
	}
	return vterm{vid: vid, path: strings.Join(names, ".")}, 0, true
}

func (v *vrangeFunc) constOf(e ast.Expr) (int64, bool) {
	if tv, ok := v.fn.info().Types[e]; ok && tv.Value != nil {
		if c, ok := exactInt64(tv.Value); ok && c > -satLimit && c < satLimit {
			return c, true
		}
	}
	return 0, false
}

// prove decides a + aoff ≤ b + boff + w from the facts plus the
// intervals and length equalities of every involved term, by
// Bellman–Ford over the difference-constraint graph.
func (v *vrangeFunc) prove(facts []vfact, a vterm, aoff int64, b vterm, boff int64, w int64) bool {
	type edge struct {
		from, to vterm
		w        int64
	}
	var edges []edge
	nodes := make(map[vterm]bool)
	var queue []vterm
	visit := func(t vterm) {
		if !nodes[t] {
			nodes[t] = true
			queue = append(queue, t)
		}
	}
	addFact := func(f vfact) {
		edges = append(edges, edge{from: f.b, to: f.a, w: f.w})
		visit(f.a)
		visit(f.b)
	}
	for _, f := range facts {
		addFact(f)
	}
	visit(a)
	visit(b)
	visit(zTerm)

	for len(queue) > 0 {
		t := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if t.vid < 0 {
			continue
		}
		if t.len {
			addFact(vfact{a: zTerm, b: t, w: 0}) // len ≥ 0
			for _, f := range v.lenEqualities(t) {
				addFact(f)
			}
			continue
		}
		if t.path != "" {
			continue
		}
		iv := v.iv[t.vid]
		if iv.empty() {
			continue
		}
		if iv.hi != posInf {
			addFact(vfact{a: t, b: zTerm, w: iv.hi})
		}
		if iv.lo != negInf {
			addFact(vfact{a: zTerm, b: t, w: -iv.lo})
		}
	}

	// Bellman–Ford from b; dist[a] ≤ w + boff - aoff proves the claim.
	need := satAdd(w, satSub(boff, aoff))
	dist := make(map[vterm]int64, len(nodes))
	//proram:allow maporder every entry is initialized to the same value
	for t := range nodes {
		dist[t] = posInf
	}
	dist[b] = 0
	for i := 0; i <= len(nodes); i++ {
		changed := false
		for _, e := range edges {
			if dist[e.from] == posInf {
				continue
			}
			if nd := satAdd(dist[e.from], e.w); nd < dist[e.to] {
				dist[e.to] = nd
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist[a] != posInf && dist[a] <= need
}

// lenEqualities derives equalities for a len term from the container's
// definition: arrays have a constant length, make([]T, n) has length n,
// an unkeyed composite literal has its element count, s[lo:hi] has
// hi-lo when lo is constant.
func (v *vrangeFunc) lenEqualities(t vterm) []vfact {
	if t.path != "" {
		return nil
	}
	val := v.fn.vals[t.vid]
	var out []vfact
	eq := func(b vterm, w int64) {
		out = append(out, vfact{a: t, b: b, w: w}, vfact{a: b, b: t, w: -w})
	}
	if arr, ok := deref(val.obj.Type()).(*types.Array); ok {
		eq(zTerm, arr.Len())
		return out
	}
	if val.kind != ssaExpr || val.nres != 1 {
		return out
	}
	switch e := ast.Unparen(val.expr).(type) {
	case *ast.CallExpr:
		if isBuiltinCall(v.fn.info(), e, "make") && len(e.Args) >= 2 {
			if nt, noff, ok := v.canon(e.Args[1], 0); ok {
				eq(nt, noff)
			}
		}
	case *ast.CompositeLit:
		if _, ok := deref(typeOf(v.fn.info(), e)).(*types.Slice); ok {
			keyed := false
			for _, el := range e.Elts {
				if _, ok := el.(*ast.KeyValueExpr); ok {
					keyed = true
					break
				}
			}
			if !keyed {
				eq(zTerm, int64(len(e.Elts)))
			}
		}
	case *ast.SliceExpr:
		if e.Slice3 {
			break
		}
		lo := int64(0)
		if e.Low != nil {
			c, ok := v.constOf(e.Low)
			if !ok {
				break
			}
			lo = c
		}
		if e.High != nil {
			if ht, hoff, ok := v.canon(e.High, 0); ok {
				eq(ht, hoff-lo)
			}
		} else if ct, coff, ok := v.canon(e.X, 0); ok && coff == 0 && !ct.len && ct.vid >= 0 {
			eq(vterm{vid: ct.vid, len: true, path: ct.path}, -lo)
		}
	}
	return out
}
