package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// This file computes per-function held-lock summaries: which sync
// primitives each function acquires (and with what already held), which
// module-local calls it makes under a lock, and whether any CFG path
// leaves its lock set imbalanced. The lockorder pass turns the
// summaries into a module-wide acquisition graph and deadlock findings;
// the goroutinediscipline pass uses the per-statement held sets to
// decide whether two goroutine contexts touch a shared variable under a
// common lock.
//
// The abstraction is a held multiset of lock identities (see
// lockIdentity), propagated through the existing funcCFG in a forward
// fixpoint. Acquires append, releases remove the most recent matching
// entry, a deferred unlock cancels at every exit, and TryLock is
// ignored entirely (its effect is conditional on a value this analysis
// does not track). Function literals are analyzed as independent bodies
// with an empty entry set — a literal runs at an unknown time, usually
// on another goroutine, so inheriting the enclosing held set would be
// wrong in exactly the cases that matter.

// lockAcquire is one Lock/RLock site with the set already held there.
type lockAcquire struct {
	id         string // base identity; read acquisitions carry "(R)"
	base       string // identity without the read marker
	read       bool
	pos        token.Pos
	heldBefore []string
}

// heldCall is one resolved module-local call made with locks held.
type heldCall struct {
	callee *CGNode
	pos    token.Pos
	held   []string
}

// lockFinding is one imbalance/misuse diagnostic, attributed to the
// package that owns the position.
type lockFinding struct {
	pkg *Package
	pos token.Pos
	msg string
}

// bodyLocks is the result of analyzing one body (declared function or
// function literal).
type bodyLocks struct {
	acquires []lockAcquire
	calls    []heldCall
	findings []lockFinding

	// heldAt maps every CFG node (statement or condition) to the lock
	// set held when it begins executing, sorted. Nodes on unreachable
	// blocks are absent.
	heldAt map[ast.Node][]string
}

// lockSummary is bodyLocks for a declared function plus the transitive
// closure over its resolved callees.
type lockSummary struct {
	node *CGNode
	bodyLocks

	// transitive is every lock identity acquired by this function or
	// anything it (transitively) calls, with one representative
	// acquisition position.
	transitive map[string]token.Pos
}

type lockSummaries struct {
	byFunc map[*CGNode]*lockSummary
}

// lockSummaries builds (once) the held-lock summary of every declared
// function, then closes the acquired-lock sets bottom-up over the call
// graph (iterating within each SCC until stable, so recursion
// converges).
func (p *Program) lockSummaries() *lockSummaries {
	p.lockOnce.Do(func() {
		cg := p.CallGraph()
		ls := &lockSummaries{byFunc: make(map[*CGNode]*lockSummary, len(cg.Nodes))}
		for _, n := range cg.Nodes {
			ls.byFunc[n] = &lockSummary{
				node:       n,
				bodyLocks:  analyzeBodyLocks(p, n.Pkg, n.Decl.Body),
				transitive: make(map[string]token.Pos),
			}
		}
		for _, comp := range cg.SCCs {
			for changed := true; changed; {
				changed = false
				for _, n := range comp {
					sum := ls.byFunc[n]
					for _, a := range sum.acquires {
						if _, ok := sum.transitive[a.base]; !ok {
							sum.transitive[a.base] = a.pos
							changed = true
						}
					}
					for _, e := range n.Callees {
						cs := ls.byFunc[e.Callee]
						if cs == nil {
							continue
						}
						//proram:allow maporder first-wins insertion per distinct key; the inserted value is a function of the key
						for id, pos := range cs.transitive {
							if _, ok := sum.transitive[id]; !ok {
								sum.transitive[id] = pos
								changed = true
							}
						}
					}
				}
			}
		}
		p.locks = ls
	})
	return p.locks
}

// lockState is the per-block abstract state: the held multiset in
// acquisition order.
type lockState []string

func (s lockState) clone() lockState { return append(lockState(nil), s...) }

func (s lockState) equal(o lockState) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

func heldSorted(s lockState) []string {
	out := append([]string(nil), s...)
	sort.Strings(out)
	return out
}

func renderHeld(s []string) string {
	if len(s) == 0 {
		return "nothing"
	}
	return "{" + strings.Join(s, ", ") + "}"
}

// analyzeBodyLocks runs the held-lock fixpoint over one body.
func analyzeBodyLocks(prog *Program, pkg *Package, body *ast.BlockStmt) bodyLocks {
	la := &lockAnalyzer{
		prog: prog,
		pkg:  pkg,
		out: bodyLocks{
			heldAt: make(map[ast.Node][]string),
		},
		in: make(map[*cfgBlock]lockState),
	}
	g := buildCFG(pkg.Info, body)
	la.collectDefers(body)
	la.run(g)
	return la.out
}

type lockAnalyzer struct {
	prog *Program
	pkg  *Package
	out  bodyLocks

	in       map[*cfgBlock]lockState
	deferred []string // identities released by deferred unlocks
	seen     map[string]bool
}

func (la *lockAnalyzer) finding(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%d\x00%s", pos, msg)
	if la.seen == nil {
		la.seen = make(map[string]bool)
	}
	if la.seen[key] {
		return
	}
	la.seen[key] = true
	la.out.findings = append(la.out.findings, lockFinding{pkg: la.pkg, pos: pos, msg: msg})
}

// collectDefers gathers deferred unlock identities from the body
// (skipping nested function literals — their defers run at the
// literal's exit, not ours).
func (la *lockAnalyzer) collectDefers(body *ast.BlockStmt) {
	ast.Inspect(body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		d, ok := x.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if op, ok := classifySyncOp(la.pkg.Info, d.Call); ok {
			switch op.method {
			case "Unlock", "RUnlock":
				id := lockIdentity(la.prog, la.pkg, op.recv)
				if op.method == "RUnlock" {
					id += "(R)"
				}
				la.deferred = append(la.deferred, id)
			}
		}
		return false
	})
}

// run is the forward worklist fixpoint. The first in-state to reach a
// block wins; a later, different in-state is an imbalance finding (the
// held set depends on the path taken) and is not re-propagated, which
// keeps termination trivial.
func (la *lockAnalyzer) run(g *funcCFG) {
	la.in[g.entry] = lockState{}
	work := []*cfgBlock{g.entry}
	visited := make(map[*cfgBlock]bool)
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		if visited[b] {
			continue
		}
		visited[b] = true
		st := la.in[b].clone()
		for _, n := range b.nodes {
			la.out.heldAt[n] = heldSorted(st)
			st = la.transfer(st, n)
		}
		if len(b.succs) == 0 {
			la.checkExit(b, st)
			continue
		}
		for _, s := range b.succs {
			if prev, ok := la.in[s]; ok {
				if !prev.equal(st) && len(s.nodes) > 0 {
					la.finding(s.nodes[0].Pos(),
						"lock set depends on the path taken: one path reaches this point holding %s, another holding %s",
						renderHeld(heldSorted(prev)), renderHeld(heldSorted(st)))
				}
				if !visited[s] {
					work = append(work, s)
				}
				continue
			}
			la.in[s] = st.clone()
			work = append(work, s)
		}
	}
}

// checkExit flags locks still held at a normal exit after deferred
// unlocks cancel. Panic-terminated blocks are failure paths and exempt.
func (la *lockAnalyzer) checkExit(b *cfgBlock, st lockState) {
	if b.panics {
		return
	}
	left := st.clone()
	for _, id := range la.deferred {
		for i := len(left) - 1; i >= 0; i-- {
			if left[i] == id {
				left = append(left[:i], left[i+1:]...)
				break
			}
		}
	}
	if len(left) == 0 {
		return
	}
	pos := token.NoPos
	if len(b.nodes) > 0 {
		pos = b.nodes[len(b.nodes)-1].Pos()
	}
	if pos == token.NoPos {
		return
	}
	la.finding(pos, "path exits the function still holding %s (missing Unlock)", renderHeld(heldSorted(left)))
}

// transfer applies one CFG node to the held state: sync operations
// inside it (in source order), then held-call records for resolved
// module calls. Function literal bodies and go statements are skipped —
// neither runs under this goroutine's held set at this point.
func (la *lockAnalyzer) transfer(st lockState, node ast.Node) lockState {
	if _, ok := node.(*ast.DeferStmt); ok {
		return st // deferred effects apply at exit, via collectDefers
	}
	ast.Inspect(node, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			st = la.call(st, x)
		}
		return true
	})
	return st
}

func (la *lockAnalyzer) call(st lockState, call *ast.CallExpr) lockState {
	if op, ok := classifySyncOp(la.pkg.Info, call); ok {
		return la.syncCall(st, call, op)
	}
	if callee := la.prog.CallGraph().resolveCall(la.pkg, call); callee != nil && len(st) > 0 {
		la.out.calls = append(la.out.calls, heldCall{callee: callee, pos: call.Pos(), held: heldSorted(st)})
	}
	return st
}

func (la *lockAnalyzer) syncCall(st lockState, call *ast.CallExpr, op syncOp) lockState {
	switch op.typ {
	case "Mutex", "RWMutex":
	case "Cond":
		if op.method == "Wait" && len(st) == 0 {
			la.finding(call.Pos(), "sync.Cond.Wait with no lock held; Wait unlocks c.L, which must be held")
		}
		return st
	default:
		return st
	}
	base := lockIdentity(la.prog, la.pkg, op.recv)
	switch op.method {
	case "Lock", "RLock":
		id, read := base, false
		if op.method == "RLock" {
			id, read = base+"(R)", true
		}
		for _, h := range st {
			if h == base || (!read && h == base+"(R)") {
				la.finding(call.Pos(), "%s of %s while %s is already held on this path; sync mutexes are not reentrant (guaranteed self-deadlock)",
					op.method, base, h)
			}
		}
		la.out.acquires = append(la.out.acquires, lockAcquire{
			id: id, base: base, read: read, pos: call.Pos(), heldBefore: heldSorted(st),
		})
		return append(st, id)
	case "Unlock", "RUnlock":
		id := base
		if op.method == "RUnlock" {
			id = base + "(R)"
		}
		for i := len(st) - 1; i >= 0; i-- {
			if st[i] == id {
				return append(st[:i:i], st[i+1:]...)
			}
		}
		// Tolerate one matching deferred acquisition pattern: an unlock
		// of something never held on this path is the finding.
		la.finding(call.Pos(), "%s of %s which is not held on this path", op.method, base)
		return st
	}
	return st
}
