package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The module (plus every fixture under testdata/src) is loaded and
// type-checked once and shared by all tests: source-resolving the
// standard library is the expensive part and is identical for every
// pass.
var (
	loadOnce sync.Once
	loadProg *Program
	loadErr  error
)

func program(t *testing.T) *Program {
	t.Helper()
	loadOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			loadErr = err
			return
		}
		fixtures, err := filepath.Glob(filepath.Join(root, "internal", "analysis", "testdata", "src", "*"))
		if err != nil {
			loadErr = err
			return
		}
		loadProg, loadErr = Load(root, fixtures...)
	})
	if loadErr != nil {
		t.Fatal(loadErr)
	}
	return loadProg
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the test working directory")
		}
		dir = parent
	}
}

// expectation is one parsed want comment: the diagnostic the fixture
// demands at that file and line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantRx extracts `want` patterns from fixture source lines. The pattern
// is backquoted so it can contain double quotes from %q-formatted
// messages.
var wantRx = regexp.MustCompile("want `([^`]+)`")

func parseExpectations(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var out []*expectation
	entries, err := os.ReadDir(pkg.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(pkg.Dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRx.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, m[1], err)
				}
				out = append(out, &expectation{file: path, line: i + 1, re: re})
			}
		}
	}
	return out
}

// runFixture applies passes to the fixture package at rel and checks the
// produced diagnostics against the fixture's want comments, both ways:
// every diagnostic must be expected, every expectation must fire.
func runFixture(t *testing.T, passes []*Pass, rel string) {
	t.Helper()
	prog := program(t)
	pkg := prog.PackageAt(rel)
	if pkg == nil {
		t.Fatalf("fixture package %s not loaded", rel)
	}
	diags := NewRunner(prog).Run(passes, []*Package{pkg})
	wants := parseExpectations(t, pkg)

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

const fixtureBase = "internal/analysis/testdata/src/"

func TestDeterminismFixture(t *testing.T) {
	runFixture(t, []*Pass{Determinism()}, fixtureBase+"determinism")
}

func TestMapOrderFixture(t *testing.T) {
	runFixture(t, []*Pass{MapOrder()}, fixtureBase+"maporder")
}

func TestObliviousFixture(t *testing.T) {
	runFixture(t, []*Pass{Oblivious(fixtureBase + "oblivious")}, fixtureBase+"oblivious")
}

// TestObsFixture proves the taint pass catches secret-derived data
// flowing into the observability layer (metric labels, trace arguments)
// and leaves public and declassified emissions alone.
func TestObsFixture(t *testing.T) {
	runFixture(t, []*Pass{Oblivious(fixtureBase + "obs")}, fixtureBase+"obs")
}

// TestInterprocFixture exercises the call-graph taint summaries:
// secrets crossing return values, out-parameters and helper sinks —
// including around a recursion cycle — are flagged in the caller, and
// interprocedural sanitization (a helper returning len) stays quiet.
func TestInterprocFixture(t *testing.T) {
	runFixture(t, []*Pass{Oblivious(fixtureBase + "interproc")}, fixtureBase+"interproc")
}

// TestSecretIndexFixture exercises the secret-index sink: secret-derived
// slice/array/map indexes and slice bounds leak which addresses are
// touched even in straight-line code.
func TestSecretIndexFixture(t *testing.T) {
	runFixture(t, []*Pass{Oblivious(fixtureBase + "secretindex")}, fixtureBase+"secretindex")
}

// TestAllocDisciplineFixture exercises the //proram:hotpath allocation
// pass, including the interprocedural helper-chain reports and the
// doomed-path and justified-helper exemptions.
func TestAllocDisciplineFixture(t *testing.T) {
	runFixture(t, []*Pass{AllocDiscipline()}, fixtureBase+"allocdiscipline")
}

func TestPanicDisciplineFixture(t *testing.T) {
	runFixture(t, []*Pass{PanicDiscipline()}, fixtureBase+"panicdiscipline")
}

func TestSeedPlumbingFixture(t *testing.T) {
	runFixture(t, []*Pass{SeedPlumbing()}, fixtureBase+"seedplumbing")
}

// TestGoroutineFixture exercises the goroutine-discipline pass:
// captured-write races, loop self-races and call-spawn escapes, with
// the channel-join, WaitGroup and common-lock shapes staying quiet.
func TestGoroutineFixture(t *testing.T) {
	runFixture(t, []*Pass{GoroutineDiscipline()}, fixtureBase+"goroutine")
}

// TestLockOrderFixture exercises the lock-discipline pass: path
// imbalance, re-acquisition, bare Cond.Wait and AB/BA acquisition-order
// cycles, locally and through a helper call.
func TestLockOrderFixture(t *testing.T) {
	runFixture(t, []*Pass{LockOrder()}, fixtureBase+"lockorder")
}

// TestConcDeterminismFixture exercises the concurrent-determinism pass
// with the fixture's own round-driver root: scheduling-ordered shapes
// report, and //proram:detround suppresses only under the driver, with
// a reason, and only when it marks something.
func TestConcDeterminismFixture(t *testing.T) {
	runFixture(t, []*Pass{ConcDeterminism(fixtureBase + "concdet.driver")}, fixtureBase+"concdet")
}

// TestSchedSinkFixture exercises the oblivious pass's scheduling sinks
// (channel send/receive targets, goroutine spawn targets, lock
// acquisition targets) and the range-key geometry refinement.
func TestSchedSinkFixture(t *testing.T) {
	runFixture(t, []*Pass{Oblivious(fixtureBase + "schedsink")}, fixtureBase+"schedsink")
}

// The hygiene fixture runs under every default pass so named checks count
// as executed (stale detection is gated on that) and so used suppressions
// are consumed by the pass they name.
func TestAllowHygieneFixture(t *testing.T) {
	runFixture(t, DefaultPasses(), fixtureBase+"allowhygiene")
}

func TestFixedTripFixture(t *testing.T) {
	runFixture(t, []*Pass{FixedTrip(fixtureBase + "fixedtrip")}, fixtureBase+"fixedtrip")
}

func TestBranchlessFixture(t *testing.T) {
	runFixture(t, []*Pass{Branchless()}, fixtureBase+"branchless")
}

func TestBoundsCheckFixture(t *testing.T) {
	runFixture(t, []*Pass{BoundsCheck()}, fixtureBase+"boundscheck")
}

func TestSelectPasses(t *testing.T) {
	if _, err := SelectPasses("determinism,nosuch"); err == nil {
		t.Fatal("unknown check did not error")
	}
	if _, err := SelectPasses("determinism,maporder,determinism"); err == nil {
		t.Fatal("duplicate check did not error")
	}
	ps, err := SelectPasses("maporder, determinism")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || ps[0].Name != "maporder" || ps[1].Name != "determinism" {
		t.Fatalf("SelectPasses returned %v", ps)
	}
	all, err := SelectPasses("")
	if err != nil || len(all) != len(DefaultPasses()) {
		t.Fatalf("empty selection: %v, %d passes", err, len(all))
	}

	// Aliases resolve to their pass and share its duplicate slot.
	ps, err = SelectPasses("trip,ct,bce")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 3 || ps[0].Name != "fixedtrip" || ps[1].Name != "branchless" || ps[2].Name != "boundscheck" {
		t.Fatalf("alias selection returned %v", ps)
	}
	if _, err := SelectPasses("fixedtrip,trip"); err == nil {
		t.Fatal("alias+name duplicate did not error")
	}
	if _, err := SelectPasses("nosuch"); err == nil || !strings.Contains(err.Error(), "boundscheck (bce)") {
		t.Fatalf("unknown-check error should list names with aliases, got: %v", err)
	}
}

func TestSecretFieldsHarvested(t *testing.T) {
	prog := program(t)
	// The canonical payload field plus the fixture's local one.
	found := 0
	for obj := range prog.SecretFields {
		if obj.Name() == "Data" || obj.Name() == "data" {
			found++
		}
	}
	if found < 2 {
		t.Fatalf("expected mem.Block.Data and the fixture field to be harvested, found %d secret fields", found)
	}
}

func TestDirectiveParsingOnFixture(t *testing.T) {
	prog := program(t)
	pkg := prog.PackageAt(fixtureBase + "allowhygiene")
	if pkg == nil {
		t.Fatal("allowhygiene fixture not loaded")
	}
	kinds := make(map[string]int)
	for _, d := range pkg.Directives {
		kinds[d.Kind]++
	}
	if kinds["allow"] < 3 || kinds["invariant"] < 2 || kinds["frobnicate"] != 1 {
		t.Fatalf("directive census off: %v", kinds)
	}
}
