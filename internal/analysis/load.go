package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, parsed and type-checked package of the module.
type Package struct {
	Path string // import path, e.g. "proram/internal/oram"
	Rel  string // module-relative path, "" for the module root package
	Dir  string
	Name string // package name ("main" for commands)

	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	Directives []*Directive
}

// Program is a loaded module: every package (plus any explicitly
// requested extra directories, which is how the test fixtures under
// testdata are brought in), type-checked in dependency order against a
// shared FileSet.
type Program struct {
	Fset       *token.FileSet
	ModulePath string
	Root       string
	Packages   []*Package // dependency order

	// SecretFields records every struct field declared with a
	// //proram:secret directive, across all loaded packages. The oblivious
	// pass treats reads of these fields as taint sources.
	SecretFields map[types.Object]bool

	byPath map[string]*Package

	// Lazily built interprocedural state, shared by the passes that need
	// whole-program views (the call graph and the function summaries
	// derived from it).
	cgOnce   sync.Once
	cg       *CallGraph
	sumOnce  sync.Once
	sums     *summaries
	allocOne sync.Once
	allocs   *allocSummaries
	lockOnce sync.Once
	locks    *lockSummaries
	goOnce   sync.Once
	spawns   []*spawnSite

	// Per-function SSA and value-range views (ssa.go, vrange.go), built
	// lazily the first time a pass asks about a function.
	ssaMu   sync.Mutex
	ssaMemo map[*ast.FuncDecl]*ssaFunc
	vrMemo  map[*ast.FuncDecl]*vrangeFunc
}

// relPosition renders a position module-relative with forward slashes,
// so diagnostic messages referring to other files are byte-identical
// across checkouts and operating systems.
func (p *Program) relPosition(pos token.Pos) string {
	pp := p.Fset.Position(pos)
	name := pp.Filename
	if rel, err := filepath.Rel(p.Root, name); err == nil && !strings.HasPrefix(rel, "..") {
		name = filepath.ToSlash(rel)
	}
	return fmt.Sprintf("%s:%d", name, pp.Line)
}

// ModulePackages returns the packages that belong to the module proper,
// excluding anything under a testdata directory (analysis fixtures).
func (p *Program) ModulePackages() []*Package {
	var out []*Package
	for _, pkg := range p.Packages {
		if strings.Contains(pkg.Rel, "testdata") {
			continue
		}
		out = append(out, pkg)
	}
	return out
}

// PackageAt returns the package rooted at the given module-relative
// directory ("" or "." for the root package), or nil.
func (p *Program) PackageAt(rel string) *Package {
	if rel == "." {
		rel = ""
	}
	return p.byPath[path.Join(p.ModulePath, filepath.ToSlash(rel))]
}

// Load parses and type-checks every package of the module rooted at
// root (the directory containing go.mod). Directories named testdata are
// skipped by the walk; pass them via extraDirs to load fixtures.
// Standard-library imports are type-checked from GOROOT source, so the
// loader works with nothing but the stdlib toolchain.
func Load(root string, extraDirs ...string) (*Program, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	for _, d := range extraDirs {
		abs, err := filepath.Abs(d)
		if err != nil {
			return nil, err
		}
		dirs = append(dirs, abs)
	}
	seen := make(map[string]bool)

	prog := &Program{
		Fset:         token.NewFileSet(),
		ModulePath:   modPath,
		Root:         root,
		SecretFields: make(map[types.Object]bool),
		byPath:       make(map[string]*Package),
	}
	var parsed []*Package
	for _, dir := range dirs {
		if seen[dir] {
			continue
		}
		seen[dir] = true
		pkg, err := prog.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no non-test Go files
		}
		if prev, dup := prog.byPath[pkg.Path]; dup {
			return nil, fmt.Errorf("analysis: duplicate package %s (%s and %s)", pkg.Path, prev.Dir, pkg.Dir)
		}
		prog.byPath[pkg.Path] = pkg
		parsed = append(parsed, pkg)
	}

	order, err := prog.dependencyOrder(parsed)
	if err != nil {
		return nil, err
	}
	std := importer.ForCompiler(prog.Fset, "source", nil)
	for _, pkg := range order {
		if err := prog.typeCheck(pkg, std); err != nil {
			return nil, err
		}
	}
	prog.Packages = order
	return prog, nil
}

// modulePath reads the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: cannot read %s (run from the module root): %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module declaration in %s", gomod)
}

// packageDirs walks the module and returns every directory that may hold
// a package, skipping testdata, hidden and underscore-prefixed trees.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, p)
		return nil
	})
	return dirs, err
}

// parseDir parses the non-test Go files of one directory. It returns nil
// if the directory holds no such files.
func (p *Program) parseDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)

	rel, err := filepath.Rel(p.Root, dir)
	if err != nil {
		return nil, err
	}
	if rel == "." {
		rel = ""
	}
	pkg := &Package{
		Path: path.Join(p.ModulePath, filepath.ToSlash(rel)),
		Rel:  filepath.ToSlash(rel),
		Dir:  dir,
	}
	for _, n := range names {
		file, err := parser.ParseFile(p.Fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if pkg.Name == "" {
			pkg.Name = file.Name.Name
		} else if pkg.Name != file.Name.Name {
			return nil, fmt.Errorf("analysis: %s holds two packages (%s and %s)", dir, pkg.Name, file.Name.Name)
		}
		pkg.Files = append(pkg.Files, file)
		pkg.Directives = append(pkg.Directives, parseDirectives(p.Fset, file)...)
	}
	return pkg, nil
}

// dependencyOrder topologically sorts packages along their intra-module
// imports so each package is type-checked after its dependencies.
func (p *Program) dependencyOrder(pkgs []*Package) ([]*Package, error) {
	const (
		visiting = 1
		done     = 2
	)
	state := make(map[*Package]int)
	var order []*Package
	var visit func(pkg *Package, from string) error
	visit = func(pkg *Package, from string) error {
		switch state[pkg] {
		case visiting:
			return fmt.Errorf("analysis: import cycle through %s (from %s)", pkg.Path, from)
		case done:
			return nil
		}
		state[pkg] = visiting
		for _, imp := range pkg.importPaths() {
			if dep, ok := p.byPath[imp]; ok {
				if err := visit(dep, pkg.Path); err != nil {
					return err
				}
			} else if imp == p.ModulePath || strings.HasPrefix(imp, p.ModulePath+"/") {
				return fmt.Errorf("analysis: %s imports %s, which is not in the module", pkg.Path, imp)
			}
		}
		state[pkg] = done
		order = append(order, pkg)
		return nil
	}
	for _, pkg := range pkgs {
		if err := visit(pkg, "the command line"); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// importPaths returns the deduplicated import paths of all files.
func (pkg *Package) importPaths() []string {
	seen := make(map[string]bool)
	var out []string
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if !seen[path] {
				seen[path] = true
				out = append(out, path)
			}
		}
	}
	sort.Strings(out)
	return out
}

// moduleImporter resolves module-internal imports from the already
// type-checked packages and everything else from GOROOT source.
type moduleImporter struct {
	prog *Program
	std  types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.prog.byPath[path]; ok {
		if pkg.Types == nil {
			return nil, fmt.Errorf("analysis: %s imported before it was type-checked", path)
		}
		return pkg.Types, nil
	}
	return m.std.Import(path)
}

// typeCheck runs go/types over one parsed package and harvests its
// //proram:secret field markers.
func (p *Program) typeCheck(pkg *Package, std types.Importer) error {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: &moduleImporter{prog: p, std: std}}
	tpkg, err := conf.Check(pkg.Path, p.Fset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("analysis: type-checking %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	p.collectSecretFields(pkg)
	return nil
}

// collectSecretFields records struct fields annotated //proram:secret.
func (p *Program) collectSecretFields(pkg *Package) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				if !fieldMarkedSecret(field) {
					continue
				}
				for _, name := range field.Names {
					if obj := pkg.Info.Defs[name]; obj != nil {
						p.SecretFields[obj] = true
					}
				}
			}
			return true
		})
	}
}

// fieldMarkedSecret reports whether a //proram:secret directive is
// attached to the field as a doc or trailing comment.
func fieldMarkedSecret(field *ast.Field) bool {
	for _, g := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if strings.HasPrefix(c.Text, DirectivePrefix+"secret") {
				return true
			}
		}
	}
	return false
}
