package analysis

import (
	"go/ast"
	"go/types"
)

// This file builds the module-local call graph that the interprocedural
// passes (oblivious, seedplumbing, allocdiscipline) share. Nodes are the
// functions and methods declared in loaded packages; edges are the
// statically resolvable calls between them (direct calls and concrete
// method calls — calls through interfaces, function values and the
// standard library stay unresolved and are handled conservatively by
// each client). Recursion is condensed into strongly connected
// components so summary computation can run bottom-up: every SCC is
// visited after all the SCCs it calls into.

// CGNode is one declared function or method in the call graph.
type CGNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	// Params lists the receiver (when there is one) followed by the
	// declared parameters; this is the parameter indexing every function
	// summary uses.
	Params   []types.Object
	Variadic bool

	// Callees are the resolved module-local calls in source order. One
	// callee may appear many times, once per call site.
	Callees []CGEdge

	// SCC is the condensation component index; CallGraph.SCCs[SCC]
	// contains this node. Nodes in the same component reach each other.
	SCC int

	index, lowlink int
	onStack        bool
}

// CGEdge is one resolved call site.
type CGEdge struct {
	Call   *ast.CallExpr
	Callee *CGNode
}

// Name renders the node for diagnostics: "Fn" or "Type.Method".
func (n *CGNode) Name() string {
	if recv := n.Fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + n.Fn.Name()
		}
	}
	return n.Fn.Name()
}

// CallGraph is the module-local call graph plus its SCC condensation.
type CallGraph struct {
	Nodes []*CGNode // deterministic: package load order, file order, declaration order

	// SCCs lists the strongly connected components bottom-up: every
	// component appears after each component it calls into, so clients
	// computing summaries visit callees before callers.
	SCCs [][]*CGNode

	byFunc map[*types.Func]*CGNode
}

// NodeOf returns the node for a declared function, or nil for functions
// outside the loaded module (or without bodies).
func (g *CallGraph) NodeOf(fn *types.Func) *CGNode { return g.byFunc[fn] }

// CallGraph builds (once) and returns the program's call graph.
func (p *Program) CallGraph() *CallGraph {
	p.cgOnce.Do(func() { p.cg = buildCallGraph(p) })
	return p.cg
}

func buildCallGraph(prog *Program) *CallGraph {
	g := &CallGraph{byFunc: make(map[*types.Func]*CGNode)}

	// Collect the nodes first so edges can resolve forward references.
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &CGNode{Fn: obj, Decl: fn, Pkg: pkg, SCC: -1, index: -1}
				node.Params = declParams(pkg.Info, fn)
				node.Variadic = obj.Type().(*types.Signature).Variadic()
				g.byFunc[obj] = node
				g.Nodes = append(g.Nodes, node)
			}
		}
	}

	for _, node := range g.Nodes {
		n := node
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := g.resolveCall(n.Pkg, call); callee != nil {
				n.Callees = append(n.Callees, CGEdge{Call: call, Callee: callee})
			}
			return true
		})
	}

	g.condense()
	return g
}

// declParams returns the receiver (if any) followed by the parameter
// objects of a declaration, in source order.
func declParams(info *types.Info, fn *ast.FuncDecl) []types.Object {
	var out []types.Object
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					out = append(out, obj)
				}
			}
		}
	}
	collect(fn.Recv)
	collect(fn.Type.Params)
	return out
}

// resolveCall maps a call expression to the module-declared function it
// statically invokes: a plain call of a declared function, a qualified
// pkg.Fn call, or a concrete method call. Interface dispatch, method
// expressions and calls through function values return nil.
func (g *CallGraph) resolveCall(pkg *Package, call *ast.CallExpr) *CGNode {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return g.byFunc[fn]
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			if fn, ok := sel.Obj().(*types.Func); ok {
				return g.byFunc[fn]
			}
			return nil
		}
		// No selection entry: a package-qualified reference.
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return g.byFunc[fn]
		}
	}
	return nil
}

// condense runs Tarjan's SCC algorithm. Components are emitted callees
// first, which is exactly the bottom-up order summary computation needs.
func (g *CallGraph) condense() {
	next := 0
	var stack []*CGNode
	var strongconnect func(n *CGNode)
	strongconnect = func(n *CGNode) {
		n.index = next
		n.lowlink = next
		next++
		stack = append(stack, n)
		n.onStack = true
		for _, e := range n.Callees {
			c := e.Callee
			if c.index < 0 {
				strongconnect(c)
				n.lowlink = min(n.lowlink, c.lowlink)
			} else if c.onStack {
				n.lowlink = min(n.lowlink, c.index)
			}
		}
		if n.lowlink == n.index {
			var comp []*CGNode
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				m.onStack = false
				m.SCC = len(g.SCCs)
				comp = append(comp, m)
				if m == n {
					break
				}
			}
			g.SCCs = append(g.SCCs, comp)
		}
	}
	for _, n := range g.Nodes {
		if n.index < 0 {
			strongconnect(n)
		}
	}
}
