package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// This file holds the helpers the concurrency-discipline passes
// (goroutinediscipline, lockorder, concdeterminism) share: classifying
// calls on sync primitives, rendering stable lock identities, and
// resolving expressions to their root objects.

// syncOp classifies one call expression as a method call on a sync
// package primitive (Mutex, RWMutex, Cond, WaitGroup, Once, ...).
type syncOp struct {
	recv   ast.Expr // the primitive operand (the selector base)
	typ    string   // receiver type name: "Mutex", "RWMutex", "Cond", "WaitGroup", ...
	method string   // "Lock", "RUnlock", "Wait", "Done", ...
}

// classifySyncOp recognizes calls of methods declared in package sync,
// including calls through an embedded primitive (the method object still
// belongs to sync).
func classifySyncOp(info *types.Info, call *ast.CallExpr) (syncOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return syncOp{}, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return syncOp{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return syncOp{}, false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return syncOp{}, false
	}
	return syncOp{recv: sel.X, typ: named.Obj().Name(), method: fn.Name()}, true
}

// lockIdentity renders the operand of a sync method call as a stable
// cross-function identity. Field chains rooted in a named struct type
// render as "Type.field" (so f.mu on any two *Frontend values unifies —
// lock-order cycles are a property of the type's discipline, not of one
// value), package-level variables as "pkg.name", and locals/parameters
// by bare name. Expressions with no stable root (map/slice elements,
// call results) fall back to a position-based identity, which keeps them
// distinct from everything else.
func lockIdentity(prog *Program, pkg *Package, x ast.Expr) string {
	x = peelRefs(x)
	switch x := x.(type) {
	case *ast.SelectorExpr:
		if t := namedTypeOf(pkg.Info, x.X); t != nil {
			qual := t.Obj().Name()
			if p := t.Obj().Pkg(); p != nil {
				qual = p.Name() + "." + qual
			}
			return qual + "." + x.Sel.Name
		}
		return lockIdentity(prog, pkg, x.X) + "." + x.Sel.Name
	case *ast.Ident:
		obj := pkg.Info.Uses[x]
		if obj == nil {
			obj = pkg.Info.Defs[x]
		}
		if v, ok := obj.(*types.Var); ok {
			if v.Parent() == pkg.Types.Scope() {
				return pkg.Name + "." + v.Name()
			}
			return v.Name()
		}
		return x.Name
	default:
		return fmt.Sprintf("<lock@%s>", prog.relPosition(x.Pos()))
	}
}

// peelRefs strips parentheses, dereferences and address-of operators.
func peelRefs(x ast.Expr) ast.Expr {
	for {
		switch e := x.(type) {
		case *ast.ParenExpr:
			x = e.X
		case *ast.StarExpr:
			x = e.X
		case *ast.UnaryExpr:
			if e.Op != token.AND {
				return x
			}
			x = e.X
		default:
			return x
		}
	}
}

// namedTypeOf returns the named type of an expression (through
// pointers), or nil.
func namedTypeOf(info *types.Info, x ast.Expr) *types.Named {
	tv, ok := info.Types[x]
	if !ok || tv.Type == nil {
		return nil
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// rootObject peels an expression to the object at its base: the x in
// x.f[i].g, *x, &x. Non-variable roots (calls, literals) return nil.
func rootObject(info *types.Info, x ast.Expr) types.Object {
	for {
		switch e := x.(type) {
		case *ast.SelectorExpr:
			x = e.X
		case *ast.IndexExpr:
			x = e.X
		case *ast.StarExpr:
			x = e.X
		case *ast.ParenExpr:
			x = e.X
		case *ast.UnaryExpr:
			x = e.X
		case *ast.Ident:
			obj := info.Uses[e]
			if obj == nil {
				obj = info.Defs[e]
			}
			if v, ok := obj.(*types.Var); ok {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// isChanType reports whether an expression has channel type.
func isChanType(info *types.Info, x ast.Expr) bool {
	tv, ok := info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Chan)
	return ok
}

// enclosingNode finds the declared function whose body contains pos, or
// nil (package-level positions).
func enclosingNode(prog *Program, pkg *Package, pos token.Pos) *CGNode {
	for _, n := range prog.CallGraph().Nodes {
		if n.Pkg == pkg && n.Decl.Pos() <= pos && pos <= n.Decl.End() {
			return n
		}
	}
	return nil
}
