// Package seedplumbing is a proram-vet golden fixture: exported
// constructors that hard-code their RNG seed must be flagged; seeds
// threaded from parameters (directly or through a config) must not.
package seedplumbing

import "proram/internal/rng"

// Engine is a stand-in for any stochastic component.
type Engine struct {
	src *rng.Source
}

// Config carries the seed the way real components do.
type Config struct {
	Seed uint64
}

func NewEngine() *Engine {
	return &Engine{src: rng.New(7)} // want `NewEngine seeds its RNG internally`
}

func NewSeeded(seed uint64) *Engine {
	return &Engine{src: rng.New(seed)}
}

func NewFromConfig(cfg Config) *Engine {
	return &Engine{src: rng.New(cfg.Seed + 1)}
}

func NewForked(parent *rng.Source) *Engine {
	return &Engine{src: rng.New(parent.Uint64())}
}

func NewAllowed() *Engine {
	return &Engine{src: rng.New(9)} //proram:allow seedplumbing fixture: the fixed stream is part of this component's spec
}

func newInternal() *Engine {
	return &Engine{src: rng.New(3)}
}

var _ = newInternal

// The reachability cases: the rng.New call hides one or two helpers
// below the exported constructor, and the finding surfaces at the
// constructor's call into the chain.

func newHelper() *rng.Source {
	return rng.New(11)
}

func newDeeper() *rng.Source {
	return newHelper()
}

func NewDeep() *Engine {
	return &Engine{src: newHelper()} // want `NewDeep seeds its RNG internally \(through newHelper\)`
}

func NewDeeper() *Engine {
	return &Engine{src: newDeeper()} // want `NewDeeper seeds its RNG internally \(through newDeeper → newHelper\)`
}

func newSeededHelper(seed uint64) *rng.Source {
	return rng.New(seed)
}

func NewDeepSeeded(seed uint64) *Engine {
	return &Engine{src: newSeededHelper(seed)}
}
