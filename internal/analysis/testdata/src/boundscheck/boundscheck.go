// Package boundscheck is a proram-vet golden fixture for the
// bounds-proof pass: in //proram:hotpath functions every slice and array
// indexing must be provably in-bounds — by interval, by a dominating
// comparison, or by the _ = s[max] pin idiom.
package boundscheck

// unproven indexes by a raw parameter.
//
//proram:hotpath fixture
func unproven(s []uint64, i int) uint64 {
	return s[i] // want `cannot prove s\[i\] stays in bounds`
}

// guarded dominates the indexing with an explicit check.
//
//proram:hotpath fixture
func guarded(s []uint64, i int) uint64 {
	if i >= 0 && i < len(s) {
		return s[i]
	}
	return 0
}

// pinned uses the pin idiom: one indexing names the maximum, every
// later indexing up to it is covered.
//
//proram:hotpath fixture
func pinned(s []uint64, n int) uint64 {
	if n <= 0 {
		return 0
	}
	_ = s[n-1]
	var total uint64
	for i := 0; i < n; i++ {
		total += s[i]
	}
	return total
}

// ranged loops are in-bounds by construction.
//
//proram:hotpath fixture
func ranged(s []uint64) uint64 {
	var total uint64
	for i := range s {
		total += s[i]
	}
	return total
}

// arrayConst indexes an array with provable constants.
//
//proram:hotpath fixture
func arrayConst(a [4]uint64) uint64 {
	return a[0] + a[3]
}

// arrayOver indexes past a constant length.
//
//proram:hotpath fixture
func arrayOver(a [4]uint64) uint64 {
	i := 5
	return a[i] // want `cannot prove a\[i\] stays below the length`
}

// negativeStep walks an index downward with no lower guard.
//
//proram:hotpath fixture
func negativeStep(s []uint64, i int) uint64 {
	j := i - 1
	if j < len(s) {
		return s[j] // want `cannot prove s\[j\] stays non-negative`
	}
	return 0
}

// modLen is safe arithmetically, but the prover does not model
// remainders against len; the pin idiom is the documented remedy, and
// the finding here is the expected behavior.
//
//proram:hotpath fixture
func modLen(s []uint64, x uint64) uint64 {
	if len(s) == 0 {
		return 0
	}
	return s[int(x)%len(s)] // want `cannot prove`
}

// allowed carries a justified suppression.
//
//proram:hotpath fixture
func allowed(s []uint64, i int) uint64 {
	return s[i] //proram:allow boundscheck fixture: the caller guarantees i by protocol
}

// coldPath is not marked, so it carries no obligations.
func coldPath(s []uint64, i int) uint64 {
	return s[i]
}
