// Package maporder is a proram-vet golden fixture for the map-iteration
// pass: order-sensitive loops must be flagged, provably commutative ones
// must not.
package maporder

func appendKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order is randomized`
		keys = append(keys, k)
	}
	return keys
}

func sumInts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func countBig(m map[string]int) int {
	n := 0
	for _, v := range m {
		if v > 10 {
			n++
		}
	}
	return n
}

func sumFloats(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `map iteration order is randomized`
		total += v
	}
	return total
}

func firstOver(m map[string]int, limit int) string {
	for k, v := range m { // want `map iteration order is randomized`
		if v > limit {
			return k
		}
	}
	return ""
}

func drain(m map[string]bool) {
	for k := range m {
		delete(m, k)
	}
}

func allowedAppend(m map[string]int) []string {
	var keys []string
	//proram:allow maporder fixture: the caller sorts the returned slice
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
