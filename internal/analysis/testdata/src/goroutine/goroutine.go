// Package goroutine exercises the goroutinediscipline pass: captured
// writes racing with the spawner, loop self-races, call-spawn escapes,
// and the synchronization facts (common lock, channel join,
// WaitGroup.Wait) that make the conventional shapes quiet.
package goroutine

import "sync"

// racyCapture reads the captured variable before the channel join: the
// goroutine's write races with the spawner's read.
func racyCapture() int {
	n := 0
	done := make(chan struct{})
	go func() {
		n = 42 // want `unsynchronized write to "n", shared with the goroutine spawned at .*: the other goroutine touches it at .* with no common lock, channel join or WaitGroup\.Wait ordering \(data race\)`
		done <- struct{}{}
	}()
	m := n
	<-done
	return m
}

// joined reads the captured variable only after receiving the
// completion signal: ordered, quiet.
func joined() int {
	n := 0
	done := make(chan struct{})
	go func() {
		n = 42
		close(done)
	}()
	<-done
	return n
}

// locked guards both sides with the same mutex: quiet.
func locked() int {
	var mu sync.Mutex
	n := 0
	done := make(chan struct{})
	go func() {
		mu.Lock()
		n = 1
		mu.Unlock()
		close(done)
	}()
	mu.Lock()
	m := n
	mu.Unlock()
	<-done
	return m
}

// pooled is the conventional WaitGroup pool: the counter is mutated
// under a lock and read only after Wait. Quiet.
func pooled() int {
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			total++
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total
}

// loopRace spawns writers in a loop with no lock: the iterations race
// with each other regardless of what the spawner does afterwards.
func loopRace() int {
	n := 0
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			n++ // want `goroutines spawned in a loop all write captured variable "n" \(declared outside the loop\) with no lock held \(data race between iterations\)`
			wg.Done()
		}()
	}
	wg.Wait()
	return n
}

// counter is the call-spawn target: add mutates the receiver under its
// own lock.
type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) add() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// spawnCall hands c to a goroutine, then writes it with no lock the
// goroutine also takes.
func spawnCall(c *counter) {
	go c.add()
	c.n = 7 // want `write to "c" after it escaped to counter\.add \(go statement at .*\) holds no lock the goroutine also takes \(data race\)`
}

// spawnCallLocked writes under the lock the spawned method takes too:
// quiet.
func spawnCallLocked(c *counter) {
	go c.add()
	c.mu.Lock()
	c.n = 7
	c.mu.Unlock()
}

// allowed documents a tolerated race: the allow consumes the finding.
func allowed() bool {
	flag := false
	done := make(chan struct{})
	go func() {
		//proram:allow goroutinediscipline fixture: monotonic flag, the read side tolerates staleness
		flag = true
		close(done)
	}()
	v := flag
	<-done
	return v
}
