// Package branchless is a proram-vet golden fixture for the
// constant-time pass: a //proram:branchless function (and everything it
// calls) must not branch, select, short-circuit, probe a map, or shift
// by a variable amount on values derived from its inputs or from secret
// payload bytes.
package branchless

import "math/bits"

type blk struct {
	//proram:secret fixture payload bytes
	data []byte
}

// ctSelect is the shape the directive exists for: pure mask arithmetic.
//
//proram:branchless fixture: constant-time select helper
func ctSelect(mask, a, b uint64) uint64 {
	return (a & mask) | (b &^ mask)
}

// ctCaller may call other marked functions with derived values.
//
//proram:branchless fixture: composes marked helpers
func ctCaller(x, y uint64) uint64 {
	return ctSelect(0-(x&1), x, y)
}

// popcount may use math/bits with derived arguments.
//
//proram:branchless fixture: bit tricks are the point
func popcount(x uint64) int {
	return bits.OnesCount64(x)
}

// branchy branches on an input.
//
//proram:branchless fixture: seeded violation
func branchy(x uint64) uint64 {
	if x > 3 { // want `if condition depends on function inputs`
		return 1
	}
	return 0
}

// payloadBranch branches on secret payload bytes.
//
//proram:branchless fixture: seeded violation
func payloadBranch(b blk) int {
	if b.data[0] == 1 { // want `if condition depends on secret data`
		return 1
	}
	return 0
}

// shortCircuit evaluates its right operand conditionally.
//
//proram:branchless fixture: seeded violation
func shortCircuit(a, b uint64) bool {
	ok := a == 0 && b == 0 // want `short-circuits on an operand derived from function inputs`
	return ok
}

// varShift shifts by a derived amount.
//
//proram:branchless fixture: seeded violation
func varShift(x uint64, s uint) uint64 {
	return x << s // want `shift amount depends on function inputs`
}

// mapProbe keys a map by a derived value.
//
//proram:branchless fixture: seeded violation
func mapProbe(m map[uint64]int, k uint64) int {
	return m[k] // want `map lookup keyed by .* has data-dependent latency`
}

// minMax may compile to a conditional.
//
//proram:branchless fixture: seeded violation
func minMax(a, b uint64) uint64 {
	return min(a, b) // want `min/max on .* may compile to a branch`
}

// leaky is an ordinary helper that branches on its parameter.
func leaky(v uint64) uint64 {
	if v > 0 {
		return 1
	}
	return 0
}

// callsLeaky hands a derived value to an unmarked callee that branches
// on it.
//
//proram:branchless fixture: seeded violation
func callsLeaky(x uint64) uint64 {
	return leaky(x) // want `passes a value derived from function inputs into parameter v, which leaky branches on`
}

// callsOpaque hands a derived value to a function value the analysis
// cannot resolve.
//
//proram:branchless fixture: seeded violation
func callsOpaque(f func(uint64) uint64, x uint64) uint64 {
	return f(x) // want `call to an unanalyzable function passes a value derived from function inputs`
}

// declassified may branch on a value a //proram:public directive blesses.
//
//proram:branchless fixture: declassification is explicit
func declassified(b blk) int {
	version := b.data[0] //proram:public fixture: the version byte is public by protocol
	if version == 2 {
		return 1
	}
	return 0
}

// unmarked functions may branch freely.
func unmarked(x uint64) uint64 {
	if x > 3 {
		return 1
	}
	return 0
}
