// Package obs is a proram-vet golden fixture for the observability
// emission sink of the taint pass: a metric name or trace argument
// derived from secret payload bytes lands in an exported file, so it
// must be flagged; lengths, public counters and explicit declassifies
// must not.
package obs

import "proram/internal/obs"

type block struct {
	leaf uint64
	//proram:secret fixture payload bytes
	data []byte
}

func secretMetricLabel(rec *obs.Recorder, b block) {
	label := "oram.block." + string(b.data[:4])
	rec.Counter(label).Inc() // want `observability emission argument depends on secret block payload bytes`
}

func secretTraceArg(rec *obs.Recorder, b block, now uint64) {
	rec.Instant("oram", "peek", now, "payload", uint64(b.data[0])) // want `observability emission argument depends on secret block payload bytes`
}

func publicEmission(rec *obs.Recorder, b block, now uint64) {
	// Block geometry and the assigned leaf are public by construction.
	rec.Counter("oram.path_accesses").Inc()
	rec.Instant("oram", "access", now, "leaf", b.leaf)
	rec.Histogram("oram.block_len", nil).Observe(float64(len(b.data)))
}

func declassifiedEmission(rec *obs.Recorder, b block, now uint64) {
	version := b.data[0] //proram:public fixture: the version byte is public by protocol
	rec.Instant("oram", "version", now, "v", uint64(version))
}

func allowedEmission(rec *obs.Recorder, b block, now uint64) {
	//proram:allow oblivious fixture: debug-only dump, never built into release binaries
	rec.Instant("oram", "debug", now, "raw", uint64(b.data[1]))
}
