// Package determinism is a proram-vet golden fixture: each construct the
// determinism pass must flag, plus suppressed variants. Expectations are
// the want comments; see analysis_test.go for the matching rules.
package determinism

import (
	crand "crypto/rand" // want `import of crypto/rand in an internal package`
	mrand "math/rand"   // want `import of "math/rand"`
	"time"

	"proram/internal/rng"
)

var (
	_ = mrand.Int
	_ = crand.Reader
)

func clocks() time.Duration {
	start := time.Now()         // want `time\.Now reads the clock`
	time.Sleep(time.Nanosecond) // want `time\.Sleep reads the clock`
	return time.Since(start)    // want `time\.Since reads the clock`
}

func racy(ch chan int) int {
	select { // want `select with a default clause`
	case v := <-ch:
		return v
	default:
		return -1
	}
}

func hardSeed() *rng.Source {
	return rng.New(42) // want `rng\.New with a hard-coded seed`
}

func plumbedSeed(seed uint64) *rng.Source {
	return rng.New(seed)
}

func allowedSeed() *rng.Source {
	return rng.New(1) //proram:allow determinism fixture: the fixed stream is the point of this helper
}

func allowedSleep() {
	//proram:allow determinism fixture: operator-facing pacing, not simulated time
	time.Sleep(time.Nanosecond)
}
