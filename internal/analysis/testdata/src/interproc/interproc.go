// Package interproc is a proram-vet golden fixture for the
// interprocedural taint engine: secret payload bytes that cross one or
// more call boundaries — through return values, through out-parameters,
// or into a helper that branches on its argument — must still be
// flagged, including around recursion cycles. Every positive case in
// this file is invisible to a purely intra-procedural pass.
package interproc

type block struct {
	id uint64
	//proram:secret fixture payload bytes
	data []byte
}

// passthru's summary records the param→return flow.
func passthru(x []byte) []byte { return x }

// double is two calls deep: its return derives from the secret field.
func double(b block) []byte { return passthru(b.data) }

func branchOnReturn(b block) int {
	if double(b)[0] == 1 { // want `if condition depends on secret block payload bytes`
		return 1
	}
	return 0
}

// branchHelper never touches a secret itself; its summary records that
// parameter x reaches an if condition.
func branchHelper(x byte) int {
	if x == 3 {
		return 1
	}
	return 0
}

func callsBranchHelper(b block) int {
	return branchHelper(b.data[0]) // want `secret block payload bytes flow into parameter "x" of branchHelper and reach a if condition`
}

// mid forwards its argument another level down.
func mid(y byte) int { return branchHelper(y) }

func callsMid(b block) int {
	return mid(b.data[1]) // want `secret block payload bytes flow into parameter "y" of mid → branchHelper and reach a if condition`
}

// recSplit and recMerge are mutually recursive: the sink on v inside
// recMerge must surface for callers of either cycle member, and the
// summary fixpoint must converge.
func recSplit(v byte, depth int) int {
	if depth == 0 {
		return recMerge(v, 1)
	}
	return recSplit(v, depth-1)
}

func recMerge(v byte, depth int) int {
	if v > 10 {
		return depth
	}
	return recSplit(v, depth)
}

func entryRec(b block) int {
	return recSplit(b.data[2], 3) // want `secret block payload bytes flow into parameter "v" of recSplit → recMerge and reach a if condition`
}

// fill writes secret bytes through its dst parameter; callers' buffers
// become tainted.
func fill(dst []byte, b block) {
	copy(dst, b.data)
}

func branchAfterFill(b block) int {
	buf := make([]byte, 8)
	fill(buf, b)
	if buf[0] == 1 { // want `if condition depends on secret block payload bytes`
		return 1
	}
	return 0
}

// payloadLen sanitizes: length is public by construction, and that fact
// survives the call boundary.
func payloadLen(b block) int { return len(b.data) }

func publicLenLoop(b block) int {
	n := 0
	for i := 0; i < payloadLen(b); i++ {
		n++
	}
	return n
}

// A public value into a sink-carrying helper is fine.
func publicIntoHelper(b block) int {
	return branchHelper(byte(b.id))
}
