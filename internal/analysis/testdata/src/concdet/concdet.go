// Package concdet exercises the concdeterminism pass: multi-case
// selects, fan-in receives, spawn-order-dependent sends, and the
// //proram:detround discipline (verified against a fixture-local round
// driver — the test passes this package's driver as the root).
package concdet

// driver is the fixture's round driver root.
func driver(results chan int, parts int) []int {
	return gather(results, parts)
}

// gather sits under the driver, so its fan-in receive legitimately
// carries a detround justification: quiet.
func gather(results chan int, parts int) []int {
	out := make([]int, parts)
	for i := 0; i < parts; i++ {
		//proram:detround results carry their slot and are reindexed into slot order before anything observable happens
		r := <-results
		out[r%parts] = r
	}
	return out
}

// stray has the same shape but is not reachable from the driver: the
// round-barrier claim is false and is itself the finding.
func stray(results chan int, parts int) int {
	total := 0
	for i := 0; i < parts; i++ {
		//proram:detround pretends to be under the barrier
		total += <-results // want `//proram:detround on code in stray, which is not reachable from a round driver`
	}
	return total
}

// gatherBare is under the driver but gives no justification.
func gatherBare(results chan int, parts int) int {
	total := 0
	for i := 0; i < parts; i++ {
		//proram:detround
		total += <-results // want `//proram:detround needs a one-line reason`
	}
	return total
}

// tidy justifies nothing: the directive is stale.
func tidy() int {
	//proram:detround nothing here is scheduling-ordered // want `//proram:detround marks no concurrent-determinism finding; delete the stale directive`
	return 1
}

// pick is a two-way select: when both are ready the runtime chooses
// pseudo-randomly.
func pick(a, b chan int) int {
	select { // want `select with 2 communication cases: when several are ready the runtime picks pseudo-randomly`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// tryRecv is select-with-default: one communication case, the
// sequential determinism pass's territory, quiet here.
func tryRecv(c chan int) (int, bool) {
	select {
	case v := <-c:
		return v, true
	default:
		return 0, false
	}
}

// fanIn ranges over a multi-sender channel: arrival order is
// scheduling.
func fanIn(results chan int) int {
	total := 0
	for r := range results { // want `range over a channel is unordered fan-in`
		total += r
	}
	return total
}

// scatter spawns senders in a loop: their completion order decides the
// receive order on the shared channel.
func scatter(work []int) chan int {
	out := make(chan int)
	for _, w := range work {
		go func(w int) { // want `goroutines spawned in a loop send on a shared channel: completion order, and so the receive order, is scheduling-dependent`
			out <- w * w
		}(w)
	}
	return out
}

// single receives from a single-sender channel: a different argument
// than the round barrier, so it uses allow rather than detround.
func single(c chan int, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		//proram:allow concdeterminism fixture: single sender, arrival order is the send order
		total += <-c
	}
	return total
}

// driverUse keeps the fixture self-contained: every root shape is
// invoked somewhere.
func driverUse() {
	c := make(chan int, 1)
	c <- 1
	_ = gatherBare(c, 1)
	_ = stray(c, 0)
	_ = tidy()
	_ = fanIn(scatter([]int{1}))
	_, _ = tryRecv(c)
	_ = single(c, 0)
	_ = pick(c, c)
	_ = driver(c, 0)
}
