// Package panicdiscipline is a proram-vet golden fixture: bare library
// panics must be flagged, error returns and justified invariants must not,
// and a justification-free //proram:invariant is itself a finding.
package panicdiscipline

import "errors"

var errNegative = errors.New("negative input")

func validated(n int) error {
	if n < 0 {
		return errNegative
	}
	return nil
}

func bare(n int) {
	if n < 0 {
		panic("negative") // want `panic in library code: return an error`
	}
}

func justified(n int) {
	if n < 0 {
		//proram:invariant fixture: callers validate n at the API boundary
		panic("negative")
	}
}

func justifiedTrailing(n int) {
	if n < 0 {
		panic("negative") //proram:invariant fixture: a trailing justification works too
	}
}

func unjustified(n int) {
	if n < 0 {
		//proram:invariant
		panic("negative") // want `needs a one-line justification`
	}
}
