// Package lockorder exercises the lock-discipline pass: lock/unlock
// imbalance on CFG paths, unlocks of something never taken,
// non-reentrant re-acquisition (direct and through a call), bare
// Cond.Wait, and AB/BA acquisition-order cycles (local and through a
// helper).
package lockorder

import "sync"

// pair holds two mutexes taken in conflicting orders below.
type pair struct {
	a, b sync.Mutex
	n    int
}

// ab acquires a then b.
func (p *pair) ab() {
	p.a.Lock()
	p.b.Lock() // want `acquiring lockorder\.pair\.b while holding lockorder\.pair\.a participates in a lock-order cycle`
	p.n++
	p.b.Unlock()
	p.a.Unlock()
}

// ba acquires b then a: with ab above, a classic AB/BA deadlock.
func (p *pair) ba() {
	p.b.Lock()
	p.a.Lock() // want `acquiring lockorder\.pair\.a while holding lockorder\.pair\.b participates in a lock-order cycle`
	p.n++
	p.a.Unlock()
	p.b.Unlock()
}

// leaky forgets the unlock on the early-return path.
func (p *pair) leaky(x bool) int {
	p.a.Lock()
	if x {
		return 1 // want `path exits the function still holding \{lockorder\.pair\.a\} \(missing Unlock\)`
	}
	p.a.Unlock()
	return 0
}

// double releases a mutex it no longer holds.
func (p *pair) double() {
	p.a.Lock()
	p.a.Unlock()
	p.a.Unlock() // want `Unlock of lockorder\.pair\.a which is not held on this path`
}

// again re-locks a non-reentrant mutex on the same path.
func (p *pair) again() {
	p.a.Lock()
	p.a.Lock() // want `Lock of lockorder\.pair\.a while lockorder\.pair\.a is already held on this path; sync mutexes are not reentrant`
	p.a.Unlock()
	p.a.Unlock()
}

// bareWait calls Cond.Wait without holding the lock it releases.
func bareWait(c *sync.Cond) {
	c.Wait() // want `sync\.Cond\.Wait with no lock held; Wait unlocks c\.L, which must be held`
}

// guarded is the disciplined shape the analyzer must accept.
type guarded struct {
	mu sync.Mutex
	n  int
}

// bump is clean: defer pairs with the lock on every path.
func (g *guarded) bump() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
}

// nested calls a locking method with the lock already held: the same
// self-deadlock as again, one call deep.
func (g *guarded) nested() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.bump() // want `call to guarded\.bump \(re\)acquires lockorder\.guarded\.mu \(at .*\) while lockorder\.guarded\.mu is already held`
}

// two exercises the call-derived ordering edge: xThenY never touches y
// directly, but its helper does.
type two struct {
	x, y sync.Mutex
	n    int
}

func (t *two) lockY() {
	t.y.Lock()
	t.n++
	t.y.Unlock()
}

// xThenY takes y through the helper while holding x.
func (t *two) xThenY() {
	t.x.Lock()
	t.lockY() // want `acquiring lockorder\.two\.y while holding lockorder\.two\.x \(through the call to two\.lockY\) participates in a lock-order cycle`
	t.x.Unlock()
}

// yThenX takes x while holding y: closes the cycle with xThenY.
func (t *two) yThenX() {
	t.y.Lock()
	t.x.Lock() // want `acquiring lockorder\.two\.x while holding lockorder\.two\.y participates in a lock-order cycle`
	t.n++
	t.x.Unlock()
	t.y.Unlock()
}

// cd documents one direction of a cycle as deliberate: the allow
// consumes the finding on the annotated edge, the opposite direction
// still reports.
type cd struct {
	c, d sync.Mutex
}

func (q *cd) cd() {
	q.c.Lock()
	//proram:allow lockorder fixture: this direction is the documented canonical order
	q.d.Lock()
	q.d.Unlock()
	q.c.Unlock()
}

func (q *cd) dc() {
	q.d.Lock()
	q.c.Lock() // want `acquiring lockorder\.cd\.c while holding lockorder\.cd\.d participates in a lock-order cycle`
	q.c.Unlock()
	q.d.Unlock()
}
