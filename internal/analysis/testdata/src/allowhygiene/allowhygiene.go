// Package allowhygiene is a proram-vet golden fixture for directive
// hygiene: unknown kinds, malformed allows and stale suppressions are all
// findings at the directive's own position, so the want expectations ride
// in block comments on the same line.
package allowhygiene

/* want `unknown directive //proram:frobnicate` */ //proram:frobnicate whatever this means

/* want `names no check` */ //proram:allow

/* want `names unknown check "nosuchcheck"` */ //proram:allow nosuchcheck because reasons

/* want `needs a one-line justification` */ //proram:invariant

/* want `suppresses nothing` */ //proram:allow panicdiscipline fixture: nothing on the next line panics

func fine() int {
	//proram:invariant fixture: attached to the panic below and justified, so only hygiene findings remain
	panic("unreachable")
}

func usedAllow(m map[string]int) []string {
	var keys []string
	//proram:allow maporder fixture: a used allow must not be reported stale
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

var _ = fine
var _ = usedAllow
