// Package schedsink exercises the oblivious pass's concurrency sinks:
// secret-derived values selecting which channel is touched, what a go
// statement runs, or which lock is taken — plus the range-key
// refinement (slice indexes are geometry, element values are data).
package schedsink

import "sync"

// block is the fixture's secret carrier.
type block struct {
	//proram:secret fixture payload bytes
	data []byte
}

// sendSecretTarget picks the send channel from payload bytes.
func sendSecretTarget(b block, chans []chan int) {
	chans[b.data[0]] <- 1 // want `memory index depends on secret block payload bytes` want `channel send target depends on secret block payload bytes`
}

// recvSecretSource picks the receive channel from payload bytes.
func recvSecretSource(b block, chans []chan int) int {
	return <-chans[b.data[1]] // want `memory index depends on secret block payload bytes` want `channel receive source depends on secret block payload bytes`
}

// spawnSecretTarget picks what the goroutine runs from payload bytes.
func spawnSecretTarget(b block, fns []func()) {
	go fns[b.data[2]]() // want `memory index depends on secret block payload bytes` want `goroutine spawn target depends on secret block payload bytes`
}

// lockSecretTarget picks which lock to contend on from payload bytes.
func lockSecretTarget(b block, locks []*sync.Mutex) {
	locks[b.data[3]].Lock()   // want `memory index depends on secret block payload bytes` want `lock acquisition target depends on secret block payload bytes`
	locks[b.data[3]].Unlock() // want `memory index depends on secret block payload bytes`
}

// publicSend selects by geometry: len sanitizes, quiet.
func publicSend(b block, chans []chan int) {
	chans[len(b.data)%len(chans)] <- 1
}

// declassifiedSend: the routing bit is public by protocol.
func declassifiedSend(b block, chans []chan int) {
	//proram:public fixture: the routing bit is public by protocol
	chans[b.data[0]&1] <- 1
}

// rangeIndex: ranging over the secret payload yields public integer
// indexes — addressing another buffer with them is geometry. Quiet.
func rangeIndex(b block, out []byte) {
	for i := range b.data {
		out[i] = 1
	}
}

// rangeValue: the element value carries the payload; branching on it
// leaks.
func rangeValue(b block) int {
	n := 0
	for _, v := range b.data {
		if v != 0 { // want `if condition depends on secret block payload bytes`
			n++
		}
	}
	return n
}
