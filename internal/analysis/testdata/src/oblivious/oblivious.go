// Package oblivious is a proram-vet golden fixture for the taint pass:
// control flow conditioned on secret payload bytes must be flagged;
// lengths, declassified values and explicit allows must not.
package oblivious

type block struct {
	id uint64
	//proram:secret fixture payload bytes
	data []byte
}

func use(id uint64) uint64 { return id }

func branchOnPayload(b block) int {
	n := 0
	if b.data[0] == 1 { // want `if condition depends on secret block payload bytes`
		n++
	}
	return n
}

func loopOnPayload(b block) int {
	n := 0
	for i := 0; i < int(b.data[1]); i++ { // want `loop bound depends on secret block payload bytes`
		n++
	}
	return n
}

func switchOnPayload(b block) int {
	switch b.data[2] { // want `switch tag depends on secret block payload bytes`
	case 0:
		return 1
	}
	return 0
}

func propagatedTaint(b block) int {
	x := b.data[3]
	y := int(x) + 1
	if y > 10 { // want `if condition depends on secret block payload bytes`
		return 1
	}
	return 0
}

func lengthIsPublic(b block) int {
	n := use(b.id)
	for i := 0; i < len(b.data); i++ {
		n++
	}
	if len(b.data) > 16 {
		n++
	}
	return int(n)
}

func declassified(b block) int {
	version := b.data[0] //proram:public fixture: the version byte is public by protocol
	if version == 2 {
		return 1
	}
	return 0
}

func allowedBranch(b block) int {
	//proram:allow oblivious fixture: debug-only helper, never on the access path
	if b.data[0] == 9 {
		return 1
	}
	return 0
}
