// Package allocdiscipline is a proram-vet golden fixture for the
// hot-path allocation pass: every allocation shape inside a
// //proram:hotpath function is flagged, allocations reached through
// module-local helpers are reported at the call site with the helper
// chain, and the exemptions (doomed panic paths, justified helper
// allocations, hot callees checked in their own right) stay quiet.
package allocdiscipline

import "fmt"

type ring struct {
	buf []uint64
}

type entry struct{ k, v uint64 }

// push is the direct-allocation case.
//
//proram:hotpath fixture: the simulated access path
func (r *ring) push(v uint64) {
	r.buf = append(r.buf, v) // want `append may grow its backing array in //proram:hotpath function push`
}

//proram:hotpath fixture: the simulated access path
func makeScratch() []uint64 {
	return make([]uint64, 8) // want `make allocates in //proram:hotpath function makeScratch`
}

//proram:hotpath fixture: the simulated access path
func concat(a, b string) string {
	return a + b // want `string concatenation allocates in //proram:hotpath function concat`
}

//proram:hotpath fixture: the simulated access path
func capture(n int) func() int {
	return func() int { return n } // want `closure captures escape to the heap in //proram:hotpath function capture`
}

//proram:hotpath fixture: the simulated access path
func box(k, v uint64) *entry {
	return &entry{k: k, v: v} // want `composite literal escapes to the heap in //proram:hotpath function box`
}

//proram:hotpath fixture: the simulated access path
func toBytes(s string) []byte {
	return []byte(s) // want `string/byte-slice conversion copies in //proram:hotpath function toBytes`
}

//proram:hotpath fixture: the simulated access path
func render(n int) string {
	return fmt.Sprintf("%d", n) // want `fmt\.Sprintf allocates in //proram:hotpath function render`
}

func worker() {}

//proram:hotpath fixture: the simulated access path
func spawns() {
	go worker() // want `go statement allocates in //proram:hotpath function spawns`
}

//proram:hotpath fixture: the simulated access path
func literals() int {
	xs := []int{1, 2}  // want `slice literal allocates in //proram:hotpath function literals`
	m := map[int]int{} // want `map literal allocates in //proram:hotpath function literals`
	return len(xs) + len(m)
}

// grow allocates; hot callers see it through its summary.
func grow(s []uint64) []uint64 {
	return append(s, 0)
}

//proram:hotpath fixture: the simulated access path
func useGrow(s []uint64) []uint64 {
	return grow(s) // want `call to grow allocates \(append may grow its backing array at internal/analysis/testdata/src/allocdiscipline/allocdiscipline\.go:\d+\) in //proram:hotpath function useGrow`
}

func viaGrow(s []uint64) []uint64 {
	return grow(s)
}

//proram:hotpath fixture: the simulated access path
func useViaGrow(s []uint64) []uint64 {
	return viaGrow(s) // want `call to viaGrow → grow allocates \(append may grow its backing array at .*\) in //proram:hotpath function useViaGrow`
}

// checked allocates only on a path every exit of which panics: failure
// handling, not steady-state work.
//
//proram:hotpath fixture: the simulated access path
func checked(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("negative: %d", n))
	}
	return n * 2
}

// warmUp is not hot: it may allocate freely.
func warmUp() []uint64 {
	return make([]uint64, 1024)
}

//proram:hotpath fixture: the simulated access path
func allowedAlloc() []uint64 {
	return make([]uint64, 4) //proram:allow allocdiscipline fixture: one-time warm-up inside the hot function
}

// pool's justified allocation is exempt for every hot caller.
func pool() []uint64 {
	return make([]uint64, 4) //proram:allow allocdiscipline fixture: amortized warm-up, measured allocation-free at steady state
}

//proram:hotpath fixture: the simulated access path
func usePool() []uint64 {
	return pool()
}

//proram:hotpath fixture: the simulated access path
func hotLeaf(s []uint64) []uint64 {
	return append(s, 1) // want `append may grow its backing array in //proram:hotpath function hotLeaf`
}

// hotCaller's callee is itself hot: checked in its own right, not
// re-reported here.
//
//proram:hotpath fixture: the simulated access path
func hotCaller(s []uint64) []uint64 {
	return hotLeaf(s)
}

//proram:hotpath fixture: floating directive, attached to nothing // want `//proram:hotpath is not attached to a function declaration`
var scratch []uint64

var _ = scratch
var _ = warmUp
