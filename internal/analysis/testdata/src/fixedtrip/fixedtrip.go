// Package fixedtrip is a proram-vet golden fixture for the trip-count
// pass: secret-steered loop bounds must be flagged in the oblivious
// scope, and every //proram:fixedtrip-marked loop must carry a static
// constant-trip proof.
package fixedtrip

type block struct {
	id uint64
	//proram:secret fixture payload bytes
	data []byte
}

func sink(n int) {}

// paddedRound mirrors the scheduler's RoundSlots padding loop: counted,
// public invariant bound, single constant step — the proof holds.
func paddedRound(slots int) int {
	n := 0
	//proram:fixedtrip fixture: pads to exactly slots accesses
	for i := 0; i < slots; i++ {
		n++
	}
	return n
}

// flushPad proves a marked range loop over a slice.
func flushPad(lanes []int) int {
	n := 0
	//proram:fixedtrip fixture: one pass over the fixed lane set
	for range lanes {
		n++
	}
	return n
}

// secretPadding is the seeded violation of the issue: the padding budget
// is steered by payload bytes, so the trip count leaks.
func secretPadding(b block, slots int) int {
	pad := slots - int(b.data[0])
	n := 0
	for i := 0; i < pad; i++ { // want `loop condition depends on secret data`
		n++
	}
	return n
}

// secretContainer ranges over a container derived from the payload.
func secretContainer(b block) int {
	n := 0
	for range b.data[1:] { // want `range loop iterates over a secret-derived container`
		n++
	}
	return n
}

// earlyBreak claims a fixed trip but can leave early.
func earlyBreak(slots int) int {
	n := 0
	//proram:fixedtrip fixture: claims a fixed trip
	for i := 0; i < slots; i++ { // want `the body can leave the loop early`
		if n > 3 {
			break
		}
		n++
	}
	return n
}

// overshoot uses a != condition, which a missed step skips past.
func overshoot(slots int) int {
	n := 0
	//proram:fixedtrip fixture: claims a fixed trip
	for i := 0; i != slots; i++ { // want `a != or == condition can overshoot`
		n++
	}
	return n
}

// movingBound re-reads a function each iteration.
func movingBound(get func() int) int {
	n := 0
	//proram:fixedtrip fixture: claims a fixed trip
	for i := 0; i < get(); i++ { // want `not provably loop-invariant`
		n++
	}
	return n
}

// secretBound claims a fixed trip over a payload-derived bound.
func secretBound(b block) int {
	n := 0
	limit := int(b.data[0])
	//proram:fixedtrip fixture: claims a fixed trip
	for i := 0; i < limit; i++ { // want `loop condition depends on secret data`
		n++
	}
	return n
}

// mapTrip claims a fixed trip ranging over a map.
func mapTrip(m map[int]int) int {
	n := 0
	//proram:fixedtrip fixture: claims a fixed trip
	for range m { // want `ranging over a map`
		n++
	}
	return n
}

// inLiteral hides a marked loop inside a function literal.
func inLiteral(slots int) int {
	n := 0
	f := func() {
		//proram:fixedtrip fixture: claims a fixed trip
		for i := 0; i < slots; i++ { // want `inside a function literal`
			n++
		}
	}
	f()
	return n
}

// steppedTwice steps the counter in the body as well as the post.
func steppedTwice(slots int) int {
	n := 0
	//proram:fixedtrip fixture: claims a fixed trip
	for i := 0; i < slots; i++ { // want `stepped more than once per iteration`
		i++
		n++
	}
	return n
}

// downCount proves a decreasing counted loop.
func downCount(slots int) int {
	n := 0
	//proram:fixedtrip fixture: drains exactly slots entries
	for i := slots; i > 0; i-- {
		n++
	}
	return n
}

// publicLenLoop: a loop over the payload's length is public by
// construction (lengths are sanitized) and needs no directive.
func publicLenLoop(b block) int {
	n := 0
	for i := 0; i < len(b.data); i++ {
		n++
	}
	sink(int(b.id))
	return n
}
