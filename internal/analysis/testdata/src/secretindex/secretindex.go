// Package secretindex is a proram-vet golden fixture for the
// secret-index sink: a slice, array or map index (or slice bound)
// derived from secret payload bytes selects which addresses are touched
// — the classic ORAM access-pattern leak, dangerous even when control
// flow is perfectly straight-line. Public indexes into secret data are
// fine; it is the index value that matters, not the indexed container.
package secretindex

type block struct {
	id uint64
	//proram:secret fixture payload bytes
	data []byte
}

var table [256]uint64

var cache = map[byte]uint64{}

func directIndex(b block) uint64 {
	return table[b.data[0]] // want `memory index depends on secret block payload bytes`
}

func viaLocal(b block) uint64 {
	i := int(b.data[1])
	return table[i] // want `memory index depends on secret block payload bytes`
}

// lookup's summary records that parameter i reaches a memory index.
func lookup(i byte) uint64 {
	return table[i]
}

func viaHelper(b block) uint64 {
	return lookup(b.data[2]) // want `secret block payload bytes flow into parameter "i" of lookup and reach a memory index`
}

func mapIndex(b block) uint64 {
	return cache[b.data[3]] // want `memory index depends on secret block payload bytes`
}

func sliceBound(b block) []byte {
	return b.data[:b.data[4]] // want `slice bound depends on secret block payload bytes`
}

// Indexing *into* the payload with a public index does not leak: the
// address touched is public even though the value read is secret.
func publicIndex(b block) byte {
	return b.data[int(b.id)%len(b.data)]
}

func declassifiedIndex(b block) uint64 {
	v := b.data[5] //proram:public fixture: the routing byte is public by protocol
	return table[v]
}

func allowedIndex(b block) uint64 {
	//proram:allow oblivious fixture: debug-only table, never on the access path
	return table[b.data[6]]
}
