package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// buildTestSSA type-checks a single-function snippet and returns the
// SSA view of its first function declaration.
func buildTestSSA(t *testing.T, src string) *ssaFunc {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "ssafixture.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	if _, err := (&types.Config{}).Check("ssafixture", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Name: "ssafixture", Info: info}
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok {
			return buildSSA(pkg, fn)
		}
	}
	t.Fatal("no function in snippet")
	return nil
}

// objByName finds the unique variable object with the given name.
func objByName(t *testing.T, f *ssaFunc, name string) types.Object {
	t.Helper()
	var found types.Object
	for _, obj := range f.pkg.Info.Defs {
		if obj != nil && obj.Name() == name {
			if found != nil && found != obj {
				t.Fatalf("variable %s defined twice in snippet", name)
			}
			found = obj
		}
	}
	if found == nil {
		t.Fatalf("no variable %s in snippet", name)
	}
	return found
}

func TestSSADominators(t *testing.T) {
	f := buildTestSSA(t, `package p
func f(c bool) int {
	x := 1
	if c {
		x = 2
	} else {
		x = 3
	}
	return x
}
`)
	if f.idom[f.cfg.entry.index] != f.cfg.entry.index {
		t.Fatal("entry must be its own immediate dominator")
	}
	// The join block is the one merging both arms; its immediate
	// dominator is the branching entry, not either arm.
	join := -1
	for i := range f.cfg.blocks {
		if f.reach[i] && len(f.preds[i]) == 2 {
			if join != -1 {
				t.Fatal("expected a single two-predecessor join block")
			}
			join = i
		}
	}
	if join == -1 {
		t.Fatal("no join block found")
	}
	// Neither arm dominates the join; its immediate dominator is the
	// branching block above both, whichever block that condition landed in.
	for _, p := range f.preds[join] {
		if f.idom[join] == p {
			t.Fatalf("join block %d is immediately dominated by one arm (%d)", join, p)
		}
		if !f.dominates(f.idom[join], p) {
			t.Fatalf("idom %d of the join does not dominate arm %d", f.idom[join], p)
		}
	}
	for i := range f.cfg.blocks {
		if f.reach[i] && i != f.cfg.entry.index && !f.dominates(f.cfg.entry.index, i) {
			t.Fatalf("entry does not dominate reachable block %d", i)
		}
	}
}

func TestSSAPhiPlacementDiamond(t *testing.T) {
	f := buildTestSSA(t, `package p
func f(c bool) int {
	x := 1
	if c {
		x = 2
	}
	return x
}
`)
	var phis []*ssaValue
	for _, bp := range f.phis {
		phis = append(phis, bp...)
	}
	if len(phis) != 1 {
		t.Fatalf("expected exactly one phi for x, got %d", len(phis))
	}
	phi := phis[0]
	if phi.obj != objByName(t, f, "x") {
		t.Fatalf("phi is for %v, want x", phi.obj)
	}
	if len(phi.phiArgs) != 2 {
		t.Fatalf("phi has %d args, want 2", len(phi.phiArgs))
	}
	for _, a := range phi.phiArgs {
		if a < 0 {
			t.Fatal("both phi arguments must be defined: x is assigned on every path")
		}
		if f.vals[a].kind != ssaExpr {
			t.Fatalf("phi argument kind %d, want ssaExpr", f.vals[a].kind)
		}
	}
	// The use in `return x` resolves to the phi, not either arm.
	resolved := false
	for id, vid := range f.useOf {
		if id.Name == "x" && vid == phi.id {
			resolved = true
		}
	}
	if !resolved {
		t.Fatal("the merged read of x does not resolve to its phi")
	}
}

func TestSSALoopPhiAndStep(t *testing.T) {
	f := buildTestSSA(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}
`)
	iObj := objByName(t, f, "i")
	sObj := objByName(t, f, "s")
	var iPhi, sPhi *ssaValue
	for _, bp := range f.phis {
		for _, phi := range bp {
			switch phi.obj {
			case iObj:
				iPhi = phi
			case sObj:
				sPhi = phi
			}
		}
	}
	if iPhi == nil || sPhi == nil {
		t.Fatalf("loop head phis missing: i=%v s=%v", iPhi, sPhi)
	}
	// The step i++ reads the head phi and the phi folds the step back in.
	var step *ssaValue
	for _, v := range f.vals {
		if v.kind == ssaStep && v.obj == iObj {
			step = v
		}
	}
	if step == nil {
		t.Fatal("no ssaStep for i++")
	}
	if step.op != token.ADD || step.expr != nil {
		t.Fatalf("i++ should normalize to ADD with nil expr, got %v %v", step.op, step.expr)
	}
	if step.operand != iPhi.id {
		t.Fatalf("step reads value %d, want the head phi %d", step.operand, iPhi.id)
	}
	foldsBack := false
	for _, a := range iPhi.phiArgs {
		if a == step.id {
			foldsBack = true
		}
	}
	if !foldsBack {
		t.Fatal("the back edge does not carry the stepped i into the phi")
	}
}

func TestSSALoopBlocks(t *testing.T) {
	f := buildTestSSA(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		if i == 3 {
			s++
		}
		s += i
	}
	return s
}
`)
	if len(f.cfg.loops) != 1 {
		t.Fatalf("expected one loop, got %d", len(f.cfg.loops))
	}
	for _, head := range f.cfg.loops {
		loop := f.loopBlocks(head.index)
		if !loop[head.index] {
			t.Fatal("loop must contain its head")
		}
		if len(loop) < 3 {
			t.Fatalf("loop with a branch in the body should span at least 3 blocks, got %d", len(loop))
		}
		for bi := range loop {
			if !f.dominates(head.index, bi) {
				t.Fatalf("natural loop block %d is not dominated by the head", bi)
			}
		}
	}
}

func TestSSAAddressTakenUntracked(t *testing.T) {
	f := buildTestSSA(t, `package p
func f() int {
	x := 1
	p := &x
	*p = 2
	return x
}
`)
	if f.tracked[objByName(t, f, "x")] {
		t.Fatal("x's address escapes; it must not be tracked")
	}
}

func TestSSAElementAddressKeepsTracking(t *testing.T) {
	f := buildTestSSA(t, `package p
func f(s []int) int {
	e := &s[0]
	*e = 2
	return s[1]
}
`)
	if !f.tracked[objByName(t, f, "s")] {
		t.Fatal("&s[0] escapes one element, not the slice header; s must stay tracked")
	}
}

func TestSSARangeOverIntKey(t *testing.T) {
	f := buildTestSSA(t, `package p
func f(n int) int {
	s := 0
	for i := range n {
		s += i
	}
	return s
}
`)
	iObj := objByName(t, f, "i")
	var key *ssaValue
	for _, v := range f.vals {
		if v.kind == ssaRangeKey && v.obj == iObj {
			key = v
		}
	}
	if key == nil {
		t.Fatal("range-over-int key has no ssaRangeKey definition")
	}
	resolved := false
	for id, vid := range f.useOf {
		if id.Name == "i" && vid == key.id {
			resolved = true
		}
	}
	if !resolved {
		t.Fatal("the body's read of i does not resolve to the range key binding")
	}
}
