package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// SeedPlumbing verifies that every exported constructor in a package
// that consumes proram/internal/rng derives its generator's seed from a
// caller-supplied parameter instead of defaulting one internally. A
// constructor that hard-codes its seed silently correlates (or
// decorrelates) experiments that the caller believes share one seed knob
// — exactly the reproducibility bug DESIGN.md's "every stochastic
// component takes a seed" rule exists to prevent.
func SeedPlumbing() *Pass {
	p := &Pass{
		Name: "seedplumbing",
		Doc:  "exported constructors must thread caller-supplied seeds into rng construction",
	}
	p.Run = func(u *Unit) {
		rngPath := u.Prog.ModulePath + "/internal/rng"
		if u.Pkg.Path == rngPath || !importsPath(u.Pkg, rngPath) {
			return
		}
		for _, f := range u.Pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				if !fn.Name.IsExported() || !strings.HasPrefix(fn.Name.Name, "New") {
					continue
				}
				params := paramObjects(u.Pkg.Info, fn)
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					pkgPath, fname := calleePackageFunc(u.Pkg.Info, call)
					if pkgPath != rngPath || fname != "New" || len(call.Args) != 1 {
						return true
					}
					if !derivesFromParams(u.Pkg.Info, call.Args[0], params) {
						u.Reportf(call.Pos(), "%s seeds its RNG internally; take a seed (or a config with a Seed field) and pass it through so callers control reproducibility", fn.Name.Name)
					}
					return true
				})
			}
		}
	}
	return p
}

// importsPath reports whether any file of the package imports path.
func importsPath(pkg *Package, path string) bool {
	for _, imp := range pkg.importPaths() {
		if imp == path {
			return true
		}
	}
	return false
}

// paramObjects collects the parameter and receiver objects of fn plus
// the parameters of any function literals nested in its body.
func paramObjects(info *types.Info, fn *ast.FuncDecl) map[types.Object]bool {
	params := make(map[types.Object]bool)
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	collect(fn.Recv)
	collect(fn.Type.Params)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			collect(lit.Type.Params)
		}
		return true
	})
	return params
}

// derivesFromParams reports whether the expression references at least
// one constructor parameter (directly or through field selection), i.e.
// whether the seed value is caller-controlled.
func derivesFromParams(info *types.Info, e ast.Expr, params map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && params[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}
