package analysis

import (
	"go/ast"
	"go/types"
)

// SeedPlumbing verifies that every exported constructor in the module
// derives its generator's seed from a caller-supplied parameter instead
// of defaulting one internally. A constructor that hard-codes its seed
// silently correlates (or decorrelates) experiments that the caller
// believes share one seed knob — exactly the reproducibility bug
// DESIGN.md's "every stochastic component takes a seed" rule exists to
// prevent.
//
// The pass runs on call-graph reachability: the function summaries
// (summary.go) record every rng.New construction a function performs,
// directly or transitively through module-local helpers, together with
// the set of parameters whose values feed the seed. An exported New*
// constructor owning a site with an empty parameter set — no matter how
// many helpers deep the rng.New call hides — is flagged at the call
// that reaches it. Sites whose seed is caller-controlled somewhere down
// the chain, and sites already reported at a nested exported
// constructor, are not re-reported.
func SeedPlumbing() *Pass {
	p := &Pass{
		Name:    "seedplumbing",
		Aliases: []string{"seed"},
		Doc:     "exported constructors must thread caller-supplied seeds into rng construction (call-graph reachability)",
	}
	p.Run = func(u *Unit) {
		rngPath := u.Prog.ModulePath + "/internal/rng"
		if u.Pkg.Path == rngPath {
			return
		}
		sums := u.Prog.taintSummaries()
		for _, f := range u.Pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := u.Pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				sum := sums.byFunc[obj]
				if sum == nil || !isExportedConstructor(sum.node) {
					continue
				}
				for _, site := range sum.rngSites {
					if site.mask != 0 {
						continue // caller-controlled (or untraceable) seed
					}
					if site.via == "" {
						u.Reportf(site.pos, "%s seeds its RNG internally; take a seed (or a config with a Seed field) and pass it through so callers control reproducibility", fn.Name.Name)
					} else {
						u.Reportf(site.pos, "%s seeds its RNG internally (through %s); take a seed (or a config with a Seed field) and pass it through so callers control reproducibility", fn.Name.Name, site.via)
					}
				}
			}
		}
	}
	return p
}
