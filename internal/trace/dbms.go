package trace

import (
	"fmt"

	"proram/internal/rng"
)

// YCSBConfig models the YCSB key-value workload of §5.4 running on the
// DBMS of [38]: Zipfian record selection with each operation reading or
// updating a whole record, which the storage engine touches sequentially.
// Whole-record scans are exactly the neighbor-block spatial locality the
// dynamic super block scheme detects.
type YCSBConfig struct {
	Ops        uint64
	Records    uint64 // number of records in the table
	RecordSize uint64 // bytes per record (1 KB in YCSB's default schema)
	Theta      float64
	// ReadFraction is the fraction of point reads (the rest are updates).
	ReadFraction float64
	// Gap is the mean compute gap between memory operations (index lookup,
	// comparison and copy work between touches).
	Gap  uint32
	Seed uint64
}

// DefaultYCSB returns a YCSB-B-flavoured configuration (95% reads,
// Zipf 0.99, 1 KB records).
func DefaultYCSB(ops uint64) YCSBConfig {
	return YCSBConfig{
		Ops:          ops,
		Records:      8 << 10,
		RecordSize:   1024,
		Theta:        0.99,
		ReadFraction: 0.95,
		Gap:          6,
		Seed:         301,
	}
}

// Validate reports whether the configuration is usable.
func (c YCSBConfig) Validate() error {
	if c.Ops == 0 || c.Records == 0 {
		return fmt.Errorf("trace: ycsb: Ops and Records must be positive")
	}
	if c.RecordSize < Stride {
		return fmt.Errorf("trace: ycsb: RecordSize %d below stride", c.RecordSize)
	}
	if c.Theta <= 0 || c.Theta >= 1 {
		return fmt.Errorf("trace: ycsb: Theta %v out of (0,1)", c.Theta)
	}
	if c.ReadFraction < 0 || c.ReadFraction > 1 {
		return fmt.Errorf("trace: ycsb: ReadFraction out of [0,1]")
	}
	return nil
}

// YCSB generates the record-structured reference stream.
type YCSB struct {
	cfg  YCSBConfig
	rnd  *rng.Source
	zipf *rng.Zipf
	n    uint64
	// in-progress record scan
	recBase uint64
	recOff  uint64
	write   bool
}

// NewYCSB builds the generator; it panics on invalid configuration.
func NewYCSB(cfg YCSBConfig) *YCSB {
	if err := cfg.Validate(); err != nil {
		//proram:invariant configuration errors are programming errors; public entry points run Config.Validate before construction
		panic(err)
	}
	r := rng.New(cfg.Seed)
	return &YCSB{cfg: cfg, rnd: r, zipf: rng.NewZipf(r.Fork(), cfg.Records, cfg.Theta)}
}

// Len implements Generator.
func (y *YCSB) Len() uint64 { return y.cfg.Ops }

// Next implements Generator.
func (y *YCSB) Next() (Op, bool) {
	if y.n >= y.cfg.Ops {
		return Op{}, false
	}
	y.n++
	if y.recOff >= y.cfg.RecordSize {
		// Start the next transaction: pick a record by Zipf popularity.
		rec := y.zipf.Next()
		y.recBase = rec * y.cfg.RecordSize
		y.recOff = 0
		y.write = y.rnd.Float64() >= y.cfg.ReadFraction
	}
	addr := y.recBase + y.recOff
	y.recOff += Stride
	gap := y.cfg.Gap
	if gap > 1 {
		gap = gap/2 + uint32(y.rnd.Uint64n(uint64(gap)))
	}
	return Op{Gap: gap, Addr: addr, Write: y.write}, true
}

// TPCC returns the TPC-C profile: an order-entry mix touching many small
// rows across customer/stock/order tables with limited spatial locality,
// a moderate hot set (warehouse/district rows) and a high write fraction.
// The paper reports only ~5% PrORAM gain here, driven by the weaker
// locality this profile encodes.
func TPCC(ops uint64) ModelParams {
	return ModelParams{
		Name:            "TPCC",
		Ops:             ops,
		WorkingSetBytes: mb(1),
		HotSetBytes:     kb(192),
		HotFraction:     0.90,
		HotSparse:       true,
		SeqFraction:     0.30,
		RunLen:          3,
		Gap:             14,
		WriteFraction:   0.45,
		Seed:            302,
	}
}
