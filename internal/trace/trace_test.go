package trace

import (
	"testing"
)

func collect(g Generator) []Op {
	var ops []Op
	for {
		op, ok := g.Next()
		if !ok {
			return ops
		}
		ops = append(ops, op)
	}
}

func TestSyntheticLength(t *testing.T) {
	g := NewSynthetic(SyntheticConfig{
		Ops: 1000, WorkingSetBytes: 1 << 20, LocalityFraction: 0.5,
		RunLen: 8, Gap: 10, WriteFraction: 0.3, Seed: 1,
	})
	ops := collect(g)
	if uint64(len(ops)) != g.Len() || len(ops) != 1000 {
		t.Fatalf("generated %d ops, want 1000", len(ops))
	}
	// Exhausted generator stays exhausted.
	if _, ok := g.Next(); ok {
		t.Fatal("generator produced past Len")
	}
}

func TestSyntheticAddressesInRange(t *testing.T) {
	const ws = 1 << 20
	g := NewSynthetic(SyntheticConfig{
		Ops: 5000, WorkingSetBytes: ws, LocalityFraction: 0.7,
		RunLen: 8, Gap: 4, WriteFraction: 0.2, Seed: 2,
	})
	for _, op := range collect(g) {
		if op.Addr >= ws {
			t.Fatalf("address %d outside working set", op.Addr)
		}
		if op.Addr%Stride != 0 {
			t.Fatalf("address %d not stride-aligned", op.Addr)
		}
	}
}

// sequentiality measures the fraction of ops whose address is exactly one
// stride after the previous one.
func sequentiality(ops []Op) float64 {
	seq := 0
	for i := 1; i < len(ops); i++ {
		if ops[i].Addr == ops[i-1].Addr+Stride {
			seq++
		}
	}
	return float64(seq) / float64(len(ops)-1)
}

func TestSyntheticLocalityKnob(t *testing.T) {
	gen := func(loc float64) []Op {
		return collect(NewSynthetic(SyntheticConfig{
			Ops: 20000, WorkingSetBytes: 1 << 22, LocalityFraction: loc,
			RunLen: 16, Gap: 4, WriteFraction: 0, Seed: 3,
		}))
	}
	low := sequentiality(gen(0.1))
	high := sequentiality(gen(0.9))
	if high < low+0.3 {
		t.Fatalf("locality knob ineffective: seq(0.1)=%.3f seq(0.9)=%.3f", low, high)
	}
	zero := sequentiality(gen(0))
	if zero > 0.02 {
		t.Fatalf("zero locality still sequential: %.3f", zero)
	}
}

func TestSyntheticPhaseChange(t *testing.T) {
	g := NewSynthetic(SyntheticConfig{
		Ops: 8000, WorkingSetBytes: 1 << 20, LocalityFraction: 0.5,
		RunLen: 16, Gap: 4, PhaseLen: 2000, Seed: 4,
	})
	ops := collect(g)
	// In even phases sequential accesses live in the lower half; in odd
	// phases in the upper half. Check that both halves see sequential runs
	// in their respective phases.
	half := uint64(1 << 19)
	seqLowPhase0, seqHighPhase1 := 0, 0
	for i := 1; i < len(ops); i++ {
		if ops[i].Addr != ops[i-1].Addr+Stride {
			continue
		}
		switch {
		case i < 2000 && ops[i].Addr < half:
			seqLowPhase0++
		case i >= 2000 && i < 4000 && ops[i].Addr >= half:
			seqHighPhase1++
		}
	}
	if seqLowPhase0 < 100 || seqHighPhase1 < 100 {
		t.Fatalf("phases not alternating: low@p0=%d high@p1=%d", seqLowPhase0, seqHighPhase1)
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	cfg := SyntheticConfig{Ops: 500, WorkingSetBytes: 1 << 20,
		LocalityFraction: 0.5, RunLen: 8, Gap: 10, WriteFraction: 0.3, Seed: 5}
	a := collect(NewSynthetic(cfg))
	b := collect(NewSynthetic(cfg))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at op %d", i)
		}
	}
}

func TestSyntheticValidation(t *testing.T) {
	bad := []SyntheticConfig{
		{Ops: 0, WorkingSetBytes: 1 << 20, RunLen: 1},
		{Ops: 10, WorkingSetBytes: 64, RunLen: 1},
		{Ops: 10, WorkingSetBytes: 1 << 20, LocalityFraction: 1.5, RunLen: 1},
		{Ops: 10, WorkingSetBytes: 1 << 20, RunLen: 0},
		{Ops: 10, WorkingSetBytes: 1 << 20, RunLen: 1, WriteFraction: -0.1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestSplash2Suite(t *testing.T) {
	suite := Splash2(1000)
	if len(suite) != 14 {
		t.Fatalf("Splash2 has %d entries, want 14", len(suite))
	}
	names := map[string]bool{}
	for _, p := range suite {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if names[p.Name] {
			t.Errorf("duplicate benchmark %s", p.Name)
		}
		names[p.Name] = true
		ops := collect(NewModel(p))
		if len(ops) != 1000 {
			t.Errorf("%s generated %d ops", p.Name, len(ops))
		}
	}
	// Memory-intensive classification covers exactly the tail of the list.
	if Splash2MemoryIntensive("water_ns") || !Splash2MemoryIntensive("ocean_c") {
		t.Fatal("memory-intensive classification wrong")
	}
}

func TestSPEC06Suite(t *testing.T) {
	suite := SPEC06(1000)
	if len(suite) != 10 {
		t.Fatalf("SPEC06 has %d entries, want 10", len(suite))
	}
	for _, p := range suite {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	if !SPEC06MemoryIntensive("mcf") || SPEC06MemoryIntensive("h264") {
		t.Fatal("memory-intensive classification wrong")
	}
}

func TestModelHotColdSplit(t *testing.T) {
	p := ModelParams{
		Name: "x", Ops: 20000, WorkingSetBytes: mb(8), HotSetBytes: kb(64),
		HotFraction: 0.9, SeqFraction: 0.5, RunLen: 8, Gap: 4, Seed: 6,
	}
	ops := collect(NewModel(p))
	hot := 0
	for _, op := range ops {
		if op.Addr < kb(64) {
			hot++
		}
	}
	frac := float64(hot) / float64(len(ops))
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("hot fraction %.3f, want ~0.9", frac)
	}
}

func TestModelLocalityOrdering(t *testing.T) {
	// ocean_c must have a much more sequential cold stream than volrend.
	suite := Splash2(30000)
	seqOf := func(name string) float64 {
		p := ByName(suite, name)[0]
		p.HotFraction = 0 // isolate the cold stream
		return sequentiality(collect(NewModel(p)))
	}
	ocean := seqOf("ocean_c")
	vol := seqOf("volrend")
	if ocean < vol+0.3 {
		t.Fatalf("locality ordering broken: ocean_c %.3f volrend %.3f", ocean, vol)
	}
}

func TestByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown name did not panic")
		}
	}()
	ByName(Splash2(10), "nosuch")
}

func TestYCSBRecordScans(t *testing.T) {
	cfg := DefaultYCSB(20000)
	g := NewYCSB(cfg)
	ops := collect(g)
	if uint64(len(ops)) != cfg.Ops {
		t.Fatalf("generated %d", len(ops))
	}
	// Within a record scan, addresses advance by Stride; scans are
	// RecordSize/Stride = 16 ops long, so sequentiality must be ~15/16.
	if s := sequentiality(ops); s < 0.85 {
		t.Fatalf("YCSB sequentiality %.3f, want ~0.94", s)
	}
	// Addresses stay within the table.
	max := cfg.Records * cfg.RecordSize
	for _, op := range ops {
		if op.Addr >= max {
			t.Fatalf("address %d outside table", op.Addr)
		}
	}
}

func TestYCSBZipfSkew(t *testing.T) {
	cfg := DefaultYCSB(50000)
	g := NewYCSB(cfg)
	recCount := map[uint64]int{}
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		recCount[op.Addr/cfg.RecordSize]++
	}
	// The head records must dominate.
	total := 0
	head := 0
	for rec, n := range recCount {
		total += n
		if rec < cfg.Records/10 {
			head += n
		}
	}
	if frac := float64(head) / float64(total); frac < 0.4 {
		t.Fatalf("YCSB head mass %.3f too small", frac)
	}
}

func TestYCSBWriteFraction(t *testing.T) {
	cfg := DefaultYCSB(40000)
	g := NewYCSB(cfg)
	writes := 0
	n := 0
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		if op.Write {
			writes++
		}
		n++
	}
	frac := float64(writes) / float64(n)
	if frac < 0.01 || frac > 0.12 {
		t.Fatalf("write fraction %.3f, want ~0.05", frac)
	}
}

func TestTPCCProfile(t *testing.T) {
	p := TPCC(1000)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.WriteFraction < 0.3 {
		t.Fatal("TPC-C should be write-heavy")
	}
}

func TestYCSBValidation(t *testing.T) {
	bad := DefaultYCSB(0)
	if err := bad.Validate(); err == nil {
		t.Fatal("zero ops accepted")
	}
	c := DefaultYCSB(10)
	c.Theta = 1.5
	if err := c.Validate(); err == nil {
		t.Fatal("bad theta accepted")
	}
}

func TestTake(t *testing.T) {
	g := NewSynthetic(SyntheticConfig{
		Ops: 100, WorkingSetBytes: 1 << 20, LocalityFraction: 0.5,
		RunLen: 4, Gap: 2, Seed: 9,
	})
	head := Take(g, 30)
	if head.Len() != 30 {
		t.Fatalf("Take Len = %d", head.Len())
	}
	if got := len(collect(head)); got != 30 {
		t.Fatalf("Take yielded %d ops", got)
	}
	// The remainder continues where the prefix stopped.
	if got := len(collect(g)); got != 70 {
		t.Fatalf("remainder yielded %d ops", got)
	}
	// Take larger than the stream is bounded by the stream.
	g2 := NewSynthetic(SyntheticConfig{
		Ops: 10, WorkingSetBytes: 1 << 20, LocalityFraction: 0.5,
		RunLen: 4, Gap: 2, Seed: 9,
	})
	if got := len(collect(Take(g2, 50))); got != 10 {
		t.Fatalf("oversized Take yielded %d ops", got)
	}
}
