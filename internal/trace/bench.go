package trace

import (
	"fmt"

	"proram/internal/rng"
)

// ModelParams is the statistical profile of one benchmark: the handful of
// properties the memory system (and therefore PrORAM) actually observes.
type ModelParams struct {
	Name string
	// Ops is the number of memory operations generated (scaled by the
	// harness for quick vs full runs).
	Ops uint64
	// WorkingSetBytes is the cold data footprint.
	WorkingSetBytes uint64
	// HotSetBytes is a small frequently-reused region; accesses to it
	// mostly hit in the caches. HotFraction of operations go there —
	// together these set the benchmark's memory intensity.
	HotSetBytes uint64
	HotFraction float64
	// SeqFraction is the probability a cold access continues a sequential
	// run; RunLen is the expected run length in Stride units. Together
	// they set the spatial locality super blocks can exploit.
	SeqFraction float64
	RunLen      int
	// Gap is the mean compute gap between memory operations.
	Gap uint32
	// WriteFraction is the store probability.
	WriteFraction float64
	// HotSparse scatters the hot set over alternating blocks (only even
	// neighbors are ever touched). Pointer-chasing benchmarks reuse lines
	// without their neighbors being hot, which is what makes the static
	// super block scheme lose on them; dense hot sets model array-tiled
	// kernels whose neighbors are hot together.
	HotSparse bool
	// PhaseLen optionally alternates the cold region's locality pattern
	// every PhaseLen ops (program phases, §5.3.2).
	PhaseLen uint64
	// Seed drives the generator.
	Seed uint64
}

// Validate reports whether the parameters are usable.
func (p ModelParams) Validate() error {
	if p.Ops == 0 {
		return fmt.Errorf("trace: %s: Ops must be positive", p.Name)
	}
	if p.WorkingSetBytes < 4*Stride || p.HotSetBytes < Stride {
		return fmt.Errorf("trace: %s: regions too small", p.Name)
	}
	if p.HotFraction < 0 || p.HotFraction > 1 || p.SeqFraction < 0 || p.SeqFraction > 1 ||
		p.WriteFraction < 0 || p.WriteFraction > 1 {
		return fmt.Errorf("trace: %s: fractions out of [0,1]", p.Name)
	}
	if p.RunLen < 1 {
		return fmt.Errorf("trace: %s: RunLen must be positive", p.Name)
	}
	return nil
}

// Model generates a benchmark's reference stream from its profile.
type Model struct {
	p      ModelParams
	rnd    *rng.Source
	n      uint64
	cursor uint64
	phase  uint64
}

// NewModel builds the generator; it panics on invalid parameters.
func NewModel(p ModelParams) *Model {
	if err := p.Validate(); err != nil {
		//proram:invariant model parameters are compiled into the benchmark suite and validated there
		panic(err)
	}
	return &Model{p: p, rnd: rng.New(p.Seed)}
}

// Name returns the benchmark name.
func (m *Model) Name() string { return m.p.Name }

// Len implements Generator.
func (m *Model) Len() uint64 { return m.p.Ops }

// Next implements Generator.
func (m *Model) Next() (Op, bool) {
	if m.n >= m.p.Ops {
		return Op{}, false
	}
	if m.p.PhaseLen > 0 && m.n > 0 && m.n%m.p.PhaseLen == 0 {
		m.phase++
		m.cursor = 0
	}
	m.n++

	var addr uint64
	coldBase := m.p.HotSetBytes // cold region follows the hot region
	if m.p.HotSparse {
		coldBase = 2 * m.p.HotSetBytes // sparse hot sets span twice the bytes
	}
	coldSize := m.p.WorkingSetBytes
	if m.rnd.Float64() < m.p.HotFraction {
		addr = m.rnd.Uint64n(m.p.HotSetBytes/Stride) * Stride
		if m.p.HotSparse {
			// Spread the hot lines over alternating blocks: the block
			// holding addr stays hot, its neighbor block never is.
			blockPair := 2 * (addr / 128)
			addr = blockPair*128 + addr%128
		}
	} else {
		// Phased models split the cold region spatially (§5.3.2): one half
		// is scanned sequentially, the other accessed randomly, and the
		// halves swap roles every phase.
		seqBase, seqSize := uint64(0), coldSize
		rndBase, rndSize := uint64(0), coldSize
		if m.p.PhaseLen > 0 {
			half := (coldSize / 2) &^ (Stride - 1)
			if m.phase%2 == 0 {
				seqBase, seqSize = 0, half
				rndBase, rndSize = half, coldSize-half
			} else {
				seqBase, seqSize = half, coldSize-half
				rndBase, rndSize = 0, half
			}
		}
		if m.rnd.Float64() < m.p.SeqFraction {
			if m.rnd.Float64() < 1.0/float64(m.p.RunLen) {
				m.cursor = m.rnd.Uint64n(seqSize/Stride) * Stride
			}
			if m.cursor >= seqSize {
				m.cursor = 0
			}
			addr = coldBase + seqBase + m.cursor
			m.cursor += Stride
			if m.cursor >= seqSize {
				m.cursor = 0
			}
		} else {
			off := m.rnd.Uint64n(rndSize/Stride) * Stride
			addr = coldBase + rndBase + off
			if m.p.PhaseLen == 0 {
				// Unphased models let a random jump seed a new run.
				m.cursor = off + Stride
			}
		}
	}

	gap := m.p.Gap
	if gap > 1 {
		gap = gap/2 + uint32(m.rnd.Uint64n(uint64(gap)))
	}
	return Op{Gap: gap, Addr: addr, Write: m.rnd.Float64() < m.p.WriteFraction}, true
}

// mb converts mebibytes to bytes.
func mb(n uint64) uint64 { return n << 20 }

// kb converts kibibytes to bytes.
func kb(n uint64) uint64 { return n << 10 }

// Splash2 returns the Splash2 suite profiles in the paper's Figure 8a
// order (ascending ORAM-over-DRAM overhead). The first seven are the
// computation-intensive group, the rest memory-intensive (overhead > 2x).
func Splash2(ops uint64) []ModelParams {
	// Cold working sets are a few MB — the footprint a looped kernel
	// streams over repeatedly — so super blocks see the reuse they need to
	// mature, exactly as in the looped Splash2 kernels.
	mk := func(name string, hotFrac float64, hot uint64, sparse bool, seq float64, run int,
		gap uint32, wr float64, seed uint64) ModelParams {
		return ModelParams{
			Name: name, Ops: ops, WorkingSetBytes: mb(1), HotSetBytes: hot,
			HotFraction: hotFrac, HotSparse: sparse, SeqFraction: seq, RunLen: run,
			Gap: gap, WriteFraction: wr, Seed: seed,
		}
	}
	phased := func(p ModelParams, phase uint64) ModelParams {
		p.PhaseLen = phase
		return p
	}
	return []ModelParams{
		mk("water_ns", 0.94, kb(192), false, 0.50, 8, 160, 0.25, 101),
		mk("water_s", 0.94, kb(192), false, 0.50, 8, 140, 0.25, 102),
		mk("radiosity", 0.93, kb(192), false, 0.50, 8, 100, 0.30, 103),
		mk("lu_c", 0.92, kb(192), false, 0.85, 24, 95, 0.30, 104),
		mk("volrend", 0.92, kb(192), true, 0.08, 2, 55, 0.15, 105),
		phased(mk("barnes", 0.91, kb(192), false, 0.50, 6, 50, 0.25, 106), ops/6),
		phased(mk("fmm", 0.90, kb(192), false, 0.50, 6, 45, 0.25, 107), ops/6),
		phased(mk("cholesky", 0.90, kb(192), false, 0.65, 12, 22, 0.30, 108), ops/8),
		phased(mk("lu_nc", 0.89, kb(192), false, 0.60, 10, 18, 0.30, 109), ops/8),
		phased(mk("raytrace", 0.88, kb(192), false, 0.55, 8, 16, 0.10, 110), ops/8),
		mk("radix", 0.88, kb(192), true, 0.12, 2, 10, 0.40, 111),
		phased(mk("fft", 0.87, kb(192), false, 0.72, 16, 11, 0.30, 112), ops/8),
		mk("ocean_c", 0.86, kb(192), false, 0.88, 32, 8, 0.30, 113),
		phased(mk("ocean_nc", 0.86, kb(192), false, 0.80, 20, 7, 0.30, 114), ops/6),
	}
}

// Splash2MemoryIntensive reports whether name is in the memory-intensive
// group (baseline ORAM overhead over DRAM above 2x, Figure 8a).
func Splash2MemoryIntensive(name string) bool {
	switch name {
	case "cholesky", "lu_nc", "raytrace", "radix", "fft", "ocean_c", "ocean_nc":
		return true
	}
	return false
}

// SPEC06 returns the SPEC06 profiles in the paper's Figure 8b order.
func SPEC06(ops uint64) []ModelParams {
	mk := func(name string, hotFrac float64, hot uint64, sparse bool, seq float64, run int,
		gap uint32, wr float64, seed uint64) ModelParams {
		return ModelParams{
			Name: name, Ops: ops, WorkingSetBytes: mb(1), HotSetBytes: hot,
			HotFraction: hotFrac, HotSparse: sparse, SeqFraction: seq, RunLen: run,
			Gap: gap, WriteFraction: wr, Seed: seed,
		}
	}
	phased := func(p ModelParams, phase uint64) ModelParams {
		p.PhaseLen = phase
		return p
	}
	return []ModelParams{
		mk("h264", 0.94, kb(192), false, 0.60, 10, 170, 0.25, 201),
		mk("hmmer", 0.94, kb(192), false, 0.50, 8, 150, 0.25, 202),
		mk("sjeng", 0.93, kb(192), true, 0.08, 2, 110, 0.20, 203),
		phased(mk("perl", 0.92, kb(192), false, 0.50, 8, 95, 0.30, 204), ops/6),
		mk("astar", 0.92, kb(192), true, 0.10, 2, 70, 0.20, 205),
		phased(mk("gobmk", 0.91, kb(192), false, 0.45, 6, 60, 0.25, 206), ops/6),
		phased(mk("gcc", 0.90, kb(192), false, 0.60, 10, 28, 0.30, 207), ops/8),
		phased(mk("bzip2", 0.89, kb(192), false, 0.70, 14, 20, 0.30, 208), ops/8),
		mk("omnet", 0.88, kb(192), true, 0.10, 2, 11, 0.30, 209),
		mk("mcf", 0.87, kb(192), true, 0.15, 2, 8, 0.20, 210),
	}
}

// SPEC06MemoryIntensive reports whether name is in the memory-intensive
// group of Figure 8b.
func SPEC06MemoryIntensive(name string) bool {
	switch name {
	case "gcc", "bzip2", "omnet", "mcf":
		return true
	}
	return false
}

// Fig5Splash2Names are the benchmarks the paper's Figure 5 uses for the
// traditional-prefetching study.
var Fig5Splash2Names = []string{"barnes", "cholesky", "lu_nc", "raytrace", "ocean_c", "ocean_nc"}

// ByName selects the named profiles, panicking on unknown names (a
// programming error in the harness).
func ByName(all []ModelParams, names ...string) []ModelParams {
	var out []ModelParams
	for _, n := range names {
		found := false
		for _, p := range all {
			if p.Name == n {
				out = append(out, p)
				found = true
				break
			}
		}
		if !found {
			//proram:invariant benchmark names come from compile-time constants in the harness, never user input
			panic(fmt.Sprintf("trace: unknown benchmark %q", n))
		}
	}
	return out
}
