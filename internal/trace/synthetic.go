package trace

import (
	"fmt"

	"proram/internal/rng"
)

// SyntheticConfig parameterizes the §5.3 microbenchmark: an array accessed
// with a sequential pattern over part of the data and a random pattern
// over the rest.
type SyntheticConfig struct {
	// Ops is the number of memory operations to generate.
	Ops uint64
	// WorkingSetBytes is the array size.
	WorkingSetBytes uint64
	// LocalityFraction is the fraction of the data accessed sequentially
	// (the Figure 6a sweep variable). The first LocalityFraction of the
	// array is scanned; the remainder is accessed at random.
	LocalityFraction float64
	// RunLen is the expected sequential-run length in Stride units before
	// the scan cursor jumps (geometric distribution). Longer runs mean
	// stronger spatial locality.
	RunLen int
	// Gap is the mean compute-cycle gap between memory operations.
	Gap uint32
	// WriteFraction is the probability an operation is a store.
	WriteFraction float64
	// PhaseLen, when nonzero, enables the Figure 6b phase-change pattern:
	// every PhaseLen operations, the sequential and random halves of the
	// array swap roles.
	PhaseLen uint64
	// Seed drives the generator's randomness.
	Seed uint64
}

// Validate reports whether the configuration is usable.
func (c SyntheticConfig) Validate() error {
	if c.Ops == 0 {
		return fmt.Errorf("trace: Ops must be positive")
	}
	if c.WorkingSetBytes < 4*Stride {
		return fmt.Errorf("trace: working set %d too small", c.WorkingSetBytes)
	}
	if c.LocalityFraction < 0 || c.LocalityFraction > 1 {
		return fmt.Errorf("trace: LocalityFraction %v out of [0,1]", c.LocalityFraction)
	}
	if c.RunLen < 1 {
		return fmt.Errorf("trace: RunLen must be positive")
	}
	if c.WriteFraction < 0 || c.WriteFraction > 1 {
		return fmt.Errorf("trace: WriteFraction %v out of [0,1]", c.WriteFraction)
	}
	return nil
}

// Synthetic is the §5.3 microbenchmark generator.
type Synthetic struct {
	cfg    SyntheticConfig
	rnd    *rng.Source
	n      uint64
	cursor uint64 // sequential scan position (bytes, within the seq region)
	phase  uint64
}

// NewSynthetic builds the generator. It panics on invalid configuration
// (the public API validates earlier).
func NewSynthetic(cfg SyntheticConfig) *Synthetic {
	if err := cfg.Validate(); err != nil {
		//proram:invariant configuration errors are programming errors; public entry points run Config.Validate before construction
		panic(err)
	}
	return &Synthetic{cfg: cfg, rnd: rng.New(cfg.Seed)}
}

// Len implements Generator.
func (s *Synthetic) Len() uint64 { return s.cfg.Ops }

// regions returns the [start, size) of the sequential and random regions
// for the current phase.
func (s *Synthetic) regions() (seqStart, seqSize, rndStart, rndSize uint64) {
	ws := s.cfg.WorkingSetBytes
	seqSize = uint64(float64(ws) * s.cfg.LocalityFraction)
	seqSize -= seqSize % Stride
	rndSize = ws - seqSize
	if s.cfg.PhaseLen > 0 && s.phase%2 == 1 {
		// Odd phases: the two halves swap roles.
		return rndSize, seqSize, 0, rndSize
	}
	return 0, seqSize, seqSize, rndSize
}

// Next implements Generator.
func (s *Synthetic) Next() (Op, bool) {
	if s.n >= s.cfg.Ops {
		return Op{}, false
	}
	if s.cfg.PhaseLen > 0 && s.n > 0 && s.n%s.cfg.PhaseLen == 0 {
		s.phase++
		s.cursor = 0
	}
	s.n++

	seqStart, seqSize, rndStart, rndSize := s.regions()
	var addr uint64
	useSeq := seqSize > 0 && s.rnd.Float64() < s.cfg.LocalityFraction
	if useSeq {
		// Continue the scan; occasionally jump to a new random position to
		// bound run lengths (geometric with mean RunLen).
		if s.rnd.Float64() < 1.0/float64(s.cfg.RunLen) {
			s.cursor = s.rnd.Uint64n(seqSize/Stride) * Stride
		}
		addr = seqStart + s.cursor
		s.cursor += Stride
		if s.cursor >= seqSize {
			s.cursor = 0
		}
	} else {
		if rndSize < Stride {
			addr = seqStart + s.rnd.Uint64n(seqSize/Stride)*Stride
		} else {
			addr = rndStart + s.rnd.Uint64n(rndSize/Stride)*Stride
		}
	}

	gap := s.cfg.Gap
	if gap > 1 {
		// Jitter the gap by ±50% for a less clockwork stream.
		gap = gap/2 + uint32(s.rnd.Uint64n(uint64(gap)))
	}
	return Op{
		Gap:   gap,
		Addr:  addr,
		Write: s.rnd.Float64() < s.cfg.WriteFraction,
	}, true
}
