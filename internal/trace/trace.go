// Package trace generates the memory reference streams that drive the
// simulator: parametric synthetic patterns (the paper's §5.3 locality and
// phase-change microbenchmarks) and statistical models of the Splash2,
// SPEC06 and DBMS (YCSB/TPCC) workloads used in §5.4.
//
// The real benchmarks are binaries traced inside Graphite, which we cannot
// run; each model reproduces the properties PrORAM actually reacts to —
// memory intensity (compute gap + temporal locality), spatial locality of
// the miss stream (sequential-run probability and length), working-set
// size, write fraction and phase behaviour. DESIGN.md §4 records this
// substitution.
package trace

// Op is one memory reference: the core executes Gap compute cycles, then
// issues a read or write of the byte at Addr.
type Op struct {
	Gap   uint32
	Addr  uint64
	Write bool
}

// Generator produces a finite deterministic stream of operations.
type Generator interface {
	// Next returns the next operation; ok is false when the stream ends.
	Next() (op Op, ok bool)
	// Len returns the total number of operations the stream will produce.
	Len() uint64
}

// Stride is the byte distance between consecutive references of a
// sequential run: half a 128-byte block, so sequential runs both reuse
// lines (temporal hits) and walk into neighbor blocks (the spatial
// locality super blocks exploit).
const Stride = 64

// Take returns a Generator producing at most n operations from g, used to
// split a stream into a warmup prefix and a measured remainder.
func Take(g Generator, n uint64) Generator {
	return &takeGen{g: g, n: n}
}

type takeGen struct {
	g    Generator
	n    uint64
	done uint64
}

func (t *takeGen) Next() (Op, bool) {
	if t.done >= t.n {
		return Op{}, false
	}
	op, ok := t.g.Next()
	if ok {
		t.done++
	}
	return op, ok
}

func (t *takeGen) Len() uint64 {
	if t.n < t.g.Len() {
		return t.n
	}
	return t.g.Len()
}
