package posmap

import (
	"container/list"

	"proram/internal/mem"
	"proram/internal/obs"
)

// PLB is the Position-map Lookaside Buffer of Unified ORAM: a small LRU
// cache of position-map blocks held inside the secure processor. A PLB hit
// at level i means the recursion walk can start below level i, saving one
// ORAM path access per level skipped.
//
// Blocks in the PLB are the authoritative copies (they were removed from
// the tree when loaded); evicting a dirty block therefore requires an ORAM
// write-back access, which the controller performs.
type PLB struct {
	capacity int
	lru      *list.List // front = most recent; values are plbEntry
	index    map[mem.BlockID]*list.Element

	hits   uint64
	misses uint64

	obsHits        *obs.Counter // nil when obs off
	obsMisses      *obs.Counter
	obsDirtyEvicts *obs.Counter
}

// Instrument attaches observability counters. Nil handles (the default)
// keep every hook a single pointer check.
func (p *PLB) Instrument(hits, misses, dirtyEvicts *obs.Counter) {
	p.obsHits = hits
	p.obsMisses = misses
	p.obsDirtyEvicts = dirtyEvicts
}

type plbEntry struct {
	id    mem.BlockID
	dirty bool
}

// NewPLB returns an empty PLB holding up to capacity position-map blocks.
// A capacity of 0 disables the PLB (every lookup misses).
func NewPLB(capacity int) *PLB {
	return &PLB{
		capacity: capacity,
		lru:      list.New(),
		index:    make(map[mem.BlockID]*list.Element),
	}
}

// Capacity returns the configured size in blocks.
func (p *PLB) Capacity() int { return p.capacity }

// Len returns the number of cached blocks.
func (p *PLB) Len() int { return p.lru.Len() }

// Lookup reports whether id is cached, promoting it on hit and recording
// hit/miss statistics.
//
//proram:hotpath probed once per recursion level on every access
func (p *PLB) Lookup(id mem.BlockID) bool {
	if e, ok := p.index[id]; ok {
		p.lru.MoveToFront(e)
		p.hits++
		p.obsHits.Inc()
		return true
	}
	p.misses++
	p.obsMisses.Inc()
	return false
}

// Contains reports presence without promoting or counting.
func (p *PLB) Contains(id mem.BlockID) bool {
	_, ok := p.index[id]
	return ok
}

// MarkDirty flags a cached block as modified. It reports whether the block
// was present.
//
//proram:hotpath runs on every remap
func (p *PLB) MarkDirty(id mem.BlockID) bool {
	e, ok := p.index[id]
	if !ok {
		return false
	}
	e.Value.(*plbEntry).dirty = true
	return true
}

// Insert caches id (most recently used, clean). If the PLB overflows, the
// least recently used block is evicted and returned with its dirty flag;
// the caller must write dirty victims back to the ORAM. ok reports whether
// a victim was produced.
//
//proram:hotpath runs once per recursion level walked
func (p *PLB) Insert(id mem.BlockID) (victim mem.BlockID, dirty, ok bool) {
	if p.capacity == 0 {
		// PLB disabled: nothing is cached and there is no victim — the
		// accessed block simply stays in the stash/tree like any other.
		return mem.Nil, false, false
	}
	if e, found := p.index[id]; found {
		p.lru.MoveToFront(e)
		return mem.Nil, false, false
	}
	if p.lru.Len() < p.capacity {
		p.lru.PushFront(&plbEntry{id: id}) //proram:allow allocdiscipline warm-up below capacity only; at capacity the LRU entry is recycled in place
		p.index[id] = p.lru.Front()
		return mem.Nil, false, false
	}
	// At capacity: recycle the least recently used entry in place
	// rather than allocating a new node and unlinking the victim's.
	back := p.lru.Back()
	ent := back.Value.(*plbEntry)
	delete(p.index, ent.id)
	victim, dirty = ent.id, ent.dirty
	ent.id, ent.dirty = id, false
	p.lru.MoveToFront(back)
	p.index[id] = back
	if dirty {
		p.obsDirtyEvicts.Inc()
	}
	return victim, dirty, true
}

// Remove drops id from the PLB (e.g. after an explicit write-back),
// reporting whether it was present and dirty.
func (p *PLB) Remove(id mem.BlockID) (wasDirty, wasPresent bool) {
	e, ok := p.index[id]
	if !ok {
		return false, false
	}
	ent := e.Value.(*plbEntry)
	p.lru.Remove(e)
	delete(p.index, id)
	return ent.dirty, true
}

// Hits and Misses expose the lookup statistics.
func (p *PLB) Hits() uint64   { return p.hits }
func (p *PLB) Misses() uint64 { return p.misses }

// HitRate returns hits/(hits+misses), or 0 when no lookups happened.
func (p *PLB) HitRate() float64 {
	total := p.hits + p.misses
	if total == 0 {
		return 0
	}
	return float64(p.hits) / float64(total)
}
