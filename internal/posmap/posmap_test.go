package posmap

import (
	"testing"

	"proram/internal/mem"
)

func mustNew(t *testing.T, cfg Config) *Hierarchy {
	t.Helper()
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHierarchySizing(t *testing.T) {
	// 2^20 data blocks, fanout 32, on-chip 2048:
	// level1 = 2^15, level2 = 2^10 = 1024 <= 2048 -> depth 2.
	h := mustNew(t, Config{NumBlocks: 1 << 20, Fanout: 32, OnChipMax: 2048})
	if h.Depth() != 2 {
		t.Fatalf("Depth = %d, want 2", h.Depth())
	}
	if h.Count(0) != 1<<20 || h.Count(1) != 1<<15 || h.Count(2) != 1<<10 {
		t.Fatalf("counts = %d/%d/%d", h.Count(0), h.Count(1), h.Count(2))
	}
	if h.TotalBlocks() != (1<<20)+(1<<15)+(1<<10) {
		t.Fatalf("TotalBlocks = %d", h.TotalBlocks())
	}
}

func TestPaperScaleHierarchy(t *testing.T) {
	// The paper's 8GB / 128B config: 2^26 blocks, fanout 32, on-chip a few
	// thousand entries -> 3 posmap levels, i.e. 4 ORAM hierarchies total.
	h := mustNew(t, Config{NumBlocks: 1 << 26, Fanout: 32, OnChipMax: 4096})
	if h.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3 (4 hierarchies incl. data)", h.Depth())
	}
	if h.Count(3) != 1<<11 {
		t.Fatalf("top level count = %d, want 2048", h.Count(3))
	}
}

func TestNonPowerOfTwoSizing(t *testing.T) {
	h := mustNew(t, Config{NumBlocks: 100, Fanout: 32, OnChipMax: 2})
	// 100 -> 4 -> 1... 4 > 2 so recurse: depth levels: counts 100, 4, 1.
	if h.Depth() != 2 {
		t.Fatalf("Depth = %d, want 2", h.Depth())
	}
	// Last level-1 block covers 100 - 3*32 = 4 children.
	if got := len(h.Block(1, 3).Entries); got != 4 {
		t.Fatalf("last block entries = %d, want 4", got)
	}
	if got := len(h.Block(2, 0).Entries); got != 4 {
		t.Fatalf("top block entries = %d, want 4", got)
	}
}

func TestEntryForAndParent(t *testing.T) {
	h := mustNew(t, Config{NumBlocks: 1 << 10, Fanout: 32, OnChipMax: 32})
	pi, slot := h.Parent(0, 100)
	if pi != 3 || slot != 4 {
		t.Fatalf("Parent(0,100) = %d,%d; want 3,4", pi, slot)
	}
	e := h.EntryFor(0, 100)
	if e.Leaf != mem.NoLeaf || e.SBSize != 1 {
		t.Fatalf("fresh entry = %+v", e)
	}
	e.Leaf = 42
	if h.Block(1, 3).Entries[4].Leaf != 42 {
		t.Fatal("EntryFor did not return a pointer into the block")
	}
}

func TestTopLeafRoundTrip(t *testing.T) {
	h := mustNew(t, Config{NumBlocks: 1 << 10, Fanout: 32, OnChipMax: 32})
	if h.TopLeaf(0) != mem.NoLeaf {
		t.Fatal("fresh top leaf assigned")
	}
	h.SetTopLeaf(0, 7)
	if h.TopLeaf(0) != 7 {
		t.Fatal("SetTopLeaf lost update")
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{NumBlocks: 0, Fanout: 32, OnChipMax: 8},
		{NumBlocks: 10, Fanout: 1, OnChipMax: 8},
		{NumBlocks: 10, Fanout: 32, OnChipMax: 0},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
}

func TestCounters(t *testing.T) {
	h := mustNew(t, Config{NumBlocks: 64, Fanout: 32, OnChipMax: 2})
	b := h.Block(1, 0)
	if b.MergeCounter(0) != 0 {
		t.Fatal("fresh merge counter nonzero")
	}
	if got := b.AddMergeCounter(0, 3); got != 3 {
		t.Fatalf("AddMergeCounter = %d", got)
	}
	if got := b.AddMergeCounter(0, -10); got != 0 {
		t.Fatalf("merge counter went negative: %d", got)
	}
	for i := 0; i < 300; i++ {
		b.AddMergeCounter(0, 1)
	}
	if b.MergeCounter(0) != 255 {
		t.Fatalf("merge counter did not saturate: %d", b.MergeCounter(0))
	}
	b.ResetMergeCounter(0)
	if b.MergeCounter(0) != 0 {
		t.Fatal("ResetMergeCounter failed")
	}

	b.SetBreakCounter(4, 4)
	if raw := b.AddBreakCounter(4, -6); raw != -2 {
		t.Fatalf("AddBreakCounter raw = %d, want -2", raw)
	}
	if b.BreakCounter(4) != 0 {
		t.Fatalf("break counter stored %d, want clamped 0", b.BreakCounter(4))
	}
}

func TestGroupHelpers(t *testing.T) {
	cases := []struct {
		o, n                  int
		start, neighbor, pair int
	}{
		{5, 1, 5, 4, 4},
		{4, 1, 4, 5, 4},
		{6, 2, 6, 4, 4},
		{4, 2, 4, 6, 4},
		{8, 4, 8, 12, 8},
		{12, 4, 12, 8, 8},
		{0, 1, 0, 1, 0},
	}
	for _, c := range cases {
		if got := GroupStart(c.o, c.n); got != c.start {
			t.Errorf("GroupStart(%d,%d) = %d, want %d", c.o, c.n, got, c.start)
		}
		if got := NeighborStart(c.o, c.n); got != c.neighbor {
			t.Errorf("NeighborStart(%d,%d) = %d, want %d", c.o, c.n, got, c.neighbor)
		}
		if got := PairStart(c.o, c.n); got != c.pair {
			t.Errorf("PairStart(%d,%d) = %d, want %d", c.o, c.n, got, c.pair)
		}
	}
}

func TestBlockID(t *testing.T) {
	h := mustNew(t, Config{NumBlocks: 64, Fanout: 32, OnChipMax: 2})
	b := h.Block(1, 1)
	if b.ID() != mem.MakeID(1, 1) {
		t.Fatalf("ID = %v", b.ID())
	}
}

func TestPLBBasics(t *testing.T) {
	p := NewPLB(2)
	a, b, c := mem.MakeID(1, 0), mem.MakeID(1, 1), mem.MakeID(1, 2)
	if p.Lookup(a) {
		t.Fatal("empty PLB hit")
	}
	if _, _, ok := p.Insert(a); ok {
		t.Fatal("insert into empty PLB evicted")
	}
	if !p.Lookup(a) {
		t.Fatal("PLB missed cached block")
	}
	p.Insert(b) // order: b (MRU), a (LRU)
	p.MarkDirty(a)
	// Inserting c evicts the LRU, which is the dirty a.
	victim, dirty, ok := p.Insert(c)
	if !ok || victim != a || !dirty {
		t.Fatalf("eviction = %v dirty=%v ok=%v, want a dirty", victim, dirty, ok)
	}
	// b is now LRU and clean.
	victim, dirty, ok = p.Insert(mem.MakeID(1, 3))
	if !ok || victim != b || dirty {
		t.Fatalf("eviction = %v dirty=%v ok=%v, want b clean", victim, dirty, ok)
	}
}

func TestPLBStats(t *testing.T) {
	p := NewPLB(4)
	a := mem.MakeID(1, 0)
	p.Lookup(a)
	p.Insert(a)
	p.Lookup(a)
	if p.Hits() != 1 || p.Misses() != 1 {
		t.Fatalf("hits/misses = %d/%d", p.Hits(), p.Misses())
	}
	if p.HitRate() != 0.5 {
		t.Fatalf("HitRate = %v", p.HitRate())
	}
}

func TestPLBDisabled(t *testing.T) {
	p := NewPLB(0)
	a := mem.MakeID(1, 0)
	victim, dirty, ok := p.Insert(a)
	if ok || dirty || !victim.IsNil() {
		t.Fatal("disabled PLB must ignore inserts without producing victims")
	}
	if p.Lookup(a) {
		t.Fatal("disabled PLB hit")
	}
	if p.Len() != 0 {
		t.Fatal("disabled PLB cached a block")
	}
}

func TestPLBRemove(t *testing.T) {
	p := NewPLB(2)
	a := mem.MakeID(1, 0)
	p.Insert(a)
	p.MarkDirty(a)
	dirty, present := p.Remove(a)
	if !present || !dirty {
		t.Fatalf("Remove = %v,%v", dirty, present)
	}
	if _, present := p.Remove(a); present {
		t.Fatal("double Remove reported present")
	}
}

func TestPLBReinsertDoesNotGrow(t *testing.T) {
	p := NewPLB(2)
	a := mem.MakeID(1, 0)
	p.Insert(a)
	p.Insert(a)
	if p.Len() != 1 {
		t.Fatalf("Len = %d after re-insert", p.Len())
	}
}
