// Package posmap implements the recursive (Unified ORAM) position map:
// the lookup structure that associates every block with the tree path it
// is mapped to, stored as position-map blocks that are themselves ORAM
// blocks in the same binary tree, topped by a small on-chip table.
//
// Each position-map block covers Fanout consecutive child blocks and, for
// the level-1 blocks that describe data blocks, also carries the PrORAM
// metadata: super-block sizes, merge/break counters and prefetch bits —
// exactly the layout of the paper's Figure 4, where a counter is the
// concatenation of the per-block counter bits and is reconstructed
// whenever the block's mapping is loaded.
package posmap

import (
	"fmt"

	"proram/internal/mem"
)

// Config sizes the hierarchy.
type Config struct {
	// NumBlocks is the number of data (level-0) blocks.
	NumBlocks uint64
	// Fanout is the number of child mappings per position-map block
	// (32 in the paper: 128-byte blocks, 25-bit leaf labels + 2 bits).
	Fanout int
	// OnChipMax is the largest level that may be kept entirely on-chip;
	// recursion stops once a level has at most this many blocks.
	OnChipMax uint64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.NumBlocks == 0 {
		return fmt.Errorf("posmap: NumBlocks must be positive")
	}
	if c.Fanout < 2 {
		return fmt.Errorf("posmap: Fanout %d must be >= 2", c.Fanout)
	}
	if c.OnChipMax == 0 {
		return fmt.Errorf("posmap: OnChipMax must be positive")
	}
	return nil
}

// Entry is one child mapping inside a position-map block.
type Entry struct {
	// Leaf is the tree path the child block is mapped to, or mem.NoLeaf if
	// the child has never been touched (lazy initialization).
	Leaf mem.Leaf
	// SBSize is the size of the super block the child belongs to (1 when
	// not merged). Only meaningful in level-1 blocks (children are data).
	SBSize uint8
	// Prefetch mirrors the paper's per-block prefetch bit: set when the
	// block was brought in as part of a super block without being the
	// demand target. Stored in the position map (paper §4.5.1).
	Prefetch bool
}

// Block is one position-map block. Its identity as an ORAM block is
// mem.MakeID(level, index); its contents are the child entries plus the
// counter bits for the groups it covers.
type Block struct {
	Level   int
	Index   uint64
	Entries []Entry
	// mergeCtr[o] is the merge counter of the neighbor pair whose lower
	// group starts at child offset o. breakCtr[o] is the break counter of
	// the super block starting at child offset o. Counters are saturating
	// uint8s: the paper packs them into the per-entry spare bits; we allow
	// the full byte and document the widening (behaviour is identical
	// because thresholds are far below 255).
	mergeCtr []uint8
	breakCtr []uint8
}

// ID returns the block's ORAM identity.
func (b *Block) ID() mem.BlockID { return mem.MakeID(b.Level, b.Index) }

// MergeCounter returns the merge counter for the pair whose lower half
// starts at offset o.
func (b *Block) MergeCounter(o int) uint8 { return b.mergeCtr[o] }

// AddMergeCounter adjusts the merge counter at offset o by delta with
// saturation at [0, 255], as in the paper's footnote 1.
func (b *Block) AddMergeCounter(o int, delta int) uint8 {
	v := int(b.mergeCtr[o]) + delta
	if v < 0 {
		v = 0
	}
	if v > 255 {
		v = 255
	}
	b.mergeCtr[o] = uint8(v)
	return b.mergeCtr[o]
}

// ResetMergeCounter clears the counter after a merge or break
// "reconstructs" the bits for a different group size.
func (b *Block) ResetMergeCounter(o int) { b.mergeCtr[o] = 0 }

// BreakCounter returns the break counter of the super block at offset o.
func (b *Block) BreakCounter(o int) uint8 { return b.breakCtr[o] }

// SetBreakCounter sets the break counter (used on merge: initialized to 2n).
func (b *Block) SetBreakCounter(o int, v uint8) { b.breakCtr[o] = v }

// AddBreakCounter adjusts the break counter by delta. It returns the
// un-clamped new value so the caller can detect "would drop below zero"
// (the paper's break condition with static thresholding) along with the
// stored saturated value.
func (b *Block) AddBreakCounter(o int, delta int) int {
	v := int(b.breakCtr[o]) + delta
	stored := v
	if stored < 0 {
		stored = 0
	}
	if stored > 255 {
		stored = 255
	}
	b.breakCtr[o] = uint8(stored)
	return v
}

// Hierarchy is the full recursive position map. Level 0 is the data; levels
// 1..Depth() are position-map blocks living in the ORAM tree; the leaves of
// the level-Depth blocks are held on-chip.
type Hierarchy struct {
	cfg    Config
	counts []uint64            // counts[l] = number of blocks at level l (l=0 is data)
	blocks []map[uint64]*Block // blocks[l] for l >= 1, lazily materialized
	onChip map[uint64]mem.Leaf // leaves of the top-level (level Depth) blocks; absent = NoLeaf
}

// New builds the hierarchy. Position-map block contents are materialized
// lazily on first use (they are Go structs; whether they are "in the
// tree" is the controller's business), with every leaf unassigned.
func New(cfg Config) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// There is always at least one position-map level: level-1 blocks hold
	// the data blocks' leaf labels plus the PrORAM counter bits, even when
	// the data population would fit on-chip.
	counts := []uint64{cfg.NumBlocks}
	for len(counts) == 1 || counts[len(counts)-1] > cfg.OnChipMax {
		n := counts[len(counts)-1]
		counts = append(counts, (n+uint64(cfg.Fanout)-1)/uint64(cfg.Fanout))
	}
	h := &Hierarchy{cfg: cfg, counts: counts}
	h.blocks = make([]map[uint64]*Block, len(counts))
	for l := 1; l < len(counts); l++ {
		h.blocks[l] = make(map[uint64]*Block)
	}
	h.onChip = make(map[uint64]mem.Leaf)
	return h, nil
}

// materialize returns the block at (level, index), creating it with
// unassigned entries on first touch.
func (h *Hierarchy) materialize(level int, index uint64) *Block {
	if b, ok := h.blocks[level][index]; ok {
		return b
	}
	nChildren := h.cfg.Fanout
	if rem := h.counts[level-1] - index*uint64(h.cfg.Fanout); rem < uint64(nChildren) {
		nChildren = int(rem)
	}
	b := &Block{Level: level, Index: index, Entries: make([]Entry, nChildren)} //proram:allow allocdiscipline lazy one-time materialization per position-map block, amortized across all later touches
	for e := range b.Entries {
		b.Entries[e] = Entry{Leaf: mem.NoLeaf, SBSize: 1}
	}
	if level == 1 {
		//proram:allow allocdiscipline one-time per-block counter storage, allocated on first touch
		b.mergeCtr = make([]uint8, nChildren)
		//proram:allow allocdiscipline one-time per-block counter storage, allocated on first touch
		b.breakCtr = make([]uint8, nChildren)
	}
	h.blocks[level][index] = b
	return b
}

// Depth returns the number of position-map levels above the data. The
// paper's "number of ORAM hierarchies" is Depth()+1 (data included),
// counting the on-chip table as free.
func (h *Hierarchy) Depth() int { return len(h.counts) - 1 }

// Count returns the number of blocks at the given hierarchy level
// (level 0 = data blocks).
func (h *Hierarchy) Count(level int) uint64 { return h.counts[level] }

// Fanout returns the configured entries-per-block.
func (h *Hierarchy) Fanout() int { return h.cfg.Fanout }

// Block returns the position-map block at the given level (>= 1) and index,
// materializing it on first touch.
//
//proram:hotpath fetched for every data access
func (h *Hierarchy) Block(level int, index uint64) *Block {
	// Depth() == len(counts)-1; phrasing the guard against the hoisted
	// slice hands the bounds prover the exact fact it needs below.
	counts := h.counts
	if level < 1 || level > len(counts)-1 {
		//proram:invariant levels come from mem.BlockID values the controller built with MakeID against this hierarchy's depth
		panic(fmt.Sprintf("posmap: Block level %d out of range [1,%d]", level, h.Depth()))
	}
	if index >= counts[level] {
		//proram:invariant indices come from mem.BlockID values bounds-checked at construction, so a hot-path error return would only hide corruption
		panic(fmt.Sprintf("posmap: Block index %d out of range at level %d", index, level))
	}
	return h.materialize(level, index)
}

// Parent returns the (parentIndex, slot) coordinates of the entry that maps
// the block at (level, index): its mapping lives in block
// (level+1, parentIndex) at the given slot. Valid for level < Depth().
func (h *Hierarchy) Parent(level int, index uint64) (uint64, int) {
	return index / uint64(h.cfg.Fanout), int(index % uint64(h.cfg.Fanout))
}

// EntryFor returns the position-map entry describing block (level, index).
// For level == Depth() the mapping is on-chip and has no Entry; use
// TopLeaf/SetTopLeaf instead.
//
//proram:hotpath position lookup on every path read
func (h *Hierarchy) EntryFor(level int, index uint64) *Entry {
	if level >= h.Depth() {
		//proram:invariant callers branch to TopLeaf for level == Depth() first; reaching here with one is a recursion bug, not an input error
		panic(fmt.Sprintf("posmap: EntryFor level %d has no parent block (depth %d)", level, h.Depth()))
	}
	pi, slot := h.Parent(level, index)
	return &h.materialize(level+1, pi).Entries[slot] //proram:allow boundscheck slot = index mod Fanout and every materialized block carries Fanout entries; the container is a call result the prover cannot name
}

// TopLeaf returns the on-chip leaf of the top-level block at index, or
// mem.NoLeaf if it was never assigned.
//
//proram:hotpath on-chip table read for every recursion walk
func (h *Hierarchy) TopLeaf(index uint64) mem.Leaf {
	if leaf, ok := h.onChip[index]; ok {
		return leaf
	}
	return mem.NoLeaf
}

// SetTopLeaf updates the on-chip mapping of a top-level block.
func (h *Hierarchy) SetTopLeaf(index uint64, leaf mem.Leaf) { h.onChip[index] = leaf }

// TotalBlocks returns the number of ORAM-resident blocks across all levels
// (data + all position-map levels). This sizes the tree.
func (h *Hierarchy) TotalBlocks() uint64 {
	total := uint64(0)
	for _, c := range h.counts {
		total += c
	}
	return total
}

// GroupStart returns the aligned start offset of the size-n group that
// child offset o belongs to.
func GroupStart(o, n int) int { return o &^ (n - 1) }

// NeighborStart returns the start offset of the neighbor group of the
// size-n group starting at o: the other half of the enclosing size-2n
// aligned group (paper §4.1's "neighbor block").
func NeighborStart(o, n int) int { return o ^ n }

// PairStart returns the start of the enclosing size-2n group, where the
// merge counter for the (group, neighbor) pair lives.
func PairStart(o, n int) int { return o &^ (2*n - 1) }
