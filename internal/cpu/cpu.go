// Package cpu models the paper's Table 1 core: a 1 GHz in-order processor
// that executes compute work between memory operations and blocks on every
// memory reference until the memory system returns the data.
package cpu

import "proram/internal/trace"

// MemSystem is what the core issues references into: given the current
// cycle, a byte address and a read/write flag, it returns the cycle at
// which the reference completes.
type MemSystem interface {
	Access(now uint64, addr uint64, write bool) (done uint64)
}

// Result summarizes one run.
type Result struct {
	// Cycles is the program completion time.
	Cycles uint64
	// MemOps is the number of memory references executed.
	MemOps uint64
	// ComputeCycles is the total compute-gap time (diagnostics: the
	// memory-boundedness of the run is 1 - ComputeCycles/Cycles).
	ComputeCycles uint64
}

// Run executes the trace to completion on the memory system, starting at
// cycle start, and returns the timing summary (Cycles is the absolute end
// time). The core is blocking and in-order: each operation's compute gap
// elapses, then the memory reference issues and the core stalls until it
// completes.
func Run(g trace.Generator, mem MemSystem, start uint64) Result {
	var res Result
	now := start
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		now += uint64(op.Gap)
		res.ComputeCycles += uint64(op.Gap)
		done := mem.Access(now, op.Addr, op.Write)
		if done < now {
			done = now
		}
		now = done
		res.MemOps++
	}
	res.Cycles = now
	return res
}
