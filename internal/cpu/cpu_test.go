package cpu

import (
	"testing"

	"proram/internal/trace"
)

// scriptedMem returns fixed latencies per access.
type scriptedMem struct {
	latency uint64
	calls   []uint64 // issue times observed
}

func (m *scriptedMem) Access(now uint64, addr uint64, write bool) uint64 {
	m.calls = append(m.calls, now)
	return now + m.latency
}

// sliceGen replays a fixed op slice.
type sliceGen struct {
	ops []trace.Op
	i   int
}

func (g *sliceGen) Next() (trace.Op, bool) {
	if g.i >= len(g.ops) {
		return trace.Op{}, false
	}
	op := g.ops[g.i]
	g.i++
	return op, true
}
func (g *sliceGen) Len() uint64 { return uint64(len(g.ops)) }

func TestBlockingInOrderTiming(t *testing.T) {
	mem := &scriptedMem{latency: 100}
	g := &sliceGen{ops: []trace.Op{
		{Gap: 10, Addr: 0},
		{Gap: 20, Addr: 128},
		{Gap: 0, Addr: 256, Write: true},
	}}
	res := Run(g, mem, 0)
	// t=10 issue, done 110; t=130 issue, done 230; t=230 issue, done 330.
	want := []uint64{10, 130, 230}
	for i, w := range want {
		if mem.calls[i] != w {
			t.Fatalf("issue %d at %d, want %d", i, mem.calls[i], w)
		}
	}
	if res.Cycles != 330 {
		t.Fatalf("Cycles = %d, want 330", res.Cycles)
	}
	if res.MemOps != 3 || res.ComputeCycles != 30 {
		t.Fatalf("result %+v", res)
	}
}

func TestEmptyTrace(t *testing.T) {
	res := Run(&sliceGen{}, &scriptedMem{latency: 1}, 0)
	if res.Cycles != 0 || res.MemOps != 0 {
		t.Fatalf("empty run: %+v", res)
	}
}

// Memory systems that report completion before issue (e.g. cached hits
// modeled as zero latency) must not move time backwards.
type brokenMem struct{}

func (brokenMem) Access(now uint64, addr uint64, write bool) uint64 { return 0 }

func TestMonotonicTime(t *testing.T) {
	g := &sliceGen{ops: []trace.Op{{Gap: 5, Addr: 0}, {Gap: 5, Addr: 1}}}
	res := Run(g, brokenMem{}, 0)
	if res.Cycles != 10 {
		t.Fatalf("Cycles = %d, want 10", res.Cycles)
	}
}

func TestRunStartOffset(t *testing.T) {
	mem := &scriptedMem{latency: 10}
	g := &sliceGen{ops: []trace.Op{{Gap: 5, Addr: 0}}}
	res := Run(g, mem, 100)
	if mem.calls[0] != 105 || res.Cycles != 115 {
		t.Fatalf("offset run: issue %d end %d", mem.calls[0], res.Cycles)
	}
}
