package stash

import (
	"testing"

	"proram/internal/mem"
	"proram/internal/rng"
	"proram/internal/tree"
)

func id(i uint64) mem.BlockID { return mem.MakeID(0, i) }

func mustNew(t *testing.T, limit int) *Stash {
	t.Helper()
	s, err := New(limit)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustAdd(t *testing.T, s *Stash, id mem.BlockID, leaf mem.Leaf) {
	t.Helper()
	if err := s.Add(id, leaf); err != nil {
		t.Fatal(err)
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := mustNew(t, 10)
	mustAdd(t, s, id(1), 5)
	if !s.Contains(id(1)) || s.Size() != 1 {
		t.Fatal("Add/Contains broken")
	}
	if leaf, ok := s.Leaf(id(1)); !ok || leaf != 5 {
		t.Fatalf("Leaf = %d,%v", leaf, ok)
	}
	if !s.Remove(id(1)) {
		t.Fatal("Remove returned false for present block")
	}
	if s.Contains(id(1)) || s.Size() != 0 {
		t.Fatal("Remove did not remove")
	}
	if s.Remove(id(1)) {
		t.Fatal("Remove returned true for absent block")
	}
}

func TestDuplicateAddErrors(t *testing.T) {
	s := mustNew(t, 10)
	mustAdd(t, s, id(1), 0)
	if err := s.Add(id(1), 1); err == nil {
		t.Fatal("duplicate Add did not error")
	}
	if err := s.Add(mem.Nil, 0); err == nil {
		t.Fatal("Add of nil block did not error")
	}
	if leaf, _ := s.Leaf(id(1)); leaf != 0 {
		t.Fatalf("failed Add changed leaf to %d", leaf)
	}
}

func TestSetLeaf(t *testing.T) {
	s := mustNew(t, 10)
	mustAdd(t, s, id(1), 5)
	if !s.SetLeaf(id(1), 9) {
		t.Fatal("SetLeaf failed for present block")
	}
	if leaf, _ := s.Leaf(id(1)); leaf != 9 {
		t.Fatalf("leaf after SetLeaf = %d", leaf)
	}
	if s.SetLeaf(id(2), 0) {
		t.Fatal("SetLeaf succeeded for absent block")
	}
}

func TestHighWaterAndOverLimit(t *testing.T) {
	s := mustNew(t, 3)
	for i := uint64(0); i < 5; i++ {
		mustAdd(t, s, id(i), 0)
	}
	if !s.OverLimit() {
		t.Fatal("stash of 5/3 not over limit")
	}
	if s.HighWater() != 5 {
		t.Fatalf("HighWater = %d, want 5", s.HighWater())
	}
	s.Remove(id(0))
	s.Remove(id(1))
	if s.OverLimit() {
		t.Fatal("stash of 3/3 reported over limit")
	}
	if s.HighWater() != 5 {
		t.Fatal("HighWater decreased")
	}
}

func TestForEachInsertionOrder(t *testing.T) {
	s := mustNew(t, 100)
	for i := uint64(0); i < 50; i++ {
		mustAdd(t, s, id(i), mem.Leaf(i))
	}
	s.Remove(id(10))
	s.Remove(id(20))
	var got []uint64
	s.ForEach(func(b mem.BlockID, _ mem.Leaf) { got = append(got, b.Index()) })
	if len(got) != 48 {
		t.Fatalf("ForEach visited %d, want 48", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("ForEach order not insertion order: %v", got)
		}
	}
}

func TestEvictToPathPlacesDeepFirst(t *testing.T) {
	tr := tree.New(3, 2)
	s := mustNew(t, 100)
	// A block mapped to the access leaf itself should land in the leaf bucket.
	mustAdd(t, s, id(1), 5)
	n := s.EvictToPath(tr, 5)
	if n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	leafNode := tr.NodeAt(5, 3)
	if tr.BucketCount(leafNode) != 1 {
		t.Fatal("block mapped to access leaf not placed in leaf bucket")
	}
}

func TestEvictToPathRespectsCommonDepth(t *testing.T) {
	tr := tree.New(3, 4)
	s := mustNew(t, 100)
	// Leaf 0 and leaf 7 share only the root.
	mustAdd(t, s, id(1), 7)
	if n := s.EvictToPath(tr, 0); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	if tr.BucketCount(tr.NodeAt(0, 0)) != 1 {
		t.Fatal("opposite-half block not placed at root")
	}
	// The block must still be on its own path.
	if !tr.Contains(7, id(1)) {
		t.Fatal("evicted block violated its path invariant")
	}
}

func TestEvictToPathLeavesUnplaceable(t *testing.T) {
	tr := tree.New(2, 1)
	s := mustNew(t, 100)
	// Fill the root with another block; leaf-3 blocks on path 0 can only
	// go to the root, so one of them must stay stashed.
	mustAdd(t, s, id(1), 3)
	mustAdd(t, s, id(2), 3)
	n := s.EvictToPath(tr, 0)
	if n != 1 {
		t.Fatalf("evicted %d, want 1 (root has Z=1)", n)
	}
	if s.Size() != 1 {
		t.Fatalf("stash size %d, want 1", s.Size())
	}
}

func TestEvictEverythingOnOwnPath(t *testing.T) {
	tr := tree.New(4, 4)
	s := mustNew(t, 100)
	// All blocks mapped to the access leaf; path capacity is (4+1)*4 = 20.
	for i := uint64(0); i < 20; i++ {
		mustAdd(t, s, id(i), 9)
	}
	if n := s.EvictToPath(tr, 9); n != 20 {
		t.Fatalf("evicted %d, want 20", n)
	}
	if s.Size() != 0 {
		t.Fatal("stash not empty after full eviction")
	}
}

func TestEvictionDeterminism(t *testing.T) {
	run := func() []uint64 {
		tr := tree.New(5, 2)
		s := mustNew(t, 100)
		r := rng.New(42)
		for i := uint64(0); i < 40; i++ {
			mustAdd(t, s, id(i), mem.Leaf(r.Uint64n(tr.Leaves())))
		}
		s.EvictToPath(tr, 11)
		var left []uint64
		s.ForEach(func(b mem.BlockID, _ mem.Leaf) { left = append(left, b.Index()) })
		return left
	}
	a := run()
	b := run()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic eviction: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic eviction at %d: %v vs %v", i, a, b)
		}
	}
}

// Property: after eviction, every block in the tree lies on the path of the
// leaf it is mapped to (the Path ORAM invariant), and no bucket exceeds Z.
func TestEvictionInvariant(t *testing.T) {
	tr := tree.New(6, 3)
	s := mustNew(t, 1000)
	r := rng.New(7)
	leafOf := map[mem.BlockID]mem.Leaf{}
	next := uint64(0)
	for round := 0; round < 50; round++ {
		// Add a few random blocks.
		for i := 0; i < 10; i++ {
			b := id(next)
			next++
			leaf := mem.Leaf(r.Uint64n(tr.Leaves()))
			mustAdd(t, s, b, leaf)
			leafOf[b] = leaf
		}
		access := mem.Leaf(r.Uint64n(tr.Leaves()))
		s.EvictToPath(tr, access)
		tr.ForEach(func(node uint64, b mem.BlockID) {
			if !tr.Contains(leafOf[b], b) {
				t.Fatalf("round %d: block %v mapped to %d not on its path", round, b, leafOf[b])
			}
		})
		for n := uint64(1); n <= tr.Buckets(); n++ {
			if c := tr.BucketCount(n); c > tr.Z() {
				t.Fatalf("bucket %d holds %d > Z", n, c)
			}
		}
	}
}

func TestCompaction(t *testing.T) {
	s := mustNew(t, 10000)
	for i := uint64(0); i < 1000; i++ {
		mustAdd(t, s, id(i), 0)
	}
	for i := uint64(0); i < 990; i++ {
		s.Remove(id(i))
	}
	if len(s.order) > 64 && len(s.order) >= 2*s.Size() {
		t.Fatalf("compaction failed: order len %d for %d live", len(s.order), s.Size())
	}
	// Remaining blocks still reachable.
	for i := uint64(990); i < 1000; i++ {
		if !s.Contains(id(i)) {
			t.Fatalf("lost block %d after compaction", i)
		}
	}
}

func TestNewRejectsBadLimit(t *testing.T) {
	for _, limit := range []int{0, -1} {
		if _, err := New(limit); err == nil {
			t.Fatalf("New(%d) did not error", limit)
		}
	}
}
