// Package stash implements the Path ORAM stash: the small trusted memory
// that temporarily holds blocks between the path-read and write-back
// phases of an access, plus the greedy leaf-to-root write-back algorithm
// (step 5 of the protocol).
//
// The stash is deliberately deterministic: iteration follows insertion
// order (never Go map order), so identical access sequences produce
// identical evictions and the whole simulator is reproducible.
package stash

import (
	"fmt"

	"proram/internal/mem"
	"proram/internal/obs"
	"proram/internal/tree"
)

// entry is one stashed block with the leaf it is currently mapped to.
type entry struct {
	id   mem.BlockID
	leaf mem.Leaf
}

// Stash holds blocks that could not yet be written back to the tree. The
// zero value is unusable; construct with New.
type Stash struct {
	order     []entry             // insertion-ordered; tombstoned by map removal
	index     map[mem.BlockID]int // id -> position in order
	limit     int                 // configured capacity (soft: triggers background eviction)
	highWater int                 // max observed size
	scratch   [][]mem.BlockID     // reusable depth buckets for eviction
	carry     []mem.BlockID       // reusable carry list

	obsWritebacks *obs.Counter // blocks written back to the tree; nil when obs off
	obsHighWater  *obs.Gauge   // peak occupancy; nil when obs off
}

// Instrument attaches observability handles. Nil handles (the default)
// keep every hook a single pointer check.
func (s *Stash) Instrument(writebacks *obs.Counter, highWater *obs.Gauge) {
	s.obsWritebacks = writebacks
	s.obsHighWater = highWater
}

// New returns an empty stash with the given soft capacity limit. It
// rejects non-positive limits.
func New(limit int) (*Stash, error) {
	if limit < 1 {
		return nil, fmt.Errorf("stash: limit %d must be positive", limit)
	}
	return &Stash{
		index: make(map[mem.BlockID]int),
		limit: limit,
	}, nil
}

// Limit returns the configured soft capacity.
func (s *Stash) Limit() int { return s.limit }

// Size returns the number of blocks currently stashed.
func (s *Stash) Size() int { return len(s.index) }

// HighWater returns the maximum size ever observed.
func (s *Stash) HighWater() int { return s.highWater }

// OverLimit reports whether the stash currently exceeds its soft capacity,
// i.e. whether the controller must issue background evictions.
func (s *Stash) OverLimit() bool { return len(s.index) > s.limit }

// Add inserts a block mapped to leaf. It errors on a nil id and on a
// block that is already stashed; both indicate a protocol bug in the
// caller, which decides whether that is fatal.
//
//proram:hotpath one insert per block on every path read
func (s *Stash) Add(id mem.BlockID, leaf mem.Leaf) error {
	if id.IsNil() {
		return fmt.Errorf("stash: Add with nil block") //proram:allow allocdiscipline failure path for a caller protocol bug; never taken in a correct run
	}
	if _, ok := s.index[id]; ok {
		return fmt.Errorf("stash: duplicate add of %v", id) //proram:allow allocdiscipline failure path for a caller protocol bug; never taken in a correct run
	}
	s.index[id] = len(s.order)
	s.order = append(s.order, entry{id: id, leaf: leaf}) //proram:allow allocdiscipline bounded by the occupancy invariant and reclaimed by maybeCompact; steady state reuses capacity
	if len(s.index) > s.highWater {
		s.highWater = len(s.index)
		s.obsHighWater.Max(float64(s.highWater))
	}
	return nil
}

// Contains reports whether id is stashed.
//
//proram:hotpath membership probe for every gathered block
func (s *Stash) Contains(id mem.BlockID) bool {
	_, ok := s.index[id]
	return ok
}

// Leaf returns the leaf a stashed block is mapped to.
func (s *Stash) Leaf(id mem.BlockID) (mem.Leaf, bool) {
	pos, ok := s.index[id]
	if !ok {
		return 0, false
	}
	return s.order[pos].leaf, true
}

// SetLeaf remaps a stashed block to a new leaf. It reports whether the
// block was present.
//
//proram:hotpath remap of every super-block member
func (s *Stash) SetLeaf(id mem.BlockID, leaf mem.Leaf) bool {
	pos, ok := s.index[id]
	if !ok {
		return false
	}
	s.order[pos].leaf = leaf //proram:allow boundscheck index maps every live id to its order position; maybeCompact rewrites both together
	return true
}

// Remove deletes a block from the stash, reporting whether it was present.
//
//proram:hotpath runs during write-back
func (s *Stash) Remove(id mem.BlockID) bool {
	pos, ok := s.index[id]
	if !ok {
		return false
	}
	delete(s.index, id)
	s.order[pos].id = mem.Nil //proram:allow boundscheck index maps every live id to its order position; maybeCompact rewrites both together
	s.maybeCompact()
	return true
}

// maybeCompact rebuilds the order slice when tombstones dominate, so the
// slice stays O(live entries) without changing iteration order.
//
//proram:hotpath amortized compaction inside removals and evictions
func (s *Stash) maybeCompact() {
	if len(s.order) < 64 || len(s.order) < 2*len(s.index) {
		return
	}
	live := s.order[:0]
	for _, e := range s.order {
		if !e.id.IsNil() {
			s.index[e.id] = len(live)
			live = append(live, e) //proram:allow allocdiscipline compacts in place: live aliases s.order[:0], so no new backing array is ever grown
		}
	}
	s.order = live
}

// ForEach visits every stashed block in insertion order.
func (s *Stash) ForEach(visit func(id mem.BlockID, leaf mem.Leaf)) {
	for _, e := range s.order {
		if !e.id.IsNil() {
			visit(e.id, e.leaf)
		}
	}
}

// EvictToPath greedily writes stashed blocks back onto the path to
// accessLeaf, filling buckets from the leaf up (deepest legal bucket
// first), exactly as in Path ORAM's write-back phase. A block mapped to
// leaf b may go into the bucket at depth d on the access path iff the two
// paths share that bucket, i.e. d <= CommonDepth(accessLeaf, b).
//
// It returns the number of blocks written back.
//
//proram:hotpath the write-back phase of every path access
func (s *Stash) EvictToPath(t *tree.Tree, accessLeaf mem.Leaf) int {
	levels := t.Levels()
	// Group live entries by the deepest depth they may occupy on this path.
	if cap(s.scratch) < levels+1 {
		s.scratch = make([][]mem.BlockID, levels+1) //proram:allow allocdiscipline one-time warm-up behind the capacity guard
	}
	groups := s.scratch[:levels+1]
	for i := range groups {
		groups[i] = groups[i][:0]
	}
	for _, e := range s.order {
		if e.id.IsNil() {
			continue
		}
		d := t.CommonDepth(accessLeaf, e.leaf)
		//proram:allow boundscheck CommonDepth returns a depth in [0, Levels] and groups has Levels+1 buckets; the relation lives behind the call
		groups[d] = append(groups[d], e.id) //proram:allow allocdiscipline buckets reuse scratch capacity retained across evictions
	}

	placed := 0
	carry := s.carry[:0]
	for depth := levels; depth >= 0; depth-- {
		//proram:allow boundscheck depth counts down from levels = len(groups)-1; the prover has no upper-bound facts for down-counting loops
		carry = append(carry, groups[depth]...) //proram:allow allocdiscipline appends into the reusable s.carry buffer
		free := t.FreeAt(accessLeaf, depth)
		for free > 0 && len(carry) > 0 {
			id := carry[0]
			carry = carry[1:]
			if !t.PlaceAt(accessLeaf, depth, id) {
				//proram:invariant FreeAt just reported a free slot on this exact bucket, so PlaceAt cannot fail
				panic("stash: tree rejected placement into bucket with free slots")
			}
			pos := s.index[id]
			delete(s.index, id)
			s.order[pos].id = mem.Nil //proram:allow boundscheck index maps every live id to its order position; maybeCompact rewrites both together
			placed++
			free--
		}
	}
	s.carry = carry[:0]
	s.maybeCompact()
	s.obsWritebacks.Add(uint64(placed))
	return placed
}
