// Package prefetch implements the traditional stream prefetcher studied in
// the paper's §3.1/§5.2: a small table of detected sequential miss streams
// that issues next-block prefetch requests. On DRAM it hides latency by
// using spare bandwidth; on ORAM it competes with demand requests for the
// saturated controller, which is exactly the effect Figure 5 demonstrates.
package prefetch

import (
	"fmt"

	"proram/internal/obs"
)

// Config parameterizes the prefetcher.
type Config struct {
	// Streams is the number of concurrent miss streams tracked.
	Streams int
	// Degree is how many consecutive blocks are prefetched when a stream
	// is confirmed.
	Degree int
}

// DefaultConfig returns a typical 8-stream, degree-2 next-line prefetcher.
func DefaultConfig() Config { return Config{Streams: 8, Degree: 2} }

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Streams < 1 || c.Degree < 1 {
		return fmt.Errorf("prefetch: Streams and Degree must be positive: %+v", c)
	}
	return nil
}

// stream is one tracked miss stream.
type stream struct {
	valid     bool
	expected  uint64 // next block index that confirms the stream
	confirmed bool   // saw at least two sequential misses
	lastUse   uint64 // for LRU replacement
}

// Stream is the prefetcher. It operates on block indices.
type Stream struct {
	cfg     Config
	streams []stream
	tick    uint64

	issued    uint64
	obsIssued *obs.Counter // nil when obs off
}

// Instrument attaches an observability counter for issued prefetches. A
// nil handle (the default) keeps the hook a single pointer check.
func (s *Stream) Instrument(issued *obs.Counter) { s.obsIssued = issued }

// New builds the prefetcher; it panics on invalid configuration.
func New(cfg Config) *Stream {
	if err := cfg.Validate(); err != nil {
		//proram:invariant configuration errors are programming errors; public entry points run Config.Validate before construction
		panic(err)
	}
	return &Stream{cfg: cfg, streams: make([]stream, cfg.Streams)}
}

// Issued returns the number of prefetch requests generated so far.
func (s *Stream) Issued() uint64 { return s.issued }

// OnMiss observes a demand miss of the given block index and appends the
// block indices to prefetch to dst. A stream must be confirmed by two
// sequential misses before it issues prefetches.
//
//proram:hotpath runs on every simulated LLC miss
func (s *Stream) OnMiss(index uint64, dst []uint64) []uint64 {
	s.tick++
	streams := s.streams
	// Look for a stream expecting this index.
	for i := range streams {
		st := &streams[i]
		if !st.valid || st.expected != index {
			continue
		}
		st.lastUse = s.tick
		st.confirmed = true
		st.expected = index + 1
		for d := 1; d <= s.cfg.Degree; d++ {
			dst = append(dst, index+uint64(d)) //proram:allow allocdiscipline appends into a caller-owned reusable buffer
			s.issued++
			s.obsIssued.Inc()
		}
		return dst
	}
	// No match: allocate (LRU) a tentative stream expecting index+1. The
	// victim's lastUse rides in a register instead of re-indexing.
	victim, victimUse := 0, ^uint64(0)
	for i := range streams {
		st := &streams[i]
		if !st.valid {
			victim = i
			break
		}
		if st.lastUse < victimUse {
			victim, victimUse = i, st.lastUse
		}
	}
	streams[victim] = stream{valid: true, expected: index + 1, lastUse: s.tick} //proram:allow boundscheck victim is 0 or a range index of the scan above, and Validate enforces Streams >= 1
	return dst
}
