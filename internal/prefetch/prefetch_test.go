package prefetch

import "testing"

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{Streams: 0, Degree: 1}).Validate(); err == nil {
		t.Fatal("zero streams accepted")
	}
	if err := (Config{Streams: 1, Degree: 0}).Validate(); err == nil {
		t.Fatal("zero degree accepted")
	}
}

func TestSequentialStreamConfirmed(t *testing.T) {
	p := New(Config{Streams: 4, Degree: 2})
	if got := p.OnMiss(10, nil); len(got) != 0 {
		t.Fatalf("first miss prefetched %v", got)
	}
	got := p.OnMiss(11, nil)
	if len(got) != 2 || got[0] != 12 || got[1] != 13 {
		t.Fatalf("confirmed stream prefetched %v, want [12 13]", got)
	}
	got = p.OnMiss(12, nil)
	if len(got) != 2 || got[0] != 13 {
		t.Fatalf("continuation prefetched %v", got)
	}
	if p.Issued() != 4 {
		t.Fatalf("Issued = %d", p.Issued())
	}
}

func TestRandomMissesNoPrefetch(t *testing.T) {
	p := New(Config{Streams: 4, Degree: 2})
	addrs := []uint64{100, 7, 950, 42, 500, 3}
	for _, a := range addrs {
		if got := p.OnMiss(a, nil); len(got) != 0 {
			t.Fatalf("random miss %d prefetched %v", a, got)
		}
	}
}

func TestMultipleStreams(t *testing.T) {
	p := New(Config{Streams: 4, Degree: 1})
	p.OnMiss(100, nil)
	p.OnMiss(200, nil)
	if got := p.OnMiss(101, nil); len(got) != 1 || got[0] != 102 {
		t.Fatalf("stream A: %v", got)
	}
	if got := p.OnMiss(201, nil); len(got) != 1 || got[0] != 202 {
		t.Fatalf("stream B: %v", got)
	}
}

func TestLRUReplacement(t *testing.T) {
	p := New(Config{Streams: 2, Degree: 1})
	p.OnMiss(100, nil) // stream expecting 101
	p.OnMiss(200, nil) // stream expecting 201
	p.OnMiss(300, nil) // evicts the 100-stream (LRU)
	if got := p.OnMiss(201, nil); len(got) != 1 {
		t.Fatalf("surviving stream dead: %v", got)
	}
	if got := p.OnMiss(101, nil); len(got) != 0 {
		t.Fatalf("evicted stream still live: %v", got)
	}
}

func TestAppendSemantics(t *testing.T) {
	p := New(Config{Streams: 2, Degree: 1})
	p.OnMiss(10, nil)
	base := []uint64{1}
	got := p.OnMiss(11, base)
	if len(got) != 2 || got[0] != 1 || got[1] != 12 {
		t.Fatalf("append semantics broken: %v", got)
	}
}
