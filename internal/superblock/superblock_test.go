package superblock

import "testing"

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Scheme: Dynamic, MaxSize: 3, CMerge: 1, CBreak: 1, Window: 1000},
		{Scheme: Dynamic, MaxSize: 0, CMerge: 1, CBreak: 1, Window: 1000},
		{Scheme: Dynamic, MaxSize: 2, CMerge: 0, CBreak: 1, Window: 1000},
		{Scheme: Dynamic, MaxSize: 2, CMerge: 1, CBreak: -1, Window: 1000},
		{Scheme: Dynamic, MaxSize: 2, CMerge: 1, CBreak: 1, Window: 0},
		{Scheme: Static, MaxSize: 5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
	// None scheme needs no further fields.
	if err := (Config{Scheme: None}).Validate(); err != nil {
		t.Errorf("None scheme rejected: %v", err)
	}
}

func TestSchemeString(t *testing.T) {
	if None.String() != "none" || Static.String() != "static" || Dynamic.String() != "dynamic" {
		t.Fatal("Scheme.String mismatch")
	}
	if ThresholdStatic.String() != "static" || ThresholdAdaptive.String() != "adaptive" {
		t.Fatal("ThresholdMode.String mismatch")
	}
}

func TestStaticMergeThresholdSchedule(t *testing.T) {
	p := New(Config{Scheme: Dynamic, MaxSize: 8, MergeMode: ThresholdStatic,
		BreakMode: ThresholdStatic, CMerge: 1, CBreak: 1, Window: 1000})
	// Paper §4.4.1: thresholds 2, 4, 8 for sizes 1, 2, 4.
	for _, tc := range []struct {
		n    int
		want float64
	}{{1, 2}, {2, 4}, {4, 8}} {
		if got := p.MergeThreshold(tc.n); got != tc.want {
			t.Errorf("MergeThreshold(%d) = %v, want %v", tc.n, got, tc.want)
		}
	}
}

func TestShouldMergeRespectsMaxSize(t *testing.T) {
	p := New(Config{Scheme: Dynamic, MaxSize: 2, MergeMode: ThresholdStatic,
		BreakMode: ThresholdStatic, CMerge: 1, CBreak: 1, Window: 1000})
	if !p.ShouldMerge(2, 1) {
		t.Fatal("size-1 pair with counter 2 should merge")
	}
	if p.ShouldMerge(255, 2) {
		t.Fatal("merge beyond MaxSize allowed")
	}
}

func TestNonDynamicNeverMergesAtRuntime(t *testing.T) {
	for _, s := range []Scheme{None, Static} {
		p := New(Config{Scheme: s, MaxSize: 2})
		if p.ShouldMerge(255, 1) {
			t.Errorf("scheme %v merged at runtime", s)
		}
		if p.ShouldBreak(-100, 2) {
			t.Errorf("scheme %v broke at runtime", s)
		}
	}
}

func TestStaticBreakRule(t *testing.T) {
	p := New(Config{Scheme: Dynamic, MaxSize: 4, MergeMode: ThresholdStatic,
		BreakMode: ThresholdStatic, CMerge: 1, CBreak: 1, Window: 1000})
	if p.BreakInitial(2) != 4 {
		t.Fatalf("BreakInitial(2) = %d, want 4", p.BreakInitial(2))
	}
	if p.ShouldBreak(0, 2) {
		t.Fatal("counter 0 should not break (threshold is below zero)")
	}
	if !p.ShouldBreak(-1, 2) {
		t.Fatal("counter going negative must break")
	}
	// Size-1 blocks can never break.
	if p.ShouldBreak(-100, 1) {
		t.Fatal("size-1 block broke")
	}
}

func TestDisableBreak(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableBreak = true
	p := New(cfg)
	if p.ShouldBreak(-100, 2) {
		t.Fatal("DisableBreak ignored")
	}
}

func TestAdaptiveThresholdEquation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxSize = 8
	p := New(cfg)
	p.UpdateRates(Rates{EvictionRate: 0.5, AccessRate: 0.8, PrefetchHitRate: 0.5})
	// Equation 1 for merge of two size-1 blocks: resulting sbsize = 2,
	// 1 * 4 * 0.5 * 0.8 / 0.5 = 3.2.
	if got := p.MergeThreshold(1); got < 3.19 || got > 3.21 {
		t.Fatalf("adaptive MergeThreshold(1) = %v, want 3.2", got)
	}
	// Break threshold for a size-2 super block: 1 * 4 * 0.5 * 0.8 / 0.5 = 3.2.
	if got := p.BreakThreshold(2); got < 3.19 || got > 3.21 {
		t.Fatalf("adaptive BreakThreshold(2) = %v, want 3.2", got)
	}
	// Higher eviction rate raises both thresholds (more conservative).
	p.UpdateRates(Rates{EvictionRate: 1.0, AccessRate: 0.8, PrefetchHitRate: 0.5})
	if p.MergeThreshold(1) <= 3.2 {
		t.Fatal("merge threshold did not rise with eviction rate")
	}
	// Higher prefetch hit rate lowers the threshold (more aggressive).
	p.UpdateRates(Rates{EvictionRate: 0.5, AccessRate: 0.8, PrefetchHitRate: 1.0})
	if p.MergeThreshold(1) >= 3.2 {
		t.Fatal("merge threshold did not fall with prefetch hit rate")
	}
}

func TestAdaptiveThresholdScalesWithSize(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxSize = 8
	p := New(cfg)
	p.UpdateRates(Rates{EvictionRate: 0.3, AccessRate: 0.9, PrefetchHitRate: 0.4})
	if p.MergeThreshold(2) <= p.MergeThreshold(1) {
		t.Fatal("threshold must grow with super block size")
	}
	if p.BreakThreshold(4) <= p.BreakThreshold(2) {
		t.Fatal("break threshold must grow with super block size")
	}
}

func TestHysteresisViaBreakInit(t *testing.T) {
	// Merge/break ping-pong is damped by the break counter starting at 2n
	// on merge: a fresh super block survives 2n unused-prefetch
	// observations before it can break.
	p := New(DefaultConfig())
	if p.BreakInitial(2) != 4 {
		t.Fatalf("BreakInitial(2) = %d, want 4", p.BreakInitial(2))
	}
	p.UpdateRates(Rates{EvictionRate: 0, AccessRate: 0, PrefetchHitRate: 1})
	if p.ShouldBreak(3, 2) {
		t.Fatal("fresh merged block broke immediately under no pressure")
	}
}

func TestRateClamping(t *testing.T) {
	p := New(DefaultConfig())
	// Negative = "no data this window": the previous estimate is retained
	// (the policy starts neutral at 1).
	p.UpdateRates(Rates{EvictionRate: 1, AccessRate: 1, PrefetchHitRate: -1})
	if r := p.Rates().PrefetchHitRate; r != 1 {
		t.Fatalf("no-data window did not retain previous estimate: %v", r)
	}
	// Zero (all prefetches missed) is floored, not neutralized.
	p.UpdateRates(Rates{EvictionRate: 1, AccessRate: 1, PrefetchHitRate: 0})
	if r := p.Rates().PrefetchHitRate; r != 0.05 {
		t.Fatalf("zero hit rate not floored: %v", r)
	}
	p.UpdateRates(Rates{EvictionRate: 1, AccessRate: 1, PrefetchHitRate: -1})
	if r := p.Rates().PrefetchHitRate; r != 0.05 {
		t.Fatalf("retention after floor broken: %v", r)
	}
}

func TestMergeNeedsEvidence(t *testing.T) {
	// Even with all-zero rates the merge threshold is floored at 1, so a
	// counter of 0 can never trigger a merge.
	p := New(DefaultConfig())
	p.UpdateRates(Rates{})
	if p.ShouldMerge(0, 1) {
		t.Fatal("merged with zero-valued counter")
	}
}

func TestBreakInitialSaturates(t *testing.T) {
	p := New(Config{Scheme: Dynamic, MaxSize: 256, MergeMode: ThresholdStatic,
		BreakMode: ThresholdStatic, CMerge: 1, CBreak: 1, Window: 1000})
	if p.BreakInitial(200) != 255 {
		t.Fatalf("BreakInitial(200) = %d, want saturation at 255", p.BreakInitial(200))
	}
}
