// Package superblock implements the decision logic of the paper's super
// block schemes: the previously-proposed static scheme (Ren et al.) and
// PrORAM's dynamic scheme with merge/break counters and static or adaptive
// thresholding (paper §3.3 and §4).
//
// The package is pure policy: given counter values and the windowed rates
// the controller samples, it answers "should these neighbors merge?" and
// "should this super block break?". The mechanics (remapping, counter
// storage in position-map blocks, LLC probing) live in internal/oram.
package superblock

import "fmt"

// Scheme selects which super block scheme is active.
type Scheme int

const (
	// None disables super blocks entirely (baseline Path ORAM).
	None Scheme = iota
	// Static merges every aligned group of Size blocks at initialization
	// and never changes the grouping (paper §3.3).
	Static
	// Dynamic is PrORAM: blocks are merged and broken at runtime based on
	// observed spatial locality (paper §4).
	Dynamic
)

func (s Scheme) String() string {
	switch s {
	case None:
		return "none"
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// ThresholdMode selects how merge/break thresholds are computed (§4.4).
type ThresholdMode int

const (
	// ThresholdStatic uses the fixed schedule of §4.4.1: merge two size-n
	// neighbors at counter >= 2n; break counters start at 2n and break
	// when they would drop below zero.
	ThresholdStatic ThresholdMode = iota
	// ThresholdAdaptive uses Equation 1 of §4.4.2, recomputed every
	// observation window from eviction rate, access rate and prefetch hit
	// rate.
	ThresholdAdaptive
)

func (m ThresholdMode) String() string {
	if m == ThresholdStatic {
		return "static"
	}
	return "adaptive"
}

// Config parameterizes a Policy.
type Config struct {
	Scheme Scheme
	// MaxSize is the maximum super block size (a power of two >= 1). For
	// the Static scheme it is also the (fixed) merge granularity. The
	// paper's default is 2 (Table 1), swept up to 8 in Figure 7.
	MaxSize int
	// MergeMode/BreakMode choose the thresholding for the Dynamic scheme.
	// Figure 6b's variants map as: sm_nb = {static, disabled},
	// am_nb = {adaptive, disabled}, am_ab = {adaptive, adaptive}.
	MergeMode ThresholdMode
	BreakMode ThresholdMode
	// DisableBreak turns super block breaking off (the *_nb variants).
	DisableBreak bool
	// CMerge and CBreak are the coefficient C of Equation 1 for the merge
	// and break thresholds respectively. The paper settles on 1 and 1
	// after the Figure 10 sweep.
	CMerge float64
	CBreak float64
	// Window is the number of ORAM requests per rate-sampling window
	// (1000 in the paper).
	Window int
}

// DefaultConfig returns PrORAM's default dynamic configuration (Table 1 +
// §5.5.1: max super block size 2, adaptive thresholding, C = 1).
func DefaultConfig() Config {
	return Config{
		Scheme:    Dynamic,
		MaxSize:   2,
		MergeMode: ThresholdAdaptive,
		BreakMode: ThresholdAdaptive,
		CMerge:    1,
		CBreak:    1,
		Window:    1000,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Scheme != None {
		if c.MaxSize < 1 || c.MaxSize&(c.MaxSize-1) != 0 {
			return fmt.Errorf("superblock: MaxSize %d must be a power of two >= 1", c.MaxSize)
		}
	}
	if c.Scheme == Dynamic {
		if c.CMerge <= 0 || c.CBreak <= 0 {
			return fmt.Errorf("superblock: coefficients must be positive (CMerge=%v CBreak=%v)", c.CMerge, c.CBreak)
		}
		if c.Window < 1 {
			return fmt.Errorf("superblock: Window %d must be positive", c.Window)
		}
	}
	return nil
}

// Rates are the windowed statistics feeding Equation 1, sampled by the
// controller every Config.Window requests.
type Rates struct {
	// EvictionRate is background evictions divided by total requests.
	EvictionRate float64
	// AccessRate is the fraction of time the ORAM was busy.
	AccessRate float64
	// PrefetchHitRate is prefetch hits divided by blocks prefetched.
	PrefetchHitRate float64
}

// Policy answers merge/break questions for the configured scheme.
type Policy struct {
	cfg   Config
	rates Rates
}

// New builds a Policy. It panics on invalid configuration; the public API
// validates earlier.
func New(cfg Config) *Policy {
	if err := cfg.Validate(); err != nil {
		//proram:invariant configuration errors are programming errors; public entry points run Config.Validate before construction
		panic(err)
	}
	if cfg.Scheme == None {
		cfg.MaxSize = 1
	}
	return &Policy{cfg: cfg, rates: Rates{PrefetchHitRate: 1}}
}

// Config returns the policy's configuration.
func (p *Policy) Config() Config { return p.cfg }

// Scheme returns the active scheme.
func (p *Policy) Scheme() Scheme { return p.cfg.Scheme }

// MaxSize returns the maximum super block size.
func (p *Policy) MaxSize() int { return p.cfg.MaxSize }

// UpdateRates installs the latest window's rates (Dynamic scheme only).
// A negative PrefetchHitRate means the window resolved no prefetches;
// the previous estimate is retained. A zero rate (every prefetch missed)
// is floored to keep the Equation 1 division finite.
func (p *Policy) UpdateRates(r Rates) {
	if r.PrefetchHitRate < 0 {
		r.PrefetchHitRate = p.rates.PrefetchHitRate
	}
	if r.PrefetchHitRate < 0.05 {
		r.PrefetchHitRate = 0.05
	}
	p.rates = r
}

// Rates returns the rates currently in force.
func (p *Policy) Rates() Rates { return p.rates }

// equation1 computes the base threshold of §4.4.2 for the given super
// block size and coefficient.
func (p *Policy) equation1(c float64, sbsize int) float64 {
	s := float64(sbsize)
	return c * s * s * p.rates.EvictionRate * p.rates.AccessRate / p.rates.PrefetchHitRate
}

// MergeThreshold returns the merge-counter threshold for merging two
// size-n neighbors into a size-2n super block.
func (p *Policy) MergeThreshold(n int) float64 {
	if p.cfg.MergeMode == ThresholdStatic {
		// §4.4.1: threshold 2n for size-n halves (2, 4, 8 for n = 1, 2, 4).
		return float64(2 * n)
	}
	// §4.4.2: Equation 1 with the size being created (2n) — "larger blocks
	// incur more dummy accesses". The floor of 1 means a pure ascending
	// scan, whose pair counter nets exactly +1 per pass (the lower half
	// always loads before its neighbor is cached, so each visit is a
	// decrement followed by an increment), merges as soon as pressure is
	// low; Equation 1 raises the bar as eviction/occupancy pressure and
	// prefetch misses appear. The paper's merge/break hysteresis is
	// realized by initializing the break counter to 2n on merge (§4.4.1)
	// rather than by inflating this threshold, which the scan's +1-per-
	// pass dynamics could never reach.
	t := p.equation1(p.cfg.CMerge, 2*n)
	// Equation 1 is multiplicative in the eviction rate, so on a system
	// whose stash absorbs super blocks without background evictions it
	// degenerates to zero and cannot throttle inaccurate merging. The
	// paper notes its equation is "not provably the optimal" and leaves
	// better thresholding open; we add the missing feedback: when the
	// windowed prefetch hit rate falls below one half (merging is wrong
	// more often than right), the threshold rises steeply, pushing it out
	// of reach of the chance co-residency a random pattern produces.
	if phr := p.rates.PrefetchHitRate; phr < 0.5 {
		t += 8 * float64(n) * (0.5 - phr)
	}
	if t < 1 {
		t = 1
	}
	return t
}

// ShouldMerge reports whether a pair of size-n neighbors with the given
// merge-counter value should merge now.
//
//proram:hotpath merge decision inside every dynamic-scheme read
func (p *Policy) ShouldMerge(counter uint8, n int) bool {
	if p.cfg.Scheme != Dynamic {
		return false
	}
	if 2*n > p.cfg.MaxSize {
		return false
	}
	return float64(counter) >= p.MergeThreshold(n)
}

// BreakInitial returns the initial break-counter value for a freshly
// merged super block of size n (§4.4.1: 2n), saturated to the counter
// width.
func (p *Policy) BreakInitial(n int) uint8 {
	v := 2 * n
	if v > 255 {
		v = 255
	}
	return uint8(v)
}

// BreakThreshold returns the break-counter threshold for a size-n super
// block; the block breaks when its counter falls below this value.
func (p *Policy) BreakThreshold(n int) float64 {
	if p.cfg.BreakMode == ThresholdStatic {
		// §4.4.1: break when the counter would fall below zero.
		return 0
	}
	return p.equation1(p.cfg.CBreak, n)
}

// ShouldBreak reports whether a size-n super block should break given the
// raw (pre-saturation, possibly negative) counter value after the
// Algorithm 2 update.
//
//proram:hotpath break decision inside every super-block access
func (p *Policy) ShouldBreak(rawCounter int, n int) bool {
	if p.cfg.Scheme != Dynamic || p.cfg.DisableBreak || n < 2 {
		return false
	}
	return float64(rawCounter) < p.BreakThreshold(n)
}
