package exp

import (
	"fmt"

	"proram/internal/sim"
	"proram/internal/superblock"
	"proram/internal/trace"
)

func init() {
	register("fig6a", "Locality sweep on the synthetic benchmark (Z=4)", fig6a)
	register("fig6b", "Phase-change behaviour of super block variants (Z=4)", fig6b)
	register("fig7", "Super block size sweep on the 100%-locality synthetic benchmark (Z=4)", fig7)
}

// fig67Ops is the full-size synthetic op count.
const fig67Ops = 500_000

// fig7Ops is smaller: the size-8 static configuration thrashes the stash
// (the figure's point), which makes every access cost dozens of background
// evictions; the crossover shape is fully developed at this size.
const fig7Ops = 150_000

// syntheticFactory builds the §5.3 microbenchmark.
func syntheticFactory(ops uint64, locality float64, phaseLen uint64, seed uint64) genFactory {
	cfg := trace.SyntheticConfig{
		Ops:              ops,
		WorkingSetBytes:  2 << 20,
		LocalityFraction: locality,
		RunLen:           32,
		Gap:              6,
		WriteFraction:    0.25,
		PhaseLen:         phaseLen,
		Seed:             401 + seed,
	}
	return func() trace.Generator { return trace.NewSynthetic(cfg) }
}

// z4 applies the synthetic section's Z=4 setting.
func z4(cfg sim.Config) sim.Config {
	cfg.ORAM.Z = 4
	return cfg
}

// fig6a sweeps the fraction of data with locality: the static scheme wins
// only with good locality, the dynamic scheme never loses.
func fig6a(opt Options) (*Table, error) {
	t := &Table{
		ID:      "fig6a",
		Title:   "Speedup vs. percentage of data locality (synthetic, Z=4)",
		Columns: []string{"stat", "dyn"},
	}
	ops := opt.scale(fig67Ops)
	for _, loc := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0} {
		gf := syntheticFactory(ops, loc, 0, opt.Seed)
		base, err := runSim(opt, withWarmup(z4(baseORAM()), ops), gf())
		if err != nil {
			return nil, fmt.Errorf("fig6a loc=%v: %w", loc, err)
		}
		stat, err := runSim(opt, withWarmup(z4(withScheme(baseORAM(), statScheme(2))), ops), gf())
		if err != nil {
			return nil, err
		}
		dyn, err := runSim(opt, withWarmup(z4(withScheme(baseORAM(), dynScheme())), ops), gf())
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.0f%%", loc*100), speedup(base, stat), speedup(base, dyn))
	}
	t.Notes = append(t.Notes, "speedup over baseline ORAM; locality = fraction of data accessed sequentially")
	return t, nil
}

// fig6b compares the Figure 6b variants under phase change: the static
// scheme, static merge without breaking (sm_nb), adaptive merge without
// breaking (am_nb), and full PrORAM (am_ab).
func fig6b(opt Options) (*Table, error) {
	t := &Table{
		ID:      "fig6b",
		Title:   "Phase change: speedup and normalized accesses per variant (synthetic, Z=4)",
		Columns: []string{"speedup", "norm_acc"},
	}
	ops := opt.scale(fig67Ops)
	gf := syntheticFactory(ops, 0.5, ops/8, opt.Seed)
	base, err := runSim(opt, withWarmup(z4(baseORAM()), ops), gf())
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name string
		sb   superblock.Config
	}{
		{"static", statScheme(2)},
		{"sm_nb", superblock.Config{Scheme: superblock.Dynamic, MaxSize: 2,
			MergeMode: superblock.ThresholdStatic, BreakMode: superblock.ThresholdStatic,
			DisableBreak: true, CMerge: 1, CBreak: 1, Window: 1000}},
		{"am_nb", superblock.Config{Scheme: superblock.Dynamic, MaxSize: 2,
			MergeMode: superblock.ThresholdAdaptive, BreakMode: superblock.ThresholdAdaptive,
			DisableBreak: true, CMerge: 1, CBreak: 1, Window: 1000}},
		{"am_ab", dynScheme()},
	}
	for _, v := range variants {
		rep, err := runSim(opt, withWarmup(z4(withScheme(baseORAM(), v.sb)), ops), gf())
		if err != nil {
			return nil, fmt.Errorf("fig6b %s: %w", v.name, err)
		}
		t.AddRow(v.name, speedup(base, rep), normAccesses(base, rep))
	}
	t.Notes = append(t.Notes,
		"phase-change synthetic: sequential and random halves swap every ops/8 operations",
		"sm/am = static/adaptive merge thresholding; nb/ab = no / adaptive breaking")
	return t, nil
}

// fig7 sweeps the (maximum) super block size on a 100%-locality synthetic:
// the static scheme degrades with size (background evictions), the dynamic
// scheme throttles itself.
func fig7(opt Options) (*Table, error) {
	t := &Table{
		ID:      "fig7",
		Title:   "Super block size sweep, 100%-locality synthetic (Z=4)",
		Columns: []string{"stat_speedup", "dyn_speedup", "stat_norm_acc", "dyn_norm_acc"},
	}
	ops := opt.scale(fig7Ops)
	gf := syntheticFactory(ops, 1.0, 0, opt.Seed)
	base, err := runSim(opt, withWarmup(z4(baseORAM()), ops), gf())
	if err != nil {
		return nil, err
	}
	for _, size := range []int{2, 4, 8} {
		stat, err := runSim(opt, withWarmup(z4(withScheme(baseORAM(), statScheme(size))), ops), gf())
		if err != nil {
			return nil, fmt.Errorf("fig7 size=%d: %w", size, err)
		}
		dynCfg := dynScheme()
		dynCfg.MaxSize = size
		dyn, err := runSim(opt, withWarmup(z4(withScheme(baseORAM(), dynCfg)), ops), gf())
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", size),
			speedup(base, stat), speedup(base, dyn),
			normAccesses(base, stat), normAccesses(base, dyn))
	}
	t.Notes = append(t.Notes, "sbsize is the static merge granularity / dynamic maximum size")
	return t, nil
}
