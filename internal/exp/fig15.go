package exp

import (
	"fmt"

	"proram/internal/sim"
	"proram/internal/trace"
)

func init() {
	register("fig15a", "Periodic ORAM accesses on Splash2 (Oint=100)", func(o Options) (*Table, error) {
		return fig15Suite("fig15a", "Periodic ORAM, Splash2", trace.Splash2(o.scale(fig8Ops)), o,
			trace.Splash2MemoryIntensive)
	})
	register("fig15b", "Periodic ORAM accesses on SPEC06 (Oint=100)", func(o Options) (*Table, error) {
		return fig15Suite("fig15b", "Periodic ORAM, SPEC06", trace.SPEC06(o.scale(fig8Ops)), o,
			trace.SPEC06MemoryIntensive)
	})
	register("fig15c", "Periodic ORAM accesses on DBMS (Oint=100)", fig15c)
}

// periodic turns on timing-channel protection. The paper uses Oint = 100
// against a 2364-cycle path access (a 4.2% spacing overhead); the default
// simulated ORAM is smaller and faster, so Oint is scaled to preserve the
// paper's Oint-to-path-latency ratio.
func periodic(cfg sim.Config) sim.Config {
	cfg.ORAM.Periodic = true
	cfg.ORAM.Oint = 50
	return cfg
}

// fig15Row measures one workload: speedups of non-periodic baseline ORAM,
// periodic static, and periodic dynamic — all relative to the periodic
// baseline ORAM, exactly as Figure 15 plots.
func fig15Row(opt Options, name string, ops uint64, gf genFactory) (oramS, statS, dynS float64, err error) {
	periodicBase, err := runSim(opt, withWarmup(periodic(baseORAM()), ops), gf())
	if err != nil {
		return 0, 0, 0, fmt.Errorf("%s/periodic: %w", name, err)
	}
	plain, err := runSim(opt, withWarmup(baseORAM(), ops), gf())
	if err != nil {
		return 0, 0, 0, err
	}
	statRep, err := runSim(opt, withWarmup(periodic(withScheme(baseORAM(), statScheme(2))), ops), gf())
	if err != nil {
		return 0, 0, 0, err
	}
	dynRep, err := runSim(opt, withWarmup(periodic(withScheme(baseORAM(), dynScheme())), ops), gf())
	if err != nil {
		return 0, 0, 0, err
	}
	return speedup(periodicBase, plain), speedup(periodicBase, statRep), speedup(periodicBase, dynRep), nil
}

func fig15Suite(id, title string, suite []trace.ModelParams, opt Options,
	memIntensive func(string) bool) (*Table, error) {
	t := &Table{ID: id, Title: title, Columns: []string{"oram", "stat_intvl", "dyn_intvl"}}
	var sa, sb, sc float64
	var ma, mb, mc float64
	memN := 0
	for _, p := range suite {
		p.Seed += opt.Seed
		o, s, d, err := fig15Row(opt, p.Name, p.Ops, modelFactory(p))
		if err != nil {
			return nil, err
		}
		t.AddRow(p.Name, o, s, d)
		sa += o
		sb += s
		sc += d
		if memIntensive(p.Name) {
			ma += o
			mb += s
			mc += d
			memN++
		}
	}
	n := float64(len(suite))
	t.AddRow("avg", sa/n, sb/n, sc/n)
	if memN > 0 {
		m := float64(memN)
		t.AddRow("mem_avg", ma/m, mb/m, mc/m)
	}
	t.Notes = append(t.Notes,
		"speedup relative to the baseline ORAM with periodic accesses (Oint = 100 cycles)",
		"oram = non-periodic baseline; stat_intvl/dyn_intvl = schemes under periodicity")
	return t, nil
}

func fig15c(opt Options) (*Table, error) {
	t := &Table{ID: "fig15c", Title: "Periodic ORAM, DBMS", Columns: []string{"oram", "stat_intvl", "dyn_intvl"}}
	ycsbCfg := trace.DefaultYCSB(opt.scale(fig8Ops))
	ycsbCfg.Seed += opt.Seed
	o, s, d, err := fig15Row(opt, "YCSB", ycsbCfg.Ops, func() trace.Generator { return trace.NewYCSB(ycsbCfg) })
	if err != nil {
		return nil, err
	}
	t.AddRow("YCSB", o, s, d)
	tp := trace.TPCC(opt.scale(fig8Ops))
	tp.Seed += opt.Seed
	o, s, d, err = fig15Row(opt, "TPCC", tp.Ops, modelFactory(tp))
	if err != nil {
		return nil, err
	}
	t.AddRow("TPCC", o, s, d)
	t.Notes = append(t.Notes, "speedup relative to the baseline ORAM with periodic accesses (Oint = 100)")
	return t, nil
}
