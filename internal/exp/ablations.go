package exp

import (
	"fmt"

	"proram/internal/superblock"
	"proram/internal/trace"
)

// Ablations for the design choices DESIGN.md calls out. These go beyond
// the paper's figures: they isolate the contribution of individual
// mechanisms in our implementation.
func init() {
	register("ablation_plb", "PLB size ablation: recursion overhead vs. PLB capacity", ablationPLB)
	register("ablation_threshold", "Thresholding ablation: static vs adaptive Equation 1", ablationThreshold)
	register("ablation_oint", "Dynamic-Oint extension: dummy savings vs. leaked bits", ablationOint)
	register("ablation_prefill", "Prefill ablation: initialized vs lazily-populated tree", ablationPrefill)
}

// ablationPLB sweeps the position-map lookaside buffer: with no PLB every
// access walks the full recursion; a modest PLB removes most of it.
func ablationPLB(opt Options) (*Table, error) {
	t := &Table{
		ID:      "ablation_plb",
		Title:   "Baseline ORAM completion time and recursion share vs PLB capacity",
		Columns: []string{"norm_time", "posmap_path_share", "plb_hit_rate"},
	}
	p := trace.ByName(trace.Splash2(opt.scale(fig8Ops)), "ocean_c")[0]
	p.Seed += opt.Seed
	gf := modelFactory(p)

	ref := withWarmup(baseORAM(), p.Ops)
	ref.ORAM.PLBBlocks = 128
	refRep, err := runSim(opt, ref, gf())
	if err != nil {
		return nil, err
	}
	for _, plb := range []int{0, 16, 64, 128, 512} {
		cfg := withWarmup(baseORAM(), p.Ops)
		cfg.ORAM.PLBBlocks = plb
		rep, err := runSim(opt, cfg, gf())
		if err != nil {
			return nil, fmt.Errorf("ablation_plb %d: %w", plb, err)
		}
		share := float64(rep.ORAM.PosMapPaths+rep.ORAM.PLBWritebackPaths) /
			float64(rep.ORAM.PathAccesses)
		hits := float64(rep.ORAM.PLBHits)
		total := hits + float64(rep.ORAM.PLBMisses)
		hitRate := 0.0
		if total > 0 {
			hitRate = hits / total
		}
		t.AddRow(fmt.Sprintf("%d", plb), normTime(refRep, rep), share, hitRate)
	}
	t.Notes = append(t.Notes, "ocean_c; norm_time is relative to the default PLB (128 blocks)")
	return t, nil
}

// ablationThreshold isolates §4.4's thresholding choice: the dynamic
// scheme with the static schedule vs the adaptive Equation 1, on a
// good-locality benchmark, a bad one, and the phase-change synthetic.
func ablationThreshold(opt Options) (*Table, error) {
	t := &Table{
		ID:      "ablation_threshold",
		Title:   "Dynamic scheme speedup: static vs adaptive thresholding",
		Columns: []string{"static_thresh", "adaptive_thresh"},
	}
	staticT := superblock.Config{Scheme: superblock.Dynamic, MaxSize: 2,
		MergeMode: superblock.ThresholdStatic, BreakMode: superblock.ThresholdStatic,
		CMerge: 1, CBreak: 1, Window: 1000}
	cases := []struct {
		name string
		gf   genFactory
		ops  uint64
	}{}
	for _, name := range []string{"ocean_c", "radix"} {
		p := trace.ByName(trace.Splash2(opt.scale(fig8Ops)), name)[0]
		p.Seed += opt.Seed
		cases = append(cases, struct {
			name string
			gf   genFactory
			ops  uint64
		}{name, modelFactory(p), p.Ops})
	}
	ops := opt.scale(fig67Ops)
	cases = append(cases, struct {
		name string
		gf   genFactory
		ops  uint64
	}{"phase_synth", syntheticFactory(ops, 0.5, ops/8, opt.Seed), ops})

	for _, c := range cases {
		base, err := runSim(opt, withWarmup(baseORAM(), c.ops), c.gf())
		if err != nil {
			return nil, err
		}
		st, err := runSim(opt, withWarmup(withScheme(baseORAM(), staticT), c.ops), c.gf())
		if err != nil {
			return nil, err
		}
		ad, err := runSim(opt, withWarmup(withScheme(baseORAM(), dynScheme()), c.ops), c.gf())
		if err != nil {
			return nil, err
		}
		t.AddRow(c.name, speedup(base, st), speedup(base, ad))
	}
	t.Notes = append(t.Notes,
		"static thresholding merges at counter >= 2n; adaptive uses Equation 1 feedback")
	return t, nil
}

// ablationOint evaluates the §2.5 dynamic-interval extension on a bursty
// workload: how many dummy accesses the adaptive ladder saves and what the
// declared leak costs.
func ablationOint(opt Options) (*Table, error) {
	t := &Table{
		ID:      "ablation_oint",
		Title:   "Dynamic Oint on a bursty workload (vs fixed-interval periodic ORAM)",
		Columns: []string{"norm_time", "norm_dummies", "leaked_bits"},
	}
	ops := opt.scale(fig67Ops)
	// Bursty pattern: a compute-heavy profile whose long gaps force the
	// fixed schedule to burn dummies.
	p := trace.ModelParams{
		Name: "bursty", Ops: ops, WorkingSetBytes: 1 << 20, HotSetBytes: 192 << 10,
		HotFraction: 0.9, SeqFraction: 0.5, RunLen: 8, Gap: 600,
		WriteFraction: 0.25, Seed: 901 + opt.Seed,
	}
	gf := modelFactory(p)

	fixed := withWarmup(baseORAM(), p.Ops)
	fixed.ORAM.Periodic = true
	fixed.ORAM.Oint = 50
	fixedRep, err := runSim(opt, fixed, gf())
	if err != nil {
		return nil, err
	}
	t.AddRow("fixed", 1, 1, 0)

	for _, ladder := range []uint64{4, 16, 64} {
		cfg := withWarmup(baseORAM(), p.Ops)
		cfg.ORAM.Periodic = true
		cfg.ORAM.Oint = 50
		cfg.ORAM.DynamicOint = true
		cfg.ORAM.OintMax = 50 * ladder
		rep, err := runSim(opt, cfg, gf())
		if err != nil {
			return nil, fmt.Errorf("ablation_oint ladder=%d: %w", ladder, err)
		}
		normDummies := 0.0
		if fixedRep.ORAM.DummyAccesses > 0 {
			normDummies = float64(rep.ORAM.DummyAccesses) / float64(fixedRep.ORAM.DummyAccesses)
		}
		t.AddRow(fmt.Sprintf("ladder_x%d", ladder),
			normTime(fixedRep, rep), normDummies, float64(rep.ORAM.OintTransitions))
	}
	t.Notes = append(t.Notes,
		"fixed: Oint=50 throughout; ladder_xK adapts within [50, 50K] doubling per epoch",
		"leaked_bits = interval transitions (one bit each, the extension's declared leak)")
	return t, nil
}

// ablationPrefill shows why the simulator initializes the tree: a lazily
// populated ORAM under-reports tree congestion.
func ablationPrefill(opt Options) (*Table, error) {
	t := &Table{
		ID:      "ablation_prefill",
		Title:   "Initialized vs lazily-populated tree (baseline ORAM, ocean_c)",
		Columns: []string{"cycles", "stash_high_water", "tree_used_fraction"},
	}
	p := trace.ByName(trace.Splash2(opt.scale(fig8Ops)), "ocean_c")[0]
	p.Seed += opt.Seed
	for _, prefill := range []bool{true, false} {
		cfg := withWarmup(baseORAM(), p.Ops)
		cfg.ORAM.Prefill = prefill
		rep, err := runSim(opt, cfg, modelFactory(p)())
		if err != nil {
			return nil, err
		}
		label := "prefilled"
		used := 0.49 // by construction: ~50% slot utilization
		if !prefill {
			label = "lazy"
			used = 0 // only touched blocks exist; see note
		}
		t.AddRow(label, float64(rep.Cycles), float64(rep.ORAM.StashHighWater), used)
	}
	t.Notes = append(t.Notes,
		"a lazy tree holds only touched blocks, so stash/eviction pressure is unrealistically low;",
		"experiments therefore default to the initialized (prefilled) tree")
	return t, nil
}
