package exp

import (
	"fmt"

	"proram/internal/dram/banked"
	"proram/internal/sim"
	"proram/internal/trace"
)

// DRAM co-design experiments: the flat/banked/packed device ablation and
// the pinned BENCH_1 baseline recording simulated cycles per ORAM access
// under each memory model.
func init() {
	register("ablation_dram", "Banked DRAM: flat vs banked vs banked+subtree-packed across trace models", ablationDRAM)
	register("bench1", "BENCH_1 baseline: simulated cycles per ORAM access under flat, banked, and packed DRAM", bench1)
}

const (
	// dramBlocks sizes the ORAM to the trace models' footprint (8 MB at
	// 128-byte blocks) so the tree depth matches what the layout packs.
	dramBlocks = 1 << 16
	// bench1Ops / ablationDRAMOps are the full-scale operation counts.
	bench1Ops       = 20_000
	ablationDRAMOps = 8_000
)

// dramVariant is one memory model under test.
type dramVariant struct {
	name string
	cfg  *banked.Config // nil = legacy flat channel
}

// dramVariants returns the three devices every DRAM experiment compares.
func dramVariants() []dramVariant {
	linear := banked.DefaultConfig()
	linear.Layout = banked.LayoutLinear
	packed := banked.DefaultConfig()
	return []dramVariant{
		{"flat", nil},
		{"banked", &linear},
		{"packed", &packed},
	}
}

// dramModels are the trace profiles the ablation sweeps: a streaming scan,
// a strided walk (short runs separated by jumps), and a uniform random
// reference stream. They exist only here — the benchmark suites model
// whole programs, while these isolate one access pattern each so the
// device comparison is legible.
func dramModels(ops, seed uint64) []trace.ModelParams {
	mk := func(name string, seq float64, run int, seedOff uint64) trace.ModelParams {
		return trace.ModelParams{
			Name: name, Ops: ops, WorkingSetBytes: 4 << 20, HotSetBytes: 64 << 10,
			HotFraction: 0.35, SeqFraction: seq, RunLen: run,
			Gap: 8, WriteFraction: 0.3, Seed: 301 + seedOff + seed,
		}
	}
	return []trace.ModelParams{
		mk("sequential", 0.95, 64, 0),
		mk("strided", 0.70, 4, 1),
		mk("random", 0.05, 1, 2),
	}
}

// dramSim builds the Table 1 ORAM system scaled to the models' footprint,
// with the given device behind the controller.
func dramSim(v dramVariant) sim.Config {
	cfg := baseORAM()
	cfg.ORAM.NumBlocks = dramBlocks
	cfg.ORAM.Banked = v.cfg
	return cfg
}

// cyclesPerAccess is the experiments' headline integer metric.
func cyclesPerAccess(rep sim.Report) uint64 {
	if rep.ORAM.PathAccesses == 0 {
		return 0
	}
	return rep.Cycles / rep.ORAM.PathAccesses
}

// ablationDRAM compares the three devices on every trace model. Banking
// overlaps a path's per-bucket reads across channels; the subtree-packed
// layout additionally turns the hot top-of-tree levels into open-row hits.
func ablationDRAM(opt Options) (*Table, error) {
	t := &Table{
		ID:      "ablation_dram",
		Title:   "DRAM device ablation: flat vs banked vs banked+subtree-packed",
		Columns: []string{"cycles", "path_accesses", "cycles_per_access", "row_hit_permille"},
	}
	ops := opt.scale(ablationDRAMOps)
	for _, m := range dramModels(ops, opt.Seed) {
		for _, v := range dramVariants() {
			rep, err := runSim(opt, dramSim(v), trace.NewModel(m))
			if err != nil {
				return nil, fmt.Errorf("ablation_dram %s/%s: %w", m.Name, v.name, err)
			}
			var hitPermille uint64
			if n := rep.Banked.RowHits + rep.Banked.RowMisses + rep.Banked.RowConflicts; n > 0 {
				hitPermille = rep.Banked.RowHits * 1000 / n
			}
			t.AddRow(m.Name+"/"+v.name,
				float64(rep.Cycles),
				float64(rep.ORAM.PathAccesses),
				float64(cyclesPerAccess(rep)),
				float64(hitPermille))
		}
	}
	t.Notes = append(t.Notes,
		"rows are model/device; flat is the legacy serialized channel (row stats zero)",
		"banked overlaps per-bucket reads across 2 channels; packed additionally co-locates depth-k subtrees in DRAM rows")
	return t, nil
}

// bench1 produces the second pinned benchmark baseline (BENCH_1.json):
// deterministic integers only so the committed artifact is byte-stable.
// Wall-clock time is deliberately absent — proram-bench reports it on
// stderr.
func bench1(opt Options) (*Table, error) {
	t := &Table{
		ID:      "bench1",
		Title:   "BENCH_1: simulated cycles per ORAM access under flat, banked, and packed DRAM",
		Columns: []string{"ops", "cycles", "path_accesses", "cycles_per_access", "row_hits", "row_conflicts"},
	}
	ops := opt.scale(bench1Ops)
	for _, m := range dramModels(ops, opt.Seed) {
		for _, v := range dramVariants() {
			rep, err := runSim(opt, dramSim(v), trace.NewModel(m))
			if err != nil {
				return nil, fmt.Errorf("bench1 %s/%s: %w", m.Name, v.name, err)
			}
			t.AddRow(m.Name+"/"+v.name,
				float64(rep.MemOps),
				float64(rep.Cycles),
				float64(rep.ORAM.PathAccesses),
				float64(cyclesPerAccess(rep)),
				float64(rep.Banked.RowHits),
				float64(rep.Banked.RowConflicts))
		}
	}
	t.Notes = append(t.Notes,
		"every cell is a deterministic integer: two runs with the same scale and seed are byte-identical",
		"cycles_per_access = total simulated cycles / ORAM path accesses (integer division)")
	return t, nil
}
