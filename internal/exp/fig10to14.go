package exp

import (
	"fmt"

	"proram/internal/cache"
	"proram/internal/sim"
	"proram/internal/trace"
)

func init() {
	register("fig10", "Merge/break coefficient sweep (Equation 1's C)", fig10)
	register("fig11", "DRAM bandwidth sweep", fig11)
	register("fig12", "Stash size sweep", fig12)
	register("fig13", "Z value comparison", fig13)
	register("fig14", "Cacheline size sweep", fig14)
}

// sensitivityBenchmarks picks the paper's sensitivity-study pair: one
// benchmark with good spatial locality and one with bad.
func sensitivityBenchmarks(opt Options, names ...string) []trace.ModelParams {
	suite := trace.Splash2(opt.scale(fig8Ops))
	ps := trace.ByName(suite, names...)
	for i := range ps {
		ps[i].Seed += opt.Seed
	}
	return ps
}

// fig10 sweeps CMerge/CBreak as in §5.5.1 (m{x}b{y} labels).
func fig10(opt Options) (*Table, error) {
	benches := sensitivityBenchmarks(opt, "ocean_c", "ocean_nc", "fft", "volrend")
	combos := []struct {
		label          string
		cMerge, cBreak float64
	}{
		{"m1b1", 1, 1}, {"m2b2", 2, 2}, {"m4b1", 4, 1}, {"m4b4", 4, 4}, {"m8b8", 8, 8},
	}
	t := &Table{ID: "fig10", Title: "Dynamic-scheme speedup per merge/break coefficient"}
	for _, c := range combos {
		t.Columns = append(t.Columns, c.label)
	}
	for _, p := range benches {
		gf := modelFactory(p)
		base, err := runSim(opt, withWarmup(baseORAM(), p.Ops), gf())
		if err != nil {
			return nil, fmt.Errorf("fig10 %s: %w", p.Name, err)
		}
		cells := make([]float64, 0, len(combos))
		for _, c := range combos {
			sb := dynScheme()
			sb.CMerge = c.cMerge
			sb.CBreak = c.cBreak
			rep, err := runSim(opt, withWarmup(withScheme(baseORAM(), sb), p.Ops), gf())
			if err != nil {
				return nil, fmt.Errorf("fig10 %s %s: %w", p.Name, c.label, err)
			}
			cells = append(cells, speedup(base, rep))
		}
		t.AddRow(p.Name, cells...)
	}
	t.Notes = append(t.Notes, "mXbY: CMerge=X, CBreak=Y in Equation 1; speedup over baseline ORAM")
	return t, nil
}

// sweepTriple runs oram/stat/dyn for one workload and one config mutation,
// reporting completion time normalized to the insecure DRAM system.
func sweepTriple(opt Options, p trace.ModelParams, mutate func(*sim.Config)) (oramT, statT, dynT float64, err error) {
	gf := modelFactory(p)
	dramCfg := withWarmup(baseDRAM(), p.Ops)
	mutate(&dramCfg)
	dramRep, err := runSim(opt, dramCfg, gf())
	if err != nil {
		return 0, 0, 0, err
	}
	run := func(cfg sim.Config) (float64, error) {
		cfg = withWarmup(cfg, p.Ops)
		mutate(&cfg)
		rep, err := runSim(opt, cfg, gf())
		if err != nil {
			return 0, err
		}
		return normTime(dramRep, rep), nil
	}
	if oramT, err = run(baseORAM()); err != nil {
		return 0, 0, 0, err
	}
	if statT, err = run(withScheme(baseORAM(), statScheme(2))); err != nil {
		return 0, 0, 0, err
	}
	if dynT, err = run(withScheme(baseORAM(), dynScheme())); err != nil {
		return 0, 0, 0, err
	}
	return oramT, statT, dynT, nil
}

// sweepFigure builds a fig11/12/13/14-style table: rows are
// benchmark/sweep-point combinations, columns are oram/stat/dyn completion
// times normalized to DRAM.
func sweepFigure(opt Options, id, title string, benches []trace.ModelParams,
	points []string, mutate func(point string, cfg *sim.Config)) (*Table, error) {
	t := &Table{ID: id, Title: title, Columns: []string{"oram", "stat", "dyn"}}
	for _, p := range benches {
		for _, pt := range points {
			o, s, d, err := sweepTriple(opt, p, func(cfg *sim.Config) { mutate(pt, cfg) })
			if err != nil {
				return nil, fmt.Errorf("%s %s@%s: %w", id, p.Name, pt, err)
			}
			t.AddRow(p.Name+"/"+pt, o, s, d)
		}
	}
	t.Notes = append(t.Notes, "completion time normalized to the insecure DRAM system (lower is better)")
	return t, nil
}

func fig11(opt Options) (*Table, error) {
	return sweepFigure(opt, "fig11", "Completion time vs. DRAM bandwidth (GB/s)",
		sensitivityBenchmarks(opt, "ocean_c", "volrend"),
		[]string{"4", "8", "16"},
		func(pt string, cfg *sim.Config) {
			var bw float64
			fmt.Sscanf(pt, "%f", &bw)
			cfg.DRAM.BandwidthGBps = bw
		})
}

func fig12(opt Options) (*Table, error) {
	return sweepFigure(opt, "fig12", "Completion time vs. stash size (blocks)",
		sensitivityBenchmarks(opt, "ocean_c", "volrend"),
		[]string{"25", "50", "100", "200", "400"},
		func(pt string, cfg *sim.Config) {
			var n int
			fmt.Sscanf(pt, "%d", &n)
			cfg.ORAM.StashLimit = n
		})
}

func fig13(opt Options) (*Table, error) {
	return sweepFigure(opt, "fig13", "Completion time vs. Z",
		sensitivityBenchmarks(opt, "fft", "ocean_c", "ocean_nc", "volrend"),
		[]string{"Z3", "Z4"},
		func(pt string, cfg *sim.Config) {
			if pt == "Z3" {
				cfg.ORAM.Z = 3
			} else {
				cfg.ORAM.Z = 4
			}
		})
}

func fig14(opt Options) (*Table, error) {
	return sweepFigure(opt, "fig14", "Completion time vs. cacheline size (bytes)",
		sensitivityBenchmarks(opt, "ocean_c", "volrend"),
		[]string{"64", "128", "256"},
		func(pt string, cfg *sim.Config) {
			var b int
			fmt.Sscanf(pt, "%d", &b)
			cfg.BlockBytes = b
			cfg.Hier.L1.LineBytes = b
			cfg.Hier.L2.LineBytes = b
		})
}

var _ = cache.Config{} // cacheline sweep touches hierarchy config types
