// Package exp regenerates every table and figure of the paper's evaluation
// (§5). Each experiment is registered under the paper's table/figure id
// ("fig8a", "fig12", ...) and produces a Table whose rows/series mirror
// what the paper plots, runnable from cmd/proram-bench, from bench_test.go
// and from tests that assert the qualitative shapes.
package exp

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"proram/internal/obs"
	"proram/internal/obs/audit"
	"proram/internal/sim"
	"proram/internal/superblock"
	"proram/internal/trace"
)

// Options scales an experiment.
type Options struct {
	// Scale multiplies every workload's operation count. 1.0 reproduces
	// the full-size runs; bench_test.go uses smaller scales. 0 means 1.0.
	Scale float64
	// Seed offsets the workload seeds, for variance studies.
	Seed uint64
	// Obs attaches an observability recorder to every system the
	// experiment builds; nil (the default) runs un-instrumented. Systems
	// appear in the trace as successive processes.
	Obs *obs.Recorder
	// Audit, when non-nil, collects the full per-configuration audit
	// reports of auditing experiments (audit2) — the suite serialized as
	// the pinned AUDIT artifact.
	Audit *audit.Suite
}

func (o Options) scale(ops uint64) uint64 {
	s := o.Scale
	if s == 0 {
		s = 1
	}
	n := uint64(float64(ops) * s)
	if n < 1000 {
		n = 1000
	}
	return n
}

// Table is one regenerated table/figure.
type Table struct {
	ID      string
	Title   string
	Columns []string // value column names (the figure's series)
	Rows    []Row
	Notes   []string
}

// Row is one x-axis point (a benchmark, a sweep value, ...).
type Row struct {
	Label string
	Cells []float64
}

// AddRow appends a row, checking arity.
func (t *Table) AddRow(label string, cells ...float64) {
	if len(cells) != len(t.Columns) {
		//proram:invariant a row arity mismatch is a harness bug in a compiled-in experiment table, not runtime input
		panic(fmt.Sprintf("exp: row %q has %d cells for %d columns", label, len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, Row{Label: label, Cells: cells})
}

// Cell returns the value at (rowLabel, column); ok is false if absent.
func (t *Table) Cell(rowLabel, column string) (float64, bool) {
	ci := -1
	for i, c := range t.Columns {
		if c == column {
			ci = i
		}
	}
	if ci < 0 {
		return 0, false
	}
	for _, r := range t.Rows {
		if r.Label == rowLabel {
			return r.Cells[ci], true
		}
	}
	return 0, false
}

// MustCell is Cell that panics when the coordinate is missing (harness
// programming error).
func (t *Table) MustCell(rowLabel, column string) float64 {
	v, ok := t.Cell(rowLabel, column)
	if !ok {
		//proram:invariant Must-prefixed accessor, documented to panic when the harness asks for a cell it never produced
		panic(fmt.Sprintf("exp: %s has no cell (%q, %q)", t.ID, rowLabel, column))
	}
	return v
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	width := 14
	for _, r := range t.Rows {
		if len(r.Label)+2 > width {
			width = len(r.Label) + 2
		}
	}
	fmt.Fprintf(&b, "%-*s", width, "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%14s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", width, r.Label)
		for _, v := range r.Cells {
			fmt.Fprintf(&b, "%14.4f", v)
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("label")
	for _, c := range t.Columns {
		b.WriteByte(',')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(r.Label)
		for _, v := range r.Cells {
			fmt.Fprintf(&b, ",%g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// JSON renders the table as deterministic indented JSON: field order is
// fixed by the struct, rows keep their append order, and no timestamps or
// environment data are included — two identical runs produce identical
// bytes. This is the format pinned benchmark baselines (BENCH_0.json) are
// committed in.
func (t *Table) JSON() ([]byte, error) {
	out := struct {
		ID      string   `json:"id"`
		Title   string   `json:"title"`
		Columns []string `json:"columns"`
		Rows    []Row    `json:"rows"`
		Notes   []string `json:"notes,omitempty"`
	}{t.ID, t.Title, t.Columns, t.Rows, t.Notes}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Runner regenerates one table/figure.
type Runner func(Options) (*Table, error)

var registry = map[string]struct {
	title  string
	runner Runner
}{}

// register wires an experiment id to its runner; called from init().
func register(id, title string, r Runner) {
	if _, dup := registry[id]; dup {
		//proram:invariant duplicate registration is an init-time wiring mistake that must stop the binary
		panic("exp: duplicate experiment " + id)
	}
	registry[id] = struct {
		title  string
		runner Runner
	}{title, r}
}

// IDs returns every registered experiment id, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	//proram:allow maporder keys are collected then sorted before use
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Title returns an experiment's description.
func Title(id string) (string, bool) {
	e, ok := registry[id]
	return e.title, ok
}

// Run regenerates the identified table/figure.
func Run(id string, opt Options) (*Table, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return e.runner(opt)
}

// ---- shared helpers ----

// speedup is the paper's metric: T_base/T_variant - 1.
func speedup(base, variant sim.Report) float64 {
	return float64(base.Cycles)/float64(variant.Cycles) - 1
}

// normAccesses is the paper's energy proxy: variant accesses normalized to
// the baseline.
func normAccesses(base, variant sim.Report) float64 {
	if base.MemoryAccesses == 0 {
		return 0
	}
	return float64(variant.MemoryAccesses) / float64(base.MemoryAccesses)
}

// normTime normalizes a variant's completion time to a baseline's.
func normTime(base, variant sim.Report) float64 {
	return float64(variant.Cycles) / float64(base.Cycles)
}

// baseORAM returns the Table 1 ORAM system configuration.
func baseORAM() sim.Config {
	return sim.DefaultConfig(sim.TechORAM)
}

// baseDRAM returns the insecure DRAM system configuration.
func baseDRAM() sim.Config {
	return sim.DefaultConfig(sim.TechDRAM)
}

// warmupFraction is the share of each workload executed unmeasured before
// the region of interest, matching the steady-state methodology of the
// paper's Graphite runs.
const warmupFraction = 0.4

// withWarmup sets the standard warmup for a workload of the given length.
func withWarmup(cfg sim.Config, ops uint64) sim.Config {
	cfg.WarmupOps = uint64(float64(ops) * warmupFraction)
	return cfg
}

// withScheme returns cfg with the given super block scheme installed.
func withScheme(cfg sim.Config, s superblock.Config) sim.Config {
	cfg.ORAM.Super = s
	return cfg
}

// dynScheme is PrORAM's default dynamic configuration.
func dynScheme() superblock.Config { return superblock.DefaultConfig() }

// statScheme is the prior static scheme at the given granularity.
func statScheme(size int) superblock.Config {
	return superblock.Config{Scheme: superblock.Static, MaxSize: size}
}

// runSim builds and runs one system on a fresh generator, attaching the
// options' recorder (if any) so every system an experiment builds shows up
// in the trace.
func runSim(opt Options, cfg sim.Config, g trace.Generator) (sim.Report, error) {
	cfg.Obs = opt.Obs
	s, err := sim.New(cfg)
	if err != nil {
		return sim.Report{}, err
	}
	return s.Run(g)
}

// genFactory builds fresh generators for repeated runs of one workload.
type genFactory func() trace.Generator

// modelFactory adapts a benchmark profile.
func modelFactory(p trace.ModelParams) genFactory {
	return func() trace.Generator { return trace.NewModel(p) }
}
