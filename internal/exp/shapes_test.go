package exp

import (
	"sync"
	"testing"
)

// Shape tests assert the qualitative results of each paper figure — who
// wins, where the crossovers are — at a reduced scale. They are the
// reproduction's regression net. Run with -short to skip them.
//
// The four most expensive figures (6a, 7, 9, 12) live in the sibling
// test-only package internal/exp/shapes: at full scale the whole suite
// costs ~11 CPU-minutes, and go test's default 10-minute timeout is
// charged per test binary, so the suite is split across two binaries.

var (
	cacheMu    sync.Mutex
	tableCache = map[string]*Table{}
)

// shapeScale is 1.0: the shape assertions hold at the paper-size runs
// (the dynamic scheme needs the full run to mature its super blocks).
// The whole suite takes ~10 minutes; `go test -short` skips it.
const shapeScale = 1.0

func cached(t *testing.T, id string) *Table {
	t.Helper()
	if testing.Short() {
		t.Skip("figure-shape test skipped in -short mode")
	}
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if tb, ok := tableCache[id]; ok {
		return tb
	}
	tb, err := Run(id, Options{Scale: shapeScale})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	tableCache[id] = tb
	return tb
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig5", "fig6a", "fig6b", "fig7", "fig8a", "fig8b",
		"fig8c", "fig9a", "fig9b", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15a", "fig15b", "fig15c",
		"ablation_plb", "ablation_threshold", "ablation_oint", "ablation_prefill",
		"ablation_shard", "bench0", "ablation_dram", "bench1", "audit2"}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
		if _, ok := Title(id); !ok {
			t.Errorf("experiment %s has no title", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(IDs()), len(want))
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", Options{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTableHelpers(t *testing.T) {
	tb := &Table{ID: "x", Title: "t", Columns: []string{"a", "b"}}
	tb.AddRow("r1", 1, 2)
	if v := tb.MustCell("r1", "b"); v != 2 {
		t.Fatalf("MustCell = %v", v)
	}
	if _, ok := tb.Cell("r1", "c"); ok {
		t.Fatal("missing column found")
	}
	if _, ok := tb.Cell("r2", "a"); ok {
		t.Fatal("missing row found")
	}
	if got := tb.CSV(); got != "label,a,b\nr1,1,2\n" {
		t.Fatalf("CSV = %q", got)
	}
	if tb.Format() == "" {
		t.Fatal("empty Format")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("bad arity accepted")
			}
		}()
		tb.AddRow("bad", 1)
	}()
}

// Figure 5: prefetching helps DRAM, not ORAM.
func TestFig5Shape(t *testing.T) {
	tb := cached(t, "fig5")
	dram := tb.MustCell("avg", "dram_pre")
	oram := tb.MustCell("avg", "oram_pre")
	if dram < 0.01 {
		t.Errorf("stream prefetching did not help DRAM: avg %.4f", dram)
	}
	if oram > dram/2 {
		t.Errorf("ORAM prefetching gained %.4f, close to DRAM's %.4f — contradicts Figure 5", oram, dram)
	}
}

// Figure 6b: under phase change, adaptive merging clearly beats static-
// threshold merging, and full PrORAM (am_ab) stays close to the best
// variant. (In the paper the break mechanism also pulls ahead of the
// static scheme via background-eviction pressure; our simulator's greedy
// write-back absorbs more of that pressure — see EXPERIMENTS.md.)
func TestFig6bShape(t *testing.T) {
	tb := cached(t, "fig6b")
	amab := tb.MustCell("am_ab", "speedup")
	amnb := tb.MustCell("am_nb", "speedup")
	smnb := tb.MustCell("sm_nb", "speedup")
	if amnb <= smnb {
		t.Errorf("adaptive merging (%.4f) should beat static-threshold merging (%.4f)", amnb, smnb)
	}
	if amab < smnb {
		t.Errorf("am_ab (%.4f) should beat sm_nb (%.4f) under phase change", amab, smnb)
	}
	if amab < 0.02 {
		t.Errorf("am_ab gained only %.4f under phase change", amab)
	}
	best := amnb
	if s := tb.MustCell("static", "speedup"); s > best {
		best = s
	}
	if amab < best-0.05 {
		t.Errorf("am_ab (%.4f) fell far below the best variant (%.4f)", amab, best)
	}
}

// Figure 8a: dynamic never collapses, static collapses on bad locality,
// ocean_c is the biggest dynamic winner, and the dynamic average beats the
// static average.
func TestFig8aShape(t *testing.T) {
	tb := cached(t, "fig8a")
	if v := tb.MustCell("volrend", "stat_speedup"); v > -0.02 {
		t.Errorf("static on volrend should lose clearly, got %.4f", v)
	}
	if v := tb.MustCell("radix", "stat_speedup"); v > -0.05 {
		t.Errorf("static on radix should lose clearly, got %.4f", v)
	}
	var maxDyn float64
	var maxName string
	for _, r := range tb.Rows {
		if r.Label == "avg" || r.Label == "mem_avg" {
			continue
		}
		dyn := tb.MustCell(r.Label, "dyn_speedup")
		if dyn < -0.06 {
			t.Errorf("dynamic lost %.4f on %s; the paper's scheme never collapses", dyn, r.Label)
		}
		if dyn > maxDyn {
			maxDyn, maxName = dyn, r.Label
		}
	}
	if maxName != "ocean_c" {
		t.Errorf("biggest dynamic winner is %s (%.4f), paper says ocean_c", maxName, maxDyn)
	}
	if avgD, avgS := tb.MustCell("avg", "dyn_speedup"), tb.MustCell("avg", "stat_speedup"); avgD <= avgS {
		t.Errorf("dynamic average (%.4f) should beat static average (%.4f)", avgD, avgS)
	}
	if v := tb.MustCell("mem_avg", "dyn_speedup"); v < 0.03 {
		t.Errorf("dynamic memory-intensive average %.4f too small", v)
	}
	// Energy: dynamic reduces total ORAM accesses on memory-bound work.
	if v := tb.MustCell("mem_avg", "dyn_norm_acc"); v >= 1 {
		t.Errorf("dynamic did not reduce memory accesses: mem_avg norm %.4f", v)
	}
}

// Figure 8b/8c: same stability claims on SPEC06 and DBMS.
func TestFig8bShape(t *testing.T) {
	tb := cached(t, "fig8b")
	for _, bad := range []string{"sjeng", "astar", "omnet", "mcf"} {
		if v := tb.MustCell(bad, "stat_speedup"); v > 0 {
			t.Errorf("static on %s should lose (pointer-chasing), got %.4f", bad, v)
		}
	}
	if avgD, avgS := tb.MustCell("avg", "dyn_speedup"), tb.MustCell("avg", "stat_speedup"); avgD <= avgS {
		t.Errorf("dynamic average (%.4f) should beat static average (%.4f)", avgD, avgS)
	}
}

func TestFig8cShape(t *testing.T) {
	tb := cached(t, "fig8c")
	ycsb := tb.MustCell("YCSB", "dyn_speedup")
	tpcc := tb.MustCell("TPCC", "dyn_speedup")
	if ycsb < tpcc {
		t.Errorf("YCSB dyn gain (%.4f) should exceed TPCC's (%.4f)", ycsb, tpcc)
	}
	if ycsb < 0.03 {
		t.Errorf("YCSB dyn gain %.4f too small (paper: 23.6%%)", ycsb)
	}
	if v := tb.MustCell("TPCC", "stat_speedup"); v > 0 {
		t.Errorf("static on TPCC should lose, got %.4f", v)
	}
}

// Figure 10: coefficients matter little for bad-locality benchmarks.
func TestFig10Shape(t *testing.T) {
	tb := cached(t, "fig10")
	v1 := tb.MustCell("volrend", "m1b1")
	v8 := tb.MustCell("volrend", "m8b8")
	if diff := v1 - v8; diff > 0.05 || diff < -0.05 {
		t.Errorf("volrend should be insensitive to coefficients: m1b1 %.4f vs m8b8 %.4f", v1, v8)
	}
}

// Figure 11: the dynamic gain on memory-bound work persists across
// bandwidths, and static stays worse than baseline on volrend everywhere.
func TestFig11Shape(t *testing.T) {
	tb := cached(t, "fig11")
	for _, bw := range []string{"4", "8", "16"} {
		o := tb.MustCell("ocean_c/"+bw, "oram")
		d := tb.MustCell("ocean_c/"+bw, "dyn")
		if d > o {
			t.Errorf("dyn slower than baseline on ocean_c at %s GB/s: %.3f vs %.3f", bw, d, o)
		}
		vo := tb.MustCell("volrend/"+bw, "oram")
		vs := tb.MustCell("volrend/"+bw, "stat")
		if vs < vo {
			t.Errorf("static should hurt volrend at %s GB/s: %.3f vs %.3f", bw, vs, vo)
		}
	}
}

// Figure 13: Z=3 beats Z=4 for the baseline, and the dynamic scheme keeps
// its (non-negative) standing at both Z values.
func TestFig13Shape(t *testing.T) {
	tb := cached(t, "fig13")
	for _, b := range []string{"fft", "ocean_c", "ocean_nc", "volrend"} {
		z3 := tb.MustCell(b+"/Z3", "oram")
		z4 := tb.MustCell(b+"/Z4", "oram")
		if z4 <= z3 {
			t.Errorf("%s: baseline Z=4 (%.3f) should be slower than Z=3 (%.3f)", b, z4, z3)
		}
		for _, z := range []string{"Z3", "Z4"} {
			o := tb.MustCell(b+"/"+z, "oram")
			d := tb.MustCell(b+"/"+z, "dyn")
			if d > o*1.05 {
				t.Errorf("%s/%s: dyn %.3f much slower than baseline %.3f", b, z, d, o)
			}
		}
	}
}

// Figure 14: scheme behaviour is qualitatively stable across cacheline
// sizes: dyn never collapses; static still hurts volrend at 128/256.
func TestFig14Shape(t *testing.T) {
	tb := cached(t, "fig14")
	for _, sz := range []string{"64", "128", "256"} {
		o := tb.MustCell("ocean_c/"+sz, "oram")
		d := tb.MustCell("ocean_c/"+sz, "dyn")
		if d > o*1.05 {
			t.Errorf("ocean_c@%sB: dyn %.3f collapsed vs baseline %.3f", sz, d, o)
		}
	}
	if vs, vo := tb.MustCell("volrend/128", "stat"), tb.MustCell("volrend/128", "oram"); vs < vo {
		t.Errorf("static should hurt volrend at 128B: %.3f vs %.3f", vs, vo)
	}
}

// Figure 15: periodicity costs a modest constant; the dynamic scheme keeps
// a clear advantage over static under periodic accesses.
func TestFig15Shape(t *testing.T) {
	tb := cached(t, "fig15a")
	or := tb.MustCell("avg", "oram")
	if or < 0 || or > 0.5 {
		t.Errorf("non-periodic-vs-periodic overhead implausible: %.4f", or)
	}
	dyn := tb.MustCell("mem_avg", "dyn_intvl")
	stat := tb.MustCell("mem_avg", "stat_intvl")
	if dyn <= stat {
		t.Errorf("dyn_intvl (%.4f) should beat stat_intvl (%.4f) on memory-bound Splash2", dyn, stat)
	}
}

// Ablation: recursion overhead falls monotonically with PLB capacity.
func TestAblationPLBShape(t *testing.T) {
	tb := cached(t, "ablation_plb")
	prev := 2.0
	for _, row := range []string{"0", "16", "64", "128", "512"} {
		v := tb.MustCell(row, "norm_time")
		if v > prev+0.01 {
			t.Errorf("completion time rose with a bigger PLB at %s: %.3f after %.3f", row, v, prev)
		}
		prev = v
	}
	if share := tb.MustCell("0", "posmap_path_share"); share < 0.4 {
		t.Errorf("no-PLB recursion share %.3f implausibly low", share)
	}
}

// Ablation: adaptive (Equation 1) thresholding beats the static schedule
// on every tested pattern.
func TestAblationThresholdShape(t *testing.T) {
	tb := cached(t, "ablation_threshold")
	for _, row := range []string{"ocean_c", "radix", "phase_synth"} {
		st := tb.MustCell(row, "static_thresh")
		ad := tb.MustCell(row, "adaptive_thresh")
		if ad < st {
			t.Errorf("%s: adaptive (%.4f) below static thresholding (%.4f)", row, ad, st)
		}
	}
}

// Ablation: the dynamic-Oint ladder trades dummies for bounded leakage,
// monotonically in the ladder height.
func TestAblationOintShape(t *testing.T) {
	tb := cached(t, "ablation_oint")
	prevDummies := 1.01
	prevLeak := -1.0
	for _, row := range []string{"fixed", "ladder_x4", "ladder_x16", "ladder_x64"} {
		d := tb.MustCell(row, "norm_dummies")
		l := tb.MustCell(row, "leaked_bits")
		if d > prevDummies {
			t.Errorf("%s: dummies rose along the ladder: %.3f after %.3f", row, d, prevDummies)
		}
		if l < prevLeak {
			t.Errorf("%s: leak fell along the ladder: %.1f after %.1f", row, l, prevLeak)
		}
		prevDummies, prevLeak = d, l
	}
}

// DRAM ablation: the banked device with the subtree-packed layout must
// beat the flat serialized channel on cycles per ORAM access, on the
// sequential and strided models (the acceptance bar), and packing must
// raise the row-hit rate over the linear layout.
func TestAblationDRAMShape(t *testing.T) {
	tb := cached(t, "ablation_dram")
	for _, model := range []string{"sequential", "strided"} {
		flat := tb.MustCell(model+"/flat", "cycles_per_access")
		packed := tb.MustCell(model+"/packed", "cycles_per_access")
		if packed >= flat {
			t.Errorf("%s: packed cycles/access %.0f not below flat %.0f", model, packed, flat)
		}
	}
	for _, model := range []string{"sequential", "strided", "random"} {
		lin := tb.MustCell(model+"/banked", "row_hit_permille")
		pk := tb.MustCell(model+"/packed", "row_hit_permille")
		if pk <= lin {
			t.Errorf("%s: packed row-hit permille %.0f not above linear %.0f", model, pk, lin)
		}
	}
}
