package exp

import (
	"fmt"

	"proram/internal/prefetch"
	"proram/internal/trace"
)

func init() {
	register("fig5", "Traditional data prefetching on DRAM and ORAM", fig5)
}

// fig5 reproduces the §5.2 study: a stream prefetcher helps the DRAM
// system but not the ORAM system, because ORAM has no spare bandwidth for
// prefetch requests.
func fig5(opt Options) (*Table, error) {
	t := &Table{
		ID:      "fig5",
		Title:   "Traditional data prefetching on DRAM and ORAM (speedup of adding a stream prefetcher)",
		Columns: []string{"dram_pre", "oram_pre"},
	}
	pf := prefetch.DefaultConfig()
	var sumD, sumO float64
	suite := trace.Splash2(opt.scale(fig8Ops))
	rows := trace.ByName(suite, trace.Fig5Splash2Names...)
	for _, p := range rows {
		p.Seed += opt.Seed
		gf := modelFactory(p)

		dram, err := runSim(opt, withWarmup(baseDRAM(), p.Ops), gf())
		if err != nil {
			return nil, fmt.Errorf("fig5 %s: %w", p.Name, err)
		}
		dramPre := withWarmup(baseDRAM(), p.Ops)
		dramPre.Prefetch = &pf
		dramPreRep, err := runSim(opt, dramPre, gf())
		if err != nil {
			return nil, fmt.Errorf("fig5 %s: %w", p.Name, err)
		}

		oramRep, err := runSim(opt, withWarmup(baseORAM(), p.Ops), gf())
		if err != nil {
			return nil, fmt.Errorf("fig5 %s: %w", p.Name, err)
		}
		oramPre := withWarmup(baseORAM(), p.Ops)
		oramPre.Prefetch = &pf
		oramPreRep, err := runSim(opt, oramPre, gf())
		if err != nil {
			return nil, fmt.Errorf("fig5 %s: %w", p.Name, err)
		}

		d := speedup(dram, dramPreRep)
		o := speedup(oramRep, oramPreRep)
		t.AddRow(p.Name, d, o)
		sumD += d
		sumO += o
	}
	t.AddRow("avg", sumD/float64(len(rows)), sumO/float64(len(rows)))
	t.Notes = append(t.Notes,
		"dram_pre: speedup of DRAM+prefetcher over DRAM; oram_pre: speedup of ORAM+prefetcher over ORAM")
	return t, nil
}
