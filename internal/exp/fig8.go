package exp

import (
	"fmt"

	"proram/internal/sim"
	"proram/internal/trace"
)

func init() {
	register("fig8a", "Speedup and normalized memory accesses of super block schemes on Splash2", fig8a)
	register("fig8b", "Speedup and normalized memory accesses of super block schemes on SPEC06", fig8b)
	register("fig8c", "Speedup and normalized memory accesses of super block schemes on DBMS", fig8c)
}

// fig8Ops is the full-size operation count for the suite figures.
const fig8Ops = 800_000

// suiteRow holds one benchmark's fig8 measurements.
type suiteRow struct {
	name                string
	statSpeed, dynSpeed float64
	statAcc, dynAcc     float64
	oramOverDRAM        float64
	statMiss, dynMiss   float64 // fig9 reuses these
	memoryIntensive     bool
}

// runSuiteBenchmark measures one workload under DRAM, baseline ORAM, the
// static scheme and PrORAM, using the standard warmup fraction so the
// measured region is steady state (caches full, super blocks mature).
func runSuiteBenchmark(opt Options, name string, ops uint64, gf genFactory, memIntensive bool) (suiteRow, error) {
	dramRep, err := runSim(opt, withWarmup(baseDRAM(), ops), gf())
	if err != nil {
		return suiteRow{}, fmt.Errorf("%s/dram: %w", name, err)
	}
	oramRep, err := runSim(opt, withWarmup(baseORAM(), ops), gf())
	if err != nil {
		return suiteRow{}, fmt.Errorf("%s/oram: %w", name, err)
	}
	statRep, err := runSim(opt, withWarmup(withScheme(baseORAM(), statScheme(2)), ops), gf())
	if err != nil {
		return suiteRow{}, fmt.Errorf("%s/stat: %w", name, err)
	}
	dynRep, err := runSim(opt, withWarmup(withScheme(baseORAM(), dynScheme()), ops), gf())
	if err != nil {
		return suiteRow{}, fmt.Errorf("%s/dyn: %w", name, err)
	}
	return suiteRow{
		name:            name,
		statSpeed:       speedup(oramRep, statRep),
		dynSpeed:        speedup(oramRep, dynRep),
		statAcc:         normAccesses(oramRep, statRep),
		dynAcc:          normAccesses(oramRep, dynRep),
		oramOverDRAM:    float64(oramRep.Cycles) / float64(dramRep.Cycles),
		statMiss:        statRep.PrefetchMissRate(),
		dynMiss:         dynRep.PrefetchMissRate(),
		memoryIntensive: memIntensive,
	}, nil
}

// suiteFigure assembles a fig8-style table with avg and mem_avg rows.
func suiteFigure(id, title string, rows []suiteRow) *Table {
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"stat_speedup", "dyn_speedup", "stat_norm_acc", "dyn_norm_acc", "oram_over_dram"},
	}
	var sumS, sumD, sumSA, sumDA float64
	var memS, memD, memSA, memDA float64
	memN := 0
	for _, r := range rows {
		t.AddRow(r.name, r.statSpeed, r.dynSpeed, r.statAcc, r.dynAcc, r.oramOverDRAM)
		sumS += r.statSpeed
		sumD += r.dynSpeed
		sumSA += r.statAcc
		sumDA += r.dynAcc
		if r.memoryIntensive {
			memS += r.statSpeed
			memD += r.dynSpeed
			memSA += r.statAcc
			memDA += r.dynAcc
			memN++
		}
	}
	n := float64(len(rows))
	t.AddRow("avg", sumS/n, sumD/n, sumSA/n, sumDA/n, 0)
	if memN > 0 {
		m := float64(memN)
		t.AddRow("mem_avg", memS/m, memD/m, memSA/m, memDA/m, 0)
	}
	t.Notes = append(t.Notes,
		"speedup = T_baselineORAM/T_scheme - 1; norm_acc = scheme ORAM accesses / baseline ORAM accesses",
		"oram_over_dram classifies memory intensity (paper threshold: 2x)")
	return t
}

func splash2Rows(opt Options) ([]suiteRow, error) {
	var rows []suiteRow
	for _, p := range trace.Splash2(opt.scale(fig8Ops)) {
		p.Seed += opt.Seed
		r, err := runSuiteBenchmark(opt, p.Name, p.Ops, modelFactory(p), trace.Splash2MemoryIntensive(p.Name))
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

func spec06Rows(opt Options) ([]suiteRow, error) {
	var rows []suiteRow
	for _, p := range trace.SPEC06(opt.scale(fig8Ops)) {
		p.Seed += opt.Seed
		r, err := runSuiteBenchmark(opt, p.Name, p.Ops, modelFactory(p), trace.SPEC06MemoryIntensive(p.Name))
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

func dbmsRows(opt Options) ([]suiteRow, error) {
	ycsbCfg := trace.DefaultYCSB(opt.scale(fig8Ops))
	ycsbCfg.Seed += opt.Seed
	ycsb, err := runSuiteBenchmark(opt, "YCSB", ycsbCfg.Ops,
		func() trace.Generator { return trace.NewYCSB(ycsbCfg) }, true)
	if err != nil {
		return nil, err
	}
	tp := trace.TPCC(opt.scale(fig8Ops))
	tp.Seed += opt.Seed
	tpcc, err := runSuiteBenchmark(opt, "TPCC", tp.Ops, modelFactory(tp), false)
	if err != nil {
		return nil, err
	}
	return []suiteRow{ycsb, tpcc}, nil
}

func fig8a(opt Options) (*Table, error) {
	rows, err := splash2Rows(opt)
	if err != nil {
		return nil, err
	}
	return suiteFigure("fig8a", "Super block schemes on Splash2", rows), nil
}

func fig8b(opt Options) (*Table, error) {
	rows, err := spec06Rows(opt)
	if err != nil {
		return nil, err
	}
	return suiteFigure("fig8b", "Super block schemes on SPEC06", rows), nil
}

func fig8c(opt Options) (*Table, error) {
	rows, err := dbmsRows(opt)
	if err != nil {
		return nil, err
	}
	return suiteFigure("fig8c", "Super block schemes on DBMS (YCSB, TPCC)", rows), nil
}

// fig9 shares the suite runs: prefetch miss rates of the two schemes.
func init() {
	register("fig9a", "Prefetch miss rate on Splash2", func(opt Options) (*Table, error) {
		rows, err := splash2Rows(opt)
		if err != nil {
			return nil, err
		}
		return missRateFigure("fig9a", "Prefetch miss rate, Splash2", rows), nil
	})
	register("fig9b", "Prefetch miss rate on SPEC06", func(opt Options) (*Table, error) {
		rows, err := spec06Rows(opt)
		if err != nil {
			return nil, err
		}
		return missRateFigure("fig9b", "Prefetch miss rate, SPEC06", rows), nil
	})
}

func missRateFigure(id, title string, rows []suiteRow) *Table {
	t := &Table{ID: id, Title: title, Columns: []string{"stat_miss_rate", "dyn_miss_rate"}}
	var sumS, sumD float64
	n := 0
	for _, r := range rows {
		// The paper drops the two most compute-bound water benchmarks in
		// Figure 9 (they barely touch ORAM); keep every row here but note it.
		t.AddRow(r.name, r.statMiss, r.dynMiss)
		sumS += r.statMiss
		sumD += r.dynMiss
		n++
	}
	t.AddRow("avg", sumS/float64(n), sumD/float64(n))
	t.Notes = append(t.Notes, "miss rate = prefetched-but-unused / resolved prefetches")
	return t
}

var _ = sim.Report{} // sim types appear in helper signatures
