package exp

import (
	"fmt"

	"proram/internal/oram"
	"proram/internal/shard"
	"proram/internal/sim"
	"proram/internal/trace"
)

// Sharded-frontend experiments: the partition-count ablation and the
// pinned BENCH_0 baseline the ROADMAP's benchmark trajectory starts from.
func init() {
	register("ablation_shard", "Partitioned frontend: partition-count sweep vs unified (P=1)", ablationShard)
	register("bench0", "BENCH_0 baseline: unified (P=1) vs sharded (P=8) frontend on the YCSB zipfian trace", bench0)
}

const (
	// shardBlocks covers YCSB's 8 MB table at 128-byte blocks.
	shardBlocks = 1 << 16
	// shardWindow is the closed-loop client count: requests admitted per
	// scheduling round.
	shardWindow = 32
	// bench0Ops / ablationShardOps are the full-scale operation counts.
	bench0Ops        = 20_000
	ablationShardOps = 8_000
)

// shardBase is the experiments' frontend configuration: dynamic PrORAM
// prefetching inside every partition, total cache budget held constant
// across partition counts so sweeps compare scheduling, not cache size.
func shardBase(parts int, seed uint64) shard.Config {
	o := oram.DefaultConfig()
	o.Super = dynScheme()
	return shard.Config{
		Partitions:    parts,
		Blocks:        shardBlocks,
		BlockBytes:    128,
		CacheBlocks:   4096,
		MaxSuperBlock: o.Super.MaxSize,
		Key:           []byte("proram-bench-key"),
		Seed:          11 + seed,
		ORAM:          o,
	}
}

// ycsbGen builds the zipfian trace both experiments replay.
func ycsbGen(ops, seed uint64) trace.Generator {
	c := trace.DefaultYCSB(ops)
	c.Seed += seed
	return trace.NewYCSB(c)
}

// totalPaths sums the per-partition controllers' path accesses.
func totalPaths(s shard.Stats) uint64 {
	var t uint64
	for _, p := range s.Partitions {
		t += p.ORAM.PathAccesses
	}
	return t
}

// ablationShard sweeps the partition count on the YCSB trace. More
// partitions shorten the makespan (rounds run P trees in parallel and
// each tree is shallower) but burn more padding when the zipfian skew
// leaves partitions idle — the fill ratio quantifies that trade.
func ablationShard(opt Options) (*Table, error) {
	t := &Table{
		ID:      "ablation_shard",
		Title:   "Sharded frontend vs partition count (YCSB zipfian, 32 closed-loop clients)",
		Columns: []string{"norm_time", "fill_ratio", "cache_hit_rate", "norm_paths", "carryovers"},
	}
	ops := opt.scale(ablationShardOps)
	var base sim.ShardedReport
	for _, parts := range []int{1, 2, 4, 8} {
		rep, _, err := sim.RunSharded(shardBase(parts, opt.Seed), ycsbGen(ops, opt.Seed), shardWindow)
		if err != nil {
			return nil, fmt.Errorf("ablation_shard P=%d: %w", parts, err)
		}
		if parts == 1 {
			base = rep
		}
		t.AddRow(fmt.Sprintf("P=%d", parts),
			float64(rep.Cycles)/float64(base.Cycles),
			rep.Stats.FillRatio(),
			float64(rep.CacheHits)/float64(rep.Ops),
			float64(totalPaths(rep.Stats))/float64(totalPaths(base.Stats)),
			float64(rep.Carryovers))
	}
	t.Notes = append(t.Notes,
		"norm_time/norm_paths are relative to P=1 (the unified baseline on the same scheduler)",
		"total client cache is constant across the sweep; only the partitioning changes")
	return t, nil
}

// bench0 produces the first pinned benchmark baseline (BENCH_0.json):
// unified vs sharded on the zipfian trace, deterministic integers only so
// the committed artifact is byte-stable. Wall-clock time is deliberately
// absent — proram-bench reports it on stderr.
func bench0(opt Options) (*Table, error) {
	t := &Table{
		ID:      "bench0",
		Title:   "BENCH_0: unified vs sharded frontend on YCSB zipfian",
		Columns: []string{"ops", "cycles", "rounds", "real_accesses", "pad_accesses", "cache_hits", "carryovers", "fill_permille", "path_accesses"},
	}
	ops := opt.scale(bench0Ops)
	for _, tc := range []struct {
		label string
		parts int
	}{
		{"unified_p1", 1},
		{"sharded_p8", 8},
	} {
		rep, _, err := sim.RunSharded(shardBase(tc.parts, opt.Seed), ycsbGen(ops, opt.Seed), shardWindow)
		if err != nil {
			return nil, fmt.Errorf("bench0 %s: %w", tc.label, err)
		}
		if err := rep.Stats.Validate(); err != nil {
			return nil, fmt.Errorf("bench0 %s: %w", tc.label, err)
		}
		t.AddRow(tc.label,
			float64(rep.Ops),
			float64(rep.Cycles),
			float64(rep.Rounds),
			float64(rep.RealAccesses),
			float64(rep.PadAccesses),
			float64(rep.CacheHits),
			float64(rep.Carryovers),
			float64(rep.FillPermille),
			float64(totalPaths(rep.Stats)))
	}
	t.Notes = append(t.Notes,
		"every cell is a deterministic integer: two runs with the same scale and seed are byte-identical",
		"32 closed-loop clients; cycles is the slowest partition's simulated clock (makespan)")
	return t, nil
}
