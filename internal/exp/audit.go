package exp

import (
	"fmt"

	"proram/internal/dram/banked"
	"proram/internal/obs/audit"
	"proram/internal/sim"
	"proram/internal/superblock"
)

// The obliviousness-audit experiment: every shipped frontend configuration
// runs under the live auditor, and the per-configuration reports pin the
// AUDIT_2.json artifact (satellite of the BENCH_* baseline family).
func init() {
	register("audit2", "AUDIT_2 baseline: obliviousness auditor over the shipped frontend configurations", audit2)
}

// audit2Ops is the full-scale operation count: enough accesses that every
// statistical test clears its minimum-samples gate on every partition.
const audit2Ops = 20_000

// audit2Configs are the shipped frontend configurations the auditor must
// clear: the unified-equivalent single partition, the default sharded
// spread, the banked subtree-packed device under shared-channel
// contention, and the prior static prefetcher scheme.
func audit2Configs() []struct {
	label  string
	parts  int
	banked *banked.Config
	scheme superblock.Config
} {
	packed := banked.DefaultConfig()
	return []struct {
		label  string
		parts  int
		banked *banked.Config
		scheme superblock.Config
	}{
		{"p1_flat_dyn", 1, nil, dynScheme()},
		{"p4_flat_dyn", 4, nil, dynScheme()},
		{"p8_packed_dyn", 8, &packed, dynScheme()},
		{"p4_flat_static", 4, nil, statScheme(2)},
	}
}

// audit2 audits every shipped configuration on the YCSB zipfian trace and
// tabulates the verdicts: worst test statistics against their critical
// values (exact milli-units), observed shape violations, and the
// end-to-end latency tail. Every cell is a deterministic integer, so the
// committed artifact is byte-stable. A failed audit is an experiment
// error — the artifact only ever pins passing baselines.
func audit2(opt Options) (*Table, error) {
	t := &Table{
		ID:    "audit2",
		Title: "AUDIT_2: obliviousness auditor over the shipped frontend configurations (YCSB zipfian)",
		Columns: []string{
			"pass", "accesses",
			"uniformity_stat_milli", "uniformity_crit_milli",
			"serial_stat_milli", "serial_crit_milli",
			"timing_stat_milli", "timing_crit_milli",
			"shape_violations",
			"lat_p50", "lat_p99", "lat_p999",
		},
	}
	ops := opt.scale(audit2Ops)
	for _, tc := range audit2Configs() {
		cfg := shardBase(tc.parts, opt.Seed)
		cfg.ORAM.Super = tc.scheme
		cfg.MaxSuperBlock = tc.scheme.MaxSize
		cfg.Banked = tc.banked
		// The per-access timing test applies to flat-latency devices only:
		// the banked model exists to expose per-access variance (row hits,
		// bank conflicts), and the frontend equalizes timing at the round
		// barrier, not per access — real superblock bursts are faster per
		// path than single-path dummies there by design (DESIGN.md §13).
		aud := audit.New(audit.Config{Timing: tc.banked == nil})
		cfg.Audit = aud
		if _, _, err := sim.RunSharded(cfg, ycsbGen(ops, opt.Seed), shardWindow); err != nil {
			return nil, fmt.Errorf("audit2 %s: %w", tc.label, err)
		}
		rep := aud.Report()
		if opt.Audit != nil {
			opt.Audit.Add(tc.label, rep)
		}
		if !rep.Pass {
			detail := "no findings recorded"
			if len(rep.Findings) > 0 {
				detail = rep.Findings[0]
			}
			return nil, fmt.Errorf("audit2 %s: obliviousness audit failed: %s", tc.label, detail)
		}
		uniStat, uniCrit := rep.Worst("leaf_uniformity")
		serStat, serCrit := rep.Worst("serial_independence")
		timStat, timCrit := rep.Worst("timing_indistinguishability")
		lat := rep.LatencyFor("all")
		t.AddRow(tc.label,
			1,
			float64(rep.Accesses),
			float64(uniStat), float64(uniCrit),
			float64(serStat), float64(serCrit),
			float64(timStat), float64(timCrit),
			float64(rep.Violations("round_shape")+rep.Violations("flush_equality")),
			float64(lat.P50), float64(lat.P99), float64(lat.P999))
	}
	t.Notes = append(t.Notes,
		"stat/crit are exact milli-unit chi-square statistics vs their alpha=1e-5 critical values (worst scope per test)",
		"lat_p50/p99/p999 are streaming end-to-end request latencies in simulated cycles",
		"a failing audit aborts the experiment: this artifact only pins passing baselines")
	return t, nil
}
