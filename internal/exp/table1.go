package exp

import (
	"proram/internal/oram"
	"proram/internal/sim"
)

func init() {
	register("table1", "System configuration (effective simulator parameters)", table1)
}

// table1 reports the effective configuration the other experiments run
// with, next to the paper's Table 1 values.
func table1(Options) (*Table, error) {
	cfg := sim.DefaultConfig(sim.TechORAM)
	ctrl, err := oram.New(func() oram.Config {
		c := cfg.ORAM
		c.BlockBytes = cfg.BlockBytes
		c.DRAM = cfg.DRAM
		c.Prefill = false // sizing only
		return c
	}())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "table1",
		Title:   "System configuration",
		Columns: []string{"simulator", "paper"},
	}
	t.AddRow("core_GHz", cfg.DRAM.ClockGHz, 1)
	t.AddRow("l1_KB", float64(cfg.Hier.L1.SizeBytes)/1024, 32)
	t.AddRow("l1_ways", float64(cfg.Hier.L1.Ways), 4)
	t.AddRow("l2_KB", float64(cfg.Hier.L2.SizeBytes)/1024, 512)
	t.AddRow("l2_ways", float64(cfg.Hier.L2.Ways), 8)
	t.AddRow("cacheline_B", float64(cfg.BlockBytes), 128)
	t.AddRow("dram_GBps", cfg.DRAM.BandwidthGBps, 16)
	t.AddRow("dram_latency_cyc", float64(cfg.DRAM.LatencyCycles), 100)
	t.AddRow("oram_capacity_MB", float64(cfg.ORAM.NumBlocks)*float64(cfg.BlockBytes)/(1<<20), 8192)
	t.AddRow("oram_hierarchies", float64(hierarchies(ctrl)), 4)
	t.AddRow("oram_block_B", float64(cfg.BlockBytes), 128)
	t.AddRow("path_latency_cyc", float64(ctrl.PathLatency()), 2364)
	t.AddRow("Z", float64(cfg.ORAM.Z), 3)
	t.AddRow("max_super_block", 2, 2)
	t.AddRow("stash_blocks", float64(cfg.ORAM.StashLimit), 100)
	t.AddRow("tree_levels", float64(ctrl.TreeLevels()), 25)
	t.Notes = append(t.Notes,
		"capacity and path latency are scaled down with the default 128 MB simulated ORAM;",
		"set ORAM.NumBlocks = 1<<26 (and PathLatencyOverride = 2364) for the paper's full size")
	return t, nil
}

// hierarchies counts ORAM hierarchies the paper's way: data + position-map
// levels.
func hierarchies(c *oram.Controller) int {
	// The controller's tree holds depth+1 hierarchy levels in one unified
	// tree; report the recursion depth + data level.
	return c.PosMapDepth() + 1
}
