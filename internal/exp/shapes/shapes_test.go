package shapes

import (
	"sync"
	"testing"

	"proram/internal/exp"
)

// The four most expensive figure runs live here, in their own test
// binary; everything else is in internal/exp. Assertions are identical
// in spirit and scale to the rest of the suite (see exp/shapes_test.go).

var (
	cacheMu    sync.Mutex
	tableCache = map[string]*exp.Table{}
)

// shapeScale mirrors exp/shapes_test.go: the shape assertions hold at
// the paper-size runs.
const shapeScale = 1.0

func cached(t *testing.T, id string) *exp.Table {
	t.Helper()
	if testing.Short() {
		t.Skip("figure-shape test skipped in -short mode")
	}
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if tb, ok := tableCache[id]; ok {
		return tb
	}
	tb, err := exp.Run(id, exp.Options{Scale: shapeScale})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	tableCache[id] = tb
	return tb
}

// Figure 6a: the static scheme wins only with locality and loses without;
// the dynamic scheme tracks the better of baseline and static.
func TestFig6aShape(t *testing.T) {
	tb := cached(t, "fig6a")
	if v := tb.MustCell("0%", "stat"); v > -0.01 {
		t.Errorf("static at 0%% locality should lose clearly, got %.4f", v)
	}
	if v := tb.MustCell("100%", "stat"); v < 0.1 {
		t.Errorf("static at 100%% locality should win, got %.4f", v)
	}
	if v := tb.MustCell("0%", "dyn"); v < -0.05 {
		t.Errorf("dynamic at 0%% locality lost %.4f, should track baseline", v)
	}
	if v := tb.MustCell("100%", "dyn"); v < 0.05 {
		t.Errorf("dynamic at 100%% locality should win, got %.4f", v)
	}
	// Monotone-ish growth for dyn.
	lo := tb.MustCell("20%", "dyn")
	hi := tb.MustCell("100%", "dyn")
	if hi < lo {
		t.Errorf("dynamic speedup did not grow with locality: %.4f -> %.4f", lo, hi)
	}
}

// Figure 7: the static scheme degrades as the super block size grows; the
// dynamic scheme throttles itself and stays no worse than static at 8.
func TestFig7Shape(t *testing.T) {
	tb := cached(t, "fig7")
	s2 := tb.MustCell("2", "stat_speedup")
	s8 := tb.MustCell("8", "stat_speedup")
	if s8 >= s2 {
		t.Errorf("static did not degrade with size: sbsize2 %.4f, sbsize8 %.4f", s2, s8)
	}
	d8 := tb.MustCell("8", "dyn_speedup")
	if d8 < s8 {
		t.Errorf("dynamic at max size 8 (%.4f) fell below static (%.4f)", d8, s8)
	}
}

// Figure 9: the dynamic scheme's prefetch miss rate is below the static
// scheme's on average.
func TestFig9Shape(t *testing.T) {
	for _, id := range []string{"fig9a", "fig9b"} {
		tb := cached(t, id)
		s := tb.MustCell("avg", "stat_miss_rate")
		d := tb.MustCell("avg", "dyn_miss_rate")
		if d >= s {
			t.Errorf("%s: dynamic miss rate %.4f not below static %.4f", id, d, s)
		}
	}
}

// Figure 12: a larger stash helps the super block schemes more than the
// baseline (the baseline is nearly flat).
func TestFig12Shape(t *testing.T) {
	tb := cached(t, "fig12")
	baseSmall := tb.MustCell("ocean_c/25", "oram")
	baseBig := tb.MustCell("ocean_c/400", "oram")
	if rel := baseSmall/baseBig - 1; rel > 0.2 {
		t.Errorf("baseline too stash-sensitive: %.3f", rel)
	}
	statSmall := tb.MustCell("ocean_c/25", "stat")
	statBig := tb.MustCell("ocean_c/400", "stat")
	if statSmall <= statBig {
		t.Errorf("static should benefit from a bigger stash: 25 -> %.3f, 400 -> %.3f", statSmall, statBig)
	}
}
