// Package shapes holds the heavier half of the figure-shape regression
// suite (see ../shapes_test.go for the other half and the shared
// rationale). The split exists purely so each test binary finishes
// within go test's default 10-minute timeout on a single-core runner:
// the full-scale suite costs ~11 CPU-minutes in total, and the timeout
// is charged per binary, not per package tree.
package shapes
