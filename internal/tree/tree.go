// Package tree implements the Path ORAM binary-tree storage: a complete
// binary tree of buckets, each holding up to Z block slots, addressed by
// leaf labels exactly as in Stefanov et al.'s Path ORAM.
//
// The tree stores only block identifiers (occupancy); payloads live with
// the controller. Buckets are heap-numbered starting at node 1 (the root),
// so the children of node n are 2n and 2n+1 and the leaf labelled s lives
// at node 2^L + s. Level 0 is the root and level L holds the leaves,
// matching the paper's terminology.
package tree

import (
	"fmt"

	"proram/internal/mem"
)

// Tree is the untrusted binary-tree storage. The zero value is unusable;
// construct with New.
type Tree struct {
	levels int // L: leaves are at depth L, so there are L+1 bucket levels
	z      int
	slots  []mem.BlockID // node-major: slots[(node-1)*z + i]
	used   uint64        // number of occupied slots, for diagnostics
}

// New creates an empty tree with the given number of levels L (leaves =
// 2^L) and bucket capacity z. It panics on nonsensical parameters.
func New(levels, z int) *Tree {
	if levels < 1 || levels > 40 {
		//proram:invariant tree geometry comes from Config.Validate-checked parameters; a bad level count is a wiring bug
		panic(fmt.Sprintf("tree: levels %d out of range [1,40]", levels))
	}
	if z < 1 {
		//proram:invariant tree geometry comes from Config.Validate-checked parameters; a bad bucket size is a wiring bug
		panic(fmt.Sprintf("tree: bucket size %d must be positive", z))
	}
	nodes := (uint64(1) << (levels + 1)) - 1
	slots := make([]mem.BlockID, nodes*uint64(z))
	for i := range slots {
		slots[i] = mem.Nil
	}
	return &Tree{levels: levels, z: z, slots: slots}
}

// Levels returns L, the depth of the leaves.
func (t *Tree) Levels() int { return t.levels }

// Z returns the bucket capacity.
func (t *Tree) Z() int { return t.z }

// Leaves returns the number of leaf buckets, 2^L.
func (t *Tree) Leaves() uint64 { return 1 << t.levels }

// Buckets returns the total number of buckets in the tree.
func (t *Tree) Buckets() uint64 { return (1 << (t.levels + 1)) - 1 }

// Capacity returns the total number of block slots.
func (t *Tree) Capacity() uint64 { return t.Buckets() * uint64(t.z) }

// Used returns the number of occupied slots.
func (t *Tree) Used() uint64 { return t.used }

// NodeAt returns the heap index of the bucket at the given depth on the
// path to leaf. Depth 0 is the root; depth L is the leaf bucket itself.
//
//proram:hotpath heap-index arithmetic on every bucket touch
func (t *Tree) NodeAt(leaf mem.Leaf, depth int) uint64 {
	if depth < 0 || depth > t.levels {
		//proram:invariant depths are produced by loops bounded by t.levels; going past them is an algorithm bug
		panic(fmt.Sprintf("tree: depth %d out of range [0,%d]", depth, t.levels))
	}
	leafNode := t.Leaves() + uint64(leaf)
	return leafNode >> uint(t.levels-depth)
}

// CommonDepth returns the depth of the deepest bucket shared by the paths
// to leaves a and b. A block mapped to leaf b may be written into any
// bucket on path a at depth <= CommonDepth(a, b).
//
//proram:hotpath eviction depth computation for every stashed block
func (t *Tree) CommonDepth(a, b mem.Leaf) int {
	x := uint64(a) ^ uint64(b)
	d := t.levels
	for x != 0 {
		x >>= 1
		d--
	}
	return d
}

// slotBase returns the index of node's first slot in the flat slot array.
func (t *Tree) slotBase(node uint64) uint64 { return (node - 1) * uint64(t.z) }

// BucketCount returns the number of real blocks currently in the bucket.
func (t *Tree) BucketCount(node uint64) int {
	base := t.slotBase(node)
	n := 0
	for i := 0; i < t.z; i++ {
		if !t.slots[base+uint64(i)].IsNil() {
			n++
		}
	}
	return n
}

// RemovePath removes every real block on the path to leaf and appends
// their IDs to dst, returning the extended slice. This is the read phase
// of a Path ORAM access (step 2): all real blocks move to the stash.
//
//proram:hotpath the read phase of every path access
func (t *Tree) RemovePath(leaf mem.Leaf, dst []mem.BlockID) []mem.BlockID {
	for depth := 0; depth <= t.levels; depth++ {
		base := t.slotBase(t.NodeAt(leaf, depth))
		bucket := t.slots[base : base+uint64(t.z)]
		for i := range bucket {
			if id := bucket[i]; !id.IsNil() {
				dst = append(dst, id) //proram:allow allocdiscipline appends into the caller's reusable path buffer
				bucket[i] = mem.Nil
				t.used--
			}
		}
	}
	return dst
}

// ScanPath calls visit for every real block on the path to leaf without
// removing anything. Used by invariant checks and diagnostics.
func (t *Tree) ScanPath(leaf mem.Leaf, visit func(depth int, id mem.BlockID)) {
	for depth := 0; depth <= t.levels; depth++ {
		base := t.slotBase(t.NodeAt(leaf, depth))
		for i := 0; i < t.z; i++ {
			if id := t.slots[base+uint64(i)]; !id.IsNil() {
				visit(depth, id)
			}
		}
	}
}

// PlaceAt inserts id into the bucket at the given depth on the path to
// leaf. It reports false if the bucket is full. This is the write-back
// phase primitive (step 5).
//
//proram:hotpath the write-back primitive of every path access
func (t *Tree) PlaceAt(leaf mem.Leaf, depth int, id mem.BlockID) bool {
	if id.IsNil() {
		//proram:invariant placing Nil would corrupt the free-slot accounting silently; callers iterate live stash entries only
		panic("tree: PlaceAt with nil block")
	}
	base := t.slotBase(t.NodeAt(leaf, depth))
	bucket := t.slots[base : base+uint64(t.z)]
	for i := range bucket {
		if bucket[i].IsNil() {
			bucket[i] = id
			t.used++
			return true
		}
	}
	return false
}

// FreeAt returns the number of free slots in the bucket at depth on path
// leaf.
//
//proram:hotpath bucket occupancy probe during write-back
func (t *Tree) FreeAt(leaf mem.Leaf, depth int) int {
	return t.z - t.BucketCount(t.NodeAt(leaf, depth))
}

// Contains reports whether id is somewhere on the path to leaf. Used by
// tests to check the Path ORAM invariant.
func (t *Tree) Contains(leaf mem.Leaf, id mem.BlockID) bool {
	found := false
	t.ScanPath(leaf, func(_ int, got mem.BlockID) {
		if got == id {
			found = true
		}
	})
	return found
}

// ForEach calls visit for every real block in the whole tree. Intended for
// tests and invariant checks, not the hot path.
func (t *Tree) ForEach(visit func(node uint64, id mem.BlockID)) {
	for node := uint64(1); node <= t.Buckets(); node++ {
		base := t.slotBase(node)
		for i := 0; i < t.z; i++ {
			if id := t.slots[base+uint64(i)]; !id.IsNil() {
				visit(node, id)
			}
		}
	}
}

// PathBytes returns the number of bytes moved by reading or writing one
// full path when blocks (real or dummy) are blockBytes large: (L+1) buckets
// of Z blocks each.
func (t *Tree) PathBytes(blockBytes int) uint64 {
	return uint64(t.levels+1) * uint64(t.z) * uint64(blockBytes)
}
