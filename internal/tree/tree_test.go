package tree

import (
	"testing"
	"testing/quick"

	"proram/internal/mem"
	"proram/internal/rng"
)

func TestSizing(t *testing.T) {
	tr := New(3, 4)
	if tr.Leaves() != 8 {
		t.Fatalf("Leaves = %d, want 8", tr.Leaves())
	}
	if tr.Buckets() != 15 {
		t.Fatalf("Buckets = %d, want 15", tr.Buckets())
	}
	if tr.Capacity() != 60 {
		t.Fatalf("Capacity = %d, want 60", tr.Capacity())
	}
	if tr.Levels() != 3 || tr.Z() != 4 {
		t.Fatalf("Levels/Z = %d/%d", tr.Levels(), tr.Z())
	}
}

func TestNodeAt(t *testing.T) {
	tr := New(3, 1)
	// Paper Figure 1: L=3, path to leaf 5 passes root(1) -> 2? No: leaf 5
	// is node 8+5=13; its ancestors are 13, 6, 3, 1.
	want := []uint64{1, 3, 6, 13}
	for d, w := range want {
		if got := tr.NodeAt(5, d); got != w {
			t.Fatalf("NodeAt(5,%d) = %d, want %d", d, got, w)
		}
	}
	// Root is shared by all paths.
	for leaf := mem.Leaf(0); leaf < 8; leaf++ {
		if tr.NodeAt(leaf, 0) != 1 {
			t.Fatalf("NodeAt(%d,0) != root", leaf)
		}
	}
}

func TestNodeAtPanics(t *testing.T) {
	tr := New(3, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("NodeAt with bad depth did not panic")
		}
	}()
	tr.NodeAt(0, 4)
}

func TestCommonDepth(t *testing.T) {
	tr := New(3, 1)
	cases := []struct {
		a, b mem.Leaf
		want int
	}{
		{5, 5, 3}, // same leaf: full depth
		{4, 5, 2}, // siblings: parent at depth 2
		{0, 7, 0}, // opposite halves: only root
		{2, 3, 2},
		{0, 4, 0},
		{6, 7, 2},
		{4, 6, 1},
	}
	for _, c := range cases {
		if got := tr.CommonDepth(c.a, c.b); got != c.want {
			t.Errorf("CommonDepth(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := tr.CommonDepth(c.b, c.a); got != c.want {
			t.Errorf("CommonDepth(%d,%d) not symmetric", c.b, c.a)
		}
	}
}

func TestCommonDepthMatchesNodeAt(t *testing.T) {
	tr := New(6, 1)
	check := func(a, b uint16) bool {
		la := mem.Leaf(a % 64)
		lb := mem.Leaf(b % 64)
		d := tr.CommonDepth(la, lb)
		// Paths must share the node at depth d and diverge below it.
		if tr.NodeAt(la, d) != tr.NodeAt(lb, d) {
			return false
		}
		if d < tr.Levels() && tr.NodeAt(la, d+1) == tr.NodeAt(lb, d+1) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceRemoveRoundTrip(t *testing.T) {
	tr := New(4, 2)
	id1 := mem.MakeID(0, 1)
	id2 := mem.MakeID(0, 2)
	if !tr.PlaceAt(9, 4, id1) {
		t.Fatal("PlaceAt leaf bucket failed")
	}
	if !tr.PlaceAt(9, 0, id2) {
		t.Fatal("PlaceAt root failed")
	}
	if tr.Used() != 2 {
		t.Fatalf("Used = %d, want 2", tr.Used())
	}
	if !tr.Contains(9, id1) || !tr.Contains(9, id2) {
		t.Fatal("Contains lost a placed block")
	}
	// id2 is at the root, so it is on every path.
	if !tr.Contains(0, id2) {
		t.Fatal("root block not visible from other leaves")
	}
	if tr.Contains(0, id1) {
		t.Fatal("leaf-9 block visible from leaf 0")
	}
	got := tr.RemovePath(9, nil)
	if len(got) != 2 {
		t.Fatalf("RemovePath returned %d blocks, want 2", len(got))
	}
	if tr.Used() != 0 {
		t.Fatalf("Used after removal = %d, want 0", tr.Used())
	}
}

func TestBucketOverflowRejected(t *testing.T) {
	tr := New(2, 2)
	if !tr.PlaceAt(0, 1, mem.MakeID(0, 1)) || !tr.PlaceAt(0, 1, mem.MakeID(0, 2)) {
		t.Fatal("bucket should accept Z blocks")
	}
	if tr.PlaceAt(0, 1, mem.MakeID(0, 3)) {
		t.Fatal("bucket accepted more than Z blocks")
	}
	if tr.FreeAt(0, 1) != 0 {
		t.Fatalf("FreeAt = %d, want 0", tr.FreeAt(0, 1))
	}
}

func TestPlaceNilPanics(t *testing.T) {
	tr := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("PlaceAt(Nil) did not panic")
		}
	}()
	tr.PlaceAt(0, 0, mem.Nil)
}

func TestRemovePathOnlyTouchesPath(t *testing.T) {
	tr := New(3, 1)
	onPath := mem.MakeID(0, 1)
	offPath := mem.MakeID(0, 2)
	tr.PlaceAt(5, 3, onPath)
	tr.PlaceAt(2, 3, offPath) // leaf 2 is not on path 5
	got := tr.RemovePath(5, nil)
	if len(got) != 1 || got[0] != onPath {
		t.Fatalf("RemovePath(5) = %v", got)
	}
	if !tr.Contains(2, offPath) {
		t.Fatal("RemovePath removed an off-path block")
	}
}

func TestForEachVisitsEverything(t *testing.T) {
	tr := New(4, 3)
	r := rng.New(1)
	placed := map[mem.BlockID]bool{}
	for i := 0; i < 30; i++ {
		id := mem.MakeID(0, uint64(i))
		leaf := mem.Leaf(r.Uint64n(tr.Leaves()))
		depth := r.Intn(tr.Levels() + 1)
		if tr.PlaceAt(leaf, depth, id) {
			placed[id] = true
		}
	}
	seen := map[mem.BlockID]bool{}
	tr.ForEach(func(_ uint64, id mem.BlockID) { seen[id] = true })
	if len(seen) != len(placed) {
		t.Fatalf("ForEach saw %d blocks, placed %d", len(seen), len(placed))
	}
	for id := range placed {
		if !seen[id] {
			t.Fatalf("ForEach missed %v", id)
		}
	}
}

func TestPathBytes(t *testing.T) {
	tr := New(19, 3)
	// (19+1) * 3 * 128 = 7680 bytes one way.
	if got := tr.PathBytes(128); got != 7680 {
		t.Fatalf("PathBytes = %d, want 7680", got)
	}
}

func TestNewPanicsOnBadParams(t *testing.T) {
	for _, tc := range []struct{ levels, z int }{{0, 3}, {41, 3}, {3, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", tc.levels, tc.z)
				}
			}()
			New(tc.levels, tc.z)
		}()
	}
}

// Property: placing at the deepest depth allowed by CommonDepth always
// preserves path membership for the block's own leaf.
func TestGreedyPlacementProperty(t *testing.T) {
	tr := New(5, 4)
	r := rng.New(2)
	for i := 0; i < 200; i++ {
		accessLeaf := mem.Leaf(r.Uint64n(tr.Leaves()))
		blockLeaf := mem.Leaf(r.Uint64n(tr.Leaves()))
		d := tr.CommonDepth(accessLeaf, blockLeaf)
		id := mem.MakeID(0, uint64(i))
		if !tr.PlaceAt(accessLeaf, d, id) {
			continue // bucket full, fine
		}
		if !tr.Contains(blockLeaf, id) {
			t.Fatalf("block placed at common depth %d not on its own path (access %d, block %d)",
				d, accessLeaf, blockLeaf)
		}
	}
}
