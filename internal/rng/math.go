package rng

import "math"

// mathPow wraps math.Pow. It lives in its own file so the single stdlib
// math dependency of this package is easy to audit.
func mathPow(x, y float64) float64 { return math.Pow(x, y) }
