package rng

// Reader adapts a Source to io.Reader for components that consume
// randomness as bytes (notably nonce generation in the sealer). It is as
// deterministic as the Source underneath: the same seed yields the same
// byte stream, which is what keeps sealed payloads reproducible across
// runs. Read never fails.
type Reader struct {
	src *Source
}

// NewReader returns a deterministic byte stream seeded with seed.
func NewReader(seed uint64) *Reader {
	return &Reader{src: New(seed)}
}

// Read fills p from the generator, eight bytes per draw.
func (r *Reader) Read(p []byte) (int, error) {
	for i := 0; i < len(p); i += 8 {
		v := r.src.Uint64()
		for j := 0; j < 8 && i+j < len(p); j++ {
			p[i+j] = byte(v >> (8 * j))
		}
	}
	return len(p), nil
}
