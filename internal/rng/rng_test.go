package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sources with equal seeds diverged at draw %d", i)
		}
	}
}

func TestDistinctSeeds(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical draws out of 100", same)
	}
}

func TestUint64nRange(t *testing.T) {
	r := New(7)
	check := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64n(n)
		return v < n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nPowerOfTwo(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(16); v >= 16 {
			t.Fatalf("Uint64n(16) = %d out of range", v)
		}
	}
}

func TestUint64nUniformity(t *testing.T) {
	r := New(11)
	const n = 10
	const draws = 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	// Chi-square with 9 degrees of freedom; 99.9% critical value ~27.9.
	expected := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 27.9 {
		t.Fatalf("Uint64n distribution failed chi-square: %.2f > 27.9 (counts %v)", chi2, counts)
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestForkIndependence(t *testing.T) {
	r := New(13)
	f := r.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == f.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forked stream matched parent %d/100 times", same)
	}
}

func TestZipfSkewAndRange(t *testing.T) {
	r := New(17)
	const n = 1000
	z := NewZipf(r, n, 0.99)
	counts := make([]int, n)
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := z.Next()
		if v >= n {
			t.Fatalf("Zipf draw %d out of range", v)
		}
		counts[v]++
	}
	// Rank 0 must be clearly the hottest, and the head should dominate.
	if counts[0] <= counts[n/2] {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[%d]=%d", counts[0], n/2, counts[n/2])
	}
	head := 0
	for i := 0; i < n/10; i++ {
		head += counts[i]
	}
	if frac := float64(head) / draws; frac < 0.5 {
		t.Fatalf("Zipf head mass too small: top 10%% of keys got %.2f of draws", frac)
	}
}

func TestZipfPanicsOnBadArgs(t *testing.T) {
	r := New(1)
	for _, tc := range []struct {
		n     uint64
		theta float64
	}{{0, 0.5}, {10, 0}, {10, 1}, {10, 1.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %v) did not panic", tc.n, tc.theta)
				}
			}()
			NewZipf(r, tc.n, tc.theta)
		}()
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(19)
	trues := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bool() {
			trues++
		}
	}
	if frac := float64(trues) / draws; math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("Bool() fraction %v too far from 0.5", frac)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkUint64n(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64n(1000003)
	}
}
