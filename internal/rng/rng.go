// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the simulator.
//
// Every stochastic component of the simulator (leaf remapping, workload
// generation, bank hashing) takes an explicit *rng.Source so that whole
// experiments are reproducible from a single seed. The generator is
// xoshiro256**, seeded through splitmix64, following the reference
// constructions by Blackman and Vigna.
package rng

// Source is a deterministic xoshiro256** generator. The zero value is not
// usable; construct one with New.
type Source struct {
	s [4]uint64
}

// splitmix64 advances the given state and returns the next output. It is
// used only to expand a 64-bit seed into the 256-bit xoshiro state.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Distinct seeds yield independent
// streams for practical purposes.
func New(seed uint64) *Source {
	var r Source
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// Guard against the (astronomically unlikely) all-zero state, which is
	// a fixed point of xoshiro.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// Fork derives a new independent Source from r. It is used to hand separate
// streams to sub-components without correlating their draws.
func (r *Source) Fork() *Source {
	return New(r.Uint64() ^ 0xa0761d6478bd642f)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// It uses Lemire's multiply-shift rejection method, which is unbiased.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		//proram:invariant documented contract matching math/rand: a zero bound is a caller bug, not recoverable input
		panic("rng: Uint64n called with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	for {
		v := r.Uint64()
		// Reject the final partial block to remove modulo bias.
		if v < (-n)%n { // (2^64 - n) % n, the size of the biased region
			continue
		}
		return v % n
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		//proram:invariant documented contract matching math/rand.Intn: a non-positive bound is a caller bug
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	// 53 random mantissa bits.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a uniform boolean.
func (r *Source) Bool() bool { return r.Uint64()&1 == 1 }

// Perm returns a uniform random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Zipf draws from a Zipfian distribution over [0, n) with exponent theta in
// (0, 1). It uses the rejection-inversion free approximation common in
// benchmark generators (YCSB-style), precomputed by NewZipf.
type Zipf struct {
	src   *Source
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

// NewZipf builds a Zipf sampler over [0, n) with skew theta (0 < theta < 1).
// theta around 0.99 matches the YCSB default.
func NewZipf(src *Source, n uint64, theta float64) *Zipf {
	if n == 0 {
		//proram:invariant a zero population is a construction-time programming error; workload configs validate sizes upstream
		panic("rng: NewZipf with n == 0")
	}
	if theta <= 0 || theta >= 1 {
		//proram:invariant theta outside (0,1) is a construction-time programming error; workload configs validate skew upstream
		panic("rng: NewZipf requires 0 < theta < 1")
	}
	z := &Zipf{src: src, n: n, theta: theta}
	z.zetan = zetaStatic(n, theta)
	z.zeta2 = zetaStatic(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - powFloat(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zetaStatic(n uint64, theta float64) float64 {
	sum := 0.0
	// Cap the exact summation; for larger n the tail is approximated by the
	// integral of x^-theta, which is accurate for the smooth Zipf tail.
	const exactCap = 1 << 16
	m := n
	if m > exactCap {
		m = exactCap
	}
	for i := uint64(1); i <= m; i++ {
		sum += 1.0 / powFloat(float64(i), theta)
	}
	if n > m {
		// Integral approximation of sum_{m+1..n} x^-theta.
		a := float64(m) + 0.5
		b := float64(n) + 0.5
		sum += (powFloat(b, 1-theta) - powFloat(a, 1-theta)) / (1 - theta)
	}
	return sum
}

// powFloat is a minimal x^y for x > 0 implemented with exp/log via the
// math-free identity is not available in stdlib-free form; we simply use a
// repeated-squaring/log-free approximation. Since the stdlib is allowed,
// this indirection exists only to keep the dependency explicit.
func powFloat(x, y float64) float64 { return mathPow(x, y) }

// Next draws the next Zipf-distributed value in [0, n). Rank 0 is the most
// popular item.
func (z *Zipf) Next() uint64 {
	u := z.src.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+powFloat(0.5, z.theta) {
		return 1
	}
	v := uint64(float64(z.n) * powFloat(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}
