package banked

import (
	"bytes"
	"testing"

	"proram/internal/dram"
	"proram/internal/obs"
)

// testCfg is a small geometry with easy arithmetic: 2 channels × 2 banks,
// 4 KB rows, 16 B/cycle per channel, tRCD=tCAS=tRP=10.
func testCfg() Config {
	return Config{
		Channels:      2,
		Ranks:         1,
		Banks:         2,
		RowBytes:      4096,
		StripeBytes:   4096,
		BandwidthGBps: 16,
		ClockGHz:      1,
		TRCD:          10,
		TCAS:          10,
		TRP:           10,
		Layout:        LayoutSubtreePacked,
	}
}

// Address helpers for testCfg: stripe = addr/4096 alternates channels;
// within a channel consecutive 4 KB rows alternate the two banks.
const (
	addrC0B0R0 = 0     // channel 0, bank 0, row 0
	addrC0B1R0 = 8192  // channel 0, bank 1, row 0
	addrC1B0R0 = 4096  // channel 1, bank 2, row 0
	addrC0B0R1 = 16384 // channel 0, bank 0, row 1
)

func TestDecompose(t *testing.T) {
	m := New(testCfg())
	cases := []struct {
		addr   uint64
		ch, gb int
		row    uint64
	}{
		{addrC0B0R0, 0, 0, 0},
		{addrC0B1R0, 0, 1, 0},
		{addrC1B0R0, 1, 2, 0},
		{addrC0B0R1, 0, 0, 1},
		{addrC0B0R0 + 64, 0, 0, 0},
	}
	for _, c := range cases {
		ch, gb, row := m.decompose(c.addr)
		if ch != c.ch || gb != c.gb || row != c.row {
			t.Errorf("decompose(%d) = ch%d gb%d row%d, want ch%d gb%d row%d",
				c.addr, ch, gb, row, c.ch, c.gb, c.row)
		}
	}
}

// Satellite (a): two accesses to the same bank serialize on the bank; the
// same pair across different banks overlaps activation, and across
// different channels overlaps entirely.
func TestSameBankVsDifferentBanks(t *testing.T) {
	// Same bank, different rows: second access waits for the bank AND pays
	// a row conflict. miss = tRCD+tCAS = 20, transfer = 64/16 = 4.
	m := New(testCfg())
	if got := m.Access(0, addrC0B0R0, 64, false); got != 24 {
		t.Fatalf("first access done = %d, want 24", got)
	}
	// start = bankUntil = 24, conflict = 30, done = 24+30+4 = 58.
	if got := m.Access(0, addrC0B0R1, 64, false); got != 58 {
		t.Errorf("same-bank conflict done = %d, want 58", got)
	}

	// Different banks, same channel: activations overlap, the shared bus
	// serializes only the transfers: done = max(0+20, bus 24) + 4 = 28.
	m = New(testCfg())
	m.Access(0, addrC0B0R0, 64, false)
	if got := m.Access(0, addrC0B1R0, 64, false); got != 28 {
		t.Errorf("different-bank done = %d, want 28", got)
	}

	// Different channels: fully parallel, both finish at 24.
	m = New(testCfg())
	m.Access(0, addrC0B0R0, 64, false)
	if got := m.Access(0, addrC1B0R0, 64, false); got != 24 {
		t.Errorf("different-channel done = %d, want 24", got)
	}
}

// Satellite (b): a row hit pays tCAS only; a conflict pays tRP+tRCD+tCAS.
func TestRowHitVsConflict(t *testing.T) {
	m := New(testCfg())
	m.Access(0, addrC0B0R0, 64, false) // miss, opens row 0, done 24
	// Hit in the open row, issued after the bank freed: 30+10+4 = 44.
	if got := m.Access(30, addrC0B0R0+64, 64, false); got != 44 {
		t.Errorf("row-hit done = %d, want 44", got)
	}
	// Conflict in the same bank: 44+30+4 = 78.
	if got := m.Access(30, addrC0B0R1, 64, false); got != 78 {
		t.Errorf("row-conflict done = %d, want 78", got)
	}
	st := m.Stats()
	if st.RowHits != 1 || st.RowMisses != 1 || st.RowConflicts != 1 {
		t.Errorf("outcomes = %d/%d/%d hits/misses/conflicts, want 1/1/1",
			st.RowHits, st.RowMisses, st.RowConflicts)
	}
}

// Satellite (c): a whole-path schedule on a 2-channel banked device beats
// the flat model's fully serialized BulkTransfer for the same path.
func TestOverlappedPathBeatsBulkTransfer(t *testing.T) {
	const (
		levels     = 10
		z          = 4
		blockBytes = 64
		crypto     = 21
	)
	bucketBytes := uint64(z * blockBytes)
	pathBytes := uint64(levels+1) * bucketBytes

	flat := dram.New(dram.DefaultConfig())
	flatDone := flat.BulkTransfer(0, 2*pathBytes, flat.Config().LatencyCycles+crypto)

	dev, err := NewDevice(testCfg(), levels, z, blockBytes, crypto)
	if err != nil {
		t.Fatal(err)
	}
	pt := dev.Path(0, 123)
	if pt.ReadDone >= pt.DataReady || pt.DataReady > pt.Done {
		t.Fatalf("phase order violated: %+v", pt)
	}
	if pt.Done >= flatDone {
		t.Errorf("banked path done = %d, not faster than flat BulkTransfer %d", pt.Done, flatDone)
	}
	if pt.DataReady >= flatDone {
		t.Errorf("banked data ready = %d, not faster than flat BulkTransfer %d", pt.DataReady, flatDone)
	}
}

// Satellite (d): the same access sequence produces a byte-identical
// per-access timing log on independently constructed models.
func TestTimingLogDeterminism(t *testing.T) {
	run := func() []byte {
		dev, err := NewDevice(testCfg(), 12, 4, 64, 21)
		if err != nil {
			t.Fatal(err)
		}
		dev.Model().EnableLog()
		seed := uint64(0x9e3779b97f4a7c15)
		now := uint64(0)
		for i := 0; i < 200; i++ {
			seed = seed*6364136223846793005 + 1442695040888963407
			leaf := (seed >> 33) % (1 << 12)
			pt := dev.Path(now, leaf)
			now = pt.DataReady
		}
		return dev.Model().LogBytes()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("empty timing log")
	}
	if !bytes.Equal(a, b) {
		t.Errorf("timing logs differ: %d vs %d bytes", len(a), len(b))
	}
}

// The subtree-packed layout assigns every bucket a disjoint address range
// inside the tree's span, and packs parent/child buckets of one subtree
// into the same row.
func TestTreeMapPackedAddresses(t *testing.T) {
	cfg := testCfg()
	cfg.RowBytes = 1024
	cfg.StripeBytes = 1024
	const levels, z, blockBytes = 6, 4, 64 // 256 B buckets, k=2
	tm, err := NewTreeMap(cfg, levels, z, blockBytes, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tm.SubtreeDepth() != 2 {
		t.Fatalf("subtree depth = %d, want 2", tm.SubtreeDepth())
	}
	bb := tm.BucketBytes()
	seen := make(map[uint64]uint64) // start -> node
	for node := uint64(1); node < 1<<(levels+1); node++ {
		a := tm.Addr(node)
		if a+bb > tm.SpanBytes() {
			t.Fatalf("node %d at %d overruns span %d", node, a, tm.SpanBytes())
		}
		if a%bb != 0 {
			t.Fatalf("node %d address %d not bucket-aligned", node, a)
		}
		for s, n := range seen {
			if a < s+bb && s < a+bb {
				t.Fatalf("node %d at %d overlaps node %d at %d", node, a, n, s)
			}
		}
		seen[a] = node
	}
	// Depth-4 node 16 and its children 32,33 form one subtree: same row.
	row := func(a uint64) uint64 { return a / uint64(cfg.RowBytes) }
	if row(tm.Addr(16)) != row(tm.Addr(32)) || row(tm.Addr(16)) != row(tm.Addr(33)) {
		t.Errorf("subtree {16,32,33} spans rows %d,%d,%d, want one row",
			row(tm.Addr(16)), row(tm.Addr(32)), row(tm.Addr(33)))
	}
	// Hot top-of-tree buckets (depth < k) each own a distinct row.
	if row(tm.Addr(1)) == row(tm.Addr(2)) || row(tm.Addr(2)) == row(tm.Addr(3)) {
		t.Errorf("top buckets share rows: %d,%d,%d",
			row(tm.Addr(1)), row(tm.Addr(2)), row(tm.Addr(3)))
	}
}

func TestTreeMapLinearAddresses(t *testing.T) {
	cfg := testCfg()
	cfg.Layout = LayoutLinear
	tm, err := NewTreeMap(cfg, 8, 4, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := tm.Addr(1); got != 0 {
		t.Errorf("root at %d, want 0", got)
	}
	if got := tm.Addr(5); got != 4*256 {
		t.Errorf("node 5 at %d, want %d", got, 4*256)
	}
}

func TestTreeMapRejectsMisalignedBase(t *testing.T) {
	if _, err := NewTreeMap(testCfg(), 8, 4, 64, 4096); err == nil {
		t.Error("misaligned base accepted")
	}
}

// The packed layout must actually earn row hits: on the same device
// geometry, a stream of paths sees a strictly higher row-hit rate and a
// strictly earlier finish than the linear layout.
func TestPackedLayoutBeatsLinear(t *testing.T) {
	run := func(layout Layout) (Stats, uint64) {
		cfg := testCfg()
		cfg.Layout = layout
		dev, err := NewDevice(cfg, 14, 4, 64, 21)
		if err != nil {
			t.Fatal(err)
		}
		seed := uint64(1)
		now := uint64(0)
		for i := 0; i < 300; i++ {
			seed = seed*6364136223846793005 + 1442695040888963407
			pt := dev.Path(now, (seed>>33)%(1<<14))
			now = pt.DataReady
		}
		return dev.Model().Stats(), now
	}
	linStats, linEnd := run(LayoutLinear)
	pkStats, pkEnd := run(LayoutSubtreePacked)
	if pkStats.RowHitRate() <= linStats.RowHitRate() {
		t.Errorf("packed row-hit rate %.3f not above linear %.3f",
			pkStats.RowHitRate(), linStats.RowHitRate())
	}
	if pkEnd >= linEnd {
		t.Errorf("packed finished at %d, linear at %d; packed should be faster", pkEnd, linEnd)
	}
}

// Shared arbitration is deterministic: identical lanes produce identical
// schedules and timing logs across independent instances.
func TestSharedCommitRoundDeterminism(t *testing.T) {
	lanes := [][]uint64{
		{5, 900, 33},
		{812, 7},
		{},
		{1000, 1001, 1002, 64},
	}
	run := func() ([][]uint64, []uint64, []byte) {
		s, err := NewShared(testCfg(), 4, 12, 4, 64, 21)
		if err != nil {
			t.Fatal(err)
		}
		s.Model().EnableLog()
		starts, ready := s.CommitRound(100, lanes)
		return starts, ready, s.Model().LogBytes()
	}
	s1, r1, l1 := run()
	s2, r2, l2 := run()
	if !bytes.Equal(l1, l2) {
		t.Error("shared timing logs differ across identical rounds")
	}
	for p := range lanes {
		if r1[p] != r2[p] {
			t.Errorf("partition %d ready %d vs %d", p, r1[p], r2[p])
		}
		for j := range s1[p] {
			if s1[p][j] != s2[p][j] {
				t.Errorf("partition %d slot %d start %d vs %d", p, j, s1[p][j], s2[p][j])
			}
		}
	}
	// Idle partitions hold the floor; busy ones advance monotonically.
	if r1[2] != 100 {
		t.Errorf("idle partition ready = %d, want floor 100", r1[2])
	}
	for p, lane := range lanes {
		prev := uint64(0)
		for j := range lane {
			if s1[p][j] < prev {
				t.Errorf("partition %d starts not monotone: %v", p, s1[p])
			}
			prev = s1[p][j]
		}
		if len(lane) > 0 && r1[p] <= s1[p][len(lane)-1] {
			t.Errorf("partition %d ready %d not after last start %d", p, r1[p], s1[p][len(lane)-1])
		}
	}
}

// Shared partitions contend: the same lanes on a shared device finish no
// earlier than on private devices, and with ≥2 busy partitions on a
// 1-channel device, strictly later.
func TestSharedContention(t *testing.T) {
	cfg := testCfg()
	cfg.Channels = 1
	lanes := [][]uint64{{1, 2, 3}, {100, 200, 300}}

	s, err := NewShared(cfg, 2, 12, 4, 64, 21)
	if err != nil {
		t.Fatal(err)
	}
	_, sharedReady := s.CommitRound(0, lanes)

	var soloReady []uint64
	for _, lane := range lanes {
		dev, err := NewDevice(cfg, 12, 4, 64, 21)
		if err != nil {
			t.Fatal(err)
		}
		now := uint64(0)
		for _, leaf := range lane {
			now = dev.Path(now, leaf).DataReady
		}
		soloReady = append(soloReady, now)
	}
	for p := range lanes {
		if sharedReady[p] < soloReady[p] {
			t.Errorf("partition %d shared ready %d earlier than solo %d", p, sharedReady[p], soloReady[p])
		}
	}
	if sharedReady[0] == soloReady[0] && sharedReady[1] == soloReady[1] {
		t.Error("two partitions on one channel showed no contention at all")
	}
}

func TestResetClearsState(t *testing.T) {
	m := New(testCfg())
	m.EnableLog()
	m.Access(0, addrC0B0R0, 64, false)
	m.Access(0, addrC0B0R1, 64, true)
	m.Reset()
	if m.Stats() != (Stats{}) {
		t.Errorf("stats after Reset = %+v", m.Stats())
	}
	if len(m.Log()) != 0 {
		t.Errorf("log after Reset has %d records", len(m.Log()))
	}
	if m.NextFree() != 0 {
		t.Errorf("NextFree after Reset = %d", m.NextFree())
	}
	// First access after Reset is a fresh row miss again.
	if got := m.Access(0, addrC0B0R0, 64, false); got != 24 {
		t.Errorf("post-Reset access done = %d, want 24", got)
	}
}

func TestInstrumentCountersTrackStats(t *testing.T) {
	rec := obs.New(obs.Options{})
	m := New(testCfg())
	m.Instrument(rec)
	m.Access(0, addrC0B0R0, 64, false)
	m.Access(0, addrC0B0R0+64, 64, true)
	m.Access(0, addrC0B0R1, 64, false)
	st := m.Stats()
	checks := []struct {
		name string
		want uint64
	}{
		{"dram.banked.accesses", st.Accesses},
		{"dram.banked.bytes_moved", st.BytesMoved},
		{"dram.banked.row_hits", st.RowHits},
		{"dram.banked.row_misses", st.RowMisses},
		{"dram.banked.row_conflicts", st.RowConflicts},
	}
	for _, c := range checks {
		if got := rec.Counter(c.name).Value(); got != c.want {
			t.Errorf("counter %s = %d, stats say %d", c.name, got, c.want)
		}
	}
	busy := m.ChannelBusy()
	var total uint64
	for ch, b := range busy {
		name := []string{"dram.banked.chan0.busy_cycles", "dram.banked.chan1.busy_cycles"}[ch]
		if got := rec.Counter(name).Value(); got != b {
			t.Errorf("%s = %d, model says %d", name, got, b)
		}
		total += b
	}
	if total != st.BusyCycles {
		t.Errorf("channel busy sum %d != stats busy %d", total, st.BusyCycles)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Channels = 0 },
		func(c *Config) { c.Channels = 65 },
		func(c *Config) { c.Ranks = 0 },
		func(c *Config) { c.Banks = 0 },
		func(c *Config) { c.RowBytes = 100 },
		func(c *Config) { c.StripeBytes = 96 },
		func(c *Config) { c.BandwidthGBps = 0 },
		func(c *Config) { c.ClockGHz = 0 },
		func(c *Config) { c.TCAS = 0 },
		func(c *Config) { c.Layout = Layout(9) },
	}
	for i, mut := range bad {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}
