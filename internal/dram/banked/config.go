// Package banked models main memory as channels × ranks × banks with
// row-buffer state — the co-design layer between the ORAM tree and the
// physical device. Where the flat model (internal/dram) charges every path
// access one serialized bulk transfer, this model schedules every bucket
// individually: reads stripe across channels, the write-back phase of one
// path overlaps the read phase of the next, and the physical tree layout
// decides whether consecutive buckets hit an open row or thrash a bank.
//
// All times are in core clock cycles (uint64). The model is analytic and
// fully deterministic: completion times are pure integer functions of the
// access sequence, so replayed runs are byte-identical.
package banked

import "fmt"

// Layout selects how tree buckets map to physical addresses.
type Layout int

const (
	// LayoutLinear stores buckets in heap order: bucket n at (n-1)·bucketBytes.
	// Simple, but a path's buckets scatter over rows arbitrarily and the
	// top-of-tree rows all land in the same channel stripe.
	LayoutLinear Layout = iota
	// LayoutSubtreePacked packs each depth-k subtree into one DRAM row, so
	// a path enjoys k buckets per row activation, and gives each of the hot
	// top-of-tree buckets its own permanently-open row striped across
	// channels. This is the Palermo-style ORAM/DRAM co-design layout.
	LayoutSubtreePacked
)

func (l Layout) String() string {
	switch l {
	case LayoutLinear:
		return "linear"
	case LayoutSubtreePacked:
		return "subtree-packed"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// Config describes the banked device geometry and timing. The zero value is
// not usable; start from DefaultConfig.
type Config struct {
	// Channels is the number of independent memory channels, each with its
	// own data bus and banks.
	Channels int
	// Ranks is the number of ranks per channel; banks multiply across ranks.
	Ranks int
	// Banks is the number of banks per rank. Each bank has one row buffer.
	Banks int
	// RowBytes is the row-buffer (DRAM page) size per bank.
	RowBytes int
	// StripeBytes is the channel-interleave granularity: consecutive
	// StripeBytes-sized stripes of the physical address space alternate
	// channels. 0 defaults to RowBytes (row-granular interleave, which keeps
	// one packed subtree on one channel).
	StripeBytes int
	// BandwidthGBps is the pin bandwidth of ONE channel; the aggregate
	// device bandwidth is Channels× this. The default matches the flat
	// model's single 16 GB/s channel, so adding channels adds real pins.
	BandwidthGBps float64
	// ClockGHz converts bandwidth into bytes per core cycle.
	ClockGHz float64
	// TRCD is the activate-to-column delay (row miss adds TRCD+TCAS).
	TRCD uint64
	// TCAS is the column-access latency paid by every access.
	TCAS uint64
	// TRP is the precharge latency (row conflict adds TRP on top of a miss).
	TRP uint64
	// Layout maps tree buckets to physical addresses.
	Layout Layout
}

// DefaultConfig returns a dual-channel DDR-style geometry: 2 channels of
// 16 GB/s each, 8 banks with 4 KB rows, timing in 1 GHz core cycles
// (tRCD=tCAS=tRP=14 ≈ 14 ns), subtree-packed layout.
func DefaultConfig() Config {
	return Config{
		Channels:      2,
		Ranks:         1,
		Banks:         8,
		RowBytes:      4096,
		StripeBytes:   4096,
		BandwidthGBps: 16,
		ClockGHz:      1,
		TRCD:          14,
		TCAS:          14,
		TRP:           14,
		Layout:        LayoutSubtreePacked,
	}
}

// normalized fills defaulted fields.
func (c Config) normalized() Config {
	if c.StripeBytes == 0 {
		c.StripeBytes = c.RowBytes
	}
	return c
}

// RatePer1024 returns one channel's rate as bytes per 1024 cycles, the
// fixed-point form all transfer timing uses (exact integer ceil division;
// no float enters per-access arithmetic).
func (c Config) RatePer1024() uint64 {
	return uint64(c.BandwidthGBps/c.ClockGHz*1024 + 0.5)
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	c = c.normalized()
	if c.Channels < 1 || c.Channels > 64 {
		return fmt.Errorf("banked: Channels %d out of range [1,64]", c.Channels)
	}
	if c.Ranks < 1 {
		return fmt.Errorf("banked: Ranks %d must be positive", c.Ranks)
	}
	if c.Banks < 1 {
		return fmt.Errorf("banked: Banks %d must be positive", c.Banks)
	}
	if c.RowBytes < 64 || c.RowBytes&(c.RowBytes-1) != 0 {
		return fmt.Errorf("banked: RowBytes %d must be a power of two >= 64", c.RowBytes)
	}
	if c.StripeBytes < 64 || c.StripeBytes&(c.StripeBytes-1) != 0 {
		return fmt.Errorf("banked: StripeBytes %d must be a power of two >= 64", c.StripeBytes)
	}
	if c.RowBytes%c.StripeBytes != 0 && c.StripeBytes%c.RowBytes != 0 {
		return fmt.Errorf("banked: StripeBytes %d and RowBytes %d must divide one another", c.StripeBytes, c.RowBytes)
	}
	if c.BandwidthGBps <= 0 || c.ClockGHz <= 0 {
		return fmt.Errorf("banked: bandwidth %v GB/s at %v GHz must be positive", c.BandwidthGBps, c.ClockGHz)
	}
	if c.RatePer1024() == 0 {
		return fmt.Errorf("banked: bandwidth %v GB/s at %v GHz rounds to zero bytes per 1024 cycles", c.BandwidthGBps, c.ClockGHz)
	}
	if c.TCAS == 0 {
		return fmt.Errorf("banked: TCAS must be positive")
	}
	switch c.Layout {
	case LayoutLinear, LayoutSubtreePacked:
	default:
		return fmt.Errorf("banked: unknown layout %d", int(c.Layout))
	}
	return nil
}
