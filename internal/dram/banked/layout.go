package banked

import (
	"fmt"
	"math/bits"

	"proram/internal/dram"
)

// TreeMap binds one ORAM tree's geometry to physical DRAM addresses under a
// layout. Buckets are heap-numbered exactly as in internal/tree (node 1 is
// the root, children of n are 2n and 2n+1); TreeMap turns a node number
// into the physical address the device decomposes into channel/bank/row.
//
// Subtree-packed layout: the tree is cut into depth-k subtrees where k is
// the largest depth whose 2^k−1 buckets fit one row. Each deep subtree
// occupies exactly one row of one channel, so the k buckets a path visits
// inside it are row hits after one activation, and consecutive subtree
// slots alternate channels. The 2^k−1 top-of-tree buckets — touched by
// every single path — instead each own a full row, striped across channels:
// their rows never close, so the hottest buckets are always row hits and
// their traffic spreads over every channel instead of piling onto one.
type TreeMap struct {
	levels      int
	bucketBytes uint64
	layout      Layout
	base        uint64
	slotBytes   uint64   // bytes per subtree slot / top bucket row (RowBytes multiple)
	subDepth    int      // k: depths per packed subtree
	layerBase   []uint64 // packed: first slot index of each subtree layer
	spanBytes   uint64   // total physical span, channel-stripe aligned
}

// NewTreeMap lays out a tree of the given geometry at physical offset base.
// base must be aligned to the channel-stripe period (AlignBytes of cfg).
func NewTreeMap(cfg Config, levels, z, blockBytes int, base uint64) (*TreeMap, error) {
	cfg = cfg.normalized()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if levels < 1 || levels > 40 {
		return nil, fmt.Errorf("banked: tree levels %d out of range [1,40]", levels)
	}
	if z < 1 || blockBytes < 8 {
		return nil, fmt.Errorf("banked: bucket geometry z=%d blockBytes=%d invalid", z, blockBytes)
	}
	align := alignBytes(cfg)
	if base%align != 0 {
		return nil, fmt.Errorf("banked: base %d not aligned to the %d-byte channel-stripe period", base, align)
	}
	t := &TreeMap{
		levels:      levels,
		bucketBytes: uint64(z) * uint64(blockBytes),
		layout:      cfg.Layout,
		base:        base,
	}
	rowBytes := uint64(cfg.RowBytes)
	if t.layout == LayoutLinear {
		buckets := (uint64(1) << (levels + 1)) - 1
		t.spanBytes = roundUp(buckets*t.bucketBytes, align)
		return t, nil
	}
	// k: deepest subtree that fits one row (at least 1 even for huge buckets).
	k := 1
	for (uint64(1)<<(k+1)-1)*t.bucketBytes <= rowBytes && k < levels+1 {
		k++
	}
	t.subDepth = k
	t.slotBytes = roundUp((uint64(1)<<k-1)*t.bucketBytes, rowBytes)
	// Top-of-tree buckets (depth < k): one slot each, slot index node-1.
	units := (uint64(1) << k) - 1
	t.layerBase = make([]uint64, levels/k+1)
	for q := 1; q*k <= levels; q++ {
		t.layerBase[q] = units
		units += uint64(1) << (q * k)
	}
	t.spanBytes = roundUp(units*t.slotBytes, align)
	return t, nil
}

// alignBytes is the period after which the channel/bank decomposition
// repeats: partition bases placed at multiples of it see identical striping.
func alignBytes(cfg Config) uint64 {
	period := uint64(cfg.StripeBytes) * uint64(cfg.Channels)
	rowPeriod := uint64(cfg.RowBytes) * uint64(cfg.Channels*cfg.Ranks*cfg.Banks)
	if rowPeriod > period {
		period = rowPeriod
	}
	return period
}

func roundUp(v, to uint64) uint64 { return (v + to - 1) / to * to }

// SpanBytes returns the physical bytes the tree occupies (alignment
// included), the offset stride for co-locating several trees.
func (t *TreeMap) SpanBytes() uint64 { return t.spanBytes }

// SubtreeDepth returns k, the packed-subtree depth (0 for linear layout).
func (t *TreeMap) SubtreeDepth() int { return t.subDepth }

// Levels returns the tree depth L the map was built for.
func (t *TreeMap) Levels() int { return t.levels }

// BucketBytes returns the size of one bucket (Z·blockBytes).
func (t *TreeMap) BucketBytes() uint64 { return t.bucketBytes }

// Addr returns the physical address of the bucket with the given heap node
// number.
//
//proram:hotpath address arithmetic for every bucket of every banked path
func (t *TreeMap) Addr(node uint64) uint64 {
	if t.layout == LayoutLinear {
		return t.base + (node-1)*t.bucketBytes
	}
	d := bits.Len64(node) - 1
	if d < t.subDepth {
		// Hot top-of-tree bucket: its own row, rows striped across channels.
		return t.base + (node-1)*t.slotBytes
	}
	q := d / t.subDepth
	r := uint(d % t.subDepth)
	root := node >> r
	//proram:allow boundscheck q = depth(node)/subDepth < len(layerBase) for every node the map was built for; layerBase covers all ceil(levels/subDepth) layer groups
	slot := t.layerBase[q] + (root - uint64(1)<<(q*t.subDepth))
	local := uint64(1)<<r | (node & (uint64(1)<<r - 1))
	return t.base + slot*t.slotBytes + (local-1)*t.bucketBytes
}

// Device schedules whole ORAM path accesses for one tree on a banked
// Model, implementing dram.Device for the controller. The read phase
// issues every bucket on the path at once (banks and channels order them),
// the crypto pipeline drains, and the write-back phase re-issues the same
// buckets — whose rows the read phase left open — while the next path's
// reads may already be streaming on other banks.
type Device struct {
	m      *Model
	t      *TreeMap
	crypto uint64
	shared bool // part of a Shared group: Reset leaves the model alone
}

var _ dram.Device = (*Device)(nil)

// NewDevice builds a Model from cfg and binds a tree of the given geometry
// to it at offset 0. crypto is the per-path decrypt pipeline drain charged
// between the read and write-back phases.
func NewDevice(cfg Config, levels, z, blockBytes int, crypto uint64) (*Device, error) {
	tm, err := NewTreeMap(cfg, levels, z, blockBytes, 0)
	if err != nil {
		return nil, err
	}
	return &Device{m: New(cfg), t: tm, crypto: crypto}, nil
}

// Model exposes the underlying timing model (stats, instrumentation).
func (d *Device) Model() *Model { return d.m }

// Path schedules the full read+write-back of the path to leaf. The first
// command issues no earlier than now; the returned schedule reports when
// the reads drained, when the data is usable, and when the write-back
// finished.
//
//proram:hotpath schedules every bucket read and write of every path access
func (d *Device) Path(now uint64, leaf uint64) dram.PathTiming {
	L := d.t.levels
	leafNode := uint64(1)<<L + leaf
	var readDone uint64
	for depth := 0; depth <= L; depth++ {
		node := leafNode >> (L - depth)
		done := d.m.Access(now, d.t.Addr(node), d.t.bucketBytes, false)
		readDone = max(readDone, done)
	}
	dataReady := readDone + d.crypto
	var writeDone uint64
	for depth := L; depth >= 0; depth-- {
		node := leafNode >> (L - depth)
		done := d.m.Access(dataReady, d.t.Addr(node), d.t.bucketBytes, true)
		writeDone = max(writeDone, done)
	}
	return dram.PathTiming{Start: now, ReadDone: readDone, DataReady: dataReady, Done: writeDone}
}

// Reset clears the device's timing state. A Device inside a Shared group
// leaves the shared model to Shared.Reset.
func (d *Device) Reset() {
	if !d.shared {
		d.m.Reset()
	}
}

// Shared is one banked device contended by several ORAM partitions: every
// partition's tree is laid out at its own channel-aligned offset of the
// same physical device, and the sharded frontend arbitrates each round's
// recorded path requests onto it at the round barrier — single-threaded,
// in canonical (slot, partition) order, so live runs and replays produce
// byte-identical schedules no matter how the worker goroutines raced.
type Shared struct {
	m    *Model
	devs []*Device
}

// NewShared builds one Model and binds parts identical trees to it at
// consecutive span-aligned offsets.
func NewShared(cfg Config, parts, levels, z, blockBytes int, crypto uint64) (*Shared, error) {
	if parts < 1 {
		return nil, fmt.Errorf("banked: parts %d must be positive", parts)
	}
	m := New(cfg)
	s := &Shared{m: m, devs: make([]*Device, parts)}
	var base uint64
	for i := range s.devs {
		tm, err := NewTreeMap(cfg, levels, z, blockBytes, base)
		if err != nil {
			return nil, err
		}
		s.devs[i] = &Device{m: m, t: tm, crypto: crypto, shared: true}
		base += tm.SpanBytes()
	}
	return s, nil
}

// Model exposes the shared timing model.
func (s *Shared) Model() *Model { return s.m }

// Reset clears the shared model's timing state and statistics.
func (s *Shared) Reset() { s.m.Reset() }

// CommitRound arbitrates one scheduling round: leaves[p] is partition p's
// recorded path-access sequence for the round, in controller issue order.
// Paths are scheduled slot-major — slot j of every partition before slot
// j+1 of any — with each partition's chain serialized on its own data
// dependency (a path issues when its predecessor's data is ready). It
// returns, per partition, the contended issue time of every path and the
// data-ready completion of the partition's last path (floor when idle).
func (s *Shared) CommitRound(floor uint64, leaves [][]uint64) (starts [][]uint64, ready []uint64) {
	if len(leaves) != len(s.devs) {
		//proram:invariant the frontend hands one lane per partition; a mismatch is a wiring bug
		panic(fmt.Sprintf("banked: %d lanes for %d partitions", len(leaves), len(s.devs)))
	}
	starts = make([][]uint64, len(leaves))
	ready = make([]uint64, len(leaves))
	maxLen := 0
	for p, lane := range leaves {
		ready[p] = floor
		starts[p] = make([]uint64, len(lane))
		if len(lane) > maxLen {
			maxLen = len(lane)
		}
	}
	for j := 0; j < maxLen; j++ {
		for p, lane := range leaves {
			if j >= len(lane) {
				continue
			}
			starts[p][j] = ready[p]
			pt := s.devs[p].Path(ready[p], lane[j])
			ready[p] = pt.DataReady
		}
	}
	return starts, ready
}
