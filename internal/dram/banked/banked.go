package banked

import (
	"encoding/binary"
	"fmt"

	"proram/internal/obs"
)

// rowClosed marks a bank with no open row.
const rowClosed = ^uint64(0)

// Outcome classifies one access against its bank's row buffer.
type Outcome uint8

const (
	// RowHit: the row was already open — column access only.
	RowHit Outcome = iota
	// RowMiss: the bank was idle — activate, then column access.
	RowMiss
	// RowConflict: another row was open — precharge, activate, column access.
	RowConflict
)

// Stats aggregates what the device did. All fields are monotone counters.
type Stats struct {
	Accesses     uint64 // bucket-granular accesses scheduled
	Reads        uint64
	Writes       uint64
	BytesMoved   uint64
	RowHits      uint64
	RowMisses    uint64
	RowConflicts uint64
	BusyCycles   uint64 // summed channel transfer occupancy
}

// Sub returns the delta of s over an earlier snapshot.
func (s Stats) Sub(base Stats) Stats {
	return Stats{
		Accesses:     s.Accesses - base.Accesses,
		Reads:        s.Reads - base.Reads,
		Writes:       s.Writes - base.Writes,
		BytesMoved:   s.BytesMoved - base.BytesMoved,
		RowHits:      s.RowHits - base.RowHits,
		RowMisses:    s.RowMisses - base.RowMisses,
		RowConflicts: s.RowConflicts - base.RowConflicts,
		BusyCycles:   s.BusyCycles - base.BusyCycles,
	}
}

// RowHitRate returns hits/(hits+misses+conflicts), 0 when idle.
func (s Stats) RowHitRate() float64 {
	t := s.RowHits + s.RowMisses + s.RowConflicts
	if t == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(t)
}

// AccessRec is one scheduled access in the optional timing log.
type AccessRec struct {
	Addr    uint64
	Start   uint64 // issue time handed to the scheduler
	Done    uint64 // data off the channel
	Write   bool
	Outcome Outcome
}

// Model is the banked device: per-bank row-buffer and next-free state plus
// per-channel bus serialization. Not safe for concurrent use — the unified
// controller owns one, and the sharded frontend arbitrates all partitions
// onto one at the round barrier.
type Model struct {
	cfg          Config
	rate1024     uint64
	banksPerChan int
	busUntil     []uint64 // per channel
	bankUntil    []uint64 // per global bank (channel-major)
	openRow      []uint64 // per global bank; rowClosed = none
	chanBusy     []uint64 // per channel transfer occupancy
	stats        Stats

	log []AccessRec // nil unless EnableLog

	// Observability handles; all nil-safe no-ops until Instrument.
	obsAccesses  *obs.Counter
	obsBytes     *obs.Counter
	obsRowHits   *obs.Counter
	obsRowMiss   *obs.Counter
	obsRowConfl  *obs.Counter
	obsChanBusy  []*obs.Counter // per channel
	obsBankAcc   []*obs.Counter // per global bank
	bankAccesses []uint64       // per global bank, always tracked
}

// New builds a Model. It panics on an invalid configuration (configuration
// errors are programming errors; public entry points validate first).
func New(cfg Config) *Model {
	if err := cfg.Validate(); err != nil {
		//proram:invariant configuration errors are programming errors; public entry points run Config.Validate before construction
		panic(err)
	}
	cfg = cfg.normalized()
	banksPerChan := cfg.Ranks * cfg.Banks
	nBanks := cfg.Channels * banksPerChan
	m := &Model{
		cfg:          cfg,
		rate1024:     cfg.RatePer1024(),
		banksPerChan: banksPerChan,
		busUntil:     make([]uint64, cfg.Channels),
		bankUntil:    make([]uint64, nBanks),
		openRow:      make([]uint64, nBanks),
		chanBusy:     make([]uint64, cfg.Channels),
		bankAccesses: make([]uint64, nBanks),
	}
	for i := range m.openRow {
		m.openRow[i] = rowClosed
	}
	return m
}

// Config returns the (normalized) configuration the model was built with.
func (m *Model) Config() Config { return m.cfg }

// Stats returns a copy of the accumulated statistics.
func (m *Model) Stats() Stats { return m.stats }

// ChannelBusy returns a copy of the per-channel transfer occupancy.
func (m *Model) ChannelBusy() []uint64 {
	return append([]uint64(nil), m.chanBusy...)
}

// BankAccesses returns a copy of the per-bank access counts (channel-major
// global bank index).
func (m *Model) BankAccesses() []uint64 {
	return append([]uint64(nil), m.bankAccesses...)
}

// EnableLog turns on the per-access timing log (testing/debugging only —
// it allocates per access).
func (m *Model) EnableLog() { m.log = make([]AccessRec, 0, 1024) }

// Log returns the recorded timing log.
func (m *Model) Log() []AccessRec { return m.log }

// LogBytes returns a deterministic fixed-width binary encoding of the
// timing log, the byte string the determinism test compares.
func (m *Model) LogBytes() []byte {
	buf := make([]byte, 0, len(m.log)*26)
	for _, r := range m.log {
		buf = binary.LittleEndian.AppendUint64(buf, r.Addr)
		buf = binary.LittleEndian.AppendUint64(buf, r.Start)
		buf = binary.LittleEndian.AppendUint64(buf, r.Done)
		w := byte(0)
		if r.Write {
			w = 1
		}
		buf = append(buf, w, byte(r.Outcome))
	}
	return buf
}

// decompose splits a physical address into channel, global bank and
// bank-local row. Stripes of StripeBytes alternate channels; within a
// channel, consecutive rows interleave across that channel's banks.
//
//proram:hotpath address decomposition for every bucket enqueue
func (m *Model) decompose(addr uint64) (ch int, gb int, row uint64) {
	stripeBytes := uint64(m.cfg.StripeBytes)
	stripe := addr / stripeBytes
	channels := uint64(m.cfg.Channels)
	ch = int(stripe % channels)
	inChan := (stripe/channels)*stripeBytes + addr%stripeBytes
	crow := inChan / uint64(m.cfg.RowBytes)
	bpc := uint64(m.banksPerChan)
	gb = ch*m.banksPerChan + int(crow%bpc)
	row = crow / bpc
	return ch, gb, row
}

// Access schedules one bucket-granular access issued at time now and
// returns the cycle its data is off the channel. The bank's row-buffer
// state decides the activation cost, and the channel bus serializes
// transfers. Row hits pipeline: successive column accesses to an open row
// stream at bus rate, paying the CAS latency in parallel with the burst in
// flight, so only a row change (miss or conflict) waits for the bank to
// drain before precharge/activate.
//
//proram:hotpath one enqueue per bucket of every banked path access
func (m *Model) Access(now, addr, bytes uint64, write bool) uint64 {
	ch, gb, row := m.decompose(addr)
	// Hoist the geometry-sized slices and pin both indexes once:
	// decompose maps every address into [0, banks) and [0, channels) by
	// construction, and the pins let the bounds checker (and the
	// compiler) prove every indexing below.
	openRow, bankUntil, busUntil := m.openRow, m.bankUntil, m.busUntil
	chanBusy, bankAccesses := m.chanBusy, m.bankAccesses
	_ = openRow[gb]
	_ = bankUntil[gb]
	_ = bankAccesses[gb]
	_ = busUntil[ch]
	_ = chanBusy[ch]
	var start uint64
	var rowLat uint64
	var outcome Outcome
	switch openRow[gb] {
	case row:
		// Open row: CAS commands pipeline past the in-flight burst.
		start = now
		rowLat = m.cfg.TCAS
		outcome = RowHit
		m.stats.RowHits++
		m.obsRowHits.Inc()
	case rowClosed:
		start = max(now, bankUntil[gb])
		rowLat = m.cfg.TRCD + m.cfg.TCAS
		outcome = RowMiss
		m.stats.RowMisses++
		m.obsRowMiss.Inc()
	default:
		// Row change: the bank must drain its burst before precharge.
		start = max(now, bankUntil[gb])
		rowLat = m.cfg.TRP + m.cfg.TRCD + m.cfg.TCAS
		outcome = RowConflict
		m.stats.RowConflicts++
		m.obsRowConfl.Inc()
	}
	transfer := (bytes*1024 + m.rate1024 - 1) / m.rate1024
	if transfer == 0 {
		transfer = 1
	}
	dataStart := max(start+rowLat, busUntil[ch])
	done := dataStart + transfer

	bankUntil[gb] = done
	busUntil[ch] = done
	openRow[gb] = row
	chanBusy[ch] += transfer
	bankAccesses[gb]++
	m.stats.Accesses++
	m.stats.BytesMoved += bytes
	m.stats.BusyCycles += transfer
	if write {
		m.stats.Writes++
	} else {
		m.stats.Reads++
	}
	m.obsAccesses.Inc()
	m.obsBytes.Add(bytes)
	if obsChanBusy, obsBankAcc := m.obsChanBusy, m.obsBankAcc; obsChanBusy != nil {
		_ = obsChanBusy[ch]
		_ = obsBankAcc[gb]
		obsChanBusy[ch].Add(transfer)
		obsBankAcc[gb].Inc()
	}
	if m.log != nil {
		m.log = append(m.log, AccessRec{Addr: addr, Start: now, Done: done, Write: write, Outcome: outcome}) //proram:allow allocdiscipline timing log is opt-in debugging, off in measured runs
	}
	return done
}

// NextFree returns the earliest cycle at which every channel is idle.
func (m *Model) NextFree() uint64 {
	var free uint64
	for _, b := range m.busUntil {
		free = max(free, b)
	}
	return free
}

// Reset clears device timing state and statistics, keeping configuration
// and instrumentation. The timing log, if enabled, restarts empty.
func (m *Model) Reset() {
	for i := range m.busUntil {
		m.busUntil[i] = 0
		m.chanBusy[i] = 0
	}
	for i := range m.bankUntil {
		m.bankUntil[i] = 0
		m.openRow[i] = rowClosed
		m.bankAccesses[i] = 0
	}
	m.stats = Stats{}
	if m.log != nil {
		m.log = m.log[:0]
	}
}

// Instrument registers the device's observability metrics on rec:
// aggregate counters, per-channel busy-cycle counters, per-bank access
// counters, and sampled row-hit-rate / channel-utilization series.
// Emissions stay nil-safe no-ops when rec is nil.
func (m *Model) Instrument(rec *obs.Recorder) {
	if !rec.Enabled() {
		return
	}
	m.obsAccesses = rec.Counter("dram.banked.accesses")
	m.obsBytes = rec.Counter("dram.banked.bytes_moved")
	m.obsRowHits = rec.Counter("dram.banked.row_hits")
	m.obsRowMiss = rec.Counter("dram.banked.row_misses")
	m.obsRowConfl = rec.Counter("dram.banked.row_conflicts")
	m.obsChanBusy = make([]*obs.Counter, m.cfg.Channels)
	for i := range m.obsChanBusy {
		m.obsChanBusy[i] = rec.Counter(fmt.Sprintf("dram.banked.chan%d.busy_cycles", i))
	}
	m.obsBankAcc = make([]*obs.Counter, len(m.bankUntil))
	for i := range m.obsBankAcc {
		m.obsBankAcc[i] = rec.Counter(fmt.Sprintf("dram.banked.bank%02d.accesses", i))
	}
	hitRate := rec.Series("dram.banked.row_hit_rate")
	util := rec.Series("dram.banked.channel_utilization")
	var prev Stats
	var prevCycle uint64
	rec.OnSample(func(cycle uint64) {
		cur := m.stats
		d := cur.Sub(prev)
		hitRate.Record(cycle, d.RowHitRate())
		if cycle > prevCycle {
			window := float64(cycle-prevCycle) * float64(m.cfg.Channels)
			util.Record(cycle, float64(d.BusyCycles)/window)
		} else {
			util.Record(cycle, 0)
		}
		prev, prevCycle = cur, cycle
	})
}
