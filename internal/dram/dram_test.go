package dram

import (
	"testing"
	"testing/quick"

	"proram/internal/obs"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []Config{
		{LatencyCycles: 0, BandwidthGBps: 16, ClockGHz: 1, Banks: 8},
		{LatencyCycles: 100, BandwidthGBps: 0, ClockGHz: 1, Banks: 8},
		{LatencyCycles: 100, BandwidthGBps: 16, ClockGHz: 0, Banks: 8},
		{LatencyCycles: 100, BandwidthGBps: 16, ClockGHz: 1, Banks: 0},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid config %+v", i, c)
		}
	}
}

func TestBytesPerCycle(t *testing.T) {
	c := DefaultConfig()
	if got := c.BytesPerCycle(); got != 16 {
		t.Fatalf("BytesPerCycle = %v, want 16", got)
	}
	c.ClockGHz = 2
	if got := c.BytesPerCycle(); got != 8 {
		t.Fatalf("BytesPerCycle at 2GHz = %v, want 8", got)
	}
}

func TestSingleAccessLatency(t *testing.T) {
	m := New(DefaultConfig())
	done := m.Access(0, 0, 128)
	// Flat latency dominates a single line access.
	if done != 100 {
		t.Fatalf("single access completion = %d, want 100", done)
	}
}

func TestIndependentBanksOverlap(t *testing.T) {
	m := New(DefaultConfig())
	// Two accesses to different 4KB pages land in different banks and
	// should overlap almost completely.
	d1 := m.Access(0, 0, 128)
	d2 := m.Access(0, 4096, 128)
	if d2 >= d1+100 {
		t.Fatalf("bank parallelism missing: d1=%d d2=%d", d1, d2)
	}
}

func TestSameBankSerializes(t *testing.T) {
	m := New(DefaultConfig())
	d1 := m.Access(0, 0, 128)
	d2 := m.Access(0, 0, 128) // same page => same bank
	if d2 < d1+100 {
		t.Fatalf("same-bank accesses overlapped: d1=%d d2=%d", d1, d2)
	}
}

func TestChannelBandwidthBoundsThroughput(t *testing.T) {
	m := New(DefaultConfig())
	// Saturate with accesses spread across banks; steady-state throughput
	// must be limited by the 16 B/cycle channel: 128B per 8 cycles.
	var done uint64
	const n = 1000
	for i := 0; i < n; i++ {
		done = m.Access(0, uint64(i)*4096, 128)
	}
	minCycles := uint64(n * 128 / 16)
	if done < minCycles {
		t.Fatalf("throughput exceeds channel bandwidth: %d accesses done at %d < %d", n, done, minCycles)
	}
}

func TestBulkTransferTiming(t *testing.T) {
	m := New(DefaultConfig())
	// 19968 bytes at 16 B/cycle = 1248 cycles, plus 100 extra latency.
	done := m.BulkTransfer(0, 19968, 100)
	if done != 1348 {
		t.Fatalf("BulkTransfer completion = %d, want 1348", done)
	}
}

func TestBulkTransferSerializes(t *testing.T) {
	m := New(DefaultConfig())
	d1 := m.BulkTransfer(0, 1600, 0) // 100 cycles
	d2 := m.BulkTransfer(0, 1600, 0)
	if d2 != d1+100 {
		t.Fatalf("bulk transfers did not serialize: d1=%d d2=%d", d1, d2)
	}
	// A line access issued during a bulk transfer waits for it.
	m.Reset()
	m.BulkTransfer(0, 1600, 0)
	if done := m.Access(0, 0, 128); done < 100 {
		t.Fatalf("line access overlapped bulk transfer: done=%d", done)
	}
}

func TestStatsAccounting(t *testing.T) {
	m := New(DefaultConfig())
	m.Access(0, 0, 128)
	m.BulkTransfer(200, 1600, 0)
	s := m.Stats()
	if s.Accesses != 1 || s.BulkTransfers != 1 {
		t.Fatalf("stats counts wrong: %+v", s)
	}
	if s.BytesMoved != 128+1600 {
		t.Fatalf("BytesMoved = %d, want %d", s.BytesMoved, 128+1600)
	}
	m.Reset()
	if s := m.Stats(); s != (Stats{}) {
		t.Fatalf("Reset did not clear stats: %+v", s)
	}
}

func TestCompletionMonotoneInTime(t *testing.T) {
	cfg := DefaultConfig()
	check := func(now1, now2 uint32, addr uint64) bool {
		if now1 > now2 {
			now1, now2 = now2, now1
		}
		m1 := New(cfg)
		m2 := New(cfg)
		d1 := m1.Access(uint64(now1), addr, 128)
		d2 := m2.Access(uint64(now2), addr, 128)
		return d2 >= d1 && d1 >= uint64(now1)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTransferNeverZero(t *testing.T) {
	m := New(DefaultConfig())
	d := m.BulkTransfer(0, 1, 0)
	if d == 0 {
		t.Fatal("zero-cycle transfer for 1 byte")
	}
}

// TestTransferCyclesExactCeil pins the fixed-point transfer arithmetic:
// exact integer ceil division on the bytes-per-1024-cycles rate, matching
// hand-computed values for both divisible and fractional rates.
func TestTransferCyclesExactCeil(t *testing.T) {
	cfg := DefaultConfig() // 16 B/cycle -> rate 16384
	if got := cfg.RatePer1024(); got != 16*1024 {
		t.Fatalf("RatePer1024 = %d, want %d", got, 16*1024)
	}
	cases := []struct{ bytes, want uint64 }{
		{16, 1}, {17, 2}, {32, 2}, {15360, 960}, {15361, 961}, {0, 1},
	}
	for _, c := range cases {
		if got := cfg.TransferCycles(c.bytes); got != c.want {
			t.Errorf("TransferCycles(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
	// A fractional rate (12.8 B/cycle -> 13107.2 -> 13107): pure integer
	// ceil, no float in the per-access path.
	frac := cfg
	frac.BandwidthGBps = 12.8
	if got := frac.RatePer1024(); got != 13107 {
		t.Fatalf("fractional RatePer1024 = %d, want 13107", got)
	}
	if got := frac.TransferCycles(128); got != (128*1024+13106)/13107 {
		t.Errorf("fractional TransferCycles(128) = %d", got)
	}
}

// TestResetKeepsObsCoherent is the stats-vs-obs satellite: the registry
// counters keep counting across a mid-run Reset while stats restart, and
// CheckObs must hold before, after, and between.
func TestResetKeepsObsCoherent(t *testing.T) {
	rec := obs.New(obs.Options{})
	m := New(DefaultConfig())
	m.Instrument(rec.Counter("dram.accesses"),
		rec.Counter("dram.bulk_transfers"), rec.Counter("dram.bytes_moved"))

	m.Access(0, 0, 64)
	m.BulkTransfer(100, 4096, 10)
	if err := m.CheckObs(); err != nil {
		t.Fatalf("pre-Reset: %v", err)
	}
	m.Reset()
	if err := m.CheckObs(); err != nil {
		t.Fatalf("right after Reset: %v", err)
	}
	if got := rec.Counter("dram.accesses").Value(); got != 1 {
		t.Fatalf("registry counter reset with the model: %d", got)
	}
	m.Access(0, 4096, 64)
	m.Access(50, 8192, 64)
	if err := m.CheckObs(); err != nil {
		t.Fatalf("post-Reset traffic: %v", err)
	}
	if m.Stats().Accesses != 2 {
		t.Fatalf("stats not reset: %+v", m.Stats())
	}
	// A deliberate divergence must be caught: bump a counter behind the
	// model's back.
	rec.Counter("dram.bytes_moved").Add(1)
	if err := m.CheckObs(); err == nil {
		t.Fatal("CheckObs missed a stats-vs-obs divergence")
	}
}
