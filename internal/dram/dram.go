// Package dram models main-memory timing the way the paper's Graphite
// setup does: a flat access latency plus a pin-bandwidth constraint
// (16 GB/s at 1 GHz ⇒ 16 bytes/cycle by default), with bank-level
// parallelism available to the insecure DRAM baseline and a fully
// serialized bulk-transfer mode used by the ORAM controller.
//
// All times are in core clock cycles (uint64). The model is analytic: it
// computes completion times, it does not move data.
package dram

import (
	"fmt"

	"proram/internal/obs"
)

// Config describes a DRAM device and the channel connecting it to the chip.
type Config struct {
	// LatencyCycles is the flat access latency of one DRAM access
	// (row activation + column read + transfer of one line), 100 in the paper.
	LatencyCycles uint64
	// BandwidthGBps is the pin bandwidth of the memory channel, 16 in the paper.
	BandwidthGBps float64
	// ClockGHz is the core clock used to convert bandwidth into bytes/cycle.
	ClockGHz float64
	// Banks is the number of banks that can serve independent accesses in
	// parallel in the insecure baseline. The paper's Graphite DRAM model
	// exploits bank-level parallelism; 8 is a typical value.
	Banks int
}

// DefaultConfig returns the paper's Table 1 DRAM parameters.
func DefaultConfig() Config {
	return Config{
		LatencyCycles: 100,
		BandwidthGBps: 16,
		ClockGHz:      1,
		Banks:         8,
	}
}

// BytesPerCycle converts the configured bandwidth into channel bytes per
// core cycle.
func (c Config) BytesPerCycle() float64 {
	return c.BandwidthGBps / c.ClockGHz
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.LatencyCycles == 0 {
		return fmt.Errorf("dram: LatencyCycles must be positive")
	}
	if c.BandwidthGBps <= 0 {
		return fmt.Errorf("dram: BandwidthGBps must be positive, got %v", c.BandwidthGBps)
	}
	if c.ClockGHz <= 0 {
		return fmt.Errorf("dram: ClockGHz must be positive, got %v", c.ClockGHz)
	}
	if c.Banks <= 0 {
		return fmt.Errorf("dram: Banks must be positive, got %d", c.Banks)
	}
	return nil
}

// Stats aggregates what the device did over a run.
type Stats struct {
	Accesses      uint64 // individual line accesses
	BulkTransfers uint64 // serialized bulk transfers (ORAM paths)
	BytesMoved    uint64
	BusyCycles    uint64 // channel occupancy
}

// Model is a DRAM timing model. The zero value is not usable; construct
// with New.
type Model struct {
	cfg       Config
	bankUntil []uint64 // per-bank next-free time
	busUntil  uint64   // channel next-free time
	stats     Stats

	obsAccesses *obs.Counter // nil when obs off
	obsBulk     *obs.Counter
	obsBytes    *obs.Counter
}

// Instrument attaches observability counters. Nil handles (the default)
// keep every hook a single pointer check.
func (m *Model) Instrument(accesses, bulk, bytes *obs.Counter) {
	m.obsAccesses = accesses
	m.obsBulk = bulk
	m.obsBytes = bytes
}

// New builds a Model from cfg. It panics on an invalid configuration
// (configuration errors are programming errors in this simulator; the
// public API validates before reaching here).
func New(cfg Config) *Model {
	if err := cfg.Validate(); err != nil {
		//proram:invariant configuration errors are programming errors; public entry points run Config.Validate before construction
		panic(err)
	}
	return &Model{
		cfg:       cfg,
		bankUntil: make([]uint64, cfg.Banks),
	}
}

// Config returns the configuration the model was built with.
func (m *Model) Config() Config { return m.cfg }

// Stats returns a copy of the accumulated statistics.
func (m *Model) Stats() Stats { return m.stats }

// transferCycles is the channel occupancy of moving n bytes.
//
//proram:hotpath timing arithmetic for every DRAM enqueue
func (m *Model) transferCycles(bytes uint64) uint64 {
	bpc := m.cfg.BytesPerCycle()
	t := uint64(float64(bytes)/bpc + 0.999999)
	if t == 0 {
		t = 1
	}
	return t
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Access models one cache-line access issued at time now to the given
// address. Banks may overlap independent accesses, but the shared channel
// serializes data transfer. It returns the cycle at which the data is
// available.
//
//proram:hotpath one enqueue per baseline cache-line access
func (m *Model) Access(now, addr, bytes uint64) uint64 {
	bank := int((addr / 4096) % uint64(len(m.bankUntil))) // page-interleaved
	transfer := m.transferCycles(bytes)

	start := maxU64(now, m.bankUntil[bank])
	// The channel must be free for the transfer portion at the end of the
	// access; approximate by serializing transfers on the bus.
	busStart := maxU64(start+m.cfg.LatencyCycles-transfer, m.busUntil)
	done := busStart + transfer

	m.bankUntil[bank] = done
	m.busUntil = busStart + transfer
	m.stats.Accesses++
	m.stats.BytesMoved += bytes
	m.stats.BusyCycles += transfer
	m.obsAccesses.Inc()
	m.obsBytes.Add(bytes)
	return done
}

// BulkTransfer models a fully serialized transfer of bytes (an ORAM path
// read+write saturates the channel; nothing overlaps it). It returns the
// completion time. extraLatency is added once up front (e.g. the first
// DRAM access latency and crypto pipeline fill).
//
//proram:hotpath one enqueue per ORAM path transfer
func (m *Model) BulkTransfer(now, bytes, extraLatency uint64) uint64 {
	transfer := m.transferCycles(bytes)
	start := maxU64(now, m.busUntil)
	// A bulk transfer owns every bank and the channel until done.
	done := start + extraLatency + transfer
	for i := range m.bankUntil {
		m.bankUntil[i] = done
	}
	m.busUntil = done
	m.stats.BulkTransfers++
	m.stats.BytesMoved += bytes
	m.stats.BusyCycles += done - start
	m.obsBulk.Inc()
	m.obsBytes.Add(bytes)
	return done
}

// NextFree returns the earliest cycle at which the channel is idle.
func (m *Model) NextFree() uint64 { return m.busUntil }

// Reset clears device state and statistics, keeping the configuration.
func (m *Model) Reset() {
	for i := range m.bankUntil {
		m.bankUntil[i] = 0
	}
	m.busUntil = 0
	m.stats = Stats{}
}

// Sub returns the delta of s over an earlier snapshot (all fields are
// monotone counters).
func (s Stats) Sub(base Stats) Stats {
	return Stats{
		Accesses:      s.Accesses - base.Accesses,
		BulkTransfers: s.BulkTransfers - base.BulkTransfers,
		BytesMoved:    s.BytesMoved - base.BytesMoved,
		BusyCycles:    s.BusyCycles - base.BusyCycles,
	}
}
