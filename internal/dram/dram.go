// Package dram models main-memory timing the way the paper's Graphite
// setup does: a flat access latency plus a pin-bandwidth constraint
// (16 GB/s at 1 GHz ⇒ 16 bytes/cycle by default), with bank-level
// parallelism available to the insecure DRAM baseline and a fully
// serialized bulk-transfer mode used by the ORAM controller.
//
// All times are in core clock cycles (uint64). The model is analytic: it
// computes completion times, it does not move data.
package dram

import (
	"fmt"

	"proram/internal/obs"
)

// Config describes a DRAM device and the channel connecting it to the chip.
type Config struct {
	// LatencyCycles is the flat access latency of one DRAM access
	// (row activation + column read + transfer of one line), 100 in the paper.
	LatencyCycles uint64
	// BandwidthGBps is the pin bandwidth of the memory channel, 16 in the paper.
	BandwidthGBps float64
	// ClockGHz is the core clock used to convert bandwidth into bytes/cycle.
	ClockGHz float64
	// Banks is the number of banks that can serve independent accesses in
	// parallel in the insecure baseline. The paper's Graphite DRAM model
	// exploits bank-level parallelism; 8 is a typical value.
	Banks int
}

// DefaultConfig returns the paper's Table 1 DRAM parameters.
func DefaultConfig() Config {
	return Config{
		LatencyCycles: 100,
		BandwidthGBps: 16,
		ClockGHz:      1,
		Banks:         8,
	}
}

// BytesPerCycle converts the configured bandwidth into channel bytes per
// core cycle.
func (c Config) BytesPerCycle() float64 {
	return c.BandwidthGBps / c.ClockGHz
}

// RatePer1024 returns the channel rate as bytes moved per 1024 cycles, the
// fixed-point form all transfer timing is computed in. The float conversion
// happens exactly once, at configuration time; every per-access division is
// pure integer arithmetic, so timing can never drift across platforms.
func (c Config) RatePer1024() uint64 {
	return uint64(c.BytesPerCycle()*1024 + 0.5)
}

// TransferCycles returns the exact channel occupancy of moving bytes:
// ceil(bytes·1024 / rate), never zero.
func (c Config) TransferCycles(bytes uint64) uint64 {
	return transferCycles(bytes, c.RatePer1024())
}

// transferCycles is the shared exact ceil division on the fixed-point rate.
//
//proram:hotpath timing arithmetic for every DRAM enqueue
func transferCycles(bytes, rate1024 uint64) uint64 {
	t := (bytes*1024 + rate1024 - 1) / rate1024
	if t == 0 {
		t = 1
	}
	return t
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.LatencyCycles == 0 {
		return fmt.Errorf("dram: LatencyCycles must be positive")
	}
	if c.BandwidthGBps <= 0 {
		return fmt.Errorf("dram: BandwidthGBps must be positive, got %v", c.BandwidthGBps)
	}
	if c.ClockGHz <= 0 {
		return fmt.Errorf("dram: ClockGHz must be positive, got %v", c.ClockGHz)
	}
	if c.Banks <= 0 {
		return fmt.Errorf("dram: Banks must be positive, got %d", c.Banks)
	}
	if c.RatePer1024() == 0 {
		return fmt.Errorf("dram: bandwidth %v GB/s at %v GHz rounds to zero bytes per 1024 cycles", c.BandwidthGBps, c.ClockGHz)
	}
	return nil
}

// PathTiming breaks one ORAM path access into its phase completion times.
// The flat model collapses all four into a single serialized window; a
// banked device overlaps them across channels.
type PathTiming struct {
	// Start is the cycle the first bucket command was issued.
	Start uint64
	// ReadDone is when the last path bucket came off the channels.
	ReadDone uint64
	// DataReady is ReadDone plus the crypto pipeline drain: the requested
	// block is usable and a dependent access may issue.
	DataReady uint64
	// Done is when the write-back phase fully drained off the device.
	Done uint64
}

// Device is a path-granular memory timing backend: the ORAM controller
// hands it whole path accesses (identified by tree leaf) and consumes the
// phase schedule it returns. internal/dram/banked implements it; the flat
// analytic model in this package predates the interface and stays the
// default when no Device is configured.
type Device interface {
	// Path schedules the full read+write-back of the path to leaf, with the
	// first command issuing no earlier than now.
	Path(now uint64, leaf uint64) PathTiming
	// Reset clears device timing state and statistics.
	Reset()
}

// Stats aggregates what the device did over a run.
type Stats struct {
	Accesses      uint64 // individual line accesses
	BulkTransfers uint64 // serialized bulk transfers (ORAM paths)
	BytesMoved    uint64
	BusyCycles    uint64 // channel occupancy
}

// Model is a DRAM timing model. The zero value is not usable; construct
// with New.
type Model struct {
	cfg       Config
	rate1024  uint64   // bytes per 1024 cycles, fixed-point channel rate
	bankUntil []uint64 // per-bank next-free time
	busUntil  uint64   // channel next-free time
	stats     Stats

	obsAccesses *obs.Counter // nil when obs off
	obsBulk     *obs.Counter
	obsBytes    *obs.Counter

	// Obs-counter values captured at the last Instrument/Reset: the registry
	// counters are cumulative across Resets, so stats-vs-obs identities hold
	// on the deltas over these baselines (see CheckObs).
	baseAccesses uint64
	baseBulk     uint64
	baseBytes    uint64
}

// Instrument attaches observability counters. Nil handles (the default)
// keep every hook a single pointer check.
func (m *Model) Instrument(accesses, bulk, bytes *obs.Counter) {
	m.obsAccesses = accesses
	m.obsBulk = bulk
	m.obsBytes = bytes
	m.captureObsBase()
}

// captureObsBase snapshots the obs counters so future CheckObs calls
// compare like with like.
func (m *Model) captureObsBase() {
	m.baseAccesses = m.obsAccesses.Value()
	m.baseBulk = m.obsBulk.Value()
	m.baseBytes = m.obsBytes.Value()
}

// CheckObs cross-checks the Stats.Validate-style identities between the
// model's stats and the attached obs counters: every stat field with a
// counter must equal that counter's growth since the last Instrument or
// Reset. A mismatch means an emission site and its stats update diverged.
// With no counters attached it trivially passes.
func (m *Model) CheckObs() error {
	if m.obsAccesses == nil && m.obsBulk == nil && m.obsBytes == nil {
		return nil
	}
	if got := m.obsAccesses.Value() - m.baseAccesses; m.obsAccesses != nil && got != m.stats.Accesses {
		return fmt.Errorf("dram: obs accesses counter moved %d, stats say %d", got, m.stats.Accesses)
	}
	if got := m.obsBulk.Value() - m.baseBulk; m.obsBulk != nil && got != m.stats.BulkTransfers {
		return fmt.Errorf("dram: obs bulk-transfer counter moved %d, stats say %d", got, m.stats.BulkTransfers)
	}
	if got := m.obsBytes.Value() - m.baseBytes; m.obsBytes != nil && got != m.stats.BytesMoved {
		return fmt.Errorf("dram: obs bytes counter moved %d, stats say %d", got, m.stats.BytesMoved)
	}
	return nil
}

// New builds a Model from cfg. It panics on an invalid configuration
// (configuration errors are programming errors in this simulator; the
// public API validates before reaching here).
func New(cfg Config) *Model {
	if err := cfg.Validate(); err != nil {
		//proram:invariant configuration errors are programming errors; public entry points run Config.Validate before construction
		panic(err)
	}
	return &Model{
		cfg:       cfg,
		rate1024:  cfg.RatePer1024(),
		bankUntil: make([]uint64, cfg.Banks),
	}
}

// Config returns the configuration the model was built with.
func (m *Model) Config() Config { return m.cfg }

// Stats returns a copy of the accumulated statistics.
func (m *Model) Stats() Stats { return m.stats }

// transferCycles is the channel occupancy of moving n bytes.
//
//proram:hotpath timing arithmetic for every DRAM enqueue
func (m *Model) transferCycles(bytes uint64) uint64 {
	return transferCycles(bytes, m.rate1024)
}

// Access models one cache-line access issued at time now to the given
// address. Banks may overlap independent accesses, but the shared channel
// serializes data transfer. It returns the cycle at which the data is
// available.
//
//proram:hotpath one enqueue per baseline cache-line access
func (m *Model) Access(now, addr, bytes uint64) uint64 {
	bankUntil := m.bankUntil
	bank := int((addr / 4096) % uint64(len(bankUntil))) // page-interleaved
	_ = bankUntil[bank]
	transfer := m.transferCycles(bytes)

	start := max(now, bankUntil[bank])
	// The channel must be free for the transfer portion at the end of the
	// access; approximate by serializing transfers on the bus.
	busStart := max(start+m.cfg.LatencyCycles-transfer, m.busUntil)
	done := busStart + transfer

	bankUntil[bank] = done
	m.busUntil = busStart + transfer
	m.stats.Accesses++
	m.stats.BytesMoved += bytes
	m.stats.BusyCycles += transfer
	m.obsAccesses.Inc()
	m.obsBytes.Add(bytes)
	return done
}

// BulkTransfer models a fully serialized transfer of bytes (an ORAM path
// read+write saturates the channel; nothing overlaps it). It returns the
// completion time. extraLatency is added once up front (e.g. the first
// DRAM access latency and crypto pipeline fill).
//
//proram:hotpath one enqueue per ORAM path transfer
func (m *Model) BulkTransfer(now, bytes, extraLatency uint64) uint64 {
	transfer := m.transferCycles(bytes)
	start := max(now, m.busUntil)
	// A bulk transfer owns every bank and the channel until done.
	done := start + extraLatency + transfer
	bankUntil := m.bankUntil
	for i := range bankUntil {
		bankUntil[i] = done
	}
	m.busUntil = done
	m.stats.BulkTransfers++
	m.stats.BytesMoved += bytes
	m.stats.BusyCycles += done - start
	m.obsBulk.Inc()
	m.obsBytes.Add(bytes)
	return done
}

// NextFree returns the earliest cycle at which the channel is idle.
func (m *Model) NextFree() uint64 { return m.busUntil }

// Reset clears device state and statistics, keeping the configuration. The
// attached obs counters are registry-owned and keep counting across Resets;
// Reset re-baselines them so the CheckObs identities hold mid-run.
func (m *Model) Reset() {
	for i := range m.bankUntil {
		m.bankUntil[i] = 0
	}
	m.busUntil = 0
	m.stats = Stats{}
	m.captureObsBase()
}

// Sub returns the delta of s over an earlier snapshot (all fields are
// monotone counters).
func (s Stats) Sub(base Stats) Stats {
	return Stats{
		Accesses:      s.Accesses - base.Accesses,
		BulkTransfers: s.BulkTransfers - base.BulkTransfers,
		BytesMoved:    s.BytesMoved - base.BytesMoved,
		BusyCycles:    s.BusyCycles - base.BusyCycles,
	}
}
