// Package seal provides the probabilistic block encryption Path ORAM
// requires (§2.1): every block written to the untrusted tree is encrypted
// under a fresh nonce, so the adversary cannot tell real blocks from
// dummies or detect whether a block changed.
//
// The construction is AES-128/256-CTR with a random 16-byte nonce prefixed
// to the ciphertext, built entirely from the standard library. Integrity
// (authenticated encryption / Merkle trees) is out of scope here, as it is
// in the paper.
package seal

import (
	"crypto/aes"
	"crypto/cipher"
	"errors"
	"fmt"
	"io"
)

// NonceSize is the number of bytes prepended to every sealed block.
const NonceSize = aes.BlockSize

// Sealer encrypts and decrypts blocks. It is safe for concurrent use if
// the nonce source is.
type Sealer struct {
	block cipher.Block
	nonce io.Reader
}

// New builds a Sealer from a 16-, 24- or 32-byte AES key and a nonce
// source (crypto/rand.Reader in production; any deterministic reader in
// tests).
func New(key []byte, nonceSource io.Reader) (*Sealer, error) {
	if nonceSource == nil {
		return nil, errors.New("seal: nil nonce source")
	}
	b, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("seal: %w", err)
	}
	return &Sealer{block: b, nonce: nonceSource}, nil
}

// SealedSize returns the on-disk size of a sealed plaintext of n bytes.
func SealedSize(n int) int { return NonceSize + n }

// Seal encrypts plaintext under a fresh nonce and returns nonce||ct,
// appended to dst.
func (s *Sealer) Seal(dst, plaintext []byte) ([]byte, error) {
	var nonce [NonceSize]byte
	if _, err := io.ReadFull(s.nonce, nonce[:]); err != nil {
		return nil, fmt.Errorf("seal: reading nonce: %w", err)
	}
	off := len(dst)
	dst = append(dst, nonce[:]...)
	dst = append(dst, plaintext...)
	stream := cipher.NewCTR(s.block, nonce[:])
	stream.XORKeyStream(dst[off+NonceSize:], dst[off+NonceSize:])
	return dst, nil
}

// Open decrypts a sealed block produced by Seal, appending the plaintext
// to dst.
func (s *Sealer) Open(dst, sealed []byte) ([]byte, error) {
	if len(sealed) < NonceSize {
		return nil, fmt.Errorf("seal: sealed block too short (%d bytes)", len(sealed))
	}
	off := len(dst)
	dst = append(dst, sealed[NonceSize:]...)
	stream := cipher.NewCTR(s.block, sealed[:NonceSize])
	stream.XORKeyStream(dst[off:], dst[off:])
	return dst, nil
}
