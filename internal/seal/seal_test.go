package seal

import (
	"bytes"
	"crypto/rand"
	"testing"
	"testing/quick"
)

var testKey = []byte("0123456789abcdef")

func TestRoundTrip(t *testing.T) {
	s, err := New(testKey, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("the quick brown fox jumps over the lazy dog")
	sealed, err := s.Seal(nil, msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) != SealedSize(len(msg)) {
		t.Fatalf("sealed size %d, want %d", len(sealed), SealedSize(len(msg)))
	}
	opened, err := s.Open(nil, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(opened, msg) {
		t.Fatalf("round trip lost data: %q", opened)
	}
}

func TestProbabilistic(t *testing.T) {
	// Sealing the same plaintext twice must yield different ciphertexts —
	// the property Path ORAM needs so rewritten paths are unlinkable.
	s, err := New(testKey, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 128)
	a, _ := s.Seal(nil, msg)
	b, _ := s.Seal(nil, msg)
	if bytes.Equal(a, b) {
		t.Fatal("two seals of the same block are identical")
	}
}

func TestCiphertextHidesPlaintext(t *testing.T) {
	s, err := New(testKey, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte{0xAA}, 128)
	sealed, _ := s.Seal(nil, msg)
	if bytes.Contains(sealed, msg[:16]) {
		t.Fatal("plaintext visible in ciphertext")
	}
}

func TestRoundTripProperty(t *testing.T) {
	s, err := New(testKey, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	f := func(msg []byte) bool {
		sealed, err := s.Seal(nil, msg)
		if err != nil {
			return false
		}
		opened, err := s.Open(nil, sealed)
		if err != nil {
			return false
		}
		return bytes.Equal(opened, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := New([]byte("short"), rand.Reader); err == nil {
		t.Fatal("bad key accepted")
	}
	if _, err := New(testKey, nil); err == nil {
		t.Fatal("nil nonce source accepted")
	}
	s, _ := New(testKey, rand.Reader)
	if _, err := s.Open(nil, []byte{1, 2, 3}); err == nil {
		t.Fatal("truncated block opened")
	}
}

func TestAppendSemantics(t *testing.T) {
	s, _ := New(testKey, rand.Reader)
	prefix := []byte("prefix")
	sealed, _ := s.Seal(append([]byte(nil), prefix...), []byte("data"))
	if !bytes.HasPrefix(sealed, prefix) {
		t.Fatal("Seal clobbered dst prefix")
	}
	opened, err := s.Open(append([]byte(nil), prefix...), sealed[len(prefix):])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(opened, append(prefix, []byte("data")...)) {
		t.Fatalf("Open append semantics broken: %q", opened)
	}
}

func TestEmptyPlaintext(t *testing.T) {
	s, _ := New(testKey, rand.Reader)
	sealed, err := s.Seal(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	opened, err := s.Open(nil, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if len(opened) != 0 {
		t.Fatalf("empty round trip produced %d bytes", len(opened))
	}
}
