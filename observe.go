package proram

import (
	"io"

	"proram/internal/obs"
)

// ObsConfig enables the observability layer of a Simulator: a metrics
// registry with byte-deterministic JSON export, cycle-driven time series
// (stash occupancy, PLB hit rate, prefetch miss rate, super-block sizes,
// channel utilization), a Chrome trace-event stream loadable by
// chrome://tracing and Perfetto, and a flight-recorder ring dumped when
// the simulation hits a pathological state.
//
// All timestamps are simulated cycles; two runs with the same seed and
// configuration produce byte-identical trace and metrics output.
type ObsConfig struct {
	// TraceOut receives the Chrome trace-event JSON stream; nil disables
	// tracing (metrics and the flight ring still record).
	TraceOut io.Writer
	// MetricsOut receives the metrics JSON dump when CloseObs is called;
	// nil discards the metrics.
	MetricsOut io.Writer
	// FlightOut receives flight-recorder dumps (stash saturation,
	// invariant failures); nil discards them.
	FlightOut io.Writer
	// SampleEvery is the simulated-cycle interval between time-series
	// samples; 0 disables the sampler.
	SampleEvery uint64
	// FlightSize is the flight-recorder capacity in events (0 = 256).
	FlightSize int
}

// recorder builds the internal recorder for a configured simulator.
func (c *ObsConfig) recorder() *obs.Recorder {
	if c == nil {
		return nil
	}
	return obs.New(obs.Options{
		SampleEvery: c.SampleEvery,
		FlightSize:  c.FlightSize,
		TraceOut:    c.TraceOut,
		FlightOut:   c.FlightOut,
	})
}

// CloseObs finalizes the simulator's observability outputs: the metrics
// dump is written to MetricsOut and the trace-event array is terminated so
// the trace file is well-formed JSON. Call it once, after the last Run.
// It is a no-op on a simulator built without ObsConfig.
func (s *Simulator) CloseObs() error {
	if s.rec == nil {
		return nil
	}
	if s.metricsOut != nil {
		if err := s.rec.WriteMetrics(s.metricsOut); err != nil {
			return err
		}
	}
	return s.rec.CloseTrace()
}
