// Package proram is a from-scratch reproduction of "PrORAM: Dynamic
// Prefetcher for Oblivious RAM" (Yu, Haider, Ren, Fletcher, Kwon,
// van Dijk, Devadas — ISCA 2015).
//
// It provides three things:
//
//   - RAM: a usable oblivious RAM — a Path ORAM store with the PrORAM
//     dynamic super block prefetcher, holding real (encrypted) data. See
//     New and Config.
//
//   - Simulator: the paper's secure-processor memory-system simulator
//     (in-order core, L1/LLC, DRAM or Path ORAM with super block
//     schemes), driven by workload generators. See NewSimulator,
//     SimConfig and the workload constructors (Synthetic, Splash2,
//     SPEC06, YCSB, TPCC).
//
//   - Experiments: every table and figure of the paper's evaluation,
//     regenerable via Experiment and ExperimentIDs (also exposed by
//     cmd/proram-bench and bench_test.go).
//
// The implementation is pure Go, standard library only. DESIGN.md
// documents the architecture and the substitutions made for the paper's
// proprietary substrates; EXPERIMENTS.md records reproduced-vs-paper
// results for every figure.
package proram
