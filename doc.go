// Package proram is a from-scratch reproduction of "PrORAM: Dynamic
// Prefetcher for Oblivious RAM" (Yu, Haider, Ren, Fletcher, Kwon,
// van Dijk, Devadas — ISCA 2015).
//
// It provides three things:
//
//   - RAM: a usable oblivious RAM — a Path ORAM store with the PrORAM
//     dynamic super block prefetcher, holding real (encrypted) data. See
//     New and Config.
//
//   - Simulator: the paper's secure-processor memory-system simulator
//     (in-order core, L1/LLC, DRAM or Path ORAM with super block
//     schemes), driven by workload generators. See NewSimulator,
//     SimConfig and the workload constructors (Synthetic, Splash2,
//     SPEC06, YCSB, TPCC).
//
//   - Experiments: every table and figure of the paper's evaluation,
//     regenerable via Experiment and ExperimentIDs (also exposed by
//     cmd/proram-bench and bench_test.go).
//
// The implementation is pure Go, standard library only. DESIGN.md
// documents the architecture and the substitutions made for the paper's
// proprietary substrates; EXPERIMENTS.md records reproduced-vs-paper
// results for every figure.
//
// # Static analysis directives
//
// The repository carries its own static-analysis suite (go run
// ./cmd/proram-vet ./..., package proram/internal/analysis) that enforces
// the three conventions the reproduction depends on: bit-for-bit
// determinism from an explicit seed, obliviousness of the ORAM access
// path, and an allocation-free access-path steady state. The oblivious
// and seedplumbing passes are interprocedural: a module-local call graph
// is condensed into strongly connected components and per-function taint
// summaries are computed bottom-up, so a secret that crosses a return
// value, an out-parameter or a helper chain (including recursion) is
// still caught at the caller, and a secret-derived slice/array/map index
// or slice bound is flagged even in straight-line code. Findings are
// suppressed or annotated in the source itself with machine-readable
// //proram: comments:
//
//	//proram:allow <check>[,<check>...] <reason>
//
// suppresses the named checks (determinism, maporder, oblivious,
// panicdiscipline, seedplumbing, allocdiscipline, goroutinediscipline,
// lockorder, concdeterminism, fixedtrip, branchless, boundscheck,
// allowhygiene) on the same line or the line directly below; written
// before the package clause it covers the whole file. The reason is
// mandatory in spirit and audited in review.
//
//	//proram:hotpath <reason>
//
// in a function's doc comment (or directly above a bare declaration)
// marks it as part of the per-access critical path. The allocdiscipline
// pass then reports every allocation inside it — make, new, append,
// escaping composite literals and closures, slice/map literals, string
// concatenation, string/byte conversions, fmt calls, go statements — and
// follows module-local calls through the same call-graph summaries, so a
// helper that allocates is reported at the hot call site with the chain
// that reaches the allocation. Allocations on paths whose every exit
// panics are exempt (failure handling, not steady state), as are callees
// that are themselves marked hot (checked in their own right) and helper
// allocations justified with //proram:allow allocdiscipline (exempt for
// every hot caller at once). The boundscheck pass shares the mark: every
// slice or array indexing in a hot function must be provable in-bounds
// by the SSA value-range layer — by interval, by a dominating
// comparison, or by the _ = s[max] pin idiom — so the compiler's
// bounds-check elimination has the same facts the prover verified.
//
//	//proram:fixedtrip <reason>
//
// on the line directly above a for or range statement claims the loop's
// trip count is fixed before the loop starts and independent of secret
// data — the padding loops the obliviousness contract rests on. The
// fixedtrip pass verifies the claim statically: a counted loop must
// compare its counter against a loop-invariant non-secret bound with a
// single step per iteration and no early exit, and a range loop must
// iterate a non-secret slice, array, string or integer (maps and
// iterators are rejected). Unmarked loops in the oblivious scope are
// still screened for secret-steered bounds and containers.
//
//	//proram:branchless <reason>
//
// in a function's doc comment requires the function — and everything it
// calls — to be free of data-dependent control flow: no if/switch/select
// on values derived from the function's inputs or secret payload bytes,
// no short-circuit &&/||, no map probes, no variable shifts, no min/max
// builtins that may compile to a branch. math/bits and crypto/subtle
// are trusted primitives; a marked
// callee is checked in its own right; //proram:public declassifies.
//
//	//proram:invariant <justification>
//
// attached to a panic call (same line or the line above) declares the
// panic an internal invariant — unreachable unless the program itself is
// buggy — and must say why in one line.
//
//	//proram:public <reason>
//
// attached to an assignment or condition declassifies a value the
// oblivious taint pass would otherwise treat as secret; use only for
// values that are public by protocol.
//
//	//proram:secret
//
// on a struct field marks it as a taint source (the canonical one is
// mem.Block.Data, the decrypted payload). Taint survives module-local
// calls: up to 62 parameters are tracked per function with per-parameter
// origin bits, anything beyond that degrades soundly to an opaque origin
// that never crosses a call boundary. Beyond branches and indexes, the
// oblivious pass treats scheduling choices as sinks: a secret reaching
// the target of a channel send or receive, the callee expression of a go
// statement, or the receiver of a mutex Lock/RLock is flagged, because
// which partition, lock or goroutine a worker touches is as observable
// as which address it reads.
//
//	//proram:detround <reason>
//
// attached to a statement the concdeterminism pass flags (a multi-case
// select, a fan-in receive, a spawn-order collection loop) declares that
// the sharded frontend's round barrier makes the outcome deterministic
// anyway. The pass verifies the claim structurally: the annotated code
// must be reachable on the module call graph from a round driver
// (shard.Frontend.dispatch or shard.Replay), the reason is mandatory,
// and a detround that suppresses nothing is itself a finding.
//
// The allowhygiene pass keeps the vocabulary honest: unknown directives,
// unknown check names, justification-free invariants and stale allows
// that suppress nothing are themselves findings.
package proram
