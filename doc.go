// Package proram is a from-scratch reproduction of "PrORAM: Dynamic
// Prefetcher for Oblivious RAM" (Yu, Haider, Ren, Fletcher, Kwon,
// van Dijk, Devadas — ISCA 2015).
//
// It provides three things:
//
//   - RAM: a usable oblivious RAM — a Path ORAM store with the PrORAM
//     dynamic super block prefetcher, holding real (encrypted) data. See
//     New and Config.
//
//   - Simulator: the paper's secure-processor memory-system simulator
//     (in-order core, L1/LLC, DRAM or Path ORAM with super block
//     schemes), driven by workload generators. See NewSimulator,
//     SimConfig and the workload constructors (Synthetic, Splash2,
//     SPEC06, YCSB, TPCC).
//
//   - Experiments: every table and figure of the paper's evaluation,
//     regenerable via Experiment and ExperimentIDs (also exposed by
//     cmd/proram-bench and bench_test.go).
//
// The implementation is pure Go, standard library only. DESIGN.md
// documents the architecture and the substitutions made for the paper's
// proprietary substrates; EXPERIMENTS.md records reproduced-vs-paper
// results for every figure.
//
// # Static analysis directives
//
// The repository carries its own static-analysis suite (go run
// ./cmd/proram-vet ./..., package proram/internal/analysis) that enforces
// the two conventions the reproduction depends on: bit-for-bit
// determinism from an explicit seed, and obliviousness of the ORAM access
// path. Findings are suppressed or annotated in the source itself with
// machine-readable //proram: comments:
//
//	//proram:allow <check>[,<check>...] <reason>
//
// suppresses the named checks (determinism, maporder, oblivious,
// panicdiscipline, seedplumbing, allowhygiene) on the same line or the
// line directly below; written before the package clause it covers the
// whole file. The reason is mandatory in spirit and audited in review.
//
//	//proram:invariant <justification>
//
// attached to a panic call (same line or the line above) declares the
// panic an internal invariant — unreachable unless the program itself is
// buggy — and must say why in one line.
//
//	//proram:public <reason>
//
// attached to an assignment or condition declassifies a value the
// oblivious taint pass would otherwise treat as secret; use only for
// values that are public by protocol.
//
//	//proram:secret
//
// on a struct field marks it as a taint source (the canonical one is
// mem.Block.Data, the decrypted payload).
//
// The allowhygiene pass keeps the vocabulary honest: unknown directives,
// unknown check names, justification-free invariants and stale allows
// that suppress nothing are themselves findings.
package proram
