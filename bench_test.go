package proram

import (
	"testing"

	"proram/internal/exp"
)

// Each benchmark regenerates one of the paper's tables/figures at a
// reduced scale (benchScale) and reports the wall time of a full harness
// pass. Run `go run ./cmd/proram-bench -scale 1` for the full-size
// figures; EXPERIMENTS.md records a full-scale run.
const benchScale = 0.1

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tb, err := exp.Run(id, exp.Options{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkTable1Config(b *testing.B)            { benchExperiment(b, "table1") }
func BenchmarkFig5TraditionalPrefetch(b *testing.B) { benchExperiment(b, "fig5") }
func BenchmarkFig6aLocalitySweep(b *testing.B)      { benchExperiment(b, "fig6a") }
func BenchmarkFig6bPhaseChange(b *testing.B)        { benchExperiment(b, "fig6b") }
func BenchmarkFig7SuperBlockSize(b *testing.B)      { benchExperiment(b, "fig7") }
func BenchmarkFig8aSplash2(b *testing.B)            { benchExperiment(b, "fig8a") }
func BenchmarkFig8bSPEC06(b *testing.B)             { benchExperiment(b, "fig8b") }
func BenchmarkFig8cDBMS(b *testing.B)               { benchExperiment(b, "fig8c") }
func BenchmarkFig9aMissRateSplash2(b *testing.B)    { benchExperiment(b, "fig9a") }
func BenchmarkFig9bMissRateSPEC06(b *testing.B)     { benchExperiment(b, "fig9b") }
func BenchmarkFig10Coefficients(b *testing.B)       { benchExperiment(b, "fig10") }
func BenchmarkFig11Bandwidth(b *testing.B)          { benchExperiment(b, "fig11") }
func BenchmarkFig12StashSize(b *testing.B)          { benchExperiment(b, "fig12") }
func BenchmarkFig13ZValue(b *testing.B)             { benchExperiment(b, "fig13") }
func BenchmarkFig14CachelineSize(b *testing.B)      { benchExperiment(b, "fig14") }
func BenchmarkFig15Periodic(b *testing.B)           { benchExperiment(b, "fig15a") }

// BenchmarkRAMRead measures the library-mode oblivious RAM: sequential
// reads with the dynamic prefetcher (ns/op includes the full path access
// bookkeeping).
func BenchmarkRAMRead(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Blocks = 1 << 14
	r, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Read(uint64(i) % r.Blocks()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRAMWrite measures oblivious writes.
func BenchmarkRAMWrite(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Blocks = 1 << 14
	r, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, cfg.BlockBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Write(uint64(i)%r.Blocks(), payload); err != nil {
			b.Fatal(err)
		}
	}
}
