package proram

import (
	"fmt"
	"io"

	"proram/internal/obs"
	"proram/internal/obs/audit"
	"proram/internal/oram"
	"proram/internal/prefetch"
	"proram/internal/sim"
	"proram/internal/trace"
)

// Memory selects the simulated main-memory technology.
type Memory int

const (
	// MemoryORAM is the Path ORAM system (default).
	MemoryORAM Memory = iota
	// MemoryDRAM is the insecure baseline.
	MemoryDRAM
)

// SimConfig describes a simulated secure-processor memory system. Zero
// values mean the paper's Table 1 defaults.
type SimConfig struct {
	// Memory picks DRAM or ORAM.
	Memory Memory
	// Scheme selects the ORAM prefetcher (ignored for DRAM).
	Scheme Scheme
	// MaxSuperBlock bounds super block size (default 2).
	MaxSuperBlock int
	// StreamPrefetcher enables the traditional stream prefetcher of §5.2
	// (mutually exclusive with a super block Scheme).
	StreamPrefetcher bool
	// CacheLineBytes is the cacheline/ORAM-block size (default 128).
	CacheLineBytes int
	// ORAMBlocks is the ORAM capacity in blocks (default ~1.5M = 192 MB).
	ORAMBlocks uint64
	// Z and StashBlocks override Table 1's 3 and 100.
	Z           int
	StashBlocks int
	// BandwidthGBps overrides the 16 GB/s memory channel.
	BandwidthGBps float64
	// DRAM selects the device timing model behind the ORAM controller
	// (ignored for MemoryDRAM). Nil keeps the legacy flat channel.
	DRAM *DRAMConfig
	// Periodic enables timing-channel-protected (periodic) accesses with
	// the public interval Oint (cycles).
	Periodic bool
	Oint     uint64
	// WarmupOps runs a measured-region experiment: the first WarmupOps
	// operations execute unmeasured.
	WarmupOps uint64
	// Seed drives the ORAM randomness (zero means 1).
	Seed uint64
	// Obs enables the observability layer (metrics, time series, tracing,
	// flight recorder); nil runs un-instrumented. See ObsConfig.
	Obs *ObsConfig
	// Audit arms the obliviousness auditor over the recorded physical
	// trace of every Run (forces trace recording). Requires MemoryORAM;
	// the timing test arms only with Periodic (without it, completion
	// times are legitimately data-dependent). LeakDropDummies is a sharded
	// scheduler control and is rejected here. See AuditConfig.
	Audit *AuditConfig
}

// Simulator runs workloads on a configured memory system. Each Run builds
// a fresh system (cold caches, freshly initialized ORAM); runs share one
// observability recorder and appear in its trace as successive processes.
type Simulator struct {
	cfg        sim.Config
	rec        *obs.Recorder
	metricsOut io.Writer
	audit      *AuditConfig
	periodic   bool
}

// NewSimulator validates the configuration and returns a Simulator.
func NewSimulator(c SimConfig) (*Simulator, error) {
	tech := sim.TechORAM
	if c.Memory == MemoryDRAM {
		tech = sim.TechDRAM
	}
	cfg := sim.DefaultConfig(tech)
	if c.CacheLineBytes != 0 {
		cfg.BlockBytes = c.CacheLineBytes
		cfg.Hier.L1.LineBytes = c.CacheLineBytes
		cfg.Hier.L2.LineBytes = c.CacheLineBytes
	}
	if c.ORAMBlocks != 0 {
		cfg.ORAM.NumBlocks = c.ORAMBlocks
	}
	if c.Z != 0 {
		cfg.ORAM.Z = c.Z
	}
	if c.StashBlocks != 0 {
		cfg.ORAM.StashLimit = c.StashBlocks
	}
	if c.BandwidthGBps != 0 {
		cfg.DRAM.BandwidthGBps = c.BandwidthGBps
	}
	if c.Seed != 0 {
		cfg.ORAM.Seed = c.Seed
	}
	if err := c.DRAM.validate(); err != nil {
		return nil, err
	}
	cfg.ORAM.Banked = c.DRAM.bankedConfig()
	maxSB := c.MaxSuperBlock
	if maxSB == 0 {
		maxSB = 2
	}
	cfg.ORAM.Super = superblockConfig(c.Scheme, maxSB)
	if c.StreamPrefetcher {
		pf := prefetch.DefaultConfig()
		cfg.Prefetch = &pf
	}
	cfg.ORAM.Periodic = c.Periodic
	if c.Oint != 0 {
		cfg.ORAM.Oint = c.Oint
	}
	cfg.WarmupOps = c.WarmupOps
	if c.Audit != nil {
		if c.Memory == MemoryDRAM {
			return nil, fmt.Errorf("proram: Audit requires MemoryORAM (DRAM has no obliviousness to audit)")
		}
		if c.Audit.Leak == LeakDropDummies {
			return nil, fmt.Errorf("proram: LeakDropDummies is a sharded scheduler control; the unified simulator has no round padding to drop")
		}
		cfg.ORAM.RecordTrace = true
		cfg.ORAM.LeakBiasLeaf = c.Audit.Leak == LeakBiasLeaf
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{cfg: cfg, rec: c.Obs.recorder(), audit: c.Audit, periodic: c.Periodic}
	if c.Obs != nil {
		s.metricsOut = c.Obs.MetricsOut
		s.cfg.Obs = s.rec
	}
	return s, nil
}

// Result is what one simulation measured.
type Result struct {
	// Cycles is the completion time of the measured region.
	Cycles uint64
	// MemOps is the number of memory operations executed.
	MemOps uint64
	// LLCMisses is demand misses reaching memory.
	LLCMisses uint64
	// MemoryAccesses is the energy proxy: ORAM path accesses or DRAM line
	// accesses.
	MemoryAccesses uint64
	// ORAM carries the controller detail (zero for DRAM runs).
	ORAM Stats
	// StreamIssued/StreamHits report the traditional prefetcher.
	StreamIssued, StreamHits uint64
	// Audit is the obliviousness audit digest (nil unless SimConfig.Audit
	// armed the auditor).
	Audit *AuditReport
}

// Run executes one workload and returns the measurements.
func (s *Simulator) Run(w Workload) (Result, error) {
	cfg := s.cfg
	cfg.ObsLabel = w.Name
	system, err := sim.New(cfg)
	if err != nil {
		return Result{}, err
	}
	rep, err := system.Run(w.generator())
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Cycles:         rep.Cycles,
		MemOps:         rep.MemOps,
		LLCMisses:      rep.LLCMisses,
		MemoryAccesses: rep.MemoryAccesses,
		ORAM:           statsFrom(rep.ORAM, rep.ORAM.DemandReads, rep.ORAM.Writebacks, 0),
		StreamIssued:   rep.StreamIssued,
		StreamHits:     rep.StreamHits,
	}
	if s.audit != nil {
		res.Audit, err = s.runAudit(system)
		if err != nil {
			return Result{}, err
		}
	}
	return res, nil
}

// runAudit replays the finished run's recorded physical trace through a
// fresh auditor: one scope, no round contract (the unified controller has
// no round scheduler), dummies labeled from the controller's own access
// kinds, and the timing test armed only under Periodic.
func (s *Simulator) runAudit(system *sim.System) (*AuditReport, error) {
	ctrl := system.ORAM()
	if ctrl == nil {
		return nil, fmt.Errorf("proram: audit requires an ORAM-backed system")
	}
	aud := s.audit.auditor(s.periodic, s.rec)
	if err := aud.Bind(1, ctrl.Leaves(), 0); err != nil {
		return nil, err
	}
	tr := ctrl.Trace()
	evs := make([]audit.AccessEvent, len(tr))
	for i, ev := range tr {
		evs[i] = audit.AccessEvent{
			Leaf:  ev.Leaf,
			Start: ev.Start,
			Dummy: ev.Kind == oram.KindPeriodicDummy || ev.Kind == oram.KindBackgroundEvict,
		}
	}
	aud.Accesses(0, evs)
	return finishAudit(aud, s.audit.Out)
}

// Workload is a deterministic memory reference stream for the Simulator.
type Workload struct {
	// Name labels the workload in reports.
	Name string
	// Ops is the stream length.
	Ops uint64

	factory func() trace.Generator
}

func (w Workload) generator() trace.Generator {
	if w.factory == nil {
		//proram:invariant a zero Workload is a compile-time misuse; every constructor sets the factory
		panic("proram: zero Workload; use a workload constructor")
	}
	return w.factory()
}

// SyntheticConfig parameterizes the paper's §5.3 microbenchmark.
type SyntheticConfig struct {
	Ops              uint64
	WorkingSetBytes  uint64
	LocalityFraction float64 // fraction of data accessed sequentially
	PhaseLen         uint64  // swap sequential/random halves every PhaseLen ops
	WriteFraction    float64
	Seed             uint64
}

// Synthetic builds the locality-controlled microbenchmark of Figure 6.
func Synthetic(c SyntheticConfig) (Workload, error) {
	tc := trace.SyntheticConfig{
		Ops:              c.Ops,
		WorkingSetBytes:  c.WorkingSetBytes,
		LocalityFraction: c.LocalityFraction,
		RunLen:           32,
		Gap:              6,
		WriteFraction:    c.WriteFraction,
		PhaseLen:         c.PhaseLen,
		Seed:             c.Seed + 1,
	}
	if tc.WorkingSetBytes == 0 {
		tc.WorkingSetBytes = 2 << 20
	}
	if tc.Ops == 0 {
		tc.Ops = 200_000
	}
	if err := tc.Validate(); err != nil {
		return Workload{}, err
	}
	return Workload{
		Name:    fmt.Sprintf("synthetic-%.0f%%", c.LocalityFraction*100),
		Ops:     tc.Ops,
		factory: func() trace.Generator { return trace.NewSynthetic(tc) },
	}, nil
}

// Splash2Workloads returns the modeled Splash2 suite (Figure 8a order).
func Splash2Workloads(ops uint64) []Workload {
	var out []Workload
	for _, p := range trace.Splash2(ops) {
		p := p
		out = append(out, Workload{Name: p.Name, Ops: p.Ops,
			factory: func() trace.Generator { return trace.NewModel(p) }})
	}
	return out
}

// SPEC06Workloads returns the modeled SPEC06 suite (Figure 8b order).
func SPEC06Workloads(ops uint64) []Workload {
	var out []Workload
	for _, p := range trace.SPEC06(ops) {
		p := p
		out = append(out, Workload{Name: p.Name, Ops: p.Ops,
			factory: func() trace.Generator { return trace.NewModel(p) }})
	}
	return out
}

// YCSBWorkload returns the modeled YCSB key-value workload.
func YCSBWorkload(ops uint64) Workload {
	cfg := trace.DefaultYCSB(ops)
	return Workload{Name: "YCSB", Ops: ops,
		factory: func() trace.Generator { return trace.NewYCSB(cfg) }}
}

// TPCCWorkload returns the modeled TPC-C order-entry workload.
func TPCCWorkload(ops uint64) Workload {
	p := trace.TPCC(ops)
	return Workload{Name: "TPCC", Ops: ops,
		factory: func() trace.Generator { return trace.NewModel(p) }}
}

// Op is one memory reference of a workload: Gap compute cycles followed by
// a read or write of the byte at Addr.
type Op struct {
	Gap   uint32
	Addr  uint64
	Write bool
}

// ForEach streams the workload's operations through f (a fresh pass each
// call; workloads are deterministic).
func (w Workload) ForEach(f func(Op)) {
	g := w.generator()
	for {
		op, ok := g.Next()
		if !ok {
			return
		}
		f(Op{Gap: op.Gap, Addr: op.Addr, Write: op.Write})
	}
}
