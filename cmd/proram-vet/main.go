// Command proram-vet runs the repo-specific static-analysis suite: the
// determinism, maporder, oblivious, panicdiscipline, seedplumbing,
// allocdiscipline, goroutinediscipline, lockorder, concdeterminism,
// fixedtrip, branchless, boundscheck and allowhygiene passes of
// proram/internal/analysis.
//
// Usage:
//
//	go run ./cmd/proram-vet ./...
//	go run ./cmd/proram-vet -pass lockorder,goroutinediscipline ./internal/shard
//	go run ./cmd/proram-vet -pass trip,ct,bce ./internal/shard
//	go run ./cmd/proram-vet -list-passes
//	go run ./cmd/proram-vet -timing -json ./... > vet.json
//
// Each pass also answers to a short alias (-list shows both); aliases
// are accepted by -checks/-pass only — diagnostics, //proram:allow
// directives and the JSON report always use canonical names. With
// -timing the per-pass wall-clock cost is printed to stderr after the
// run; stdout (including the -json report) is unaffected, so timing
// never perturbs byte-stable artifacts.
//
// It loads and type-checks the whole module (standard library imports
// are resolved from GOROOT source, so no tooling beyond the Go
// distribution is needed) and prints findings as file:line:col: [check]
// message. With -json the findings are emitted as a single JSON report
// on stdout instead — module-relative forward-slash paths and
// runner-sorted findings, so two runs over the same tree produce
// byte-identical output fit for CI artifact diffing. Suppressions are
// //proram: directives in the source; see doc.go at the repository
// root.
//
// Exit status distinguishes findings from breakage, so CI can react to
// each differently:
//
//	0  the analyzed packages are clean
//	1  at least one finding was reported
//	2  the analyzer itself failed (bad flags, unreadable module,
//	   type-check errors) — the run says nothing about the code
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"proram/internal/analysis"
)

// jsonFinding is one diagnostic in the -json report. File is
// module-relative with forward slashes on every platform.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// jsonReport is the envelope the -json mode writes to stdout.
type jsonReport struct {
	Module   string        `json:"module"`
	Checks   []string      `json:"checks"`
	Count    int           `json:"count"`
	Findings []jsonFinding `json:"findings"`
}

func main() {
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	passFlag := flag.String("pass", "", "alias of -checks")
	listFlag := flag.Bool("list", false, "list registered passes with their descriptions and exit")
	listPasses := flag.Bool("list-passes", false, "alias of -list")
	jsonFlag := flag.Bool("json", false, "emit a byte-stable JSON report on stdout instead of file:line:col lines")
	timingFlag := flag.Bool("timing", false, "print per-pass wall-clock timing to stderr after the run")
	flag.Parse()

	if *listFlag || *listPasses {
		for _, p := range analysis.DefaultPasses() {
			name := p.Name
			if len(p.Aliases) > 0 {
				name += " (" + strings.Join(p.Aliases, ", ") + ")"
			}
			fmt.Printf("%-28s %s\n", name, p.Doc)
		}
		return
	}

	selected := *checks
	if *passFlag != "" {
		if selected != "" && selected != *passFlag {
			fatal(fmt.Errorf("proram-vet: -checks and -pass disagree; use one"))
		}
		selected = *passFlag
	}
	passes, err := analysis.SelectPasses(selected)
	if err != nil {
		fatal(err)
	}

	root, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	extra, err := fixtureDirs(root, flag.Args())
	if err != nil {
		fatal(err)
	}
	prog, err := analysis.Load(root, extra...)
	if err != nil {
		fatal(err)
	}
	pkgs, err := selectPackages(prog, root, flag.Args())
	if err != nil {
		fatal(err)
	}

	runner := analysis.NewRunner(prog)
	diags := runner.Run(passes, pkgs)
	if *timingFlag {
		for _, t := range runner.Timings() {
			fmt.Fprintf(os.Stderr, "proram-vet: timing %-20s %s\n", t.Name, t.Elapsed.Round(10*time.Microsecond))
		}
	}
	if *jsonFlag {
		if err := writeJSON(os.Stdout, prog, passes, root, diags); err != nil {
			fatal(err)
		}
	} else {
		cwd, _ := os.Getwd()
		for _, d := range diags {
			name := d.Pos.Filename
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
			fmt.Printf("%s:%d:%d: [%s] %s\n", name, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "proram-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// writeJSON renders the report. The diagnostics arrive runner-sorted
// (file, line, col, check) and paths are normalized to module-relative
// forward-slash form, so the bytes are identical across runs and
// platforms — CI uploads the report as an artifact and any change shows
// up as a diff.
func writeJSON(w *os.File, prog *analysis.Program, passes []*analysis.Pass, root string, diags []analysis.Diagnostic) error {
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		name := d.Pos.Filename
		if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = filepath.ToSlash(rel)
		}
		findings = append(findings, jsonFinding{
			File:    name,
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Check:   d.Check,
			Message: d.Message,
		})
	}
	names := make([]string, len(passes))
	for i, p := range passes {
		names[i] = p.Name
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	return enc.Encode(jsonReport{
		Module:   prog.ModulePath,
		Checks:   names,
		Count:    len(findings),
		Findings: findings,
	})
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("proram-vet: no go.mod found above the working directory")
		}
		dir = parent
	}
}

// fixtureDirs collects directories for patterns that point under a
// testdata tree. The module walk skips testdata on purpose, so analyzing
// the golden fixtures (e.g. to see the expected findings fire and the
// driver exit nonzero) requires loading those directories explicitly.
func fixtureDirs(root string, patterns []string) ([]string, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	var out []string
	for _, pat := range patterns {
		recursive := strings.HasSuffix(pat, "/...")
		abs := filepath.Join(cwd, strings.TrimSuffix(pat, "/..."))
		rel, err := filepath.Rel(root, abs)
		if err != nil || !strings.Contains(filepath.ToSlash(rel), "testdata") {
			continue
		}
		if !recursive {
			out = append(out, abs)
			continue
		}
		err = filepath.WalkDir(abs, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				out = append(out, p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// selectPackages resolves command-line patterns ("./...", "./internal/oram",
// "./internal/...") against the loaded packages. No patterns means every
// module package; testdata packages participate only when a pattern names
// them (they are never loaded otherwise).
func selectPackages(prog *analysis.Program, root string, patterns []string) ([]*analysis.Package, error) {
	if len(patterns) == 0 {
		return prog.ModulePackages(), nil
	}
	all := prog.Packages
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	var out []*analysis.Package
	seen := make(map[*analysis.Package]bool)
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		abs := filepath.Join(cwd, pat)
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("proram-vet: pattern %q points outside the module", pat)
		}
		rel = filepath.ToSlash(rel)
		if rel == "." {
			rel = ""
		}
		matched := false
		for _, pkg := range all {
			ok := pkg.Rel == rel || (recursive && (rel == "" || strings.HasPrefix(pkg.Rel, rel+"/")))
			if ok && !seen[pkg] {
				seen[pkg] = true
				out = append(out, pkg)
			}
			matched = matched || ok
		}
		if !matched {
			return nil, fmt.Errorf("proram-vet: pattern %q matched no packages", pat)
		}
	}
	return out, nil
}

// fatal reports an internal analyzer failure. Exit status 2 keeps it
// distinguishable from "findings were reported" (status 1): CI must
// fail on breakage but may merely surface findings.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
