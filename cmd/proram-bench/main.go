// Command proram-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	proram-bench -list
//	proram-bench -exp fig8a [-scale 0.5] [-csv] [-out results/]
//	proram-bench -all [-scale 0.25]
//
// Each experiment prints the same rows/series the paper's figure plots
// (see DESIGN.md §5 for the mapping). Scale 1 reproduces the full-size
// runs; smaller scales shrink every workload proportionally.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"proram/internal/exp"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list experiment ids and exit")
		expID = flag.String("exp", "", "experiment id to run (see -list)")
		all   = flag.Bool("all", false, "run every experiment")
		scale = flag.Float64("scale", 1.0, "workload scale factor (1 = full size)")
		csv   = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		out   = flag.String("out", "", "directory to also write per-experiment files into")
	)
	flag.Parse()

	switch {
	case *list:
		for _, id := range exp.IDs() {
			title, _ := exp.Title(id)
			fmt.Printf("%-8s %s\n", id, title)
		}
		return
	case *all:
		for _, id := range exp.IDs() {
			if err := runOne(id, *scale, *csv, *out); err != nil {
				fatal(err)
			}
		}
		return
	case *expID != "":
		if err := runOne(*expID, *scale, *csv, *out); err != nil {
			fatal(err)
		}
		return
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(id string, scale float64, csv bool, outDir string) error {
	start := time.Now() //proram:allow determinism wall-clock timing is reporting-only and never feeds the simulation
	tb, err := exp.Run(id, exp.Options{Scale: scale})
	if err != nil {
		return err
	}
	var body string
	if csv {
		body = tb.CSV()
	} else {
		body = tb.Format()
	}
	fmt.Print(body)
	//proram:allow determinism elapsed time is printed for the operator, not recorded in results
	fmt.Printf("# elapsed: %s\n\n", time.Since(start).Round(time.Millisecond))
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		ext := ".txt"
		if csv {
			ext = ".csv"
		}
		if err := os.WriteFile(filepath.Join(outDir, id+ext), []byte(body), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "proram-bench:", err)
	os.Exit(1)
}
