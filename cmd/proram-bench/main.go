// Command proram-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	proram-bench -list
//	proram-bench -exp fig8a [-scale 0.5] [-csv] [-out results/]
//	proram-bench -all [-scale 0.25]
//	proram-bench -exp fig5 -obs -trace-out trace.json -metrics-out metrics.json
//
// Each experiment prints the same rows/series the paper's figure plots
// (see DESIGN.md §5 for the mapping). Scale 1 reproduces the full-size
// runs; smaller scales shrink every workload proportionally. With -obs the
// simulated systems are instrumented: -trace-out captures a Chrome
// trace-event file (load in chrome://tracing or Perfetto) and -metrics-out
// captures the deterministic metrics dump.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"proram/internal/exp"
	"proram/internal/obs"
	"proram/internal/obs/audit"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list experiment ids and exit")
		expID = flag.String("exp", "", "experiment id to run (see -list)")
		all   = flag.Bool("all", false, "run every experiment")
		scale = flag.Float64("scale", 1.0, "workload scale factor (1 = full size)")
		csv   = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		out   = flag.String("out", "", "directory to also write per-experiment files into")
		// -bench-out pins a benchmark baseline: the experiment's table as
		// deterministic JSON (e.g. -exp bench0 -bench-out BENCH_0.json).
		benchOut = flag.String("bench-out", "", "write the experiment's table as deterministic JSON to this file (single -exp only)")
		// -audit-out pins the obliviousness-audit baseline: the full
		// per-configuration report suite as deterministic JSON
		// (e.g. -exp audit2 -audit-out AUDIT_2.json). Implies -audit.
		auditOn  = flag.Bool("audit", false, "collect full obliviousness-audit reports from auditing experiments")
		auditOut = flag.String("audit-out", "", "write the collected audit suite as deterministic JSON to this file (implies -audit)")

		obsOn       = flag.Bool("obs", false, "instrument the simulated systems (metrics, time series, flight recorder)")
		traceOut    = flag.String("trace-out", "", "write a Chrome trace-event JSON file (implies -obs)")
		metricsOut  = flag.String("metrics-out", "", "write the deterministic metrics JSON dump to this file (implies -obs)")
		sampleEvery = flag.Uint64("sample-every", 50_000, "simulated cycles between time-series samples")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	if *pprofAddr != "" {
		servePprof(*pprofAddr)
	}

	ob, err := setupObs(*obsOn, *traceOut, *metricsOut, *sampleEvery)
	if err != nil {
		fatal(err)
	}
	var suite *audit.Suite
	if *auditOn || *auditOut != "" {
		suite = &audit.Suite{}
	}
	switch {
	case *list:
		for _, id := range exp.IDs() {
			title, _ := exp.Title(id)
			fmt.Printf("%-8s %s\n", id, title)
		}
		return
	case *all:
		if *benchOut != "" {
			fatal(fmt.Errorf("-bench-out needs a single -exp, not -all"))
		}
		for _, id := range exp.IDs() {
			if err := runOne(id, *scale, *csv, *out, "", ob.rec, suite); err != nil {
				fatal(err)
			}
		}
	case *expID != "":
		if err := runOne(*expID, *scale, *csv, *out, *benchOut, ob.rec, suite); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if *auditOut != "" {
		f, err := os.Create(*auditOut)
		if err != nil {
			fatal(err)
		}
		if err := suite.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "# wrote %s\n", *auditOut)
	}
	if suite != nil && !suite.Pass() {
		fatal(fmt.Errorf("obliviousness audit failed (see the audit suite report)"))
	}
	if err := ob.finish(); err != nil {
		fatal(err)
	}
}

func runOne(id string, scale float64, csv bool, outDir, benchOut string, rec *obs.Recorder, suite *audit.Suite) error {
	start := time.Now() //proram:allow determinism wall-clock timing is reporting-only and never feeds the simulation
	tb, err := exp.Run(id, exp.Options{Scale: scale, Obs: rec, Audit: suite})
	if err != nil {
		return err
	}
	var body string
	if csv {
		body = tb.CSV()
	} else {
		body = tb.Format()
	}
	fmt.Print(body)
	fmt.Println()
	// Elapsed time goes to stderr: stdout carries only the reproducible
	// table so redirecting it yields a diffable artifact.
	//proram:allow determinism elapsed time is printed for the operator, not recorded in results
	fmt.Fprintf(os.Stderr, "# elapsed: %s\n", time.Since(start).Round(time.Millisecond))
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		ext := ".txt"
		if csv {
			ext = ".csv"
		}
		if err := os.WriteFile(filepath.Join(outDir, id+ext), []byte(body), 0o644); err != nil {
			return err
		}
	}
	if benchOut != "" {
		js, err := tb.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(benchOut, js, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "# wrote %s\n", benchOut)
	}
	return nil
}

// obsOutputs owns the bench-wide recorder and its output files. Every
// system each experiment builds shares the one recorder and appears in
// the trace as a separate process.
type obsOutputs struct {
	rec         *obs.Recorder
	traceFile   *os.File
	metricsFile *os.File
}

func setupObs(enable bool, tracePath, metricsPath string, sampleEvery uint64) (*obsOutputs, error) {
	if !enable && tracePath == "" && metricsPath == "" {
		return &obsOutputs{}, nil
	}
	o := &obsOutputs{}
	opts := obs.Options{SampleEvery: sampleEvery, FlightOut: os.Stderr}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, err
		}
		o.traceFile = f
		opts.TraceOut = f
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return nil, err
		}
		o.metricsFile = f
	}
	o.rec = obs.New(opts)
	return o, nil
}

// finish terminates the trace array, writes the metrics dump and closes
// the output files.
func (o *obsOutputs) finish() error {
	if o.rec == nil {
		return nil
	}
	if err := o.rec.CloseTrace(); err != nil {
		return err
	}
	if o.traceFile != nil {
		if err := o.traceFile.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "# wrote %s\n", o.traceFile.Name())
	}
	if o.metricsFile != nil {
		if err := o.rec.WriteMetrics(o.metricsFile); err != nil {
			return err
		}
		if err := o.metricsFile.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "# wrote %s\n", o.metricsFile.Name())
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "proram-bench:", err)
	os.Exit(1)
}
