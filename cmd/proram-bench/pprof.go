package main

import (
	_ "expvar" // registers /debug/vars on the default mux
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
)

// servePprof exposes the Go runtime's pprof and expvar endpoints for
// profiling long experiment batches. The handlers only read runtime state,
// so the server never affects experiment results.
func servePprof(addr string) {
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "pprof server:", err)
		}
	}()
}
