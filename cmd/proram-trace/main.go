// Command proram-trace inspects the workload generators: it streams a
// trace and reports its statistical profile (memory intensity, spatial
// locality, write fraction, footprint), optionally dumping raw operations.
//
// Usage:
//
//	proram-trace -workload ocean_c -ops 100000
//	proram-trace -workload synthetic -locality 0.8 -dump 20
package main

import (
	"flag"
	"fmt"
	"os"

	"proram"
)

func main() {
	var (
		workload = flag.String("workload", "synthetic", "workload name (see proram-sim)")
		ops      = flag.Uint64("ops", 200_000, "operations to generate")
		locality = flag.Float64("locality", 0.5, "synthetic: locality fraction")
		seed     = flag.Uint64("seed", 1, "generator seed")
		dump     = flag.Int("dump", 0, "print the first N raw operations")
	)
	flag.Parse()

	w, err := pickWorkload(*workload, *ops, *locality, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "proram-trace:", err)
		os.Exit(1)
	}
	profile(w, *dump)
}

func pickWorkload(name string, ops uint64, locality float64, seed uint64) (proram.Workload, error) {
	switch name {
	case "synthetic":
		return proram.Synthetic(proram.SyntheticConfig{
			Ops: ops, LocalityFraction: locality, WriteFraction: 0.25, Seed: seed,
		})
	case "ycsb":
		return proram.YCSBWorkload(ops), nil
	case "tpcc":
		return proram.TPCCWorkload(ops), nil
	}
	for _, w := range proram.Splash2Workloads(ops) {
		if w.Name == name {
			return w, nil
		}
	}
	for _, w := range proram.SPEC06Workloads(ops) {
		if w.Name == name {
			return w, nil
		}
	}
	return proram.Workload{}, fmt.Errorf("unknown workload %q", name)
}

func profile(w proram.Workload, dump int) {
	const stride = 64
	const block = 128
	var (
		n, writes, seq  uint64
		gaps            uint64
		prevAddr        uint64
		prevValid       bool
		minAddr         = ^uint64(0)
		maxAddr         uint64
		blocks          = map[uint64]struct{}{}
		blockTransition uint64
	)
	w.ForEach(func(op proram.Op) {
		n++
		gaps += uint64(op.Gap)
		if op.Write {
			writes++
		}
		if prevValid && op.Addr == prevAddr+stride {
			seq++
		}
		if prevValid && op.Addr/block == prevAddr/block+1 {
			blockTransition++
		}
		prevAddr, prevValid = op.Addr, true
		if op.Addr < minAddr {
			minAddr = op.Addr
		}
		if op.Addr > maxAddr {
			maxAddr = op.Addr
		}
		blocks[op.Addr/block] = struct{}{}
		if dump > 0 {
			fmt.Printf("op %8d  addr %10d  gap %3d  write %v\n", n, op.Addr, op.Gap, op.Write)
			dump--
		}
	})
	fmt.Printf("workload            %s\n", w.Name)
	fmt.Printf("operations          %d\n", n)
	fmt.Printf("mean compute gap    %.2f cycles\n", float64(gaps)/float64(n))
	fmt.Printf("write fraction      %.3f\n", float64(writes)/float64(n))
	fmt.Printf("stride sequentiality %.3f\n", float64(seq)/float64(n))
	fmt.Printf("neighbor-block rate %.3f\n", float64(blockTransition)/float64(n))
	fmt.Printf("address range       [%d, %d] (%.2f MB)\n", minAddr, maxAddr, float64(maxAddr-minAddr)/(1<<20))
	fmt.Printf("distinct blocks     %d (%.2f MB footprint)\n", len(blocks), float64(len(blocks)*block)/(1<<20))
}
