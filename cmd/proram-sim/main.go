// Command proram-sim runs a single memory-system simulation and prints a
// detailed report.
//
// Usage:
//
//	proram-sim -workload ocean_c -scheme dynamic
//	proram-sim -workload synthetic -locality 0.8 -ops 500000 -memory dram
//	proram-sim -workload ycsb -scheme static -z 4 -stash 50
//	proram-sim -workload ycsb -partitions 8 -clients 16
//	proram-sim -workload ycsb -partitions 4 -audit -audit-out audit.json
//	proram-sim -workload ycsb -partitions 4 -audit -leaky drop-dummies
//
// With -partitions > 1 the workload is replayed through the partitioned
// frontend's closed-loop scheduler (see internal/shard) instead of the
// core timing model: the report shows rounds, padding and the makespan.
//
// With -audit the obliviousness auditor (internal/obs/audit) taps the
// physical access stream and the process exits nonzero when any
// statistical leak test fails. -leaky injects a deliberate,
// test-only leak (suppressed round padding or a biased leaf remap) that
// the auditor must flag — the CI negative controls.
//
// Workloads: synthetic, ycsb, tpcc, or any Splash2/SPEC06 benchmark name
// (water_ns ... ocean_nc, h264 ... mcf).
package main

import (
	"flag"
	"fmt"
	"os"

	"proram"
)

func main() {
	var (
		workload = flag.String("workload", "synthetic", "workload name")
		ops      = flag.Uint64("ops", 400_000, "memory operations to simulate")
		locality = flag.Float64("locality", 0.5, "synthetic: fraction of data with locality")
		memory   = flag.String("memory", "oram", "memory technology: oram or dram")
		scheme   = flag.String("scheme", "none", "prefetch scheme: none, static, dynamic")
		maxSB    = flag.Int("sbsize", 2, "maximum super block size")
		stream   = flag.Bool("stream", false, "enable the traditional stream prefetcher")
		z        = flag.Int("z", 0, "ORAM bucket size Z (0 = default 3)")
		stash    = flag.Int("stash", 0, "stash capacity in blocks (0 = default 100)")
		periodic = flag.Bool("periodic", false, "periodic (timing-protected) ORAM accesses")
		oint     = flag.Uint64("oint", 0, "periodic access interval in cycles (0 = default)")
		warmup   = flag.Uint64("warmup", 0, "unmeasured warmup operations")
		seed     = flag.Uint64("seed", 1, "workload / ORAM seed")
		dramMod  = flag.String("dram", "flat", "DRAM timing model behind the ORAM: flat, banked, or packed (banked + subtree-packed layout)")

		parts   = flag.Int("partitions", 1, "split the address space across this many independent ORAM partitions (>1 runs the sharded scheduler)")
		clients = flag.Int("clients", 8, "sharded: closed-loop concurrent clients admitted per scheduling round")
		slots   = flag.Int("round-slots", 0, "sharded: fixed ORAM accesses per partition per round (0 = default)")

		auditOn  = flag.Bool("audit", false, "run the obliviousness auditor over the simulated access stream; a failed audit exits nonzero")
		auditOut = flag.String("audit-out", "", "write the full audit report as deterministic JSON to this file (implies -audit)")
		leaky    = flag.String("leaky", "", "NEGATIVE CONTROL: inject a deliberate leak the auditor must flag: drop-dummies or bias-leaf (implies -audit)")

		obsOn       = flag.Bool("obs", false, "enable observability (metrics, time series, flight recorder)")
		traceOut    = flag.String("trace-out", "", "write a Chrome trace-event JSON file (implies -obs; load in chrome://tracing or Perfetto)")
		metricsOut  = flag.String("metrics-out", "", "write the deterministic metrics JSON dump to this file (implies -obs)")
		sampleEvery = flag.Uint64("sample-every", 50_000, "simulated cycles between time-series samples")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	if *pprofAddr != "" {
		servePprof(*pprofAddr)
	}

	w, err := pickWorkload(*workload, *ops, *locality, *seed)
	if err != nil {
		fatal(err)
	}
	dram, err := pickDRAM(*dramMod)
	if err != nil {
		fatal(err)
	}
	ac, err := pickAudit(*auditOn, *auditOut, *leaky)
	if err != nil {
		fatal(err)
	}
	if *parts > 1 {
		if *memory != "oram" {
			fatal(fmt.Errorf("-partitions needs -memory oram"))
		}
		runSharded(w, *parts, *clients, *slots, *scheme, *maxSB, *seed, dram, ac)
		return
	}
	cfg := proram.SimConfig{
		MaxSuperBlock:    *maxSB,
		StreamPrefetcher: *stream,
		Z:                *z,
		StashBlocks:      *stash,
		Periodic:         *periodic,
		Oint:             *oint,
		WarmupOps:        *warmup,
		Seed:             *seed,
		DRAM:             dram,
	}
	switch *memory {
	case "oram":
		cfg.Memory = proram.MemoryORAM
	case "dram":
		cfg.Memory = proram.MemoryDRAM
	default:
		fatal(fmt.Errorf("unknown memory %q", *memory))
	}
	switch *scheme {
	case "none":
		cfg.Scheme = proram.SchemeNone
	case "static":
		cfg.Scheme = proram.SchemeStatic
	case "dynamic":
		cfg.Scheme = proram.SchemeDynamic
	default:
		fatal(fmt.Errorf("unknown scheme %q", *scheme))
	}

	var obsFiles []*os.File
	if *obsOn || *traceOut != "" || *metricsOut != "" {
		oc := &proram.ObsConfig{SampleEvery: *sampleEvery, FlightOut: os.Stderr}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal(err)
			}
			oc.TraceOut = f
			obsFiles = append(obsFiles, f)
		}
		if *metricsOut != "" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				fatal(err)
			}
			oc.MetricsOut = f
			obsFiles = append(obsFiles, f)
		}
		cfg.Obs = oc
	}
	if ac != nil {
		cfg.Audit = ac.cfg
	}

	s, err := proram.NewSimulator(cfg)
	if err != nil {
		fatal(err)
	}
	res, err := s.Run(w)
	if err != nil {
		fatal(err)
	}
	if err := s.CloseObs(); err != nil {
		fatal(err)
	}
	for _, f := range obsFiles {
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "# wrote %s\n", f.Name())
	}

	fmt.Printf("workload         %s (%d ops)\n", w.Name, w.Ops)
	fmt.Printf("memory           %s, scheme %s\n", *memory, *scheme)
	fmt.Printf("cycles           %d\n", res.Cycles)
	fmt.Printf("llc misses       %d\n", res.LLCMisses)
	fmt.Printf("memory accesses  %d\n", res.MemoryAccesses)
	if cfg.Memory == proram.MemoryORAM {
		o := res.ORAM
		fmt.Printf("oram reads/writes    %d / %d\n", o.Reads, o.Writes)
		fmt.Printf("path accesses        %d\n", o.PathAccesses)
		fmt.Printf("background evictions %d\n", o.BackgroundEvictions)
		fmt.Printf("periodic dummies     %d\n", o.DummyAccesses)
		fmt.Printf("merges / breaks      %d / %d\n", o.Merges, o.Breaks)
		fmt.Printf("prefetch issued      %d (hits %d, unused %d, miss rate %.3f)\n",
			o.PrefetchIssued, o.PrefetchHits, o.PrefetchUnused, o.PrefetchMissRate())
		fmt.Printf("stash high water     %d\n", o.StashHighWater)
	}
	if *stream {
		fmt.Printf("stream prefetches    %d (hits %d)\n", res.StreamIssued, res.StreamHits)
	}
	ac.finish(res.Audit)
}

// auditFlags holds the audit configuration the flags armed, plus the
// report file to flush at exit.
type auditFlags struct {
	cfg  *proram.AuditConfig
	file *os.File
}

// pickAudit maps the -audit/-audit-out/-leaky flags to an audit
// configuration; nil means the auditor stays off.
func pickAudit(on bool, out, leaky string) (*auditFlags, error) {
	if !on && out == "" && leaky == "" {
		return nil, nil
	}
	a := &auditFlags{cfg: &proram.AuditConfig{}}
	switch leaky {
	case "":
	case "drop-dummies":
		a.cfg.Leak = proram.LeakDropDummies
	case "bias-leaf":
		a.cfg.Leak = proram.LeakBiasLeaf
	default:
		return nil, fmt.Errorf("unknown -leaky mode %q (drop-dummies, bias-leaf)", leaky)
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return nil, err
		}
		a.cfg.Out = f
		a.file = f
	}
	return a, nil
}

// finish flushes the report file, prints the verdict, and exits nonzero
// on a failed audit — the exit path CI's negative controls assert on.
func (a *auditFlags) finish(rep *proram.AuditReport) {
	if a == nil {
		return
	}
	if a.file != nil {
		if err := a.file.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "# wrote %s\n", a.file.Name())
	}
	if rep == nil {
		fatal(fmt.Errorf("audit armed but no report produced"))
	}
	if rep.Pass {
		fmt.Printf("audit            pass (%d accesses)\n", rep.Accesses)
		return
	}
	fmt.Printf("audit            FAIL (%d accesses)\n", rep.Accesses)
	for _, f := range rep.Findings {
		fmt.Printf("  %s\n", f)
	}
	os.Exit(1)
}

// runSharded replays the workload through the partitioned frontend's
// deterministic closed-loop scheduler and prints its report.
func runSharded(w proram.Workload, parts, clients, slots int, scheme string, maxSB int, seed uint64, dram *proram.DRAMConfig, ac *auditFlags) {
	cfg := proram.DefaultConfig()
	cfg.Partitions = parts
	cfg.RoundSlots = slots
	cfg.MaxSuperBlock = maxSB
	cfg.Seed = seed
	cfg.DRAM = dram
	switch scheme {
	case "none":
		cfg.Scheme = proram.SchemeNone
	case "static":
		cfg.Scheme = proram.SchemeStatic
	case "dynamic":
		cfg.Scheme = proram.SchemeDynamic
	default:
		fatal(fmt.Errorf("unknown scheme %q", scheme))
	}
	var (
		rep  proram.ShardedSimReport
		arep *proram.AuditReport
		err  error
	)
	if ac != nil {
		rep, arep, err = proram.SimulateShardedAudited(cfg, w, clients, *ac.cfg)
	} else {
		rep, err = proram.SimulateSharded(cfg, w, clients)
	}
	if err != nil {
		fatal(err)
	}
	s := rep.Sched
	fmt.Printf("workload         %s (%d ops)\n", w.Name, rep.Ops)
	fmt.Printf("memory           oram, scheme %s, %d partitions, %d clients\n", scheme, parts, clients)
	fmt.Printf("cycles           %d (slowest partition's clock)\n", s.Cycles)
	fmt.Printf("rounds               %d × %d slots per partition\n", s.Rounds, s.RoundSlots)
	fmt.Printf("path accesses        %d\n", rep.PathAccesses)
	fmt.Printf("real / pad accesses  %d / %d (fill %.3f)\n", s.RealAccesses, s.PadAccesses, s.FillRatio)
	fmt.Printf("cache hits           %d\n", s.CacheHits)
	fmt.Printf("carryovers           %d\n", s.Carryovers)
	ac.finish(arep)
}

// pickDRAM maps the -dram flag to a public DRAM configuration; nil means
// the legacy flat channel.
func pickDRAM(name string) (*proram.DRAMConfig, error) {
	switch name {
	case "flat", "":
		return nil, nil
	case "banked":
		return &proram.DRAMConfig{Model: proram.DRAMBanked}, nil
	case "packed":
		return &proram.DRAMConfig{Model: proram.DRAMBankedPacked}, nil
	default:
		return nil, fmt.Errorf("unknown dram model %q (flat, banked, packed)", name)
	}
}

func pickWorkload(name string, ops uint64, locality float64, seed uint64) (proram.Workload, error) {
	switch name {
	case "synthetic":
		return proram.Synthetic(proram.SyntheticConfig{
			Ops: ops, LocalityFraction: locality, WriteFraction: 0.25, Seed: seed,
		})
	case "ycsb":
		return proram.YCSBWorkload(ops), nil
	case "tpcc":
		return proram.TPCCWorkload(ops), nil
	}
	for _, w := range proram.Splash2Workloads(ops) {
		if w.Name == name {
			return w, nil
		}
	}
	for _, w := range proram.SPEC06Workloads(ops) {
		if w.Name == name {
			return w, nil
		}
	}
	return proram.Workload{}, fmt.Errorf("unknown workload %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "proram-sim:", err)
	os.Exit(1)
}
