package proram

import (
	"fmt"
	"io"

	"proram/internal/dram/banked"
	"proram/internal/oram"
	"proram/internal/rng"
	"proram/internal/superblock"
)

// Scheme selects the prefetching scheme of an oblivious RAM.
type Scheme int

const (
	// SchemeNone is baseline Path ORAM: no super blocks.
	SchemeNone Scheme = iota
	// SchemeStatic merges every aligned group of MaxSuperBlock blocks at
	// initialization (the prior static scheme the paper compares against).
	SchemeStatic
	// SchemeDynamic is PrORAM: super blocks merge and break at runtime
	// based on observed spatial locality.
	SchemeDynamic
)

func (s Scheme) String() string {
	switch s {
	case SchemeNone:
		return "none"
	case SchemeStatic:
		return "static"
	case SchemeDynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Config describes an oblivious RAM instance.
type Config struct {
	// Blocks is the capacity in blocks. Addresses passed to Read/Write
	// must be below Blocks.
	Blocks uint64
	// BlockBytes is the block (cacheline) size; 128 by default.
	BlockBytes int
	// Scheme selects the prefetcher; SchemeDynamic is PrORAM.
	Scheme Scheme
	// MaxSuperBlock bounds super block size (power of two; default 2).
	MaxSuperBlock int
	// CacheBlocks sizes the client-side block cache that plays the LLC's
	// role: it serves repeated reads locally and lets the dynamic scheme
	// observe co-residency. Default 4096 blocks.
	CacheBlocks int
	// Z is the tree bucket size (default 3).
	Z int
	// StashBlocks is the stash capacity (default 100).
	StashBlocks int
	// Key is the 16/24/32-byte AES key sealing block payloads at rest.
	// Nil derives an ephemeral key from Seed (fine for experiments; supply
	// a real key for actual storage).
	Key []byte
	// Seed drives the ORAM's randomness. Zero means 1.
	Seed uint64
	// Partitions splits the address space across this many independent
	// ORAM controllers behind the concurrent sharded frontend (NewSharded).
	// New ignores it — the unified RAM is always one controller. Default 1.
	Partitions int
	// RoundSlots fixes the ORAM access count every partition issues per
	// scheduling round in the sharded frontend (NewSharded only): demand
	// accesses for queued requests, dummies for the rest, so the observable
	// round shape is workload-independent. 0 picks 2×(MaxSuperBlock+1),
	// the smallest round with headroom for two requests.
	RoundSlots int
	// DRAM selects the memory timing model behind the ORAM controller(s).
	// Nil keeps the legacy flat serialized channel; a banked model schedules
	// every tree bucket individually across channels and banks. Under
	// NewSharded a banked model is ONE device all partitions contend for.
	DRAM *DRAMConfig
}

// DRAMModel selects the memory timing model.
type DRAMModel int

const (
	// DRAMFlat is the legacy model: one serialized channel, every path
	// access a bulk transfer that owns the whole device.
	DRAMFlat DRAMModel = iota
	// DRAMBanked is the multi-channel banked model with the tree stored in
	// plain heap order (buckets scatter over rows).
	DRAMBanked
	// DRAMBankedPacked is the banked model with the subtree-packed layout:
	// depth-k subtrees co-locate in single DRAM rows and the hot top-of-tree
	// buckets each hold a row open, striped across channels.
	DRAMBankedPacked
)

func (m DRAMModel) String() string {
	switch m {
	case DRAMFlat:
		return "flat"
	case DRAMBanked:
		return "banked"
	case DRAMBankedPacked:
		return "packed"
	default:
		return fmt.Sprintf("DRAMModel(%d)", int(m))
	}
}

// DRAMConfig exposes the banked device geometry as public config axes.
// Zero fields take the dual-channel DDR-style defaults (2 channels of
// 16 GB/s, 8 banks, 4 KB rows, row-granular channel interleave).
type DRAMConfig struct {
	// Model picks flat, banked, or banked with the subtree-packed layout.
	Model DRAMModel
	// Channels, Banks, RowBytes and StripeBytes set the device geometry;
	// BandwidthGBps is the pin bandwidth of ONE channel.
	Channels      int
	Banks         int
	RowBytes      int
	StripeBytes   int
	BandwidthGBps float64
}

// validate rejects unknown models; geometry is checked downstream by
// banked.Config.Validate.
func (d *DRAMConfig) validate() error {
	if d == nil {
		return nil
	}
	switch d.Model {
	case DRAMFlat, DRAMBanked, DRAMBankedPacked:
		return nil
	default:
		return fmt.Errorf("proram: unknown DRAM model %d", int(d.Model))
	}
}

// bankedConfig lowers the public axes to the internal device configuration;
// nil means the flat model.
func (d *DRAMConfig) bankedConfig() *banked.Config {
	if d == nil || d.Model == DRAMFlat {
		return nil
	}
	b := banked.DefaultConfig()
	if d.Channels != 0 {
		b.Channels = d.Channels
	}
	if d.Banks != 0 {
		b.Banks = d.Banks
	}
	if d.RowBytes != 0 {
		b.RowBytes = d.RowBytes
	}
	if d.StripeBytes != 0 {
		b.StripeBytes = d.StripeBytes
	}
	if d.BandwidthGBps != 0 {
		b.BandwidthGBps = d.BandwidthGBps
	}
	b.Layout = banked.LayoutSubtreePacked
	if d.Model == DRAMBanked {
		b.Layout = banked.LayoutLinear
	}
	return &b
}

// DefaultConfig returns a PrORAM-enabled RAM of 2^16 blocks (8 MB).
func DefaultConfig() Config {
	return Config{
		Blocks:        1 << 16,
		BlockBytes:    128,
		Scheme:        SchemeDynamic,
		MaxSuperBlock: 2,
		CacheBlocks:   4096,
		Z:             3,
		StashBlocks:   100,
		Seed:          1,
	}
}

// normalize fills zero fields with defaults and validates.
func (c Config) normalize() (Config, error) {
	d := DefaultConfig()
	if c.Blocks == 0 {
		c.Blocks = d.Blocks
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = d.BlockBytes
	}
	if c.MaxSuperBlock == 0 {
		c.MaxSuperBlock = d.MaxSuperBlock
	}
	if c.CacheBlocks == 0 {
		c.CacheBlocks = d.CacheBlocks
	}
	if c.Z == 0 {
		c.Z = d.Z
	}
	if c.StashBlocks == 0 {
		c.StashBlocks = d.StashBlocks
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Partitions == 0 {
		c.Partitions = 1
	}
	if c.Partitions < 0 {
		return c, fmt.Errorf("proram: Partitions %d must be positive", c.Partitions)
	}
	if c.RoundSlots < 0 {
		return c, fmt.Errorf("proram: RoundSlots %d must be non-negative", c.RoundSlots)
	}
	if err := c.DRAM.validate(); err != nil {
		return c, err
	}
	if c.Blocks < 2 {
		return c, fmt.Errorf("proram: Blocks %d too small", c.Blocks)
	}
	if c.CacheBlocks < 16 {
		return c, fmt.Errorf("proram: CacheBlocks %d too small (min 16)", c.CacheBlocks)
	}
	switch c.Scheme {
	case SchemeNone, SchemeStatic, SchemeDynamic:
	default:
		return c, fmt.Errorf("proram: unknown scheme %d", int(c.Scheme))
	}
	return c, nil
}

// oramConfig converts to the internal controller configuration.
func (c Config) oramConfig() oram.Config {
	o := oram.DefaultConfig()
	o.NumBlocks = c.Blocks
	o.BlockBytes = c.BlockBytes
	o.Z = c.Z
	o.StashLimit = c.StashBlocks
	o.Seed = c.Seed
	o.Super = superblockConfig(c.Scheme, c.MaxSuperBlock)
	o.Banked = c.DRAM.bankedConfig()
	return o
}

// sealKey returns the configured sealing key, deriving one from the seed
// when none is supplied.
func (c Config) sealKey() []byte {
	if c.Key != nil {
		return c.Key
	}
	return deriveKey(c.Seed)
}

// nonceSource returns the sealer's nonce stream. Deterministic nonces keep
// whole experiments reproducible; supply Config.Key plus your own entropy
// expectations for real deployments.
func (c Config) nonceSource() io.Reader {
	return rng.NewReader(c.Seed ^ 0x5eed)
}

// superblockConfig maps the public scheme to the internal policy config.
func superblockConfig(s Scheme, maxSize int) superblock.Config {
	switch s {
	case SchemeStatic:
		return superblock.Config{Scheme: superblock.Static, MaxSize: maxSize}
	case SchemeDynamic:
		sb := superblock.DefaultConfig()
		sb.MaxSize = maxSize
		return sb
	default:
		return superblock.Config{Scheme: superblock.None, MaxSize: 1}
	}
}

// Stats summarizes what an oblivious RAM (or the ORAM side of a
// simulation) did.
type Stats struct {
	// Reads and Writes are the logical operations served.
	Reads, Writes uint64
	// CacheHits counts operations served from the client cache without an
	// ORAM access.
	CacheHits uint64
	// PathAccesses is the total ORAM work (each is a full tree-path
	// read+write) — the paper's energy proxy.
	PathAccesses uint64
	// BackgroundEvictions and DummyAccesses count overhead accesses.
	BackgroundEvictions uint64
	DummyAccesses       uint64
	// Merges/Breaks are super block transitions (dynamic scheme).
	Merges, Breaks uint64
	// PrefetchIssued/PrefetchHits/PrefetchUnused track prefetch outcomes.
	PrefetchIssued, PrefetchHits, PrefetchUnused uint64
	// StashHighWater is the peak stash occupancy.
	StashHighWater int
}

// PrefetchMissRate returns unused/(hits+unused), the Figure 9 metric.
func (s Stats) PrefetchMissRate() float64 {
	t := s.PrefetchHits + s.PrefetchUnused
	if t == 0 {
		return 0
	}
	return float64(s.PrefetchUnused) / float64(t)
}

// statsFrom converts internal controller statistics.
func statsFrom(o oram.Stats, reads, writes, cacheHits uint64) Stats {
	return Stats{
		Reads:               reads,
		Writes:              writes,
		CacheHits:           cacheHits,
		PathAccesses:        o.PathAccesses,
		BackgroundEvictions: o.BackgroundEvictions,
		DummyAccesses:       o.DummyAccesses,
		Merges:              o.Merges,
		Breaks:              o.Breaks,
		PrefetchIssued:      o.PrefetchIssued,
		PrefetchHits:        o.PrefetchHits,
		PrefetchUnused:      o.PrefetchUnused,
		StashHighWater:      o.StashHighWater,
	}
}
