package proram

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestShardedAuditPass runs an honest ShardedRAM with the auditor armed
// end to end through the public API: Close must succeed, the verdict
// must pass, and the JSON report must land in the configured writer.
func TestShardedAuditPass(t *testing.T) {
	var out bytes.Buffer
	cfg := DefaultConfig()
	cfg.Blocks = 1 << 12
	cfg.CacheBlocks = 512
	cfg.Partitions = 4
	s, err := NewSharded(cfg, ShardedOptions{Audit: &AuditConfig{Out: &out}})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 200; i++ {
		if err := s.Write(i%97, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Read(i % 53); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("honest audited Close: %v", err)
	}
	rep := s.Audit()
	if rep == nil || !rep.Pass {
		t.Fatalf("honest run flagged: %+v", rep)
	}
	if rep.Accesses == 0 {
		t.Fatal("audit saw no accesses")
	}
	if !strings.Contains(out.String(), `"pass": true`) {
		t.Fatalf("report JSON missing passing verdict: %.200s", out.String())
	}
}

// TestShardedAuditLeakFailsClose asserts the public failure path of the
// suppressed-padding negative control: Close returns the audit error,
// the report names the round-shape test, and the first online failure
// dumps the observability flight ring.
func TestShardedAuditLeakFailsClose(t *testing.T) {
	var flight bytes.Buffer
	cfg := DefaultConfig()
	cfg.Blocks = 1 << 12
	cfg.CacheBlocks = 512
	cfg.Partitions = 4
	s, err := NewSharded(cfg, ShardedOptions{
		Audit: &AuditConfig{Leak: LeakDropDummies},
		Obs:   &ObsConfig{FlightOut: &flight},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if err := s.Write(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	err = s.Close()
	if err == nil {
		t.Fatal("Close succeeded on a leaky run")
	}
	if !strings.Contains(err.Error(), "audit failed") {
		t.Fatalf("Close error is not the audit verdict: %v", err)
	}
	rep := s.Audit()
	if rep == nil || rep.Pass {
		t.Fatalf("leaky run passed: %+v", rep)
	}
	if !strings.Contains(strings.Join(rep.Findings, "\n"), "round_shape") {
		t.Fatalf("findings missing round_shape: %v", rep.Findings)
	}
	if !strings.Contains(flight.String(), "audit failure") {
		t.Fatalf("flight ring not dumped on audit failure: %.200s", flight.String())
	}
}

// TestSimulateShardedAudited covers the one-shot audited simulation on
// both verdicts: honest passes with a digest, bias-leaf fails the
// verdict without an operational error.
func TestSimulateShardedAudited(t *testing.T) {
	w := YCSBWorkload(5000)
	cfg := DefaultConfig()
	cfg.Blocks = 1 << 12
	cfg.CacheBlocks = 512
	cfg.Partitions = 4
	cfg.Scheme = SchemeDynamic

	rep, aud, err := SimulateShardedAudited(cfg, w, 8, AuditConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 5000 || rep.PathAccesses == 0 {
		t.Fatalf("empty digest: %+v", rep)
	}
	if aud == nil || !aud.Pass {
		t.Fatalf("honest run flagged: %+v", aud)
	}
	if err := aud.Err(); err != nil {
		t.Fatalf("passing report has error: %v", err)
	}

	_, leaky, err := SimulateShardedAudited(cfg, w, 8, AuditConfig{Leak: LeakBiasLeaf})
	if err != nil {
		t.Fatalf("leaky run has operational error: %v", err)
	}
	if leaky == nil || leaky.Pass {
		t.Fatalf("bias-leaf run passed: %+v", leaky)
	}
	if !strings.Contains(strings.Join(leaky.Findings, "\n"), "leaf_uniformity") {
		t.Fatalf("findings missing leaf_uniformity: %v", leaky.Findings)
	}
	if err := leaky.Err(); err == nil {
		t.Fatal("failing report has nil Err")
	}
}

// TestSimulatorAudit covers the unified facade: an honest dynamic-scheme
// run passes, the DRAM and drop-dummies combinations are rejected at
// construction, and the bias-leaf control is flagged.
func TestSimulatorAudit(t *testing.T) {
	w := YCSBWorkload(2000)
	s, err := NewSimulator(SimConfig{Memory: MemoryORAM, Scheme: SchemeDynamic, Audit: &AuditConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Audit == nil || !res.Audit.Pass {
		t.Fatalf("honest unified run flagged: %+v", res.Audit)
	}

	if _, err := NewSimulator(SimConfig{Memory: MemoryDRAM, Audit: &AuditConfig{}}); err == nil {
		t.Fatal("DRAM + audit accepted")
	}
	if _, err := NewSimulator(SimConfig{Memory: MemoryORAM, Audit: &AuditConfig{Leak: LeakDropDummies}}); err == nil {
		t.Fatal("unified drop-dummies accepted")
	}

	leaky, err := NewSimulator(SimConfig{Memory: MemoryORAM, Scheme: SchemeDynamic, Audit: &AuditConfig{Leak: LeakBiasLeaf}})
	if err != nil {
		t.Fatal(err)
	}
	lres, err := leaky.Run(YCSBWorkload(300))
	if err != nil {
		t.Fatal(err)
	}
	if lres.Audit == nil || lres.Audit.Pass {
		t.Fatalf("unified bias-leaf run passed: %+v", lres.Audit)
	}
	if !strings.Contains(fmt.Sprint(lres.Audit.Findings), "leaf_uniformity") {
		t.Fatalf("findings missing leaf_uniformity: %v", lres.Audit.Findings)
	}
}
